package backoff

import (
	"testing"
	"time"
)

// The envelope: attempt n sleeps within [base·2ⁿ/2, base·2ⁿ], capped
// at max. This is what bounds both the storm (never below half the
// floor) and the stall (never above the cap).
func TestDelayEnvelope(t *testing.T) {
	base, max := 10*time.Millisecond, time.Second
	p := New(base, max, 42)
	for attempt := 0; attempt < 30; attempt++ {
		d := p.Delay(attempt)
		floor := base << uint(min(attempt, 20))
		if floor <= 0 || floor > max {
			floor = max
		}
		if d < floor/2 || d > floor {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, floor/2, floor)
		}
	}
}

// Determinism: the same (base, max, seed) yields the same delay
// sequence — a failing reconnect schedule reproduces exactly.
func TestDelayDeterministic(t *testing.T) {
	a := New(25*time.Millisecond, 2*time.Second, 7)
	b := New(25*time.Millisecond, 2*time.Second, 7)
	for attempt := 0; attempt < 16; attempt++ {
		if da, db := a.Delay(attempt), b.Delay(attempt); da != db {
			t.Fatalf("attempt %d: %v != %v", attempt, da, db)
		}
	}
}

// Distinct seeds decorrelate: at least one attempt in a short schedule
// differs, so a fleet of links does not thunder in lockstep.
func TestDelaySeedsDiffer(t *testing.T) {
	a := New(25*time.Millisecond, 2*time.Second, 1)
	b := New(25*time.Millisecond, 2*time.Second, 2)
	for attempt := 0; attempt < 16; attempt++ {
		if a.Delay(attempt) != b.Delay(attempt) {
			return
		}
	}
	t.Fatal("seeds 1 and 2 produced identical 16-delay schedules")
}

func TestZeroConfigDefaults(t *testing.T) {
	p := New(0, 0, 1)
	if d := p.Delay(0); d < time.Millisecond/2 || d > time.Millisecond {
		t.Fatalf("defaulted base: delay %v outside [0.5ms, 1ms]", d)
	}
	for attempt := 0; attempt < 40; attempt++ {
		if d := p.Delay(attempt); d > time.Second {
			t.Fatalf("defaulted max: attempt %d slept %v > 1s", attempt, d)
		}
	}
}

// Package backoff is the deterministic seeded exponential-backoff
// policy shared by everything in this repo that redials a peer: the
// ingest client's reconnect loop and the cluster's replication links.
// Sharing one implementation keeps the retry discipline uniform — the
// same exponential envelope, the same cap, the same jitter shape — and
// keeps tests reproducible, because every delay is a pure function of
// (base, max, seed, attempt).
package backoff

import (
	"math/rand"
	"time"
)

// Policy computes retry delays: attempt n (0-based) waits Base·2ⁿ
// capped at Max, with deterministic jitter drawn uniformly from the
// delay's upper half — [d/2, d] — so retriers with distinct seeds
// decorrelate without any of them exceeding the exponential envelope.
//
// A Policy is not safe for concurrent use; give each retrying goroutine
// its own (the jitter stream is part of what makes a run reproducible).
type Policy struct {
	base time.Duration
	max  time.Duration
	rng  *rand.Rand
}

// New returns a policy stepping from base to max, jittered by seed.
// Non-positive base and max fall back to 1ms and 1s.
func New(base, max time.Duration, seed int64) *Policy {
	if base <= 0 {
		base = time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	return &Policy{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the sleep before retry attempt (0-based). Each call
// consumes one jitter draw, so calling it with the same attempt twice
// yields different (still deterministic) delays.
func (p *Policy) Delay(attempt int) time.Duration {
	if attempt > 20 {
		// Past 2²⁰ the shift could overflow; the cap saturates anyway.
		attempt = 20
	}
	d := p.base << uint(attempt)
	if d <= 0 || d > p.max {
		d = p.max
	}
	half := d / 2
	return half + time.Duration(p.rng.Int63n(int64(half)+1))
}

// Package diagram renders computations as ASCII space-time diagrams: one
// line per process, events in a global topological order, message edges
// drawn by id, and (optionally) the current cut of a debugging session
// marked — the textbook picture of a distributed computation.
package diagram

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/computation"
)

// Options controls rendering.
type Options struct {
	// Cut, when non-nil, draws a cut marker: events inside the cut render
	// in brackets.
	Cut computation.Cut
	// ShowVars appends each event's variable assignments.
	ShowVars bool
	// Width is the per-event column width (minimum 4; default 8).
	Width int
}

// Render draws comp. Layout: events are placed into columns following one
// linearization (so causality always flows left to right); each process
// occupies one row; sends and receives show the message id (s1/r1).
func Render(comp *computation.Computation, opts Options) string {
	width := opts.Width
	if width == 0 {
		width = 8
	}
	if width < 4 {
		width = 4
	}
	// Column per event from a linearization.
	seq := comp.SomeLinearization()
	cols := make([][]placed, comp.N())
	for s := 1; s < len(seq); s++ {
		prev, cur := seq[s-1], seq[s]
		for i := range cur {
			if cur[i] > prev[i] {
				cols[i] = append(cols[i], placed{col: s - 1, e: comp.Event(i, cur[i])})
				break
			}
		}
	}
	totalCols := comp.TotalEvents()
	var b strings.Builder
	for i := 0; i < comp.N(); i++ {
		fmt.Fprintf(&b, "P%-3d", i+1)
		line := make([]string, totalCols)
		for c := range line {
			line[c] = strings.Repeat("-", width)
		}
		for _, pl := range cols[i] {
			line[pl.col] = cell(comp, pl.e, opts, width)
		}
		b.WriteString(strings.Join(line, ""))
		b.WriteByte('\n')
	}
	if opts.Cut != nil {
		b.WriteString(cutLine(comp, cols, opts.Cut, width, totalCols))
	}
	b.WriteString(legend(comp))
	return b.String()
}

// cell renders one event into a fixed-width column.
func cell(comp *computation.Computation, e *computation.Event, opts Options, width int) string {
	label := e.Label
	if label == "" {
		switch e.Kind {
		case computation.Send:
			label = fmt.Sprintf("s%d", e.Msg)
		case computation.Receive:
			label = fmt.Sprintf("r%d", e.Msg)
		default:
			label = "o"
		}
	}
	if opts.ShowVars && len(e.Sets) > 0 {
		keys := make([]string, 0, len(e.Sets))
		for k := range e.Sets {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%d", k, e.Sets[k])
		}
		label += "{" + strings.Join(parts, ",") + "}"
	}
	inCut := opts.Cut != nil && opts.Cut[e.Proc] >= e.Index
	if inCut {
		label = "[" + label + "]"
	}
	if len(label) > width {
		label = label[:width]
	}
	pad := width - len(label)
	left := pad / 2
	return strings.Repeat("-", left) + label + strings.Repeat("-", pad-left)
}

// placed is an event assigned to a diagram column.
type placed struct {
	col int
	e   *computation.Event
}

// cutLine draws a frontier marker row: a caret under the last included
// event of each process.
func cutLine(comp *computation.Computation, cols [][]placed, cut computation.Cut, width, totalCols int) string {
	line := make([]byte, 4+totalCols*width)
	for i := range line {
		line[i] = ' '
	}
	copy(line, "cut ")
	for i, k := range cut {
		if k == 0 {
			continue
		}
		for _, pl := range cols[i] {
			if pl.e.Index == k {
				pos := 4 + pl.col*width + width/2
				if pos < len(line) {
					line[pos] = '^'
				}
			}
		}
	}
	return strings.TrimRight(string(line), " ") + "\n"
}

// legend summarizes the message endpoints.
func legend(comp *computation.Computation) string {
	ids := comp.Messages()
	if len(ids) == 0 {
		return ""
	}
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		s := comp.SendOf(id)
		r := comp.RecvOf(id)
		dst := "∅"
		if r != nil {
			dst = fmt.Sprintf("P%d", r.Proc+1)
		}
		parts = append(parts, fmt.Sprintf("m%d: P%d→%s", id, s.Proc+1, dst))
	}
	return "msgs " + strings.Join(parts, "  ") + "\n"
}

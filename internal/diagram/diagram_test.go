package diagram

import (
	"strings"
	"testing"

	"repro/internal/computation"
	"repro/internal/sim"
)

func TestRenderFig2(t *testing.T) {
	out := Render(sim.Fig2(), Options{})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // two processes + legend
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "P1") || !strings.HasPrefix(lines[1], "P2") {
		t.Errorf("process rows missing:\n%s", out)
	}
	for _, label := range []string{"e1", "e2", "e3", "f1", "f2", "f3"} {
		if !strings.Contains(out, label) {
			t.Errorf("missing event %s:\n%s", label, out)
		}
	}
	if !strings.Contains(lines[2], "m1: P2→P1") || !strings.Contains(lines[2], "m2: P1→P2") {
		t.Errorf("legend wrong: %s", lines[2])
	}
	// Rows align: equal length.
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("rows misaligned: %d vs %d", len(lines[0]), len(lines[1]))
	}
}

func TestRenderCausalityLeftToRight(t *testing.T) {
	comp := sim.Fig2()
	out := Render(comp, Options{})
	// f2 (the send) must appear in a column left of e1 (its receive):
	// compare byte offsets within their rows.
	rows := strings.Split(out, "\n")
	posE1 := strings.Index(rows[0], "e1")
	posF2 := strings.Index(rows[1], "f2")
	if posF2 >= posE1 {
		t.Errorf("send f2 (col %d) not left of receive e1 (col %d):\n%s", posF2, posE1, out)
	}
}

func TestRenderCutAndVars(t *testing.T) {
	comp := sim.Fig4()
	out := Render(comp, Options{Cut: computation.Cut{1, 2, 1}, ShowVars: true, Width: 12})
	if !strings.Contains(out, "[e1") {
		t.Errorf("cut bracket missing on e1:\n%s", out)
	}
	if strings.Contains(out, "[e2") {
		t.Errorf("e2 is outside the cut:\n%s", out)
	}
	if !strings.Contains(out, "x=2") {
		t.Errorf("vars missing:\n%s", out)
	}
	if !strings.Contains(out, "cut ") || !strings.Contains(out, "^") {
		t.Errorf("cut marker row missing:\n%s", out)
	}
}

func TestRenderUnlabeledAndUnreceived(t *testing.T) {
	b := computation.NewBuilder(2)
	b.Internal(0)
	b.Send(0) // unreceived
	b.Internal(1)
	comp := b.MustBuild()
	out := Render(comp, Options{Width: 3})
	if !strings.Contains(out, "s1") {
		t.Errorf("send marker missing:\n%s", out)
	}
	if !strings.Contains(out, "m1: P1→∅") {
		t.Errorf("unreceived message legend wrong:\n%s", out)
	}
	// Minimum width clamps.
	if Render(comp, Options{Width: 1}) == "" {
		t.Error("tiny width render failed")
	}
}

package dist

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/explore"
	"repro/internal/lattice"
	"repro/internal/predicate"
)

// pingPong runs a deterministic request/response program: P0 sends k
// requests to P1, which acknowledges each; both count.
func pingPong(t *testing.T, k int) *computation.Computation {
	t.Helper()
	comp, err := Run(2, k+1, func(self int, env *Env) {
		switch self {
		case 0:
			for i := 1; i <= k; i++ {
				env.Set("reqs", i)
				env.Send(1, i)
				env.RecvSet("acked", func(_, payload int) int { return payload })
			}
		case 1:
			for i := 1; i <= k; i++ {
				env.RecvSet("seen", func(_, payload int) int { return payload })
				env.Send(0, i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

func TestRunRecordsDeterministicPartialOrder(t *testing.T) {
	// The program's communication is deterministic, so repeated runs must
	// record identical computations despite real concurrency.
	a := pingPong(t, 3)
	for run := 0; run < 10; run++ {
		b := pingPong(t, 3)
		if a.N() != b.N() || a.TotalEvents() != b.TotalEvents() {
			t.Fatalf("run %d: shape differs", run)
		}
		for i := 0; i < a.N(); i++ {
			for k := 1; k <= a.Len(i); k++ {
				ea, eb := a.Event(i, k), b.Event(i, k)
				if ea.Kind != eb.Kind || !ea.Clock.Equal(eb.Clock) {
					t.Fatalf("run %d: event (%d,%d) differs: %v/%v vs %v/%v",
						run, i, k, ea.Kind, ea.Clock, eb.Kind, eb.Clock)
				}
			}
		}
	}
}

func TestRunDetection(t *testing.T) {
	comp := pingPong(t, 3)
	// The recorded trace supports the full detector stack.
	res, err := core.Detect(comp, ctl.MustParse("AG(monotone(seen@P2 >= acked@P1))"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("P2 must always have seen at least what P1 got acked (cex %v)", res.Counterexample)
	}
	res, err = core.Detect(comp, ctl.MustParse("EF(channelsEmpty && acked@P1 == 3)"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Error("quiescence with all acks never reachable")
	}
	// Ground truth.
	l, err := lattice.Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	f := ctl.MustParse("AG(monotone(seen@P2 >= acked@P1))")
	if !explore.Holds(l, f) {
		t.Error("lattice disagrees with AG")
	}
}

func TestRunConcurrentWorkers(t *testing.T) {
	// A fan-out/fan-in program: coordinator sends one task to each worker
	// and collects results. Worker events are mutually concurrent.
	const workers = 4
	comp, err := Run(workers+1, workers+1, func(self int, env *Env) {
		if self == 0 {
			for w := 1; w <= workers; w++ {
				env.Send(w, w*10)
			}
			for w := 1; w <= workers; w++ {
				env.RecvSet("got", func(from, payload int) int { return payload })
			}
			env.Set("done", 1)
			return
		}
		_, task := env.Recv()
		env.Set("task", task)
		env.Send(0, task+1)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Worker task events are pairwise concurrent.
	for a := 1; a <= workers; a++ {
		for b := a + 1; b <= workers; b++ {
			ea := comp.Event(a, 2) // the Set("task") event
			eb := comp.Event(b, 2)
			if !comp.Concurrent(ea, eb) {
				t.Errorf("worker events %v and %v not concurrent", ea, eb)
			}
		}
	}
	// Termination is detectable as a stable predicate.
	term := predicate.AndLinear{Ps: []predicate.Linear{
		predicate.Conj(predicate.VarCmp{Proc: 0, Var: "done", Op: predicate.EQ, K: 1}),
		predicate.ChannelsEmpty{},
	}}
	cut, ok := core.LeastCut(comp, term)
	if !ok {
		t.Fatal("termination not detected")
	}
	if !comp.Consistent(cut) {
		t.Fatalf("termination cut %v inconsistent", cut)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(0, 1, func(int, *Env) {}); err == nil {
		t.Error("zero processes accepted")
	}
	if _, err := Run(2, 1, func(self int, env *Env) {
		if self == 0 {
			env.Send(0, 1) // self-send
		}
	}); err == nil {
		t.Error("self-send accepted")
	}
	if _, err := Run(2, 1, func(self int, env *Env) {
		if self == 0 {
			env.Send(9, 1) // bad destination
		}
	}); err == nil {
		t.Error("invalid destination accepted")
	}
}

func TestRunInitialValues(t *testing.T) {
	comp, err := Run(1, 1, func(self int, env *Env) {
		env.SetInitial("x", 7)
		env.Set("x", 8)
		env.Step()
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := comp.Value(0, 0, "x"); v != 7 {
		t.Errorf("initial x = %d", v)
	}
	if v, _ := comp.Value(0, 2, "x"); v != 8 {
		t.Errorf("final x = %d", v)
	}
	if comp.Len(0) != 2 {
		t.Errorf("events = %d, want 2", comp.Len(0))
	}
}

// Package dist executes real concurrent message-passing programs and
// records their happened-before computation — the instrumentation layer a
// deployed monitor would use. Each logical process runs as a goroutine
// with a mailbox; sends, receives, internal steps and variable updates are
// recorded through a serialized recorder, producing a computation.Builder
// trace whose partial order contains exactly program order plus message
// edges.
//
// If every process's communication behavior is deterministic (it does not
// race on TryRecv or wall-clock time), the recorded partial order is the
// same for every scheduling of the goroutines, so detection results on the
// recorded computation are reproducible even though execution is genuinely
// concurrent.
package dist

import (
	"fmt"
	"sync"

	"repro/internal/computation"
)

// Env is a process's handle to the instrumented world. All methods record
// events on behalf of the calling process and must only be used from that
// process's goroutine.
type Env struct {
	self int
	rt   *runtime
	in   chan envelope
	// pending holds messages consumed from the mailbox by TryRecv
	// look-ahead; none currently, reserved for extension.
}

type envelope struct {
	from    int
	payload int
	msg     computation.Msg
	msgID   int // observer-visible message id, 1-based
}

// Observer receives the events of a run as they are recorded, in
// recording order — a valid linearization of the happened-before order
// (every receive is delivered after its send). It is the bridge that lets
// an instrumented program report its computation somewhere other than the
// in-process recorder, e.g. to a remote hbserver via
// internal/server/client.
//
// Callbacks run under the recorder lock: they serialize the instrumented
// program, must be fast or the program slows down, and must never call
// back into an Env.
type Observer interface {
	// Init reports a SetInitial call, before any event of the process.
	Init(proc int, name string, value int)
	// Event reports one recorded event. msg is a positive id linking
	// each send to its receive and 0 for internal events; sets holds
	// variable assignments attached to the event (nil when none).
	Event(proc int, kind computation.Kind, msg int, sets map[string]int)
}

type runtime struct {
	mu      sync.Mutex
	b       *computation.Builder
	envs    []*Env
	errs    []error
	obs     Observer
	nextMsg int
}

// Run executes body once per process (self = 0..n-1) as concurrent
// goroutines, waits for all of them to return, and returns the recorded
// computation. Mailboxes are buffered with cap; sends block when the
// destination mailbox is full (cap ≥ total messages gives fully
// asynchronous channels).
func Run(n, mailboxCap int, body func(self int, env *Env)) (*computation.Computation, error) {
	return RunObserved(n, mailboxCap, nil, body)
}

// RunObserved is Run with an observer that is fed every recorded event as
// it happens; obs may be nil. The run still records and returns the full
// computation, so callers can cross-check the stream against the local
// recording.
func RunObserved(n, mailboxCap int, obs Observer, body func(self int, env *Env)) (*computation.Computation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: need at least one process")
	}
	rt := &runtime{b: computation.NewBuilder(n), obs: obs}
	rt.envs = make([]*Env, n)
	for i := 0; i < n; i++ {
		rt.envs[i] = &Env{self: i, rt: rt, in: make(chan envelope, mailboxCap)}
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		env := rt.envs[i]
		go func() {
			defer wg.Done()
			body(env.self, env)
		}()
	}
	wg.Wait()
	if len(rt.errs) > 0 {
		return nil, rt.errs[0]
	}
	return rt.b.Build()
}

// Self returns the process index.
func (e *Env) Self() int { return e.self }

// Set records an internal event assigning a variable.
func (e *Env) Set(name string, value int) {
	e.rt.mu.Lock()
	defer e.rt.mu.Unlock()
	ev := e.rt.b.Internal(e.self)
	computation.Set(ev, name, value)
	if e.rt.obs != nil {
		e.rt.obs.Event(e.self, computation.Internal, 0, map[string]int{name: value})
	}
}

// Step records a plain internal event.
func (e *Env) Step() {
	e.rt.mu.Lock()
	defer e.rt.mu.Unlock()
	e.rt.b.Internal(e.self)
	if e.rt.obs != nil {
		e.rt.obs.Event(e.self, computation.Internal, 0, nil)
	}
}

// SetInitial records an initial variable value; call before any event of
// this process.
func (e *Env) SetInitial(name string, value int) {
	e.rt.mu.Lock()
	defer e.rt.mu.Unlock()
	e.rt.b.SetInitial(e.self, name, value)
	if e.rt.obs != nil {
		e.rt.obs.Init(e.self, name, value)
	}
}

// Send records a send event and delivers the payload to the destination
// mailbox. It blocks while the destination mailbox is full.
func (e *Env) Send(to, payload int) {
	e.rt.mu.Lock()
	if to < 0 || to >= len(e.rt.envs) || to == e.self {
		e.rt.errs = append(e.rt.errs, fmt.Errorf("dist: P%d sends to invalid destination %d", e.self+1, to))
		e.rt.mu.Unlock()
		return
	}
	_, m := e.rt.b.Send(e.self)
	e.rt.nextMsg++
	id := e.rt.nextMsg
	if e.rt.obs != nil {
		e.rt.obs.Event(e.self, computation.Send, id, nil)
	}
	dst := e.rt.envs[to]
	e.rt.mu.Unlock()
	// Deliver outside the lock so a full mailbox cannot deadlock the
	// recorder; the send event is already recorded (message in flight).
	dst.in <- envelope{from: e.self, payload: payload, msg: m, msgID: id}
}

// Recv blocks until a message arrives, records the receive event, and
// returns the sender and payload.
func (e *Env) Recv() (from, payload int) {
	env := <-e.in
	e.rt.mu.Lock()
	defer e.rt.mu.Unlock()
	e.rt.b.Receive(e.self, env.msg)
	if e.rt.obs != nil {
		e.rt.obs.Event(e.self, computation.Receive, env.msgID, nil)
	}
	return env.from, env.payload
}

// RecvSet is Recv plus a variable assignment on the receive event itself
// (the common "update state on message" idiom).
func (e *Env) RecvSet(name string, value func(from, payload int) int) (from, payload int) {
	env := <-e.in
	e.rt.mu.Lock()
	defer e.rt.mu.Unlock()
	ev := e.rt.b.Receive(e.self, env.msg)
	v := value(env.from, env.payload)
	computation.Set(ev, name, v)
	if e.rt.obs != nil {
		e.rt.obs.Event(e.self, computation.Receive, env.msgID, map[string]int{name: v})
	}
	return env.from, env.payload
}

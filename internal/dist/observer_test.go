package dist

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/online"
)

// recordingObserver rebuilds the computation from the observer stream —
// the contract a remote monitor relies on: the callbacks arrive in a
// valid linearization with globally unique message ids.
type recordingObserver struct {
	t    *testing.T
	b    *computation.Builder
	msgs map[int]computation.Msg
	n    int
}

func (o *recordingObserver) Init(proc int, name string, value int) {
	o.b.SetInitial(proc, name, value)
}

func (o *recordingObserver) Event(proc int, kind computation.Kind, msg int, sets map[string]int) {
	o.n++
	var e *computation.Event
	switch kind {
	case computation.Internal:
		e = o.b.Internal(proc)
	case computation.Send:
		if _, dup := o.msgs[msg]; dup {
			o.t.Errorf("observer saw message %d sent twice", msg)
		}
		var m computation.Msg
		e, m = o.b.Send(proc)
		o.msgs[msg] = m
	case computation.Receive:
		m, ok := o.msgs[msg]
		if !ok {
			o.t.Errorf("observer saw receive of message %d before its send", msg)
			return
		}
		e = o.b.Receive(proc, m)
	}
	for name, v := range sets {
		computation.Set(e, name, v)
	}
}

// TestRunObserved: the observer stream rebuilds a computation identical
// in shape, values, and causal order to the one Run records in-process.
func TestRunObserved(t *testing.T) {
	obs := &recordingObserver{t: t, b: computation.NewBuilder(2), msgs: make(map[int]computation.Msg)}
	const k = 5
	comp, err := RunObserved(2, k+1, obs, func(self int, env *Env) {
		switch self {
		case 0:
			env.SetInitial("reqs", 0)
			for i := 1; i <= k; i++ {
				env.Set("reqs", i)
				env.Send(1, i)
				env.Recv()
			}
		case 1:
			for i := 1; i <= k; i++ {
				env.RecvSet("seen", func(_, payload int) int { return payload })
				env.Send(0, i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := obs.b.Build()
	if err != nil {
		t.Fatalf("observer stream does not rebuild: %v", err)
	}
	if obs.n != comp.TotalEvents() {
		t.Fatalf("observer saw %d events, recorder has %d", obs.n, comp.TotalEvents())
	}
	if rebuilt.N() != comp.N() || rebuilt.TotalEvents() != comp.TotalEvents() {
		t.Fatalf("rebuilt shape %d/%d, recorded %d/%d",
			rebuilt.N(), rebuilt.TotalEvents(), comp.N(), comp.TotalEvents())
	}
	for i := 0; i < comp.N(); i++ {
		for j := 1; j <= comp.Len(i); j++ {
			a, b := comp.Event(i, j), rebuilt.Event(i, j)
			if a.Kind != b.Kind {
				t.Errorf("event (%d,%d): kind %v vs %v", i, j, a.Kind, b.Kind)
			}
			if !a.Clock.Equal(b.Clock) {
				t.Errorf("event (%d,%d): clock %v vs %v", i, j, a.Clock, b.Clock)
			}
		}
		for s := 0; s <= comp.Len(i); s++ {
			for _, name := range comp.Vars(i) {
				av, _ := comp.Value(i, s, name)
				bv, _ := rebuilt.Value(i, s, name)
				if av != bv {
					t.Errorf("value %s@P%d state %d: %d vs %d", name, i+1, s, av, bv)
				}
			}
		}
	}
}

// monitorObserver feeds an online monitor directly from the stream —
// the in-process version of the hbserver bridge.
type monitorObserver struct {
	t    *testing.T
	m    *online.Monitor
	msgs map[int]int
}

func (o *monitorObserver) Init(proc int, name string, value int) {
	o.m.SetInitial(proc, name, value)
}

func (o *monitorObserver) Event(proc int, kind computation.Kind, msg int, sets map[string]int) {
	switch kind {
	case computation.Send:
		o.msgs[msg] = o.m.Send(proc, sets)
	case computation.Receive:
		if err := o.m.Receive(proc, o.msgs[msg], sets); err != nil {
			o.t.Errorf("monitor rejected streamed receive: %v", err)
		}
	default:
		o.m.Internal(proc, sets)
	}
}

// TestRunObservedDrivesMonitor: an EF watch on the streamed events fires
// exactly when the offline detector says it should.
func TestRunObservedDrivesMonitor(t *testing.T) {
	m := online.NewMonitor(2)
	w := m.WatchEF(online.Cmp(0, "reqs", "==", 3), online.Cmp(1, "seen", "==", 3))
	obs := &monitorObserver{t: t, m: m, msgs: make(map[int]int)}
	_, err := RunObserved(2, 4, obs, func(self int, env *Env) {
		switch self {
		case 0:
			for i := 1; i <= 3; i++ {
				env.Set("reqs", i)
				env.Send(1, i)
				env.Recv()
			}
		case 1:
			for i := 1; i <= 3; i++ {
				env.RecvSet("seen", func(_, payload int) int { return payload })
				env.Send(0, i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !w.Fired() {
		t.Fatal("EF watch on the observer stream never fired")
	}
}

package server

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// Serve accepts TCP ingest connections on ln until the listener is
// closed (Shutdown closes it). Each connection speaks the NDJSON frame
// protocol: a hello frame opens a dedicated session, event frames stream
// the computation, and verdict frames are pushed back as they latch.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: shutting down")
	}
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return nil // orderly shutdown closed the listener
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// writeFrame writes one NDJSON frame, refusing to block forever on a
// stuck peer.
func writeFrame(conn net.Conn, fr ServerFrame) error {
	conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	_, err := conn.Write(appendFrame(fr))
	return err
}

// handleConn runs one TCP connection: handshake, then a reader loop
// ingesting frames and a writer goroutine pushing latched frames back.
// The writer owns all writes after the handshake; it exits when the
// session finishes, and the subscriber channel is never closed (so a
// drain-time emit cannot panic).
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	s.met.connsActive.Add(1)
	defer s.met.connsActive.Add(-1)

	sc := newFrameScanner(conn)
	if s.cfg.IdleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	}
	if !sc.Scan() {
		return
	}
	hello, err := DecodeClientFrame(sc.Bytes())
	if err == nil {
		err = ValidateHello(hello)
	}
	if err != nil {
		s.met.protoErrors.Inc()
		writeFrame(conn, ServerFrame{Type: FrameError, Error: err.Error()})
		return
	}
	sess, err := s.Open(SessionConfig{Processes: hello.Processes, Watches: hello.Watches})
	if err != nil {
		s.met.protoErrors.Inc()
		writeFrame(conn, ServerFrame{Type: FrameError, Error: err.Error()})
		return
	}

	sub := make(chan ServerFrame, 64)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		// Closing the conn here unblocks a reader parked in Scan when the
		// session ends server-side (shutdown, idle timeout): the goodbye
		// frame is flushed first by the drain below.
		defer conn.Close()
		for {
			select {
			case fr := <-sub:
				if writeFrame(conn, fr) != nil {
					return
				}
			case <-sess.Done():
				// Flush frames emitted before Done closed, then stop.
				for {
					select {
					case fr := <-sub:
						if writeFrame(conn, fr) != nil {
							return
						}
					default:
						return
					}
				}
			}
		}
	}()
	// Welcome goes through the subscriber so the writer stays the only
	// writer; attach afterwards so no verdict can overtake it. Watches are
	// registered lazily at the first event, and only this connection
	// ingests, so nothing latches in between.
	sub <- sess.Welcome()
	sess.attach(sub)

	for sc.Scan() {
		if s.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		f, err := DecodeClientFrame(sc.Bytes())
		if err != nil {
			// A malformed line means the stream is desynchronized; no
			// later frame can be trusted, so fail the session.
			s.met.protoErrors.Inc()
			sess.Close(err.Error())
			break
		}
		switch f.Type {
		case FrameBye:
			sess.Close("bye")
		case FrameSnapshot:
			// Response is produced by the monitor loop and emitted to the
			// subscriber (resp == nil path), preserving stream order.
			if err := sess.Ingest(f); err != nil {
				sess.Close("")
			}
		case FrameInit, FrameEvent:
			switch err := sess.Ingest(f); err {
			case nil, ErrDropped: // drops are counted; session continues
			default:
				sess.Close("")
			}
		case FrameHello:
			s.met.protoErrors.Inc()
			sess.Close("duplicate hello")
		default:
			s.met.protoErrors.Inc()
			sess.Close(fmt.Sprintf("unknown frame type %q", f.Type))
		}
		select {
		case <-sess.Done():
		default:
			continue
		}
		break
	}
	// Reader finished: EOF, read error/timeout, or session closed above.
	sess.Close("connection closed")
	<-writerDone
}

package server

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/pir"
)

// Serve accepts TCP ingest connections on ln until the listener is
// closed (Shutdown closes it). Each connection speaks the NDJSON frame
// protocol: a hello frame opens a dedicated session (a resume frame
// reattaches to a live one), event frames stream the computation, and
// verdict frames are pushed back as they latch.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.draining.Load() {
		s.lnMu.Unlock()
		ln.Close()
		return fmt.Errorf("server: shutting down")
	}
	s.lns = append(s.lns, ln)
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return nil // orderly shutdown closed the listener
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// flush writes every frame already queued on ch, stopping at the first
// write error (the peer is gone; recorded frames replay on resume).
func flush(conn net.Conn, ch chan ServerFrame) {
	for {
		select {
		case fr := <-ch:
			if writeFrame(conn, fr) != nil {
				return
			}
		default:
			return
		}
	}
}

// writeFrame writes one NDJSON frame, refusing to block forever on a
// stuck peer.
func writeFrame(conn net.Conn, fr ServerFrame) error {
	conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	_, err := conn.Write(appendFrame(fr))
	return err
}

// armReadDeadline bounds the next frame read so a half-open peer that
// went silent cannot park the reader goroutine forever. The effective
// deadline is the shorter of ReadTimeout and IdleTimeout.
func (s *Server) armReadDeadline(conn net.Conn) {
	d := s.cfg.ReadTimeout
	if d < 0 {
		d = 0
	}
	if s.cfg.IdleTimeout > 0 && (d == 0 || s.cfg.IdleTimeout < d) {
		d = s.cfg.IdleTimeout
	}
	if d > 0 {
		conn.SetReadDeadline(time.Now().Add(d))
	}
}

// scanEndReason classifies why the frame scanner stopped: clean EOF, an
// expired read deadline, an oversized frame, or another I/O error.
func scanEndReason(err error) string {
	if err == nil {
		return CloseEOF
	}
	if errors.Is(err, ErrFrameTooLong) {
		return CloseTooLong
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return CloseReadTimeout
	}
	return CloseError
}

// tooLongFrame is the explanatory error frame for an oversized frame,
// so clients can distinguish the teardown from network loss.
func tooLongFrame(session string) ServerFrame {
	return ServerFrame{Type: FrameError, Session: session, Code: CodeFrameTooLong,
		Error: fmt.Sprintf("server: frame exceeds %d bytes; close and reconnect with smaller frames", MaxFrameBytes)}
}

// handleConn runs one TCP connection: handshake (hello opens a session,
// resume reattaches to one), then a reader loop ingesting frames and a
// writer goroutine pushing latched frames back. The writer owns all
// writes after the handshake; it exits when the session finishes or the
// transport detaches, and the subscriber channel is never closed (so a
// drain-time emit cannot panic).
//
// When the connection ends, a resumable session detaches — it keeps
// running, frames latch into its record, and a later resume replays
// them — while a plain session closes, exactly as before resumability
// existed.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	s.met.connsActive.Add(1)
	defer s.met.connsActive.Add(-1)
	connStart := time.Now()

	sc := NewFrameScanner(conn)
	s.armReadDeadline(conn)
	if !sc.Scan() {
		if errors.Is(sc.Err(), ErrFrameTooLong) {
			writeFrame(conn, tooLongFrame(""))
		}
		s.met.connClosed(scanEndReason(sc.Err()))
		return
	}
	if sc.Binary() {
		// The handshake (hello/resume) is always NDJSON; binary frames
		// are only legal after negotiation.
		s.met.protoErrors.Inc()
		s.met.connClosed(CloseProtoError)
		writeFrame(conn, ServerFrame{Type: FrameError,
			Error: "server: binary frame before handshake"})
		return
	}
	// Cluster replication rides the same listener: the takeover hook peeks
	// at the first line and, if it is a replication handshake, runs the
	// whole replication dialog on this goroutine (the deferred Close still
	// tears the conn down when it returns).
	if h := s.cfg.Cluster; h != nil && h.Takeover != nil && h.Takeover(sc.Bytes(), conn) {
		s.met.connClosed(CloseTakeover)
		return
	}
	first, err := DecodeClientFrame(sc.Bytes())
	if err != nil {
		s.met.protoErrors.Inc()
		s.met.connClosed(CloseProtoError)
		writeFrame(conn, ServerFrame{Type: FrameError, Error: err.Error()})
		return
	}

	att := newAttachment()
	var sess *Session
	switch first.Type {
	case FrameHello:
		if err := ValidateHello(first); err != nil {
			s.met.protoErrors.Inc()
			s.met.connClosed(CloseProtoError)
			writeFrame(conn, ServerFrame{Type: FrameError, Error: err.Error()})
			return
		}
		cfg := SessionConfig{Processes: first.Processes, Watches: first.Watches, Resumable: first.Resumable, Bounded: first.Bounded, Durability: first.Durability}
		if first.Session != "" {
			// A keyed hello pins the session id for cluster placement.
			h := s.cfg.Cluster
			switch {
			case h == nil:
				s.met.protoErrors.Inc()
				s.met.connClosed(CloseProtoError)
				writeFrame(conn, ServerFrame{Type: FrameError,
					Error: "server: session key requires cluster mode"})
				return
			case !first.Resumable:
				s.met.protoErrors.Inc()
				s.met.connClosed(CloseProtoError)
				writeFrame(conn, ServerFrame{Type: FrameError,
					Error: "server: keyed sessions must be resumable (replication needs sequenced frames)"})
				return
			}
			if h.Placement != nil {
				if owner, ok := h.Placement(first.Session); !ok {
					s.met.connClosed(CloseError)
					writeFrame(conn, ServerFrame{Type: FrameError, Code: CodeNotOwner, Owner: owner,
						Error: fmt.Sprintf("server: session key %q is not placed here; dial %s", first.Session, owner)})
					return
				}
			}
			cfg.ID = first.Session
		}
		sess, err = s.Open(cfg)
		if err != nil {
			s.met.protoErrors.Inc()
			s.met.connClosed(CloseProtoError)
			fr := ServerFrame{Type: FrameError, Error: err.Error()}
			var rej *RejectError
			if errors.As(err, &rej) {
				// key-in-use: tell the client machine-readably so it can
				// resume the orphan its earlier (welcome-lost) hello opened.
				fr.Code = rej.Code
				fr.Owner = rej.Owner
			}
			writeFrame(conn, fr)
			return
		}
		if cfg.ID != "" {
			if h := s.cfg.Cluster; h != nil && h.OnOpen != nil {
				h.OnOpen(sess, cfg)
			}
		}
		// Welcome goes through the subscriber so the writer stays the
		// only writer; attach afterwards so no verdict can overtake it.
		// Watches are registered lazily at the first event, and only this
		// connection ingests, so nothing latches in between.
		w := sess.Welcome()
		w.Encoding = first.Encoding
		att.ch <- w
		sess.attach(att)
	case FrameResume:
		resumed, welcome, replay, code, err := s.resume(first, att)
		if err != nil {
			s.met.connClosed(CloseError)
			fr := ServerFrame{Type: FrameError, Code: code, Error: err.Error()}
			var rej *RejectError
			if errors.As(err, &rej) {
				fr.Owner = rej.Owner
			}
			writeFrame(conn, fr)
			return
		}
		welcome.Encoding = first.Encoding
		if resumed == nil {
			// Terminal replay: the session already finished but lingers
			// in the morgue. Serve its record and goodbye, then close.
			if writeFrame(conn, welcome) == nil {
				for _, fr := range replay {
					if writeFrame(conn, fr) != nil {
						break
					}
				}
			}
			s.met.connClosed(CloseSessionDone)
			return
		}
		sess = resumed
		// The writer does not exist yet, so the handshake writes happen
		// inline: welcome (carrying the accept high-water seq), then the
		// recorded-frame replay. Frames latched after the attach go to
		// att.ch and are pushed once the writer starts — tryResume
		// snapshots the record atomically with the attach, so the replay
		// and the live stream neither overlap nor leave a hole.
		if writeFrame(conn, welcome) != nil {
			sess.detach(att)
			s.met.connClosed(CloseError)
			return
		}
		for _, fr := range replay {
			if writeFrame(conn, fr) != nil {
				sess.detach(att)
				s.met.connClosed(CloseError)
				return
			}
		}
	default:
		s.met.protoErrors.Inc()
		s.met.connClosed(CloseProtoError)
		writeFrame(conn, ServerFrame{Type: FrameError,
			Error: fmt.Sprintf("server: first frame must be %q or %q, got %q", FrameHello, FrameResume, first.Type)})
		return
	}

	// The handshake is complete and the session attached: that interval
	// is the accept stage. Its span parents under the session root so the
	// trace shows which connection fed which session.
	s.met.stage(StageAccept, time.Since(connStart))
	if s.cfg.Tracer != nil {
		as := s.cfg.Tracer.StartAt("accept", sess.spanCtx(), connStart)
		as.Set("service", "transport").Set("session", sess.id).Set("handshake", string(first.Type))
		as.End()
	}

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		// Closing the conn here unblocks a reader parked in Scan when the
		// session ends server-side (shutdown, idle timeout): the goodbye
		// frame is flushed first by the drain below.
		defer conn.Close()
		for {
			select {
			case fr := <-att.ch:
				if writeFrame(conn, fr) != nil {
					return
				}
			case <-att.done:
				// Transport detached (or handleConn is winding down after a
				// bye). Flush what is already queued — the goodbye may be in
				// here, and select may have picked this case over att.ch —
				// then stop. Recorded frames that fail to flush replay on
				// resume; a best-effort flush to a dead conn just errors out.
				flush(conn, att.ch)
				return
			case <-sess.Done():
				// Flush frames emitted before Done closed, then stop.
				flush(conn, att.ch)
				return
			}
		}
	}()

	reason := s.readFrames(conn, sc, sess, first.Encoding == EncodingBinary)
	// Reader finished: EOF, read error/timeout, seq gap, or session end.
	if sess.Resumable() && reason != CloseBye {
		// The session survives the connection: detach and wait for a
		// resume. The idle janitor reclaims it if the client never
		// returns; Shutdown closes it with everything else.
		sess.detach(att)
	} else {
		sess.Close("connection closed")
	}
	att.close()
	<-writerDone
	s.met.connClosed(reason)
}

// ingestFrame reports whether a frame type carries sequenced session
// input (and so must pass dup/gap triage on resumable sessions). The
// bye is triaged too: without a seq it could bypass the gap check and
// close the session while the final events are still lost in flight.
func ingestFrame(t string) bool {
	return t == FrameInit || t == FrameEvent || t == FrameBatch || t == FrameBye
}

// readFrames is handleConn's reader loop; it returns the typed close
// reason. For resumable sessions it triages sequence numbers before
// ingest: duplicates are idempotently dropped (at-least-once delivery
// becomes exactly-once ingestion) and a gap — frames lost in flight —
// kills the connection so the client reconnects and replays from the
// last ack. Unsequenced (seq 0) ingest frames are rejected outright on
// resumable sessions: they would skip that triage, so an at-least-once
// redelivery would be ingested twice.
//
// binEnc is the negotiated encoding: when true the connection may also
// carry binary batch frames, decoded straight into pir.Batch with a
// connection-scoped var table (a reconnect gets a fresh table on both
// sides, so interning needs no handshake).
func (s *Server) readFrames(conn net.Conn, sc *FrameScanner, sess *Session, binEnc bool) string {
	var vt pir.VarTable
	for sc.Scan() {
		s.armReadDeadline(conn)
		decStart := time.Now()
		var f ClientFrame
		if sc.Binary() {
			var err error
			if f, err = s.decodeBinaryFrame(sc, &vt, binEnc); err != nil {
				s.met.protoErrors.Inc()
				if sess.Resumable() && f.Seq > 0 && f.Seq != sess.enqSeq.Load()+1 {
					// Batch bodies reference the connection's interning
					// table, so the frame after a silently dropped one can
					// fail to decode — a dangling name reference. The gap,
					// not the body, is the real error: report it as such
					// (a coded transport signal the client's reconnect
					// machinery consumes silently), exactly as if the body
					// had decoded and the triage below had caught it.
					sess.emit(ServerFrame{Type: FrameError, Session: sess.id, Code: CodeSeqGap,
						Error: fmt.Sprintf("seq gap: got %d, expected %d — reconnect and resume", f.Seq, sess.enqSeq.Load()+1)}, false)
					return CloseSeqGap
				}
				sess.emit(ServerFrame{Type: FrameError, Session: sess.id, Error: err.Error()}, false)
				if !sess.Resumable() {
					sess.Close(err.Error())
				}
				return CloseProtoError
			}
		} else {
			var err error
			f, err = DecodeClientFrame(sc.Bytes())
			if err != nil {
				// A malformed line means the stream is desynchronized; no
				// later frame can be trusted. A resumable session survives —
				// the client will resume and replay from the last ack — but
				// the connection cannot.
				s.met.protoErrors.Inc()
				if !sess.Resumable() {
					sess.Close(err.Error())
				}
				return CloseProtoError
			}
		}
		s.met.stage(StageDecode, time.Since(decStart))
		if s.cfg.Tracer != nil {
			ds := s.cfg.Tracer.StartAt("decode", sess.spanCtx(), decStart)
			ds.Set("service", "transport").Set("type", f.Type)
			ds.End()
		}
		if sess.Resumable() && ingestFrame(f.Type) {
			if f.Seq <= 0 {
				// An unsequenced (or negative-seq) ingest frame on a
				// resumable session would skip the dup/gap triage below,
				// so a redelivery of it would be ingested twice.
				s.met.protoErrors.Inc()
				f.Batch.Recycle()
				sess.emit(ServerFrame{Type: FrameError, Session: sess.id, Code: CodeBadSeq,
					Error: fmt.Sprintf("server: %s frame with seq %d on a resumable session (sequenced frames required)", f.Type, f.Seq)}, false)
				return CloseProtoError
			}
			switch sess.acceptSeq(f.Seq) {
			case seqDup:
				f.Batch.Recycle()
				continue // already accepted; drop idempotently
			case seqGap:
				s.met.protoErrors.Inc()
				f.Batch.Recycle()
				sess.emit(ServerFrame{Type: FrameError, Session: sess.id, Code: CodeSeqGap,
					Error: fmt.Sprintf("seq gap: got %d, expected %d — reconnect and resume", f.Seq, sess.enqSeq.Load()+1)}, false)
				return CloseSeqGap
			}
			// Freshly accepted: offer the frame to cluster replication
			// before ingest. The hook runs on this goroutine, so a slow
			// replica applies backpressure to this client, not to others.
			if h := s.cfg.Cluster; h != nil && h.OnAccept != nil {
				h.OnAccept(sess, f)
			}
		}
		switch f.Type {
		case FrameBye:
			// Orderly close: the loop drains, the writer flushes the
			// goodbye and closes the conn. Wait here so the close reason
			// is attributed to the bye, not to the ensuing EOF.
			sess.Close("bye")
			<-sess.Done()
			return CloseBye
		case FrameSnapshot:
			// Response is produced by the monitor loop and emitted to the
			// subscriber (resp == nil path), preserving stream order.
			if err := sess.Ingest(f); err != nil {
				sess.Close("")
			}
		case FrameInit, FrameEvent, FrameBatch:
			switch err := sess.Ingest(f); err {
			case nil, ErrDropped: // drops are counted; session continues
			default:
				sess.Close("")
			}
		case FrameHello, FrameResume:
			// A mid-stream handshake frame desynchronizes the dialog. For
			// a resumable session this is connection-fatal only (a flaky
			// network can duplicate the resume line itself); a plain
			// session dies with its connection anyway.
			s.met.protoErrors.Inc()
			if !sess.Resumable() {
				sess.Close("duplicate handshake frame")
			}
			return CloseProtoError
		default:
			s.met.protoErrors.Inc()
			sess.Close(fmt.Sprintf("unknown frame type %q", f.Type))
		}
		select {
		case <-sess.Done():
			if f.Type == FrameBye {
				return CloseBye
			}
			return CloseSessionDone
		default:
		}
	}
	if errors.Is(sc.Err(), ErrFrameTooLong) {
		// An oversized frame (either encoding) used to die as a bare
		// scanner error, indistinguishable from network loss; tell the
		// client what happened before the connection goes.
		s.met.protoErrors.Inc()
		sess.emit(tooLongFrame(sess.id), false)
	}
	return scanEndReason(sc.Err())
}

// decodeBinaryFrame decodes one binary frame into a ClientFrame. Only
// batch frames exist today, and only on connections that negotiated
// the binary encoding at hello/resume time. The returned frame carries
// a pooled batch; every sink (triage drop, monitor apply) recycles it.
func (s *Server) decodeBinaryFrame(sc *FrameScanner, vt *pir.VarTable, binEnc bool) (ClientFrame, error) {
	if !binEnc {
		return ClientFrame{}, fmt.Errorf("server: binary frame on a connection that negotiated %q", EncodingNDJSON)
	}
	if t := sc.BinaryType(); t != BinBatch {
		return ClientFrame{}, fmt.Errorf("server: unknown binary frame type 0x%02x", t)
	}
	// Decode fully before the caller triages the seq: a malformed body
	// then never advances the accept watermark (the client will resume
	// and redeliver), and decoding a duplicated frame is idempotent on
	// the var table because declarations carry explicit indexes. The
	// seq is returned even when the body fails — the caller uses it to
	// tell a dangling-reference decode failure after a dropped frame
	// (a seq gap) from genuine corruption.
	seq, body, err := pir.BatchSeq(sc.Bytes())
	if err != nil {
		return ClientFrame{}, err
	}
	b := pir.GetBatch()
	if err := b.DecodeBody(body, vt); err != nil {
		b.Recycle()
		return ClientFrame{Seq: seq}, err
	}
	return ClientFrame{Type: FrameBatch, Seq: seq, Batch: b}, nil
}

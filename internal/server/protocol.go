// Package server implements hbserver, the networked streaming
// predicate-detection service: clients open detection sessions, stream
// the events of an unfolding computation over TCP (newline-delimited
// JSON) or HTTP POST, and receive verdict frames the moment an EF watch
// fires, an AG invariant is violated, or a stable-frontier watch latches.
//
// Each session owns one online.Monitor driven by a single goroutine (the
// monitor loop) fed through a bounded queue, so detection state never
// needs locks; transports — a goroutine-per-connection TCP listener and
// an HTTP API sharing the obs telemetry mux — ingest concurrently into
// those queues under an explicit overflow policy (block for backpressure,
// drop with accounting). A snapshot request freezes the session's
// observed prefix and runs any offline core.Detect query on it, bridging
// the latching online operators to the paper's full operator set.
//
// The wire protocol is documented in DESIGN.md ("hbserver wire
// protocol"); internal/server/client is the Go client.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/pir"
)

// Protocol limits. Frames arrive from untrusted network peers; every
// decode path is bounded before it allocates.
const (
	// MaxFrameBytes bounds one NDJSON frame (and one HTTP body line).
	MaxFrameBytes = 1 << 20
	// MaxProcesses bounds the per-session process count a client may
	// request; per-process monitor state is allocated up front.
	MaxProcesses = 4096
	// MaxWatches bounds the watches a hello frame may register.
	MaxWatches = 256
	// MaxKeyBytes bounds the client-chosen session key a hello frame may
	// carry in cluster mode (the key doubles as the session id and the
	// consistent-hash placement input).
	MaxKeyBytes = 128
)

// Client → server frame types.
const (
	FrameHello    = "hello"    // opens the session: processes + watches
	FrameResume   = "resume"   // reattaches to a live resumable session by id + seq
	FrameInit     = "init"     // initial variable value, before events of that process
	FrameEvent    = "event"    // one observed event (internal, send, receive)
	FrameSnapshot = "snapshot" // freeze the prefix, run an offline core.Detect query
	FrameBye      = "bye"      // orderly close; the server answers with goodbye
	FrameBatch    = "batch"    // a column-oriented run of init/event frames under one seq
)

// Server → client frame types (snapshot responses reuse FrameSnapshot).
const (
	FrameWelcome = "welcome" // session opened
	FrameVerdict = "verdict" // a watch latched
	FrameError   = "error"   // rejected frame or failed request
	FrameGoodbye = "goodbye" // session closed; final accounting
	FrameAck     = "ack"     // seq acknowledgement / HTTP batch-ingest accounting
)

// Machine-readable codes on error frames, so clients can decide whether
// a failed resume is worth retrying. CodeBusy is the only retryable one:
// the server has not yet noticed that the previous connection died.
const (
	CodeUnknownSession = "unknown-session" // no such live session (never existed, expired, or closed)
	CodeNotResumable   = "not-resumable"   // session was not opened with resumable:true
	CodeBusy           = "busy"            // another transport is still attached; retry after backoff
	CodeBadSeq         = "bad-seq"         // resume seq is negative or ahead of anything the server accepted
	CodeStaleSeq       = "stale-seq"       // resume point has fallen out of the journal retention window
	CodeSeqGap         = "seq-gap"         // frames were lost in flight; reconnect and resume from the last ack
	CodeNotOwner       = "not-owner"       // cluster mode: this node does not host the key; dial Owner instead
	CodeStaleEpoch     = "stale-epoch"     // cluster mode: a newer incarnation of the session lives at Owner; this node's copy is fenced
	CodeKeyInUse       = "key-in-use"      // a live session already holds this key; resume it instead of re-opening
	CodeFrameTooLong   = "frame-too-long"  // a frame exceeded MaxFrameBytes; the connection closes, the session survives its policy
)

// RejectError is a typed handshake rejection. Code is one of the Code*
// constants; Owner, when set (CodeNotOwner), is the cluster node the
// client should dial instead. The transport copies both onto the error
// frame so ring-aware clients can follow the redirect.
type RejectError struct {
	Code  string
	Owner string
	Msg   string
}

func (e *RejectError) Error() string { return e.Msg }

// Watch declares one predicate watch in a hello frame.
type Watch struct {
	// Op is "EF" (fire when some consistent cut of the observed prefix
	// satisfies the predicate), "AG" (fire when the invariant is
	// violated), or "STABLE" (fire when the frontier satisfies the
	// predicate with no messages in flight — quiescence detection).
	Op string `json:"op"`
	// Pred is a conjunctive predicate in the ctl syntax:
	// conj(x@P1 == 1, y@P2 >= 2), or a single comparison.
	Pred string `json:"pred"`
}

// ClientFrame is one client → server frame. Type selects which fields
// are meaningful; processes are 1-based on the wire, matching the trace
// format and the paper's notation.
type ClientFrame struct {
	Type string `json:"type"`

	// hello. In cluster mode Session may carry a client-chosen session
	// key: it becomes the session id and the consistent-hash ring places
	// the key on a node — a hello arriving anywhere else is rejected
	// with a not-owner redirect. Standalone servers reject keyed hellos.
	Processes int     `json:"processes,omitempty"`
	Watches   []Watch `json:"watches,omitempty"`
	// Resumable opts the session into fault tolerance: init/event frames
	// carry client-assigned sequence numbers, accepted frames are
	// journaled, the server acks periodically, and a dropped connection
	// detaches the transport instead of closing the session, so the
	// client can reattach with a resume frame.
	Resumable bool `json:"resumable,omitempty"`
	// Bounded opts the session into bounded retained state: the monitor
	// keeps only the frontier plus each watch's slice cursor instead of
	// the raw event prefix, so a long-lived session holds O(slice) state.
	// Watch verdicts are bit-identical to an unbounded session; snapshot
	// frames are rejected (the prefix they would query is not retained).
	Bounded bool `json:"bounded,omitempty"`
	// Encoding on a hello or resume frame negotiates the connection's
	// ingest encoding: "" or "ndjson" for one JSON frame per line,
	// "binary" to additionally accept length-prefixed binary batch
	// frames (see binary.go). The welcome echoes the accepted value.
	Encoding string `json:"encoding,omitempty"`
	// Durability on a keyed hello overrides the cluster node's default
	// ack-gate mode for this session: "available" keeps acking through a
	// replica outage (the outage window may be lost with the owner),
	// "durable" stalls acks until every replica is reachable again, so no
	// acked frame can be lost. Empty inherits the node default; standalone
	// servers ignore it.
	Durability string `json:"durability,omitempty"`

	// resume: Session names the session to reattach to; Seq is the
	// highest sequence number the client has seen acked. Seq also rides
	// on init/event frames of resumable sessions (1,2,3,... per session;
	// 0 means unsequenced).
	Session string `json:"session,omitempty"`
	Seq     int64  `json:"seq,omitempty"`

	// init (Proc, Var, Value) and event (Proc, Kind, Msg, Sets)
	Proc  int            `json:"proc,omitempty"`
	Var   string         `json:"var,omitempty"`
	Value int            `json:"value,omitempty"`
	Kind  string         `json:"kind,omitempty"` // "internal" (default), "send", "receive"
	Msg   int            `json:"msg,omitempty"`  // client-chosen id linking a send to its receive
	Sets  map[string]int `json:"sets,omitempty"`

	// snapshot
	ID      int    `json:"id,omitempty"` // echoed on the response
	Formula string `json:"formula,omitempty"`

	// batch: a run of init/event frames in column form, applied in
	// order under the frame's single Seq. This is how batches appear
	// on the NDJSON encoding (and inside cluster replication messages
	// and recovery replay); on the binary encoding the same columns
	// arrive as a BinBatch payload and are decoded straight into
	// pir.Batch without passing through JSON.
	Batch *pir.Batch `json:"batch,omitempty"`
}

// ServerFrame is one server → client frame. Watch and Event carry no
// omitempty: a verdict on watch 0 at event 0 is meaningful.
type ServerFrame struct {
	Type string `json:"type"`

	// welcome / goodbye
	Session   string `json:"session,omitempty"`
	Processes int    `json:"processes,omitempty"`
	Watches   int    `json:"watches,omitempty"`

	// verdict
	Watch    int    `json:"watch"` // index into the hello watch list
	Op       string `json:"op,omitempty"`
	Pred     string `json:"pred,omitempty"`
	Event    int    `json:"event"` // events ingested when the verdict latched
	Cut      []int  `json:"cut,omitempty"`
	Conjunct string `json:"conjunct,omitempty"` // failing conjunct (AG)

	// snapshot response
	ID        int    `json:"id,omitempty"`
	Holds     *bool  `json:"holds,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`

	// goodbye / ack accounting
	Events  int `json:"events,omitempty"`  // events applied to the monitor
	Dropped int `json:"dropped,omitempty"` // events shed by the overflow policy

	// Seq on an ack frame: every sequenced frame ≤ Seq has been applied
	// (the client may release its in-flight copies). On a welcome frame:
	// the server's high-water accepted seq — a resuming client replays
	// only what is above it.
	Seq int64 `json:"seq,omitempty"`
	// Idx is the 1-based position of a recorded (verdict/error) frame in
	// the session's latched-frame log. Resume replays the log; clients
	// drop frames whose Idx they have already seen, so redelivery is
	// idempotent.
	Idx int `json:"idx,omitempty"`
	// Resumed marks the welcome frame of a resume handshake.
	Resumed bool `json:"resumed,omitempty"`
	// Encoding on a welcome frame echoes the negotiated ingest
	// encoding (empty means NDJSON-only).
	Encoding string `json:"encoding,omitempty"`

	Error string `json:"error,omitempty"`
	// Code classifies error frames (Code* constants); empty for
	// free-form semantic errors.
	Code string `json:"code,omitempty"`
	// Owner accompanies CodeNotOwner: the cluster node that hosts the
	// session's placement — the address to dial instead.
	Owner string `json:"owner,omitempty"`
}

// DecodeClientFrame parses one NDJSON line into a ClientFrame. Unknown
// fields and trailing data are rejected so a desynchronized or hostile
// stream fails loudly instead of silently dropping constraints.
func DecodeClientFrame(line []byte) (ClientFrame, error) {
	var f ClientFrame
	if len(line) > MaxFrameBytes {
		return f, fmt.Errorf("server: frame exceeds %d bytes", MaxFrameBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return f, fmt.Errorf("server: bad frame: %v", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return f, fmt.Errorf("server: trailing data after frame")
	}
	return f, nil
}

// ValidateHello checks the structural constraints of a hello frame;
// watch predicates are parsed later by Open.
func ValidateHello(f ClientFrame) error {
	if f.Type != FrameHello {
		return fmt.Errorf("server: first frame must be %q, got %q", FrameHello, f.Type)
	}
	if f.Processes < 1 || f.Processes > MaxProcesses {
		return fmt.Errorf("server: processes must be in [1,%d], got %d", MaxProcesses, f.Processes)
	}
	if len(f.Watches) > MaxWatches {
		return fmt.Errorf("server: at most %d watches, got %d", MaxWatches, len(f.Watches))
	}
	if f.Session != "" {
		if err := ValidateKey(f.Session); err != nil {
			return err
		}
	}
	// The string literals rather than cluster.ParseDurability: the server
	// package must not import its own integration layer.
	switch f.Durability {
	case "", "available", "durable":
	default:
		return fmt.Errorf("server: unknown durability %q (want available or durable)", f.Durability)
	}
	return ValidateEncoding(f.Encoding)
}

// ValidateKey checks a client-chosen session key: bounded, printable,
// and outside the server's auto-assigned id namespace ("s-...") so a
// keyed session can never collide with or spoof an auto-id one.
func ValidateKey(key string) error {
	if len(key) > MaxKeyBytes {
		return fmt.Errorf("server: session key exceeds %d bytes", MaxKeyBytes)
	}
	if len(key) >= 2 && key[0] == 's' && key[1] == '-' {
		return fmt.Errorf("server: session key %q is inside the auto-id namespace s-", key)
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-', c == ':':
		default:
			return fmt.Errorf("server: session key contains %q (want [a-zA-Z0-9._:-])", c)
		}
	}
	return nil
}

// ValidateResume checks the structural constraints of a resume frame.
// A hostile seq (negative, or absurdly ahead) is rejected here or by the
// per-session window check; it must never corrupt session state.
func ValidateResume(f ClientFrame) error {
	if f.Type != FrameResume {
		return fmt.Errorf("server: expected %q frame, got %q", FrameResume, f.Type)
	}
	if f.Session == "" {
		return fmt.Errorf("server: resume without session id")
	}
	if f.Seq < 0 {
		return fmt.Errorf("server: resume with negative seq %d", f.Seq)
	}
	return ValidateEncoding(f.Encoding)
}

// appendFrame marshals fr as one NDJSON line.
func appendFrame(fr ServerFrame) []byte {
	b, err := json.Marshal(fr)
	if err != nil {
		// A struct of scalars and slices cannot fail to marshal.
		panic("server: marshal frame: " + err.Error())
	}
	return append(b, '\n')
}

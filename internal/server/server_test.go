package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
)

// startServer runs a server on a loopback TCP listener and returns its
// address. Cleanup shuts the server down and fails the test if the drain
// does not finish.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // closed by Shutdown
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// step is one scripted event, applied identically to the wire session
// and to offline prefix computations.
type step struct {
	proc int // 0-based
	kind computation.Kind
	msg  int // wire message id for send/receive
	sets map[string]int
}

// script is the deterministic 3-process computation each test session
// streams. P1 sets x=1 and passes a token to P2, which sets x=1 and
// passes it to P3; P3 sets x=1 on receipt, then steps x to 1+extra.
// With extra=1 the AG invariant conj(x@P3 <= 1) is violated at event 6.
func script(extra int) []step {
	return []step{
		{proc: 0, kind: computation.Internal, sets: map[string]int{"x": 1}},
		{proc: 0, kind: computation.Send, msg: 1},
		{proc: 1, kind: computation.Receive, msg: 1, sets: map[string]int{"x": 1}},
		{proc: 1, kind: computation.Send, msg: 2},
		{proc: 2, kind: computation.Receive, msg: 2, sets: map[string]int{"x": 1}},
		{proc: 2, kind: computation.Internal, sets: map[string]int{"x": 1 + extra}},
		{proc: 0, kind: computation.Internal, sets: map[string]int{"x": 2}},
	}
}

// buildPrefix constructs the computation of the first k scripted events —
// the offline ground truth for the verdict latched at event k.
func buildPrefix(t *testing.T, steps []step, k int) *computation.Computation {
	t.Helper()
	b := computation.NewBuilder(3)
	for p := 0; p < 3; p++ {
		b.SetInitial(p, "x", 0)
	}
	msgs := make(map[int]computation.Msg)
	for _, s := range steps[:k] {
		var e *computation.Event
		switch s.kind {
		case computation.Internal:
			e = b.Internal(s.proc)
		case computation.Send:
			var m computation.Msg
			e, m = b.Send(s.proc)
			msgs[s.msg] = m
		case computation.Receive:
			e = b.Receive(s.proc, msgs[s.msg])
		}
		for name, v := range s.sets {
			computation.Set(e, name, v)
		}
	}
	comp, err := b.Build()
	if err != nil {
		t.Fatalf("prefix %d: %v", k, err)
	}
	return comp
}

// stream replays the script into a wire session.
func stream(sess *client.Session, steps []step) {
	for p := 0; p < 3; p++ {
		sess.SetInitial(p, "x", 0)
	}
	for _, s := range steps {
		switch s.kind {
		case computation.Internal:
			sess.Internal(s.proc, s.sets)
		case computation.Send:
			sess.SendMsg(s.proc, s.msg, s.sets)
		case computation.Receive:
			sess.Receive(s.proc, s.msg, s.sets)
		}
	}
}

const (
	efPred     = "conj(x@P1 == 1, x@P2 == 1, x@P3 == 1)"
	agPred     = "conj(x@P3 <= 1)"
	stablePred = "conj(x@P3 >= 1)"
)

// TestEndToEndConcurrentSessions is the acceptance test: many concurrent
// client sessions against one server, each asserting that (a) streamed
// verdicts and snapshot answers match offline core.Detect on the same
// computation, and (b) each verdict frame latches at the exact
// determining prefix — the offline verdict flips between the frame's
// Event and Event-1.
func TestEndToEndConcurrentSessions(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	const sessions = 10

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	fail := func(format string, args ...any) { errs <- fmt.Errorf(format, args...) }
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			extra := i % 2 // odd sessions violate the AG invariant
			steps := script(extra)
			full := buildPrefix(t, steps, len(steps))

			sess, err := client.Dial(addr, client.Config{
				Processes: 3,
				Watches: []server.Watch{
					{Op: "EF", Pred: efPred},
					{Op: "AG", Pred: agPred},
					{Op: "STABLE", Pred: stablePred},
				},
			})
			if err != nil {
				fail("session %d: %v", i, err)
				return
			}
			stream(sess, steps)

			// Snapshot answers must match offline detection on the local
			// build of the same computation (acceptance criterion a).
			for _, formula := range []string{
				"EF(" + efPred + ")",
				"AG(" + agPred + ")",
				"EF(x@P1 == 2 && x@P3 == 1)",
				"AG(disj(x@P1 <= 2, x@P3 <= 2))",
			} {
				fr, err := sess.Snapshot(formula)
				if err != nil {
					fail("session %d: snapshot %s: %v", i, formula, err)
					return
				}
				want, err := core.Detect(full, ctl.MustParse(formula))
				if err != nil {
					fail("session %d: offline %s: %v", i, formula, err)
					return
				}
				if *fr.Holds != want.Holds {
					fail("session %d: snapshot %s = %v, offline says %v", i, formula, *fr.Holds, want.Holds)
					return
				}
				if fr.Event != len(steps) {
					fail("session %d: snapshot at prefix %d, want %d", i, fr.Event, len(steps))
					return
				}
			}

			gb, err := sess.Close()
			if err != nil {
				fail("session %d: close: %v", i, err)
				return
			}
			if gb.Events != len(steps) || gb.Dropped != 0 {
				fail("session %d: goodbye %d events (%d dropped), want %d (0)", i, gb.Events, gb.Dropped, len(steps))
				return
			}

			verdicts := make(map[int]server.ServerFrame)
			for _, fr := range sess.Latched() {
				if fr.Type == server.FrameError {
					fail("session %d: unexpected error frame: %s", i, fr.Error)
					return
				}
				if fr.Type != server.FrameVerdict {
					continue
				}
				if _, dup := verdicts[fr.Watch]; dup {
					fail("session %d: watch %d latched twice", i, fr.Watch)
					return
				}
				verdicts[fr.Watch] = fr
			}

			// Watch 0 (EF) and watch 1 (AG): presence must match offline
			// detection on the full computation, and the latch point must
			// be the exact determining prefix (criterion b).
			efOffline, _ := core.Detect(full, ctl.MustParse("EF("+efPred+")"))
			fr, fired := verdicts[0]
			if fired != efOffline.Holds {
				fail("session %d: EF fired=%v, offline=%v", i, fired, efOffline.Holds)
				return
			}
			if fired {
				if err := exactPrefix(t, steps, fr.Event, "EF("+efPred+")", true); err != nil {
					fail("session %d: EF latch: %v", i, err)
					return
				}
			}
			agOffline, _ := core.Detect(full, ctl.MustParse("AG("+agPred+")"))
			fr, violated := verdicts[1]
			if violated != !agOffline.Holds {
				fail("session %d: AG violated=%v, offline holds=%v", i, violated, agOffline.Holds)
				return
			}
			if violated {
				if fr.Conjunct == "" {
					fail("session %d: AG verdict without failing conjunct", i)
					return
				}
				if err := exactPrefix(t, steps, fr.Event, "AG("+agPred+")", false); err != nil {
					fail("session %d: AG latch: %v", i, err)
					return
				}
			}
			// Watch 2 (STABLE) fires at event 5, the first prefix whose
			// frontier has x@P3 >= 1 with no message in flight.
			fr, ok := verdicts[2]
			if !ok {
				fail("session %d: STABLE watch never fired", i)
				return
			}
			if fr.Event != 5 {
				fail("session %d: STABLE fired at event %d, want 5", i, fr.Event)
				return
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// exactPrefix asserts that formula evaluates to holdsAt on the first k
// scripted events and to !holdsAt on the first k-1 — i.e. event k is the
// exact determining prefix of the verdict.
func exactPrefix(t *testing.T, steps []step, k int, formula string, holdsAt bool) error {
	t.Helper()
	f := ctl.MustParse(formula)
	at, err := core.Detect(buildPrefix(t, steps, k), f)
	if err != nil {
		return err
	}
	if at.Holds != holdsAt {
		return fmt.Errorf("prefix %d: %s = %v, want %v", k, formula, at.Holds, holdsAt)
	}
	if k == 0 {
		return nil
	}
	before, err := core.Detect(buildPrefix(t, steps, k-1), f)
	if err != nil {
		return err
	}
	if before.Holds == holdsAt {
		return fmt.Errorf("prefix %d already decides %s — verdict latched late", k-1, formula)
	}
	return nil
}

// TestBackpressureDropCounters is acceptance criterion (c): with the
// drop overflow policy, a tiny queue, and a slowed monitor loop, induced
// overload must be visible — and exactly accounted — in the goodbye
// frame, the session counters, and the registry metrics.
func TestBackpressureDropCounters(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startServer(t, server.Config{
		QueueDepth:  4,
		Overflow:    server.OverflowDrop,
		IngestDelay: 2 * time.Millisecond,
		Registry:    reg,
	})
	sess, err := client.Dial(addr, client.Config{Processes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("hb_server_sessions_active", "").Value(); got != 1 {
		t.Errorf("sessions_active = %d with a session open, want 1", got)
	}
	// Internal-only events: dropping one never invalidates a later one.
	const total = 200
	for i := 0; i < total; i++ {
		sess.Internal(0, map[string]int{"x": i})
	}
	gb, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if gb.Events+gb.Dropped != total {
		t.Fatalf("events %d + dropped %d != %d streamed", gb.Events, gb.Dropped, total)
	}
	if gb.Dropped == 0 {
		t.Fatal("no events dropped: backpressure was never induced")
	}
	t.Logf("applied %d, dropped %d", gb.Events, gb.Dropped)

	if got := reg.Counter("hb_server_events_total", "").Value(); got != int64(gb.Events) {
		t.Errorf("events_total = %d, goodbye says %d", got, gb.Events)
	}
	if got := reg.Counter("hb_server_events_dropped_total", "").Value(); got != int64(gb.Dropped) {
		t.Errorf("events_dropped_total = %d, goodbye says %d", got, gb.Dropped)
	}
	if got := reg.Counter("hb_server_sessions_opened_total", "").Value(); got != 1 {
		t.Errorf("sessions_opened_total = %d, want 1", got)
	}
	if got := reg.Gauge("hb_server_sessions_active", "").Value(); got != 0 {
		t.Errorf("sessions_active = %d after close, want 0", got)
	}
	if got := reg.Histogram("hb_server_ingest_seconds", "", nil).Count(); got != int64(gb.Events) {
		t.Errorf("ingest histogram has %d observations, want %d", got, gb.Events)
	}
	if srv.SessionCount() != 0 {
		t.Errorf("SessionCount = %d after close", srv.SessionCount())
	}
}

// TestGracefulShutdown: events enqueued before Shutdown are applied (the
// drain), and the goodbye frame carries the shutdown reason.
func TestGracefulShutdown(t *testing.T) {
	reg := obs.NewRegistry()
	srv := server.New(server.Config{Registry: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	sess, err := client.Dial(ln.Addr().String(), client.Config{
		Processes: 3,
		Watches:   []server.Watch{{Op: "EF", Pred: efPred}},
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := script(0)
	stream(sess, steps)
	// A snapshot is a synchronous round-trip through the session queue:
	// once it answers, every event above is applied, so the assertion
	// below is deterministic.
	if _, err := sess.Snapshot("EF(" + efPred + ")"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case <-sess.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("client never saw the session end")
	}
	gb := sess.Goodbye()
	if gb == nil {
		t.Fatal("no goodbye frame after shutdown")
	}
	if gb.Events != len(steps) {
		t.Errorf("drain applied %d events, want %d", gb.Events, len(steps))
	}
	if gb.Error != "server shutting down" {
		t.Errorf("goodbye reason = %q", gb.Error)
	}
	// The verdict latched before shutdown must have been pushed.
	found := false
	for _, fr := range sess.Latched() {
		if fr.Type == server.FrameVerdict && fr.Watch == 0 {
			found = true
		}
	}
	if !found {
		t.Error("EF verdict lost in shutdown")
	}
	if _, err := srv.Open(server.SessionConfig{Processes: 1}); err == nil {
		t.Error("Open succeeded after Shutdown")
	}
}

// TestIdleTimeout: the janitor reclaims sessions that stop ingesting.
func TestIdleTimeout(t *testing.T) {
	reg := obs.NewRegistry()
	srv := server.New(server.Config{IdleTimeout: 50 * time.Millisecond, Registry: reg})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	sess, err := srv.Open(server.SessionConfig{Processes: 2})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sess.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("idle session never reclaimed")
	}
	gb := sess.Goodbye()
	if gb == nil || gb.Error != "idle timeout" {
		t.Fatalf("goodbye = %+v, want idle timeout", gb)
	}
	if srv.SessionCount() != 0 {
		t.Errorf("SessionCount = %d after idle close", srv.SessionCount())
	}
}

// TestProtocolErrors drives the TCP transport with hostile and
// out-of-order frames: structural garbage is fatal, semantic errors are
// per-frame and the session survives them.
func TestProtocolErrors(t *testing.T) {
	_, addr := startServer(t, server.Config{})

	t.Run("garbage hello", func(t *testing.T) {
		fr := rawExchange(t, addr, "this is not json\n")
		if fr.Type != server.FrameError {
			t.Fatalf("got %q frame, want error", fr.Type)
		}
	})
	t.Run("hello with zero processes", func(t *testing.T) {
		fr := rawExchange(t, addr, `{"type":"hello","processes":0}`+"\n")
		if fr.Type != server.FrameError {
			t.Fatalf("got %q frame, want error", fr.Type)
		}
	})
	t.Run("hello with bad watch", func(t *testing.T) {
		fr := rawExchange(t, addr, `{"type":"hello","processes":2,"watches":[{"op":"EX","pred":"x@P1 == 1"}]}`+"\n")
		if fr.Type != server.FrameError {
			t.Fatalf("got %q frame, want error", fr.Type)
		}
	})
	t.Run("unknown field", func(t *testing.T) {
		fr := rawExchange(t, addr, `{"type":"hello","processes":2,"bogus":1}`+"\n")
		if fr.Type != server.FrameError {
			t.Fatalf("got %q frame, want error", fr.Type)
		}
	})

	t.Run("semantic errors are survivable", func(t *testing.T) {
		sess, err := client.Dial(addr, client.Config{Processes: 2})
		if err != nil {
			t.Fatal(err)
		}
		sess.Internal(5, nil)    // process out of range
		sess.Receive(1, 99, nil) // unknown message
		sess.SendMsg(0, 7, nil)  // fine
		sess.SendMsg(1, 7, nil)  // duplicate message id
		sess.Receive(1, 7, nil)  // fine
		sess.Receive(1, 7, nil)  // received twice
		sess.Internal(0, nil)    // fine: session still alive
		gb, err := sess.Close()
		if err != nil {
			t.Fatal(err)
		}
		if gb.Events != 3 {
			t.Errorf("applied %d events, want 3 (send, receive, internal)", gb.Events)
		}
		errFrames := 0
		for _, fr := range sess.Latched() {
			if fr.Type == server.FrameError {
				errFrames++
			}
		}
		if errFrames != 4 {
			t.Errorf("got %d error frames, want 4", errFrames)
		}
	})
}

// rawExchange writes raw bytes to a fresh connection and decodes the
// first response frame.
func rawExchange(t *testing.T, addr, payload string) server.ServerFrame {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte(payload)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	var fr server.ServerFrame
	line, _, _ := bytes.Cut(buf[:n], []byte("\n"))
	if err := json.Unmarshal(line, &fr); err != nil {
		t.Fatalf("bad response %q: %v", buf[:n], err)
	}
	return fr
}

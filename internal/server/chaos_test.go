package server_test

import (
	"context"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
)

// chaosSeeds returns the fault-schedule seeds to run: the CI chaos job
// sets HB_CHAOS_SEEDS to sweep a matrix; the default keeps local runs
// fast but still seeded.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	spec := os.Getenv("HB_CHAOS_SEEDS")
	if spec == "" {
		spec = "1,7"
	}
	var seeds []int64
	for _, s := range strings.Split(spec, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			t.Fatalf("HB_CHAOS_SEEDS: %v", err)
		}
		seeds = append(seeds, v)
	}
	return seeds
}

// TestChaosResumedSessionsMatchOffline is the fault-tolerance acceptance
// test: many concurrent resumable sessions stream the scripted
// computation through a flaky proxy injecting seeded resets, partial
// writes, duplicates, delays, and (upstream only) silent drops. Half
// the sessions speak NDJSON, half the binary batched encoding (batch
// size 3, so faults land mid-batch), sharing one server. Despite
// arbitrary connection loss and redelivery, every session must latch
// exactly the verdicts of offline core.Detect at the exact determining
// prefixes, the server's exactly-once counters must reconcile, and no
// goroutine may leak.
func TestChaosResumedSessionsMatchOffline(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runChaos(t, seed) })
	}
}

func runChaos(t *testing.T, seed int64) {
	baseline := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	srv := server.New(server.Config{
		AckEvery: 4,
		// Short enough that a session whose bye frame the proxy ate is
		// reclaimed (and its goodbye emitted) well inside the client's
		// close timeout; long enough that no live client, with its
		// sub-second reconnect backoff, ever idles into it.
		IdleTimeout: 3 * time.Second,
		Registry:    reg,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // closed by Shutdown

	up := faults.Config{Seed: seed, Reset: 0.02, Partial: 0.01, Drop: 0.03, Dup: 0.05, Delay: 0.10, MaxDelay: 2 * time.Millisecond}
	down := up
	down.Drop = 0 // silent downstream drops are undetectable by design; see NewProxyAsym
	proxy, err := faults.NewProxyAsym(ln.Addr().String(), up, down)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos run via %s", proxy)

	const sessions = 12
	var wg sync.WaitGroup
	errs := make(chan error, sessions*4)
	fail := func(format string, args ...any) { errs <- fmt.Errorf(format, args...) }
	var mu sync.Mutex
	var reconnects, replayed int
	var goodbyes int

	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			extra := i % 2
			steps := script(extra)
			full := buildPrefix(t, steps, len(steps))

			cfg := client.Config{
				Processes: 3,
				Watches: []server.Watch{
					{Op: "EF", Pred: efPred},
					{Op: "AG", Pred: agPred},
					{Op: "STABLE", Pred: stablePred},
				},
				Reconnect:   true,
				DialTimeout: 300 * time.Millisecond,
				BackoffBase: 2 * time.Millisecond,
				BackoffMax:  50 * time.Millisecond,
				MaxAttempts: 40,
				JitterSeed:  seed + int64(i),
			}
			if i < sessions/2 {
				// Interop half: batched binary frames through the same
				// flaky proxy — a dropped frame loses 3 events at once, a
				// duplicated one redelivers 3, and the verdicts must still
				// be bit-identical to the NDJSON half and to offline.
				cfg.Encoding = server.EncodingBinary
				cfg.BatchSize = 3
			}
			// The initial dial goes through the proxy too; a handshake
			// eaten by a fault is the client's problem to retry.
			var sess *client.Session
			var derr error
			for try := 0; try < 10; try++ {
				if sess, derr = client.Dial(proxy.Addr(), cfg); derr == nil {
					break
				}
			}
			if derr != nil {
				fail("session %d: dial never succeeded: %v", i, derr)
				return
			}
			stream(sess, steps)
			gb, cerr := sess.Close()
			if cerr != nil && gb == nil {
				// Tolerated: the goodbye itself can be lost after the
				// session is already over server-side. Verdicts are
				// verified below and accounting via the registry.
				t.Logf("session %d: close without goodbye: %v", i, cerr)
			} else if cerr != nil {
				fail("session %d: close: %v", i, cerr)
				return
			}
			if gb != nil {
				if gb.Events != len(steps) || gb.Dropped != 0 {
					fail("session %d: goodbye %d events (%d dropped), want %d (0)", i, gb.Events, gb.Dropped, len(steps))
				}
				mu.Lock()
				goodbyes++
				mu.Unlock()
			}

			st := sess.Stats()
			mu.Lock()
			reconnects += st.Reconnects
			replayed += st.Replayed
			mu.Unlock()

			// Exactly-once ingestion means no semantic error frames: a
			// redelivered send would otherwise error as a duplicate msg.
			verdicts := make(map[int]server.ServerFrame)
			for _, fr := range sess.Latched() {
				switch fr.Type {
				case server.FrameError:
					fail("session %d: unexpected error frame: %s (%s)", i, fr.Error, fr.Code)
					return
				case server.FrameVerdict:
					if _, dup := verdicts[fr.Watch]; dup {
						fail("session %d: watch %d latched twice (replay dedupe broken)", i, fr.Watch)
						return
					}
					verdicts[fr.Watch] = fr
				}
			}

			// Verdicts and determining prefixes must be bit-identical to
			// offline detection, interruptions notwithstanding.
			efOffline, _ := core.Detect(full, ctl.MustParse("EF("+efPred+")"))
			fr, fired := verdicts[0]
			if fired != efOffline.Holds {
				fail("session %d: EF fired=%v, offline=%v", i, fired, efOffline.Holds)
				return
			}
			if fired {
				if err := exactPrefix(t, steps, fr.Event, "EF("+efPred+")", true); err != nil {
					fail("session %d: EF latch: %v", i, err)
					return
				}
			}
			agOffline, _ := core.Detect(full, ctl.MustParse("AG("+agPred+")"))
			fr, violated := verdicts[1]
			if violated != !agOffline.Holds {
				fail("session %d: AG violated=%v, offline holds=%v", i, violated, agOffline.Holds)
				return
			}
			if violated {
				if err := exactPrefix(t, steps, fr.Event, "AG("+agPred+")", false); err != nil {
					fail("session %d: AG latch: %v", i, err)
					return
				}
			}
			fr, ok := verdicts[2]
			if !ok {
				fail("session %d: STABLE watch never fired", i)
				return
			}
			if fr.Event != 5 {
				fail("session %d: STABLE fired at event %d, want 5", i, fr.Event)
				return
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Metrics reconciliation: every streamed event was accepted once,
	// journaled once, and detected once — nothing dropped, nothing
	// double-applied. (Orphan sessions from half-lost handshakes carry
	// zero events, so the totals are exact.)
	steps := int64(len(script(0)))
	events := reg.Counter("hb_server_events_total", "").Value()
	journaled := reg.Counter("hb_server_events_journaled_total", "").Value()
	if events != sessions*steps {
		t.Errorf("events_total = %d, want %d (exactly-once ingestion violated)", events, sessions*steps)
	}
	if journaled != events {
		t.Errorf("journaled_total = %d != events_total = %d", journaled, events)
	}
	if d := reg.Counter("hb_server_events_dropped_total", "").Value(); d != 0 {
		t.Errorf("events_dropped_total = %d on resumable sessions, want 0", d)
	}
	dupes := reg.Counter("hb_server_events_duplicate_total", "").Value()
	resumes := reg.Counter(`hb_server_resumes_total{result="ok"}`, "").Value()
	t.Logf("seed %d: %d reconnects, %d frames replayed, %d duplicates dropped, %d resumes, %d/%d goodbyes",
		seed, reconnects, replayed, dupes, resumes, goodbyes, sessions)

	proxy.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Zero goroutine leaks: reconnect loops, pumps, readers, writers and
	// monitor loops must all have wound down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			pprof.Lookup("goroutine").WriteTo(os.Stderr, 1) //nolint:errcheck
			t.Fatalf("goroutine leak: %d live, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

package server_test

import (
	"context"
	"fmt"
	"net"
	"sort"
	"testing"
	"time"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/spanhb"
	"repro/internal/vclock"
)

// collectSpans runs one server with a ring-backed tracer, drives it with
// drive, shuts it down (the barrier that guarantees every span has
// ended), and returns the completed spans.
func collectSpans(t *testing.T, cfg server.Config, drive func(addr string)) []obs.SpanRecord {
	t.Helper()
	ring := obs.NewSpanRing(256)
	cfg.Tracer = obs.NewTracer(nil).Mirror(ring)
	cfg.Registry = obs.NewRegistry()
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // closed by Shutdown
	drive(ln.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	spans, _ := ring.Snapshot()
	return spans
}

// driveOneFrame runs the minimal fully-serialized session: one event
// that latches an EF verdict (awaited, so the monitor-side spans exist
// before the next frame is sent), one snapshot barrier, then bye. Every
// span allocation is ordered by this dialog, so span ids are a golden
// sequence.
func driveOneFrame(t *testing.T) func(addr string) {
	return func(addr string) {
		sess, err := client.Dial(addr, client.Config{
			Processes: 1,
			Watches:   []server.Watch{{Op: "EF", Pred: "conj(x@P1 == 1)"}},
		})
		if err != nil {
			t.Error(err)
			return
		}
		sess.Internal(0, map[string]int{"x": 1})
		select {
		case <-sess.Verdicts():
		case <-time.After(5 * time.Second):
			t.Error("verdict never latched")
		}
		if _, err := sess.Snapshot("EF(conj(x@P1 == 1))"); err != nil {
			t.Error(err)
		}
		if _, err := sess.Close(); err != nil {
			t.Error(err)
		}
	}
}

// TestSpanPropagationGolden pins the span tree of a single frame's full
// server traversal: names in allocation order, parent links, trace
// identity, and stage completion order. The tree must not depend on the
// snapshot worker count.
func TestSpanPropagationGolden(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			spans := collectSpans(t, server.Config{Workers: workers}, driveOneFrame(t))

			// Span ids are allocated from a per-tracer counter, so sorting
			// by id recovers allocation order regardless of end order.
			byAlloc := append([]obs.SpanRecord(nil), spans...)
			sort.Slice(byAlloc, func(a, b int) bool { return byAlloc[a].ID < byAlloc[b].ID })
			var names []string
			for _, r := range byAlloc {
				names = append(names, r.Span)
			}
			want := []string{
				"session", "accept",
				"decode", "frame", "enqueue", "apply", "verdict", // the event
				"decode", "frame", "enqueue", "apply", // the snapshot
				"decode", // the bye
			}
			if fmt.Sprint(names) != fmt.Sprint(want) {
				t.Fatalf("allocation order:\n got %v\nwant %v", names, want)
			}

			// One trace; parent links form the expected tree.
			byID := make(map[string]obs.SpanRecord, len(spans))
			for _, r := range spans {
				byID[r.ID] = r
			}
			session := byAlloc[0]
			if session.Parent != "" {
				t.Errorf("session span has parent %q", session.Parent)
			}
			for _, r := range spans {
				if r.Trace != session.Trace {
					t.Errorf("span %s in trace %q, want %q", r.Span, r.Trace, session.Trace)
				}
			}
			parentName := func(r obs.SpanRecord) string { return byID[r.Parent].Span }
			wantParent := map[string]string{
				"accept": "session", "decode": "session", "frame": "session",
				"enqueue": "frame", "apply": "frame", "verdict": "frame",
			}
			for _, r := range spans {
				if r.Span == "session" {
					continue
				}
				if got := parentName(r); got != wantParent[r.Span] {
					t.Errorf("%s span parented under %q, want %q", r.Span, got, wantParent[r.Span])
				}
			}

			// The event frame's stages complete in pipeline order: enqueue
			// before verdict before apply before the frame span itself
			// (apply ends after the verdicts it latched; the frame span
			// closes last). Ring order is end order.
			idx := map[string]int{}
			frameID := byAlloc[3].ID
			for i, r := range spans {
				if r.ID == frameID || r.Parent == frameID {
					idx[r.Span] = i
				}
			}
			if !(idx["enqueue"] < idx["verdict"] && idx["verdict"] < idx["apply"] && idx["apply"] < idx["frame"]) {
				t.Errorf("stage completion order wrong: %v", idx)
			}

			// The verdict span carries the watch identity.
			verdict := byAlloc[6]
			if verdict.Attrs["op"] != "EF" || verdict.Attrs["service"] != "monitor" {
				t.Errorf("verdict attrs = %v", verdict.Attrs)
			}
		})
	}
}

// TestDogfoodSpansRoundTrip closes the loop: the server's own pipeline
// spans are lowered back onto the happened-before model and the
// detection algorithms run over them. The lowered vector clocks must
// satisfy the vclock consistency oracle, and temporal predicates about
// the server's own causality must agree between offline detection and
// an online monitor replay.
func TestDogfoodSpansRoundTrip(t *testing.T) {
	recs := collectSpans(t, server.Config{}, driveOneFrame(t))
	spans := spanhb.FromObs(recs)
	if len(spans) != len(recs) {
		t.Fatalf("FromObs kept %d of %d spans", len(spans), len(recs))
	}
	// Persist attributes: latched facts must stay visible to AG.
	r, err := spanhb.Lower(spans, spanhb.Options{PersistAttrs: true})
	if err != nil {
		t.Fatal(err)
	}
	proc := func(svc string) int {
		for i, s := range r.Services {
			if s == svc {
				return i
			}
		}
		t.Fatalf("no service %q in %v", svc, r.Services)
		return -1
	}
	mon, tr := proc("monitor"), proc("transport")
	if proc("session") < 0 {
		t.Fatal("session service missing")
	}

	// The lowered clocks are real vector clocks: valid per-process
	// timelines, and every message sent before it is received.
	comp := r.Comp
	for i := 0; i < comp.N(); i++ {
		clocks := make([]vclock.VC, 0, comp.Len(i))
		for _, e := range comp.Events(i) {
			clocks = append(clocks, e.Clock)
		}
		if err := vclock.CheckTimeline(i, clocks); err != nil {
			t.Errorf("%s: %v", r.Services[i], err)
		}
	}
	for _, m := range comp.Messages() {
		s, rcv := comp.SendOf(m), comp.RecvOf(m)
		if rcv == nil || !s.Clock.Less(rcv.Clock) {
			t.Errorf("message %d: causality broken (%v → %v)", m, s.Clock, rcv)
		}
	}

	// Causality of the server's own pipeline, as Table 1 predicates.
	// "The monitor never works before the transport has delivered
	// something": provable only because parent/child span edges became
	// messages — without them the concurrent cuts would violate it.
	detect := func(src string) bool {
		t.Helper()
		res, err := core.Detect(comp, ctl.MustParse(src))
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		return res.Holds
	}
	causal := fmt.Sprintf("AG(disj(done@P%d == 0, started@P%d >= 1))", mon+1, tr+1)
	if !detect(causal) {
		t.Errorf("%s should hold: monitor work is caused by transport frames", causal)
	}
	if detect(fmt.Sprintf("EF(conj(done@P%d >= 1, started@P%d == 0))", mon+1, tr+1)) {
		t.Error("found a cut where the monitor finished work before any transport frame existed")
	}

	// Offline and online must agree (the acceptance criterion). The
	// verdict span runs inside the apply span, so monitor inflight
	// reaches 2 and never exceeds it.
	efSrc := fmt.Sprintf("inflight@P%d >= 2", mon+1)
	agOK := fmt.Sprintf("inflight@P%d <= 2", mon+1)
	agBad := fmt.Sprintf("inflight@P%d <= 0", mon+1)
	offEF := detect("EF(conj(" + efSrc + "))")
	offOK := detect("AG(conj(" + agOK + "))")
	offBad := detect("AG(conj(" + agBad + "))")

	m := online.NewMonitor(comp.N())
	watch := func(op, src string) any {
		t.Helper()
		locals, err := online.ParseConj(src)
		if err != nil {
			t.Fatal(err)
		}
		if op == "EF" {
			return m.WatchEF(locals...)
		}
		return m.WatchAG(locals...)
	}
	ef := watch("EF", efSrc).(*online.EFWatch)
	ok := watch("AG", agOK).(*online.AGWatch)
	bad := watch("AG", agBad).(*online.AGWatch)

	ids := make(map[int]int)
	seq := comp.SomeLinearization()
	for s := 1; s < len(seq); s++ {
		prev, cur := seq[s-1], seq[s]
		for p := range cur {
			if cur[p] <= prev[p] {
				continue
			}
			e := comp.Event(p, cur[p])
			switch e.Kind {
			case computation.Internal:
				m.Internal(p, e.Sets)
			case computation.Send:
				ids[e.Msg] = m.Send(p, e.Sets)
			case computation.Receive:
				if err := m.Receive(p, ids[e.Msg], e.Sets); err != nil {
					t.Fatal(err)
				}
			}
			break
		}
	}
	if ef.Fired() != offEF {
		t.Errorf("EF(%s): online %v, offline %v", efSrc, ef.Fired(), offEF)
	}
	if !ok.Violated() != offOK {
		t.Errorf("AG(%s): online held=%v, offline %v", agOK, !ok.Violated(), offOK)
	}
	if !bad.Violated() != offBad {
		t.Errorf("AG(%s): online held=%v, offline %v", agBad, !bad.Violated(), offBad)
	}
	if !offEF || !offOK || offBad {
		t.Errorf("verdict pattern unexpected: EF=%v AG(ok)=%v AG(bad)=%v", offEF, offOK, offBad)
	}
}

package server

import "sync"

// numShards splits the session table so concurrent handshakes,
// removals, and lookups on different sessions never share a lock —
// with batched ingest one global mutex would become the next
// bottleneck right after the JSON decoder. Power of two so the hash
// folds with a mask.
const numShards = 32

// tableShard is one slice of the session table: a lock, the live
// sessions hashed onto it, the morgue entries of finished resumable
// sessions, and the tombstones of superseded ones. A session and its
// terminal morgue/tombstone state share a shard (same id, same hash),
// so a keyed re-open superseding old terminal state stays a
// single-lock operation.
type tableShard struct {
	mu         sync.Mutex
	sessions   map[string]*Session
	morgue     map[string]morgueEntry
	tombstones map[string]tombstone
}

// shard returns the table shard owning id (FNV-1a over the id bytes,
// masked to the shard count).
func (s *Server) shard(id string) *tableShard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return &s.shards[h&(numShards-1)]
}

package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pir"
)

// FuzzDecodeClientFrame asserts the wire decoder never panics on
// arbitrary network bytes and that structural constraints (unknown
// fields, trailing data, frame size) are enforced.
func FuzzDecodeClientFrame(f *testing.F) {
	f.Add([]byte(`{"type":"hello","processes":3,"watches":[{"op":"EF","pred":"conj(x@P1 == 1)"}]}`))
	f.Add([]byte(`{"type":"init","proc":1,"var":"x","value":7}`))
	f.Add([]byte(`{"type":"event","proc":1,"kind":"send","msg":3,"sets":{"x":1}}`))
	f.Add([]byte(`{"type":"event","proc":2,"kind":"receive","msg":3}`))
	f.Add([]byte(`{"type":"snapshot","id":1,"formula":"EF(x@P1 == 1)"}`))
	f.Add([]byte(`{"type":"bye"}`))
	f.Add([]byte(`{"type":"hello","processes":9999999999}`))
	f.Add([]byte(`{"type":"hello"}{"type":"bye"}`)) // trailing data
	f.Add([]byte(`{"type":"hello","bogus":1}`))     // unknown field
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte{0x00, 0xff, 0xfe})
	f.Add([]byte(``))
	// Resume-protocol frames and hostile sequence numbers.
	f.Add([]byte(`{"type":"hello","processes":2,"resumable":true}`))
	f.Add([]byte(`{"type":"resume","session":"s-0001","seq":42}`))
	f.Add([]byte(`{"type":"resume","session":"","seq":0}`))                          // missing session
	f.Add([]byte(`{"type":"resume","session":"s-0001","seq":-1}`))                   // negative seq
	f.Add([]byte(`{"type":"resume","session":"s-0001","seq":9223372036854775807}`))  // int64 max
	f.Add([]byte(`{"type":"resume","session":"s-0001","seq":92233720368547758070}`)) // overflows int64
	f.Add([]byte(`{"type":"event","proc":1,"kind":"internal","seq":-9223372036854775808}`))
	f.Add([]byte(`{"type":"event","proc":1,"kind":"internal","seq":9223372036854775807}`))
	f.Add([]byte(`{"type":"bye","seq":7}`))
	f.Add([]byte(`{"type":"ack","seq":3}`)) // server frame type sent by a confused client
	// Encoding negotiation and JSON-carried batch frames.
	f.Add([]byte(`{"type":"hello","processes":2,"encoding":"binary"}`))
	f.Add([]byte(`{"type":"hello","processes":2,"encoding":"morse"}`))
	f.Add([]byte(`{"type":"resume","session":"s-0001","seq":1,"encoding":"binary"}`))
	f.Add([]byte(`{"type":"batch","seq":1,"batch":{"procs":[1],"kinds":"AA==","setoff":[0,1],"sets":[{"n":"x","v":1}]}}`))
	// Durability negotiation: the hello's ack-gate mode must parse or be
	// rejected, never silently coerced.
	f.Add([]byte(`{"type":"hello","processes":2,"resumable":true,"durability":"durable"}`))
	f.Add([]byte(`{"type":"hello","processes":2,"resumable":true,"durability":"available"}`))
	f.Add([]byte(`{"type":"hello","processes":2,"resumable":true,"durability":"DURABLE"}`))
	f.Add([]byte(`{"type":"hello","processes":2,"resumable":true,"durability":"paxos"}`))
	f.Add([]byte(`{"type":"hello","processes":2,"durability":" "}`))

	f.Fuzz(func(t *testing.T, line []byte) {
		fr, err := DecodeClientFrame(line)
		if err != nil {
			return
		}
		if fr.Type == FrameHello {
			if ValidateHello(fr) == nil {
				if fr.Processes < 1 || fr.Processes > MaxProcesses {
					t.Fatalf("ValidateHello accepted %d processes", fr.Processes)
				}
				if len(fr.Watches) > MaxWatches {
					t.Fatalf("ValidateHello accepted %d watches", len(fr.Watches))
				}
				switch fr.Durability {
				case "", "available", "durable":
				default:
					t.Fatalf("ValidateHello accepted durability %q", fr.Durability)
				}
			}
		}
		if fr.Type == FrameResume {
			if ValidateResume(fr) == nil {
				if fr.Session == "" {
					t.Fatal("ValidateResume accepted an empty session id")
				}
				if fr.Seq < 0 {
					t.Fatalf("ValidateResume accepted negative seq %d", fr.Seq)
				}
			}
		}
	})
}

// fuzzSrv is the shared server FuzzFirstFrame connections hit; one per
// process keeps iterations cheap.
var (
	fuzzSrvOnce sync.Once
	fuzzSrvAddr string
	fuzzSrv     *Server
)

func fuzzServer(f *testing.F) string {
	fuzzSrvOnce.Do(func() {
		fuzzSrv = New(Config{Registry: obs.NewRegistry(), ReadTimeout: time.Second, IdleTimeout: time.Second})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Fatal(err)
		}
		go fuzzSrv.Serve(ln) //nolint:errcheck
		fuzzSrvAddr = ln.Addr().String()
	})
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		fuzzSrv.Shutdown(ctx) //nolint:errcheck // repeated shutdown across fuzz targets is fine
	})
	return fuzzSrvAddr
}

// FuzzFirstFrame throws arbitrary bytes at a live server as the opening
// frame of a fresh connection — hello, resume-before-hello, hostile
// seqs, garbage — and asserts the server answers (or closes) without
// wedging and stays up for the next connection.
func FuzzFirstFrame(f *testing.F) {
	f.Add([]byte(`{"type":"hello","processes":2,"resumable":true}`))
	f.Add([]byte(`{"type":"resume","session":"s-0001","seq":0}`))  // resume before any hello
	f.Add([]byte(`{"type":"resume","session":"s-0001","seq":-5}`)) // negative seq
	f.Add([]byte(`{"type":"resume","session":"s-0001","seq":9223372036854775807}`))
	f.Add([]byte(`{"type":"event","proc":1,"kind":"internal"}`)) // event before hello
	f.Add([]byte(`{"type":"bye"}`))
	f.Add([]byte(`{"type":"resume"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{FrameMagic, BinBatch, 0x02, 0x02, 0x00}) // binary frame before any handshake
	// Replication-protocol openers on the shared listener: a standalone
	// server has no takeover hook, so these must be cleanly rejected as
	// unknown client frames, and hostile epochs must never wedge triage.
	f.Add([]byte(`{"type":"repl-hello","from":"127.0.0.1:1"}`))
	f.Add([]byte(`{"type":"repl-open","session":"k","epoch":-1}`))
	f.Add([]byte(`{"type":"repl-open","session":"k","epoch":9223372036854775807}`))
	f.Add([]byte(`{"type":"repl-frame","session":"k","epoch":1,"seq":1}`))
	f.Add([]byte(`{"type":"repl-handoff","session":"k","epoch":2,"seq":0}`))
	f.Add([]byte(`{"type":"repl-reject","session":"k","code":"stale-epoch","epoch":3}`))
	f.Add([]byte(`{"type":"hello","processes":2,"resumable":true,"durability":"durable"}`))
	f.Add([]byte(`{"type":"hello","processes":2,"resumable":true,"durability":"quorum"}`))
	addr := fuzzServer(f)

	f.Fuzz(func(t *testing.T, line []byte) {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Skip("server saturated") // accept backlog under fuzz load, not a bug
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(3 * time.Second))
		conn.Write(append(line, '\n')) //nolint:errcheck // server may reject early
		// Whatever we sent, the connection must terminate promptly: a
		// frame response, a close, or the read timeout server-side.
		// Drain with the same bounded scanner the server uses, so the
		// harness and the implementation can never disagree on the frame
		// size limit.
		sc := NewFrameScanner(conn)
		for sc.Scan() {
			// drain until the server closes or the deadline trips
		}
	})
}

// FuzzBinaryFrames drives arbitrary bytes through the exact pipeline a
// binary connection uses — the shared bounded frame scanner, the seq
// header split, the batch body decoder with a persistent interning
// table — and asserts the invariant the ingest path relies on: nothing
// panics, the scanner never yields an oversized frame, and any batch
// that decodes also validates. Seeds cover a well-formed batched
// stream, truncation at both frame and body granularity, hostile
// declared lengths, and NDJSON/binary mixed streams.
func FuzzBinaryFrames(f *testing.F) {
	valid := func() []byte {
		b := pir.GetBatch()
		b.AddInit(1, "x", 1)
		b.AddEvent(1, pir.EvSend, 3, map[string]int{"x": 2, "y": -1})
		b.AddEvent(2, pir.EvReceive, 3, nil)
		b.AddEvent(2, pir.EvInternal, 0, map[string]int{"y": 7})
		var vt pir.VarTable
		payload := pir.AppendBatch(nil, 1, b, &vt)
		frame := AppendBinaryFrame(nil, BinBatch, payload)
		b2 := pir.GetBatch()
		b2.AddEvent(1, pir.EvInternal, 0, map[string]int{"x": 3}) // references the interned "x"
		return AppendBinaryFrame(frame, BinBatch, pir.AppendBatch(nil, 2, b2, &vt))
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                                                // truncated mid-frame
	f.Add(valid[:3])                                                                           // truncated header
	f.Add(append([]byte(`{"type":"hello","processes":2,"encoding":"binary"}`+"\n"), valid...)) // mixed stream
	f.Add(append(append([]byte{}, valid...), '\n'))                                            // binary then a blank NDJSON line
	f.Add([]byte{FrameMagic})
	f.Add([]byte{FrameMagic, BinBatch})
	f.Add([]byte{FrameMagic, BinBatch, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})             // huge declared length
	f.Add([]byte{FrameMagic, BinBatch, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}) // overlong uvarint
	f.Add([]byte{FrameMagic, 0x7f, 0x00})                                                                       // unknown frame type
	f.Add(binary.AppendUvarint([]byte{FrameMagic, BinBatch}, MaxFrameBytes+1))
	f.Add([]byte{FrameMagic, BinBatch, 0x03, 0x01, 0xff, 0x01}) // seq 1, garbage body

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewFrameScanner(bytes.NewReader(data))
		var vt pir.VarTable
		for sc.Scan() {
			if len(sc.Bytes()) > MaxFrameBytes {
				t.Fatalf("scanner yielded %d bytes, cap %d", len(sc.Bytes()), MaxFrameBytes)
			}
			if !sc.Binary() || sc.BinaryType() != BinBatch {
				continue
			}
			seq, body, err := pir.BatchSeq(sc.Bytes())
			if err != nil {
				continue
			}
			if seq < 0 {
				t.Fatalf("BatchSeq returned negative seq %d", seq)
			}
			b := pir.GetBatch()
			if err := b.DecodeBody(body, &vt); err != nil {
				b.Recycle()
				continue
			}
			if err := b.Validate(); err != nil {
				t.Fatalf("decoded batch fails Validate: %v", err)
			}
			b.Recycle()
		}
	})
}

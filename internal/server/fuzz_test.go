package server

import (
	"testing"
)

// FuzzDecodeClientFrame asserts the wire decoder never panics on
// arbitrary network bytes and that structural constraints (unknown
// fields, trailing data, frame size) are enforced.
func FuzzDecodeClientFrame(f *testing.F) {
	f.Add([]byte(`{"type":"hello","processes":3,"watches":[{"op":"EF","pred":"conj(x@P1 == 1)"}]}`))
	f.Add([]byte(`{"type":"init","proc":1,"var":"x","value":7}`))
	f.Add([]byte(`{"type":"event","proc":1,"kind":"send","msg":3,"sets":{"x":1}}`))
	f.Add([]byte(`{"type":"event","proc":2,"kind":"receive","msg":3}`))
	f.Add([]byte(`{"type":"snapshot","id":1,"formula":"EF(x@P1 == 1)"}`))
	f.Add([]byte(`{"type":"bye"}`))
	f.Add([]byte(`{"type":"hello","processes":9999999999}`))
	f.Add([]byte(`{"type":"hello"}{"type":"bye"}`)) // trailing data
	f.Add([]byte(`{"type":"hello","bogus":1}`))     // unknown field
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte{0x00, 0xff, 0xfe})
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, line []byte) {
		fr, err := DecodeClientFrame(line)
		if err != nil {
			return
		}
		if fr.Type == FrameHello {
			if ValidateHello(fr) == nil {
				if fr.Processes < 1 || fr.Processes > MaxProcesses {
					t.Fatalf("ValidateHello accepted %d processes", fr.Processes)
				}
				if len(fr.Watches) > MaxWatches {
					t.Fatalf("ValidateHello accepted %d watches", len(fr.Watches))
				}
			}
		}
	})
}

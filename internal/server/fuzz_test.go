package server

import (
	"bufio"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// FuzzDecodeClientFrame asserts the wire decoder never panics on
// arbitrary network bytes and that structural constraints (unknown
// fields, trailing data, frame size) are enforced.
func FuzzDecodeClientFrame(f *testing.F) {
	f.Add([]byte(`{"type":"hello","processes":3,"watches":[{"op":"EF","pred":"conj(x@P1 == 1)"}]}`))
	f.Add([]byte(`{"type":"init","proc":1,"var":"x","value":7}`))
	f.Add([]byte(`{"type":"event","proc":1,"kind":"send","msg":3,"sets":{"x":1}}`))
	f.Add([]byte(`{"type":"event","proc":2,"kind":"receive","msg":3}`))
	f.Add([]byte(`{"type":"snapshot","id":1,"formula":"EF(x@P1 == 1)"}`))
	f.Add([]byte(`{"type":"bye"}`))
	f.Add([]byte(`{"type":"hello","processes":9999999999}`))
	f.Add([]byte(`{"type":"hello"}{"type":"bye"}`)) // trailing data
	f.Add([]byte(`{"type":"hello","bogus":1}`))     // unknown field
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte{0x00, 0xff, 0xfe})
	f.Add([]byte(``))
	// Resume-protocol frames and hostile sequence numbers.
	f.Add([]byte(`{"type":"hello","processes":2,"resumable":true}`))
	f.Add([]byte(`{"type":"resume","session":"s-0001","seq":42}`))
	f.Add([]byte(`{"type":"resume","session":"","seq":0}`))                          // missing session
	f.Add([]byte(`{"type":"resume","session":"s-0001","seq":-1}`))                   // negative seq
	f.Add([]byte(`{"type":"resume","session":"s-0001","seq":9223372036854775807}`))  // int64 max
	f.Add([]byte(`{"type":"resume","session":"s-0001","seq":92233720368547758070}`)) // overflows int64
	f.Add([]byte(`{"type":"event","proc":1,"kind":"internal","seq":-9223372036854775808}`))
	f.Add([]byte(`{"type":"event","proc":1,"kind":"internal","seq":9223372036854775807}`))
	f.Add([]byte(`{"type":"bye","seq":7}`))
	f.Add([]byte(`{"type":"ack","seq":3}`)) // server frame type sent by a confused client

	f.Fuzz(func(t *testing.T, line []byte) {
		fr, err := DecodeClientFrame(line)
		if err != nil {
			return
		}
		if fr.Type == FrameHello {
			if ValidateHello(fr) == nil {
				if fr.Processes < 1 || fr.Processes > MaxProcesses {
					t.Fatalf("ValidateHello accepted %d processes", fr.Processes)
				}
				if len(fr.Watches) > MaxWatches {
					t.Fatalf("ValidateHello accepted %d watches", len(fr.Watches))
				}
			}
		}
		if fr.Type == FrameResume {
			if ValidateResume(fr) == nil {
				if fr.Session == "" {
					t.Fatal("ValidateResume accepted an empty session id")
				}
				if fr.Seq < 0 {
					t.Fatalf("ValidateResume accepted negative seq %d", fr.Seq)
				}
			}
		}
	})
}

// fuzzSrv is the shared server FuzzFirstFrame connections hit; one per
// process keeps iterations cheap.
var (
	fuzzSrvOnce sync.Once
	fuzzSrvAddr string
	fuzzSrv     *Server
)

func fuzzServer(f *testing.F) string {
	fuzzSrvOnce.Do(func() {
		fuzzSrv = New(Config{Registry: obs.NewRegistry(), ReadTimeout: time.Second, IdleTimeout: time.Second})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Fatal(err)
		}
		go fuzzSrv.Serve(ln) //nolint:errcheck
		fuzzSrvAddr = ln.Addr().String()
	})
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		fuzzSrv.Shutdown(ctx) //nolint:errcheck // repeated shutdown across fuzz targets is fine
	})
	return fuzzSrvAddr
}

// FuzzFirstFrame throws arbitrary bytes at a live server as the opening
// frame of a fresh connection — hello, resume-before-hello, hostile
// seqs, garbage — and asserts the server answers (or closes) without
// wedging and stays up for the next connection.
func FuzzFirstFrame(f *testing.F) {
	f.Add([]byte(`{"type":"hello","processes":2,"resumable":true}`))
	f.Add([]byte(`{"type":"resume","session":"s-0001","seq":0}`))  // resume before any hello
	f.Add([]byte(`{"type":"resume","session":"s-0001","seq":-5}`)) // negative seq
	f.Add([]byte(`{"type":"resume","session":"s-0001","seq":9223372036854775807}`))
	f.Add([]byte(`{"type":"event","proc":1,"kind":"internal"}`)) // event before hello
	f.Add([]byte(`{"type":"bye"}`))
	f.Add([]byte(`{"type":"resume"}`))
	f.Add([]byte(`not json at all`))
	addr := fuzzServer(f)

	f.Fuzz(func(t *testing.T, line []byte) {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Skip("server saturated") // accept backlog under fuzz load, not a bug
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(3 * time.Second))
		conn.Write(append(line, '\n')) //nolint:errcheck // server may reject early
		// Whatever we sent, the connection must terminate promptly: a
		// frame response, a close, or the read timeout server-side.
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			// drain until the server closes or the deadline trips
		}
	})
}

package server_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// rawSession is a hand-driven NDJSON connection for exercising the
// resume protocol below the client library's recovery machinery.
type rawSession struct {
	t    *testing.T
	conn net.Conn
	sc   *bufio.Scanner
}

func dialRaw(t *testing.T, addr string) *rawSession {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawSession{t: t, conn: conn, sc: bufio.NewScanner(conn)}
}

func (r *rawSession) send(format string, args ...any) {
	r.t.Helper()
	if _, err := fmt.Fprintf(r.conn, format+"\n", args...); err != nil {
		r.t.Fatalf("send: %v", err)
	}
}

// recv reads the next frame, failing the test on EOF.
func (r *rawSession) recv() server.ServerFrame {
	r.t.Helper()
	r.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if !r.sc.Scan() {
		r.t.Fatalf("connection ended: %v", r.sc.Err())
	}
	var fr server.ServerFrame
	if err := decodeFrame(r.sc.Bytes(), &fr); err != nil {
		r.t.Fatalf("decode %q: %v", r.sc.Text(), err)
	}
	return fr
}

// recvType reads frames until one of the given type arrives (skipping
// acks and verdicts a test does not care about).
func (r *rawSession) recvType(typ string) server.ServerFrame {
	r.t.Helper()
	for i := 0; i < 32; i++ {
		fr := r.recv()
		if fr.Type == typ {
			return fr
		}
	}
	r.t.Fatalf("no %q frame in 32 frames", typ)
	return server.ServerFrame{}
}

// closed reports whether the server closed the connection (EOF or
// reset) within the deadline.
func (r *rawSession) closed() bool {
	r.t.Helper()
	r.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for r.sc.Scan() {
	}
	return true // Scan returned false: EOF or error, either way closed
}

func decodeFrame(b []byte, fr *server.ServerFrame) error {
	return json.Unmarshal(b, fr)
}

// openResumable performs the resumable hello handshake and returns the
// session id.
func (r *rawSession) openResumable(procs int) string {
	r.t.Helper()
	r.send(`{"type":"hello","processes":%d,"resumable":true}`, procs)
	fr := r.recvType(server.FrameWelcome)
	if fr.Session == "" {
		r.t.Fatal("welcome without session id")
	}
	return fr.Session
}

// event streams one sequenced internal event.
func (r *rawSession) event(proc int, seq int64) {
	r.send(`{"type":"event","proc":%d,"kind":"internal","seq":%d}`, proc, seq)
}

// resumeFrom issues a resume on a fresh connection, retrying while the
// server still considers the previous transport attached — busy is the
// documented retryable answer until the dead conn's reader unwinds.
func resumeFrom(t *testing.T, addr, id string, seq int64) (*rawSession, server.ServerFrame) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		r := dialRaw(t, addr)
		r.send(`{"type":"resume","session":%q,"seq":%d}`, id, seq)
		fr := r.recv()
		if fr.Type != server.FrameError || fr.Code != server.CodeBusy {
			return r, fr
		}
		if time.Now().After(deadline) {
			t.Fatalf("server still busy 5s after the previous connection closed")
		}
		r.conn.Close()
		time.Sleep(10 * time.Millisecond)
	}
}

func TestResumeUnknownSession(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	r := dialRaw(t, addr)
	r.send(`{"type":"resume","session":"s-9999","seq":0}`)
	fr := r.recvType(server.FrameError)
	if fr.Code != server.CodeUnknownSession {
		t.Fatalf("code = %q, want %q", fr.Code, server.CodeUnknownSession)
	}
}

func TestResumeNotResumable(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	a := dialRaw(t, addr)
	a.send(`{"type":"hello","processes":1}`)
	id := a.recvType(server.FrameWelcome).Session

	b := dialRaw(t, addr)
	b.send(`{"type":"resume","session":%q,"seq":0}`, id)
	fr := b.recvType(server.FrameError)
	if fr.Code != server.CodeNotResumable {
		t.Fatalf("code = %q, want %q", fr.Code, server.CodeNotResumable)
	}
}

func TestResumeBadSeq(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	a := dialRaw(t, addr)
	id := a.openResumable(1)
	a.event(1, 1)
	a.conn.Close()

	for _, seq := range []int64{-1, 99} { // negative fails validation; 99 is ahead of anything accepted
		_, fr := resumeFrom(t, addr, id, seq)
		if fr.Code != server.CodeBadSeq {
			t.Fatalf("resume seq %d: code = %q, want %q", seq, fr.Code, server.CodeBadSeq)
		}
	}
}

// TestResumeStaleSeq: a client that fell further behind than the
// retention window cannot resume — the journal no longer covers the
// frames it would need acknowledged.
func TestResumeStaleSeq(t *testing.T) {
	_, addr := startServer(t, server.Config{RetentionWindow: 4, AckEvery: 2})
	a := dialRaw(t, addr)
	id := a.openResumable(1)
	for seq := int64(1); seq <= 8; seq++ {
		a.event(1, seq)
	}
	a.recvType(server.FrameAck) // server caught up at least this far
	a.conn.Close()

	_, fr := resumeFrom(t, addr, id, 0)
	if fr.Code != server.CodeStaleSeq {
		t.Fatalf("code = %q, want %q", fr.Code, server.CodeStaleSeq)
	}

	// Within the window the same session resumes fine.
	_, w := resumeFrom(t, addr, id, 8)
	if w.Type != server.FrameWelcome || !w.Resumed || w.Seq != 8 {
		t.Fatalf("welcome = %+v, want resumed at seq 8", w)
	}
}

// TestResumeAfterExpiry: once the idle janitor reclaims a session and
// its morgue entry expires, a resume is rejected as unknown.
func TestResumeAfterExpiry(t *testing.T) {
	_, addr := startServer(t, server.Config{IdleTimeout: 50 * time.Millisecond})
	a := dialRaw(t, addr)
	id := a.openResumable(1)
	a.event(1, 1)
	a.conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		time.Sleep(100 * time.Millisecond)
		b := dialRaw(t, addr)
		b.send(`{"type":"resume","session":%q,"seq":1}`, id)
		// Right after the janitor reclaims the session, a resume briefly
		// gets the morgue's terminal replay (a welcome); once that entry
		// expires too, the session is truly unknown.
		fr := b.recv()
		if fr.Type == server.FrameError && fr.Code == server.CodeUnknownSession {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("resume long after expiry still answered %+v", fr)
		}
	}
}

// TestDuplicateEventFramesIdempotent: redelivered sequenced frames are
// dropped without re-applying — at-least-once delivery, exactly-once
// ingestion.
func TestDuplicateEventFramesIdempotent(t *testing.T) {
	reg := obs.NewRegistry()
	_, addr := startServer(t, server.Config{AckEvery: 1, Registry: reg})
	a := dialRaw(t, addr)
	a.openResumable(1)
	a.event(1, 1)
	a.event(1, 1) // duplicate
	a.event(1, 2)
	a.event(1, 1) // stale redelivery, long since accepted
	a.event(1, 3)
	a.send(`{"type":"bye","seq":4}`)
	gb := a.recvType(server.FrameGoodbye)
	if gb.Events != 3 {
		t.Errorf("goodbye says %d events, want 3 (duplicates re-applied?)", gb.Events)
	}
	if d := reg.Counter("hb_server_events_duplicate_total", "").Value(); d != 2 {
		t.Errorf("duplicate_total = %d, want 2", d)
	}
	if j := reg.Counter("hb_server_events_journaled_total", "").Value(); j != 3 {
		t.Errorf("journaled_total = %d, want 3", j)
	}
}

// TestSeqGapKillsConnectionNotSession: a gap means frames were lost in
// flight; the server reports it, drops the connection, and the session
// survives for a resume that replays the missing range.
func TestSeqGapKillsConnectionNotSession(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	a := dialRaw(t, addr)
	id := a.openResumable(1)
	a.event(1, 1)
	a.event(1, 5) // seqs 2..4 lost
	fr := a.recvType(server.FrameError)
	if fr.Code != server.CodeSeqGap {
		t.Fatalf("code = %q, want %q", fr.Code, server.CodeSeqGap)
	}
	if !a.closed() {
		t.Fatal("connection survived a sequence gap")
	}

	// The session is still live: resume from the last accepted seq and
	// deliver the lost range.
	b, w := resumeFrom(t, addr, id, 1)
	if w.Type != server.FrameWelcome || !w.Resumed || w.Seq != 1 {
		t.Fatalf("welcome = %+v, want resumed at seq 1", w)
	}
	for seq := int64(2); seq <= 5; seq++ {
		b.event(1, seq)
	}
	b.send(`{"type":"bye","seq":6}`)
	gb := b.recvType(server.FrameGoodbye)
	if gb.Events != 5 {
		t.Errorf("goodbye says %d events, want 5", gb.Events)
	}
}

// TestConcurrentResumeRejected: while one transport is attached, a
// second resume is refused with the retryable busy code — two clients
// must never ingest interleaved.
func TestConcurrentResumeRejected(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	a := dialRaw(t, addr)
	id := a.openResumable(1)
	a.event(1, 1)

	b := dialRaw(t, addr)
	b.send(`{"type":"resume","session":%q,"seq":1}`, id)
	fr := b.recvType(server.FrameError)
	if fr.Code != server.CodeBusy {
		t.Fatalf("code = %q, want %q (retryable)", fr.Code, server.CodeBusy)
	}

	// Once the first transport is gone the successor takes over.
	a.conn.Close()
	_, w := resumeFrom(t, addr, id, 1)
	if w.Type != server.FrameWelcome || !w.Resumed || w.Seq != 1 {
		t.Fatalf("welcome = %+v, want resumed at seq 1", w)
	}
}

// TestMorgueTerminalReplay: a session that finished while its client
// was disconnected still serves, exactly once, its recorded frames and
// goodbye via resume — the bye → goodbye window is loss-proof.
func TestMorgueTerminalReplay(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	a := dialRaw(t, addr)
	a.send(`{"type":"hello","processes":1,"resumable":true,` +
		`"watches":[{"op":"EF","pred":"conj(x@P1 == 1)"}]}`)
	id := a.recvType(server.FrameWelcome).Session
	a.send(`{"type":"event","proc":1,"kind":"internal","sets":{"x":1},"seq":1}`)
	a.send(`{"type":"bye","seq":2}`)
	a.recvType(server.FrameGoodbye)
	a.conn.Close()

	// The goodbye (and the verdict before it) could have been lost with
	// the connection; a late resume replays the terminal record.
	b := dialRaw(t, addr)
	b.send(`{"type":"resume","session":%q,"seq":2}`, id)
	w := b.recvType(server.FrameWelcome)
	if !w.Resumed || w.Seq != 2 {
		t.Fatalf("welcome = %+v, want resumed at seq 2", w)
	}
	sawVerdict := false
	for {
		fr := b.recv()
		if fr.Type == server.FrameVerdict && fr.Op == "EF" {
			sawVerdict = true
		}
		if fr.Type == server.FrameGoodbye {
			if fr.Events != 1 {
				t.Errorf("replayed goodbye says %d events, want 1", fr.Events)
			}
			break
		}
	}
	if !sawVerdict {
		t.Error("terminal replay did not include the latched EF verdict")
	}
	if !b.closed() {
		t.Error("connection stayed open after terminal replay")
	}
}

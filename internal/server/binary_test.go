package server_test

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/server"
	"repro/internal/server/client"
)

// TestBinaryBatchSessionsMatchOffline is the binary-encoding acceptance
// test: the scripted computation streamed through batched binary frames
// must latch exactly the verdicts of offline core.Detect at the exact
// determining prefixes — for batch sizes that split the stream at every
// boundary (1), mid-batch (3), and all-in-one (64).
func TestBinaryBatchSessionsMatchOffline(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	for _, batch := range []int{1, 3, 64} {
		for extra := 0; extra < 2; extra++ {
			steps := script(extra)
			full := buildPrefix(t, steps, len(steps))

			sess, err := client.Dial(addr, client.Config{
				Processes: 3,
				Watches: []server.Watch{
					{Op: "EF", Pred: efPred},
					{Op: "AG", Pred: agPred},
					{Op: "STABLE", Pred: stablePred},
				},
				Encoding:  server.EncodingBinary,
				BatchSize: batch,
			})
			if err != nil {
				t.Fatalf("batch=%d extra=%d: dial: %v", batch, extra, err)
			}
			stream(sess, steps)

			// The snapshot flushes the partial batch first, so it must see
			// the full prefix.
			formula := "EF(" + efPred + ")"
			fr, err := sess.Snapshot(formula)
			if err != nil {
				t.Fatalf("batch=%d extra=%d: snapshot: %v", batch, extra, err)
			}
			want, err := core.Detect(full, ctl.MustParse(formula))
			if err != nil {
				t.Fatal(err)
			}
			if *fr.Holds != want.Holds || fr.Event != len(steps) {
				t.Fatalf("batch=%d extra=%d: snapshot %v at %d, offline %v at %d",
					batch, extra, *fr.Holds, fr.Event, want.Holds, len(steps))
			}

			gb, err := sess.Close()
			if err != nil {
				t.Fatalf("batch=%d extra=%d: close: %v", batch, extra, err)
			}
			if gb.Events != len(steps) || gb.Dropped != 0 {
				t.Fatalf("batch=%d extra=%d: goodbye %d events (%d dropped), want %d (0)",
					batch, extra, gb.Events, gb.Dropped, len(steps))
			}

			verdicts := make(map[int]server.ServerFrame)
			for _, fr := range sess.Latched() {
				if fr.Type == server.FrameError {
					t.Fatalf("batch=%d extra=%d: unexpected error frame: %s", batch, extra, fr.Error)
				}
				if fr.Type == server.FrameVerdict {
					verdicts[fr.Watch] = fr
				}
			}
			efOffline, _ := core.Detect(full, ctl.MustParse("EF("+efPred+")"))
			vfr, fired := verdicts[0]
			if fired != efOffline.Holds {
				t.Fatalf("batch=%d extra=%d: EF fired=%v, offline=%v", batch, extra, fired, efOffline.Holds)
			}
			if fired {
				if err := exactPrefix(t, steps, vfr.Event, "EF("+efPred+")", true); err != nil {
					t.Fatalf("batch=%d extra=%d: EF latch: %v", batch, extra, err)
				}
			}
			agOffline, _ := core.Detect(full, ctl.MustParse("AG("+agPred+")"))
			vfr, violated := verdicts[1]
			if violated != !agOffline.Holds {
				t.Fatalf("batch=%d extra=%d: AG violated=%v, offline holds=%v", batch, extra, violated, agOffline.Holds)
			}
			if violated {
				if err := exactPrefix(t, steps, vfr.Event, "AG("+agPred+")", false); err != nil {
					t.Fatalf("batch=%d extra=%d: AG latch: %v", batch, extra, err)
				}
			}
			// The STABLE watch must fire at event 5 regardless of how the
			// batching splits the stream: verdict indexes are per event,
			// not per frame.
			vfr, ok := verdicts[2]
			if !ok || vfr.Event != 5 {
				t.Fatalf("batch=%d extra=%d: STABLE verdict %+v, want event 5", batch, extra, vfr)
			}
		}
	}
}

// TestResumableRejectsUnsequencedFrames is the regression test for the
// triage hole: ingest frames without a seq (or with seq 0) on a
// resumable session used to bypass the dup/gap triage entirely — an
// at-least-once redelivery would be ingested twice. They must now be
// rejected with a typed error, killing the connection but not the
// session.
func TestResumableRejectsUnsequencedFrames(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	for _, tc := range []struct{ name, frame string }{
		{"event", `{"type":"event","proc":1,"kind":"internal"}`},
		{"init", `{"type":"init","proc":1,"var":"x","value":1}`},
		{"bye", `{"type":"bye"}`},
		{"negative", `{"type":"event","proc":1,"kind":"internal","seq":-3}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := dialRaw(t, addr)
			id := r.openResumable(2)
			r.event(1, 1) // a properly sequenced frame is fine
			r.send("%s", tc.frame)
			fr := r.recvType(server.FrameError)
			if fr.Code != server.CodeBadSeq {
				t.Fatalf("code = %q, want %q", fr.Code, server.CodeBadSeq)
			}
			if !r.closed() {
				t.Fatal("connection survived an unsequenced ingest frame")
			}
			// The session survives the rejected connection: resume from
			// the accepted watermark works and nothing was lost.
			b, w := resumeFrom(t, addr, id, 1)
			if w.Type != server.FrameWelcome || !w.Resumed || w.Seq != 1 {
				t.Fatalf("resume after rejection: %+v, want resumed at seq 1", w)
			}
			b.send(`{"type":"bye","seq":2}`)
			gb := b.recvType(server.FrameGoodbye)
			if gb.Events != 1 {
				t.Fatalf("goodbye events = %d, want 1", gb.Events)
			}
		})
	}
}

// TestFrameTooLongNDJSON: an NDJSON line beyond MaxFrameBytes used to
// die as a bare scanner error — indistinguishable from network loss.
// The client must now get a typed frame-too-long error before the
// connection closes.
func TestFrameTooLongNDJSON(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	r := dialRaw(t, addr)
	r.send(`{"type":"hello","processes":1}`)
	if fr := r.recvType(server.FrameWelcome); fr.Session == "" {
		t.Fatal("no session")
	}
	r.send("%s", strings.Repeat("x", server.MaxFrameBytes+16))
	fr := r.recvType(server.FrameError)
	if fr.Code != server.CodeFrameTooLong {
		t.Fatalf("code = %q, want %q", fr.Code, server.CodeFrameTooLong)
	}
	if !r.closed() {
		t.Fatal("connection survived an oversized frame")
	}
}

// TestFrameTooLongBinary: a binary frame header declaring a payload
// beyond MaxFrameBytes gets the same typed error — without the server
// reading (or allocating) the declared length.
func TestFrameTooLongBinary(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	r := dialRaw(t, addr)
	r.send(`{"type":"hello","processes":1,"encoding":"binary"}`)
	if fr := r.recvType(server.FrameWelcome); fr.Session == "" {
		t.Fatal("no session")
	}
	hdr := []byte{server.FrameMagic, server.BinBatch}
	hdr = binary.AppendUvarint(hdr, server.MaxFrameBytes+1)
	if _, err := r.conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	fr := r.recvType(server.FrameError)
	if fr.Code != server.CodeFrameTooLong {
		t.Fatalf("code = %q, want %q", fr.Code, server.CodeFrameTooLong)
	}
	if !r.closed() {
		t.Fatal("connection survived an oversized frame")
	}
}

// TestBinaryFrameWithoutNegotiation: a binary frame on a connection
// that negotiated NDJSON is a protocol error, not a crash — the frame
// boundary is still parsed (the scanner is encoding-agnostic) but the
// payload is refused.
func TestBinaryFrameWithoutNegotiation(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	r := dialRaw(t, addr)
	r.send(`{"type":"hello","processes":1}`)
	if fr := r.recvType(server.FrameWelcome); fr.Session == "" {
		t.Fatal("no session")
	}
	frame := []byte{server.FrameMagic, server.BinBatch}
	frame = binary.AppendUvarint(frame, 1)
	frame = append(frame, 0x00)
	if _, err := r.conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	fr := r.recvType(server.FrameError)
	if fr.Code == server.CodeFrameTooLong {
		t.Fatalf("wrong error code %q", fr.Code)
	}
	if !strings.Contains(fr.Error, "binary frame") {
		t.Fatalf("error = %q, want a binary-encoding complaint", fr.Error)
	}
	if !r.closed() {
		t.Fatal("connection survived an unnegotiated binary frame")
	}
}

package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// OverflowPolicy says what ingest does when a session's bounded queue is
// full.
type OverflowPolicy int

const (
	// OverflowBlock applies backpressure: the ingesting goroutine (and,
	// through the TCP window, the remote client) waits until the
	// session's monitor loop catches up. The default.
	OverflowBlock OverflowPolicy = iota
	// OverflowDrop sheds the event and counts it (session Dropped,
	// hb_server_events_dropped_total) so ingest never stalls. A lossy
	// session keeps running best-effort: dropping a send whose receive
	// later arrives surfaces as an error frame on that receive.
	OverflowDrop
)

// String implements fmt.Stringer.
func (p OverflowPolicy) String() string {
	switch p {
	case OverflowBlock:
		return "block"
	case OverflowDrop:
		return "drop"
	default:
		return fmt.Sprintf("OverflowPolicy(%d)", int(p))
	}
}

// ParseOverflowPolicy parses "block" or "drop".
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "block":
		return OverflowBlock, nil
	case "drop":
		return OverflowDrop, nil
	default:
		return 0, fmt.Errorf("server: unknown overflow policy %q (want block or drop)", s)
	}
}

// Config configures a Server. The zero value is usable: defaults are
// applied by New.
type Config struct {
	// QueueDepth is the per-session ingest queue capacity (default 256).
	QueueDepth int
	// Overflow is the policy applied when a session queue is full.
	Overflow OverflowPolicy
	// MaxSessions caps concurrently open sessions (default 1024).
	MaxSessions int
	// IdleTimeout closes sessions that ingested nothing for this long
	// (0 disables). TCP connections additionally enforce it as a read
	// deadline. It is also what reclaims a resumable session whose
	// client never comes back.
	IdleTimeout time.Duration
	// ReadTimeout bounds each TCP frame read, so a half-open peer that
	// stopped sending cannot park a reader goroutine forever (default
	// 5m; negative disables). Timed-out reads close the connection with
	// reason "read_timeout" in hb_server_conn_closes_total; resumable
	// sessions survive the close and wait for a resume.
	ReadTimeout time.Duration
	// RetentionWindow is how many accepted sequenced frames a resumable
	// session journals (default 4096). A resume whose last-acked seq has
	// fallen more than this far behind is rejected as stale.
	RetentionWindow int
	// AckEvery is how many applied sequenced frames pass between ack
	// frames on resumable sessions (default 32). Clients bound their
	// in-flight buffer by it: BufferLimit must exceed AckEvery.
	AckEvery int
	// IngestDelay adds an artificial per-event processing delay in the
	// monitor loop — for demos and backpressure testing.
	IngestDelay time.Duration
	// Workers is the parallel budget snapshot queries hand to the
	// sweep-shaped detection algorithms (default 1; negative values are
	// treated as 1 so a zero-value Config stays sequential).
	Workers int
	// Registry receives the hb_server_* metrics (nil → obs.Default()).
	Registry *obs.Registry
	// Cluster, when non-nil, turns this server into one node of a
	// detection cluster (internal/cluster installs it): session keys are
	// vetted against the placement ring, accepted sequenced frames are
	// replicated, client acks are gated on replication durability, and
	// resumes of unknown sessions may be recovered from a replicated
	// journal. All hook fields are optional.
	Cluster *ClusterHooks
	// Tracer, when non-nil, receives pipeline spans: one root span per
	// session and, under it, per-frame spans for each pipeline stage
	// (decode → frame → enqueue → apply → verdict). Span attributes carry
	// a "service" key so the server's own traces round-trip through the
	// spanhb adapter back onto the happened-before model — the dogfood
	// path. Nil disables span collection entirely (every call degrades to
	// a nil check).
	Tracer *obs.Tracer
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// ClusterHooks is the integration surface internal/cluster installs to
// turn a standalone server into one node of a detection cluster. Every
// field is optional; a nil hook keeps standalone behavior. The hooks
// deliberately live on this side of the package boundary so the cluster
// package needs no access to session internals.
type ClusterHooks struct {
	// Takeover inspects the first line of a new connection before frame
	// decoding; returning true transfers the connection to the hook (the
	// replication protocol rides the same listener as client ingest).
	// The hook runs on the connection's goroutine and must return only
	// when it is done with the conn; the server closes it afterwards.
	Takeover func(first []byte, conn net.Conn) bool
	// Placement vets a keyed hello: ok=false rejects it with a
	// not-owner redirect to owner. Resumes are vetted lazily — only
	// when the session is unknown locally (see Recover) — so a node
	// always serves the sessions it actually holds.
	Placement func(key string) (owner string, ok bool)
	// OnOpen observes every keyed resumable session opened by a hello
	// frame, before any frame of it is ingested.
	OnOpen func(sess *Session, cfg SessionConfig)
	// OnAccept observes every accepted sequenced frame (init, event,
	// bye) of a resumable session, in seq order, on the transport
	// goroutine — blocking applies backpressure to the client.
	OnAccept func(sess *Session, f ClientFrame)
	// AckGate bounds the seq the server may ack on the given session;
	// the cluster returns its replication durability watermark so
	// clients never release frames that exist on fewer nodes than the
	// replication factor. Returning seq unchanged means ungated.
	AckGate func(session string, seq int64) int64
	// Recover is consulted when a resume names a session with no live or
	// morgue state: a replica node rebuilds it from the replicated
	// journal and returns the live session (or nil after replaying a
	// journal that ended in a bye — the morgue then serves the terminal
	// replay). Returning (nil, *RejectError) redirects or rejects;
	// (nil, nil) with no local knowledge means unknown-session.
	Recover func(session string) (*Session, error)
	// Resume, when non-nil, vetoes resume handshakes before any session
	// lookup: a non-nil error (ideally a *RejectError) rejects the
	// resume. The cluster uses it to hold clients off a session whose
	// frame log is mid-handoff to another node.
	Resume func(session string) error
}

// Server multiplexes detection sessions. Transports (Serve for TCP,
// RegisterHTTP for HTTP) feed sessions opened with Open; Shutdown drains
// everything.
type Server struct {
	cfg Config
	met *metrics

	// The session table is sharded by id (shard.go): per-shard locks,
	// with the global invariants — MaxSessions, the morgue bound, id
	// assignment, draining — carried by atomics. live is reserved
	// before insert and rolled back on rejection, so the session cap
	// stays exact without any global lock.
	shards   [numShards]tableShard
	live     atomic.Int64 // open sessions (and in-flight opens)
	morgued  atomic.Int64 // morgue entries across all shards
	nextID   atomic.Int64
	draining atomic.Bool

	lnMu sync.Mutex
	lns  []net.Listener

	wg       sync.WaitGroup // session loops and connection handlers
	stop     chan struct{}
	stopOnce sync.Once
}

// New returns a server ready to Open sessions and accept transports.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 5 * time.Minute
	}
	if cfg.RetentionWindow <= 0 {
		cfg.RetentionWindow = 4096
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 32
	}
	s := &Server{
		cfg:  cfg,
		met:  newMetrics(cfg.Registry),
		stop: make(chan struct{}),
	}
	for i := range s.shards {
		s.shards[i].sessions = make(map[string]*Session)
		s.shards[i].morgue = make(map[string]morgueEntry)
		s.shards[i].tombstones = make(map[string]tombstone)
	}
	if cfg.IdleTimeout > 0 {
		go s.janitor()
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Open creates a detection session and starts its monitor loop. It fails
// while draining, past MaxSessions, and on invalid configs (bad process
// count, unparsable watch predicates).
func (s *Server) Open(cfg SessionConfig) (*Session, error) {
	if cfg.Processes < 1 || cfg.Processes > MaxProcesses {
		return nil, fmt.Errorf("server: processes must be in [1,%d], got %d", MaxProcesses, cfg.Processes)
	}
	if len(cfg.Watches) > MaxWatches {
		return nil, fmt.Errorf("server: at most %d watches, got %d", MaxWatches, len(cfg.Watches))
	}
	if cfg.ID != "" {
		if err := ValidateKey(cfg.ID); err != nil {
			return nil, err
		}
	}
	ws, err := buildWatches(cfg.Processes, cfg.Watches)
	if err != nil {
		return nil, err
	}
	if s.draining.Load() {
		return nil, fmt.Errorf("server: shutting down")
	}
	// Reserve a session slot before touching any shard: the cap is a
	// global invariant the per-shard locks cannot see.
	if s.live.Add(1) > int64(s.cfg.MaxSessions) {
		s.live.Add(-1)
		return nil, fmt.Errorf("server: session limit %d reached", s.cfg.MaxSessions)
	}
	id := cfg.ID
	if id == "" {
		id = fmt.Sprintf("s-%04d", s.nextID.Add(1))
	}
	sh := s.shard(id)
	sh.mu.Lock()
	// Checked under the shard lock so Shutdown's snapshot (which takes
	// every shard lock after setting draining) either sees this session
	// or this open sees draining — no session can leak past shutdown.
	if s.draining.Load() {
		sh.mu.Unlock()
		s.live.Add(-1)
		return nil, fmt.Errorf("server: shutting down")
	}
	if cfg.ID != "" {
		if _, taken := sh.sessions[id]; taken {
			sh.mu.Unlock()
			s.live.Add(-1)
			// Typed so clients can tell "my earlier hello opened this but
			// the welcome was lost" (recover by resuming the key) from a
			// plain rejection.
			return nil, &RejectError{Code: CodeKeyInUse,
				Msg: fmt.Sprintf("server: session key %q already in use", id)}
		}
		// A fresh session under this key supersedes any terminal state a
		// previous incarnation left lingering for replay.
		if _, lingering := sh.morgue[id]; lingering {
			delete(sh.morgue, id)
			s.morgued.Add(-1)
		}
		delete(sh.tombstones, id)
	}
	sess := newSession(s, id, cfg.Processes, ws, cfg.Bounded)
	if cfg.Resumable {
		sess.resumable = true
		sess.journal = make([]journalEntry, 0, min(s.cfg.RetentionWindow, 256))
	}
	sh.sessions[id] = sess
	sh.mu.Unlock()

	s.met.sessionsTotal.Inc()
	s.met.sessionsActive.Set(s.live.Load())
	s.logf("session %s opened: %d processes, %d watches (resumable=%v, bounded=%v)", id, cfg.Processes, len(ws), cfg.Resumable, cfg.Bounded)
	s.wg.Add(1)
	go sess.run()
	return sess, nil
}

// OpenRecovered rebuilds a resumable session from a replicated frame log:
// it opens the session under its original id and replays every sequenced
// frame through the normal ingest path, so the rebuilt monitor, journal,
// verdict record, and Idx numbering are bit-identical to what the failed
// home node held — detection is deterministic, so same frames in, same
// verdicts out. The hello frame supplies the session config; frames must
// be the accepted sequenced frames from seq 1 in order. If the log ends
// in a bye the session runs to completion and (nil, nil) is returned: the
// terminal state is then in the morgue for replay. Otherwise the returned
// session is live, detached, fully applied, and ready for tryResume.
func (s *Server) OpenRecovered(hello ClientFrame, frames []ClientFrame) (*Session, error) {
	if err := ValidateHello(hello); err != nil {
		return nil, err
	}
	if hello.Session == "" || !hello.Resumable {
		return nil, fmt.Errorf("server: recovery needs a keyed resumable hello")
	}
	sess, err := s.Open(SessionConfig{
		ID:         hello.Session,
		Processes:  hello.Processes,
		Watches:    hello.Watches,
		Resumable:  true,
		Bounded:    hello.Bounded,
		Durability: hello.Durability,
	})
	if err != nil {
		return nil, err
	}
	for _, f := range frames {
		if f.Type == FrameBye {
			sess.Close("bye")
			<-sess.Done()
			return nil, nil
		}
		if f.Seq > 0 {
			// The transport normally advances the accept mark via
			// acceptSeq; replay owns the session exclusively, so it stores
			// the high-water directly before handing the frame to the loop.
			sess.enqSeq.Store(f.Seq)
		}
		if err := sess.Ingest(f); err != nil {
			sess.Close("recovery failed")
			return nil, fmt.Errorf("server: recovery replay of %s: %v", hello.Session, err)
		}
	}
	// Settle the loop so the caller hands out a fully-applied session:
	// tryResume's replay snapshot then contains every verdict the log
	// determines, not a prefix of them.
	if err := sess.Flush(); err != nil {
		return nil, fmt.Errorf("server: recovery flush of %s: %v", hello.Session, err)
	}
	return sess, nil
}

// Session returns the open session with the given id, or nil.
func (s *Server) Session(id string) *Session {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sessions[id]
}

// morgueEntry is the terminal state of a finished resumable session,
// lingering so a client whose last connection died between bye and
// goodbye can still resume and collect the recorded frames it missed —
// the TIME_WAIT of the resume protocol. Without it, verdicts latched
// just before close would be unrecoverable exactly when the network is
// at its worst.
type morgueEntry struct {
	welcome ServerFrame
	frames  []ServerFrame // the full latched record, Idx-stamped
	goodbye ServerFrame
	enqSeq  int64
	retired time.Time
}

// tombstone records that a session's key was taken over by a newer
// incarnation at owner — failover, drain handoff, or key reuse fenced
// this node's copy. A resume hitting it gets a typed stale-epoch
// redirect instead of unknown-session, so the old client follows the
// key to its new home rather than concluding its session is gone.
type tombstone struct {
	owner   string
	retired time.Time
}

// supersede replaces any live, morgue, or tombstone state for id with a
// tombstone redirecting to owner. A live session is kicked and closed
// without retiring into the morgue: its terminal record describes a
// fenced incarnation and must not shadow the authoritative one.
func (s *Server) Supersede(id, owner, reason string) {
	sh := s.shard(id)
	sh.mu.Lock()
	sess := sh.sessions[id]
	if _, lingering := sh.morgue[id]; lingering {
		delete(sh.morgue, id)
		s.morgued.Add(-1)
	}
	sh.tombstones[id] = tombstone{owner: owner, retired: time.Now()}
	sh.mu.Unlock()
	if sess != nil {
		sess.superseded.Store(true)
		sess.Kick()
		sess.Close(reason)
	}
	s.logf("session %s superseded by %s: %s", id, owner, reason)
}

// lookupTombstone returns the supersession record of id, if any,
// pruning it once expired (same TTL as the morgue).
func (s *Server) lookupTombstone(id string) (tombstone, bool) {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.tombstones[id]
	if ok && time.Since(t.retired) > s.morgueTTL() {
		delete(sh.tombstones, id)
		return tombstone{}, false
	}
	return t, ok
}

// morgueTTL is how long a finished session lingers for terminal replay.
func (s *Server) morgueTTL() time.Duration {
	if s.cfg.IdleTimeout > 0 {
		return s.cfg.IdleTimeout
	}
	return 30 * time.Second
}

// retire parks a finished resumable session in the morgue, pruning
// this shard's expired entries and bounding the morgue near
// MaxSessions. The count is global (morgued) but eviction is
// shard-local — taking every shard lock to find the global-oldest
// would reintroduce the contention sharding removed — so the bound is
// MaxSessions within numShards.
func (s *Server) retire(id string, welcome ServerFrame, frames []ServerFrame, goodbye ServerFrame, enqSeq int64) {
	ttl := s.morgueTTL()
	now := time.Now()
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for k, e := range sh.morgue {
		if now.Sub(e.retired) > ttl {
			delete(sh.morgue, k)
			s.morgued.Add(-1)
		}
	}
	if s.morgued.Load() >= int64(s.cfg.MaxSessions) && len(sh.morgue) > 0 {
		var oldest string
		var oldestAt time.Time
		for k, e := range sh.morgue {
			if oldest == "" || e.retired.Before(oldestAt) {
				oldest, oldestAt = k, e.retired
			}
		}
		delete(sh.morgue, oldest)
		s.morgued.Add(-1)
	}
	if _, existed := sh.morgue[id]; !existed {
		s.morgued.Add(1)
	}
	sh.morgue[id] = morgueEntry{welcome: welcome, frames: frames, goodbye: goodbye, enqSeq: enqSeq, retired: now}
}

// lookupMorgue returns the lingering terminal state of id, if any.
func (s *Server) lookupMorgue(id string) (morgueEntry, bool) {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.morgue[id]
	if ok && time.Since(e.retired) > s.morgueTTL() {
		delete(sh.morgue, id)
		s.morgued.Add(-1)
		return morgueEntry{}, false
	}
	return e, ok
}

// resume reattaches a transport to a live resumable session. On success
// the attachment is installed atomically with the replay snapshot: the
// caller must write welcome (Seq = high-water accepted seq) and then the
// replayed frames before consuming att.ch, so the client sees exactly
// the record → push order an uninterrupted connection would have.
//
// A nil *Session with a nil error is a terminal replay: the session
// already finished but lingers in the morgue — the caller writes
// welcome and the replay (which ends with the goodbye) and closes.
// Failures carry a Code* constant; only CodeBusy is worth retrying.
func (s *Server) resume(f ClientFrame, att *attachment) (*Session, ServerFrame, []ServerFrame, string, error) {
	if err := ValidateResume(f); err != nil {
		s.met.resumesRej.Inc()
		return nil, ServerFrame{}, nil, CodeBadSeq, err
	}
	// The cluster's veto hook runs before any lookup: a session whose
	// frame log is mid-handoff must not reattach here even though it is
	// still in the table.
	if h := s.cfg.Cluster; h != nil && h.Resume != nil {
		if err := h.Resume(f.Session); err != nil {
			s.met.resumesRej.Inc()
			var rej *RejectError
			if errors.As(err, &rej) {
				return nil, ServerFrame{}, nil, rej.Code, err
			}
			return nil, ServerFrame{}, nil, CodeBusy, err
		}
	}
	sess := s.Session(f.Session)
	if sess == nil {
		if e, ok := s.lookupMorgue(f.Session); ok {
			s.met.resumesOK.Inc()
			s.logf("session %s resumed from morgue (%d frames + goodbye to replay)", f.Session, len(e.frames))
			welcome := e.welcome
			welcome.Seq = e.enqSeq
			welcome.Resumed = true
			replay := append(append([]ServerFrame(nil), e.frames...), e.goodbye)
			return nil, welcome, replay, "", nil
		}
		// A tombstone means this node's copy of the key was fenced by a
		// newer incarnation elsewhere: redirect rather than recover — the
		// local journal, if any survives, is the stale one.
		if t, ok := s.lookupTombstone(f.Session); ok {
			s.met.resumesRej.Inc()
			return nil, ServerFrame{}, nil, CodeStaleEpoch, &RejectError{
				Code: CodeStaleEpoch, Owner: t.owner,
				Msg: fmt.Sprintf("server: session %q was superseded by a newer incarnation at %s", f.Session, t.owner),
			}
		}
		// Cluster mode: a replica may hold this session's replicated
		// journal and can rebuild it; failing that, redirect the client
		// toward the placement's owner rather than declaring the session
		// gone — only a node that could legitimately host the key may
		// answer unknown-session.
		if h := s.cfg.Cluster; h != nil && h.Recover != nil {
			rec, err := h.Recover(f.Session)
			if err != nil {
				s.met.resumesRej.Inc()
				var rej *RejectError
				if errors.As(err, &rej) {
					return nil, ServerFrame{}, nil, rej.Code, err
				}
				return nil, ServerFrame{}, nil, CodeUnknownSession, err
			}
			if rec != nil {
				sess = rec
			} else if e, ok := s.lookupMorgue(f.Session); ok {
				// The recovered journal ended in a bye: the rebuilt
				// session already finished into the morgue.
				s.met.resumesOK.Inc()
				s.logf("session %s recovered into terminal replay (%d frames)", f.Session, len(e.frames))
				welcome := e.welcome
				welcome.Seq = e.enqSeq
				welcome.Resumed = true
				replay := append(append([]ServerFrame(nil), e.frames...), e.goodbye)
				return nil, welcome, replay, "", nil
			}
		}
		if sess == nil {
			s.met.resumesRej.Inc()
			return nil, ServerFrame{}, nil, CodeUnknownSession,
				fmt.Errorf("server: no live session %q (never opened, expired, or closed)", f.Session)
		}
	}
	seq, replay, code, err := sess.tryResume(f.Seq, att)
	if err != nil {
		s.met.resumesRej.Inc()
		return nil, ServerFrame{}, nil, code, err
	}
	s.met.resumesOK.Inc()
	s.logf("session %s resumed at seq %d (%d frames to replay)", sess.id, seq, len(replay))
	welcome := sess.Welcome()
	welcome.Seq = seq
	welcome.Resumed = true
	return sess, welcome, replay, "", nil
}

// SessionCount returns the number of currently open sessions.
func (s *Server) SessionCount() int {
	return int(s.live.Load())
}

// Stats returns cumulative counters: sessions opened, events applied,
// events dropped — the shutdown summary.
func (s *Server) Stats() (sessions, events, dropped int64) {
	return s.met.sessionsTotal.Value(), s.met.events.Value(), s.met.dropped.Value()
}

// remove releases a finished session; called by the session's loop.
func (s *Server) remove(id string) {
	sh := s.shard(id)
	sh.mu.Lock()
	delete(sh.sessions, id)
	sh.mu.Unlock()
	s.met.sessionsActive.Set(s.live.Add(-1))
	s.logf("session %s closed", id)
}

// snapshotSessions returns the open sessions at this instant, one
// shard at a time.
func (s *Server) snapshotSessions() []*Session {
	out := make([]*Session, 0, s.live.Load())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, sess := range sh.sessions {
			out = append(out, sess)
		}
		sh.mu.Unlock()
	}
	return out
}

// janitor closes sessions whose last ingest is older than IdleTimeout —
// the cleanup path for HTTP sessions, whose clients may simply vanish.
func (s *Server) janitor() {
	period := s.cfg.IdleTimeout / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			cutoff := time.Now().Add(-s.cfg.IdleTimeout).UnixNano()
			for _, sess := range s.snapshotSessions() {
				if sess.lastActive.Load() < cutoff {
					s.logf("session %s idle, closing", sess.id)
					sess.Close("idle timeout")
				}
			}
		}
	}
}

// Shutdown stops accepting new sessions and connections, closes every
// open session (each monitor loop drains the events its transports
// already enqueued), and waits for all loops and connection handlers to
// exit, or for ctx to expire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.lnMu.Lock()
	s.draining.Store(true)
	lns := s.lns
	s.lns = nil
	s.lnMu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	for _, ln := range lns {
		ln.Close()
	}
	for _, sess := range s.snapshotSessions() {
		sess.Close("server shutting down")
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

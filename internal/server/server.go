package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
)

// OverflowPolicy says what ingest does when a session's bounded queue is
// full.
type OverflowPolicy int

const (
	// OverflowBlock applies backpressure: the ingesting goroutine (and,
	// through the TCP window, the remote client) waits until the
	// session's monitor loop catches up. The default.
	OverflowBlock OverflowPolicy = iota
	// OverflowDrop sheds the event and counts it (session Dropped,
	// hb_server_events_dropped_total) so ingest never stalls. A lossy
	// session keeps running best-effort: dropping a send whose receive
	// later arrives surfaces as an error frame on that receive.
	OverflowDrop
)

// String implements fmt.Stringer.
func (p OverflowPolicy) String() string {
	switch p {
	case OverflowBlock:
		return "block"
	case OverflowDrop:
		return "drop"
	default:
		return fmt.Sprintf("OverflowPolicy(%d)", int(p))
	}
}

// ParseOverflowPolicy parses "block" or "drop".
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "block":
		return OverflowBlock, nil
	case "drop":
		return OverflowDrop, nil
	default:
		return 0, fmt.Errorf("server: unknown overflow policy %q (want block or drop)", s)
	}
}

// Config configures a Server. The zero value is usable: defaults are
// applied by New.
type Config struct {
	// QueueDepth is the per-session ingest queue capacity (default 256).
	QueueDepth int
	// Overflow is the policy applied when a session queue is full.
	Overflow OverflowPolicy
	// MaxSessions caps concurrently open sessions (default 1024).
	MaxSessions int
	// IdleTimeout closes sessions that ingested nothing for this long
	// (0 disables). TCP connections additionally enforce it as a read
	// deadline.
	IdleTimeout time.Duration
	// IngestDelay adds an artificial per-event processing delay in the
	// monitor loop — for demos and backpressure testing.
	IngestDelay time.Duration
	// Workers is the parallel budget snapshot queries hand to the
	// sweep-shaped detection algorithms (default 1; negative values are
	// treated as 1 so a zero-value Config stays sequential).
	Workers int
	// Registry receives the hb_server_* metrics (nil → obs.Default()).
	Registry *obs.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Server multiplexes detection sessions. Transports (Serve for TCP,
// RegisterHTTP for HTTP) feed sessions opened with Open; Shutdown drains
// everything.
type Server struct {
	cfg Config
	met *metrics

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   int
	draining bool
	lns      []net.Listener

	wg       sync.WaitGroup // session loops and connection handlers
	stop     chan struct{}
	stopOnce sync.Once
}

// New returns a server ready to Open sessions and accept transports.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	s := &Server{
		cfg:      cfg,
		met:      newMetrics(cfg.Registry),
		sessions: make(map[string]*Session),
		stop:     make(chan struct{}),
	}
	if cfg.IdleTimeout > 0 {
		go s.janitor()
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Open creates a detection session and starts its monitor loop. It fails
// while draining, past MaxSessions, and on invalid configs (bad process
// count, unparsable watch predicates).
func (s *Server) Open(cfg SessionConfig) (*Session, error) {
	if cfg.Processes < 1 || cfg.Processes > MaxProcesses {
		return nil, fmt.Errorf("server: processes must be in [1,%d], got %d", MaxProcesses, cfg.Processes)
	}
	if len(cfg.Watches) > MaxWatches {
		return nil, fmt.Errorf("server: at most %d watches, got %d", MaxWatches, len(cfg.Watches))
	}
	ws, err := buildWatches(cfg.Processes, cfg.Watches)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, fmt.Errorf("server: shutting down")
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		return nil, fmt.Errorf("server: session limit %d reached", s.cfg.MaxSessions)
	}
	s.nextID++
	id := fmt.Sprintf("s-%04d", s.nextID)
	sess := newSession(s, id, cfg.Processes, ws)
	s.sessions[id] = sess
	n := len(s.sessions)
	s.mu.Unlock()

	s.met.sessionsTotal.Inc()
	s.met.sessionsActive.Set(int64(n))
	s.logf("session %s opened: %d processes, %d watches", id, cfg.Processes, len(ws))
	s.wg.Add(1)
	go sess.run()
	return sess, nil
}

// Session returns the open session with the given id, or nil.
func (s *Server) Session(id string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// SessionCount returns the number of currently open sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Stats returns cumulative counters: sessions opened, events applied,
// events dropped — the shutdown summary.
func (s *Server) Stats() (sessions, events, dropped int64) {
	return s.met.sessionsTotal.Value(), s.met.events.Value(), s.met.dropped.Value()
}

// remove releases a finished session; called by the session's loop.
func (s *Server) remove(id string) {
	s.mu.Lock()
	delete(s.sessions, id)
	n := len(s.sessions)
	s.mu.Unlock()
	s.met.sessionsActive.Set(int64(n))
	s.logf("session %s closed", id)
}

// snapshotSessions returns the open sessions at this instant.
func (s *Server) snapshotSessions() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	return out
}

// janitor closes sessions whose last ingest is older than IdleTimeout —
// the cleanup path for HTTP sessions, whose clients may simply vanish.
func (s *Server) janitor() {
	period := s.cfg.IdleTimeout / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			cutoff := time.Now().Add(-s.cfg.IdleTimeout).UnixNano()
			for _, sess := range s.snapshotSessions() {
				if sess.lastActive.Load() < cutoff {
					s.logf("session %s idle, closing", sess.id)
					sess.Close("idle timeout")
				}
			}
		}
	}
}

// Shutdown stops accepting new sessions and connections, closes every
// open session (each monitor loop drains the events its transports
// already enqueued), and waits for all loops and connection handlers to
// exit, or for ctx to expire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	lns := s.lns
	s.lns = nil
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	for _, ln := range lns {
		ln.Close()
	}
	for _, sess := range s.snapshotSessions() {
		sess.Close("server shutting down")
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

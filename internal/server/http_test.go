package server_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func startHTTP(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	srv := server.New(cfg)
	mux := http.NewServeMux()
	server.RegisterHTTP(mux, srv)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ts
}

// do runs one request and decodes the JSON body into a ServerFrame.
func do(t *testing.T, method, url, body string, wantStatus int) server.ServerFrame {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, data)
	}
	var fr server.ServerFrame
	if len(data) > 0 {
		if err := json.Unmarshal(data, &fr); err != nil {
			t.Fatalf("%s %s: bad body %q: %v", method, url, data, err)
		}
	}
	return fr
}

// TestHTTPSessionLifecycle walks the whole HTTP API: open, stream a
// batch, observe the pushed verdict via the pull endpoint, snapshot,
// close.
func TestHTTPSessionLifecycle(t *testing.T) {
	_, ts := startHTTP(t, server.Config{})

	welcome := do(t, "POST", ts.URL+"/api/sessions",
		`{"type":"hello","processes":3,"watches":[{"op":"EF","pred":"`+efPred+`"}]}`,
		http.StatusCreated)
	if welcome.Type != server.FrameWelcome || welcome.Session == "" {
		t.Fatalf("welcome = %+v", welcome)
	}
	base := ts.URL + "/api/sessions/" + welcome.Session

	// Batch-ingest the scripted computation as NDJSON.
	var b strings.Builder
	for p := 1; p <= 3; p++ {
		b.WriteString(`{"type":"init","proc":` + itoa(p) + `,"var":"x","value":0}` + "\n")
	}
	b.WriteString(`{"type":"event","proc":1,"sets":{"x":1}}` + "\n")
	b.WriteString(`{"type":"event","proc":1,"kind":"send","msg":1}` + "\n")
	b.WriteString(`{"type":"event","proc":2,"kind":"receive","msg":1,"sets":{"x":1}}` + "\n")
	b.WriteString(`{"type":"event","proc":2,"kind":"send","msg":2}` + "\n")
	b.WriteString(`{"type":"event","proc":3,"kind":"receive","msg":2,"sets":{"x":1}}` + "\n")
	ack := do(t, "POST", base+"/events", b.String(), http.StatusOK)
	if ack.Type != server.FrameAck || ack.Events != 5 || ack.Dropped != 0 {
		t.Fatalf("ack = %+v, want 5 events", ack)
	}

	status := do(t, "GET", base, "", http.StatusOK)
	if status.Events != 5 || status.Processes != 3 {
		t.Fatalf("status = %+v", status)
	}

	// The EF watch fired at event 5; the pull endpoint serves it.
	resp, err := http.Get(base + "/verdicts")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var verdict server.ServerFrame
	if err := json.Unmarshal([]byte(strings.SplitN(strings.TrimSpace(string(body)), "\n", 2)[0]), &verdict); err != nil {
		t.Fatalf("verdicts body %q: %v", body, err)
	}
	if verdict.Type != server.FrameVerdict || verdict.Op != "EF" || verdict.Event != 5 {
		t.Fatalf("verdict = %+v, want EF at event 5", verdict)
	}

	snap := do(t, "POST", base+"/snapshot",
		`{"type":"snapshot","formula":"EF(`+efPred+`)"}`, http.StatusOK)
	if snap.Holds == nil || !*snap.Holds || snap.Event != 5 {
		t.Fatalf("snapshot = %+v", snap)
	}

	gb := do(t, "DELETE", base, "", http.StatusOK)
	if gb.Type != server.FrameGoodbye || gb.Events != 5 {
		t.Fatalf("goodbye = %+v", gb)
	}
	do(t, "GET", base, "", http.StatusNotFound)
}

func TestHTTPErrors(t *testing.T) {
	_, ts := startHTTP(t, server.Config{})

	do(t, "POST", ts.URL+"/api/sessions", `{"processes":0}`, http.StatusBadRequest)
	do(t, "POST", ts.URL+"/api/sessions", `not json`, http.StatusBadRequest)
	do(t, "GET", ts.URL+"/api/sessions/s-9999", "", http.StatusNotFound)
	do(t, "POST", ts.URL+"/api/sessions/s-9999/events", "", http.StatusNotFound)
	do(t, "DELETE", ts.URL+"/api/sessions/s-9999", "", http.StatusNotFound)

	welcome := do(t, "POST", ts.URL+"/api/sessions", `{"processes":2}`, http.StatusCreated)
	base := ts.URL + "/api/sessions/" + welcome.Session
	// Non-event frames cannot be batch-posted.
	do(t, "POST", base+"/events", `{"type":"bye"}`, http.StatusBadRequest)
	// A snapshot with a bad formula is a detection-level error.
	do(t, "POST", base+"/snapshot", `{"type":"snapshot","formula":"EF(("}`, http.StatusUnprocessableEntity)
	// A hello body over the process bound is rejected.
	do(t, "POST", ts.URL+"/api/sessions", `{"processes":1000000}`, http.StatusBadRequest)
}

func itoa(n int) string {
	return string(rune('0' + n))
}

package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/pir"
)

// Ingest errors.
var (
	// ErrClosed reports ingest into a session that is closing or closed.
	ErrClosed = errors.New("server: session closed")
	// ErrDropped reports an event shed by the drop overflow policy. The
	// drop is already counted on the session and the registry.
	ErrDropped = errors.New("server: event dropped (queue full)")
)

// SessionConfig describes a session to Open: the hello frame's payload.
type SessionConfig struct {
	// ID fixes the session id instead of auto-assigning one. Cluster mode
	// sets it to the client-chosen placement key; it must pass ValidateKey
	// and be unique among live sessions. Empty means auto-assign.
	ID        string
	Processes int
	Watches   []Watch
	// Resumable sessions journal accepted sequenced frames, ack them,
	// and survive transport loss: a dropped connection detaches instead
	// of closing, and a resume frame reattaches. Resumable sessions
	// always apply backpressure — the drop overflow policy would break
	// the exactly-once contract.
	Resumable bool
	// Bounded sessions run their monitor in bounded-state mode: the raw
	// event prefix is not retained, only the frontier and the watches'
	// slice cursors, so per-session memory is O(n + slice) instead of
	// O(events). Verdicts and their cuts are bit-identical to an
	// unbounded session; snapshot queries are rejected.
	Bounded bool
	// Durability is the hello's requested cluster durability mode
	// ("available", "durable", or empty for the node default). The server
	// itself only carries the string; the cluster hooks interpret it.
	Durability string
}

// watchState tracks one registered watch through the session's lifetime.
// Only the monitor loop touches it after registration.
type watchState struct {
	op     string
	pred   string
	locals []online.LocalSpec
	ef     *online.EFWatch
	ag     *online.AGWatch
	st     *online.StableWatch
	done   bool
}

// buildWatches parses and validates the watch list of a hello frame
// against the session's process count.
func buildWatches(n int, watches []Watch) ([]*watchState, error) {
	ws := make([]*watchState, 0, len(watches))
	for i, w := range watches {
		switch w.Op {
		case "EF", "AG", "STABLE":
		default:
			return nil, fmt.Errorf("server: watch %d: unknown op %q (want EF, AG or STABLE)", i, w.Op)
		}
		locals, err := online.ParseConj(w.Pred)
		if err != nil {
			return nil, fmt.Errorf("server: watch %d: %v", i, err)
		}
		for _, l := range locals {
			if l.Proc < 0 || l.Proc >= n {
				return nil, fmt.Errorf("server: watch %d: conjunct %s on process outside [1,%d]", i, l.Name, n)
			}
		}
		ws = append(ws, &watchState{op: w.Op, pred: w.Pred, locals: locals})
	}
	return ws, nil
}

// inFrame is one queued unit of ingest work.
type inFrame struct {
	f    ClientFrame
	enq  time.Time
	resp chan ServerFrame // non-nil for requests awaiting an in-band reply
	span *obs.Span        // the frame's pipeline span (nil when tracing is off)
}

// attachment is one transport subscription (a TCP connection's writer).
// done is closed when the transport goes away, so an emit blocked on a
// full channel never wedges the monitor loop on a dead connection.
type attachment struct {
	ch       chan ServerFrame
	done     chan struct{}
	doneOnce sync.Once
}

func newAttachment() *attachment {
	return &attachment{ch: make(chan ServerFrame, 64), done: make(chan struct{})}
}

// close marks the transport gone. Safe to call multiple times.
func (a *attachment) close() { a.doneOnce.Do(func() { close(a.done) }) }

// journalEntry is one accepted sequenced frame in the session journal.
type journalEntry struct {
	Seq  int64
	Type string
	Proc int
}

// seqVerdict is the transport-side triage of a sequenced frame.
type seqVerdict int

const (
	seqAccept seqVerdict = iota // next-in-order: enqueue it
	seqDup                      // already accepted: drop idempotently
	seqGap                      // frames lost in flight: drop the connection
)

// Session is one detection session: a bounded ingest queue feeding a
// serialized monitor loop. Transports enqueue concurrently; the loop is
// the only goroutine that touches the monitor and the watches, so
// detection state needs no locks and every verdict is attributed to the
// exact event prefix that determined it.
type Session struct {
	srv *Server
	id  string
	n   int

	queue chan inFrame
	stop  chan struct{} // closed by Close: the loop drains and exits
	done  chan struct{} // closed when the loop has exited

	// Owned by the monitor loop.
	mon        *online.Monitor
	watches    []*watchState
	curSpan    *obs.Span      // the frame span being applied (verdict spans parent here)
	registered bool           // watches registered (deferred until the first event)
	msgIDs     map[int]int    // wire msg id → monitor msg id
	scratch    map[string]int // reused per batched event (the monitor copies sets)
	seen       int            // events applied
	retained   int64          // last Retained() published to the gauge
	journal    []journalEntry
	jnext      int // ring cursor once the journal reaches the retention window

	mu      sync.Mutex
	att     *attachment   // attached transport (TCP writer), nil for HTTP/detached sessions
	frames  []ServerFrame // latched verdict and error frames, for HTTP pull and resume replay
	goodbye *ServerFrame
	reason  string

	tracer *obs.Tracer // from Config; nil disables pipeline spans
	span   *obs.Span   // per-session root span (nil when tracing is off)

	resumable bool
	enqSeq    atomic.Int64 // high-water sequenced frame accepted by the transport
	ackSeq    atomic.Int64 // high-water sequenced frame applied by the loop
	dupes     atomic.Int64 // duplicate sequenced frames idempotently dropped
	journaled atomic.Int64 // event frames journaled (reconciles with events)

	events     atomic.Int64
	dropped    atomic.Int64
	lastActive atomic.Int64 // unix nanos of the last ingested frame
	latNanos   atomic.Int64 // summed ingest latency, for per-session stats
	superseded atomic.Bool  // fenced by a newer incarnation: skip the morgue on finish
	closeOnce  sync.Once
}

func newSession(srv *Server, id string, n int, watches []*watchState, bounded bool) *Session {
	mon := online.NewMonitor(n)
	if bounded {
		mon = online.NewBoundedMonitor(n)
	}
	s := &Session{
		srv:     srv,
		id:      id,
		n:       n,
		queue:   make(chan inFrame, srv.cfg.QueueDepth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		mon:     mon,
		watches: watches,
		msgIDs:  make(map[int]int),
		tracer:  srv.cfg.Tracer,
	}
	// The per-session root span: every frame span of this session parents
	// here, so one trace id covers the session's full pipeline traversal.
	s.span = s.tracer.Start("session")
	s.span.Set("service", "session").Set("session", id).Set("processes", n)
	s.lastActive.Store(time.Now().UnixNano())
	return s
}

// ID returns the server-assigned session id.
func (s *Session) ID() string { return s.id }

// N returns the session's process count.
func (s *Session) N() int { return s.n }

// Events returns the number of events applied to the monitor.
func (s *Session) Events() int64 { return s.events.Load() }

// Dropped returns the number of events shed by the overflow policy.
func (s *Session) Dropped() int64 { return s.dropped.Load() }

// Resumable reports whether the session survives transport loss.
func (s *Session) Resumable() bool { return s.resumable }

// AckedSeq returns the highest sequenced frame applied by the monitor
// loop — everything a client may safely release from its buffer.
func (s *Session) AckedSeq() int64 { return s.ackSeq.Load() }

// Duplicates returns the sequenced frames idempotently dropped.
func (s *Session) Duplicates() int64 { return s.dupes.Load() }

// Journaled returns the event frames recorded in the session journal —
// by construction equal to Events on a resumable session, and asserted
// so by the chaos suite (accepted == journaled == detected).
func (s *Session) Journaled() int64 { return s.journaled.Load() }

// AvgIngest returns the mean enqueue-to-applied latency of this
// session's events — the per-session view of hb_server_ingest_seconds.
func (s *Session) AvgIngest() time.Duration {
	n := s.events.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(s.latNanos.Load() / n)
}

// Frames returns a copy of the latched verdict and error frames, in
// latch order — the pull interface used by the HTTP API.
func (s *Session) Frames() []ServerFrame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ServerFrame(nil), s.frames...)
}

// Goodbye returns the final accounting frame once the session has
// finished (Done is closed), or nil before.
func (s *Session) Goodbye() *ServerFrame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.goodbye
}

// Done returns a channel closed when the monitor loop has exited and the
// session has been removed from the server.
func (s *Session) Done() <-chan struct{} { return s.done }

// spanCtx is the session root span's context; transport-side spans
// (accept, decode) parent here. Zero when tracing is off.
func (s *Session) spanCtx() obs.SpanContext { return s.span.Context() }

// Welcome returns the session's welcome frame.
func (s *Session) Welcome() ServerFrame {
	return ServerFrame{Type: FrameWelcome, Session: s.id, Processes: s.n, Watches: len(s.watches)}
}

// attach registers the transport subscriber; latched frames are pushed
// to it as they happen. Attach before ingesting, or pull via Frames.
func (s *Session) attach(att *attachment) {
	s.mu.Lock()
	s.att = att
	s.mu.Unlock()
}

// detach removes att if it is still the attached transport. A resumable
// session keeps running detached — frames latch into the record and a
// later resume replays them.
func (s *Session) detach(att *attachment) {
	s.mu.Lock()
	if s.att == att {
		s.att = nil
	}
	s.mu.Unlock()
	att.close()
}

// Kick severs the attached transport, if any: its reader unblocks and
// the connection tears down as if the client had vanished, while the
// session itself keeps running. The attachment pointer is deliberately
// left in place — the dying reader clears it via detach, and until then
// tryResume's busy check keeps a successor from ingesting interleaved.
// The cluster uses Kick to detach a client before a drain handoff and
// when a session is superseded by a newer incarnation.
func (s *Session) Kick() {
	s.mu.Lock()
	att := s.att
	s.mu.Unlock()
	if att != nil {
		att.close()
	}
}

// tryResume validates a resume request and, atomically with the checks,
// installs att and snapshots the recorded frames for replay. Holding mu
// across both means no frame can latch between the snapshot and the
// attachment — record-before-push plus replay-from-record is lossless.
// A second resume while a transport is attached is rejected (CodeBusy):
// the first loser of a connection must be detached — by its reader
// noticing the close, or by the read deadline — before a successor may
// take over, so two clients can never ingest interleaved.
func (s *Session) tryResume(clientSeq int64, att *attachment) (int64, []ServerFrame, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.resumable {
		return 0, nil, CodeNotResumable, errors.New("server: session is not resumable")
	}
	select {
	case <-s.stop:
		return 0, nil, CodeUnknownSession, errors.New("server: session closing")
	default:
	}
	if s.att != nil {
		return 0, nil, CodeBusy, errors.New("server: a transport is still attached (concurrent resume, or the previous connection has not timed out yet)")
	}
	enq := s.enqSeq.Load()
	if clientSeq > enq {
		return 0, nil, CodeBadSeq, fmt.Errorf("server: resume seq %d is ahead of anything accepted (%d)", clientSeq, enq)
	}
	if enq-clientSeq > int64(s.srv.cfg.RetentionWindow) {
		return 0, nil, CodeStaleSeq, fmt.Errorf("server: resume seq %d is %d frames behind, beyond the retention window %d",
			clientSeq, enq-clientSeq, s.srv.cfg.RetentionWindow)
	}
	s.att = att
	replay := append([]ServerFrame(nil), s.frames...)
	s.lastActive.Store(time.Now().UnixNano())
	return enq, replay, "", nil
}

// acceptSeq triages one sequenced frame on the attached transport:
// next-in-order advances the accept high-water mark, an already-accepted
// seq is a redelivery to drop, and anything further ahead means frames
// were lost — the transport must drop the connection and force a resume.
// Only the single attached transport calls this, so the read-then-store
// is race-free; the atomic makes the mark visible to tryResume.
func (s *Session) acceptSeq(seq int64) seqVerdict {
	enq := s.enqSeq.Load()
	switch {
	case seq <= enq:
		s.dupes.Add(1)
		s.srv.met.duplicates.Inc()
		return seqDup
	case seq == enq+1:
		s.enqSeq.Store(seq)
		return seqAccept
	default:
		return seqGap
	}
}

// Close stops the session: ingest ends, the monitor loop drains whatever
// was queued, emits the goodbye frame, and the session is removed from
// the server. Safe to call multiple times; the first reason wins.
func (s *Session) Close(reason string) {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.reason = reason
		s.mu.Unlock()
		close(s.stop)
	})
}

// Ingest enqueues one frame, applying the server's overflow policy when
// the session queue is full: block propagates backpressure to the
// caller, drop sheds the event (counted on the session and the
// registry). Only event frames are ever dropped; init and snapshot
// frames always block.
func (s *Session) Ingest(f ClientFrame) error {
	return s.enqueue(inFrame{f: f, enq: time.Now()})
}

func (s *Session) enqueue(in inFrame) error {
	var es *obs.Span
	if s.tracer != nil && in.f.Type != frameFlush {
		// The frame span starts at ingest time and ends when the monitor
		// loop has applied the frame; its children are the pipeline stages.
		fs := s.tracer.StartAt("frame", s.span.Context(), in.enq)
		fs.Set("service", "transport").Set("type", in.f.Type)
		if in.f.Proc != 0 {
			fs.Set("proc", in.f.Proc)
		}
		if in.f.Seq != 0 {
			fs.Set("seq", in.f.Seq)
		}
		in.span = fs
		es = fs.StartChild("enqueue").Set("service", "transport")
	}
	start := time.Now()
	err := s.enqueueRaw(in)
	if in.f.Type != frameFlush { // flush barriers would skew the stage
		s.srv.met.stage(StageEnqueue, time.Since(start))
	}
	if es != nil {
		es.End()
	}
	if err != nil && in.span != nil {
		// The frame never reaches the monitor loop; close its span here.
		in.span.Set("error", err.Error())
		in.span.End()
	}
	return err
}

func (s *Session) enqueueRaw(in inFrame) error {
	// Resumable sessions always block: shedding an accepted sequenced
	// frame would violate exactly-once ingestion (the client has been
	// told, via the seq high-water mark, not to resend it).
	if s.srv.cfg.Overflow == OverflowDrop && !s.resumable && in.f.Type == FrameEvent {
		select {
		case s.queue <- in:
			return nil
		case <-s.stop:
			return ErrClosed
		default:
			s.dropped.Add(1)
			s.srv.met.dropped.Inc()
			return ErrDropped
		}
	}
	select {
	case s.queue <- in:
		return nil
	case <-s.stop:
		return ErrClosed
	}
}

// frameFlush is an internal queue barrier (never valid on the wire).
const frameFlush = "flush"

// Flush blocks until every frame enqueued before it has been applied by
// the monitor loop — the barrier the HTTP batch ack uses so its
// accounting covers the batch it acknowledges.
func (s *Session) Flush() error {
	resp := make(chan ServerFrame, 1)
	if err := s.enqueue(inFrame{f: ClientFrame{Type: frameFlush}, resp: resp}); err != nil {
		return err
	}
	select {
	case <-resp:
		return nil
	case <-s.done:
		select {
		case <-resp:
			return nil
		default:
			return ErrClosed
		}
	}
}

// Snapshot freezes the session's observed prefix and runs an offline
// core.Detect query on it. The request is serialized with ingest through
// the session queue, so the verdict refers to a consistent prefix: every
// event enqueued before it is applied, none after.
func (s *Session) Snapshot(formula string, id int) (ServerFrame, error) {
	resp := make(chan ServerFrame, 1)
	in := inFrame{
		f:    ClientFrame{Type: FrameSnapshot, Formula: formula, ID: id},
		enq:  time.Now(),
		resp: resp,
	}
	if err := s.enqueue(in); err != nil {
		return ServerFrame{}, err
	}
	// The loop always answers queued requests, even while draining on
	// Close, so waiting on done (not stop) cannot lose the response.
	select {
	case fr := <-resp:
		if fr.Type == FrameError {
			return fr, errors.New(fr.Error)
		}
		return fr, nil
	case <-s.done:
		select {
		case fr := <-resp:
			if fr.Type == FrameError {
				return fr, errors.New(fr.Error)
			}
			return fr, nil
		default:
			return ServerFrame{}, ErrClosed
		}
	}
}

// run is the monitor loop: the only goroutine that touches mon and the
// watch states. It exits when Close fires, after draining every frame
// that ingest managed to enqueue — the graceful-shutdown "drain" step.
func (s *Session) run() {
	defer s.srv.wg.Done()
	for {
		select {
		case f := <-s.queue:
			s.handle(f)
		case <-s.stop:
			for {
				select {
				case f := <-s.queue:
					s.handle(f)
				default:
					s.finish()
					return
				}
			}
		}
	}
}

// finish emits the goodbye frame, publishes it, and releases the session.
func (s *Session) finish() {
	s.ensureWatches() // a session with no events still settles its watches
	s.srv.met.retained.Add(-s.retained)
	s.retained = 0
	gb := ServerFrame{
		Type:    FrameGoodbye,
		Session: s.id,
		Events:  int(s.events.Load()),
		Dropped: int(s.dropped.Load()),
	}
	s.mu.Lock()
	if s.reason != "" && s.reason != "bye" {
		gb.Error = s.reason
	}
	s.goodbye = &gb
	att := s.att
	var record []ServerFrame
	if s.resumable {
		record = append([]ServerFrame(nil), s.frames...)
	}
	s.mu.Unlock()
	if s.resumable && !s.superseded.Load() {
		// Linger in the morgue: a client whose connection died between
		// bye and goodbye resumes against this terminal state and still
		// collects every recorded frame exactly once. A superseded session
		// skips the morgue — its record describes a fenced incarnation and
		// must not shadow the tombstone redirect to the new owner.
		s.srv.retire(s.id, s.Welcome(), record, gb, s.enqSeq.Load())
	}
	if att != nil {
		select {
		case att.ch <- gb:
		default: // writer backlogged; accounting still available via Goodbye
		}
	}
	s.span.Set("events", int(s.events.Load())).Set("dropped", int(s.dropped.Load()))
	if gb.Error != "" {
		s.span.Set("error", gb.Error)
	}
	s.span.End()
	s.srv.remove(s.id)
	close(s.done)
}

func (s *Session) handle(f inFrame) {
	s.lastActive.Store(time.Now().UnixNano())
	// The apply span covers the monitor step for this frame; verdict
	// spans latched by it parent under the frame span via curSpan.
	applyStart := time.Now()
	as := f.span.StartChild("apply")
	as.Set("service", "monitor")
	s.curSpan = f.span
	defer func() {
		s.curSpan = nil
		if f.f.Type == FrameInit || f.f.Type == FrameEvent || f.f.Type == FrameBatch || f.f.Type == FrameSnapshot {
			s.srv.met.stage(StageApply, time.Since(applyStart))
		}
		as.Set("event", s.seen)
		as.End()
		if f.span != nil {
			f.span.End()
		}
	}()
	switch f.f.Type {
	case FrameInit:
		s.handleInit(f)
		s.noteSeq(f.f, 0)
	case FrameEvent:
		before := s.seen
		s.handleEvent(f)
		s.noteSeq(f.f, int64(s.seen-before))
	case FrameBatch:
		s.noteSeq(f.f, s.handleBatch(f))
		f.f.Batch.Recycle() // no-op unless the batch came from the binary decode pool
	case FrameSnapshot:
		s.handleSnapshot(f)
	case frameFlush:
		if f.resp == nil { // arrived over the wire, where flush is not a frame
			s.reject(f, fmt.Sprintf("unknown frame type %q", f.f.Type))
			return
		}
		f.resp <- ServerFrame{Type: FrameAck}
	default:
		s.reject(f, fmt.Sprintf("unknown frame type %q", f.f.Type))
	}
}

// noteSeq finishes the monitor loop's side of a sequenced frame: the
// applied high-water mark advances (a semantically rejected frame still
// consumes its seq — redelivering it must not re-error), the frame is
// journaled, and every AckEvery applied frames an ack is pushed so the
// client can release its in-flight copies. The transport guarantees
// in-order, gap-free, duplicate-free delivery into the queue, so the
// loop sees each seq exactly once in order; the guard is defensive.
// applied is the number of events the frame applied to the monitor — 0
// or 1 for single frames, up to the batch length for a batch — keeping
// the journaled == events reconciliation exact under batching.
func (s *Session) noteSeq(f ClientFrame, applied int64) {
	if !s.resumable || f.Seq == 0 {
		return
	}
	if f.Seq <= s.ackSeq.Load() {
		s.dupes.Add(1)
		s.srv.met.duplicates.Inc()
		return
	}
	s.ackSeq.Store(f.Seq)
	entry := journalEntry{Seq: f.Seq, Type: f.Type, Proc: f.Proc}
	if len(s.journal) < s.srv.cfg.RetentionWindow {
		s.journal = append(s.journal, entry)
	} else {
		s.journal[s.jnext] = entry
		s.jnext = (s.jnext + 1) % len(s.journal)
	}
	if applied > 0 {
		s.journaled.Add(applied)
		s.srv.met.journaled.Add(applied)
	}
	if f.Seq%int64(s.srv.cfg.AckEvery) == 0 {
		ack := f.Seq
		if h := s.srv.cfg.Cluster; h != nil && h.AckGate != nil {
			// An ack releases the client's in-flight copy, so in cluster
			// mode it must not outrun replication durability: the gate
			// returns the highest seq safe to acknowledge right now. The
			// withheld tail is re-offered by Session.Ack when the gate
			// advances.
			ack = h.AckGate(s.id, f.Seq)
		}
		if ack > 0 {
			s.emit(ServerFrame{Type: FrameAck, Session: s.id, Seq: ack, Event: s.seen}, false)
		}
	}
}

// Ack pushes an unrecorded ack frame for seq, clamped to the applied
// high-water mark. Cluster replication calls it when the durability gate
// advances past acks that noteSeq withheld; safe from any goroutine.
func (s *Session) Ack(seq int64) {
	if applied := s.ackSeq.Load(); seq > applied {
		seq = applied
	}
	if seq <= 0 {
		return
	}
	s.emit(ServerFrame{Type: FrameAck, Session: s.id, Seq: seq}, false)
}

// reject reports a non-fatal protocol error back to the client. The
// session keeps running: semantic errors are per-frame, and a lossy
// (drop-policy) session routinely produces them.
func (s *Session) reject(f inFrame, msg string) {
	s.srv.met.protoErrors.Inc()
	fr := ServerFrame{Type: FrameError, Session: s.id, ID: f.f.ID, Event: s.seen, Error: msg}
	if f.resp != nil {
		f.resp <- fr
		return
	}
	s.emit(fr, true)
}

func (s *Session) handleInit(f inFrame) {
	proc := f.f.Proc - 1
	if proc < 0 || proc >= s.n {
		s.reject(f, fmt.Sprintf("init for process %d outside [1,%d]", f.f.Proc, s.n))
		return
	}
	if f.f.Var == "" {
		s.reject(f, "init frame without var")
		return
	}
	if s.mon.EventsOn(proc) > 0 {
		s.reject(f, fmt.Sprintf("init for process %d after its events", f.f.Proc))
		return
	}
	if s.registered {
		// Watches already evaluated initial states; a later init would
		// make verdicts depend on ingest interleaving.
		s.reject(f, "init after watches started evaluating (send inits first)")
		return
	}
	s.mon.SetInitial(proc, f.f.Var, f.f.Value)
}

// ensureWatches registers the watches on the monitor. Deferred until the
// first event (or snapshot/close) so init frames streamed after hello are
// visible to the watches' initial-state evaluation; verdicts determined
// by initial values alone latch at event 0.
func (s *Session) ensureWatches() {
	if s.registered {
		return
	}
	s.registered = true
	for _, w := range s.watches {
		switch w.op {
		case "EF":
			w.ef = s.mon.WatchEF(w.locals...)
		case "AG":
			w.ag = s.mon.WatchAG(w.locals...)
		case "STABLE":
			locals := w.locals
			w.st = s.mon.WatchStable(w.pred, func(m *online.Monitor) bool {
				if m.InFlight() != 0 {
					return false
				}
				for _, l := range locals {
					if !l.HoldsNow(m) {
						return false
					}
				}
				return true
			})
		}
	}
	s.checkWatches()
}

func (s *Session) handleEvent(f inFrame) {
	s.ensureWatches()
	proc := f.f.Proc - 1
	if proc < 0 || proc >= s.n {
		s.reject(f, fmt.Sprintf("event for process %d outside [1,%d]", f.f.Proc, s.n))
		return
	}
	switch f.f.Kind {
	case "", "internal":
		s.mon.Internal(proc, f.f.Sets)
	case "send":
		if _, dup := s.msgIDs[f.f.Msg]; dup {
			s.reject(f, fmt.Sprintf("message %d sent twice", f.f.Msg))
			return
		}
		s.msgIDs[f.f.Msg] = s.mon.Send(proc, f.f.Sets)
	case "receive":
		id, ok := s.msgIDs[f.f.Msg]
		if !ok {
			s.reject(f, fmt.Sprintf("receive of unknown message %d (dropped or unsent)", f.f.Msg))
			return
		}
		if err := s.mon.Receive(proc, id, f.f.Sets); err != nil {
			s.reject(f, err.Error())
			return
		}
	default:
		s.reject(f, fmt.Sprintf("unknown event kind %q", f.f.Kind))
		return
	}
	s.seen++
	s.events.Add(1)
	s.srv.met.events.Inc()
	if d := s.srv.cfg.IngestDelay; d > 0 {
		time.Sleep(d)
	}
	s.checkWatches()
	lat := time.Since(f.enq)
	s.latNanos.Add(lat.Nanoseconds())
	s.srv.met.ingestDur.Observe(lat.Seconds())
}

// handleBatch applies a batch frame: each batched init/event in order,
// with exactly the semantics the equivalent single frames would have
// had — per-event semantic errors are rejected individually and the
// rest of the batch continues, and every applied event checks the
// watches, so verdict determining prefixes are bit-identical to the
// unbatched stream. Returns the number of events applied (inits and
// rejected events do not count, matching the single-frame path).
func (s *Session) handleBatch(f inFrame) int64 {
	b := f.f.Batch
	if b == nil {
		s.reject(f, "batch frame without batch columns")
		return 0
	}
	// Binary decode only constructs valid batches; JSON-decoded ones
	// (NDJSON clients, cluster replication, recovery replay) are
	// untrusted shapes.
	if err := b.Validate(); err != nil {
		s.reject(f, err.Error())
		return 0
	}
	var applied int64
	for i, n := 0, b.Len(); i < n; i++ {
		proc := int(b.Procs[i]) - 1
		kind := b.Kinds[i]
		if proc < 0 || proc >= s.n {
			s.reject(f, fmt.Sprintf("batched event %d for process %d outside [1,%d]", i, b.Procs[i], s.n))
			continue
		}
		lo, hi := b.SetOff[i], b.SetOff[i+1]
		if kind == pir.EvInit {
			vs := b.Sets[lo]
			switch {
			case vs.Name == "":
				s.reject(f, fmt.Sprintf("batched init %d without var", i))
			case s.mon.EventsOn(proc) > 0:
				s.reject(f, fmt.Sprintf("batched init for process %d after its events", b.Procs[i]))
			case s.registered:
				s.reject(f, "init after watches started evaluating (send inits first)")
			default:
				s.mon.SetInitial(proc, vs.Name, vs.Val)
			}
			continue
		}
		s.ensureWatches()
		sets := s.scratchSets(b.Sets[lo:hi])
		switch kind {
		case pir.EvInternal:
			s.mon.Internal(proc, sets)
		case pir.EvSend:
			if _, dup := s.msgIDs[b.Msg(i)]; dup {
				s.reject(f, fmt.Sprintf("message %d sent twice", b.Msg(i)))
				continue
			}
			s.msgIDs[b.Msg(i)] = s.mon.Send(proc, sets)
		case pir.EvReceive:
			id, ok := s.msgIDs[b.Msg(i)]
			if !ok {
				s.reject(f, fmt.Sprintf("receive of unknown message %d (dropped or unsent)", b.Msg(i)))
				continue
			}
			if err := s.mon.Receive(proc, id, sets); err != nil {
				s.reject(f, err.Error())
				continue
			}
		}
		s.seen++
		s.events.Add(1)
		s.srv.met.events.Inc()
		applied++
		if d := s.srv.cfg.IngestDelay; d > 0 {
			time.Sleep(d)
		}
		s.checkWatches()
	}
	s.srv.met.batches.Inc()
	lat := time.Since(f.enq)
	s.latNanos.Add(lat.Nanoseconds())
	s.srv.met.ingestDur.Observe(lat.Seconds())
	return applied
}

// scratchSets materializes one batched event's assignments as a map for
// the monitor, reusing one allocation for the session's lifetime — the
// monitor copies what it keeps.
func (s *Session) scratchSets(sets []pir.VarSet) map[string]int {
	if len(sets) == 0 {
		return nil
	}
	if s.scratch == nil {
		s.scratch = make(map[string]int, 8)
	} else {
		clear(s.scratch)
	}
	for _, vs := range sets {
		s.scratch[vs.Name] = vs.Val
	}
	return s.scratch
}

func (s *Session) handleSnapshot(f inFrame) {
	if s.mon.Bounded() {
		s.reject(f, "snapshot unavailable on a bounded session (event prefix not retained)")
		return
	}
	s.ensureWatches()
	fl, err := ctl.Parse(f.f.Formula)
	if err != nil {
		s.reject(f, err.Error())
		return
	}
	res, err := core.DetectParallel(s.mon.Snapshot(), fl, s.srv.cfg.Workers)
	if err != nil {
		s.reject(f, err.Error())
		return
	}
	s.srv.met.snapshots.Inc()
	holds := res.Holds
	fr := ServerFrame{
		Type:      FrameSnapshot,
		Session:   s.id,
		ID:        f.f.ID,
		Holds:     &holds,
		Algorithm: res.Algorithm,
		Event:     s.seen,
		Events:    s.seen,
	}
	if f.resp != nil {
		f.resp <- fr
		return
	}
	s.emit(fr, false)
}

// publishRetained folds the monitor's current retained-state figure into
// the hb_server_session_retained_events gauge as a delta against the last
// published value, so the gauge sums correctly across sessions. Bounded
// sessions hold it at the slice-cursor size; unbounded sessions grow it
// with the prefix.
func (s *Session) publishRetained() {
	if r := int64(s.mon.Retained()); r != s.retained {
		s.srv.met.retained.Add(r - s.retained)
		s.retained = r
	}
}

// checkWatches emits a verdict frame for every watch that latched since
// the last check. Called after each applied event, so Event on the frame
// is the exact determining prefix: the verdict did not hold after
// Event-1 events and holds after Event.
func (s *Session) checkWatches() {
	s.publishRetained()
	for i, w := range s.watches {
		if w.done {
			continue
		}
		fr := ServerFrame{Type: FrameVerdict, Session: s.id, Watch: i, Op: w.op, Pred: w.pred, Event: s.seen}
		switch {
		case w.ef != nil && w.ef.Fired():
			w.done = true
			s.srv.met.efFired.Inc()
			fr.Cut = w.ef.Cut()
		case w.ag != nil && w.ag.Violated():
			w.done = true
			s.srv.met.agViolated.Inc()
			cut, conjunct := w.ag.Counterexample()
			fr.Cut, fr.Conjunct = cut, conjunct
		case w.st != nil && w.st.Fired():
			w.done = true
			s.srv.met.stableFired.Inc()
			fr.Event = w.st.FiredAt()
		default:
			continue
		}
		verdictStart := time.Now()
		vs := s.curSpan.StartChild("verdict")
		vs.Set("service", "monitor").Set("watch", i).Set("op", w.op).Set("event", s.seen)
		s.emit(fr, true)
		vs.End()
		s.srv.met.stage(StageVerdict, time.Since(verdictStart))
	}
}

// emit records a latched frame (when record is set) and pushes it to the
// attached transport. Recording happens before the push and resume
// replays the record, so a frame is never lost to a dying connection —
// at worst it is delivered twice, and the client dedupes on Idx. Safe
// from any goroutine; never blocks past Close or a transport detach.
func (s *Session) emit(fr ServerFrame, record bool) {
	s.mu.Lock()
	if record {
		fr.Idx = len(s.frames) + 1
		s.frames = append(s.frames, fr)
	}
	att := s.att
	s.mu.Unlock()
	if att == nil {
		return
	}
	// Prefer the buffered send: during the post-Close drain stop is
	// already closed, but the writer is still draining the subscriber, so
	// verdicts for drained events must not be shed while there is room.
	select {
	case att.ch <- fr:
	default:
		select {
		case att.ch <- fr:
		case <-att.done:
			// Transport died with a backlogged channel; recorded frames
			// reach the client via resume replay or Frames / Goodbye.
		case <-s.stop:
			// Closing with a backlogged subscriber; the frame stays
			// available via Frames / Goodbye.
		}
	}
}

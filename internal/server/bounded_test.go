package server_test

import (
	"slices"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
)

// TestBoundedSession opens one bounded and one unbounded session over the
// same scripted stream and requires identical verdict frames (operator,
// determining prefix, cut), a rejected snapshot on the bounded session,
// and a hb_server_session_retained_events gauge that stays at the slice
// cursor size for the bounded session instead of the prefix length.
func TestBoundedSession(t *testing.T) {
	reg := obs.NewRegistry()
	_, addr := startServer(t, server.Config{Registry: reg})
	retained := reg.Gauge("hb_server_session_retained_events", "")

	steps := script(1)
	watches := []server.Watch{
		{Op: "EF", Pred: efPred},
		{Op: "AG", Pred: agPred},
		{Op: "STABLE", Pred: stablePred},
	}

	runSession := func(bounded bool) ([]server.ServerFrame, int64) {
		sess, err := client.Dial(addr, client.Config{Processes: 3, Watches: watches, Bounded: bounded})
		if err != nil {
			t.Fatalf("dial (bounded=%v): %v", bounded, err)
		}
		stream(sess, steps)

		if bounded {
			if _, err := sess.Snapshot("EF(" + efPred + ")"); err == nil {
				t.Fatal("snapshot on a bounded session was not rejected")
			} else if !strings.Contains(err.Error(), "bounded") {
				t.Fatalf("snapshot rejection does not name the cause: %v", err)
			}
		} else if _, err := sess.Snapshot("EF(" + efPred + ")"); err != nil {
			t.Fatalf("snapshot on the unbounded session: %v", err)
		}

		// The gauge reflects this (only live) session: the bye below
		// removes its contribution again.
		held := retained.Value()
		if _, err := sess.Close(); err != nil {
			t.Fatalf("close (bounded=%v): %v", bounded, err)
		}
		var verdicts []server.ServerFrame
		for _, fr := range sess.Latched() {
			if fr.Type == server.FrameVerdict {
				fr.Session = "" // session ids differ; everything else must not
				verdicts = append(verdicts, fr)
			}
		}
		return verdicts, held
	}

	fullVerdicts, fullHeld := runSession(false)
	if after := retained.Value(); after != 0 {
		t.Fatalf("retained gauge %d after unbounded session closed, want 0", after)
	}
	bndVerdicts, bndHeld := runSession(true)
	if after := retained.Value(); after != 0 {
		t.Fatalf("retained gauge %d after bounded session closed, want 0", after)
	}

	if len(fullVerdicts) != len(bndVerdicts) || len(fullVerdicts) == 0 {
		t.Fatalf("verdict counts differ: %d unbounded vs %d bounded", len(fullVerdicts), len(bndVerdicts))
	}
	for i := range fullVerdicts {
		f, b := fullVerdicts[i], bndVerdicts[i]
		if f.Op != b.Op || f.Pred != b.Pred || f.Event != b.Event || f.Conjunct != b.Conjunct ||
			!slices.Equal(f.Cut, b.Cut) {
			t.Fatalf("verdict %d diverges:\nunbounded %+v\nbounded   %+v", i, f, b)
		}
	}

	// The unbounded session retains the whole prefix; the bounded one only
	// its slice cursors — the measured per-session retained-state reduction.
	if fullHeld != int64(len(steps)) {
		t.Fatalf("unbounded session retained %d, want prefix length %d", fullHeld, len(steps))
	}
	if bndHeld >= fullHeld {
		t.Fatalf("bounded session retained %d, want < %d", bndHeld, fullHeld)
	}
	t.Logf("retained state: unbounded %d, bounded %d", fullHeld, bndHeld)
}

package server

import "repro/internal/obs"

// metrics holds the hbserver metric handles. The names are part of the
// operational interface and documented in DESIGN.md; the registry is
// shared with the engine packages and served by obs.NewMux.
type metrics struct {
	sessionsActive *obs.Gauge     // hb_server_sessions_active
	sessionsTotal  *obs.Counter   // hb_server_sessions_opened_total
	connsActive    *obs.Gauge     // hb_server_connections_active
	events         *obs.Counter   // hb_server_events_total
	dropped        *obs.Counter   // hb_server_events_dropped_total
	ingestDur      *obs.Histogram // hb_server_ingest_seconds
	efFired        *obs.Counter   // hb_server_verdicts_total{kind="ef_fired"}
	agViolated     *obs.Counter   // hb_server_verdicts_total{kind="ag_violated"}
	stableFired    *obs.Counter   // hb_server_verdicts_total{kind="stable_fired"}
	snapshots      *obs.Counter   // hb_server_snapshots_total
	protoErrors    *obs.Counter   // hb_server_protocol_errors_total
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &metrics{
		sessionsActive: reg.Gauge("hb_server_sessions_active",
			"Detection sessions currently open."),
		sessionsTotal: reg.Counter("hb_server_sessions_opened_total",
			"Detection sessions opened since start."),
		connsActive: reg.Gauge("hb_server_connections_active",
			"TCP ingest connections currently open."),
		events: reg.Counter("hb_server_events_total",
			"Events applied to session monitors."),
		dropped: reg.Counter("hb_server_events_dropped_total",
			"Events shed by the drop overflow policy."),
		ingestDur: reg.Histogram("hb_server_ingest_seconds",
			"Per-event ingest latency, enqueue to applied.", nil),
		efFired: reg.Counter(`hb_server_verdicts_total{kind="ef_fired"}`,
			"Server-side verdict latches by kind."),
		agViolated: reg.Counter(`hb_server_verdicts_total{kind="ag_violated"}`,
			"Server-side verdict latches by kind."),
		stableFired: reg.Counter(`hb_server_verdicts_total{kind="stable_fired"}`,
			"Server-side verdict latches by kind."),
		snapshots: reg.Counter("hb_server_snapshots_total",
			"Offline snapshot queries served."),
		protoErrors: reg.Counter("hb_server_protocol_errors_total",
			"Frames rejected as malformed, out of range, or out of order."),
	}
}

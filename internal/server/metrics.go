package server

import (
	"time"

	"repro/internal/obs"
)

// metrics holds the hbserver metric handles. The names are part of the
// operational interface and documented in DESIGN.md; the registry is
// shared with the engine packages and served by obs.NewMux.
type metrics struct {
	sessionsActive *obs.Gauge     // hb_server_sessions_active
	sessionsTotal  *obs.Counter   // hb_server_sessions_opened_total
	connsActive    *obs.Gauge     // hb_server_connections_active
	events         *obs.Counter   // hb_server_events_total
	dropped        *obs.Counter   // hb_server_events_dropped_total
	ingestDur      *obs.Histogram // hb_server_ingest_seconds
	efFired        *obs.Counter   // hb_server_verdicts_total{kind="ef_fired"}
	agViolated     *obs.Counter   // hb_server_verdicts_total{kind="ag_violated"}
	stableFired    *obs.Counter   // hb_server_verdicts_total{kind="stable_fired"}
	snapshots      *obs.Counter   // hb_server_snapshots_total
	retained       *obs.Gauge     // hb_server_session_retained_events
	protoErrors    *obs.Counter   // hb_server_protocol_errors_total
	duplicates     *obs.Counter   // hb_server_events_duplicate_total
	journaled      *obs.Counter   // hb_server_events_journaled_total
	batches        *obs.Counter   // hb_server_batches_total
	resumesOK      *obs.Counter   // hb_server_resumes_total{result="ok"}
	resumesRej     *obs.Counter   // hb_server_resumes_total{result="rejected"}

	// connCloses counts TCP connection teardowns by typed reason, so a
	// half-open peer timing out is distinguishable from a clean bye.
	connCloses map[string]*obs.Counter // hb_server_conn_closes_total{reason=...}

	// stageDur breaks the ingest pipeline into per-stage latency
	// histograms, so "where does detection time go" is answerable from
	// /metrics alone: hb_server_stage_seconds{stage=...}.
	stageDur map[string]*obs.Histogram
}

// Pipeline stages (hb_server_stage_seconds labels), in traversal order.
const (
	StageAccept  = "accept"  // connection handshake: first frame read → session attached
	StageDecode  = "decode"  // one NDJSON line → ClientFrame
	StageEnqueue = "enqueue" // ingest call → frame queued (blocking = backpressure)
	StageApply   = "apply"   // monitor step: frame applied to detection state
	StageVerdict = "verdict" // watch latch → verdict frame emitted
)

var stages = []string{StageAccept, StageDecode, StageEnqueue, StageApply, StageVerdict}

// stage records one duration under the named pipeline stage.
func (m *metrics) stage(name string, d time.Duration) {
	if h, ok := m.stageDur[name]; ok {
		h.Observe(d.Seconds())
	}
}

// Typed TCP connection close reasons (hb_server_conn_closes_total labels).
const (
	CloseBye         = "bye"            // client sent bye; orderly close
	CloseSessionDone = "session_done"   // session ended server-side (shutdown, idle, error)
	CloseEOF         = "eof"            // peer closed the connection
	CloseReadTimeout = "read_timeout"   // read deadline expired on a silent/half-open peer
	CloseProtoError  = "proto_error"    // malformed frame desynchronized the stream
	CloseSeqGap      = "seq_gap"        // sequenced frames lost in flight; client must resume
	CloseTooLong     = "frame_too_long" // a frame exceeded MaxFrameBytes (either encoding)
	CloseError       = "error"          // other I/O error
	CloseTakeover    = "takeover"       // handed to the cluster replication protocol
)

var closeReasons = []string{
	CloseBye, CloseSessionDone, CloseEOF, CloseReadTimeout,
	CloseProtoError, CloseSeqGap, CloseTooLong, CloseError, CloseTakeover,
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &metrics{
		sessionsActive: reg.Gauge("hb_server_sessions_active",
			"Detection sessions currently open."),
		sessionsTotal: reg.Counter("hb_server_sessions_opened_total",
			"Detection sessions opened since start."),
		connsActive: reg.Gauge("hb_server_connections_active",
			"TCP ingest connections currently open."),
		events: reg.Counter("hb_server_events_total",
			"Events applied to session monitors."),
		dropped: reg.Counter("hb_server_events_dropped_total",
			"Events shed by the drop overflow policy."),
		ingestDur: reg.Histogram("hb_server_ingest_seconds",
			"Per-event ingest latency, enqueue to applied.", nil),
		efFired: reg.Counter(`hb_server_verdicts_total{kind="ef_fired"}`,
			"Server-side verdict latches by kind."),
		agViolated: reg.Counter(`hb_server_verdicts_total{kind="ag_violated"}`,
			"Server-side verdict latches by kind."),
		stableFired: reg.Counter(`hb_server_verdicts_total{kind="stable_fired"}`,
			"Server-side verdict latches by kind."),
		snapshots: reg.Counter("hb_server_snapshots_total",
			"Offline snapshot queries served."),
		retained: reg.Gauge("hb_server_session_retained_events",
			"Events' worth of state retained across live sessions (prefix length, or slice-cursor size for bounded sessions)."),
		protoErrors: reg.Counter("hb_server_protocol_errors_total",
			"Frames rejected as malformed, out of range, or out of order."),
		duplicates: reg.Counter("hb_server_events_duplicate_total",
			"Sequenced frames idempotently dropped as duplicates (at-least-once redelivery)."),
		journaled: reg.Counter("hb_server_events_journaled_total",
			"Event frames recorded in session journals (must reconcile with hb_server_events_total)."),
		batches: reg.Counter("hb_server_batches_total",
			"Batch frames applied (each carries many events under one seq)."),
		resumesOK: reg.Counter(`hb_server_resumes_total{result="ok"}`,
			"Resume handshakes by outcome."),
		resumesRej: reg.Counter(`hb_server_resumes_total{result="rejected"}`,
			"Resume handshakes by outcome."),
		connCloses: closeCounters(reg),
		stageDur:   stageHistograms(reg),
	}
}

func stageHistograms(reg *obs.Registry) map[string]*obs.Histogram {
	m := make(map[string]*obs.Histogram, len(stages))
	for _, st := range stages {
		m[st] = reg.Histogram(`hb_server_stage_seconds{stage="`+st+`"}`,
			"Per-stage pipeline latency: accept, decode, enqueue, apply, verdict.", nil)
	}
	return m
}

func closeCounters(reg *obs.Registry) map[string]*obs.Counter {
	m := make(map[string]*obs.Counter, len(closeReasons))
	for _, r := range closeReasons {
		m[r] = reg.Counter(`hb_server_conn_closes_total{reason="`+r+`"}`,
			"TCP ingest connection closes by reason.")
	}
	return m
}

// connClosed counts one TCP teardown under its typed reason.
func (m *metrics) connClosed(reason string) {
	if c, ok := m.connCloses[reason]; ok {
		c.Inc()
		return
	}
	m.connCloses[CloseError].Inc()
}

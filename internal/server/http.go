package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// RegisterHTTP mounts the session API on mux (typically the obs
// telemetry mux, so one port serves ingest and metrics):
//
//	POST   /api/sessions              hello frame body → welcome frame
//	GET    /api/sessions/{id}         session status
//	POST   /api/sessions/{id}/events  NDJSON init/event frames → ack frame
//	GET    /api/sessions/{id}/verdicts latched verdict/error frames (NDJSON)
//	POST   /api/sessions/{id}/snapshot snapshot frame body → snapshot frame
//	DELETE /api/sessions/{id}         close session → goodbye frame
//
// HTTP sessions have no push channel; clients poll verdicts. The idle
// janitor reclaims sessions whose clients vanish.
func RegisterHTTP(mux *http.ServeMux, srv *Server) {
	mux.HandleFunc("POST /api/sessions", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxFrameBytes))
		if err != nil {
			httpError(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
		f, err := DecodeClientFrame(body)
		if err == nil {
			if f.Type == "" {
				f.Type = FrameHello // bare {"processes":...} bodies are fine
			}
			err = ValidateHello(f)
		}
		if err != nil {
			srv.met.protoErrors.Inc()
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		sess, err := srv.Open(SessionConfig{Processes: f.Processes, Watches: f.Watches, Bounded: f.Bounded})
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeJSON(w, http.StatusCreated, sess.Welcome())
	})

	mux.HandleFunc("GET /api/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		sess := srv.Session(r.PathValue("id"))
		if sess == nil {
			httpError(w, http.StatusNotFound, "no such session")
			return
		}
		writeJSON(w, http.StatusOK, ServerFrame{
			Type:      FrameAck,
			Session:   sess.ID(),
			Processes: sess.N(),
			Events:    int(sess.Events()),
			Dropped:   int(sess.Dropped()),
			// Resumable-session accounting: high-water applied seq and
			// whether the session survives transport loss.
			Seq:     sess.AckedSeq(),
			Resumed: sess.Resumable(),
		})
	})

	mux.HandleFunc("POST /api/sessions/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		sess := srv.Session(r.PathValue("id"))
		if sess == nil {
			httpError(w, http.StatusNotFound, "no such session")
			return
		}
		sc := NewFrameScanner(io.LimitReader(r.Body, 64*MaxFrameBytes))
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			f, err := DecodeClientFrame(sc.Bytes())
			if err != nil {
				srv.met.protoErrors.Inc()
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
			switch f.Type {
			case FrameInit, FrameEvent:
			default:
				srv.met.protoErrors.Inc()
				httpError(w, http.StatusBadRequest, "only init and event frames may be posted to /events, got %q", f.Type)
				return
			}
			switch err := sess.Ingest(f); err {
			case nil, ErrDropped: // drops are counted in the ack
			default:
				httpError(w, http.StatusGone, "session closed")
				return
			}
		}
		// Barrier: the ack's accounting must cover the batch it acks.
		if err := sess.Flush(); err != nil {
			httpError(w, http.StatusGone, "session closed")
			return
		}
		writeJSON(w, http.StatusOK, ServerFrame{
			Type:    FrameAck,
			Session: sess.ID(),
			Events:  int(sess.Events()),
			Dropped: int(sess.Dropped()),
		})
	})

	mux.HandleFunc("GET /api/sessions/{id}/verdicts", func(w http.ResponseWriter, r *http.Request) {
		sess := srv.Session(r.PathValue("id"))
		if sess == nil {
			httpError(w, http.StatusNotFound, "no such session")
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, fr := range sess.Frames() {
			w.Write(appendFrame(fr))
		}
	})

	mux.HandleFunc("POST /api/sessions/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		sess := srv.Session(r.PathValue("id"))
		if sess == nil {
			httpError(w, http.StatusNotFound, "no such session")
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxFrameBytes))
		if err != nil {
			httpError(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
		f, err := DecodeClientFrame(body)
		if err != nil {
			srv.met.protoErrors.Inc()
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		fr, err := sess.Snapshot(f.Formula, f.ID)
		if err != nil {
			if fr.Type == FrameError { // detection-level error, frame has details
				writeJSON(w, http.StatusUnprocessableEntity, fr)
				return
			}
			httpError(w, http.StatusGone, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, fr)
	})

	mux.HandleFunc("DELETE /api/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		sess := srv.Session(r.PathValue("id"))
		if sess == nil {
			httpError(w, http.StatusNotFound, "no such session")
			return
		}
		sess.Close("bye")
		<-sess.Done()
		if gb := sess.Goodbye(); gb != nil {
			writeJSON(w, http.StatusOK, *gb)
			return
		}
		writeJSON(w, http.StatusOK, ServerFrame{Type: FrameGoodbye, Session: sess.ID()})
	})
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ServerFrame{Type: FrameError, Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// Binary framing and the shared bounded frame scanner. The wire
// multiplexes two frame encodings on one connection: NDJSON lines
// (every line starts with '{') and length-prefixed binary frames
// (every frame starts with FrameMagic, which can never begin a JSON
// value). FrameScanner is the single reader for both — the TCP
// transport, the cluster replication links, the Go client, and the
// fuzz harness all use it, so every path enforces the same
// MaxFrameBytes bound.
//
// Binary frame layout:
//
//	0xB1                  FrameMagic
//	type byte             BinBatch is the only type today
//	uvarint length        payload bytes, ≤ MaxFrameBytes
//	payload               for BinBatch: a pir binary batch payload
//
// Binary ingest is negotiated: a hello or resume frame carrying
// "encoding":"binary" opts the connection in, and the welcome echoes
// it. Control frames (hello, resume, snapshot, bye) stay NDJSON on
// every connection; server → client traffic is always NDJSON.
package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire encodings a hello/resume frame may request. The empty string
// means EncodingNDJSON.
const (
	EncodingNDJSON = "ndjson"
	EncodingBinary = "binary"
)

// ValidateEncoding checks an encoding negotiation value.
func ValidateEncoding(enc string) error {
	switch enc {
	case "", EncodingNDJSON, EncodingBinary:
		return nil
	}
	return fmt.Errorf("server: unknown encoding %q (want %q or %q)", enc, EncodingNDJSON, EncodingBinary)
}

// FrameMagic is the first byte of every binary frame. 0xB1 is not
// valid UTF-8 and cannot start a JSON value, so the scanner
// discriminates encodings on one byte.
const FrameMagic byte = 0xB1

// Binary frame types (the byte after FrameMagic).
const (
	// BinBatch carries a pir binary batch payload (seq + events).
	BinBatch byte = 0x01
)

// ErrFrameTooLong reports a frame (either encoding) whose size exceeds
// MaxFrameBytes. The transport maps it to an explanatory error frame
// and the CloseTooLong close reason so clients can tell an oversized
// frame from network loss.
var ErrFrameTooLong = errors.New("server: frame exceeds MaxFrameBytes")

// AppendBinaryFrame appends one binary frame (magic, type, length,
// payload) to dst.
func AppendBinaryFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, FrameMagic, typ)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// FrameScanner reads a mixed NDJSON/binary frame stream with every
// frame bounded at MaxFrameBytes. The interface mirrors
// bufio.Scanner: Scan, then Bytes (valid until the next Scan), then
// Err after Scan returns false.
type FrameScanner struct {
	br     *bufio.Reader
	buf    []byte
	binary bool
	typ    byte
	err    error
}

// NewFrameScanner returns a FrameScanner reading from r. This is the
// one bounded-frame constructor in the repository; hand-rolling a
// bufio.Scanner with its own cap means fuzzing a bound production
// never uses.
func NewFrameScanner(r io.Reader) *FrameScanner {
	return &FrameScanner{br: bufio.NewReaderSize(r, 4096)}
}

// Scan advances to the next frame. It returns false at EOF or on
// error; Err distinguishes the two.
func (s *FrameScanner) Scan() bool {
	if s.err != nil {
		return false
	}
	first, err := s.br.ReadByte()
	if err != nil {
		if err != io.EOF {
			s.err = err
		}
		return false
	}
	if first == FrameMagic {
		return s.scanBinary()
	}
	if err := s.br.UnreadByte(); err != nil {
		s.err = err
		return false
	}
	return s.scanLine()
}

// scanLine reads one newline-terminated frame into buf, stripping the
// terminator (\n or \r\n). A final line without a terminator is
// emitted, matching bufio.Scanner.
func (s *FrameScanner) scanLine() bool {
	s.binary = false
	s.buf = s.buf[:0]
	for {
		chunk, err := s.br.ReadSlice('\n')
		s.buf = append(s.buf, chunk...)
		if len(s.buf) > MaxFrameBytes+1 { // +1: the terminator is not frame payload
			s.err = ErrFrameTooLong
			return false
		}
		switch err {
		case nil:
			s.buf = trimEOL(s.buf)
			return true
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(s.buf) == 0 {
				return false
			}
			return true
		default:
			s.err = err
			return false
		}
	}
}

// scanBinary reads the remainder of a binary frame (the magic byte is
// consumed). Truncation surfaces as io.ErrUnexpectedEOF.
func (s *FrameScanner) scanBinary() bool {
	s.binary = true
	typ, err := s.br.ReadByte()
	if err != nil {
		s.err = noEOF(err)
		return false
	}
	s.typ = typ
	ln, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.err = noEOF(err)
		return false
	}
	if ln > MaxFrameBytes {
		s.err = ErrFrameTooLong
		return false
	}
	if uint64(cap(s.buf)) < ln {
		s.buf = make([]byte, ln)
	}
	s.buf = s.buf[:ln]
	if _, err := io.ReadFull(s.br, s.buf); err != nil {
		s.err = noEOF(err)
		return false
	}
	return true
}

// noEOF maps a mid-frame EOF to io.ErrUnexpectedEOF: the stream ended
// inside a frame, which is an error, unlike EOF between frames.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func trimEOL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
		if n := len(b); n > 0 && b[n-1] == '\r' {
			b = b[:n-1]
		}
	}
	return b
}

// Bytes returns the current frame: the NDJSON line without its
// terminator, or the binary payload without its header. The slice is
// only valid until the next Scan.
func (s *FrameScanner) Bytes() []byte { return s.buf }

// Binary reports whether the current frame is binary.
func (s *FrameScanner) Binary() bool { return s.binary }

// BinaryType returns the type byte of the current binary frame.
func (s *FrameScanner) BinaryType() byte { return s.typ }

// Err returns the first error encountered (nil at clean EOF).
func (s *FrameScanner) Err() error { return s.err }

package client_test

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
)

func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // closed by Shutdown
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// Write modes for flakyConn.
const (
	modePass      = iota // writes reach the wire
	modeBlackhole        // writes report success but go nowhere
	modeFailWrite        // writes return an error
)

// flakyConn wraps a real connection with a switchable write mode, so a
// test can first swallow a frame (delivered from the client's point of
// view, lost from the server's) and then make the next write fail.
type flakyConn struct {
	net.Conn
	mode atomic.Int32
}

func (c *flakyConn) Write(p []byte) (int, error) {
	switch c.mode.Load() {
	case modeBlackhole:
		return len(p), nil
	case modeFailWrite:
		return 0, net.ErrClosed
	default:
		return c.Conn.Write(p)
	}
}

// TestFailedWriteUnblocksSnapshotWaiters is the regression test for the
// sticky-error path: a snapshot whose request was lost used to wait on
// its response channel forever even after a later write failed the
// session sticky, because nothing woke the pending waiters. The fix
// closes the session's failure channel, which every waiter selects on.
func TestFailedWriteUnblocksSnapshotWaiters(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	fc := &flakyConn{}
	sess, err := client.Dial(addr, client.Config{
		Processes: 2,
		Dial: func(a string) (net.Conn, error) {
			c, err := net.Dial("tcp", a)
			if err != nil {
				return nil, err
			}
			fc.Conn = c
			return fc, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The snapshot request vanishes in flight: the waiter blocks on a
	// response that will never come.
	fc.mode.Store(modeBlackhole)
	snapErr := make(chan error, 1)
	go func() {
		_, err := sess.Snapshot("EF conj(x@P1 == 1)")
		snapErr <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the waiter register and block

	// Now a write fails and the session goes sticky-failed; the blocked
	// snapshot must unblock with that error.
	fc.mode.Store(modeFailWrite)
	sess.Internal(0, nil)
	if err := sess.Err(); err == nil {
		t.Fatal("failed write did not set the sticky session error")
	}
	select {
	case err := <-snapErr:
		if err == nil {
			t.Fatal("snapshot returned nil error after session failure")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("snapshot waiter still blocked 2s after session failure")
	}
}

// verdictKey is the comparable content of a pushed frame — everything
// except the session id and transport bookkeeping.
type verdictKey struct {
	typ, op, pred, err string
	event              int
	holds              string
}

func keyOf(fr server.ServerFrame) verdictKey {
	k := verdictKey{typ: fr.Type, op: fr.Op, pred: fr.Pred, err: fr.Error, event: fr.Event, holds: "nil"}
	if fr.Holds != nil {
		if *fr.Holds {
			k.holds = "true"
		} else {
			k.holds = "false"
		}
	}
	return k
}

// TestReconnectResumesAndReplays kills the connection mid-stream and
// checks the client reconnects, replays the unacked suffix, and ends
// with exactly the verdicts of an uninterrupted run.
func TestReconnectResumesAndReplays(t *testing.T) {
	_, addr := startServer(t, server.Config{AckEvery: 2})
	watches := []server.Watch{
		{Op: "EF", Pred: "conj(x@P1 == 1, x@P2 == 1)"},
		{Op: "AG", Pred: "conj(x@P2 <= 1)"},
	}
	run := func(interrupt bool) (*client.Session, *server.ServerFrame) {
		var cur atomic.Pointer[net.Conn]
		sess, err := client.Dial(addr, client.Config{
			Processes:   2,
			Watches:     watches,
			Reconnect:   true,
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  100 * time.Millisecond,
			Dial: func(a string) (net.Conn, error) {
				c, err := net.Dial("tcp", a)
				if err != nil {
					return nil, err
				}
				cur.Store(&c)
				return c, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		sess.SetInitial(0, "x", 0)
		sess.SetInitial(1, "x", 0)
		sess.Internal(0, map[string]int{"x": 1})
		m := sess.Send(0, nil)
		if interrupt {
			(*cur.Load()).Close() // the network "fails" mid-stream
		}
		sess.Receive(1, m, map[string]int{"x": 1})
		sess.Internal(1, map[string]int{"x": 2}) // violates the AG watch
		gb, err := sess.Close()
		if err != nil {
			t.Fatalf("close: %v (session err: %v)", err, sess.Err())
		}
		return sess, gb
	}

	control, cgb := run(false)
	faulty, fgb := run(true)

	if got := faulty.Stats(); got.Reconnects < 1 {
		t.Errorf("interrupted run reconnected %d times, want >= 1", got.Reconnects)
	}
	if cgb.Events != fgb.Events {
		t.Errorf("applied events diverged: control %d, interrupted %d", cgb.Events, fgb.Events)
	}
	want := control.Latched()
	got := faulty.Latched()
	if len(want) != len(got) {
		t.Fatalf("latched %d frames, want %d\n got: %+v\nwant: %+v", len(got), len(want), got, want)
	}
	for i := range want {
		if keyOf(want[i]) != keyOf(got[i]) {
			t.Errorf("frame %d diverged: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Package client is the Go client for hbserver's TCP frame protocol:
// it opens a detection session, streams init/event frames, surfaces
// pushed verdict frames, and runs snapshot queries. An Observer adapter
// lets a dist-instrumented program report its computation to a remote
// server as it executes.
//
// With Config.Reconnect the session is fault tolerant: frames carry
// sequence numbers, a bounded in-flight buffer holds everything the
// server has not yet acked, and a lost connection triggers automatic
// redial with exponential backoff and jitter followed by a resume
// handshake that replays exactly the unaccepted suffix. The server
// dedupes on seq and the client dedupes pushed frames on idx, so a
// resumed session's verdicts and determining prefixes are identical to
// an uninterrupted run.
package client

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/cluster"
	"repro/internal/pir"
	"repro/internal/server"
)

// Config describes the session to open.
type Config struct {
	// Processes is the process count of the monitored computation.
	Processes int
	// Watches are the predicate watches to register.
	Watches []server.Watch
	// DialTimeout bounds connect and handshake (default 5s).
	DialTimeout time.Duration

	// Key is a client-chosen session key for cluster placement: the hello
	// carries it, it becomes the session id, and the consistent-hash ring
	// decides which node hosts it. Requires Reconnect (keyed sessions are
	// replicated, which needs sequenced frames).
	Key string
	// Peers is the cluster membership, enabling ring-aware dialing: the
	// client computes the key's placement order, dials the owner first,
	// fails over to successors when a node is unreachable or does not
	// know the session, and follows not-owner redirects. Requires Key.
	Peers []string
	// RingSeed is the placement seed (default cluster.DefaultRingSeed);
	// it must match the server's -cluster-seed.
	RingSeed uint64

	// Reconnect opens the session as resumable and enables automatic
	// reconnection: event methods never fail on a dropped connection —
	// frames buffer (bounded by BufferLimit, applying backpressure when
	// full) and replay after the resume handshake.
	Reconnect bool
	// MaxAttempts bounds consecutive failed reconnect attempts per
	// outage before the session fails sticky (default 8).
	MaxAttempts int
	// BackoffBase is the first retry delay; attempt n waits
	// BackoffBase·2ⁿ with jitter, capped at BackoffMax (defaults 25ms
	// and 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed seeds the deterministic backoff jitter (default 1).
	JitterSeed int64
	// BufferLimit caps the in-flight (unacked) frame buffer; writes
	// block when it is full (default 1024). Must exceed the server's
	// ack interval or writers and acks deadlock.
	BufferLimit int
	// Dial overrides the dialer — the hook fault-injection tests use to
	// hand the session deliberately unreliable connections.
	Dial func(addr string) (net.Conn, error)

	// Bounded opens the session in bounded retained-state mode: the
	// server keeps only the watch slice cursors, never the raw prefix,
	// so long-lived sessions hold O(slice) server memory. Watch verdicts
	// are unchanged; Snapshot requests are rejected by the server.
	Bounded bool

	// Durability overrides the node's cluster durability mode for this
	// session: "durable" gates acks on every configured replica holding
	// the frame (riding out replica outages instead of shrinking the
	// gate), "available" acks once the live majority-of-the-moment has
	// it, "" accepts the node default. Only meaningful on keyed sessions
	// against a cluster.
	Durability string

	// Encoding selects the ingest wire encoding. "" or "ndjson" streams
	// one JSON frame per event. "binary" negotiates the binary batched
	// encoding at hello time: init/event frames accumulate into column
	// batches (flushed at BatchSize, before any snapshot or bye, or
	// explicitly via Flush) and travel as length-prefixed binary frames
	// — one syscall, one seq, and one ack per batch instead of per
	// event. Verdict delivery and semantics are identical; only the
	// frame boundaries and Event granularity of acks change.
	Encoding string
	// BatchSize caps events per binary batch (default 64). Larger
	// batches amortize more but delay verdicts for events held back;
	// Flush bounds the delay explicitly.
	BatchSize int
}

// Stats counts the reconnect machinery's work, for tests and the
// benchharness faults experiment.
type Stats struct {
	// Reconnects is how many resume handshakes completed.
	Reconnects int
	// Replayed is how many buffered frames were retransmitted.
	Replayed int
	// Outage is the total wall-clock time spent disconnected.
	Outage time.Duration
}

// errDisconnected reports a write attempted while the connection is
// down in reconnect mode; sequenced frames are buffered instead.
var errDisconnected = errors.New("client: disconnected (reconnecting)")

// ErrNotOwner reports a handshake rejected because the dialed node does
// not host the session's placement; Owner is the node to dial instead.
// Ring-aware sessions (Config.Peers) follow the redirect automatically;
// single-address sessions surface it — extract with errors.As — so
// callers can re-dial rather than misclassify an ownership move as a
// fatal protocol error.
type ErrNotOwner struct {
	Owner string
}

func (e *ErrNotOwner) Error() string {
	return fmt.Sprintf("client: node does not own the session (owner %s)", e.Owner)
}

// resumeError is a handshake rejected by the server, with its
// machine-readable code. Only server.CodeBusy is retried.
type resumeError struct {
	code  string
	msg   string
	owner string // redirect target on CodeNotOwner
}

func (e *resumeError) Error() string { return fmt.Sprintf("%s (%s)", e.msg, e.code) }

// Unwrap exposes an ownership rejection as the typed ErrNotOwner. A
// stale-epoch rejection is the same shape: the dialed node's copy of
// the session was fenced by a newer incarnation, and owner is where it
// lives now.
func (e *resumeError) Unwrap() error {
	if e.code == server.CodeNotOwner || e.code == server.CodeStaleEpoch {
		return &ErrNotOwner{Owner: e.owner}
	}
	return nil
}

// snapWaiter is one pending snapshot query: the response channel and
// the request frame, kept so a resume can re-issue it if the response
// was lost with the connection.
type snapWaiter struct {
	ch chan server.ServerFrame
	f  server.ClientFrame
}

// Session is an open client session. Event methods take 0-based process
// indices, matching the engine packages; the wire carries 1-based ids.
// Methods are safe for concurrent use; events are written in call order.
type Session struct {
	cfg Config
	id  string

	// candidates is the dial list in placement order (owner first); cand
	// indexes the current choice. Single-address sessions have exactly
	// one candidate. Guarded by wmu.
	candidates []string
	cand       int

	wmu     sync.Mutex // serializes writes, the msg-id counter, and connection state
	space   *sync.Cond // on wmu; signaled when the outbox shrinks or state changes
	conn    net.Conn   // current connection; nil while disconnected
	nextMsg int
	nextSeq int64
	acked   int64                // highest seq the server confirmed applied or accepted
	outbox  []server.ClientFrame // unacked sequenced frames, ascending seq
	err     error                // sticky; set by the first unrecoverable failure
	failed  chan struct{}        // closed alongside the sticky error, to unblock waiters
	failOne sync.Once
	rejoin  bool  // a reconnect loop is running (single flight)
	byeSent bool  // Close initiated; a resume re-sends the bye
	byeSeq  int64 // the bye's sequence number, for exactly-once re-send
	stats   Stats
	pol     *backoff.Policy // reconnect delays; only the single-flight reconnect loop uses it

	// Binary batching state (guarded by wmu). pending accumulates
	// init/event frames until a flush turns them into one batch frame;
	// enc interns variable names per connection (reset on every
	// (re)connect, mirroring the server's per-connection decode table);
	// pbuf/wbuf are reused encode buffers.
	pending *pir.Batch
	enc     pir.VarTable
	pbuf    []byte
	wbuf    []byte

	mu       sync.Mutex
	frames   []server.ServerFrame // latched verdict/error pushes, in order
	lastIdx  int                  // highest recorded-frame idx seen, for replay dedupe
	snaps    map[int]*snapWaiter
	nextSnap int
	goodbye  *server.ServerFrame

	verdicts chan server.ServerFrame
	done     chan struct{} // closed when the session is over (goodbye or fatal)
	doneOne  sync.Once
}

// Dial connects to an hbserver TCP listener, performs the hello/welcome
// handshake, and starts the frame reader.
func Dial(addr string, cfg Config) (*Session, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
		if len(cfg.Peers) > 1 {
			// Ring-aware outages need budget for a hysteretic sweep of the
			// whole membership before giving up.
			cfg.MaxAttempts = 8 * len(cfg.Peers)
		}
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 1
	}
	if cfg.BufferLimit <= 0 {
		cfg.BufferLimit = 1024
	}
	if err := server.ValidateEncoding(cfg.Encoding); err != nil {
		return nil, fmt.Errorf("client: %v", err)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	candidates, err := dialCandidates(addr, cfg)
	if err != nil {
		return nil, err
	}
	s := &Session{
		cfg:        cfg,
		candidates: candidates,
		snaps:      make(map[int]*snapWaiter),
		verdicts:   make(chan server.ServerFrame, 256),
		done:       make(chan struct{}),
		failed:     make(chan struct{}),
		pol:        backoff.New(cfg.BackoffBase, cfg.BackoffMax, cfg.JitterSeed),
	}
	s.space = sync.NewCond(&s.wmu)
	hello := server.ClientFrame{
		Type:       server.FrameHello,
		Processes:  cfg.Processes,
		Watches:    cfg.Watches,
		Resumable:  cfg.Reconnect,
		Bounded:    cfg.Bounded,
		Session:    cfg.Key,
		Encoding:   cfg.Encoding,
		Durability: cfg.Durability,
	}
	// Ring-aware open: try candidates in placement order, following
	// not-owner redirects, bounded at four sweeps so a misconfigured ring
	// cannot loop forever. Rotation is hysteretic — a node is given two
	// consecutive failures before the key moves to a successor — because
	// opening a keyed session anywhere but its owner costs an extra
	// replication hop for the whole session.
	var conn net.Conn
	var sc *server.FrameScanner
	var welcome server.ServerFrame
	first := hello
	streak := 0
	for tries := 0; ; tries++ {
		conn, sc, welcome, err = s.connect(s.curAddr(), first)
		if err == nil {
			break
		}
		var re *resumeError
		rejected := errors.As(err, &re)
		if tries+1 >= 4*len(candidates) {
			if rejected {
				return nil, fmt.Errorf("client: server rejected session: %w", re)
			}
			return nil, err
		}
		switch {
		case rejected && re.code == server.CodeBusy:
			// An orphan of an earlier attempt still looks attached; the
			// server notices the dead connection within its read deadline.
			streak = 0
		case rejected && re.code == server.CodeKeyInUse && cfg.Key != "" && cfg.Reconnect:
			// An earlier hello opened the session but the welcome was lost
			// in transit: adopt the orphan by resuming it instead.
			streak = 0
			first = server.ClientFrame{Type: server.FrameResume, Session: cfg.Key, Encoding: cfg.Encoding}
		case rejected && re.code == server.CodeUnknownSession && first.Type == server.FrameResume:
			// The orphan expired between attempts; open fresh.
			streak = 0
			first = hello
		case rejected && (re.code == server.CodeNotOwner || re.code == server.CodeStaleEpoch) && len(candidates) > 1:
			streak = 0
			s.followRedirect(re.owner)
		case rejected:
			return nil, fmt.Errorf("client: server rejected session: %w", re)
		case len(candidates) > 1:
			if streak++; streak >= 2 {
				streak = 0
				s.advanceAddr() // node looks down; a successor may accept the keyed hello
			}
		default:
			return nil, err
		}
		time.Sleep(s.backoff(tries))
	}
	s.conn = conn
	s.id = welcome.Session
	if welcome.Resumed {
		// Adopted an orphan: align the sequence space with whatever the
		// server already accepted under this key.
		s.nextSeq = welcome.Seq
		s.acked = welcome.Seq
	}
	go s.read(conn, sc)
	return s, nil
}

// dialCandidates resolves the dial list: the key's placement order over
// Peers when configured, else just addr.
func dialCandidates(addr string, cfg Config) ([]string, error) {
	if cfg.Key != "" {
		if !cfg.Reconnect {
			return nil, errors.New("client: a session key requires Reconnect (keyed sessions are replicated)")
		}
		if err := server.ValidateKey(cfg.Key); err != nil {
			return nil, fmt.Errorf("client: %v", err)
		}
	}
	if len(cfg.Peers) == 0 {
		if addr == "" {
			return nil, errors.New("client: no address to dial")
		}
		return []string{addr}, nil
	}
	if cfg.Key == "" {
		return nil, errors.New("client: Peers requires a session Key for placement")
	}
	seed := cfg.RingSeed
	if seed == 0 {
		seed = cluster.DefaultRingSeed
	}
	ring, err := cluster.NewRing(cfg.Peers, seed)
	if err != nil {
		return nil, fmt.Errorf("client: %v", err)
	}
	candidates := ring.Successors(cfg.Key, len(cfg.Peers))
	if addr != "" {
		// An explicit addr is tried first when it is a member — useful to
		// pin the first dial in tests; placement order follows.
		for i, c := range candidates {
			if c == addr {
				candidates[0], candidates[i] = candidates[i], candidates[0]
				break
			}
		}
	}
	return candidates, nil
}

// curAddr returns the current dial target.
func (s *Session) curAddr() string {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.candidates[s.cand]
}

// advanceAddr rotates to the next candidate node.
func (s *Session) advanceAddr() {
	s.wmu.Lock()
	s.cand = (s.cand + 1) % len(s.candidates)
	s.wmu.Unlock()
}

// followRedirect jumps to the redirect target when it is a known
// candidate, else just advances.
func (s *Session) followRedirect(owner string) {
	s.wmu.Lock()
	for i, c := range s.candidates {
		if c == owner {
			s.cand = i
			s.wmu.Unlock()
			return
		}
	}
	s.cand = (s.cand + 1) % len(s.candidates)
	s.wmu.Unlock()
}

// connect dials and performs one handshake (hello or resume), returning
// the connection, its scanner (which may have buffered frames past the
// welcome), and the welcome frame.
func (s *Session) connect(addr string, first server.ClientFrame) (net.Conn, *server.FrameScanner, server.ServerFrame, error) {
	var zero server.ServerFrame
	var conn net.Conn
	var err error
	if s.cfg.Dial != nil {
		conn, err = s.cfg.Dial(addr)
	} else {
		conn, err = net.DialTimeout("tcp", addr, s.cfg.DialTimeout)
	}
	if err != nil {
		return nil, nil, zero, fmt.Errorf("client: %w", err)
	}
	conn.SetDeadline(time.Now().Add(s.cfg.DialTimeout))
	if err := writeClientFrame(conn, first); err != nil {
		conn.Close()
		return nil, nil, zero, fmt.Errorf("client: handshake: %w", err)
	}
	sc := newScanner(conn)
	if !sc.Scan() {
		conn.Close()
		if err := sc.Err(); err != nil {
			return nil, nil, zero, fmt.Errorf("client: handshake: %w", err)
		}
		return nil, nil, zero, errors.New("client: server closed connection during handshake")
	}
	var welcome server.ServerFrame
	if err := decodeServerFrame(sc.Bytes(), &welcome); err != nil {
		conn.Close()
		return nil, nil, zero, fmt.Errorf("client: handshake: %w", err)
	}
	switch welcome.Type {
	case server.FrameWelcome:
	case server.FrameError:
		conn.Close()
		return nil, nil, zero, &resumeError{code: welcome.Code, msg: welcome.Error, owner: welcome.Owner}
	default:
		conn.Close()
		return nil, nil, zero, fmt.Errorf("client: expected welcome, got %q", welcome.Type)
	}
	conn.SetDeadline(time.Time{})
	return conn, sc, welcome, nil
}

// ID returns the server-assigned session id.
func (s *Session) ID() string { return s.id }

// Err returns the sticky session error, if any: the first unrecoverable
// write, read, or reconnect failure, after which all event methods are
// no-ops. Transient connection loss in reconnect mode is not an error.
func (s *Session) Err() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.err
}

// Stats returns the reconnect machinery's counters so far.
func (s *Session) Stats() Stats {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.stats
}

// Verdicts returns the channel of pushed verdict and error frames. The
// channel is buffered; if a consumer falls 256 frames behind, further
// pushes are shed (Latched still has everything). It is never closed;
// select against Done to end consumption.
func (s *Session) Verdicts() <-chan server.ServerFrame { return s.verdicts }

// Latched returns all verdict and error frames pushed so far, in order.
// Frames redelivered by a resume replay appear exactly once.
func (s *Session) Latched() []server.ServerFrame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]server.ServerFrame(nil), s.frames...)
}

// Done returns a channel closed when the session is over: goodbye
// received, or reconnection abandoned.
func (s *Session) Done() <-chan struct{} { return s.done }

// Goodbye returns the final accounting frame, once received.
func (s *Session) Goodbye() *server.ServerFrame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.goodbye
}

// SetInitial streams an initial variable value for a process; call
// before that process's events.
func (s *Session) SetInitial(proc int, name string, value int) {
	s.write(server.ClientFrame{Type: server.FrameInit, Proc: proc + 1, Var: name, Value: value})
}

// Internal streams an internal event, with optional variable updates.
func (s *Session) Internal(proc int, sets map[string]int) {
	s.write(server.ClientFrame{Type: server.FrameEvent, Proc: proc + 1, Kind: "internal", Sets: sets})
}

// Send streams a send event and returns the message id to pass to the
// matching Receive.
func (s *Session) Send(proc int, sets map[string]int) int {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.nextMsg++
	id := s.nextMsg
	s.writeLocked(server.ClientFrame{Type: server.FrameEvent, Proc: proc + 1, Kind: "send", Msg: id, Sets: sets})
	return id
}

// SendMsg streams a send event with a caller-chosen message id — for
// callers that already have globally unique ids (e.g. the dist observer).
func (s *Session) SendMsg(proc, msg int, sets map[string]int) {
	s.write(server.ClientFrame{Type: server.FrameEvent, Proc: proc + 1, Kind: "send", Msg: msg, Sets: sets})
}

// Receive streams the receive of a previously sent message.
func (s *Session) Receive(proc, msg int, sets map[string]int) {
	s.write(server.ClientFrame{Type: server.FrameEvent, Proc: proc + 1, Kind: "receive", Msg: msg, Sets: sets})
}

// Snapshot asks the server to freeze the session's observed prefix and
// run an offline detection query on it. It blocks until the response
// frame arrives; Holds on the returned frame is the verdict. In
// reconnect mode the request survives connection loss: a resume
// re-issues any snapshot still awaiting its response.
func (s *Session) Snapshot(formula string) (server.ServerFrame, error) {
	s.mu.Lock()
	s.nextSnap++
	id := s.nextSnap
	f := server.ClientFrame{Type: server.FrameSnapshot, ID: id, Formula: formula}
	resp := make(chan server.ServerFrame, 1)
	s.snaps[id] = &snapWaiter{ch: resp, f: f}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.snaps, id)
		s.mu.Unlock()
	}()
	if err := s.write(f); err != nil {
		if !(s.cfg.Reconnect && errors.Is(err, errDisconnected)) {
			return server.ServerFrame{}, err
		}
		// Disconnected mid-outage: the pending request is registered and
		// will be re-issued by the resume handshake.
	}
	select {
	case fr := <-resp:
		if fr.Type == server.FrameError {
			return fr, fmt.Errorf("client: snapshot: %s", fr.Error)
		}
		return fr, nil
	case <-s.done:
		return server.ServerFrame{}, errors.New("client: session ended before snapshot response")
	case <-s.failed:
		return server.ServerFrame{}, s.Err()
	}
}

// Close sends the bye frame, waits for the server's goodbye (or the
// connection to end), closes the connection, and returns the final
// accounting frame when one was received. In reconnect mode a bye lost
// with the connection is re-sent by the resume handshake.
func (s *Session) Close() (*server.ServerFrame, error) {
	// One critical section: byeSent and the bye's seq must be set
	// atomically with the write, or a concurrent resume could replay an
	// unsequenced bye that bypasses the server's gap check.
	s.wmu.Lock()
	s.byeSent = true
	err := s.writeLocked(server.ClientFrame{Type: server.FrameBye})
	s.wmu.Unlock()
	if s.cfg.Reconnect && errors.Is(err, errDisconnected) {
		err = nil
	}
	select {
	case <-s.done:
	case <-time.After(10 * time.Second):
		err = errors.New("client: timed out waiting for goodbye")
	}
	s.wmu.Lock()
	if s.conn != nil {
		s.conn.Close()
	}
	s.wmu.Unlock()
	if gb := s.Goodbye(); gb != nil {
		return gb, nil
	}
	// No goodbye: the session is over regardless; make that state
	// sticky so reconnect machinery and waiters wind down.
	if err == nil {
		err = s.Err()
	}
	if err == nil {
		err = errors.New("client: connection ended without goodbye")
	}
	s.fail(err)
	s.finish()
	return nil, err
}

func (s *Session) write(f server.ClientFrame) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.writeLocked(f)
}

// writeLocked routes one frame under wmu. On NDJSON sessions it is a
// straight send. With the binary encoding, init/event frames first
// accumulate into the pending batch — the batch is sent (as one
// sequenced frame) when it reaches BatchSize — and every other frame
// type flushes the batch first, so snapshots, byes, and explicit
// Flush calls always observe everything written before them in order.
func (s *Session) writeLocked(f server.ClientFrame) error {
	if s.err != nil {
		return s.err
	}
	if s.batching() && (f.Type == server.FrameInit || f.Type == server.FrameEvent) {
		s.bufferEventLocked(f)
		if s.pending.Len() >= s.cfg.BatchSize {
			return s.flushLocked()
		}
		return nil
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	return s.sendLocked(f)
}

// batching reports whether this session batches ingest frames.
func (s *Session) batching() bool { return s.cfg.Encoding == server.EncodingBinary }

// bufferEventLocked appends one init/event frame to the pending batch.
// Sets maps are copied now, so callers may reuse them.
func (s *Session) bufferEventLocked(f server.ClientFrame) {
	if s.pending == nil {
		s.pending = pir.GetBatch()
	}
	if f.Type == server.FrameInit {
		s.pending.AddInit(f.Proc, f.Var, f.Value)
		return
	}
	kind := pir.EvInternal
	switch f.Kind {
	case "send":
		kind = pir.EvSend
	case "receive":
		kind = pir.EvReceive
	}
	s.pending.AddEvent(f.Proc, kind, f.Msg, f.Sets)
}

// flushLocked sends the pending batch, if any, as one batch frame.
func (s *Session) flushLocked() error {
	if s.pending == nil || s.pending.Len() == 0 {
		return nil
	}
	b := s.pending
	s.pending = nil
	return s.sendLocked(server.ClientFrame{Type: server.FrameBatch, Batch: b})
}

// Flush sends any events held back by binary batching immediately; a
// no-op on NDJSON sessions and on an empty batch. Use it to bound
// verdict latency when a stream pauses between batch boundaries.
func (s *Session) Flush() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.flushLocked()
}

// sendLocked sends one frame under wmu. In reconnect mode, sequenced
// frames (init/event/batch/bye) take the next sequence number and
// enter the bounded in-flight buffer first — when the buffer is full
// the caller blocks until acks make room (backpressure) — and a write
// failure is not an error: the frame is safe in the buffer, the
// connection is torn down, and the reconnect loop takes over.
func (s *Session) sendLocked(f server.ClientFrame) error {
	sequenced := false
	if s.cfg.Reconnect && (f.Type == server.FrameInit || f.Type == server.FrameEvent || f.Type == server.FrameBatch || f.Type == server.FrameBye) {
		for len(s.outbox) >= s.cfg.BufferLimit && s.err == nil && !s.isDone() {
			s.space.Wait()
		}
		if s.err != nil {
			return s.err
		}
		if f.Type != server.FrameBye && s.isDone() {
			return errors.New("client: session ended")
		}
		s.nextSeq++
		f.Seq = s.nextSeq
		// The bye is sequenced — so a gap before it (a lost final event)
		// is detected instead of silently closing the session short —
		// but re-sent via byeSeq rather than the outbox, keeping the
		// replay order events → pending snapshots → bye.
		if f.Type == server.FrameBye {
			s.byeSeq = f.Seq
		} else {
			s.outbox = append(s.outbox, f)
		}
		sequenced = true
	}
	if s.conn == nil {
		if !s.cfg.Reconnect {
			return errors.New("client: connection closed")
		}
		if sequenced {
			return nil // buffered; the resume replay delivers it
		}
		return errDisconnected
	}
	if err := s.writeWire(s.conn, f); err != nil {
		if s.cfg.Reconnect {
			s.dropConnLocked()
			if sequenced {
				return nil
			}
			return errDisconnected
		}
		s.failLocked(fmt.Errorf("client: write: %w", err))
		return s.err
	}
	if f.Type == server.FrameBatch && !s.cfg.Reconnect {
		// Without a reconnect outbox the batch is dead once written;
		// return it to the pool for the next flush. (Reconnect-mode
		// batches live in the outbox until acked and are simply left to
		// the GC.)
		f.Batch.Recycle()
	}
	return nil
}

// writeWire writes one frame on conn under wmu: batch frames as binary
// (one length-prefixed frame, reused buffers, names interned through
// the per-connection table), everything else as an NDJSON line.
func (s *Session) writeWire(conn net.Conn, f server.ClientFrame) error {
	if f.Type == server.FrameBatch {
		s.pbuf = pir.AppendBatch(s.pbuf[:0], f.Seq, f.Batch, &s.enc)
		s.wbuf = server.AppendBinaryFrame(s.wbuf[:0], server.BinBatch, s.pbuf)
		_, err := conn.Write(s.wbuf)
		return err
	}
	return writeClientFrame(conn, f)
}

// read is the frame reader for one connection: it routes acks to the
// in-flight buffer, snapshot responses to their waiters, stores the
// goodbye frame, and pushes everything else — deduped on idx across
// resume replays — to the verdict stream.
func (s *Session) read(conn net.Conn, sc *server.FrameScanner) {
	for sc.Scan() {
		var fr server.ServerFrame
		if err := decodeServerFrame(sc.Bytes(), &fr); err != nil {
			s.readerGone(conn, fmt.Errorf("client: read: %w", err))
			return
		}
		switch {
		case fr.Type == server.FrameGoodbye:
			s.mu.Lock()
			s.goodbye = &fr
			s.mu.Unlock()
			s.finish()
			return
		case fr.Type == server.FrameAck && fr.ID == 0 && fr.Seq > 0:
			s.handleAck(fr.Seq)
		case fr.Type == server.FrameError && fr.ID == 0 && fr.Code != "":
			// Transport-level signal (seq gap, bad seq): the server is
			// about to drop the connection and the reconnect machinery
			// recovers. Not a detection verdict; keep it out of Latched
			// so resumed runs stay bit-identical to uninterrupted ones.
		case (fr.Type == server.FrameSnapshot || fr.Type == server.FrameError) && fr.ID > 0:
			s.mu.Lock()
			w := s.snaps[fr.ID]
			s.mu.Unlock()
			if w != nil {
				// Non-blocking: a re-issued snapshot can answer twice,
				// and the second response must not wedge the reader.
				select {
				case w.ch <- fr:
				default:
				}
				continue
			}
			s.record(fr)
		default:
			s.record(fr)
		}
	}
	var err error
	if scErr := sc.Err(); scErr != nil {
		err = fmt.Errorf("client: read: %w", scErr)
	}
	s.readerGone(conn, err)
}

// record stores a pushed frame and forwards it to the verdict stream,
// dropping resume-replay duplicates by their recorded-frame idx.
func (s *Session) record(fr server.ServerFrame) {
	s.mu.Lock()
	if fr.Idx > 0 {
		if fr.Idx <= s.lastIdx {
			s.mu.Unlock()
			return
		}
		s.lastIdx = fr.Idx
	}
	s.frames = append(s.frames, fr)
	s.mu.Unlock()
	select {
	case s.verdicts <- fr:
	default: // consumer behind; Latched keeps the full record
	}
}

// readerGone handles the end of a connection's read loop (err is nil on
// clean EOF). In reconnect mode any end — EOF or error — is an outage:
// start the reconnect loop if this reader's connection is still current.
// Plain sessions die with their connection, exactly as before resume
// existed: surface read errors sticky and end the session, unblocking
// snapshot waiters and Close.
func (s *Session) readerGone(conn net.Conn, err error) {
	if s.cfg.Reconnect {
		if s.isDone() {
			return
		}
		s.wmu.Lock()
		if s.conn == conn {
			s.dropConnLocked()
		}
		s.wmu.Unlock()
		return
	}
	if err != nil {
		s.fail(err)
	}
	s.finish()
}

// Acked returns the highest sequence number the server has confirmed —
// in a durable-mode cluster session, the prefix guaranteed to survive
// any single node failure. Chaos tests pin the loss window against it.
func (s *Session) Acked() int64 {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.acked
}

// handleAck releases every in-flight frame the server confirmed.
func (s *Session) handleAck(seq int64) {
	s.wmu.Lock()
	if seq > s.acked {
		s.acked = seq
		s.pruneOutboxLocked(seq)
		s.space.Broadcast()
	}
	s.wmu.Unlock()
}

func (s *Session) pruneOutboxLocked(seq int64) {
	i := 0
	for i < len(s.outbox) && s.outbox[i].Seq <= seq {
		i++
	}
	if i > 0 {
		s.outbox = append([]server.ClientFrame(nil), s.outbox[i:]...)
	}
}

// dropConnLocked tears down the current connection and starts the
// single-flight reconnect loop. Callers hold wmu.
func (s *Session) dropConnLocked() {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	if s.rejoin || s.err != nil || s.isDone() {
		return
	}
	s.rejoin = true
	go s.reconnectLoop()
}

// reconnectLoop redials with exponential backoff + jitter and performs
// the resume handshake until it succeeds, the session ends, or
// MaxAttempts consecutive attempts fail. Exactly one loop runs at a
// time (the rejoin flag), so rng and the handshake are race-free.
//
// With multiple candidates (ring-aware sessions) the loop also rotates
// nodes: repeated dial failures or an unknown-session rejection move on
// to the next successor — after a node death the session's replica
// legitimately answers where the home node cannot — and a not-owner
// redirect jumps straight to the indicated owner. Rotation on plain
// dial/I/O failure is hysteretic (three consecutive failures) so one
// faulted handshake does not move the session off a live owner and
// trigger an unnecessary replica promotion. Unknown-session (or
// stale-replica bad-seq) rejections fail sticky only after a full sweep
// of candidates agrees the session is gone.
func (s *Session) reconnectLoop() {
	outage := time.Now()
	unknown := 0 // consecutive unknown/bad-seq rejections across candidates
	streak := 0  // consecutive dial/I/O failures on the current candidate
	for attempt := 0; ; attempt++ {
		if s.isDone() || s.Err() != nil {
			s.endRejoin()
			return
		}
		if attempt >= s.cfg.MaxAttempts {
			s.fail(fmt.Errorf("client: giving up after %d reconnect attempts", attempt))
			s.finish()
			s.endRejoin()
			return
		}
		time.Sleep(s.backoff(attempt))
		s.wmu.Lock()
		acked := s.acked
		byeSent := s.byeSent
		addr := s.candidates[s.cand]
		ringAware := len(s.candidates) > 1
		s.wmu.Unlock()
		conn, sc, welcome, err := s.connect(addr, server.ClientFrame{Type: server.FrameResume, Session: s.id, Seq: acked, Encoding: s.cfg.Encoding})
		if err != nil {
			var re *resumeError
			if !errors.As(err, &re) {
				if ringAware {
					if streak++; streak >= 3 {
						streak = 0
						s.advanceAddr() // the node looks dead; try a successor
					}
				}
				continue // dial or I/O failure: retry
			}
			streak = 0
			switch {
			case re.code == server.CodeBusy:
				// The server has not yet noticed the dead connection
				// (its reader is waiting out the read deadline); retry.
				continue
			case (re.code == server.CodeNotOwner || re.code == server.CodeStaleEpoch) && ringAware:
				// Not-owner: wrong node. Stale-epoch: this node's copy of
				// the session was fenced by a newer incarnation (failover,
				// drain handoff, key reuse) — either way the redirect names
				// where the live incarnation is.
				unknown = 0
				s.followRedirect(re.owner)
				continue
			case re.code == server.CodeUnknownSession && byeSent:
				// The bye was delivered but the goodbye was lost with
				// the connection: the session is over, not broken.
				s.finish()
				s.endRejoin()
				return
			case (re.code == server.CodeUnknownSession || re.code == server.CodeBadSeq) && ringAware:
				// This node does not have the session (or holds a stale
				// replica); a successor may. Only a full sweep of
				// unknowns means the session is really gone.
				if unknown++; unknown >= len(s.candidates) {
					s.fail(fmt.Errorf("client: resume rejected by every cluster node: %w", re))
					s.finish()
					s.endRejoin()
					return
				}
				s.advanceAddr()
				continue
			default:
				s.fail(fmt.Errorf("client: resume rejected: %w", re))
				s.finish()
				s.endRejoin()
				return
			}
		}
		unknown, streak = 0, 0
		if s.adopt(conn, sc, welcome.Seq, outage) {
			return
		}
		// Replay failed mid-write; the handshake did reach the server,
		// so this is a fresh outage.
		attempt = -1
	}
}

func (s *Session) endRejoin() {
	s.wmu.Lock()
	s.rejoin = false
	s.wmu.Unlock()
}

// adopt installs a freshly resumed connection: prunes the in-flight
// buffer below the server's accept high-water mark, replays the rest in
// order, re-issues pending snapshot queries (their responses may have
// died with the old connection) and the bye if Close already ran, then
// restarts the reader. Returns false if the connection died during the
// replay.
func (s *Session) adopt(conn net.Conn, sc *server.FrameScanner, serverSeq int64, outage time.Time) bool {
	s.mu.Lock()
	pending := make([]server.ClientFrame, 0, len(s.snaps))
	for _, w := range s.snaps {
		pending = append(pending, w.f)
	}
	s.mu.Unlock()
	sort.Slice(pending, func(i, j int) bool { return pending[i].ID < pending[j].ID })

	s.wmu.Lock()
	defer s.wmu.Unlock()
	// The server's variable-interning table is per connection; start this
	// connection's encoder table fresh so replayed batches re-emit their
	// name declarations.
	s.enc.Reset()
	if serverSeq > s.acked {
		// The server accepted more than it had acked before the outage.
		s.acked = serverSeq
		s.pruneOutboxLocked(serverSeq)
	}
	replay := s.outbox
	for _, f := range replay {
		if s.writeWire(conn, f) != nil {
			conn.Close()
			return false
		}
	}
	for _, f := range pending {
		if writeClientFrame(conn, f) != nil {
			conn.Close()
			return false
		}
	}
	if s.byeSent {
		if writeClientFrame(conn, server.ClientFrame{Type: server.FrameBye, Seq: s.byeSeq}) != nil {
			conn.Close()
			return false
		}
	}
	s.conn = conn
	s.rejoin = false
	s.stats.Reconnects++
	s.stats.Replayed += len(replay)
	s.stats.Outage += time.Since(outage)
	s.space.Broadcast()
	go s.read(conn, sc)
	return true
}

// backoff returns the delay before reconnect attempt n: the exponential
// floor plus deterministic jitter over its upper half.
func (s *Session) backoff(attempt int) time.Duration {
	return s.pol.Delay(attempt)
}

func (s *Session) fail(err error) {
	s.wmu.Lock()
	s.failLocked(err)
	s.wmu.Unlock()
}

// failLocked records the sticky error and unblocks everyone waiting on
// the session: buffered writers (space) and snapshot waiters (failed),
// which previously could hang until the reader happened to exit.
func (s *Session) failLocked(err error) {
	if s.err == nil {
		s.err = err
	}
	s.failOne.Do(func() { close(s.failed) })
	s.space.Broadcast()
}

// finish marks the session over. Idempotent.
func (s *Session) finish() {
	s.doneOne.Do(func() { close(s.done) })
	s.space.Broadcast()
}

func (s *Session) isDone() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

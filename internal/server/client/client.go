// Package client is the Go client for hbserver's TCP frame protocol:
// it opens a detection session, streams init/event frames, surfaces
// pushed verdict frames, and runs snapshot queries. An Observer adapter
// lets a dist-instrumented program report its computation to a remote
// server as it executes.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/server"
)

// Config describes the session to open.
type Config struct {
	// Processes is the process count of the monitored computation.
	Processes int
	// Watches are the predicate watches to register.
	Watches []server.Watch
	// DialTimeout bounds connect and handshake (default 5s).
	DialTimeout time.Duration
}

// Session is an open client session. Event methods take 0-based process
// indices, matching the engine packages; the wire carries 1-based ids.
// Methods are safe for concurrent use; events are written in call order.
type Session struct {
	conn net.Conn
	id   string

	wmu     sync.Mutex // serializes writes and the msg-id counter
	nextMsg int
	err     error // sticky; set by the first failed write or read

	mu       sync.Mutex
	frames   []server.ServerFrame // latched verdict/error pushes, in order
	snaps    map[int]chan server.ServerFrame
	nextSnap int
	goodbye  *server.ServerFrame

	verdicts chan server.ServerFrame
	done     chan struct{} // closed when the reader exits
}

// Dial connects to an hbserver TCP listener, performs the hello/welcome
// handshake, and starts the frame reader.
func Dial(addr string, cfg Config) (*Session, error) {
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	hello := server.ClientFrame{Type: server.FrameHello, Processes: cfg.Processes, Watches: cfg.Watches}
	conn.SetDeadline(time.Now().Add(timeout))
	if err := writeClientFrame(conn, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: hello: %w", err)
	}
	sc := newScanner(conn)
	if !sc.Scan() {
		conn.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("client: handshake: %w", err)
		}
		return nil, errors.New("client: server closed connection during handshake")
	}
	var welcome server.ServerFrame
	if err := decodeServerFrame(sc.Bytes(), &welcome); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	switch welcome.Type {
	case server.FrameWelcome:
	case server.FrameError:
		conn.Close()
		return nil, fmt.Errorf("client: server rejected session: %s", welcome.Error)
	default:
		conn.Close()
		return nil, fmt.Errorf("client: expected welcome, got %q", welcome.Type)
	}
	conn.SetDeadline(time.Time{})
	s := &Session{
		conn:     conn,
		id:       welcome.Session,
		snaps:    make(map[int]chan server.ServerFrame),
		verdicts: make(chan server.ServerFrame, 256),
		done:     make(chan struct{}),
	}
	go s.read(sc)
	return s, nil
}

// ID returns the server-assigned session id.
func (s *Session) ID() string { return s.id }

// Err returns the sticky session error, if any: the first write or read
// failure, after which all event methods are no-ops.
func (s *Session) Err() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.err
}

// Verdicts returns the channel of pushed verdict and error frames. The
// channel is buffered; if a consumer falls 256 frames behind, further
// pushes are shed (Latched still has everything). It is never closed;
// select against Done to end consumption.
func (s *Session) Verdicts() <-chan server.ServerFrame { return s.verdicts }

// Latched returns all verdict and error frames pushed so far, in order.
func (s *Session) Latched() []server.ServerFrame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]server.ServerFrame(nil), s.frames...)
}

// Done returns a channel closed when the server side of the session has
// finished (goodbye received or connection lost).
func (s *Session) Done() <-chan struct{} { return s.done }

// Goodbye returns the final accounting frame, once received.
func (s *Session) Goodbye() *server.ServerFrame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.goodbye
}

// SetInitial streams an initial variable value for a process; call
// before that process's events.
func (s *Session) SetInitial(proc int, name string, value int) {
	s.write(server.ClientFrame{Type: server.FrameInit, Proc: proc + 1, Var: name, Value: value})
}

// Internal streams an internal event, with optional variable updates.
func (s *Session) Internal(proc int, sets map[string]int) {
	s.write(server.ClientFrame{Type: server.FrameEvent, Proc: proc + 1, Kind: "internal", Sets: sets})
}

// Send streams a send event and returns the message id to pass to the
// matching Receive.
func (s *Session) Send(proc int, sets map[string]int) int {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.nextMsg++
	id := s.nextMsg
	s.writeLocked(server.ClientFrame{Type: server.FrameEvent, Proc: proc + 1, Kind: "send", Msg: id, Sets: sets})
	return id
}

// SendMsg streams a send event with a caller-chosen message id — for
// callers that already have globally unique ids (e.g. the dist observer).
func (s *Session) SendMsg(proc, msg int, sets map[string]int) {
	s.write(server.ClientFrame{Type: server.FrameEvent, Proc: proc + 1, Kind: "send", Msg: msg, Sets: sets})
}

// Receive streams the receive of a previously sent message.
func (s *Session) Receive(proc, msg int, sets map[string]int) {
	s.write(server.ClientFrame{Type: server.FrameEvent, Proc: proc + 1, Kind: "receive", Msg: msg, Sets: sets})
}

// Snapshot asks the server to freeze the session's observed prefix and
// run an offline detection query on it. It blocks until the response
// frame arrives; Holds on the returned frame is the verdict.
func (s *Session) Snapshot(formula string) (server.ServerFrame, error) {
	s.mu.Lock()
	s.nextSnap++
	id := s.nextSnap
	resp := make(chan server.ServerFrame, 1)
	s.snaps[id] = resp
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.snaps, id)
		s.mu.Unlock()
	}()
	if err := s.write(server.ClientFrame{Type: server.FrameSnapshot, ID: id, Formula: formula}); err != nil {
		return server.ServerFrame{}, err
	}
	select {
	case fr := <-resp:
		if fr.Type == server.FrameError {
			return fr, fmt.Errorf("client: snapshot: %s", fr.Error)
		}
		return fr, nil
	case <-s.done:
		return server.ServerFrame{}, errors.New("client: session ended before snapshot response")
	}
}

// Close sends the bye frame, waits for the server's goodbye (or the
// connection to end), closes the connection, and returns the final
// accounting frame when one was received.
func (s *Session) Close() (*server.ServerFrame, error) {
	err := s.write(server.ClientFrame{Type: server.FrameBye})
	select {
	case <-s.done:
	case <-time.After(10 * time.Second):
		err = errors.New("client: timed out waiting for goodbye")
	}
	s.conn.Close()
	if gb := s.Goodbye(); gb != nil {
		return gb, nil
	}
	if err == nil {
		err = s.Err()
	}
	if err == nil {
		err = errors.New("client: connection ended without goodbye")
	}
	return nil, err
}

func (s *Session) write(f server.ClientFrame) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.writeLocked(f)
}

func (s *Session) writeLocked(f server.ClientFrame) error {
	if s.err != nil {
		return s.err
	}
	if err := writeClientFrame(s.conn, f); err != nil {
		s.err = fmt.Errorf("client: write: %w", err)
		return s.err
	}
	return nil
}

// read is the frame reader: it routes snapshot responses to their
// waiters, stores the goodbye frame, and pushes everything else to the
// verdict stream.
func (s *Session) read(sc scanner) {
	defer close(s.done)
	for sc.Scan() {
		var fr server.ServerFrame
		if err := decodeServerFrame(sc.Bytes(), &fr); err != nil {
			s.fail(err)
			return
		}
		switch {
		case fr.Type == server.FrameGoodbye:
			s.mu.Lock()
			s.goodbye = &fr
			s.mu.Unlock()
			return
		case (fr.Type == server.FrameSnapshot || fr.Type == server.FrameError) && fr.ID > 0:
			s.mu.Lock()
			resp := s.snaps[fr.ID]
			s.mu.Unlock()
			if resp != nil {
				resp <- fr
				continue
			}
			fallthrough
		default:
			s.mu.Lock()
			s.frames = append(s.frames, fr)
			s.mu.Unlock()
			select {
			case s.verdicts <- fr:
			default: // consumer behind; Latched keeps the full record
			}
		}
	}
	if err := sc.Err(); err != nil {
		s.fail(fmt.Errorf("client: read: %w", err))
	}
}

func (s *Session) fail(err error) {
	s.wmu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.wmu.Unlock()
}

package client

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/server"
)

// scanner is the line-reader interface read consumes; *bufio.Scanner
// satisfies it.
type scanner interface {
	Scan() bool
	Bytes() []byte
	Err() error
}

func newScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), server.MaxFrameBytes)
	return sc
}

func writeClientFrame(w io.Writer, f server.ClientFrame) error {
	b, err := json.Marshal(f)
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

func decodeServerFrame(line []byte, fr *server.ServerFrame) error {
	if err := json.Unmarshal(line, fr); err != nil {
		return fmt.Errorf("bad server frame: %v", err)
	}
	return nil
}

package client

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/server"
)

// newScanner returns the shared bounded frame scanner — the same
// constructor the server, the cluster links, and the fuzz harness use,
// so every path enforces the same MaxFrameBytes bound. Server → client
// traffic is NDJSON-only, but the shared scanner keeps the bound (and
// its typed too-long error) in one place.
func newScanner(r io.Reader) *server.FrameScanner {
	return server.NewFrameScanner(r)
}

func writeClientFrame(w io.Writer, f server.ClientFrame) error {
	b, err := json.Marshal(f)
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

func decodeServerFrame(line []byte, fr *server.ServerFrame) error {
	if err := json.Unmarshal(line, fr); err != nil {
		return fmt.Errorf("bad server frame: %v", err)
	}
	return nil
}

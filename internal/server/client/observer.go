package client

import (
	"repro/internal/computation"
)

// observer adapts a Session to dist.Observer, so a program run under
// dist.RunObserved streams its computation to a remote hbserver as it
// executes. The dist recorder already serializes callbacks in a valid
// linearization of the happened-before order, and dist message ids are
// globally unique, so events can be forwarded verbatim.
//
// Do not mix an Observer with direct Send calls on the same session:
// both allocate message ids and would collide. Write errors go sticky on
// the session (Err); the program keeps running on the local recording.
type observer struct {
	s *Session
}

// Observer returns a dist.Observer that forwards the run to s.
func (s *Session) Observer() observer { return observer{s} }

func (o observer) Init(proc int, name string, value int) {
	o.s.SetInitial(proc, name, value)
}

func (o observer) Event(proc int, kind computation.Kind, msg int, sets map[string]int) {
	switch kind {
	case computation.Send:
		o.s.SendMsg(proc, msg, sets)
	case computation.Receive:
		o.s.Receive(proc, msg, sets)
	default:
		o.s.Internal(proc, sets)
	}
}

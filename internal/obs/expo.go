package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements exposition: the Prometheus text format (for
// /metrics) and a JSON snapshot (for /debug/vars and machine-readable
// harness output).

// splitName separates a metric name from an inline constant label set:
// `hb_verdicts_total{kind="ef"}` → (`hb_verdicts_total`, `kind="ef"`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// promLine formats one sample, merging extra labels (e.g. le) with the
// metric's inline labels.
func promLine(w io.Writer, base, labels, extra string, value string) {
	switch {
	case labels == "" && extra == "":
		fmt.Fprintf(w, "%s %s\n", base, value)
	case labels == "":
		fmt.Fprintf(w, "%s{%s} %s\n", base, extra, value)
	case extra == "":
		fmt.Fprintf(w, "%s{%s} %s\n", base, labels, value)
	default:
		fmt.Fprintf(w, "%s{%s,%s} %s\n", base, labels, extra, value)
	}
}

// formatFloat renders a float the way Prometheus clients do.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format, sorted by name, with HELP/TYPE headers emitted once
// per base name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	headered := make(map[string]bool)
	header := func(base, help, typ string) {
		if headered[base] {
			return
		}
		headered[base] = true
		if help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", base, help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
	}
	for _, name := range r.sortedNames() {
		switch m := r.lookup(name).(type) {
		case *Counter:
			base, labels := splitName(m.name)
			header(base, m.help, "counter")
			promLine(w, base, labels, "", strconv.FormatInt(m.Value(), 10))
		case *Gauge:
			base, labels := splitName(m.name)
			header(base, m.help, "gauge")
			promLine(w, base, labels, "", strconv.FormatInt(m.Value(), 10))
		case *Histogram:
			base, labels := splitName(m.name)
			header(base, m.help, "histogram")
			cum, count, sum := m.snapshot()
			for i, bound := range m.bounds {
				promLine(w, base+"_bucket", labels, `le="`+formatFloat(bound)+`"`, strconv.FormatInt(cum[i], 10))
			}
			promLine(w, base+"_bucket", labels, `le="+Inf"`, strconv.FormatInt(cum[len(cum)-1], 10))
			promLine(w, base+"_sum", labels, "", formatFloat(sum))
			promLine(w, base+"_count", labels, "", strconv.FormatInt(count, 10))
		}
	}
	return nil
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets map[string]int64 `json:"buckets"` // upper bound → cumulative count
}

// Snapshot returns every metric's current value keyed by full metric name:
// int64 for counters and gauges, HistogramSnapshot for histograms.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, name := range r.sortedNames() {
		switch m := r.lookup(name).(type) {
		case *Counter:
			out[name] = m.Value()
		case *Gauge:
			out[name] = m.Value()
		case *Histogram:
			cum, count, sum := m.snapshot()
			buckets := make(map[string]int64, len(cum))
			for i, bound := range m.bounds {
				buckets[formatFloat(bound)] = cum[i]
			}
			buckets["+Inf"] = cum[len(cum)-1]
			out[name] = HistogramSnapshot{Count: count, Sum: sum, Buckets: buckets}
		}
	}
	return out
}

// WriteJSON writes the Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

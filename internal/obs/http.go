package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
)

// This file wires a registry into the operational HTTP surface used by the
// long-running binaries (hbserver -http, hbmon -listen): Prometheus
// metrics, expvar, health, the /debug/obs introspection endpoint, and —
// behind an explicit flag — the stdlib profiler.

// MetricsHandler serves the registry in Prometheus text format.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // exposition is best-effort
	})
}

var publishOnce sync.Once

// PublishExpvar exposes the registry's Snapshot under the expvar key
// "hb_metrics" so it appears on /debug/vars alongside the stdlib memstats
// and cmdline vars. Safe to call more than once; only the first call (per
// process) publishes, so the default registry should be passed.
func PublishExpvar(r *Registry) {
	publishOnce.Do(func() {
		expvar.Publish("hb_metrics", expvar.Func(func() any { return r.Snapshot() }))
	})
}

// NewMux returns an http.ServeMux with the base telemetry surface:
//
//	/metrics      Prometheus text exposition of r
//	/debug/vars   expvar JSON (includes r via PublishExpvar)
//	/healthz      liveness probe ("ok")
//
// The profiler is NOT mounted here: every binary gates it behind the same
// -pprof flag via RegisterPprof, and Debug.Register mounts /debug/obs.
func NewMux(r *Registry) *http.ServeMux {
	PublishExpvar(r)
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// RegisterPprof mounts the stdlib profiler under /debug/pprof — the one
// wiring point every binary's -pprof flag routes through.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Debug bundles the introspection state served at /debug/obs: the
// recent-spans ring, the slow-detection log, and a registry snapshot.
// Nil fields are simply omitted from the response. Sections lets a
// subsystem (the cluster node, say) contribute a named snapshot
// function; each is called per request and its result embedded under
// sections.<name>.
type Debug struct {
	Registry *Registry
	Spans    *SpanRing
	Slow     *SlowLog
	Sections map[string]func() any
}

// debugSnapshot is the /debug/obs response document.
type debugSnapshot struct {
	Spans      []SpanRecord      `json:"spans,omitempty"`
	SpansTotal int64             `json:"spans_total"`
	Slow       []json.RawMessage `json:"slow,omitempty"`
	SlowTotal  int64             `json:"slow_total"`
	Metrics    map[string]any    `json:"metrics,omitempty"`
	Sections   map[string]any    `json:"sections,omitempty"`
}

// Handler serves the debug snapshot as indented JSON.
func (d *Debug) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var snap debugSnapshot
		snap.Spans, snap.SpansTotal = d.Spans.Snapshot()
		snap.Slow, snap.SlowTotal = d.Slow.Snapshot()
		if d.Registry != nil {
			snap.Metrics = d.Registry.Snapshot()
		}
		if len(d.Sections) > 0 {
			snap.Sections = make(map[string]any, len(d.Sections))
			for name, fn := range d.Sections {
				snap.Sections[name] = fn()
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap) //nolint:errcheck // exposition is best-effort
	})
}

// Register mounts the debug endpoint at /debug/obs.
func (d *Debug) Register(mux *http.ServeMux) {
	mux.Handle("/debug/obs", d.Handler())
}

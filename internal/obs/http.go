package obs

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
)

// This file wires a registry into the operational HTTP surface used by the
// long-running binaries (hbmon -listen): Prometheus metrics, expvar,
// health, and the stdlib profiler.

// MetricsHandler serves the registry in Prometheus text format.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // exposition is best-effort
	})
}

var publishOnce sync.Once

// PublishExpvar exposes the registry's Snapshot under the expvar key
// "hb_metrics" so it appears on /debug/vars alongside the stdlib memstats
// and cmdline vars. Safe to call more than once; only the first call (per
// process) publishes, so the default registry should be passed.
func PublishExpvar(r *Registry) {
	publishOnce.Do(func() {
		expvar.Publish("hb_metrics", expvar.Func(func() any { return r.Snapshot() }))
	})
}

// NewMux returns an http.ServeMux with the full telemetry surface:
//
//	/metrics      Prometheus text exposition of r
//	/debug/vars   expvar JSON (includes r via PublishExpvar)
//	/healthz      liveness probe ("ok")
//	/debug/pprof  stdlib profiler index, plus cmdline/profile/symbol/trace
func NewMux(r *Registry) *http.ServeMux {
	PublishExpvar(r)
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanContextPropagation(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b)
	root := tr.Start("session")
	child := root.StartChild("frame")
	grand := tr.StartAt("apply", child.Context(), time.Time{})
	grand.End()
	child.End()
	root.End()

	var recs []SpanRecord
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		var r SpanRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d spans, want 3", len(recs))
	}
	apply, frame, session := recs[0], recs[1], recs[2]
	if session.Parent != "" {
		t.Errorf("root has parent %q", session.Parent)
	}
	if frame.Parent != session.ID || frame.Trace != session.Trace {
		t.Errorf("frame parent/trace = %q/%q, want %q/%q", frame.Parent, frame.Trace, session.ID, session.Trace)
	}
	if apply.Parent != frame.ID || apply.Trace != session.Trace {
		t.Errorf("apply parent/trace = %q/%q, want %q/%q", apply.Parent, apply.Trace, frame.ID, session.Trace)
	}
	ids := map[string]bool{session.ID: true, frame.ID: true, apply.ID: true}
	if len(ids) != 3 {
		t.Errorf("span ids not unique: %v", ids)
	}
}

func TestSpanRingWrapsAndKeepsOrder(t *testing.T) {
	ring := NewSpanRing(3)
	tr := NewTracer(nil).Mirror(ring)
	for i := 0; i < 5; i++ {
		tr.Start("s").Set("i", i).End()
	}
	spans, total := ring.Snapshot()
	if total != 5 || len(spans) != 3 {
		t.Fatalf("total=%d len=%d, want 5/3", total, len(spans))
	}
	for k, want := range []int{2, 3, 4} {
		if got := spans[k].Attrs["i"].(int); got != want {
			t.Errorf("span %d has i=%v, want %d", k, got, want)
		}
	}
}

func TestNilRingAndSlowLogAreSafe(t *testing.T) {
	var ring *SpanRing
	ring.Add(SpanRecord{})
	if s, n := ring.Snapshot(); s != nil || n != 0 {
		t.Error("nil ring snapshot not empty")
	}
	var sl *SlowLog
	if sl.Exceeds(time.Hour) {
		t.Error("nil slow log exceeds")
	}
	sl.Record("x")
	sl.SetThreshold(time.Second)
}

func TestSlowLogThresholdAndRing(t *testing.T) {
	var b strings.Builder
	sl := NewSlowLog(2, 10*time.Millisecond, &b)
	if sl.Exceeds(5 * time.Millisecond) {
		t.Error("5ms exceeds 10ms threshold")
	}
	if !sl.Exceeds(10 * time.Millisecond) {
		t.Error("10ms does not exceed 10ms threshold")
	}
	type rec struct {
		N int `json:"n"`
	}
	for i := 0; i < 3; i++ {
		sl.Record(rec{N: i})
	}
	recs, total := sl.Snapshot()
	if total != 3 || len(recs) != 2 {
		t.Fatalf("total=%d len=%d, want 3/2", total, len(recs))
	}
	var first rec
	if err := json.Unmarshal(recs[0], &first); err != nil || first.N != 1 {
		t.Errorf("oldest retained = %s (err %v), want n=1", recs[0], err)
	}
	if lines := strings.Split(strings.TrimSpace(b.String()), "\n"); len(lines) != 3 {
		t.Errorf("JSONL sink got %d lines, want 3", len(lines))
	}
	sl.SetThreshold(0)
	if sl.Exceeds(time.Hour) {
		t.Error("disabled threshold still fires")
	}
}

func TestDebugEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("hb_y_total", "help").Add(3)
	ring := NewSpanRing(8)
	NewTracer(nil).Mirror(ring).Start("detect").End()
	sl := NewSlowLog(8, time.Nanosecond, nil)
	sl.Record(map[string]any{"formula": "EF(p)"})

	mux := NewMux(r)
	(&Debug{Registry: r, Spans: ring, Slow: sl}).Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Spans      []SpanRecord      `json:"spans"`
		SpansTotal int64             `json:"spans_total"`
		Slow       []json.RawMessage `json:"slow"`
		SlowTotal  int64             `json:"slow_total"`
		Metrics    map[string]any    `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.SpansTotal != 1 || len(doc.Spans) != 1 || doc.Spans[0].Span != "detect" {
		t.Errorf("spans = %+v (total %d)", doc.Spans, doc.SpansTotal)
	}
	if doc.SlowTotal != 1 || len(doc.Slow) != 1 {
		t.Errorf("slow = %v (total %d)", doc.Slow, doc.SlowTotal)
	}
	if v, ok := doc.Metrics["hb_y_total"].(float64); !ok || v != 3 {
		t.Errorf("metrics snapshot = %v", doc.Metrics)
	}
}

// TestHistogramObserveSnapshotRace hammers Observe, Snapshot, and the
// Prometheus exposition concurrently (run under -race) and asserts the
// exposition invariants a scraper relies on: cumulative buckets are
// non-decreasing and the reported count equals the +Inf bucket. Before
// the snapshot fix, the count was read from a separate atomic and could
// disagree with the bucket sum mid-Observe.
func TestHistogramObserveSnapshotRace(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hb_race_seconds", "help", []float64{0.001, 0.01, 0.1, 1})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := []float64{0.0005, 0.005, 0.05, 0.5, 5}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(vals[(i+w)%len(vals)])
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		cum, count, sum := h.snapshot()
		var prev int64
		for b, c := range cum {
			if c < prev {
				t.Fatalf("iteration %d: bucket %d decreases: %v", i, b, cum)
			}
			prev = c
		}
		if count != cum[len(cum)-1] {
			t.Fatalf("iteration %d: count %d != +Inf bucket %d", i, count, cum[len(cum)-1])
		}
		if sum < 0 {
			t.Fatalf("iteration %d: negative sum %v", i, sum)
		}
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	cum, count, _ := h.snapshot()
	if count != h.Count() || count != cum[len(cum)-1] {
		t.Fatalf("quiescent count %d (atomic %d, +Inf %d) disagree", count, h.Count(), cum[len(cum)-1])
	}
}

// Package obs is the dependency-free observability layer of the module: an
// atomic metrics registry (counters, gauges, histograms) with Prometheus
// text and JSON exposition, plus a lightweight span tracer that records
// structured detection traces as JSON lines.
//
// Design constraints, in order:
//
//   - Hot-path safety: every metric operation is a single atomic update
//     (histograms add one atomic per bucket hit plus a CAS for the sum);
//     there are no locks outside metric registration and exposition.
//   - A no-op mode: a registry can be disabled (SetEnabled(false)), turning
//     every operation on its metrics into a single atomic load; nil metric
//     handles and nil tracers are likewise safe to use and do nothing, so
//     instrumented code never needs conditionals.
//   - Zero dependencies: stdlib only, so the detection engine keeps its
//     dependency-free property.
//
// The package-level Default registry is shared by the engine packages
// (core, explore, lattice, online); binaries expose it over HTTP with
// NewMux (see http.go).
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	enabled atomic.Bool

	mu      sync.Mutex
	metrics map[string]any // *Counter | *Gauge | *Histogram
	names   []string       // registration order; exposition sorts a copy
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{metrics: make(map[string]any)}
	r.enabled.Store(true)
	return r
}

var std = NewRegistry()

// Default returns the process-wide registry shared by the engine packages.
func Default() *Registry { return std }

// SetEnabled turns metric collection on or off. When off, every operation
// on the registry's metrics is a no-op after one atomic load — the
// documented disabled mode.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is collecting.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// register returns the existing metric under name or stores and returns
// make(). It panics when name is already registered as a different kind —
// a programming error worth failing loudly on.
func register[M any](r *Registry, name string, make func() M) M {
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.metrics[name]; ok {
		m, ok := got.(M)
		if !ok {
			panic("obs: metric " + name + " re-registered as a different kind")
		}
		return m
	}
	m := make()
	r.metrics[name] = m
	r.names = append(r.names, name)
	return m
}

// sortedNames returns the metric names in lexicographic order.
func (r *Registry) sortedNames() []string {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// lookup returns the metric registered under name, or nil.
func (r *Registry) lookup(name string) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics[name]
}

// Counter is a monotonically increasing metric. Metric names follow the
// Prometheus convention (snake_case, _total suffix for counters) and may
// carry a constant label set inline: `hb_verdicts_total{kind="ef"}`.
type Counter struct {
	reg  *Registry
	name string
	help string
	v    atomic.Int64
}

// Counter returns the counter registered under name, creating it if
// needed. Re-registration with the same name returns the same counter.
func (r *Registry) Counter(name, help string) *Counter {
	return register(r, name, func() *Counter { return &Counter{reg: r, name: name, help: help} })
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics; this is not
// enforced on the hot path). Safe on a nil counter and a no-op when the
// registry is disabled.
func (c *Counter) Add(n int64) {
	if c == nil || !c.reg.enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	reg  *Registry
	name string
	help string
	v    atomic.Int64
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	return register(r, name, func() *Gauge { return &Gauge{reg: r, name: name, help: help} })
}

// Set stores v. Safe on nil; no-op when the registry is disabled.
func (g *Gauge) Set(v int64) {
	if g == nil || !g.reg.enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil || !g.reg.enabled.Load() {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are the default histogram bounds, tuned for sub-microsecond
// to multi-second engine latencies (seconds).
var DefBuckets = []float64{
	1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets. Observe is lock-free:
// one atomic add for the bucket, one for the count, one CAS loop for the
// float sum.
type Histogram struct {
	reg    *Registry
	name   string
	help   string
	bounds []float64 // strictly increasing upper bounds; +Inf is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds (nil for DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return register(r, name, func() *Histogram {
		if bounds == nil {
			bounds = DefBuckets
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		return &Histogram{
			reg: r, name: name, help: help,
			bounds: bs,
			counts: make([]atomic.Int64, len(bs)+1),
		}
	})
}

// Observe records v. Safe on nil; no-op when the registry is disabled.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.reg.enabled.Load() {
		return
	}
	// First bucket whose bound is >= v; the overflow bucket is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns cumulative bucket counts aligned with bounds plus the
// +Inf total, consistent enough for exposition (buckets are read without a
// global lock, so a scrape racing an Observe may be off by one — the usual
// Prometheus client behavior). The reported count is derived from the
// bucket read itself, not the separate count atomic: an Observe that has
// bumped its bucket but not yet the total (or vice versa) would otherwise
// expose count != +Inf bucket, which breaks the Prometheus histogram
// invariant scrapers quantile over. The race stress test pins this down.
func (h *Histogram) snapshot() (cumulative []int64, count int64, sum float64) {
	cumulative = make([]int64, len(h.counts))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cumulative[i] = running
	}
	return cumulative, running, h.Sum()
}

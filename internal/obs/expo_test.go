package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact exposition text: sorted names,
// HELP/TYPE once per base name, inline labels merged with le, cumulative
// buckets with +Inf, _sum and _count.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("hb_runs_total", "Runs completed.").Add(3)
	r.Counter(`hb_verdicts_total{kind="ef"}`, "Verdicts by kind.").Add(2)
	r.Counter(`hb_verdicts_total{kind="ag"}`, "Verdicts by kind.").Add(5)
	r.Gauge("hb_depth", "Queue depth.").Set(7)
	h := r.Histogram("hb_lat_seconds", "Latency.", []float64{0.5, 1, 2})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP hb_depth Queue depth.
# TYPE hb_depth gauge
hb_depth 7
# HELP hb_lat_seconds Latency.
# TYPE hb_lat_seconds histogram
hb_lat_seconds_bucket{le="0.5"} 1
hb_lat_seconds_bucket{le="1"} 2
hb_lat_seconds_bucket{le="2"} 2
hb_lat_seconds_bucket{le="+Inf"} 3
hb_lat_seconds_sum 4
hb_lat_seconds_count 3
# HELP hb_runs_total Runs completed.
# TYPE hb_runs_total counter
hb_runs_total 3
# HELP hb_verdicts_total Verdicts by kind.
# TYPE hb_verdicts_total counter
hb_verdicts_total{kind="ag"} 5
hb_verdicts_total{kind="ef"} 2
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(11)
	r.Gauge("g", "").Set(-4)
	r.Histogram("h", "", []float64{1}).Observe(0.5)

	snap := r.Snapshot()
	if snap["c_total"] != int64(11) {
		t.Errorf("snapshot counter = %v", snap["c_total"])
	}
	if snap["g"] != int64(-4) {
		t.Errorf("snapshot gauge = %v", snap["g"])
	}
	hs, ok := snap["h"].(HistogramSnapshot)
	if !ok || hs.Count != 1 || hs.Sum != 0.5 || hs.Buckets["1"] != 1 || hs.Buckets["+Inf"] != 1 {
		t.Errorf("snapshot histogram = %+v", snap["h"])
	}

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, b.String())
	}
	if decoded["c_total"] != float64(11) {
		t.Errorf("decoded counter = %v", decoded["c_total"])
	}
}

func TestSplitName(t *testing.T) {
	cases := []struct{ in, base, labels string }{
		{"plain_total", "plain_total", ""},
		{`x_total{kind="ef"}`, "x_total", `kind="ef"`},
		{`x_total{a="1",b="2"}`, "x_total", `a="1",b="2"`},
		{"weird{unclosed", "weird{unclosed", ""},
	}
	for _, c := range cases {
		base, labels := splitName(c.in)
		if base != c.base || labels != c.labels {
			t.Errorf("splitName(%q) = (%q, %q), want (%q, %q)", c.in, base, labels, c.base, c.labels)
		}
	}
}

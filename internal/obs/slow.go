package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SlowLog retains the most recent records of operations that exceeded a
// configurable duration threshold — the "slow query log" of the detection
// engine. Records are arbitrary JSON-marshalable values (core attaches
// the pir.Choice and core.Stats of a slow Detect run); each is kept in a
// bounded in-memory ring for /debug/obs and optionally appended as one
// JSONL line to a writer.
//
// A nil *SlowLog is valid: Exceeds reports false and Record does nothing,
// so instrumented code holds one unconditionally.
type SlowLog struct {
	threshold atomic.Int64 // nanoseconds; <= 0 disables

	mu      sync.Mutex
	enc     *json.Encoder
	recs    []json.RawMessage
	next    int
	total   int64
	dropped int64 // records that failed to marshal
}

// NewSlowLog returns a slow log retaining up to capacity records
// (minimum 1), with the given threshold (<= 0 disables) and an optional
// JSONL writer.
func NewSlowLog(capacity int, threshold time.Duration, w io.Writer) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	l := &SlowLog{recs: make([]json.RawMessage, 0, capacity)}
	if w != nil {
		l.enc = json.NewEncoder(w)
	}
	l.threshold.Store(int64(threshold))
	return l
}

// SetThreshold updates the slowness threshold (<= 0 disables).
func (l *SlowLog) SetThreshold(d time.Duration) {
	if l != nil {
		l.threshold.Store(int64(d))
	}
}

// Threshold returns the current slowness threshold.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.threshold.Load())
}

// Exceeds reports whether d crosses the threshold — the hot-path gate:
// one atomic load, false on a nil log or a disabled threshold.
func (l *SlowLog) Exceeds(d time.Duration) bool {
	if l == nil {
		return false
	}
	t := l.threshold.Load()
	return t > 0 && int64(d) >= t
}

// Record stores one slow-operation record. Marshal failures are counted,
// never propagated — the slow log must not make a slow path slower still
// by erroring.
func (l *SlowLog) Record(rec any) {
	if l == nil {
		return
	}
	b, err := json.Marshal(rec)
	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		l.dropped++
		return
	}
	l.total++
	if len(l.recs) < cap(l.recs) {
		l.recs = append(l.recs, b)
	} else {
		l.recs[l.next] = b
		l.next = (l.next + 1) % len(l.recs)
	}
	if l.enc != nil {
		l.enc.Encode(json.RawMessage(b)) //nolint:errcheck // logging is best-effort
	}
}

// Snapshot returns the retained records, oldest first, plus the total
// ever recorded.
func (l *SlowLog) Snapshot() (recs []json.RawMessage, total int64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	recs = make([]json.RawMessage, 0, len(l.recs))
	recs = append(recs, l.recs[l.next:]...)
	recs = append(recs, l.recs[:l.next]...)
	return recs, l.total
}

package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	const workers, perWorker = 16, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Errorf("gauge = %d, want 42", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("count = %d, want %d", got, workers*perWorker)
	}
	if got, want := h.Sum(), 1.5*workers*perWorker; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestConcurrentRegistrationAndExposition(t *testing.T) {
	// Registration, updates, and scrapes racing; the race detector is the
	// assertion here.
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"a_total", "b_total", "c_total"}
			for i := 0; i < 200; i++ {
				c := r.Counter(names[i%len(names)], "help")
				c.Inc()
				r.Histogram("lat_seconds", "", nil).Observe(0.001)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			r.WritePrometheus(&b)
			r.Snapshot()
		}
	}()
	wg.Wait()
	total := r.Counter("a_total", "").Value() +
		r.Counter("b_total", "").Value() +
		r.Counter("c_total", "").Value()
	if total != 4*200 {
		t.Errorf("counters sum to %d, want %d", total, 4*200)
	}
}

func TestDisabledRegistryIsNoop(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1})
	r.SetEnabled(false)
	if r.Enabled() {
		t.Fatal("registry still enabled")
	}
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.Add(1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("disabled registry recorded: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Errorf("re-enabled counter = %d, want 1", c.Value())
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics returned non-zero values")
	}
}

func TestRegisterSameNameReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "first")
	b := r.Counter("x_total", "second help ignored")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
}

func TestRegisterKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind mismatch")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "")
	r.Gauge("x", "")
}

package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestTracerEmitsOneJSONLinePerSpan(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b)
	tr.Start("detect").Set("formula", "EF(p)").Set("holds", true).End()
	tr.Start("detect").End()

	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), b.String())
	}
	var rec struct {
		TS    string         `json:"ts"`
		Span  string         `json:"span"`
		DurUS int64          `json:"dur_us"`
		Attrs map[string]any `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("invalid JSON line: %v\n%s", err, lines[0])
	}
	if rec.Span != "detect" || rec.TS == "" || rec.DurUS < 0 {
		t.Errorf("record = %+v", rec)
	}
	if rec.Attrs["formula"] != "EF(p)" || rec.Attrs["holds"] != true {
		t.Errorf("attrs = %v", rec.Attrs)
	}
}

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Error("nil tracer returned non-nil span")
	}
	sp.Set("k", 1).Set("k2", 2)
	sp.End()
}

func TestTracerConcurrent(t *testing.T) {
	var mu sync.Mutex
	var b strings.Builder
	lockedW := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	tr := NewTracer(lockedW)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Start("s").Set("worker", w).End()
			}
		}(w)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("interleaved/corrupt line: %q", line)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hb_x_total", "help").Add(9)
	mux := NewMux(r)
	RegisterPprof(mux) // every binary mounts this behind its -pprof flag
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "hb_x_total 9") {
		t.Errorf("/metrics = %d\n%s", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !json.Valid([]byte(body)) {
		t.Errorf("/debug/vars = %d, valid JSON = %v", code, json.Valid([]byte(body)))
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext identifies a span within a trace: a trace id shared by every
// span of one logical operation (a detection session, a Detect run), a
// span id unique within the tracer, and the parent span's id (empty for a
// root). Contexts propagate across goroutine boundaries by value, so a
// monitor loop can parent its spans under the transport's frame span.
type SpanContext struct {
	TraceID string `json:"trace,omitempty"`
	SpanID  string `json:"id,omitempty"`
	Parent  string `json:"parent,omitempty"`
}

// Valid reports whether the context names a span.
func (c SpanContext) Valid() bool { return c.TraceID != "" && c.SpanID != "" }

// Tracer records spans as JSON lines — the structured detection traces of
// the observability layer. One line per completed span:
//
//	{"ts":"...","span":"detect","dur_us":412,"trace":"t-01","id":"s-01","attrs":{...}}
//
// Span and trace ids are allocated from per-tracer counters, so the id
// sequence of a serialized workload is deterministic — golden tests rely
// on this. A tracer can additionally Mirror completed spans into a
// SpanRing for the /debug/obs endpoint; the writer may be nil when only
// the ring sink is wanted. A nil *Tracer is valid and records nothing, so
// instrumented code can hold a tracer unconditionally.
type Tracer struct {
	mu   sync.Mutex
	enc  *json.Encoder
	ring *SpanRing

	traceSeq atomic.Uint64
	spanSeq  atomic.Uint64
}

// NewTracer returns a tracer writing JSON lines to w (nil for no writer —
// useful with Mirror when only the in-memory ring is wanted).
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{}
	if w != nil {
		t.enc = json.NewEncoder(w)
	}
	return t
}

// Mirror additionally records every completed span into r and returns the
// tracer for chaining.
func (t *Tracer) Mirror(r *SpanRing) *Tracer {
	if t != nil {
		t.ring = r
	}
	return t
}

// Span is an in-progress span. Attributes are added with Set; End emits
// the JSON line. A nil *Span is valid and ignores all calls.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
	ctx   SpanContext
	attrs map[string]any
}

// Start begins a root span of a fresh trace. Safe on a nil tracer
// (returns a nil span).
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: time.Now(), ctx: SpanContext{
		TraceID: fmt.Sprintf("t-%04x", t.traceSeq.Add(1)),
		SpanID:  fmt.Sprintf("s-%06x", t.spanSeq.Add(1)),
	}}
}

// StartChild begins a span in s's trace with s as parent. Safe on a nil
// span (returns nil).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.StartAt(name, s.ctx, time.Now())
}

// StartAt begins a span under an explicit parent context with an explicit
// start time — the propagation primitive: a frame span started by the
// transport reader can parent monitor-loop spans, and a stage whose
// beginning was observed before the span object existed (decode) keeps
// its true start. A zero parent starts a new trace; a zero start means
// now.
func (t *Tracer) StartAt(name string, parent SpanContext, start time.Time) *Span {
	if t == nil {
		return nil
	}
	if start.IsZero() {
		start = time.Now()
	}
	ctx := SpanContext{TraceID: parent.TraceID, Parent: parent.SpanID}
	if ctx.TraceID == "" {
		ctx.TraceID = fmt.Sprintf("t-%04x", t.traceSeq.Add(1))
	}
	ctx.SpanID = fmt.Sprintf("s-%06x", t.spanSeq.Add(1))
	return &Span{t: t, name: name, start: start, ctx: ctx}
}

// Context returns the span's identifiers (zero for a nil span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// Set attaches an attribute to the span and returns it for chaining.
func (s *Span) Set(key string, value any) *Span {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
	return s
}

// SpanRecord is the serialized form of a completed span — one JSONL line,
// and one entry of the /debug/obs recent-spans ring.
type SpanRecord struct {
	TS     string         `json:"ts"`
	Span   string         `json:"span"`
	DurUS  int64          `json:"dur_us"`
	Trace  string         `json:"trace,omitempty"`
	ID     string         `json:"id,omitempty"`
	Parent string         `json:"parent,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// End completes the span, writes its JSON line, and mirrors it into the
// ring, if configured.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		TS:     s.start.UTC().Format(time.RFC3339Nano),
		Span:   s.name,
		DurUS:  time.Since(s.start).Microseconds(),
		Trace:  s.ctx.TraceID,
		ID:     s.ctx.SpanID,
		Parent: s.ctx.Parent,
		Attrs:  s.attrs,
	}
	if s.t.ring != nil {
		s.t.ring.Add(rec)
	}
	if s.t.enc == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.t.enc.Encode(rec) //nolint:errcheck // tracing is best-effort
}

// SpanRing is a bounded ring of completed spans — the in-memory recent
// history served at /debug/obs. Concurrent-safe; when full, the oldest
// record is overwritten.
type SpanRing struct {
	mu    sync.Mutex
	buf   []SpanRecord
	next  int
	total int64
}

// NewSpanRing returns a ring holding up to capacity completed spans
// (minimum 1).
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRing{buf: make([]SpanRecord, 0, capacity)}
}

// Add records one completed span. Safe on a nil ring.
func (r *SpanRing) Add(rec SpanRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
		return
	}
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
}

// Snapshot returns the retained spans, oldest first, plus the count of
// all spans ever added (so a reader can tell how many scrolled away).
func (r *SpanRing) Snapshot() (spans []SpanRecord, total int64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	spans = make([]SpanRecord, 0, len(r.buf))
	spans = append(spans, r.buf[r.next:]...)
	spans = append(spans, r.buf[:r.next]...)
	return spans, r.total
}

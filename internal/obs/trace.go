package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer records spans as JSON lines — the structured detection traces of
// the observability layer. One line per completed span:
//
//	{"ts":"2026-08-05T10:15:04.123Z","span":"detect","dur_us":412,"attrs":{...}}
//
// A nil *Tracer is valid and records nothing, so instrumented code can
// hold a tracer unconditionally.
type Tracer struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewTracer returns a tracer writing JSON lines to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{enc: json.NewEncoder(w)}
}

// Span is an in-progress span. Attributes are added with Set; End emits
// the JSON line. A nil *Span is valid and ignores all calls.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
	attrs map[string]any
}

// Start begins a span. Safe on a nil tracer (returns a nil span).
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: time.Now()}
}

// Set attaches an attribute to the span and returns it for chaining.
func (s *Span) Set(key string, value any) *Span {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
	return s
}

// spanRecord is the serialized form of a completed span.
type spanRecord struct {
	TS    string         `json:"ts"`
	Span  string         `json:"span"`
	DurUS int64          `json:"dur_us"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// End completes the span and writes its JSON line.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := spanRecord{
		TS:    s.start.UTC().Format(time.RFC3339Nano),
		Span:  s.name,
		DurUS: time.Since(s.start).Microseconds(),
		Attrs: s.attrs,
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.t.enc.Encode(rec) //nolint:errcheck // tracing is best-effort
}

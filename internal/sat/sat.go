// Package sat provides boolean formulas, satisfiability solvers, and the
// paper's Theorem 5 and Theorem 6 reductions, which establish that
// detecting observer-independent predicates is NP-complete under EG and
// co-NP-complete under AG.
//
// The reductions turn a boolean formula φ over variables x1..xm into a
// distributed computation plus an observer-independent global predicate P
// such that EG(P) holds iff φ is satisfiable (Theorem 5), respectively
// AG(P) holds iff φ is a tautology (Theorem 6). The hardness experiment
// (fig3) runs these constructions through the exponential EG/AG solvers and
// checks the answers against direct SAT solving.
package sat

import (
	"fmt"
	"math/rand"
	"strings"
)

// Formula is a boolean formula over variables indexed 1..m.
type Formula interface {
	// Eval evaluates under the assignment; assignment[i] is the value of
	// variable i (index 0 unused).
	Eval(assignment []bool) bool
	// MaxVar returns the largest variable index mentioned.
	MaxVar() int
	fmt.Stringer
}

// Var is a variable reference x_i.
type Var int

// Eval implements Formula.
func (v Var) Eval(a []bool) bool { return a[int(v)] }

// MaxVar implements Formula.
func (v Var) MaxVar() int { return int(v) }

// String implements Formula.
func (v Var) String() string { return fmt.Sprintf("x%d", int(v)) }

// NotF is negation.
type NotF struct {
	F Formula
}

// Eval implements Formula.
func (n NotF) Eval(a []bool) bool { return !n.F.Eval(a) }

// MaxVar implements Formula.
func (n NotF) MaxVar() int { return n.F.MaxVar() }

// String implements Formula.
func (n NotF) String() string { return "¬" + n.F.String() }

// AndF is conjunction of clauses.
type AndF []Formula

// Eval implements Formula.
func (f AndF) Eval(a []bool) bool {
	for _, g := range f {
		if !g.Eval(a) {
			return false
		}
	}
	return true
}

// MaxVar implements Formula.
func (f AndF) MaxVar() int { return maxVar(f) }

// String implements Formula.
func (f AndF) String() string { return joinFormulas(f, " ∧ ") }

// OrF is disjunction.
type OrF []Formula

// Eval implements Formula.
func (f OrF) Eval(a []bool) bool {
	for _, g := range f {
		if g.Eval(a) {
			return true
		}
	}
	return false
}

// MaxVar implements Formula.
func (f OrF) MaxVar() int { return maxVar(f) }

// String implements Formula.
func (f OrF) String() string { return joinFormulas(f, " ∨ ") }

func maxVar(fs []Formula) int {
	m := 0
	for _, g := range fs {
		if v := g.MaxVar(); v > m {
			m = v
		}
	}
	return m
}

func joinFormulas(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, g := range fs {
		parts[i] = "(" + g.String() + ")"
	}
	return strings.Join(parts, sep)
}

// CNF is a formula in conjunctive normal form: each clause is a list of
// literals, a literal being +i for x_i and −i for ¬x_i.
type CNF struct {
	Vars    int
	Clauses [][]int
}

// Eval implements Formula.
func (c CNF) Eval(a []bool) bool {
	for _, clause := range c.Clauses {
		sat := false
		for _, lit := range clause {
			v := lit
			if v < 0 {
				v = -v
			}
			if (lit > 0) == a[v] {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// MaxVar implements Formula.
func (c CNF) MaxVar() int { return c.Vars }

// String implements Formula.
func (c CNF) String() string {
	parts := make([]string, len(c.Clauses))
	for i, clause := range c.Clauses {
		lits := make([]string, len(clause))
		for j, lit := range clause {
			if lit < 0 {
				lits[j] = fmt.Sprintf("¬x%d", -lit)
			} else {
				lits[j] = fmt.Sprintf("x%d", lit)
			}
		}
		parts[i] = "(" + strings.Join(lits, "∨") + ")"
	}
	return strings.Join(parts, "∧")
}

// Satisfiable reports whether f has a satisfying assignment, by exhaustive
// enumeration (the formula sizes in the hardness experiment are small).
// The witness assignment is returned when one exists.
func Satisfiable(f Formula) ([]bool, bool) {
	m := f.MaxVar()
	a := make([]bool, m+1)
	for mask := 0; mask < 1<<uint(m); mask++ {
		for i := 1; i <= m; i++ {
			a[i] = mask&(1<<uint(i-1)) != 0
		}
		if f.Eval(a) {
			out := make([]bool, m+1)
			copy(out, a)
			return out, true
		}
	}
	return nil, false
}

// Tautology reports whether f holds under every assignment; when it does
// not, the falsifying assignment is returned.
func Tautology(f Formula) ([]bool, bool) {
	m := f.MaxVar()
	a := make([]bool, m+1)
	for mask := 0; mask < 1<<uint(m); mask++ {
		for i := 1; i <= m; i++ {
			a[i] = mask&(1<<uint(i-1)) != 0
		}
		if !f.Eval(a) {
			out := make([]bool, m+1)
			copy(out, a)
			return out, false
		}
	}
	return nil, true
}

// RandomCNF generates a seeded random k-CNF instance with the given number
// of variables and clauses, for the hardness scaling experiment.
func RandomCNF(vars, clauses, k int, seed int64) CNF {
	rng := rand.New(rand.NewSource(seed))
	c := CNF{Vars: vars}
	for i := 0; i < clauses; i++ {
		clause := make([]int, 0, k)
		used := make(map[int]bool, k)
		for len(clause) < k {
			v := rng.Intn(vars) + 1
			if used[v] {
				continue
			}
			used[v] = true
			if rng.Intn(2) == 0 {
				v = -v
			}
			clause = append(clause, v)
		}
		c.Clauses = append(c.Clauses, clause)
	}
	return c
}

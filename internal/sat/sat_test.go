package sat

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/explore"
	"repro/internal/lattice"
)

func TestFormulaEval(t *testing.T) {
	// (x1 ∨ ¬x2) ∧ (x2 ∨ x3)
	f := AndF{OrF{Var(1), NotF{Var(2)}}, OrF{Var(2), Var(3)}}
	cases := []struct {
		a    []bool
		want bool
	}{
		{[]bool{false, true, true, false}, true},
		{[]bool{false, false, true, false}, false},
		{[]bool{false, false, false, true}, true},
		{[]bool{false, false, false, false}, false},
	}
	for _, c := range cases {
		if got := f.Eval(c.a); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.a, got, c.want)
		}
	}
	if f.MaxVar() != 3 {
		t.Errorf("MaxVar = %d", f.MaxVar())
	}
}

func TestCNFEval(t *testing.T) {
	c := CNF{Vars: 3, Clauses: [][]int{{1, -2}, {2, 3}}}
	if !c.Eval([]bool{false, true, true, false}) {
		t.Error("satisfying assignment rejected")
	}
	if c.Eval([]bool{false, false, true, false}) {
		t.Error("falsifying assignment accepted")
	}
}

func TestSatisfiableAndTautology(t *testing.T) {
	sat := CNF{Vars: 2, Clauses: [][]int{{1}, {-2}}}
	if a, ok := Satisfiable(sat); !ok || !sat.Eval(a) {
		t.Errorf("Satisfiable = %v, %v", a, ok)
	}
	unsat := CNF{Vars: 1, Clauses: [][]int{{1}, {-1}}}
	if _, ok := Satisfiable(unsat); ok {
		t.Error("unsatisfiable formula reported satisfiable")
	}
	taut := OrF{Var(1), NotF{Var(1)}}
	if _, ok := Tautology(taut); !ok {
		t.Error("tautology rejected")
	}
	if cex, ok := Tautology(Var(1)); ok || cex[1] {
		t.Errorf("Tautology(x1) = %v, %v", cex, ok)
	}
}

func TestRandomCNFShape(t *testing.T) {
	c := RandomCNF(5, 8, 3, 42)
	if c.Vars != 5 || len(c.Clauses) != 8 {
		t.Fatalf("shape: %d vars, %d clauses", c.Vars, len(c.Clauses))
	}
	for _, clause := range c.Clauses {
		if len(clause) != 3 {
			t.Errorf("clause %v has length %d", clause, len(clause))
		}
		seen := map[int]bool{}
		for _, lit := range clause {
			v := lit
			if v < 0 {
				v = -v
			}
			if v < 1 || v > 5 {
				t.Errorf("literal %d out of range", lit)
			}
			if seen[v] {
				t.Errorf("duplicate variable in clause %v", clause)
			}
			seen[v] = true
		}
	}
	// Determinism.
	d := RandomCNF(5, 8, 3, 42)
	for i := range c.Clauses {
		for j := range c.Clauses[i] {
			if c.Clauses[i][j] != d.Clauses[i][j] {
				t.Fatal("RandomCNF not deterministic")
			}
		}
	}
}

// TestTheorem5Reduction checks EG(P) ⟺ SAT on a battery of formulas,
// using both the exponential core solver and the lattice checker.
func TestTheorem5Reduction(t *testing.T) {
	formulas := []Formula{
		CNF{Vars: 2, Clauses: [][]int{{1, 2}}},
		CNF{Vars: 1, Clauses: [][]int{{1}, {-1}}}, // unsat
		CNF{Vars: 3, Clauses: [][]int{{1, -2}, {2, 3}, {-1, -3}}},
		CNF{Vars: 3, Clauses: [][]int{{1}, {-1, 2}, {-2, 3}, {-3, -1}}}, // unsat chain
		OrF{Var(1), NotF{Var(1)}},
	}
	for si := int64(0); si < 6; si++ {
		formulas = append(formulas, RandomCNF(4, 9, 3, si))
	}
	for fi, f := range formulas {
		comp, p := ReduceSAT(f)
		_, want := Satisfiable(f)
		if got := core.EGArbitrary(comp, p); got != want {
			t.Errorf("formula %d (%s): EG = %v, satisfiable = %v", fi, f, got, want)
		}
		// Lattice ground truth and observer-independence of P.
		l, err := lattice.Build(comp)
		if err != nil {
			t.Fatalf("formula %d: %v", fi, err)
		}
		atom := ctl.Atom{P: p}
		if got := explore.Holds(l, ctl.EG{F: atom}); got != want {
			t.Errorf("formula %d: lattice EG = %v, satisfiable = %v", fi, got, want)
		}
		if !explore.CheckObserverIndependent(l, atom) {
			t.Errorf("formula %d: reduction predicate not observer-independent", fi)
		}
	}
}

// TestTheorem6Reduction checks AG(P) ⟺ TAUTOLOGY.
func TestTheorem6Reduction(t *testing.T) {
	formulas := []Formula{
		OrF{Var(1), NotF{Var(1)}},                             // tautology
		OrF{AndF{Var(1), Var(2)}, NotF{Var(1)}, NotF{Var(2)}}, // not a tautology (x1=T,x2=F)
		NotF{AndF{Var(1), NotF{Var(1)}}},                      // tautology
		Var(2),
	}
	for si := int64(10); si < 16; si++ {
		formulas = append(formulas, OrF{RandomCNF(4, 6, 3, si), NotF{RandomCNF(4, 6, 3, si+100)}})
	}
	for fi, f := range formulas {
		comp, p := ReduceTautology(f)
		_, want := Tautology(f)
		if got := core.AGArbitrary(comp, p); got != want {
			t.Errorf("formula %d (%s): AG = %v, tautology = %v", fi, f, got, want)
		}
		l, err := lattice.Build(comp)
		if err != nil {
			t.Fatalf("formula %d: %v", fi, err)
		}
		atom := ctl.Atom{P: p}
		if got := explore.Holds(l, ctl.AG{F: atom}); got != want {
			t.Errorf("formula %d: lattice AG = %v, tautology = %v", fi, got, want)
		}
		if !explore.CheckObserverIndependent(l, atom) {
			t.Errorf("formula %d: reduction predicate not observer-independent", fi)
		}
	}
}

// TestQuickReductionAgreement drives random CNFs through both reductions.
func TestQuickReductionAgreement(t *testing.T) {
	f := func(seed int64) bool {
		cnf := RandomCNF(3, 5, 2, seed)
		comp, p := ReduceSAT(cnf)
		_, want := Satisfiable(cnf)
		if core.EGArbitrary(comp, p) != want {
			return false
		}
		comp2, p2 := ReduceTautology(cnf)
		_, wantT := Tautology(cnf)
		return core.AGArbitrary(comp2, p2) == wantT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

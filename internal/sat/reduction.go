package sat

import (
	"repro/internal/computation"
	"repro/internal/predicate"
)

// EncodedFormula is the observer-independent global predicate
// P = φ(x1..xm) ∨ x_{m+1} produced by the reductions: the boolean variables
// are read off the local states of the variable processes, and the guard
// variable x_{m+1} lives on the extra process. P holds at the initial cut
// (the guard starts true), which makes it observer-independent.
type EncodedFormula struct {
	F Formula
	// Extra is the index of the guard process.
	Extra int
}

var _ predicate.Predicate = EncodedFormula{}

// Eval implements predicate.Predicate.
func (p EncodedFormula) Eval(c *computation.Computation, cut computation.Cut) bool {
	if v, _ := c.Value(p.Extra, cut[p.Extra], "x"); v == 1 {
		return true // guard x_{m+1} is true
	}
	a := make([]bool, p.F.MaxVar()+1)
	for i := 1; i <= p.F.MaxVar(); i++ {
		v, _ := c.Value(i-1, cut[i-1], "x")
		a[i] = v == 1
	}
	return p.F.Eval(a)
}

// String implements predicate.Predicate.
func (p EncodedFormula) String() string {
	return "(" + p.F.String() + ") ∨ guard"
}

// ReduceSAT is the Theorem 5 construction: it builds a computation and an
// observer-independent predicate P such that EG(P) holds iff φ is
// satisfiable.
//
// Each boolean variable gets a process whose single event flips its value
// from true to false, so a scheduler can park each variable process on
// either side. The guard process starts true, goes false for one event,
// and returns to true; any path witnessing EG(P) must satisfy φ at the
// global states inside the guard's false window, which pins a satisfying
// assignment.
func ReduceSAT(f Formula) (*computation.Computation, predicate.Predicate) {
	m := f.MaxVar()
	b := computation.NewBuilder(m + 1)
	for i := 0; i < m; i++ {
		b.SetInitial(i, "x", 1)
		computation.Set(b.Internal(i), "x", 0)
	}
	extra := m
	b.SetInitial(extra, "x", 1)
	computation.Set(b.Internal(extra), "x", 0)
	computation.Set(b.Internal(extra), "x", 1)
	comp := b.MustBuild()
	return comp, predicate.ObserverIndependent{P: EncodedFormula{F: f, Extra: extra}}
}

// ReduceTautology is the Theorem 6 construction: it builds a computation
// and an observer-independent predicate P such that AG(P) holds iff φ is a
// tautology.
//
// The construction matches ReduceSAT except the guard starts true and ends
// false, never returning: once the guard falls, the reachable global
// states sweep every assignment of the variables, so invariance of P
// forces φ to hold under all of them.
func ReduceTautology(f Formula) (*computation.Computation, predicate.Predicate) {
	m := f.MaxVar()
	b := computation.NewBuilder(m + 1)
	for i := 0; i < m; i++ {
		b.SetInitial(i, "x", 1)
		computation.Set(b.Internal(i), "x", 0)
	}
	extra := m
	b.SetInitial(extra, "x", 1)
	computation.Set(b.Internal(extra), "x", 0)
	comp := b.MustBuild()
	return comp, predicate.ObserverIndependent{P: EncodedFormula{F: f, Extra: extra}}
}

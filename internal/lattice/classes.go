package lattice

import (
	"fmt"

	"repro/internal/computation"
	"repro/internal/predicate"
)

// CheckLinear verifies by enumeration that the satisfying cuts of p form an
// inf-semilattice (are closed under meet). It returns a counterexample pair
// when the predicate is not linear.
func (l *Lattice) CheckLinear(p predicate.Predicate) (ok bool, a, b computation.Cut) {
	sat := l.Sat(p)
	for x := 0; x < len(sat); x++ {
		for y := x + 1; y < len(sat); y++ {
			ca, cb := l.cuts[sat[x]], l.cuts[sat[y]]
			if !p.Eval(l.comp, computation.Meet(ca, cb)) {
				return false, ca, cb
			}
		}
	}
	return true, nil, nil
}

// CheckPostLinear verifies that the satisfying cuts of p are closed under
// join (form a sup-semilattice).
func (l *Lattice) CheckPostLinear(p predicate.Predicate) (ok bool, a, b computation.Cut) {
	sat := l.Sat(p)
	for x := 0; x < len(sat); x++ {
		for y := x + 1; y < len(sat); y++ {
			ca, cb := l.cuts[sat[x]], l.cuts[sat[y]]
			if !p.Eval(l.comp, computation.Join(ca, cb)) {
				return false, ca, cb
			}
		}
	}
	return true, nil, nil
}

// CheckRegular verifies closure under both meet and join: the satisfying
// cuts form a sublattice.
func (l *Lattice) CheckRegular(p predicate.Predicate) bool {
	okM, _, _ := l.CheckLinear(p)
	okJ, _, _ := l.CheckPostLinear(p)
	return okM && okJ
}

// CheckStable verifies that p, once true, remains true: for every cover
// edge G ▷ H of the lattice, p(G) implies p(H). Since every maximal cut
// sequence is a chain of cover edges this is equivalent to stability along
// all observations.
func (l *Lattice) CheckStable(p predicate.Predicate) (ok bool, g, h computation.Cut) {
	for i, ss := range l.succs {
		if !p.Eval(l.comp, l.cuts[i]) {
			continue
		}
		for _, j := range ss {
			if !p.Eval(l.comp, l.cuts[j]) {
				return false, l.cuts[i], l.cuts[j]
			}
		}
	}
	return true, nil, nil
}

// LeastSat returns the least satisfying cut I_p if the satisfying set is
// non-empty and closed under meet, by folding meet over all satisfying
// cuts. ok is false when no cut satisfies p or when the meet of the
// satisfying cuts does not itself satisfy p (p not linear).
func (l *Lattice) LeastSat(p predicate.Predicate) (computation.Cut, bool) {
	sat := l.Sat(p)
	if len(sat) == 0 {
		return nil, false
	}
	least := l.cuts[sat[0]].Copy()
	for _, i := range sat[1:] {
		least = computation.Meet(least, l.cuts[i])
	}
	if !p.Eval(l.comp, least) {
		return nil, false
	}
	return least, true
}

// GreatestSat is the dual of LeastSat for post-linear predicates.
func (l *Lattice) GreatestSat(p predicate.Predicate) (computation.Cut, bool) {
	sat := l.Sat(p)
	if len(sat) == 0 {
		return nil, false
	}
	greatest := l.cuts[sat[0]].Copy()
	for _, i := range sat[1:] {
		greatest = computation.Join(greatest, l.cuts[i])
	}
	if !p.Eval(l.comp, greatest) {
		return nil, false
	}
	return greatest, true
}

// VerifyLatticeLaws checks that the cut set is closed under join and meet
// and that the distributivity law a ⊓ (b ⊔ c) = (a ⊓ b) ⊔ (a ⊓ c) holds
// over all triples. Exponential in lattice size; tests only. A nil return
// means all laws hold.
func (l *Lattice) VerifyLatticeLaws() error {
	for _, a := range l.cuts {
		for _, b := range l.cuts {
			if l.Index(computation.Join(a, b)) < 0 {
				return fmt.Errorf("join %v ⊔ %v escapes the lattice", a, b)
			}
			if l.Index(computation.Meet(a, b)) < 0 {
				return fmt.Errorf("meet %v ⊓ %v escapes the lattice", a, b)
			}
		}
	}
	for _, a := range l.cuts {
		for _, b := range l.cuts {
			for _, c := range l.cuts {
				lhs := computation.Meet(a, computation.Join(b, c))
				rhs := computation.Join(computation.Meet(a, b), computation.Meet(a, c))
				if !lhs.Equal(rhs) {
					return fmt.Errorf("distributivity fails at %v, %v, %v", a, b, c)
				}
			}
		}
	}
	return nil
}

// VerifyBirkhoff checks Corollary 4 on every element: each non-top cut
// equals the meet of the meet-irreducible elements above it, and the
// meet-irreducible elements found by degree counting are exactly the cuts
// E − ↑e produced by the Birkhoff formula. A nil return means the
// representation theorem holds on this lattice.
func (l *Lattice) VerifyBirkhoff() error {
	mi := l.MeetIrreducibles()
	// Degree-based meet-irreducibles == formula-based ones.
	formula := make(map[string]bool)
	for i := 0; i < l.comp.N(); i++ {
		for _, e := range l.comp.Events(i) {
			formula[l.comp.UpSetComplement(e).Key()] = true
		}
	}
	if len(formula) != len(mi) {
		return fmt.Errorf("formula yields %d meet-irreducibles, degree count %d", len(formula), len(mi))
	}
	for _, i := range mi {
		if !formula[l.cuts[i].Key()] {
			return fmt.Errorf("degree-based meet-irreducible %v not produced by E−↑e formula", l.cuts[i])
		}
	}
	// Corollary 4: a = ⊓ {x ∈ M(L) | a ⊆ x}.
	for idx, a := range l.cuts {
		if idx == l.final {
			continue
		}
		acc := l.comp.FinalCut()
		for _, i := range mi {
			if a.LessEq(l.cuts[i]) {
				acc = computation.Meet(acc, l.cuts[i])
			}
		}
		if !acc.Equal(a) {
			return fmt.Errorf("cut %v is not the meet of the meet-irreducibles above it (got %v)", a, acc)
		}
	}
	// Dually for join-irreducibles: these must be exactly the down-sets ↓e.
	ji := l.JoinIrreducibles()
	down := make(map[string]bool)
	for i := 0; i < l.comp.N(); i++ {
		for _, e := range l.comp.Events(i) {
			down[l.comp.DownSet(e).Key()] = true
		}
	}
	if len(down) != len(ji) {
		return fmt.Errorf("formula yields %d join-irreducibles, degree count %d", len(down), len(ji))
	}
	for _, i := range ji {
		if !down[l.cuts[i].Key()] {
			return fmt.Errorf("join-irreducible %v is not a ↓e", l.cuts[i])
		}
	}
	return nil
}

// Package lattice materializes the finite distributive lattice
// L = (C(E), ⊆) of consistent cuts of a computation.
//
// Explicit construction is exponential in the number of processes — it is
// the state-explosion baseline the paper's algorithms avoid — but it is
// indispensable as ground truth: every structural detection algorithm in
// this module is cross-validated against it, and the predicate-class
// checkers (linearity, regularity, stability) are defined over it.
package lattice

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/computation"
	"repro/internal/obs"
	"repro/internal/predicate"
)

var (
	metBuilds = obs.Default().Counter("hb_lattice_builds_total",
		"Explicit lattice constructions completed.")
	metCutsEnumerated = obs.Default().Counter("hb_lattice_cuts_enumerated_total",
		"Consistent cuts enumerated by completed lattice constructions.")
)

// Lattice is the explicitly enumerated lattice of consistent cuts. Nodes
// are indexed 0..Size()-1 in BFS-from-∅ order (so node 0 is the initial
// cut); Final is the index of E.
type Lattice struct {
	comp  *computation.Computation
	cuts  []computation.Cut
	index map[string]int // cut key → node index
	succs [][]int        // covers: succs[i] lists j with cuts[i] ▷ cuts[j]
	preds [][]int
	final int
}

// MaxSize bounds lattice construction; Build fails beyond it rather than
// exhausting memory. Exported so tests and the harness can reason about the
// explosion boundary.
const MaxSize = 2_000_000

// Build enumerates the lattice of comp. It returns an error if the lattice
// exceeds MaxSize cuts.
func Build(comp *computation.Computation) (*Lattice, error) {
	return BuildLimited(comp, MaxSize)
}

// BuildLimited is Build with an explicit cut-count bound.
func BuildLimited(comp *computation.Computation, maxCuts int) (*Lattice, error) {
	l := &Lattice{
		comp:  comp,
		index: make(map[string]int),
	}
	initial := comp.InitialCut()
	l.cuts = append(l.cuts, initial)
	l.index[initial.Key()] = 0
	for head := 0; head < len(l.cuts); head++ {
		cur := l.cuts[head]
		var ss []int
		for _, next := range comp.Successors(cur) {
			key := next.Key()
			idx, seen := l.index[key]
			if !seen {
				if len(l.cuts) >= maxCuts {
					return nil, fmt.Errorf("lattice: more than %d consistent cuts", maxCuts)
				}
				idx = len(l.cuts)
				l.cuts = append(l.cuts, next)
				l.index[key] = idx
			}
			ss = append(ss, idx)
		}
		l.succs = append(l.succs, ss)
	}
	l.preds = make([][]int, len(l.cuts))
	for i, ss := range l.succs {
		for _, j := range ss {
			l.preds[j] = append(l.preds[j], i)
		}
	}
	l.final = l.index[comp.FinalCut().Key()]
	// One batched add per build keeps the enumeration loop free of atomics.
	metBuilds.Inc()
	metCutsEnumerated.Add(int64(len(l.cuts)))
	return l, nil
}

// MustBuild is Build that panics on error, for fixtures known to be small.
func MustBuild(comp *computation.Computation) *Lattice {
	l, err := Build(comp)
	if err != nil {
		panic(err)
	}
	return l
}

// Computation returns the underlying computation.
func (l *Lattice) Computation() *computation.Computation { return l.comp }

// Size returns the number of consistent cuts.
func (l *Lattice) Size() int { return len(l.cuts) }

// Cut returns the cut of node i.
func (l *Lattice) Cut(i int) computation.Cut { return l.cuts[i] }

// Cuts returns all cuts in node order. The slice must not be modified.
func (l *Lattice) Cuts() []computation.Cut { return l.cuts }

// Initial returns the node index of ∅ (always 0).
func (l *Lattice) Initial() int { return 0 }

// Final returns the node index of E.
func (l *Lattice) Final() int { return l.final }

// Index returns the node index of a cut, or -1 if the cut is not a
// consistent cut of the computation.
func (l *Lattice) Index(c computation.Cut) int {
	if idx, ok := l.index[c.Key()]; ok {
		return idx
	}
	return -1
}

// Succs returns the covers of node i (the cuts one event above).
func (l *Lattice) Succs(i int) []int { return l.succs[i] }

// Preds returns the co-covers of node i (the cuts one event below).
func (l *Lattice) Preds(i int) []int { return l.preds[i] }

// MeetIrreducibles returns the node indexes of the meet-irreducible
// elements: in a finite distributive lattice these are exactly the elements
// with a single upper cover (one outgoing edge), excluding the top.
func (l *Lattice) MeetIrreducibles() []int {
	var out []int
	for i, ss := range l.succs {
		if i != l.final && len(ss) == 1 {
			out = append(out, i)
		}
	}
	return out
}

// JoinIrreducibles returns the node indexes of the join-irreducible
// elements: the elements with a single lower cover, excluding the bottom.
func (l *Lattice) JoinIrreducibles() []int {
	var out []int
	for i, ps := range l.preds {
		if i != 0 && len(ps) == 1 {
			out = append(out, i)
		}
	}
	return out
}

// Sat returns the node indexes of the cuts satisfying p, in node order.
func (l *Lattice) Sat(p predicate.Predicate) []int {
	var out []int
	for i, c := range l.cuts {
		if p.Eval(l.comp, c) {
			out = append(out, i)
		}
	}
	return out
}

// CountPaths returns the number of maximal-cut-sequence prefixes from ∅ to
// each node, i.e. the number of paths from the initial cut. Counts saturate
// at MaxSize to avoid overflow on large lattices.
func (l *Lattice) CountPaths() []int64 {
	counts := make([]int64, len(l.cuts))
	counts[0] = 1
	// Nodes are in BFS order from ∅, which is a topological order of the
	// cover DAG (each edge adds one event).
	for i, ss := range l.succs {
		for _, j := range ss {
			counts[j] += counts[i]
		}
	}
	return counts
}

// Stats summarizes a lattice for reporting.
type Stats struct {
	Events           int
	Processes        int
	Cuts             int
	Edges            int
	MeetIrreducibles int
	JoinIrreducibles int
	Height           int   // length of every maximal chain = |E|
	MaximalPaths     int64 // number of maximal cut sequences ∅ → E
}

// ComputeStats gathers lattice statistics.
func (l *Lattice) ComputeStats() Stats {
	edges := 0
	for _, ss := range l.succs {
		edges += len(ss)
	}
	paths := l.CountPaths()
	return Stats{
		Events:           l.comp.TotalEvents(),
		Processes:        l.comp.N(),
		Cuts:             l.Size(),
		Edges:            edges,
		MeetIrreducibles: len(l.MeetIrreducibles()),
		JoinIrreducibles: len(l.JoinIrreducibles()),
		Height:           l.comp.TotalEvents(),
		MaximalPaths:     paths[l.final],
	}
}

// String implements fmt.Stringer for Stats.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d |E|=%d cuts=%d edges=%d meet-irr=%d join-irr=%d paths=%d",
		s.Processes, s.Events, s.Cuts, s.Edges, s.MeetIrreducibles, s.JoinIrreducibles, s.MaximalPaths)
}

// DOT renders the lattice in Graphviz format. Nodes satisfying mark (if
// non-nil) are filled, mirroring the paper's figures.
func (l *Lattice) DOT(mark predicate.Predicate) string {
	var b strings.Builder
	b.WriteString("digraph lattice {\n  rankdir=BT;\n  node [shape=circle fontsize=10];\n")
	for i, c := range l.cuts {
		attrs := fmt.Sprintf("label=%q", c.String())
		if mark != nil && mark.Eval(l.comp, c) {
			attrs += " style=filled fillcolor=gray80"
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", i, attrs)
	}
	// Deterministic edge order.
	for i, ss := range l.succs {
		sorted := append([]int(nil), ss...)
		sort.Ints(sorted)
		for _, j := range sorted {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", i, j)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

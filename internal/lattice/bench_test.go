package lattice

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{3, 4, 5} {
		comp := sim.Grid(n, 6)
		b.Run(fmt.Sprintf("Grid%dx6", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(comp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkIrreducibles(b *testing.B) {
	l := MustBuild(sim.Grid(4, 6))
	b.Run("Meet", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l.MeetIrreducibles()
		}
	})
	b.Run("Join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l.JoinIrreducibles()
		}
	})
}

func BenchmarkCountPaths(b *testing.B) {
	l := MustBuild(sim.Grid(4, 6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.CountPaths()
	}
}

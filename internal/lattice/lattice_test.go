package lattice

import (
	"strings"
	"testing"

	"repro/internal/computation"
	"repro/internal/predicate"
	"repro/internal/sim"
)

func TestBuildFig2(t *testing.T) {
	comp := sim.Fig2()
	l := MustBuild(comp)
	if l.Size() != 8 {
		t.Fatalf("size = %d, want 8", l.Size())
	}
	if !l.Cut(l.Initial()).Equal(comp.InitialCut()) {
		t.Error("node 0 is not ∅")
	}
	if !l.Cut(l.Final()).Equal(comp.FinalCut()) {
		t.Error("Final is not E")
	}
	// Every cut is consistent and indexed.
	for i, c := range l.Cuts() {
		if !comp.Consistent(c) {
			t.Errorf("cut %v inconsistent", c)
		}
		if l.Index(c) != i {
			t.Errorf("Index(%v) = %d, want %d", c, l.Index(c), i)
		}
	}
	if l.Index(computation.Cut{1, 0}) != -1 {
		t.Error("inconsistent cut has an index")
	}
	// Cover edges add exactly one event, both directions linked.
	for i := range l.Cuts() {
		for _, j := range l.Succs(i) {
			if l.Cut(j).Size() != l.Cut(i).Size()+1 || !l.Cut(i).LessEq(l.Cut(j)) {
				t.Errorf("edge %v → %v is not a cover", l.Cut(i), l.Cut(j))
			}
			found := false
			for _, back := range l.Preds(j) {
				if back == i {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %v → %v missing from Preds", l.Cut(i), l.Cut(j))
			}
		}
	}
}

func TestIrreducibles(t *testing.T) {
	comp := sim.Fig2()
	l := MustBuild(comp)
	mi := l.MeetIrreducibles()
	ji := l.JoinIrreducibles()
	if len(mi) != comp.TotalEvents() || len(ji) != comp.TotalEvents() {
		t.Errorf("|MI| = %d, |JI| = %d, want %d each", len(mi), len(ji), comp.TotalEvents())
	}
	if err := l.VerifyBirkhoff(); err != nil {
		t.Errorf("Birkhoff: %v", err)
	}
	if err := l.VerifyLatticeLaws(); err != nil {
		t.Errorf("lattice laws: %v", err)
	}
}

func TestIrreduciblesRandom(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		comp := sim.Random(sim.DefaultRandomConfig(3, 9), seed)
		l := MustBuild(comp)
		if err := l.VerifyBirkhoff(); err != nil {
			t.Errorf("seed %d: Birkhoff: %v", seed, err)
		}
		if err := l.VerifyLatticeLaws(); err != nil {
			t.Errorf("seed %d: laws: %v", seed, err)
		}
	}
}

func TestCountPaths(t *testing.T) {
	// Full 2×2 grid: paths to the far corner = C(4,2) = 6.
	comp := sim.Grid(2, 2)
	l := MustBuild(comp)
	counts := l.CountPaths()
	if counts[l.Final()] != 6 {
		t.Errorf("grid paths = %d, want 6", counts[l.Final()])
	}
	if counts[l.Initial()] != 1 {
		t.Errorf("paths to ∅ = %d", counts[l.Initial()])
	}
	// A chain has exactly one path.
	chain := MustBuild(sim.Chain(2, 6))
	if c := chain.CountPaths(); c[chain.Final()] != 1 {
		t.Errorf("chain paths = %d, want 1", c[chain.Final()])
	}
}

func TestStats(t *testing.T) {
	l := MustBuild(sim.Fig2())
	s := l.ComputeStats()
	if s.Cuts != 8 || s.Events != 6 || s.Processes != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.MeetIrreducibles != 6 || s.JoinIrreducibles != 6 {
		t.Errorf("irreducible counts = %d/%d", s.MeetIrreducibles, s.JoinIrreducibles)
	}
	if s.MaximalPaths < 1 {
		t.Errorf("paths = %d", s.MaximalPaths)
	}
	if !strings.Contains(s.String(), "cuts=8") {
		t.Errorf("Stats.String = %q", s.String())
	}
}

func TestSatAndLeastGreatest(t *testing.T) {
	comp := sim.Fig2()
	l := MustBuild(comp)
	ce := predicate.ChannelsEmpty{}
	sat := l.Sat(ce)
	if len(sat) == 0 {
		t.Fatal("channelsEmpty holds nowhere?")
	}
	least, ok := l.LeastSat(ce)
	if !ok || !least.Equal(computation.Cut{0, 0}) {
		t.Errorf("LeastSat = %v, %v", least, ok)
	}
	greatest, ok := l.GreatestSat(ce)
	if !ok || !greatest.Equal(comp.FinalCut()) {
		t.Errorf("GreatestSat = %v, %v", greatest, ok)
	}
	never := predicate.LocalFn{Proc: 0, Name: "no", Fn: func(*computation.Computation, int) bool { return false }}
	if _, ok := l.LeastSat(predicate.Conj(never)); ok {
		t.Error("LeastSat of unsatisfiable predicate")
	}
	if _, ok := l.GreatestSat(predicate.Conj(never)); ok {
		t.Error("GreatestSat of unsatisfiable predicate")
	}
}

func TestClassCheckers(t *testing.T) {
	comp := sim.Fig2()
	l := MustBuild(comp)
	// channelsEmpty is regular on every computation.
	if !l.CheckRegular(predicate.ChannelsEmpty{}) {
		t.Error("channelsEmpty not regular")
	}
	// received(1) is stable; "channels empty" is not stable here.
	if ok, g, h := l.CheckStable(predicate.Received{ID: 1}); !ok {
		t.Errorf("received(1) not stable: %v → %v", g, h)
	}
	if ok, _, _ := l.CheckStable(predicate.ChannelsEmpty{}); ok {
		t.Error("channelsEmpty should not be stable on Fig 2")
	}
	// An exclusive-or style predicate is not linear.
	xor := predicate.Fn{Name: "xor", F: func(c *computation.Computation, cut computation.Cut) bool {
		return (cut[0] == 3) != (cut[1] == 3)
	}}
	if ok, _, _ := l.CheckLinear(xor); ok {
		t.Error("xor predicate reported linear")
	}
	if ok, _, _ := l.CheckPostLinear(xor); ok {
		t.Error("xor predicate reported post-linear")
	}
}

func TestDOT(t *testing.T) {
	comp := sim.Fig2()
	l := MustBuild(comp)
	dot := l.DOT(predicate.ChannelsEmpty{})
	if !strings.Contains(dot, "digraph lattice") {
		t.Error("missing digraph header")
	}
	if !strings.Contains(dot, "style=filled") {
		t.Error("no filled nodes despite satisfying cuts")
	}
	if strings.Count(dot, "->") != 8 {
		t.Errorf("edge count = %d, want 8", strings.Count(dot, "->"))
	}
	plain := l.DOT(nil)
	if strings.Contains(plain, "style=filled") {
		t.Error("nil mark should not fill nodes")
	}
}

func TestBuildSizeLimit(t *testing.T) {
	// The 3×3 grid has 4^3 = 64 cuts; a limit of 10 must trip.
	comp := sim.Grid(3, 3)
	if _, err := BuildLimited(comp, 10); err == nil {
		t.Fatal("oversized lattice built without error")
	}
	if _, err := BuildLimited(comp, 64); err != nil {
		t.Fatalf("exact-limit build failed: %v", err)
	}
}

// Package buildinfo reports the module version and VCS state embedded by
// the Go toolchain, shared by every CLI's -version flag.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Version returns the best available version string: the module version
// when built from a tagged module, otherwise the VCS revision (with a
// +dirty suffix for modified working trees), otherwise "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + dirty
	}
	return "devel"
}

// Print writes the one-line -version output for the named command.
func Print(w io.Writer, command string) {
	fmt.Fprintf(w, "%s %s (%s, %s/%s)\n", command, Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// Package sim synthesizes distributed computations: seeded random
// message-passing executions for property testing and scaling benchmarks,
// deterministic scenario workloads (token-ring mutual exclusion, leader
// election, producer–consumer, barrier synchronization, two-phase commit)
// for the examples, and reconstructions of the paper's Figure 2 and
// Figure 4 computations.
//
// The paper evaluates no testbed — all of its claims are about the
// combinatorial structure of (E, →) — so these generators are the
// substitution for the authors' (undescribed) environment: they produce
// exactly the structures the algorithms are defined over.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/computation"
)

// RandomConfig parameterizes Random.
type RandomConfig struct {
	// Procs is the number of processes (≥ 1).
	Procs int
	// Events is the total number of events to generate.
	Events int
	// SendProb in [0,1] is the probability a fresh event is a send;
	// receives happen eagerly with probability RecvProb whenever a message
	// is deliverable.
	SendProb float64
	// RecvProb in [0,1] is the probability a deliverable message is
	// consumed when its destination is scheduled.
	RecvProb float64
	// Vars is the number of distinct variables maintained per process
	// (named x0, x1, …); every event assigns one of them a value in
	// [0, ValRange).
	Vars int
	// ValRange bounds variable values; 0 disables variable assignment.
	ValRange int
}

// DefaultRandomConfig returns a workable mid-density configuration.
func DefaultRandomConfig(procs, events int) RandomConfig {
	return RandomConfig{
		Procs:    procs,
		Events:   events,
		SendProb: 0.3,
		RecvProb: 0.7,
		Vars:     2,
		ValRange: 4,
	}
}

// Random generates a seeded random computation. The same (cfg, seed) pair
// always yields the same computation.
func Random(cfg RandomConfig, seed int64) *computation.Computation {
	if cfg.Procs < 1 {
		panic("sim: need at least one process")
	}
	rng := rand.New(rand.NewSource(seed))
	b := computation.NewBuilder(cfg.Procs)
	type pending struct {
		msg computation.Msg
		to  int
	}
	var inflight []pending
	for ev := 0; ev < cfg.Events; ev++ {
		proc := rng.Intn(cfg.Procs)
		var e *computation.Event
		// Prefer receiving a deliverable message.
		recvIdx := -1
		for idx, m := range inflight {
			if m.to == proc {
				recvIdx = idx
				break
			}
		}
		switch {
		case recvIdx >= 0 && rng.Float64() < cfg.RecvProb:
			e = b.Receive(proc, inflight[recvIdx].msg)
			inflight = append(inflight[:recvIdx], inflight[recvIdx+1:]...)
		case cfg.Procs > 1 && rng.Float64() < cfg.SendProb:
			var m computation.Msg
			e, m = b.Send(proc)
			to := rng.Intn(cfg.Procs - 1)
			if to >= proc {
				to++
			}
			inflight = append(inflight, pending{m, to})
		default:
			e = b.Internal(proc)
		}
		if cfg.Vars > 0 && cfg.ValRange > 0 {
			name := fmt.Sprintf("x%d", rng.Intn(cfg.Vars))
			computation.Set(e, name, rng.Intn(cfg.ValRange))
		}
	}
	return b.MustBuild()
}

// Fig2 reconstructs the paper's Figure 2 computation: two processes P1
// (events e1 e2 e3) and P2 (f1 f2 f3) with a message from f2 received at
// e1 and a message from e2 received at f3. Its lattice has 8 consistent
// cuts and satisfies the paper's Corollary 4 examples X = ⊓{E1,E2,E3,F3}
// and Y = ⊓{E3,F3}. (The figure itself is unavailable in the source text;
// this reconstruction matches every fact the prose states about it.)
func Fig2() *computation.Computation {
	b := computation.NewBuilder(2)
	computation.WithLabel(b.Internal(1), "f1")
	f2, m1 := b.Send(1)
	computation.WithLabel(f2, "f2")
	computation.WithLabel(b.Receive(0, m1), "e1")
	e2, m2 := b.Send(0)
	computation.WithLabel(e2, "e2")
	computation.WithLabel(b.Internal(0), "e3")
	computation.WithLabel(b.Receive(1, m2), "f3")
	return b.MustBuild()
}

// Fig4 reconstructs the paper's Figure 4 computation for the until
// example: three processes where P1 maintains x, P2 maintains y and P3
// maintains z. The predicate p = (z@P3 < 6 ∧ x@P1 < 4) is conjunctive and
// q = (channelsEmpty ∧ x@P1 > 1) is linear; the least cut satisfying q is
// I_q = {e1, f1, f2, g1} and E[p U q] holds. (The figure itself is
// unavailable in the source text; this reconstruction matches the prose:
// the witness path, I_q, and the path counts — 7 predicate-satisfying
// paths of which 2 lead to I_q — are all verified by tests and the
// fig4 experiment.)
//
// Structure: f1 sends to g1, f2 sends to e1; e1 sets x = 2 (> 1), e2 sets
// x = 4 (ending the x < 4 interval), g1 sets z = 6 (ending the z < 6
// interval).
func Fig4() *computation.Computation {
	b := computation.NewBuilder(3)
	b.SetInitial(0, "x", 1)
	b.SetInitial(1, "y", 0)
	b.SetInitial(2, "z", 5)

	f1, mToG := b.Send(1)
	computation.WithLabel(computation.Set(f1, "y", 1), "f1")
	f2, mToE := b.Send(1)
	computation.WithLabel(computation.Set(f2, "y", 2), "f2")

	e1 := b.Receive(0, mToE)
	computation.WithLabel(computation.Set(e1, "x", 2), "e1")
	e2 := b.Internal(0)
	computation.WithLabel(computation.Set(e2, "x", 4), "e2")

	g1 := b.Receive(2, mToG)
	computation.WithLabel(computation.Set(g1, "z", 6), "g1")

	return b.MustBuild()
}

package sim

import (
	"fmt"

	"repro/internal/computation"
)

// TokenRingMutex simulates token-based mutual exclusion on a ring of n
// processes for the given number of rounds. The token circulates
// P1 → P2 → … → Pn → P1 …; the holder raises try, enters the critical
// section (crit = 1) while holding the token, leaves it, and forwards the
// token.
//
// Per process variables: try, crit ∈ {0, 1}. The intended properties are
// AG(¬(crit_i ∧ crit_j)) for i ≠ j (safety) and A[try_i U crit_i]-style
// liveness within the observed trace.
func TokenRingMutex(n, rounds int) *computation.Computation {
	if n < 2 {
		panic("sim: token ring needs at least two processes")
	}
	b := computation.NewBuilder(n)
	// P1 starts with the token; no message needed for its first entry.
	var token computation.Msg
	haveToken := false
	for r := 0; r < rounds; r++ {
		for p := 0; p < n; p++ {
			// Want the critical section: raise try.
			computation.Set(b.Internal(p), "try", 1)
			if haveToken {
				computation.Set(b.Receive(p, token), "token", 1)
			}
			// Enter and leave the critical section.
			e := b.Internal(p)
			computation.Set(e, "crit", 1)
			computation.Set(e, "try", 0)
			computation.Set(b.Internal(p), "crit", 0)
			// Forward the token to the next process.
			var s *computation.Event
			s, token = b.Send(p)
			computation.Set(s, "token", 0)
			haveToken = true
		}
	}
	// The final token transfer stays in flight: receive it at P1 so the
	// trace ends with empty channels.
	if haveToken {
		computation.Set(b.Receive(0, token), "token", 1)
		tail := b.Internal(0)
		computation.Set(tail, "token", 0)
	}
	return b.MustBuild()
}

// BuggyMutex is TokenRingMutex with an injected fault: process faulty
// enters the critical section once without waiting for the token, so two
// processes can be critical concurrently. Used by the mutex example to
// show invariant violation detection.
func BuggyMutex(n, rounds, faulty int) *computation.Computation {
	if n < 2 {
		panic("sim: mutex needs at least two processes")
	}
	b := computation.NewBuilder(n)
	var token computation.Msg
	haveToken := false
	for r := 0; r < rounds; r++ {
		for p := 0; p < n; p++ {
			computation.Set(b.Internal(p), "try", 1)
			if haveToken {
				computation.Set(b.Receive(p, token), "token", 1)
			}
			e := b.Internal(p)
			computation.Set(e, "crit", 1)
			computation.Set(e, "try", 0)
			if r == 0 && p == (faulty+1)%n && faulty >= 0 {
				// Fault: the faulty process barges in concurrently while p
				// is still critical (no ordering between them).
				computation.Set(b.Internal(faulty), "crit", 1)
				computation.Set(b.Internal(faulty), "crit", 0)
			}
			computation.Set(b.Internal(p), "crit", 0)
			var s *computation.Event
			s, token = b.Send(p)
			computation.Set(s, "token", 0)
			haveToken = true
		}
	}
	if haveToken {
		computation.Set(b.Receive(0, token), "token", 1)
	}
	return b.MustBuild()
}

// LeaderElection simulates a single-round ring election (Chang–Roberts
// flavored, simplified): each process proposes its id; proposals circulate
// once around the ring and every process adopts the maximum id seen.
// Variable leader holds the currently believed leader id (0 = none yet);
// variable done is 1 once the process has decided.
//
// The intended properties are EF(conj(done_i = 1 for all i)) and
// AG(disj(leader_i = 0, leader_i = n)): once decided, everyone agrees on
// the maximum id n.
func LeaderElection(n int) *computation.Computation {
	if n < 2 {
		panic("sim: election needs at least two processes")
	}
	b := computation.NewBuilder(n)
	for p := 0; p < n; p++ {
		b.SetInitial(p, "leader", 0)
	}
	// Each process sends its proposal around the ring; we simulate the
	// aggregate pass: proposals travel hop by hop, each hop forwarding the
	// running maximum.
	best := make([]int, n)
	for p := 0; p < n; p++ {
		best[p] = p + 1 // own id
	}
	// n-1 hops of the maximum-forwarding wave started by each process is
	// equivalent (for the final state) to one full circulation of the
	// global maximum; simulate that single circulation plus a decision
	// event per process.
	start := n - 1 // the process with the maximum id n starts the wave
	cur := start
	var m computation.Msg
	for hop := 0; hop < n; hop++ {
		next := (cur + 1) % n
		var s *computation.Event
		s, m = b.Send(cur)
		computation.Set(s, "sent", 1)
		r := b.Receive(next, m)
		computation.Set(r, "leader", n)
		cur = next
	}
	for p := 0; p < n; p++ {
		e := b.Internal(p)
		computation.Set(e, "done", 1)
		if p == start {
			computation.Set(e, "leader", n)
		}
	}
	return b.MustBuild()
}

// ProducerConsumer simulates producers streaming items to one consumer
// (process 0). Producer i (process i ≥ 1) sends items; the consumer
// receives them round-robin as available. Variables: produced_i on each
// producer, consumed and backlog on the consumer.
//
// Channel predicates shine here: "backlog bounded" is AG(consumed-lag),
// and "eventually drained" is EF(channelsEmpty ∧ consumed = total).
func ProducerConsumer(producers, itemsPerProducer int) *computation.Computation {
	if producers < 1 {
		panic("sim: need at least one producer")
	}
	n := producers + 1
	b := computation.NewBuilder(n)
	var queue []computation.Msg
	consumed := 0
	for item := 0; item < itemsPerProducer; item++ {
		for p := 1; p <= producers; p++ {
			s, m := b.Send(p)
			computation.Set(s, "produced", item+1)
			queue = append(queue, m)
			// Consumer lags by up to `producers` items.
			if len(queue) > producers {
				r := b.Receive(0, queue[0])
				queue = queue[1:]
				consumed++
				computation.Set(r, "consumed", consumed)
				computation.Set(r, "backlog", len(queue))
			}
		}
	}
	for _, m := range queue {
		r := b.Receive(0, m)
		consumed++
		computation.Set(r, "consumed", consumed)
	}
	computation.Set(b.Internal(0), "drained", 1)
	return b.MustBuild()
}

// Barrier simulates rounds of barrier synchronization coordinated by
// process 0: everyone reports to the coordinator, which then releases
// everyone into the next phase. Variable phase counts completed barriers
// per process.
//
// The intended property is AG over the phase skew: any two processes are
// within one phase of each other, a conjunctive-per-pair predicate.
func Barrier(n, rounds int) *computation.Computation {
	if n < 2 {
		panic("sim: barrier needs at least two processes")
	}
	b := computation.NewBuilder(n)
	for r := 1; r <= rounds; r++ {
		arrive := make([]computation.Msg, 0, n-1)
		for p := 1; p < n; p++ {
			s, m := b.Send(p)
			computation.Set(s, "arrived", r)
			arrive = append(arrive, m)
		}
		for _, m := range arrive {
			b.Receive(0, m)
		}
		computation.Set(b.Internal(0), "phase", r)
		release := make([]computation.Msg, 0, n-1)
		for p := 1; p < n; p++ {
			_, m := b.Send(0)
			release = append(release, m)
			_ = p
		}
		for p := 1; p < n; p++ {
			rcv := b.Receive(p, release[p-1])
			computation.Set(rcv, "phase", r)
		}
	}
	return b.MustBuild()
}

// TwoPhaseCommit simulates one two-phase commit round: the coordinator
// (process 0) solicits votes, participants vote (participant `abortAt`
// votes abort when ≥ 1), and the coordinator broadcasts the decision.
// Variables: vote (1 commit, 2 abort), decided (1 commit, 2 abort) per
// process.
//
// Intended properties: AG(¬(decided_i = 1 ∧ decided_j = 2)) — no process
// commits while another aborts — and A[voted U decided] style untils.
func TwoPhaseCommit(participants, abortAt int) *computation.Computation {
	if participants < 1 {
		panic("sim: need at least one participant")
	}
	n := participants + 1
	b := computation.NewBuilder(n)
	// Phase 1: solicit and collect votes.
	solicit := make([]computation.Msg, participants)
	for p := 1; p <= participants; p++ {
		_, m := b.Send(0)
		solicit[p-1] = m
	}
	votes := make([]computation.Msg, participants)
	decision := 1
	for p := 1; p <= participants; p++ {
		b.Receive(p, solicit[p-1])
		v := 1
		if p == abortAt {
			v = 2
			decision = 2
		}
		s, m := b.Send(p)
		computation.Set(s, "vote", v)
		votes[p-1] = m
	}
	for p := 1; p <= participants; p++ {
		b.Receive(0, votes[p-1])
	}
	computation.Set(b.Internal(0), "decided", decision)
	// Phase 2: broadcast decision.
	bc := make([]computation.Msg, participants)
	for p := 1; p <= participants; p++ {
		_, m := b.Send(0)
		bc[p-1] = m
	}
	for p := 1; p <= participants; p++ {
		r := b.Receive(p, bc[p-1])
		computation.Set(r, "decided", decision)
	}
	return b.MustBuild()
}

// Chain builds a fully sequential computation (each event causally after
// the previous one via messages bouncing between processes) — the lattice
// degenerates to a single path. Useful as a benchmark extreme.
func Chain(n, events int) *computation.Computation {
	if n < 2 {
		panic("sim: chain needs at least two processes")
	}
	b := computation.NewBuilder(n)
	cur := 0
	for i := 0; i < events; i++ {
		next := (cur + 1) % n
		s, m := b.Send(cur)
		computation.Set(s, "step", i)
		b.Receive(next, m)
		cur = next
	}
	return b.MustBuild()
}

// Grid builds a fully concurrent computation: n processes each executing
// k independent internal events — the lattice is the full (k+1)^n grid,
// the worst case for explicit enumeration.
func Grid(n, k int) *computation.Computation {
	b := computation.NewBuilder(n)
	for p := 0; p < n; p++ {
		for i := 1; i <= k; i++ {
			computation.Set(b.Internal(p), "c", i)
		}
	}
	return b.MustBuild()
}

// Describe summarizes a computation for CLI output.
func Describe(comp *computation.Computation) string {
	return fmt.Sprintf("%d processes, %d events, %d messages",
		comp.N(), comp.TotalEvents(), len(comp.Messages()))
}

package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/computation"
	"repro/internal/spanhb"
)

// SpanConfig shapes a synthetic microservice trace: Requests fan-out RPC
// trees of the given Depth and Fanout over Services services, with
// consecutive requests overlapping in time so concurrent handling (the
// interesting case for inflight predicates) actually occurs.
type SpanConfig struct {
	Services int   // processes after lowering (≥ 2)
	Requests int   // independent traces (≥ 1)
	Depth    int   // call-tree depth below the root span (≥ 0)
	Fanout   int   // child calls per span (≥ 1 when Depth > 0)
	Seed     int64 // PRNG seed for downstream service selection
}

// Spans generates an OTel-style span workload: each request is a trace
// rooted at service 0 whose spans call pseudo-randomly chosen downstream
// services. Timestamps are synthetic and consistent (children nest
// strictly inside parents), so lowering never drops edges as skew, and
// the same config always yields the same spans.
func Spans(cfg SpanConfig) ([]spanhb.Span, error) {
	if cfg.Services < 2 {
		return nil, fmt.Errorf("sim: span workload needs ≥ 2 services, got %d", cfg.Services)
	}
	if cfg.Requests < 1 {
		return nil, fmt.Errorf("sim: span workload needs ≥ 1 request, got %d", cfg.Requests)
	}
	if cfg.Depth > 0 && cfg.Fanout < 1 {
		return nil, fmt.Errorf("sim: span workload with depth %d needs fanout ≥ 1", cfg.Depth)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var spans []spanhb.Span
	n := 0
	// gen emits the span tree rooted at (svc, depth) starting at start,
	// returning the subtree's end time. Children run sequentially inside
	// the parent, each on a different service than its caller.
	var gen func(traceID, parentID string, svc, depth int, start int64) int64
	gen = func(traceID, parentID string, svc, depth int, start int64) int64 {
		n++
		id := fmt.Sprintf("sp-%05d", n)
		cur := start + 40 // work before the first downstream call
		if depth > 0 {
			for f := 0; f < cfg.Fanout; f++ {
				child := (svc + 1 + rng.Intn(cfg.Services-1)) % cfg.Services
				cur = gen(traceID, id, child, depth-1, cur+20)
			}
		}
		end := cur + 40
		spans = append(spans, spanhb.Span{
			TraceID:  traceID,
			SpanID:   id,
			ParentID: parentID,
			Service:  fmt.Sprintf("svc-%02d", svc),
			Name:     fmt.Sprintf("op-d%d", depth),
			StartNS:  start,
			EndNS:    end,
			Attrs:    map[string]int{"depth": depth},
		})
		return end
	}
	var start int64
	for r := 0; r < cfg.Requests; r++ {
		end := gen(fmt.Sprintf("tr-%03d", r), "", 0, cfg.Depth, start)
		// The next request begins well before this one ends, so handler
		// spans overlap and inflight counts exceed one.
		start += (end - start) / 3
	}
	// Random routing may leave a service unreached; give each one an idle
	// heartbeat span so "services=N" always lowers to N processes.
	seen := make(map[string]bool, cfg.Services)
	for _, s := range spans {
		seen[s.Service] = true
	}
	for svc := 0; svc < cfg.Services; svc++ {
		name := fmt.Sprintf("svc-%02d", svc)
		if !seen[name] {
			n++
			spans = append(spans, spanhb.Span{
				TraceID: fmt.Sprintf("tr-idle-%02d", svc),
				SpanID:  fmt.Sprintf("sp-%05d", n),
				Service: name,
				Name:    "idle",
				StartNS: 0,
				EndNS:   1,
			})
		}
	}
	return spans, nil
}

// SpanWorkload generates the span workload and lowers it onto the
// happened-before model — the "spans:" entry of FromSpec.
func SpanWorkload(cfg SpanConfig) (*computation.Computation, error) {
	spans, err := Spans(cfg)
	if err != nil {
		return nil, err
	}
	r, err := spanhb.Lower(spans, spanhb.Options{})
	if err != nil {
		return nil, err
	}
	return r.Comp, nil
}

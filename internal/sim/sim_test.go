package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/computation"
	"repro/internal/lattice"
	"repro/internal/predicate"
)

func TestRandomDeterministic(t *testing.T) {
	cfg := DefaultRandomConfig(3, 20)
	a := Random(cfg, 7)
	b := Random(cfg, 7)
	if a.TotalEvents() != b.TotalEvents() {
		t.Fatal("same seed, different event counts")
	}
	for i := 0; i < a.N(); i++ {
		for k := 1; k <= a.Len(i); k++ {
			if a.Event(i, k).Kind != b.Event(i, k).Kind || !a.Event(i, k).Clock.Equal(b.Event(i, k).Clock) {
				t.Fatalf("same seed, different event (%d,%d)", i, k)
			}
		}
	}
	c := Random(cfg, 8)
	same := a.TotalEvents() == c.TotalEvents()
	if same {
		for i := 0; i < a.N() && same; i++ {
			same = a.Len(i) == c.Len(i)
		}
	}
	if same {
		// Extremely unlikely the full structure matches too; spot check.
		diff := false
		for i := 0; i < a.N() && !diff; i++ {
			for k := 1; k <= a.Len(i) && !diff; k++ {
				if a.Event(i, k).Kind != c.Event(i, k).Kind {
					diff = true
				}
			}
		}
		if !diff {
			t.Log("seeds 7 and 8 produced structurally identical computations (possible but suspicious)")
		}
	}
}

func TestRandomRespectsConfig(t *testing.T) {
	cfg := DefaultRandomConfig(4, 50)
	comp := Random(cfg, 1)
	if comp.N() != 4 {
		t.Errorf("procs = %d", comp.N())
	}
	if comp.TotalEvents() != 50 {
		t.Errorf("events = %d", comp.TotalEvents())
	}
	// Every receive matches a send.
	for _, id := range comp.Messages() {
		if comp.SendOf(id) == nil {
			t.Errorf("message %d has no send", id)
		}
		if r := comp.RecvOf(id); r != nil {
			if !comp.HappenedBefore(comp.SendOf(id), r) {
				t.Errorf("message %d receive not after send", id)
			}
		}
	}
}

func TestQuickRandomBuildsValidComputations(t *testing.T) {
	f := func(seed int64) bool {
		comp := Random(RandomConfig{Procs: 3, Events: 15, SendProb: 0.5, RecvProb: 0.5, Vars: 1, ValRange: 2}, seed)
		// The final cut must be consistent and the linearization total.
		return comp.Consistent(comp.FinalCut()) && len(comp.SomeLinearization()) == comp.TotalEvents()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTokenRingMutexSafety(t *testing.T) {
	comp := TokenRingMutex(3, 2)
	l, err := lattice.Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	// No two processes critical at once, verified exhaustively.
	for _, cut := range l.Cuts() {
		critical := 0
		for p := 0; p < comp.N(); p++ {
			if v, _ := comp.Value(p, cut[p], "crit"); v == 1 {
				critical++
			}
		}
		if critical > 1 {
			t.Fatalf("cut %v has %d processes critical", cut, critical)
		}
	}
	// Channels end empty.
	if !comp.ChannelsEmpty(comp.FinalCut()) {
		t.Error("token left in flight at the end")
	}
}

func TestBuggyMutexViolation(t *testing.T) {
	comp := BuggyMutex(3, 1, 0)
	l, err := lattice.Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	violated := false
	for _, cut := range l.Cuts() {
		critical := 0
		for p := 0; p < comp.N(); p++ {
			if v, _ := comp.Value(p, cut[p], "crit"); v == 1 {
				critical++
			}
		}
		if critical > 1 {
			violated = true
			break
		}
	}
	if !violated {
		t.Fatal("BuggyMutex produced no mutual exclusion violation")
	}
}

func TestLeaderElectionAgreement(t *testing.T) {
	n := 4
	comp := LeaderElection(n)
	final := comp.FinalCut()
	for p := 0; p < n; p++ {
		if v, _ := comp.Value(p, final[p], "leader"); v != n {
			t.Errorf("P%d ends with leader = %d, want %d", p+1, v, n)
		}
		if v, _ := comp.Value(p, final[p], "done"); v != 1 {
			t.Errorf("P%d not done", p+1)
		}
	}
	// Leader values are only ever 0 (undecided) or n (the maximum).
	for p := 0; p < n; p++ {
		for k := 0; k <= comp.Len(p); k++ {
			if v, _ := comp.Value(p, k, "leader"); v != 0 && v != n {
				t.Errorf("P%d state %d has leader = %d", p+1, k, v)
			}
		}
	}
}

func TestProducerConsumerDrains(t *testing.T) {
	comp := ProducerConsumer(2, 3)
	if !comp.ChannelsEmpty(comp.FinalCut()) {
		t.Error("items left in flight")
	}
	final := comp.FinalCut()
	if v, _ := comp.Value(0, final[0], "consumed"); v != 6 {
		t.Errorf("consumed = %d, want 6", v)
	}
	if v, _ := comp.Value(0, final[0], "drained"); v != 1 {
		t.Error("consumer never drained")
	}
}

func TestBarrierPhases(t *testing.T) {
	comp := Barrier(3, 2)
	final := comp.FinalCut()
	for p := 0; p < comp.N(); p++ {
		if v, _ := comp.Value(p, final[p], "phase"); v != 2 {
			t.Errorf("P%d final phase = %d, want 2", p+1, v)
		}
	}
	// Phase skew ≤ 1 at every consistent cut, exhaustively.
	l, err := lattice.Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range l.Cuts() {
		lo, hi := 1<<30, -1
		for p := 0; p < comp.N(); p++ {
			v, _ := comp.Value(p, cut[p], "phase")
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo > 1 {
			t.Fatalf("cut %v has phase skew %d", cut, hi-lo)
		}
	}
}

func TestTwoPhaseCommit(t *testing.T) {
	commit := TwoPhaseCommit(3, 0) // nobody aborts
	final := commit.FinalCut()
	for p := 0; p <= 3; p++ {
		if v, _ := commit.Value(p, final[p], "decided"); v != 1 {
			t.Errorf("commit run: P%d decided = %d", p+1, v)
		}
	}
	abort := TwoPhaseCommit(3, 2) // participant 2 aborts
	final = abort.FinalCut()
	for p := 0; p <= 3; p++ {
		if v, _ := abort.Value(p, final[p], "decided"); v != 2 {
			t.Errorf("abort run: P%d decided = %d", p+1, v)
		}
	}
	// Agreement invariant: never one committed while another aborted.
	l, err := lattice.Build(abort)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range l.Cuts() {
		c1, c2 := false, false
		for p := 0; p <= 3; p++ {
			v, _ := abort.Value(p, cut[p], "decided")
			c1 = c1 || v == 1
			c2 = c2 || v == 2
		}
		if c1 && c2 {
			t.Fatalf("cut %v mixes commit and abort decisions", cut)
		}
	}
}

func TestChainIsTotalOrder(t *testing.T) {
	comp := Chain(3, 10)
	l, err := lattice.Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() != comp.TotalEvents()+1 {
		t.Errorf("chain lattice has %d cuts, want %d (a single path)", l.Size(), comp.TotalEvents()+1)
	}
}

func TestGridLatticeSize(t *testing.T) {
	comp := Grid(3, 2)
	l, err := lattice.Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() != 27 { // (k+1)^n
		t.Errorf("grid lattice has %d cuts, want 27", l.Size())
	}
}

func TestFig2MatchesPaper(t *testing.T) {
	comp := Fig2()
	l, err := lattice.Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() != 8 {
		t.Errorf("Fig 2 lattice has %d cuts, want 8", l.Size())
	}
	if err := l.VerifyBirkhoff(); err != nil {
		t.Errorf("Birkhoff verification failed: %v", err)
	}
}

func TestFig4Invariants(t *testing.T) {
	comp := Fig4()
	if comp.TotalEvents() != 5 {
		t.Errorf("Fig 4 has %d events, want 5", comp.TotalEvents())
	}
	q := predicate.AndLinear{Ps: []predicate.Linear{
		predicate.ChannelsEmpty{},
		predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.GT, K: 1}),
	}}
	if q.Eval(comp, computation.Cut{1, 1, 0}) {
		t.Error("q must not hold before f2 (channel to g1 in flight)")
	}
	if !q.Eval(comp, computation.Cut{1, 2, 1}) {
		t.Error("q must hold at I_q")
	}
	if Describe(comp) == "" {
		t.Error("empty Describe")
	}
}

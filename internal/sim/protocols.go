package sim

import (
	"repro/internal/computation"
)

// Snapshot simulates one round of the Chandy–Lamport distributed snapshot
// protocol over n fully connected processes: the initiator (process 0)
// records its state and sends markers on every outgoing channel; each
// process records on first marker receipt and relays markers. Variable
// recorded ∈ {0,1} per process; variable markers counts markers seen.
//
// Intended properties: the stable predicate "everyone recorded" (EF = AF),
// and AG(disj(recorded_0 = 1, recorded_i = 0)) — nobody records before the
// initiator, a causal-ordering invariant of the protocol.
func Snapshot(n int) *computation.Computation {
	if n < 2 {
		panic("sim: snapshot needs at least two processes")
	}
	b := computation.NewBuilder(n)
	// Initiator records and sends markers to everyone.
	init := b.Internal(0)
	computation.Set(init, "recorded", 1)
	markers := make([]computation.Msg, n)
	for p := 1; p < n; p++ {
		_, m := b.Send(0)
		markers[p] = m
	}
	// Every other process receives the initiator's marker, records, and
	// relays markers to the remaining processes.
	relayed := make([][]computation.Msg, n)
	for p := 1; p < n; p++ {
		r := b.Receive(p, markers[p])
		computation.Set(r, "recorded", 1)
		computation.Set(r, "markers", 1)
		relayed[p] = make([]computation.Msg, 0, n-2)
		for q := 1; q < n; q++ {
			if q == p {
				continue
			}
			_, m := b.Send(p)
			relayed[p] = append(relayed[p], m)
		}
	}
	// Deliver the relayed markers (already recorded, so they only bump
	// the marker counter).
	for p := 1; p < n; p++ {
		count := 1
		for q := 1; q < n; q++ {
			if q == p {
				continue
			}
			// Find p's marker from q: relayed[q] holds messages for all
			// processes except q, in ascending destination order.
			idx := 0
			for d := 1; d < n; d++ {
				if d == q {
					continue
				}
				if d == p {
					break
				}
				idx++
			}
			count++
			rcv := b.Receive(p, relayed[q][idx])
			computation.Set(rcv, "markers", count)
		}
	}
	return b.MustBuild()
}

// Termination simulates a diffusing computation in the style of
// Dijkstra–Scholten: the root (process 0) activates the workers; each
// worker performs `work` internal steps, optionally forwards one
// activation to the next worker, and reports completion back to the root.
// Variable active ∈ {0,1} per process.
//
// "All processes passive and no messages in flight" is the classic stable
// termination predicate: detect with
// EF(conj(active@Pi == 0 …) && channelsEmpty) — equivalently AF, since the
// predicate is stable.
func Termination(workers, work int) *computation.Computation {
	if workers < 1 {
		panic("sim: termination needs at least one worker")
	}
	n := workers + 1
	b := computation.NewBuilder(n)
	// The root is active from the very start, so "everything passive and
	// quiet" is false at ∅ and stays false until true termination —
	// making the predicate stable on this computation.
	b.SetInitial(0, "active", 1)
	// Activate all workers.
	acts := make([]computation.Msg, workers)
	for w := 1; w <= workers; w++ {
		_, m := b.Send(0)
		acts[w-1] = m
	}
	// Workers run and report back.
	reports := make([]computation.Msg, workers)
	for w := 1; w <= workers; w++ {
		r := b.Receive(w, acts[w-1])
		computation.Set(r, "active", 1)
		for i := 0; i < work; i++ {
			computation.Set(b.Internal(w), "steps", i+1)
		}
		var done *computation.Event
		done, reports[w-1] = b.Send(w)
		computation.Set(done, "active", 0)
	}
	// Root collects reports and goes passive.
	for w := 1; w <= workers; w++ {
		b.Receive(0, reports[w-1])
	}
	computation.Set(b.Internal(0), "active", 0)
	return b.MustBuild()
}

// CausalBroadcast simulates a broadcast followed by a reply that causally
// depends on it. With violate=false the reply is delivered after the
// original broadcast everywhere (causal delivery); with violate=true one
// process delivers the reply before the broadcast it depends on —
// the classic causal-ordering violation a happened-before monitor should
// flag. Variables: got_b, got_r ∈ {0,1} per receiving process.
//
// The detection formula is AG(disj(got_r_i = 0, got_b_i = 1)): whenever
// the reply has been delivered, the broadcast must have been too. On the
// violating trace EF of the complement pinpoints the offending state.
func CausalBroadcast(violate bool) *computation.Computation {
	// P0 broadcasts b to P1 and P2; P1 replies r to P2.
	b := computation.NewBuilder(3)
	_, mB1 := b.Send(0) // broadcast to P1
	_, mB2 := b.Send(0) // broadcast to P2
	r1 := b.Receive(1, mB1)
	computation.Set(r1, "got_b", 1)
	_, mR := b.Send(1) // reply, causally after the broadcast

	if violate {
		// P2 delivers the reply first — a causal violation.
		rr := b.Receive(2, mR)
		computation.Set(rr, "got_r", 1)
		rb := b.Receive(2, mB2)
		computation.Set(rb, "got_b", 1)
	} else {
		rb := b.Receive(2, mB2)
		computation.Set(rb, "got_b", 1)
		rr := b.Receive(2, mR)
		computation.Set(rr, "got_r", 1)
	}
	return b.MustBuild()
}

package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/spanhb"
)

func TestSpansDeterministicAndSkewFree(t *testing.T) {
	cfg := SpanConfig{Services: 4, Requests: 3, Depth: 2, Fanout: 2, Seed: 7}
	a, err := Spans(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Spans(cfg)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic span count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].SpanID != b[i].SpanID || a[i].Service != b[i].Service || a[i].StartNS != b[i].StartNS {
			t.Fatalf("span %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	r, err := spanhb.Lower(a, spanhb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.SkewDropped != 0 {
		t.Errorf("synthetic timestamps dropped %d edges as skew", r.SkewDropped)
	}
	if r.Edges == 0 {
		t.Error("no cross-service edges generated")
	}
}

func TestSpanWorkloadViaFromSpec(t *testing.T) {
	comp, err := FromSpec("spans:services=3,requests=4,depth=1,fanout=2,seed=2")
	if err != nil {
		t.Fatal(err)
	}
	if comp.N() != 3 {
		t.Fatalf("processes = %d, want 3", comp.N())
	}
	// Overlapping requests push the root service's inflight above one.
	res, err := core.Detect(comp, ctl.MustParse("EF(inflight@P1 >= 2)"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Error("overlapping requests never concurrent at the root service")
	}
	if _, err := FromSpec("spans:services=1"); err == nil {
		t.Error("single-service span workload accepted")
	}
}

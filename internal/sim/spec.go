package sim

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/computation"
)

// FromSpec builds a workload computation from a textual spec of the form
// "name:key=val,key=val". Recognized names and their keys (with defaults):
//
//	mutex:n=3,rounds=2            token-ring mutual exclusion
//	buggymutex:n=3,rounds=1,faulty=1   mutex with an injected violation
//	election:n=4                  ring leader election
//	prodcons:producers=2,items=3  producer–consumer
//	barrier:n=3,rounds=2          barrier synchronization
//	2pc:participants=3,abort=0    two-phase commit (abort=0: all commit)
//	chain:n=2,events=20           fully sequential computation
//	grid:n=3,events=4             fully concurrent computation
//	random:n=3,events=20,seed=1   seeded random computation
//	snapshot:n=3                  Chandy–Lamport snapshot round
//	termination:workers=3,work=2  diffusing computation (Dijkstra–Scholten)
//	causal:violate=0|1            causal broadcast (optionally violated)
//	spans:services=3,requests=3,depth=2,fanout=2,seed=1
//	                              OTel-style RPC span trees lowered onto
//	                              the HB model (package spanhb)
//	fig2, fig4                    the paper's example computations
//
// Process numbers in specs are counts; the faulty/abort keys are 1-based
// process identifiers (0 disables the fault for 2pc).
func FromSpec(spec string) (*computation.Computation, error) {
	name := spec
	args := map[string]int{}
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name = spec[:i]
		for _, kv := range strings.Split(spec[i+1:], ",") {
			if kv == "" {
				continue
			}
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("sim: bad spec parameter %q", kv)
			}
			v, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("sim: bad value in %q: %v", kv, err)
			}
			args[parts[0]] = v
		}
	}
	get := func(key string, def int) int {
		if v, ok := args[key]; ok {
			return v
		}
		return def
	}
	switch name {
	case "mutex":
		return TokenRingMutex(get("n", 3), get("rounds", 2)), nil
	case "buggymutex":
		return BuggyMutex(get("n", 3), get("rounds", 1), get("faulty", 1)-1), nil
	case "election":
		return LeaderElection(get("n", 4)), nil
	case "prodcons":
		return ProducerConsumer(get("producers", 2), get("items", 3)), nil
	case "barrier":
		return Barrier(get("n", 3), get("rounds", 2)), nil
	case "2pc":
		return TwoPhaseCommit(get("participants", 3), get("abort", 0)), nil
	case "chain":
		return Chain(get("n", 2), get("events", 20)), nil
	case "grid":
		return Grid(get("n", 3), get("events", 4)), nil
	case "random":
		cfg := DefaultRandomConfig(get("n", 3), get("events", 20))
		return Random(cfg, int64(get("seed", 1))), nil
	case "snapshot":
		return Snapshot(get("n", 3)), nil
	case "termination":
		return Termination(get("workers", 3), get("work", 2)), nil
	case "causal":
		return CausalBroadcast(get("violate", 0) != 0), nil
	case "spans":
		return SpanWorkload(SpanConfig{
			Services: get("services", 3),
			Requests: get("requests", 3),
			Depth:    get("depth", 2),
			Fanout:   get("fanout", 2),
			Seed:     int64(get("seed", 1)),
		})
	case "fig2":
		return Fig2(), nil
	case "fig4":
		return Fig4(), nil
	default:
		return nil, fmt.Errorf("sim: unknown workload %q", name)
	}
}

package sim

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/lattice"
	"repro/internal/predicate"
)

func TestSnapshotStructure(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		comp := Snapshot(n)
		final := comp.FinalCut()
		for p := 0; p < n; p++ {
			if v, _ := comp.Value(p, final[p], "recorded"); v != 1 {
				t.Errorf("n=%d: P%d never recorded", n, p+1)
			}
		}
		if !comp.ChannelsEmpty(final) {
			t.Errorf("n=%d: markers left in flight", n)
		}
		// Non-initiators end with n-1 markers.
		for p := 1; p < n; p++ {
			if v, _ := comp.Value(p, final[p], "markers"); v != n-1 {
				t.Errorf("n=%d: P%d saw %d markers, want %d", n, p+1, v, n-1)
			}
		}
	}
}

func TestSnapshotInvariants(t *testing.T) {
	comp := Snapshot(3)
	// "Everyone recorded" is stable: detect via a single observation and
	// confirm on the lattice.
	all := predicate.Conj(
		predicate.VarCmp{Proc: 0, Var: "recorded", Op: predicate.EQ, K: 1},
		predicate.VarCmp{Proc: 1, Var: "recorded", Op: predicate.EQ, K: 1},
		predicate.VarCmp{Proc: 2, Var: "recorded", Op: predicate.EQ, K: 1},
	)
	l, err := lattice.Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	if ok, g, h := l.CheckStable(all); !ok {
		t.Fatalf("\"everyone recorded\" not stable: %v → %v", g, h)
	}
	if !core.DetectObserverIndependent(comp, all) {
		t.Error("stable predicate not detected along an observation")
	}
	// Nobody records before the initiator: AG(recorded_0 = 1 ∨
	// recorded_i = 0) for each i.
	for p := 1; p < 3; p++ {
		d := predicate.Disj(
			predicate.VarCmp{Proc: 0, Var: "recorded", Op: predicate.EQ, K: 1},
			predicate.VarCmp{Proc: p, Var: "recorded", Op: predicate.EQ, K: 0},
		)
		res, err := core.Detect(comp, ctl.AG{F: ctl.Atom{P: d}})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Holds {
			t.Errorf("P%d can record before the initiator (cex %v)", p+1, res.Counterexample)
		}
	}
}

func TestTerminationDetection(t *testing.T) {
	comp := Termination(3, 2)
	locals := make([]predicate.LocalPredicate, 0, comp.N())
	for p := 0; p < comp.N(); p++ {
		locals = append(locals, predicate.VarCmp{Proc: p, Var: "active", Op: predicate.EQ, K: 0})
	}
	terminated := predicate.AndLinear{Ps: []predicate.Linear{
		predicate.Conjunctive{Locals: locals},
		predicate.ChannelsEmpty{},
	}}
	// The stable termination predicate is detectable from any single
	// observation and via advancement; both must agree.
	l, err := lattice.Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	if ok, g, h := l.CheckStable(terminated); !ok {
		t.Fatalf("termination predicate not stable: %v → %v", g, h)
	}
	cut, ok := core.LeastCut(comp, terminated)
	if !ok {
		t.Fatal("termination never detected")
	}
	if !cut.Equal(comp.FinalCut()) {
		t.Errorf("termination detected early at %v", cut)
	}
	if !core.DetectObserverIndependent(comp, terminated) {
		t.Error("single-observation detection missed termination")
	}
	// Before the root goes passive, termination must not hold anywhere.
	pre := comp.FinalCut()
	pre[0]--
	if terminated.Eval(comp, pre) {
		t.Error("terminated while the root is still active")
	}
}

func TestCausalBroadcast(t *testing.T) {
	// Causal delivery invariant: got_r = 1 implies got_b = 1 on P3.
	inv := ctl.AG{F: ctl.Atom{P: predicate.Disj(
		predicate.VarCmp{Proc: 2, Var: "got_r", Op: predicate.EQ, K: 0},
		predicate.VarCmp{Proc: 2, Var: "got_b", Op: predicate.EQ, K: 1},
	)}}
	good := CausalBroadcast(false)
	res, err := core.Detect(good, inv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("causal trace violates the invariant at %v", res.Counterexample)
	}
	bad := CausalBroadcast(true)
	res, err = core.Detect(bad, inv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("violating trace passes the invariant")
	}
	if res.Counterexample == nil {
		t.Fatal("no counterexample produced")
	}
	// The counterexample exposes got_r = 1 with got_b = 0 on P3.
	if v, _ := bad.Value(2, res.Counterexample[2], "got_r"); v != 1 {
		t.Errorf("counterexample %v does not show the reply delivered", res.Counterexample)
	}
	if v, _ := bad.Value(2, res.Counterexample[2], "got_b"); v != 0 {
		t.Errorf("counterexample %v does not show the broadcast missing", res.Counterexample)
	}
}

func TestCausalBroadcastEventualDelivery(t *testing.T) {
	for _, violate := range []bool{false, true} {
		comp := CausalBroadcast(violate)
		if !comp.ChannelsEmpty(comp.FinalCut()) {
			t.Errorf("violate=%v: messages left in flight", violate)
		}
		final := comp.FinalCut()
		for _, v := range []string{"got_b", "got_r"} {
			if x, _ := comp.Value(2, final[2], v); x != 1 {
				t.Errorf("violate=%v: %s = %d at the end", violate, v, x)
			}
		}
	}
}

func TestProtocolSpecs(t *testing.T) {
	for _, spec := range []string{"snapshot:n=3", "causal:violate=1", "causal"} {
		comp, err := FromSpec(spec)
		if err != nil {
			t.Errorf("FromSpec(%q): %v", spec, err)
			continue
		}
		if comp.TotalEvents() == 0 {
			t.Errorf("FromSpec(%q): empty computation", spec)
		}
		if !comp.Consistent(comp.FinalCut()) {
			t.Errorf("FromSpec(%q): inconsistent final cut", spec)
		}
	}
	var _ computation.Cut // keep import if assertions change
}

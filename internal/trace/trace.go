// Package trace serializes computations to a versioned JSON format and
// loads them back, so traces can be generated once (cmd/tracegen), shipped,
// and analyzed by the CLI tools (cmd/hbdetect, cmd/latticeviz).
//
// The format lists events in a valid global order (every receive after its
// send); vector clocks are not stored — they are recomputed on load, which
// also revalidates the trace.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/computation"
)

// Version is the current trace format version.
const Version = 1

// MaxProcesses bounds the process count Build accepts. Per-process state
// is allocated up front, and trace files now also arrive from untrusted
// network peers (hbserver snapshots, fuzzed inputs), so a hostile
// "processes": 1e9 header must fail fast instead of exhausting memory.
const MaxProcesses = 1 << 16

// File is the on-disk representation of a computation.
type File struct {
	Version   int        `json:"version"`
	Processes int        `json:"processes"`
	Initial   []InitVar  `json:"initial,omitempty"`
	Events    []EventRec `json:"events"`
}

// InitVar records an initial variable value; processes are 1-based in the
// format, matching the paper's notation.
type InitVar struct {
	Proc  int    `json:"proc"`
	Var   string `json:"var"`
	Value int    `json:"value"`
}

// EventRec is one event. Kind is "internal", "send" or "receive"; Msg links
// sends to receives.
type EventRec struct {
	Proc  int            `json:"proc"`
	Kind  string         `json:"kind"`
	Msg   int            `json:"msg,omitempty"`
	Label string         `json:"label,omitempty"`
	Sets  map[string]int `json:"sets,omitempty"`
}

// Encode writes comp as JSON to w.
func Encode(w io.Writer, comp *computation.Computation) error {
	f := FileFrom(comp)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// FileFrom converts comp to its serialized form: initial values plus the
// events of one valid linearization. Useful on its own when a computation
// produced in memory (e.g. a lowered span trace) must be persisted or
// re-streamed without an intermediate encode/decode round-trip.
func FileFrom(comp *computation.Computation) File {
	f := File{Version: Version, Processes: comp.N()}
	for i := 0; i < comp.N(); i++ {
		for _, name := range comp.Vars(i) {
			if v, ok := comp.Value(i, 0, name); ok && v != 0 {
				f.Initial = append(f.Initial, InitVar{Proc: i + 1, Var: name, Value: v})
			}
		}
	}
	// Emit events in a valid global order via a linearization.
	seq := comp.SomeLinearization()
	for s := 1; s < len(seq); s++ {
		prev, cur := seq[s-1], seq[s]
		for i := range cur {
			if cur[i] > prev[i] {
				e := comp.Event(i, cur[i])
				rec := EventRec{Proc: i + 1, Kind: e.Kind.String(), Label: e.Label}
				if e.Kind != computation.Internal {
					rec.Msg = e.Msg
				}
				if len(e.Sets) > 0 {
					rec.Sets = make(map[string]int, len(e.Sets))
					for k, v := range e.Sets {
						rec.Sets[k] = v
					}
				}
				f.Events = append(f.Events, rec)
				break
			}
		}
	}
	return f
}

// Decode reads a JSON trace from r, validates it, and rebuilds the
// computation (including vector clocks).
func Decode(r io.Reader) (*computation.Computation, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return Build(f)
}

// Build constructs the computation described by a File.
func Build(f File) (*computation.Computation, error) {
	if f.Version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", f.Version, Version)
	}
	if f.Processes < 1 || f.Processes > MaxProcesses {
		return nil, fmt.Errorf("trace: %d processes (want 1..%d)", f.Processes, MaxProcesses)
	}
	b := computation.NewBuilder(f.Processes)
	for _, iv := range f.Initial {
		if iv.Proc < 1 || iv.Proc > f.Processes {
			return nil, fmt.Errorf("trace: initial value for unknown process %d", iv.Proc)
		}
		b.SetInitial(iv.Proc-1, iv.Var, iv.Value)
	}
	msgs := make(map[int]computation.Msg)
	for idx, rec := range f.Events {
		if rec.Proc < 1 || rec.Proc > f.Processes {
			return nil, fmt.Errorf("trace: event %d on unknown process %d", idx, rec.Proc)
		}
		proc := rec.Proc - 1
		var e *computation.Event
		switch rec.Kind {
		case "internal", "":
			e = b.Internal(proc)
		case "send":
			var m computation.Msg
			e, m = b.Send(proc)
			if _, dup := msgs[rec.Msg]; dup {
				return nil, fmt.Errorf("trace: event %d resends message %d", idx, rec.Msg)
			}
			msgs[rec.Msg] = m
		case "receive":
			m, ok := msgs[rec.Msg]
			if !ok {
				return nil, fmt.Errorf("trace: event %d receives message %d before its send", idx, rec.Msg)
			}
			e = b.Receive(proc, m)
		default:
			return nil, fmt.Errorf("trace: event %d has unknown kind %q", idx, rec.Kind)
		}
		e.Label = rec.Label
		// Apply variable assignments in deterministic order.
		names := make([]string, 0, len(rec.Sets))
		for name := range rec.Sets {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			computation.Set(e, name, rec.Sets[name])
		}
	}
	comp, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return comp, nil
}

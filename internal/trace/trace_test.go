package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/computation"
	"repro/internal/sim"
)

// sameComputation compares two computations structurally: dimensions,
// event kinds/labels, vector clocks, and all local-state valuations.
func sameComputation(t *testing.T, a, b *computation.Computation) {
	t.Helper()
	if a.N() != b.N() {
		t.Fatalf("process counts differ: %d vs %d", a.N(), b.N())
	}
	for i := 0; i < a.N(); i++ {
		if a.Len(i) != b.Len(i) {
			t.Fatalf("P%d event counts differ: %d vs %d", i+1, a.Len(i), b.Len(i))
		}
		for k := 1; k <= a.Len(i); k++ {
			ea, eb := a.Event(i, k), b.Event(i, k)
			if ea.Kind != eb.Kind || ea.Label != eb.Label {
				t.Errorf("event (%d,%d): %v/%q vs %v/%q", i, k, ea.Kind, ea.Label, eb.Kind, eb.Label)
			}
			if !ea.Clock.Equal(eb.Clock) {
				t.Errorf("event (%d,%d) clocks differ: %v vs %v", i, k, ea.Clock, eb.Clock)
			}
		}
		va, vb := a.Vars(i), b.Vars(i)
		if len(va) != len(vb) {
			t.Fatalf("P%d vars differ: %v vs %v", i+1, va, vb)
		}
		for vi, name := range va {
			if vb[vi] != name {
				t.Fatalf("P%d vars differ: %v vs %v", i+1, va, vb)
			}
			for k := 0; k <= a.Len(i); k++ {
				x, _ := a.Value(i, k, name)
				y, _ := b.Value(i, k, name)
				if x != y {
					t.Errorf("value %s@P%d state %d: %d vs %d", name, i+1, k, x, y)
				}
			}
		}
	}
	// Message structure.
	ma, mb := a.Messages(), b.Messages()
	if len(ma) != len(mb) {
		t.Fatalf("message counts differ: %d vs %d", len(ma), len(mb))
	}
}

func TestRoundTripFixtures(t *testing.T) {
	for name, comp := range map[string]*computation.Computation{
		"fig2": sim.Fig2(),
		"fig4": sim.Fig4(),
	} {
		var buf bytes.Buffer
		if err := Encode(&buf, comp); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		sameComputation(t, comp, back)
	}
}

func TestRoundTripRandom(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		comp := sim.Random(sim.DefaultRandomConfig(4, 30), seed)
		var buf bytes.Buffer
		if err := Encode(&buf, comp); err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		sameComputation(t, comp, back)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad version", `{"version":99,"processes":1,"events":[]}`},
		{"no processes", `{"version":1,"processes":0,"events":[]}`},
		{"bad proc", `{"version":1,"processes":1,"events":[{"proc":2,"kind":"internal"}]}`},
		{"bad kind", `{"version":1,"processes":1,"events":[{"proc":1,"kind":"warp"}]}`},
		{"recv before send", `{"version":1,"processes":2,"events":[{"proc":1,"kind":"receive","msg":1}]}`},
		{"duplicate send id", `{"version":1,"processes":2,"events":[{"proc":1,"kind":"send","msg":1},{"proc":1,"kind":"send","msg":1}]}`},
		{"self receive", `{"version":1,"processes":2,"events":[{"proc":1,"kind":"send","msg":1},{"proc":1,"kind":"receive","msg":1}]}`},
		{"unknown field", `{"version":1,"processes":1,"events":[],"bogus":3}`},
		{"bad initial proc", `{"version":1,"processes":1,"initial":[{"proc":9,"var":"x","value":1}],"events":[]}`},
		{"not json", `hello`},
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: decode succeeded", c.name)
		}
	}
}

func TestEncodeOmitsZeroInitials(t *testing.T) {
	b := computation.NewBuilder(1)
	b.SetInitial(0, "x", 0)
	computation.Set(b.Internal(0), "x", 1)
	var buf bytes.Buffer
	if err := Encode(&buf, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"initial"`) {
		t.Errorf("zero initial values should be omitted:\n%s", buf.String())
	}
}

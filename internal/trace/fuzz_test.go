package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// FuzzDecode asserts the decoder never panics on arbitrary input and that
// any successfully decoded trace re-encodes and decodes to a computation
// of identical shape.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := Encode(&buf, sim.Fig4()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	buf.Reset()
	if err := Encode(&buf, sim.TokenRingMutex(3, 1)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"processes":2,"events":[{"proc":1,"kind":"send","msg":1},{"proc":2,"kind":"receive","msg":1}]}`)
	f.Add(`{"version":1,"processes":1,"events":[]}`)
	f.Add(`{"version":1,"processes":-1}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add("\x00\x01\x02")
	// Hostile inputs: the decoder feeds untrusted network bytes (hbserver),
	// so resource-exhaustion headers must error before allocating.
	f.Add(`{"version":1,"processes":1000000000,"events":[]}`)
	f.Add(`{"version":1,"processes":9223372036854775807,"events":[]}`)
	f.Add(`{"version":1,"processes":2,"events":[{"proc":1,"kind":"send","msg":9223372036854775807}]}`)
	f.Add(`{"version":1,"processes":1,"initial":[{"proc":1,"var":"` + strings.Repeat("x", 1<<10) + `","value":1}],"events":[]}`)
	f.Add(`{"version":1.5,"processes":1,"events":[]}`)
	f.Add(`{"version":1,"processes":1,"events":[{"proc":1,"kind":"internal","sets":{"x":1e309}}]}`)
	f.Add(`{"version":1,"processes":1,"events":null}`)

	f.Fuzz(func(t *testing.T, input string) {
		comp, err := Decode(strings.NewReader(input))
		if err != nil {
			return
		}
		if comp.N() > MaxProcesses {
			t.Fatalf("decoder accepted %d processes (bound %d)", comp.N(), MaxProcesses)
		}
		var out bytes.Buffer
		if err := Encode(&out, comp); err != nil {
			t.Fatalf("decoded computation fails to encode: %v", err)
		}
		back, err := Decode(&out)
		if err != nil {
			t.Fatalf("re-encoded trace fails to decode: %v\n%s", err, out.String())
		}
		if back.N() != comp.N() || back.TotalEvents() != comp.TotalEvents() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				comp.N(), comp.TotalEvents(), back.N(), back.TotalEvents())
		}
	})
}

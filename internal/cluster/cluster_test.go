package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
)

// The scripted 3-process computation and its offline ground truth are
// duplicated from the server package's tests (those helpers are
// unexported test code): the cluster acceptance bar is the same —
// verdicts bit-identical to offline core.Detect at the exact determining
// prefixes — with node death and cross-node resume added on top.

type step struct {
	proc int // 0-based
	kind computation.Kind
	msg  int
	sets map[string]int
}

// script is the deterministic token-pass computation; with extra=1 the
// AG invariant conj(x@P3 <= 1) is violated at event 6.
func script(extra int) []step {
	return []step{
		{proc: 0, kind: computation.Internal, sets: map[string]int{"x": 1}},
		{proc: 0, kind: computation.Send, msg: 1},
		{proc: 1, kind: computation.Receive, msg: 1, sets: map[string]int{"x": 1}},
		{proc: 1, kind: computation.Send, msg: 2},
		{proc: 2, kind: computation.Receive, msg: 2, sets: map[string]int{"x": 1}},
		{proc: 2, kind: computation.Internal, sets: map[string]int{"x": 1 + extra}},
		{proc: 0, kind: computation.Internal, sets: map[string]int{"x": 2}},
	}
}

const (
	efPred     = "conj(x@P1 == 1, x@P2 == 1, x@P3 == 1)"
	agPred     = "conj(x@P3 <= 1)"
	stablePred = "conj(x@P3 >= 1)"
)

func watches() []server.Watch {
	return []server.Watch{
		{Op: "EF", Pred: efPred},
		{Op: "AG", Pred: agPred},
		{Op: "STABLE", Pred: stablePred},
	}
}

// buildPrefix constructs the computation of the first k scripted events.
func buildPrefix(t *testing.T, steps []step, k int) *computation.Computation {
	t.Helper()
	b := computation.NewBuilder(3)
	for p := 0; p < 3; p++ {
		b.SetInitial(p, "x", 0)
	}
	msgs := make(map[int]computation.Msg)
	for _, s := range steps[:k] {
		var e *computation.Event
		switch s.kind {
		case computation.Internal:
			e = b.Internal(s.proc)
		case computation.Send:
			var m computation.Msg
			e, m = b.Send(s.proc)
			msgs[s.msg] = m
		case computation.Receive:
			e = b.Receive(s.proc, msgs[s.msg])
		}
		for name, v := range s.sets {
			computation.Set(e, name, v)
		}
	}
	comp, err := b.Build()
	if err != nil {
		t.Fatalf("prefix %d: %v", k, err)
	}
	return comp
}

// streamRange replays steps[from:to] into a wire session, sending the
// initial values first when inits is set.
func streamRange(sess *client.Session, steps []step, from, to int, inits bool) {
	if inits {
		for p := 0; p < 3; p++ {
			sess.SetInitial(p, "x", 0)
		}
	}
	for _, s := range steps[from:to] {
		switch s.kind {
		case computation.Internal:
			sess.Internal(s.proc, s.sets)
		case computation.Send:
			sess.SendMsg(s.proc, s.msg, s.sets)
		case computation.Receive:
			sess.Receive(s.proc, s.msg, s.sets)
		}
	}
}

// exactPrefix asserts that formula evaluates to holdsAt on the first k
// scripted events and to !holdsAt on the first k-1.
func exactPrefix(t *testing.T, steps []step, k int, formula string, holdsAt bool) error {
	t.Helper()
	f := ctl.MustParse(formula)
	at, err := core.Detect(buildPrefix(t, steps, k), f)
	if err != nil {
		return err
	}
	if at.Holds != holdsAt {
		return fmt.Errorf("prefix %d: %s = %v, want %v", k, formula, at.Holds, holdsAt)
	}
	if k == 0 {
		return nil
	}
	before, err := core.Detect(buildPrefix(t, steps, k-1), f)
	if err != nil {
		return err
	}
	if before.Holds == holdsAt {
		return fmt.Errorf("prefix %d already decides %s — verdict latched late", k-1, formula)
	}
	return nil
}

// verifyVerdicts checks a finished session's latched frames against
// offline detection on the full computation: same verdicts, exact
// determining prefixes, no duplicates, no semantic errors.
func verifyVerdicts(t *testing.T, steps []step, latched []server.ServerFrame) error {
	t.Helper()
	full := buildPrefix(t, steps, len(steps))
	verdicts := make(map[int]server.ServerFrame)
	for _, fr := range latched {
		switch fr.Type {
		case server.FrameError:
			return fmt.Errorf("unexpected error frame: %s (%s)", fr.Error, fr.Code)
		case server.FrameVerdict:
			if _, dup := verdicts[fr.Watch]; dup {
				return fmt.Errorf("watch %d latched twice (replay dedupe broken)", fr.Watch)
			}
			verdicts[fr.Watch] = fr
		}
	}
	efOffline, _ := core.Detect(full, ctl.MustParse("EF("+efPred+")"))
	fr, fired := verdicts[0]
	if fired != efOffline.Holds {
		return fmt.Errorf("EF fired=%v, offline=%v", fired, efOffline.Holds)
	}
	if fired {
		if err := exactPrefix(t, steps, fr.Event, "EF("+efPred+")", true); err != nil {
			return fmt.Errorf("EF latch: %v", err)
		}
	}
	agOffline, _ := core.Detect(full, ctl.MustParse("AG("+agPred+")"))
	fr, violated := verdicts[1]
	if violated != !agOffline.Holds {
		return fmt.Errorf("AG violated=%v, offline holds=%v", violated, agOffline.Holds)
	}
	if violated {
		if err := exactPrefix(t, steps, fr.Event, "AG("+agPred+")", false); err != nil {
			return fmt.Errorf("AG latch: %v", err)
		}
	}
	fr, ok := verdicts[2]
	if !ok {
		return fmt.Errorf("STABLE watch never fired")
	}
	if fr.Event != 5 {
		return fmt.Errorf("STABLE fired at event %d, want 5", fr.Event)
	}
	return nil
}

// testCluster is a 3-node in-process detection cluster. Each node serves
// on a loopback listener wrapped in a KillableListener so a test can
// crash it; in chaos mode every node additionally sits behind a flaky
// proxy — the proxy addresses are the ring identities clients dial,
// while replication links dial the real listeners via ReplTargets.
type testCluster struct {
	t       *testing.T
	nodes   []*cluster.Node
	kls     []*faults.KillableListener
	regs    []*obs.Registry
	ids     []string
	proxies []*faults.Proxy

	stopOnce sync.Once
}

func startCluster(t *testing.T, nNodes int, chaos bool, seed int64) *testCluster {
	t.Helper()
	return startClusterMode(t, nNodes, chaos, seed, cluster.Available)
}

// startClusterMode is startCluster with an explicit node-default
// durability mode (the -cluster-durability flag of a real node); keyed
// hellos without their own override inherit it.
func startClusterMode(t *testing.T, nNodes int, chaos bool, seed int64, mode cluster.Durability) *testCluster {
	t.Helper()
	h := &testCluster{t: t}
	lns := make([]net.Listener, nNodes)
	targets := make(map[string]string, nNodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		h.kls = append(h.kls, faults.WrapKillable(ln))
		id := ln.Addr().String()
		if chaos {
			up := faults.Config{Seed: seed + int64(i), Reset: 0.02, Partial: 0.01, Drop: 0.03, Dup: 0.05, Delay: 0.10, MaxDelay: 2 * time.Millisecond}
			down := up
			down.Drop = 0 // silent downstream drops are undetectable by design
			p, err := faults.NewProxyAsym(ln.Addr().String(), up, down)
			if err != nil {
				t.Fatal(err)
			}
			h.proxies = append(h.proxies, p)
			id = p.Addr()
		}
		h.ids = append(h.ids, id)
		targets[id] = ln.Addr().String()
	}
	for i := range lns {
		reg := obs.NewRegistry()
		h.regs = append(h.regs, reg)
		n, err := cluster.New(
			server.Config{AckEvery: 2, IdleTimeout: 3 * time.Second, Registry: reg},
			cluster.NodeConfig{Self: h.ids[i], Peers: h.ids, Replicas: 2, ReplTargets: targets, Registry: reg, Durability: mode},
		)
		if err != nil {
			t.Fatal(err)
		}
		h.nodes = append(h.nodes, n)
		go n.Serve(h.kls[i]) //nolint:errcheck // closed by Shutdown
	}
	t.Cleanup(h.stop)
	return h
}

// stop shuts the whole cluster down (idempotent; also registered as the
// test cleanup so every path winds down).
func (h *testCluster) stop() {
	h.stopOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for i, n := range h.nodes {
			if err := n.Shutdown(ctx); err != nil {
				h.t.Errorf("shutdown node %d: %v", i, err)
			}
		}
		for _, p := range h.proxies {
			p.Close()
		}
	})
}

// index returns the node slot of a ring identity.
func (h *testCluster) index(id string) int {
	for i, v := range h.ids {
		if v == id {
			return i
		}
	}
	h.t.Fatalf("identity %q not in cluster %v", id, h.ids)
	return -1
}

// clientConfig is the ring-aware base config the cluster tests share.
func clientConfig(key string, peers []string, jitter int64) client.Config {
	return client.Config{
		Processes:   3,
		Watches:     watches(),
		Key:         key,
		Peers:       peers,
		Reconnect:   true,
		DialTimeout: 500 * time.Millisecond,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		MaxAttempts: 60,
		JitterSeed:  jitter,
	}
}

// TestClusterPlacementAndRedirect: a keyed hello lands on the key's
// owner, replicates to exactly the ring successor, and a node outside
// the key's placement rejects the hello with a typed not-owner redirect
// naming the owner.
func TestClusterPlacementAndRedirect(t *testing.T) {
	h := startCluster(t, 3, false, 0)
	key := "placement-alpha"
	succ := h.nodes[0].Ring().Successors(key, 3)
	owner, replica, outside := succ[0], succ[1], succ[2]

	// A single-address keyed client pointed at the non-placement node is
	// rejected with the typed redirect (satellite: ErrNotOwner surfaces
	// through errors.As with the owner to dial).
	cfg := clientConfig(key, nil, 1)
	_, err := client.Dial(outside, cfg)
	if err == nil {
		t.Fatalf("keyed hello on non-placement node %s succeeded", outside)
	}
	var eno *client.ErrNotOwner
	if !errors.As(err, &eno) {
		t.Fatalf("hello rejection is not ErrNotOwner: %v", err)
	}
	if eno.Owner != owner {
		t.Fatalf("redirect owner = %q, want %q", eno.Owner, owner)
	}
	if v := h.regs[h.index(outside)].Counter("hb_cluster_redirects_total", "").Value(); v == 0 {
		t.Errorf("non-placement node counted no redirects")
	}

	// The ring-aware client opens on the owner and the whole session —
	// hello through bye — replicates to the successor.
	steps := script(1)
	sess, err := client.Dial("", clientConfig(key, h.ids, 2))
	if err != nil {
		t.Fatal(err)
	}
	streamRange(sess, steps, 0, len(steps), true)
	gb, err := sess.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if gb.Events != len(steps) || gb.Dropped != 0 {
		t.Fatalf("goodbye %d events (%d dropped), want %d (0)", gb.Events, gb.Dropped, len(steps))
	}
	if err := verifyVerdicts(t, steps, sess.Latched()); err != nil {
		t.Fatal(err)
	}

	// 3 inits + 7 events + 1 bye, replicated once each to the successor.
	wantFrames := int64(len(steps)) + 4
	replicaReg := h.regs[h.index(replica)]
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v := replicaReg.Counter("hb_cluster_repl_frames_recv_total", "").Value(); v >= wantFrames {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %s received %d frames, want %d", replica,
				replicaReg.Counter("hb_cluster_repl_frames_recv_total", "").Value(), wantFrames)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := h.regs[h.index(outside)].Counter("hb_cluster_repl_frames_recv_total", "").Value(); v != 0 {
		t.Errorf("non-placement node received %d replication frames, want 0", v)
	}
	if v := h.regs[h.index(owner)].Counter("hb_cluster_repl_frames_sent_total", "").Value(); v < wantFrames {
		t.Errorf("owner sent %d replication frames, want >= %d", v, wantFrames)
	}
}

// TestClusterFailoverDeterministic kills a session's home node
// mid-stream (no network faults, so the schedule is exact) and asserts
// the client resumes on the replica, finishes the computation there, and
// latches verdicts bit-identical to offline detection.
func TestClusterFailoverDeterministic(t *testing.T) {
	h := startCluster(t, 3, false, 0)
	key := "det-failover"
	succ := h.nodes[0].Ring().Successors(key, 2)
	owner, replica := h.index(succ[0]), h.index(succ[1])
	steps := script(1)

	sess, err := client.Dial("", clientConfig(key, h.ids, 3))
	if err != nil {
		t.Fatal(err)
	}
	streamRange(sess, steps, 0, 4, true) // 3 inits + 4 events

	// Wait until the replica holds everything streamed so far: the kill
	// must test recovery, not the availability-over-durability window of
	// a session whose replica link is still dialing.
	deadline := time.Now().Add(5 * time.Second)
	for h.regs[replica].Counter("hb_cluster_repl_frames_recv_total", "").Value() < 7 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: %d frames",
				h.regs[replica].Counter("hb_cluster_repl_frames_recv_total", "").Value())
		}
		time.Sleep(2 * time.Millisecond)
	}

	h.kls[owner].Kill()
	streamRange(sess, steps, 4, len(steps), false)
	gb, err := sess.Close()
	if err != nil {
		t.Fatalf("close after failover: %v", err)
	}
	if gb.Events != len(steps) || gb.Dropped != 0 {
		t.Fatalf("goodbye %d events (%d dropped), want %d (0)", gb.Events, gb.Dropped, len(steps))
	}
	if err := verifyVerdicts(t, steps, sess.Latched()); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.Reconnects == 0 {
		t.Errorf("session finished without reconnecting despite the owner dying")
	}
	if v := h.regs[replica].Counter("hb_cluster_failovers_total", "").Value(); v != 1 {
		t.Errorf("replica failovers_total = %d, want 1", v)
	}
}

// TestClusterResumeNotOwnerTyped is the client regression test for the
// typed not-owner rejection on the resume path: a single-address client
// whose reconnect lands on a non-placement node fails sticky with an
// error that unwraps to ErrNotOwner carrying the owner's address.
func TestClusterResumeNotOwnerTyped(t *testing.T) {
	h := startCluster(t, 3, false, 0)
	key := "resume-redirect"
	succ := h.nodes[0].Ring().Successors(key, 3)
	owner, outside := succ[0], succ[2]

	var mu sync.Mutex
	target := owner
	cfg := clientConfig(key, nil, 4)
	cfg.MaxAttempts = 6
	cfg.Dial = func(string) (net.Conn, error) {
		mu.Lock()
		addr := target
		mu.Unlock()
		return net.DialTimeout("tcp", addr, 2*time.Second)
	}
	sess, err := client.Dial(owner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := script(0)
	streamRange(sess, steps, 0, 2, true)

	// Point every future dial at the non-placement node, then crash the
	// owner: the resume is rejected with the redirect, and a
	// single-address session cannot follow it.
	mu.Lock()
	target = outside
	mu.Unlock()
	h.kls[h.index(owner)].Kill()

	select {
	case <-sess.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("session did not fail after redirect rejection")
	}
	var eno *client.ErrNotOwner
	if !errors.As(sess.Err(), &eno) {
		t.Fatalf("sticky error is not ErrNotOwner: %v", sess.Err())
	}
	if eno.Owner != owner {
		t.Fatalf("redirect owner = %q, want %q", eno.Owner, owner)
	}
}

// chaosSeeds mirrors the server chaos harness: HB_CHAOS_SEEDS sweeps a
// matrix in CI; the default keeps local runs fast but still seeded.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	spec := os.Getenv("HB_CHAOS_SEEDS")
	if spec == "" {
		spec = "1,7"
	}
	var seeds []int64
	for _, s := range strings.Split(spec, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			t.Fatalf("HB_CHAOS_SEEDS: %v", err)
		}
		seeds = append(seeds, v)
	}
	return seeds
}

// durabilityModes mirrors chaosSeeds for the ack-gate axis of the chaos
// matrix: HB_CLUSTER_DURABILITY selects which modes CI sweeps; the
// default runs both.
func durabilityModes(t *testing.T) []cluster.Durability {
	t.Helper()
	spec := os.Getenv("HB_CLUSTER_DURABILITY")
	if spec == "" {
		spec = "available,durable"
	}
	var modes []cluster.Durability
	for _, s := range strings.Split(spec, ",") {
		m, err := cluster.ParseDurability(strings.TrimSpace(s))
		if err != nil {
			t.Fatalf("HB_CLUSTER_DURABILITY: %v", err)
		}
		modes = append(modes, m)
	}
	return modes
}

// TestClusterChaosFailover is the cluster acceptance test: keyed
// sessions stream through flaky proxies at a 3-node cluster with
// replication factor 2; mid-stream their common home node is killed and
// never comes back. Every session must fail over to its replica and
// latch exactly the verdicts of offline core.Detect at the exact
// determining prefixes, and no goroutine may leak. The matrix runs both
// durability modes: in durable mode the promoted sessions finish with
// their ack gate stalled on the dead ex-owner (their new replica set
// contains it), which must degrade acks — never verdicts or the
// goodbye.
func TestClusterChaosFailover(t *testing.T) {
	for _, mode := range durabilityModes(t) {
		for _, seed := range chaosSeeds(t) {
			t.Run(fmt.Sprintf("durability=%s/seed=%d", mode, seed),
				func(t *testing.T) { runClusterChaos(t, seed, mode) })
		}
	}
}

func runClusterChaos(t *testing.T, seed int64, mode cluster.Durability) {
	baseline := runtime.NumGoroutine()
	h := startClusterMode(t, 3, true, seed, mode)

	// Every session's key is owned by the victim node, so one kill takes
	// out every session's home mid-stream.
	const sessions = 8
	victim := 0
	var keys []string
	for j := 0; len(keys) < sessions; j++ {
		k := fmt.Sprintf("chaos-%d-%d", seed, j)
		if h.nodes[0].Ring().Owner(k) == h.ids[victim] {
			keys = append(keys, k)
		}
	}

	var wg sync.WaitGroup
	var ready sync.WaitGroup
	ready.Add(sessions)
	killed := make(chan struct{})
	errs := make(chan error, sessions*2)
	fail := func(format string, args ...any) { errs <- fmt.Errorf(format, args...) }
	var mu sync.Mutex
	var reconnects, replayed, goodbyes int

	for i, key := range keys {
		wg.Add(1)
		go func(i int, key string) {
			defer wg.Done()
			signalled := false
			signal := func() {
				if !signalled {
					signalled = true
					ready.Done()
				}
			}
			defer signal()
			steps := script(i % 2)
			cfg := clientConfig(key, h.ids, seed+int64(i))
			cfg.DialTimeout = 300 * time.Millisecond
			var sess *client.Session
			var derr error
			for try := 0; try < 10; try++ {
				if sess, derr = client.Dial("", cfg); derr == nil {
					break
				}
			}
			if derr != nil {
				fail("session %d: dial never succeeded: %v", i, derr)
				return
			}
			streamRange(sess, steps, 0, 4, true)
			signal()
			<-killed
			streamRange(sess, steps, 4, len(steps), false)
			gb, cerr := sess.Close()
			if cerr != nil && gb == nil {
				// Tolerated: the goodbye itself can be lost after the
				// session is already over server-side; verdicts are
				// verified below regardless.
				t.Logf("session %d: close without goodbye: %v", i, cerr)
			} else if cerr != nil {
				fail("session %d: close: %v", i, cerr)
				return
			}
			if gb != nil {
				if gb.Events != len(steps) || gb.Dropped != 0 {
					fail("session %d: goodbye %d events (%d dropped), want %d (0)", i, gb.Events, gb.Dropped, len(steps))
				}
				mu.Lock()
				goodbyes++
				mu.Unlock()
			}
			st := sess.Stats()
			mu.Lock()
			reconnects += st.Reconnects
			replayed += st.Replayed
			mu.Unlock()
			if err := verifyVerdicts(t, steps, sess.Latched()); err != nil {
				fail("session %d: %v", i, err)
			}
		}(i, key)
	}

	ready.Wait()
	h.kls[victim].Kill()
	close(killed)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var failovers, redirects, resyncs, dropped, degraded int64
	for _, reg := range h.regs {
		failovers += reg.Counter("hb_cluster_failovers_total", "").Value()
		redirects += reg.Counter("hb_cluster_redirects_total", "").Value()
		resyncs += reg.Counter("hb_cluster_repl_resyncs_total", "").Value()
		dropped += reg.Counter("hb_server_events_dropped_total", "").Value()
		degraded += reg.Gauge("hb_cluster_degraded_sessions", "").Value()
	}
	if failovers == 0 {
		t.Errorf("no session was promoted from a replica log despite the owner dying")
	}
	if dropped != 0 {
		t.Errorf("events_dropped_total = %d on resumable sessions, want 0", dropped)
	}
	if mode == cluster.Durable && degraded == 0 {
		// The promoted sessions replicate back to the dead victim; with a
		// durable gate they must finish degraded, not quietly ack an
		// unreplicated tail.
		t.Errorf("durable mode: no session reported degraded despite the victim staying dead")
	}
	t.Logf("seed %d (%s): %d failovers, %d redirects, %d link resyncs, %d reconnects, %d frames replayed, %d/%d goodbyes, %d degraded",
		seed, mode, failovers, redirects, resyncs, reconnects, replayed, goodbyes, sessions, degraded)

	h.stop()

	// Zero goroutine leaks: monitor loops, link goroutines, proxy pumps,
	// readers and reconnect loops must all have wound down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			pprof.Lookup("goroutine").WriteTo(os.Stderr, 1) //nolint:errcheck
			t.Fatalf("goroutine leak: %d live, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

package cluster_test

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/server/client"
)

func TestParseDurability(t *testing.T) {
	cases := []struct {
		in   string
		want cluster.Durability
		err  bool
	}{
		{"", cluster.Available, false},
		{"available", cluster.Available, false},
		{"durable", cluster.Durable, false},
		{"DURABLE", 0, true},
		{"quorum", 0, true},
	}
	for _, c := range cases {
		got, err := cluster.ParseDurability(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseDurability(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseDurability(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, d := range []cluster.Durability{cluster.Available, cluster.Durable} {
		if rt, err := cluster.ParseDurability(d.String()); err != nil || rt != d {
			t.Errorf("String round-trip of %v = %v, %v", d, rt, err)
		}
	}
}

// pollAcked waits until the session's acked watermark reaches want.
func pollAcked(t *testing.T, sess *client.Session, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for sess.Acked() < want {
		if time.Now().After(deadline) {
			t.Fatalf("acked watermark stuck at %d, want %d", sess.Acked(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClusterDurableZeroLoss proves the durable gate's contract end to
// end: a durable session's acks stall for the duration of a replica
// outage (visible as the degraded gauge and the typed replica-outage
// diagnostic), resume when the replica returns and catches up, and —
// because no frame was acked before every replica held it — a
// subsequent owner death loses nothing: the failover finishes the
// computation with verdicts bit-identical to offline detection. The
// durable mode arrives via the per-session hello override on an
// available-default cluster.
func TestClusterDurableZeroLoss(t *testing.T) {
	h := startCluster(t, 3, false, 0)
	const key = "durable-zero-loss"
	succ := h.nodes[0].Ring().Successors(key, 2)
	owner, replica := h.index(succ[0]), h.index(succ[1])
	steps := script(1)

	cfg := clientConfig(key, h.ids, 21)
	cfg.Durability = "durable"
	sess, err := client.Dial("", cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamRange(sess, steps, 0, 4, true) // 7 frames: 3 inits + 4 events
	deadline := time.Now().Add(5 * time.Second)
	for h.regs[replica].Counter("hb_cluster_repl_frames_recv_total", "").Value() < 7 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up")
		}
		time.Sleep(2 * time.Millisecond)
	}
	pollAcked(t, sess, 6) // AckEvery=2: at least seq 6 acked once replicated

	// Replica outage: the durable gate must close. The stall is visible
	// as the degraded gauge and the typed diagnostic on /debug/obs.
	h.kls[replica].Kill()
	deadline = time.Now().Add(5 * time.Second)
	for h.regs[owner].Gauge("hb_cluster_degraded_sessions", "").Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("degraded_sessions gauge never rose on replica outage")
		}
		time.Sleep(2 * time.Millisecond)
	}
	streamRange(sess, steps, 4, len(steps), false) // seq 8..10, acks gated

	st, ok := h.nodes[owner].DebugState().(cluster.DebugCluster)
	if !ok {
		t.Fatalf("DebugState returned %T", h.nodes[owner].DebugState())
	}
	var found bool
	for _, ds := range st.Hosted {
		if ds.Key != key {
			continue
		}
		found = true
		if ds.Durability != "durable" {
			t.Errorf("debug durability = %q, want durable (hello override lost)", ds.Durability)
		}
		if !ds.Degraded || !strings.Contains(ds.Diagnostic, "replica-outage") {
			t.Errorf("debug session not flagged degraded with a replica-outage diagnostic: %+v", ds)
		}
	}
	if !found {
		t.Fatalf("hosted session %q missing from DebugState: %+v", key, st)
	}

	// The gate holds: nothing past the outage watermark is acked while
	// the replica is down.
	time.Sleep(100 * time.Millisecond)
	if a := sess.Acked(); a > 7 {
		t.Fatalf("durable session acked seq %d during the replica outage (watermark 7)", a)
	}

	// The replica returns: the link reconnects, resyncs the withheld
	// tail, and the stalled acks are released.
	h.kls[replica].Restart()
	pollAcked(t, sess, 10)
	deadline = time.Now().Add(5 * time.Second)
	for h.regs[owner].Gauge("hb_cluster_degraded_sessions", "").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("degraded_sessions gauge never recovered")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Owner death after the outage: every acked frame is on the replica,
	// so the failover must finish with zero loss.
	h.kls[owner].Kill()
	gb, err := sess.Close()
	if err != nil {
		t.Fatalf("close after failover: %v", err)
	}
	if gb.Events != len(steps) || gb.Dropped != 0 {
		t.Fatalf("goodbye %d events (%d dropped), want %d (0)", gb.Events, gb.Dropped, len(steps))
	}
	if err := verifyVerdicts(t, steps, sess.Latched()); err != nil {
		t.Fatal(err)
	}
	if v := h.regs[replica].Counter("hb_cluster_failovers_total", "").Value(); v != 1 {
		t.Errorf("replica failovers_total = %d, want 1", v)
	}
}

// TestClusterAvailableLossWindow pins the documented tradeoff of the
// default mode with a deterministic schedule: in available mode the ack
// gate opens through a replica outage, so frames acked during it exist
// only on the owner — and when the owner then dies before the replica
// recovers, exactly that window is gone. The client must surface the
// loss as a typed sticky bad-seq error, never silently rewind.
func TestClusterAvailableLossWindow(t *testing.T) {
	h := startCluster(t, 3, false, 0)
	const key = "avail-loss-window"
	succ := h.nodes[0].Ring().Successors(key, 2)
	ownerID, replicaID := succ[0], succ[1]
	owner, replica := h.index(ownerID), h.index(replicaID)
	steps := script(1)

	var mu sync.Mutex
	target := ownerID
	cfg := clientConfig(key, nil, 22)
	cfg.MaxAttempts = 20
	cfg.Dial = func(string) (net.Conn, error) {
		mu.Lock()
		addr := target
		mu.Unlock()
		return net.DialTimeout("tcp", addr, 2*time.Second)
	}
	sess, err := client.Dial(ownerID, cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamRange(sess, steps, 0, 4, true)
	deadline := time.Now().Add(5 * time.Second)
	for h.regs[replica].Counter("hb_cluster_repl_frames_recv_total", "").Value() < 7 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Replica outage; the available-mode gate opens and the remaining
	// frames are acked against the owner alone.
	h.kls[replica].Kill()
	streamRange(sess, steps, 4, len(steps), false) // seq 8..10
	pollAcked(t, sess, 10)

	// Owner dies holding the only copy of seq 8..10; the replica returns
	// with its log still at seq 7.
	mu.Lock()
	target = replicaID
	mu.Unlock()
	h.kls[owner].Kill()
	h.kls[replica].Restart()

	select {
	case <-sess.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("session neither resumed nor failed after the owner died")
	}
	err = sess.Err()
	if err == nil {
		t.Fatal("session finished cleanly despite the acked tail being lost")
	}
	if !strings.Contains(err.Error(), "bad-seq") {
		t.Fatalf("loss surfaced as %v, want a typed bad-seq rejection", err)
	}

	// The window is exactly the frames acked during the outage: the
	// client's watermark reached 10 while the replica's log holds 7.
	if v := h.regs[replica].Counter("hb_cluster_repl_frames_recv_total", "").Value(); v != 7 {
		t.Errorf("replica log advanced to %d frames, want 7 (loss window must be 3)", v)
	}
	if a := sess.Acked(); a != 10 {
		t.Errorf("client acked watermark = %d, want 10", a)
	}
}

// TestClusterLinkReconnect drops a live replication link mid-session (a
// network blip, not a node death) and asserts the shared backoff policy
// redials it — counted by hb_cluster_link_reconnects_total — resyncs
// the log, and the session still finishes exactly-once.
func TestClusterLinkReconnect(t *testing.T) {
	h := startCluster(t, 3, false, 0)
	const key = "link-blip"
	succ := h.nodes[0].Ring().Successors(key, 2)
	owner, replica := h.index(succ[0]), h.index(succ[1])
	steps := script(1)

	sess, err := client.Dial("", clientConfig(key, h.ids, 23))
	if err != nil {
		t.Fatal(err)
	}
	streamRange(sess, steps, 0, 4, true)
	deadline := time.Now().Add(5 * time.Second)
	for h.regs[replica].Counter("hb_cluster_repl_frames_recv_total", "").Value() < 7 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up")
		}
		time.Sleep(2 * time.Millisecond)
	}

	base := h.regs[owner].Counter("hb_cluster_link_reconnects_total", "").Value()
	h.kls[replica].KillConns() // blip: connections die, the listener stays up
	deadline = time.Now().Add(5 * time.Second)
	for h.regs[owner].Counter("hb_cluster_link_reconnects_total", "").Value() <= base {
		if time.Now().After(deadline) {
			t.Fatalf("link never redialed after the blip")
		}
		time.Sleep(2 * time.Millisecond)
	}

	streamRange(sess, steps, 4, len(steps), false)
	gb, err := sess.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if gb.Events != len(steps) || gb.Dropped != 0 {
		t.Fatalf("goodbye %d events (%d dropped), want %d (0)", gb.Events, gb.Dropped, len(steps))
	}
	if err := verifyVerdicts(t, steps, sess.Latched()); err != nil {
		t.Fatal(err)
	}
}

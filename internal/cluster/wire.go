package cluster

import (
	"encoding/json"
	"fmt"

	"repro/internal/server"
)

// Replication protocol message types. The protocol is NDJSON, one
// replMsg per line, riding the same TCP listener as client ingest: the
// server's takeover hook recognizes the repl-hello line and hands the
// connection to the replica handler before client-frame decoding.
//
// The dialog is deliberately half-step: after repl-hello the sender
// waits for repl-welcome before writing anything else, so no replication
// byte can sit in the ingest handshake's scanner buffer when the
// connection is handed over. After that the sender streams repl-open and
// repl-frame messages and the replica answers every appended frame with
// repl-ack carrying its contiguous per-session high-water seq — the
// sender's durability watermark, which gates client acks.
const (
	msgReplHello   = "repl-hello"   // sender → replica: opens the link (From = sender identity)
	msgReplWelcome = "repl-welcome" // replica → sender: link accepted
	msgReplOpen    = "repl-open"    // sender → replica: begin (or resync) a session log; Hello carries the keyed hello
	msgReplFrame   = "repl-frame"   // sender → replica: one accepted sequenced frame, in seq order
	msgReplAck     = "repl-ack"     // replica → sender: contiguous per-session high-water seq applied to the log
)

// replMsg is one replication protocol message. Type selects the fields.
type replMsg struct {
	Type string `json:"type"`
	// From identifies the dialing node on repl-hello (its ring identity).
	From string `json:"from,omitempty"`
	// Session is the placement key the message concerns.
	Session string `json:"session,omitempty"`
	// Seq is the replica's contiguous high-water mark on repl-ack.
	Seq int64 `json:"seq,omitempty"`
	// Hello is the session's keyed hello frame on repl-open.
	Hello *server.ClientFrame `json:"hello,omitempty"`
	// Frame is the replicated sequenced frame on repl-frame.
	Frame *server.ClientFrame `json:"frame,omitempty"`
}

// isReplHello reports whether a connection's first line opens the
// replication protocol — the takeover test. A client hello decodes too
// (both are JSON objects with a type field) but can never carry the
// repl-hello type, so the check cannot misfire on ingest traffic.
func isReplHello(line []byte) bool {
	var m replMsg
	if json.Unmarshal(line, &m) != nil {
		return false
	}
	return m.Type == msgReplHello
}

// decodeReplMsg parses one replication protocol line.
func decodeReplMsg(line []byte) (replMsg, error) {
	var m replMsg
	if err := json.Unmarshal(line, &m); err != nil {
		return m, fmt.Errorf("cluster: bad replication frame: %v", err)
	}
	return m, nil
}

// appendReplMsg marshals m as one NDJSON line.
func appendReplMsg(m replMsg) []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic("cluster: marshal replication frame: " + err.Error())
	}
	return append(b, '\n')
}

package cluster

import (
	"encoding/json"
	"fmt"

	"repro/internal/server"
)

// Replication protocol message types. The protocol is NDJSON, one
// replMsg per line, riding the same TCP listener as client ingest: the
// server's takeover hook recognizes the repl-hello line and hands the
// connection to the replica handler before client-frame decoding.
//
// The dialog is deliberately half-step: after repl-hello the sender
// waits for repl-welcome before writing anything else, so no replication
// byte can sit in the ingest handshake's scanner buffer when the
// connection is handed over. After that the sender streams repl-open and
// repl-frame messages and the replica answers every appended frame with
// repl-ack carrying its contiguous per-session high-water seq — the
// sender's durability watermark, which gates client acks.
//
// Every session-scoped message carries the session's incarnation epoch,
// minted by the owner when it first hosts the key (fresh open, failover
// promotion, or drain handoff — each bumps it past every epoch the
// minting node has seen for the key). A replica holding an older epoch
// fences: it truncates the stale log and adopts the new incarnation. A
// message carrying an older epoch than the replica holds is answered
// with repl-reject code "stale-epoch" — the typed signal that tells a
// zombie ex-owner it has been superseded.
const (
	msgReplHello      = "repl-hello"       // sender → replica: opens the link (From = sender identity)
	msgReplWelcome    = "repl-welcome"     // replica → sender: link accepted
	msgReplOpen       = "repl-open"        // sender → replica: begin (or resync) a session log; Hello carries the keyed hello, Epoch the incarnation
	msgReplFrame      = "repl-frame"       // sender → replica: one accepted sequenced frame, in seq order, stamped with the log's epoch
	msgReplAck        = "repl-ack"         // replica → sender: contiguous per-session high-water seq applied to the log (Epoch echoes the log's)
	msgReplReject     = "repl-reject"      // replica → sender: message refused; Code says why, Epoch is the epoch the replica holds
	msgReplHandoff    = "repl-handoff"     // sender → replica: drain handoff offer — adopt the log at Seq frames under the bumped Epoch
	msgReplHandoffAck = "repl-handoff-ack" // replica → sender: handoff accepted; the replica now owns the session
)

// repl-reject codes. Stale-epoch reuses the client-protocol constant so
// one grep finds every fencing decision.
const (
	rejectStaleEpoch      = server.CodeStaleEpoch // message epoch is older than the held one
	rejectHandoffMismatch = "handoff-mismatch"    // handoff offer does not match the replica's log
	rejectHandoffFailed   = "handoff-failed"      // replica could not rebuild the session from the log
)

// replMsg is one replication protocol message. Type selects the fields.
type replMsg struct {
	Type string `json:"type"`
	// From identifies the dialing node on repl-hello (its ring identity).
	From string `json:"from,omitempty"`
	// Session is the placement key the message concerns.
	Session string `json:"session,omitempty"`
	// Seq is the replica's contiguous high-water mark on repl-ack, and
	// the expected log length on repl-handoff.
	Seq int64 `json:"seq,omitempty"`
	// Epoch is the session's incarnation epoch: the log's epoch on
	// repl-open/repl-frame/repl-ack, the bumped epoch on repl-handoff and
	// repl-handoff-ack, and the epoch the replica holds on repl-reject.
	Epoch int64 `json:"epoch,omitempty"`
	// Code classifies a repl-reject.
	Code string `json:"code,omitempty"`
	// Hello is the session's keyed hello frame on repl-open.
	Hello *server.ClientFrame `json:"hello,omitempty"`
	// Frame is the replicated sequenced frame on repl-frame.
	Frame *server.ClientFrame `json:"frame,omitempty"`
}

// isReplHello reports whether a connection's first line opens the
// replication protocol — the takeover test. A client hello decodes too
// (both are JSON objects with a type field) but can never carry the
// repl-hello type, so the check cannot misfire on ingest traffic.
func isReplHello(line []byte) bool {
	var m replMsg
	if json.Unmarshal(line, &m) != nil {
		return false
	}
	return m.Type == msgReplHello
}

// decodeReplMsg parses one replication protocol line.
func decodeReplMsg(line []byte) (replMsg, error) {
	var m replMsg
	if err := json.Unmarshal(line, &m); err != nil {
		return m, fmt.Errorf("cluster: bad replication frame: %v", err)
	}
	return m, nil
}

// appendReplMsg marshals m as one NDJSON line.
func appendReplMsg(m replMsg) []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic("cluster: marshal replication frame: " + err.Error())
	}
	return append(b, '\n')
}

package cluster

import "fmt"

// Durability selects what a hosted session's ack gate does while a
// replica is unreachable. It is a per-node default (-cluster-durability)
// that a session's hello may override, and it travels with the session:
// the replicated hello carries the resolved mode, so a failover or
// handoff promotion preserves it regardless of the promoting node's own
// default.
type Durability int

const (
	// Available keeps acking through a replica outage: the gate skips
	// disconnected replicas, so clients keep releasing frames that exist
	// on fewer nodes than the replication factor. If the owner then dies
	// before the replica returns, the acked-but-unreplicated window is
	// lost — the documented availability-over-durability tradeoff, pinned
	// by TestClusterAvailableLossWindow.
	Available Durability = iota
	// Durable closes the gate for the outage: acks stall at the last
	// watermark every replica confirmed (connected or not), the client's
	// bounded buffer applies backpressure, and the stall is visible as
	// hb_cluster_degraded_sessions plus a typed replica-outage diagnostic
	// in the node's /debug/obs section. No acked frame can be lost to a
	// subsequent owner death.
	Durable
)

// String implements fmt.Stringer; the result round-trips through
// ParseDurability.
func (d Durability) String() string {
	if d == Durable {
		return "durable"
	}
	return "available"
}

// ParseDurability parses "available" or "durable"; the empty string is
// Available (the hello's "unset" value).
func ParseDurability(s string) (Durability, error) {
	switch s {
	case "", "available":
		return Available, nil
	case "durable":
		return Durable, nil
	default:
		return 0, fmt.Errorf("cluster: unknown durability %q (want available or durable)", s)
	}
}

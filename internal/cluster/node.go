package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"

	"repro/internal/obs"
	"repro/internal/server"
)

// NodeConfig configures one cluster node.
type NodeConfig struct {
	// Self is this node's ring identity — the address peers and clients
	// know it by. It must appear in Peers.
	Self string
	// Peers is the full static cluster membership, including Self. Every
	// node and every ring-aware client must be configured with the same
	// set (order does not matter; the ring sorts).
	Peers []string
	// Replicas is the total number of copies of each session's frame log,
	// the owner included (default 2: owner + one replica). Clamped to the
	// cluster size.
	Replicas int
	// Seed is the placement seed (default DefaultRingSeed). All nodes and
	// clients must agree on it.
	Seed uint64
	// ReplTargets optionally maps a peer's ring identity to the address
	// replication links actually dial. The cluster chaos harness routes
	// client traffic through flaky proxies (the proxy addresses are the
	// ring identities) while replication dials the real listeners, so a
	// simulated network fault can never make the durability watermark lie.
	// Unlisted peers are dialed by their ring identity.
	ReplTargets map[string]string
	// Registry receives the hb_cluster_* metrics (nil → obs.Default()).
	Registry *obs.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// hostedSession is the replication state of one keyed session this node
// hosts: the keyed hello plus every accepted sequenced frame from seq 1,
// in order — frames[i] carries seq i+1. This is deliberately the full
// frame log, not the server's bounded metadata journal: a replica
// rebuilds the session by replaying it through the same deterministic
// monitor pipeline, which is what makes post-failover verdicts
// bit-identical. The log lives for the session's lifetime and is
// released once every replica has acknowledged its bye.
type hostedSession struct {
	key      string
	hello    server.ClientFrame
	frames   []server.ClientFrame
	replicas []string // ring successors holding copies (self excluded)
	durable  int64    // highest seq acked by every connected replica, monotonic
	bye      bool     // log ends in a bye; drop once durable covers it
}

// replicaLog is a foreign session's replicated state on this node.
type replicaLog struct {
	hello  server.ClientFrame
	frames []server.ClientFrame
}

// Node is one member of a detection cluster: a standalone *server.Server
// plus the placement ring, the outgoing replication links for sessions
// it hosts, the replica logs it holds for peers, and the recovery path
// that turns a replica log back into a live session after the home node
// dies.
type Node struct {
	srv  *server.Server
	ring *Ring
	self string
	r    int // replication factor (total copies)
	dial map[string]string
	met  *metrics
	logf func(format string, args ...any)

	stopc chan struct{}  // closed by Shutdown; unblocks link backoff sleeps
	wg    sync.WaitGroup // link goroutines

	// mu guards everything below plus all peerLink state; cond is
	// broadcast whenever new frames are appended, a link's connectivity
	// changes, or the node closes — the send loops wait on it.
	mu         sync.Mutex
	cond       *sync.Cond
	hosted     map[string]*hostedSession
	replicated map[string]*replicaLog
	links      map[string]*peerLink
	promoting  map[string]chan struct{} // in-flight recoveries, keyed by session
	inbound    map[net.Conn]struct{}    // live inbound replication conns, closed on Shutdown
	closed     bool
}

// New builds a cluster node: it installs the cluster hooks into srvCfg
// and constructs the underlying server. The caller serves connections
// via Serve (or the returned Server directly) and shuts down via
// Shutdown.
func New(srvCfg server.Config, nc NodeConfig) (*Node, error) {
	ring, err := NewRing(nc.Peers, seedOrDefault(nc.Seed))
	if err != nil {
		return nil, err
	}
	if nc.Self == "" || !ring.Contains(nc.Self) {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", nc.Self, ring.Nodes())
	}
	r := nc.Replicas
	if r <= 0 {
		r = 2
	}
	if r > len(ring.Nodes()) {
		r = len(ring.Nodes())
	}
	n := &Node{
		ring:       ring,
		self:       nc.Self,
		r:          r,
		dial:       nc.ReplTargets,
		met:        newMetrics(nc.Registry),
		logf:       nc.Logf,
		stopc:      make(chan struct{}),
		hosted:     make(map[string]*hostedSession),
		replicated: make(map[string]*replicaLog),
		links:      make(map[string]*peerLink),
		promoting:  make(map[string]chan struct{}),
		inbound:    make(map[net.Conn]struct{}),
	}
	n.cond = sync.NewCond(&n.mu)
	n.met.ringNodes.Set(int64(len(ring.Nodes())))
	srvCfg.Cluster = &server.ClusterHooks{
		Takeover:  n.takeover,
		Placement: n.placement,
		OnOpen:    n.onOpen,
		OnAccept:  n.onAccept,
		AckGate:   n.ackGate,
		Recover:   n.recoverSession,
	}
	n.srv = server.New(srvCfg)
	return n, nil
}

func seedOrDefault(seed uint64) uint64 {
	if seed == 0 {
		return DefaultRingSeed
	}
	return seed
}

// Server returns the underlying detection server.
func (n *Node) Server() *server.Server { return n.srv }

// Ring returns the node's placement ring.
func (n *Node) Ring() *Ring { return n.ring }

// Self returns this node's ring identity.
func (n *Node) Self() string { return n.self }

// Serve accepts connections on ln — client ingest and replication links
// share it; the takeover hook separates them by their first line.
func (n *Node) Serve(ln net.Listener) error { return n.srv.Serve(ln) }

// Shutdown stops the replication links, then drains the server.
func (n *Node) Shutdown(ctx context.Context) error {
	n.mu.Lock()
	n.closed = true
	links := make([]*peerLink, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	inbound := make([]net.Conn, 0, len(n.inbound))
	for c := range n.inbound {
		inbound = append(inbound, c)
	}
	n.cond.Broadcast()
	n.mu.Unlock()
	close(n.stopc)
	for _, l := range links {
		l.shut()
	}
	// Inbound links belong to peers that may outlive this node; closing
	// them here unblocks the server's connection handlers so its drain
	// can finish.
	for _, c := range inbound {
		c.Close()
	}
	err := n.srv.Shutdown(ctx)
	n.wg.Wait()
	return err
}

func (n *Node) log(format string, args ...any) {
	if n.logf != nil {
		n.logf(format, args...)
	}
}

// takeover is the server's connection-takeover hook: replication links
// announce themselves with a repl-hello line and are served in place.
func (n *Node) takeover(first []byte, conn net.Conn) bool {
	if !isReplHello(first) {
		return false
	}
	m, err := decodeReplMsg(first)
	if err != nil {
		return false
	}
	n.serveRepl(m.From, conn)
	return true
}

// placement vets a keyed hello: any of the key's R placement nodes may
// accept it (so opening against a replica works while the owner is
// down); everyone else redirects to the owner.
func (n *Node) placement(key string) (owner string, ok bool) {
	succ := n.ring.Successors(key, n.r)
	for _, s := range succ {
		if s == n.self {
			return succ[0], true
		}
	}
	n.met.redirects.Inc()
	return succ[0], false
}

// onOpen registers a freshly opened keyed session for replication and
// wakes the links to its ring successors.
func (n *Node) onOpen(sess *server.Session, cfg server.SessionConfig) {
	hello := server.ClientFrame{
		Type:      server.FrameHello,
		Processes: cfg.Processes,
		Watches:   cfg.Watches,
		Resumable: true,
		Session:   cfg.ID,
	}
	n.registerHosted(cfg.ID, hello, nil)
}

// registerHosted installs (or replaces) the hosted replication state for
// key and ensures links to its replicas exist.
func (n *Node) registerHosted(key string, hello server.ClientFrame, backlog []server.ClientFrame) {
	replicas := make([]string, 0, n.r)
	for _, s := range n.ring.Successors(key, n.r) {
		if s != n.self {
			replicas = append(replicas, s)
		}
	}
	hs := &hostedSession{key: key, hello: hello, frames: backlog, replicas: replicas}
	if len(backlog) > 0 && backlog[len(backlog)-1].Type == server.FrameBye {
		hs.bye = true
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.hosted[key] = hs
	n.met.sessionsOwned.Set(int64(len(n.hosted)))
	for _, peer := range replicas {
		n.ensureLinkLocked(peer)
	}
	n.cond.Broadcast()
	n.mu.Unlock()
	n.log("cluster: hosting %s (replicas %v, backlog %d)", key, replicas, len(backlog))
}

// onAccept appends one accepted sequenced frame to the session's log and
// wakes the links. Frames arrive in seq order from the single attached
// transport; a frame re-accepted after a promotion race is deduped by
// seq.
func (n *Node) onAccept(sess *server.Session, f server.ClientFrame) {
	n.mu.Lock()
	hs := n.hosted[sess.ID()]
	if hs == nil || f.Seq <= int64(len(hs.frames)) {
		n.mu.Unlock()
		return // unkeyed session, or a duplicate past the log's high water
	}
	if f.Batch != nil {
		// Binary-decoded batches are pooled and recycled once the session
		// applies them; the replication log outlives that, so keep a
		// private copy.
		f.Batch = f.Batch.Clone()
	}
	hs.frames = append(hs.frames, f)
	if f.Type == server.FrameBye {
		hs.bye = true
	}
	n.updateLagLocked()
	n.cond.Broadcast()
	n.mu.Unlock()
}

// updateLagLocked refreshes the replication-lag gauge: accepted frames
// not yet covered by the durability watermark, summed over hosted
// sessions. Caller holds n.mu.
func (n *Node) updateLagLocked() {
	var lag int64
	for _, hs := range n.hosted {
		if d := int64(len(hs.frames)) - hs.durable; d > 0 {
			lag += d
		}
	}
	n.met.replLag.Set(lag)
}

// ackGate bounds the seq the server may ack to its client: the minimum
// seq acknowledged by every *connected* replica of the session. A
// disconnected replica is skipped — with every replica down the gate
// opens entirely (availability over durability; DESIGN.md Decision 11
// spells out this tradeoff). The withheld tail is released by Ack pushes
// from noteAcks when replica acks advance the watermark.
func (n *Node) ackGate(session string, seq int64) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	hs := n.hosted[session]
	if hs == nil {
		return seq
	}
	d, gated := n.durableLocked(hs)
	if !gated || d > seq {
		d = seq
	}
	if d > hs.durable {
		hs.durable = d
	}
	return d
}

// durableLocked returns the replication durability watermark of hs: the
// lowest ack among its connected replica links. gated=false means no
// replica link is currently connected, so no bound applies.
func (n *Node) durableLocked(hs *hostedSession) (d int64, gated bool) {
	d = int64(1<<62 - 1)
	for _, peer := range hs.replicas {
		l := n.links[peer]
		if l == nil || !l.connected {
			continue
		}
		gated = true
		if r := l.racked[hs.key]; r < d {
			d = r
		}
	}
	if !gated {
		return 0, false
	}
	return d, true
}

// noteAcks recomputes the durability watermark of key after a replica
// ack and, when it advances, re-offers the acks that ackGate withheld.
// Called from a link's ack reader, outside n.mu.
func (n *Node) noteAcks(key string) {
	n.mu.Lock()
	hs := n.hosted[key]
	if hs == nil {
		n.mu.Unlock()
		return
	}
	d, gated := n.durableLocked(hs)
	if !gated || d > int64(len(hs.frames)) {
		d = int64(len(hs.frames))
	}
	var advance int64
	if d > hs.durable {
		hs.durable = d
		advance = d
	}
	if hs.bye && hs.durable == int64(len(hs.frames)) {
		// Every replica holds the full log through the bye; the hosted
		// state has done its job.
		delete(n.hosted, hs.key)
		n.met.sessionsOwned.Set(int64(len(n.hosted)))
		for _, l := range n.links {
			delete(l.racked, hs.key)
			delete(l.sent, hs.key)
			delete(l.opened, hs.key)
		}
	}
	n.updateLagLocked()
	n.mu.Unlock()
	if advance > 0 {
		if sess := n.srv.Session(key); sess != nil {
			sess.Ack(advance)
		}
	}
}

// recoverSession is the server's recovery hook: a resume named a session
// with no local state. If this node is not in the key's placement it
// redirects to the owner; if it holds a replica log it promotes itself —
// rebuilding the session by replay and taking over replication to the
// remaining successors; otherwise the session is simply unknown here
// (the client's candidate sweep moves on to the next successor).
func (n *Node) recoverSession(key string) (*server.Session, error) {
	succ := n.ring.Successors(key, n.r)
	inPlacement := false
	for _, s := range succ {
		if s == n.self {
			inPlacement = true
			break
		}
	}
	if !inPlacement {
		n.met.redirects.Inc()
		return nil, &server.RejectError{
			Code:  server.CodeNotOwner,
			Owner: succ[0],
			Msg:   fmt.Sprintf("cluster: session %q is not placed on this node; dial %s", key, succ[0]),
		}
	}

	n.mu.Lock()
	if wait, racing := n.promoting[key]; racing {
		// Another connection is already promoting this key: wait for it,
		// then hand back whatever it built. A bye-terminated recovery
		// leaves no live session — returning (nil, nil) sends the caller
		// to the morgue, where the terminal replay now lives.
		n.mu.Unlock()
		<-wait
		return n.srv.Session(key), nil
	}
	rl := n.replicated[key]
	if rl == nil {
		n.mu.Unlock()
		return nil, nil // genuinely unknown here
	}
	done := make(chan struct{})
	n.promoting[key] = done
	hello := rl.hello
	frames := append([]server.ClientFrame(nil), rl.frames...)
	n.mu.Unlock()

	defer func() {
		n.mu.Lock()
		delete(n.promoting, key)
		n.mu.Unlock()
		close(done)
	}()

	n.log("cluster: promoting %s from replica log (%d frames)", key, len(frames))
	sess, err := n.srv.OpenRecovered(hello, frames)
	if err != nil {
		return nil, fmt.Errorf("cluster: promote %s: %v", key, err)
	}
	n.met.failovers.Inc()
	// This node is the session's host now: replicate the whole backlog to
	// the remaining successors (replicas dedupe by seq, so re-offering
	// frames they already hold is idempotent).
	n.registerHosted(key, hello, frames)
	return sess, nil
}

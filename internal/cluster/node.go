package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// NodeConfig configures one cluster node.
type NodeConfig struct {
	// Self is this node's ring identity — the address peers and clients
	// know it by. It must appear in Peers.
	Self string
	// Peers is the full static cluster membership, including Self. Every
	// node and every ring-aware client must be configured with the same
	// set (order does not matter; the ring sorts).
	Peers []string
	// Replicas is the total number of copies of each session's frame log,
	// the owner included (default 2: owner + one replica). Clamped to the
	// cluster size.
	Replicas int
	// Seed is the placement seed (default DefaultRingSeed). All nodes and
	// clients must agree on it. It also decorrelates the replication
	// links' reconnect jitter across clusters.
	Seed uint64
	// Durability is the node's default ack-gate mode for hosted sessions
	// (-cluster-durability); a hello may override it per session. See the
	// Durability type for the available/durable tradeoff.
	Durability Durability
	// ReplTargets optionally maps a peer's ring identity to the address
	// replication links actually dial. The cluster chaos harness routes
	// client traffic through flaky proxies (the proxy addresses are the
	// ring identities) while replication dials the real listeners, so a
	// simulated network fault can never make the durability watermark lie.
	// Unlisted peers are dialed by their ring identity.
	ReplTargets map[string]string
	// Registry receives the hb_cluster_* metrics (nil → obs.Default()).
	Registry *obs.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// hostedSession is the replication state of one keyed session this node
// hosts: the keyed hello plus every accepted sequenced frame from seq 1,
// in order — frames[i] carries seq i+1. This is deliberately the full
// frame log, not the server's bounded metadata journal: a replica
// rebuilds the session by replaying it through the same deterministic
// monitor pipeline, which is what makes post-failover verdicts
// bit-identical. The log lives for the session's lifetime and is
// released once every replica has acknowledged its bye.
type hostedSession struct {
	key      string
	hello    server.ClientFrame
	frames   []server.ClientFrame
	replicas []string   // ring successors holding copies (self excluded)
	epoch    int64      // this incarnation's fencing epoch, minted at registration
	mode     Durability // resolved ack-gate mode; travels in hello.Durability
	durable  int64      // highest seq acked by every gating replica, monotonic
	bye      bool       // log ends in a bye; drop once durable covers it
	degraded bool       // durable mode with a replica down: client acks stalled
	stalled  time.Time  // when degraded last became true
	handoff  *handoffState
}

// replicaLog is a foreign session's replicated state on this node,
// fenced by the incarnation epoch its feeder announced.
type replicaLog struct {
	hello  server.ClientFrame
	frames []server.ClientFrame
	epoch  int64
	// feeder is the inbound connection currently feeding this log (nil
	// once it drops) and from its announced ring identity. Only the
	// feeder's frames append — any other connection's frames are acked
	// without being applied — so a superseded ex-owner can never fork
	// the log.
	feeder net.Conn
	from   string
}

// Node is one member of a detection cluster: a standalone *server.Server
// plus the placement ring, the outgoing replication links for sessions
// it hosts, the replica logs it holds for peers, and the recovery path
// that turns a replica log back into a live session after the home node
// dies.
type Node struct {
	srv        *server.Server
	ring       *Ring
	self       string
	r          int // replication factor (total copies)
	seed       uint64
	durability Durability
	dial       map[string]string
	met        *metrics
	logf       func(format string, args ...any)

	stopc chan struct{}  // closed by Shutdown; unblocks link backoff sleeps
	wg    sync.WaitGroup // link goroutines

	// mu guards everything below plus all peerLink state; cond is
	// broadcast whenever new frames are appended, replica acks advance,
	// a link's connectivity changes, or the node closes — the send loops
	// and the drain handoff wait on it.
	mu         sync.Mutex
	cond       *sync.Cond
	hosted     map[string]*hostedSession
	replicated map[string]*replicaLog
	epochs     map[string]int64 // per-key incarnation high-water (every epoch seen)
	links      map[string]*peerLink
	promoting  map[string]chan struct{} // in-flight recoveries, keyed by session
	inbound    map[net.Conn]struct{}    // live inbound replication conns, closed on Shutdown
	draining   bool                     // Drain started: no new placements, no promotions
	closed     bool
}

// New builds a cluster node: it installs the cluster hooks into srvCfg
// and constructs the underlying server. The caller serves connections
// via Serve (or the returned Server directly) and shuts down via
// Shutdown.
func New(srvCfg server.Config, nc NodeConfig) (*Node, error) {
	ring, err := NewRing(nc.Peers, seedOrDefault(nc.Seed))
	if err != nil {
		return nil, err
	}
	if nc.Self == "" || !ring.Contains(nc.Self) {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", nc.Self, ring.Nodes())
	}
	r := nc.Replicas
	if r <= 0 {
		r = 2
	}
	if r > len(ring.Nodes()) {
		r = len(ring.Nodes())
	}
	n := &Node{
		ring:       ring,
		self:       nc.Self,
		r:          r,
		seed:       seedOrDefault(nc.Seed),
		durability: nc.Durability,
		dial:       nc.ReplTargets,
		met:        newMetrics(nc.Registry),
		logf:       nc.Logf,
		stopc:      make(chan struct{}),
		hosted:     make(map[string]*hostedSession),
		replicated: make(map[string]*replicaLog),
		epochs:     make(map[string]int64),
		links:      make(map[string]*peerLink),
		promoting:  make(map[string]chan struct{}),
		inbound:    make(map[net.Conn]struct{}),
	}
	n.cond = sync.NewCond(&n.mu)
	n.met.ringNodes.Set(int64(len(ring.Nodes())))
	srvCfg.Cluster = &server.ClusterHooks{
		Takeover:  n.takeover,
		Placement: n.placement,
		OnOpen:    n.onOpen,
		OnAccept:  n.onAccept,
		AckGate:   n.ackGate,
		Recover:   n.recoverSession,
		Resume:    n.vetoResume,
	}
	n.srv = server.New(srvCfg)
	return n, nil
}

func seedOrDefault(seed uint64) uint64 {
	if seed == 0 {
		return DefaultRingSeed
	}
	return seed
}

// Server returns the underlying detection server.
func (n *Node) Server() *server.Server { return n.srv }

// Ring returns the node's placement ring.
func (n *Node) Ring() *Ring { return n.ring }

// Self returns this node's ring identity.
func (n *Node) Self() string { return n.self }

// Serve accepts connections on ln — client ingest and replication links
// share it; the takeover hook separates them by their first line.
func (n *Node) Serve(ln net.Listener) error { return n.srv.Serve(ln) }

// Shutdown stops the replication links, then drains the server.
func (n *Node) Shutdown(ctx context.Context) error {
	n.mu.Lock()
	n.closed = true
	links := make([]*peerLink, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	inbound := make([]net.Conn, 0, len(n.inbound))
	for c := range n.inbound {
		inbound = append(inbound, c)
	}
	n.cond.Broadcast()
	n.mu.Unlock()
	close(n.stopc)
	for _, l := range links {
		l.shut()
	}
	// Inbound links belong to peers that may outlive this node; closing
	// them here unblocks the server's connection handlers so its drain
	// can finish.
	for _, c := range inbound {
		c.Close()
	}
	err := n.srv.Shutdown(ctx)
	n.wg.Wait()
	return err
}

func (n *Node) log(format string, args ...any) {
	if n.logf != nil {
		n.logf(format, args...)
	}
}

// observeEpochLocked raises the node's per-key epoch high-water mark.
// Caller holds n.mu.
func (n *Node) observeEpochLocked(key string, epoch int64) {
	if epoch > n.epochs[key] {
		n.epochs[key] = epoch
	}
}

// mintEpochLocked mints the next incarnation epoch for key: one past
// every epoch this node has seen for it (and past atLeast — callers pass
// a replica log's epoch so a promotion always supersedes the log it
// replays). Caller holds n.mu.
func (n *Node) mintEpochLocked(key string, atLeast int64) int64 {
	e := n.epochs[key]
	if atLeast > e {
		e = atLeast
	}
	e++
	n.epochs[key] = e
	return e
}

// takeover is the server's connection-takeover hook: replication links
// announce themselves with a repl-hello line and are served in place.
func (n *Node) takeover(first []byte, conn net.Conn) bool {
	if !isReplHello(first) {
		return false
	}
	m, err := decodeReplMsg(first)
	if err != nil {
		return false
	}
	n.serveRepl(m.From, conn)
	return true
}

// placement vets a keyed hello: any of the key's R placement nodes may
// accept it (so opening against a replica works while the owner is
// down); everyone else redirects to the owner. A draining node stops
// accepting new placements and points the client at the first live
// alternative.
func (n *Node) placement(key string) (owner string, ok bool) {
	succ := n.ring.Successors(key, n.r)
	n.mu.Lock()
	draining := n.draining
	n.mu.Unlock()
	for _, s := range succ {
		if s == n.self {
			if draining {
				if alt := firstOther(succ, n.self); alt != "" {
					n.met.redirects.Inc()
					return alt, false
				}
			}
			return succ[0], true
		}
	}
	n.met.redirects.Inc()
	return succ[0], false
}

// firstOther returns the first entry of succ that is not self ("" if
// none).
func firstOther(succ []string, self string) string {
	for _, s := range succ {
		if s != self {
			return s
		}
	}
	return ""
}

// onOpen registers a freshly opened keyed session for replication and
// wakes the links to its ring successors. The session's durability mode
// is resolved here — hello override, else the node default — and stamped
// into the replicated hello so failover and handoff preserve it.
func (n *Node) onOpen(sess *server.Session, cfg server.SessionConfig) {
	mode := n.durability
	if m, err := ParseDurability(cfg.Durability); err == nil && cfg.Durability != "" {
		mode = m
	}
	hello := server.ClientFrame{
		Type:       server.FrameHello,
		Processes:  cfg.Processes,
		Watches:    cfg.Watches,
		Resumable:  true,
		Session:    cfg.ID,
		Durability: mode.String(),
	}
	n.mu.Lock()
	epoch := n.mintEpochLocked(cfg.ID, 0)
	n.mu.Unlock()
	n.registerHosted(cfg.ID, hello, nil, epoch, mode)
}

// registerHosted installs (or replaces) the hosted replication state for
// key — a new incarnation under epoch — and ensures links to its
// replicas exist. Any replica log or stale per-link cursors left by a
// previous incarnation of the key are cleared: a reused key must start
// from a clean slate, or an old racked watermark could open the ack gate
// for frames the replicas never saw.
func (n *Node) registerHosted(key string, hello server.ClientFrame, backlog []server.ClientFrame, epoch int64, mode Durability) {
	replicas := make([]string, 0, n.r)
	for _, s := range n.ring.Successors(key, n.r) {
		if s != n.self {
			replicas = append(replicas, s)
		}
	}
	hs := &hostedSession{key: key, hello: hello, frames: backlog, replicas: replicas, epoch: epoch, mode: mode}
	if len(backlog) > 0 && backlog[len(backlog)-1].Type == server.FrameBye {
		hs.bye = true
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.observeEpochLocked(key, epoch)
	n.hosted[key] = hs
	n.met.sessionsOwned.Set(int64(len(n.hosted)))
	if _, held := n.replicated[key]; held {
		delete(n.replicated, key)
		n.met.sessionsReplicated.Set(int64(len(n.replicated)))
	}
	for _, l := range n.links {
		delete(l.racked, key)
		delete(l.sent, key)
		delete(l.opened, key)
	}
	for _, peer := range replicas {
		n.ensureLinkLocked(peer)
	}
	n.updateLagLocked()
	n.cond.Broadcast()
	n.mu.Unlock()
	n.log("cluster: hosting %s epoch %d (%s, replicas %v, backlog %d)", key, epoch, mode, replicas, len(backlog))
}

// onAccept appends one accepted sequenced frame to the session's log and
// wakes the links. Frames arrive in seq order from the single attached
// transport; a frame re-accepted after a promotion race is deduped by
// seq.
func (n *Node) onAccept(sess *server.Session, f server.ClientFrame) {
	n.mu.Lock()
	hs := n.hosted[sess.ID()]
	if hs == nil || f.Seq <= int64(len(hs.frames)) {
		n.mu.Unlock()
		return // unkeyed session, or a duplicate past the log's high water
	}
	if f.Batch != nil {
		// Binary-decoded batches are pooled and recycled once the session
		// applies them; the replication log outlives that, so keep a
		// private copy.
		f.Batch = f.Batch.Clone()
	}
	hs.frames = append(hs.frames, f)
	if f.Type == server.FrameBye {
		hs.bye = true
	}
	n.updateLagLocked()
	n.cond.Broadcast()
	n.mu.Unlock()
}

// updateLagLocked refreshes the replication-lag gauge: accepted frames
// not yet covered by the durability watermark, summed over hosted
// sessions. Caller holds n.mu.
func (n *Node) updateLagLocked() {
	var lag int64
	for _, hs := range n.hosted {
		if d := int64(len(hs.frames)) - hs.durable; d > 0 {
			lag += d
		}
	}
	n.met.replLag.Set(lag)
	n.updateDegradedLocked()
}

// updateDegradedLocked recomputes which durable-mode sessions are
// running degraded — a replica link down, so their client acks are
// stalled at the outage watermark — and publishes the gauge. Caller
// holds n.mu.
func (n *Node) updateDegradedLocked() {
	var degraded int64
	for _, hs := range n.hosted {
		was := hs.degraded
		hs.degraded = false
		if hs.mode == Durable {
			for _, peer := range hs.replicas {
				l := n.links[peer]
				if l == nil || !l.connected {
					hs.degraded = true
					break
				}
			}
		}
		switch {
		case hs.degraded && !was:
			hs.stalled = time.Now()
			degraded++
		case hs.degraded:
			degraded++
		default:
			hs.stalled = time.Time{}
		}
	}
	n.met.degradedSessions.Set(degraded)
}

// ackGate bounds the seq the server may ack to its client: the minimum
// seq acknowledged by every gating replica of the session. In available
// mode a disconnected replica is skipped — with every replica down the
// gate opens entirely, trading the outage window's durability for
// availability. In durable mode a disconnected replica keeps gating at
// its last acknowledged seq, so acks stall for the outage and no acked
// frame can be lost to a subsequent owner death. The withheld tail is
// released by Ack pushes from noteAcks when replica acks advance the
// watermark.
func (n *Node) ackGate(session string, seq int64) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	hs := n.hosted[session]
	if hs == nil {
		return seq
	}
	d, gated := n.durableLocked(hs)
	if !gated || d > seq {
		d = seq
	}
	if d > hs.durable {
		hs.durable = d
	}
	return d
}

// durableLocked returns the replication durability watermark of hs: the
// lowest ack among its gating replica links. In available mode only
// connected replicas gate (gated=false with all of them down); in
// durable mode every replica gates, a disconnected one at its last
// acknowledged seq.
func (n *Node) durableLocked(hs *hostedSession) (d int64, gated bool) {
	if len(hs.replicas) == 0 {
		return 0, false
	}
	d = int64(1<<62 - 1)
	for _, peer := range hs.replicas {
		l := n.links[peer]
		connected := l != nil && l.connected
		if !connected && hs.mode != Durable {
			continue
		}
		gated = true
		var r int64
		if l != nil {
			r = l.racked[hs.key]
		}
		if r < d {
			d = r
		}
	}
	if !gated {
		return 0, false
	}
	return d, true
}

// noteAcks recomputes the durability watermark of key after a replica
// ack and, when it advances, re-offers the acks that ackGate withheld.
// Called from a link's ack reader, outside n.mu.
func (n *Node) noteAcks(key string) {
	n.mu.Lock()
	hs := n.hosted[key]
	if hs == nil {
		n.mu.Unlock()
		return
	}
	d, gated := n.durableLocked(hs)
	if !gated || d > int64(len(hs.frames)) {
		d = int64(len(hs.frames))
	}
	var advance int64
	if d > hs.durable {
		hs.durable = d
		advance = d
	}
	if hs.bye && hs.durable == int64(len(hs.frames)) {
		// Every replica holds the full log through the bye; the hosted
		// state has done its job.
		delete(n.hosted, hs.key)
		n.met.sessionsOwned.Set(int64(len(n.hosted)))
		for _, l := range n.links {
			delete(l.racked, hs.key)
			delete(l.sent, hs.key)
			delete(l.opened, hs.key)
		}
	}
	n.updateLagLocked()
	n.mu.Unlock()
	if advance > 0 {
		if sess := n.srv.Session(key); sess != nil {
			sess.Ack(advance)
		}
	}
}

// superseded handles evidence that a newer incarnation of key lives at
// from: a stale-epoch reject from a replica, or an inbound repl-open
// carrying a higher epoch than our hosted copy. The hosted state is
// dropped, any live local session is kicked and tombstoned so its client
// follows the redirect, and an in-flight handoff fails — a zombie
// ex-owner must never keep acking frames the cluster has moved past.
func (n *Node) superseded(key string, epoch int64, from, reason string) {
	n.mu.Lock()
	n.observeEpochLocked(key, epoch)
	hs := n.hosted[key]
	if hs == nil || hs.epoch >= epoch {
		n.mu.Unlock()
		return
	}
	delete(n.hosted, key)
	n.met.sessionsOwned.Set(int64(len(n.hosted)))
	for _, l := range n.links {
		delete(l.racked, key)
		delete(l.sent, key)
		delete(l.opened, key)
	}
	n.met.supersedes.Inc()
	ho := hs.handoff
	hs.handoff = nil
	n.updateLagLocked()
	n.cond.Broadcast()
	n.mu.Unlock()
	if ho != nil {
		ho.finish(fmt.Errorf("cluster: session %s superseded during handoff", key))
	}
	n.log("cluster: session %s (epoch %d) superseded by epoch %d at %s: %s", key, hs.epoch, epoch, from, reason)
	n.srv.Supersede(key, from, reason)
}

// recoverSession is the server's recovery hook: a resume named a session
// with no local state. If this node is not in the key's placement (or is
// draining) it redirects; if it holds a replica log it promotes itself —
// minting a fencing epoch past the log's, rebuilding the session by
// replay, and taking over replication to the remaining successors.
// Promotion happens even while the old owner's feeder link is still
// live: the client resuming here is the evidence that the owner is
// unreachable where it matters (a node can be dead to clients yet keep
// its outbound replication up), and the minted epoch fences the old
// incarnation the moment its next replicated message is rejected.
// Otherwise the session is simply unknown here (the client's candidate
// sweep moves on).
func (n *Node) recoverSession(key string) (*server.Session, error) {
	succ := n.ring.Successors(key, n.r)
	inPlacement := false
	for _, s := range succ {
		if s == n.self {
			inPlacement = true
			break
		}
	}
	if !inPlacement {
		n.met.redirects.Inc()
		return nil, &server.RejectError{
			Code:  server.CodeNotOwner,
			Owner: succ[0],
			Msg:   fmt.Sprintf("cluster: session %q is not placed on this node; dial %s", key, succ[0]),
		}
	}

	n.mu.Lock()
	if n.draining {
		if alt := firstOther(succ, n.self); alt != "" {
			n.mu.Unlock()
			n.met.redirects.Inc()
			return nil, &server.RejectError{
				Code:  server.CodeNotOwner,
				Owner: alt,
				Msg:   fmt.Sprintf("cluster: node is draining; dial %s", alt),
			}
		}
	}
	if wait, racing := n.promoting[key]; racing {
		// Another connection is already promoting this key: wait for it,
		// then hand back whatever it built. A bye-terminated recovery
		// leaves no live session — returning (nil, nil) sends the caller
		// to the morgue, where the terminal replay now lives.
		n.mu.Unlock()
		<-wait
		return n.srv.Session(key), nil
	}
	rl := n.replicated[key]
	if rl == nil {
		n.mu.Unlock()
		return nil, nil // genuinely unknown here
	}
	done := make(chan struct{})
	n.promoting[key] = done
	epoch := n.mintEpochLocked(key, rl.epoch)
	hello := rl.hello
	frames := append([]server.ClientFrame(nil), rl.frames...)
	n.mu.Unlock()

	defer func() {
		n.mu.Lock()
		delete(n.promoting, key)
		n.mu.Unlock()
		close(done)
	}()

	mode, _ := ParseDurability(hello.Durability)
	n.log("cluster: promoting %s from replica log (%d frames, epoch %d → %d)", key, len(frames), rl.epoch, epoch)
	sess, err := n.srv.OpenRecovered(hello, frames)
	if err != nil {
		return nil, fmt.Errorf("cluster: promote %s: %v", key, err)
	}
	n.met.failovers.Inc()
	// This node is the session's host now: replicate the whole backlog to
	// the remaining successors under the new epoch (replicas fence their
	// stale copies and re-ingest from seq 1).
	n.registerHosted(key, hello, frames, epoch, mode)
	return sess, nil
}

package cluster

import (
	"fmt"
	"testing"
)

var ringNodes = []string{"10.0.0.1:7457", "10.0.0.2:7457", "10.0.0.3:7457"}

// TestRingGoldenPlacement pins the exact placement of a fixed key set on
// a fixed membership and seed. If this test breaks, every deployed ring
// disagrees with every old one: placement is wire-compatible state, not
// an implementation detail.
func TestRingGoldenPlacement(t *testing.T) {
	r, err := NewRing(ringNodes, DefaultRingSeed)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{
		"sess-0": "10.0.0.3:7457",
		"sess-1": "10.0.0.2:7457",
		"sess-2": "10.0.0.3:7457",
		"sess-3": "10.0.0.1:7457",
		"sess-4": "10.0.0.3:7457",
		"sess-5": "10.0.0.2:7457",
		"sess-6": "10.0.0.1:7457",
		"sess-7": "10.0.0.1:7457",
		"cart":   "10.0.0.1:7457",
		"users":  "10.0.0.3:7457",
	}
	for key, want := range golden {
		if got := r.Owner(key); got != want {
			t.Errorf("Owner(%q) = %s, want %s", key, got, want)
		}
	}
	// Successor chains start with the owner and never repeat a node.
	for key := range golden {
		succ := r.Successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("Successors(%q, 3) = %v", key, succ)
		}
		if succ[0] != r.Owner(key) {
			t.Errorf("Successors(%q)[0] = %s, owner %s", key, succ[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Errorf("Successors(%q) repeats %s", key, s)
			}
			seen[s] = true
		}
	}
}

// TestRingDeterministicAcrossRestarts asserts placement is a pure
// function of (membership set, seed): independently constructed rings,
// including ones built from a permuted peer list, agree on every key.
func TestRingDeterministicAcrossRestarts(t *testing.T) {
	a, _ := NewRing(ringNodes, 42)
	b, _ := NewRing([]string{ringNodes[2], ringNodes[0], ringNodes[1]}, 42)
	other, _ := NewRing(ringNodes, 43)
	differ := 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: ring order changed placement (%s vs %s)", key, a.Owner(key), b.Owner(key))
		}
		for j, s := range a.Successors(key, 3) {
			if b.Successors(key, 3)[j] != s {
				t.Fatalf("key %q: successor %d differs across construction order", key, j)
			}
		}
		if a.Owner(key) != other.Owner(key) {
			differ++
		}
	}
	// A different seed must actually reshuffle placement.
	if differ == 0 {
		t.Error("seed 42 and 43 place all 500 keys identically; seed is not mixed in")
	}
}

// TestRingBoundedMovement asserts the consistent-hashing contract: when
// a node joins or leaves, only ~1/N of keys move, and keys not owned by
// the departed node never move at all.
func TestRingBoundedMovement(t *testing.T) {
	const keys = 4000
	nodes := []string{"n1:1", "n2:1", "n3:1", "n4:1"}
	full, _ := NewRing(nodes, 7)
	smaller, _ := NewRing(nodes[:3], 7) // n4 leaves

	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("s-%d", i)
		before, after := full.Owner(key), smaller.Owner(key)
		if before != after {
			moved++
			if before != "n4:1" {
				t.Fatalf("key %q moved from surviving node %s to %s", key, before, after)
			}
			// A moved key must land on its former second choice: that is
			// the node already holding its replicated journal.
			if want := full.Successors(key, 2)[1]; after != want {
				t.Fatalf("key %q moved to %s, want former successor %s", key, after, want)
			}
		}
	}
	// Expected movement is keys/4; allow a generous tolerance band.
	lo, hi := keys/4-keys/16, keys/4+keys/16
	if moved < lo || moved > hi {
		t.Errorf("node leave moved %d/%d keys, want within [%d,%d] (~1/N)", moved, keys, lo, hi)
	}

	// Join is the same property in reverse: growing 3 → 4 moves only
	// keys that the new ring assigns to the new node.
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("s-%d", i)
		if smaller.Owner(key) != full.Owner(key) && full.Owner(key) != "n4:1" {
			t.Fatalf("key %q relocated on join without involving the new node", key)
		}
	}
}

// TestRingEvenDistribution asserts HRW's load balance: each node owns
// its fair share of keys within a ±25% band.
func TestRingEvenDistribution(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%d:7457", i)
		}
		r, _ := NewRing(nodes, 11)
		const keys = 8000
		counts := map[string]int{}
		for i := 0; i < keys; i++ {
			counts[r.Owner(fmt.Sprintf("session-%d", i))]++
		}
		fair := keys / n
		for node, c := range counts {
			if c < fair*3/4 || c > fair*5/4 {
				t.Errorf("%d nodes: %s owns %d keys, fair share %d (±25%%)", n, node, c, fair)
			}
		}
	}
}

// TestRingValidation covers the constructor's error paths and the
// degenerate single-node ring.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 1); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 1); err == nil {
		t.Error("empty node address accepted")
	}
	r, err := NewRing([]string{"only:1", "only:1"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Nodes()) != 1 || r.Owner("anything") != "only:1" {
		t.Errorf("deduped single-node ring misbehaves: %v", r.Nodes())
	}
	if got := r.Successors("k", 5); len(got) != 1 {
		t.Errorf("Successors beyond membership = %v", got)
	}
	if !r.Contains("only:1") || r.Contains("other:1") {
		t.Error("Contains is wrong")
	}
}

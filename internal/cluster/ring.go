// Package cluster turns hbserver into one node of a multi-node
// detection cluster: sessions are placed on nodes by a deterministic
// consistent-hash ring, the per-session frame journal is replicated to
// the placement's ring successors over an internal NDJSON protocol
// riding the same listener as client ingest, and a client whose
// session's home node dies can resume onto a replica node and continue
// from its last acked seq — with verdicts, evidence, and determining
// prefixes bit-identical to an offline core.Detect run, because the
// replica rebuilds the session by replaying the replicated frame log
// through the very same deterministic monitor pipeline.
//
// Membership is static (the -cluster-peers flag); there is no failure
// detector, no consensus, and no fencing. What is and is not guaranteed
// during failover is spelled out in DESIGN.md ("Decision 11").
package cluster

import (
	"fmt"
	"sort"
)

// DefaultRingSeed is the placement seed nodes and clients use unless
// configured otherwise. Every node and every ring-aware client must
// agree on the seed, or they will disagree about session placement.
const DefaultRingSeed uint64 = 1

// Ring places string keys on a static set of nodes by rendezvous
// (highest-random-weight) hashing: every (node, key) pair gets a seeded
// 64-bit score and the key's owner is the highest-scoring node, its
// replica successors the next-highest. Rendezvous hashing gives the two
// properties the cluster needs without virtual-node bookkeeping: even
// distribution (scores are i.i.d. uniform per node) and minimal
// disruption (removing a node moves exactly the keys it owned — ~1/N —
// and every moved key lands on its former second choice, which is
// precisely the replica already holding its journal).
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	nodes []string // sorted, unique
	seed  uint64
	hash  []uint64 // per-node identity hash, parallel to nodes
}

// NewRing builds a ring over the given node addresses. Nodes are
// deduplicated and sorted, so rings built from differently-ordered peer
// lists are identical — placement depends only on the membership set
// and the seed.
func NewRing(nodes []string, seed uint64) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node address in ring")
		}
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, seed: seed, hash: make([]uint64, len(uniq))}
	for i, n := range uniq {
		r.hash[i] = fnv64a(n)
	}
	return r, nil
}

// Nodes returns the ring membership, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Seed returns the placement seed.
func (r *Ring) Seed() uint64 { return r.seed }

// Contains reports whether node is a ring member.
func (r *Ring) Contains(node string) bool {
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// score is the rendezvous weight of key on node i: the node identity
// hash, the key hash, and the seed mixed through a splitmix64-style
// finalizer so per-node streams are uncorrelated.
func (r *Ring) score(i int, keyHash uint64) uint64 {
	z := r.hash[i] ^ (keyHash * 0x9e3779b97f4a7c15) ^ r.seed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Owner returns the node that owns key: the highest rendezvous score,
// ties broken by node name so placement is a pure function of
// (membership, seed, key).
func (r *Ring) Owner(key string) string {
	kh := fnv64a(key)
	best := 0
	bestScore := r.score(0, kh)
	for i := 1; i < len(r.nodes); i++ {
		if s := r.score(i, kh); s > bestScore {
			best, bestScore = i, s
		}
	}
	return r.nodes[best]
}

// Successors returns up to n nodes for key in placement order: the
// owner first, then the replica successors by descending score. A
// session with replication factor R lives on Successors(key, R).
func (r *Ring) Successors(key string, n int) []string {
	if n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	kh := fnv64a(key)
	type scored struct {
		node  string
		score uint64
	}
	all := make([]scored, len(r.nodes))
	for i, node := range r.nodes {
		all[i] = scored{node: node, score: r.score(i, kh)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].node < all[j].node
	})
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].node
	}
	return out
}

// fnv64a is the 64-bit FNV-1a string hash — dependency-free and stable
// across platforms, which is what makes golden placement tests possible.
func fnv64a(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

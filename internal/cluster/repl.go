package cluster

import (
	"net"
	"time"

	"repro/internal/server"
)

// peerLink is this node's outgoing replication link to one peer. A link
// is created lazily when a hosted session first needs the peer and then
// lives until shutdown: a dedicated goroutine dials (with backoff),
// performs the repl-hello handshake, and streams repl-open/repl-frame
// messages for every hosted session placed on the peer, while a reader
// goroutine collects repl-acks into the racked watermark that gates
// client acks. On reconnect the send cursors reset to the racked
// watermark — everything unacknowledged is re-sent, and the replica
// dedupes by seq, so a dropped link never leaves a hole in a log.
//
// All fields are guarded by the owning Node's mu.
type peerLink struct {
	node *Node
	peer string // ring identity
	addr string // dial address (ReplTargets override, else the identity)

	conn      net.Conn
	connected bool             // handshake done; racked gates acks while true
	racked    map[string]int64 // per-session contiguous ack high-water
	sent      map[string]int   // per-session frames written this connection
	opened    map[string]bool  // repl-open written this connection
}

// ensureLinkLocked creates (once) and starts the link to peer. Caller
// holds n.mu.
func (n *Node) ensureLinkLocked(peer string) {
	if n.links[peer] != nil || n.closed {
		return
	}
	addr := peer
	if a, ok := n.dial[peer]; ok {
		addr = a
	}
	l := &peerLink{
		node:   n,
		peer:   peer,
		addr:   addr,
		racked: make(map[string]int64),
		sent:   make(map[string]int),
		opened: make(map[string]bool),
	}
	n.links[peer] = l
	n.wg.Add(1)
	go l.run()
}

// shut closes the link's current connection so its goroutines unblock;
// the run loop observes node.closed and exits.
func (l *peerLink) shut() {
	l.node.mu.Lock()
	conn := l.conn
	l.node.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// done reports whether the node is shutting down.
func (l *peerLink) done() bool {
	l.node.mu.Lock()
	defer l.node.mu.Unlock()
	return l.node.closed
}

// sleep waits d or until shutdown; it reports whether to exit.
func (l *peerLink) sleep(d time.Duration) bool {
	select {
	case <-l.node.stopc:
		return true
	case <-time.After(d):
		return false
	}
}

func (l *peerLink) run() {
	defer l.node.wg.Done()
	backoff := 10 * time.Millisecond
	for {
		if l.done() {
			return
		}
		conn, err := net.DialTimeout("tcp", l.addr, 2*time.Second)
		if err != nil {
			l.node.met.connErrors.Inc()
			if l.sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		l.node.mu.Lock()
		if l.node.closed {
			l.node.mu.Unlock()
			conn.Close()
			return
		}
		l.conn = conn
		l.node.mu.Unlock()

		sc := server.NewFrameScanner(conn)
		if err := l.handshake(conn, sc); err != nil {
			l.node.met.connErrors.Inc()
			conn.Close()
			if l.sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = 10 * time.Millisecond
		l.node.met.resyncs.Inc()
		l.node.log("cluster: replication link to %s up", l.peer)

		ackDone := make(chan struct{})
		go func() {
			defer close(ackDone)
			l.readAcks(conn, sc)
		}()
		l.sendLoop(conn)
		conn.Close()
		<-ackDone
		l.node.met.connErrors.Inc()
	}
}

// handshake opens the replication dialog: repl-hello, then wait for the
// repl-welcome before writing anything else — the receiving server peeks
// only the first line before handing the connection over, so nothing may
// follow the hello until the replica has taken it.
func (l *peerLink) handshake(conn net.Conn, sc *server.FrameScanner) error {
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	defer conn.SetDeadline(time.Time{})
	if _, err := conn.Write(appendReplMsg(replMsg{Type: msgReplHello, From: l.node.self})); err != nil {
		return err
	}
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return err
		}
		return net.ErrClosed
	}
	m, err := decodeReplMsg(sc.Bytes())
	if err != nil {
		return err
	}
	if m.Type != msgReplWelcome {
		return net.ErrClosed
	}
	return nil
}

// sendLoop streams pending repl messages until the connection dies or
// the node shuts down. Batches are snapshotted under the node lock and
// written outside it; the sent cursors advance optimistically and reset
// to the racked watermark on the next connection.
func (l *peerLink) sendLoop(conn net.Conn) {
	n := l.node
	n.mu.Lock()
	l.connected = true
	for k := range l.opened {
		delete(l.opened, k)
	}
	for k, r := range l.racked {
		l.sent[k] = int(r)
	}
	n.cond.Broadcast() // connectivity change: the ack gate now binds on this link
	for {
		if n.closed || l.conn != conn {
			break
		}
		batch := l.collectLocked()
		if len(batch) == 0 {
			n.cond.Wait()
			continue
		}
		n.mu.Unlock()
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		_, err := conn.Write(batch)
		n.mu.Lock()
		if err != nil {
			break
		}
	}
	l.connected = false
	if l.conn == conn {
		l.conn = nil
	}
	n.cond.Broadcast()
	n.mu.Unlock()
}

// collectLocked gathers the next batch of repl messages for this peer:
// an open for every hosted session not yet announced on this connection,
// then its unsent frames in seq order, bounded per batch so one busy
// session cannot monopolize the wire buffer. Caller holds n.mu.
func (l *peerLink) collectLocked() []byte {
	const maxBatch = 256
	var batch []byte
	msgs := 0
	for key, hs := range l.node.hosted {
		if !hs.replicatesTo(l.peer) {
			continue
		}
		if !l.opened[key] {
			l.opened[key] = true
			hello := hs.hello
			batch = append(batch, appendReplMsg(replMsg{Type: msgReplOpen, Session: key, Hello: &hello})...)
			msgs++
		}
		for l.sent[key] < len(hs.frames) && msgs < maxBatch {
			f := hs.frames[l.sent[key]]
			l.sent[key]++
			batch = append(batch, appendReplMsg(replMsg{Type: msgReplFrame, Session: key, Frame: &f})...)
			l.node.met.framesSent.Inc()
			msgs++
		}
		if msgs >= maxBatch {
			break
		}
	}
	return batch
}

// replicatesTo reports whether peer holds a copy of this session.
func (hs *hostedSession) replicatesTo(peer string) bool {
	for _, p := range hs.replicas {
		if p == peer {
			return true
		}
	}
	return false
}

// readAcks drains repl-ack messages, advancing the racked watermark and
// re-offering client acks the gate withheld. It exits when the
// connection dies, waking the send loop.
func (l *peerLink) readAcks(conn net.Conn, sc *server.FrameScanner) {
	n := l.node
	for sc.Scan() {
		m, err := decodeReplMsg(sc.Bytes())
		if err != nil || m.Type != msgReplAck || m.Session == "" {
			break
		}
		n.met.acksRecv.Inc()
		n.mu.Lock()
		if m.Seq > l.racked[m.Session] {
			l.racked[m.Session] = m.Seq
		}
		n.mu.Unlock()
		n.noteAcks(m.Session)
	}
	conn.Close()
	n.mu.Lock()
	if l.conn == conn {
		l.conn = nil
		l.connected = false
	}
	n.cond.Broadcast()
	n.mu.Unlock()
}

// serveRepl is the replica side of a replication link: it runs on the
// takeover connection's goroutine, appends in-order frames to the
// per-session replica logs, and acks every message with the log's
// contiguous high-water seq. Out-of-order or duplicate frames are
// acknowledged without being applied — the resync protocol relies on
// redelivery being idempotent.
func (n *Node) serveRepl(from string, conn net.Conn) {
	n.log("cluster: replication link from %s", from)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.inbound[conn] = struct{}{}
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()
	// Replication links idle legitimately; the ingest read deadline the
	// server armed before the takeover must not kill them.
	conn.SetReadDeadline(time.Time{})
	if _, err := conn.Write(appendReplMsg(replMsg{Type: msgReplWelcome})); err != nil {
		return
	}
	sc := server.NewFrameScanner(conn)
	for sc.Scan() {
		m, err := decodeReplMsg(sc.Bytes())
		if err != nil {
			return
		}
		var high int64
		switch m.Type {
		case msgReplOpen:
			if m.Hello == nil || m.Session == "" {
				return
			}
			n.mu.Lock()
			rl := n.replicated[m.Session]
			if rl == nil {
				rl = &replicaLog{hello: *m.Hello}
				n.replicated[m.Session] = rl
				n.met.sessionsReplicated.Set(int64(len(n.replicated)))
			}
			high = int64(len(rl.frames))
			n.mu.Unlock()
		case msgReplFrame:
			if m.Frame == nil || m.Session == "" {
				return
			}
			n.mu.Lock()
			rl := n.replicated[m.Session]
			if rl == nil {
				n.mu.Unlock()
				return // frame before open: protocol error
			}
			if m.Frame.Seq == int64(len(rl.frames))+1 {
				rl.frames = append(rl.frames, *m.Frame)
				n.met.framesRecv.Inc()
			}
			high = int64(len(rl.frames))
			n.mu.Unlock()
		default:
			return
		}
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if _, err := conn.Write(appendReplMsg(replMsg{Type: msgReplAck, Session: m.Session, Seq: high})); err != nil {
			return
		}
	}
}

package cluster

import (
	"fmt"
	"hash/fnv"
	"net"
	"time"

	"repro/internal/backoff"
	"repro/internal/server"
)

// peerLink is this node's outgoing replication link to one peer. A link
// is created lazily when a hosted session first needs the peer and then
// lives until shutdown: a dedicated goroutine dials (with seeded
// exponential backoff), performs the repl-hello handshake, and streams
// repl-open/repl-frame messages for every hosted session placed on the
// peer, while a reader goroutine collects repl-acks into the racked
// watermark that gates client acks. On reconnect the send cursors reset
// to the racked watermark — everything unacknowledged is re-sent, and
// the replica dedupes by seq, so a dropped link never leaves a hole in a
// log.
//
// All fields are guarded by the owning Node's mu.
type peerLink struct {
	node *Node
	peer string // ring identity
	addr string // dial address (ReplTargets override, else the identity)

	conn      net.Conn
	connected bool             // handshake done; racked gates acks while true
	racked    map[string]int64 // per-session contiguous ack high-water
	sent      map[string]int   // per-session frames written this connection
	opened    map[string]bool  // repl-open written this connection
	// control queues session-scoped control messages (drain handoffs).
	// They are flushed after a session's open/frames on the current
	// connection — a handoff must never overtake the log it transfers —
	// and entries for sessions not yet opened on this connection are
	// retained for a later batch.
	control []replMsg
}

// linkSeed derives the deterministic jitter seed of one directed
// replication link: distinct per (self, peer) pair so a cluster's links
// never thunder in lockstep, folded with the ring seed so two clusters
// sharing a host decorrelate too.
func linkSeed(self, peer string, ringSeed uint64) int64 {
	h := fnv.New64a()
	h.Write([]byte(self))
	h.Write([]byte{0})
	h.Write([]byte(peer))
	return int64(h.Sum64() ^ ringSeed)
}

// ensureLinkLocked creates (once) and starts the link to peer. Caller
// holds n.mu.
func (n *Node) ensureLinkLocked(peer string) {
	if n.links[peer] != nil || n.closed {
		return
	}
	addr := peer
	if a, ok := n.dial[peer]; ok {
		addr = a
	}
	l := &peerLink{
		node:   n,
		peer:   peer,
		addr:   addr,
		racked: make(map[string]int64),
		sent:   make(map[string]int),
		opened: make(map[string]bool),
	}
	n.links[peer] = l
	n.wg.Add(1)
	go l.run()
}

// shut closes the link's current connection so its goroutines unblock;
// the run loop observes node.closed and exits.
func (l *peerLink) shut() {
	l.node.mu.Lock()
	conn := l.conn
	l.node.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// done reports whether the node is shutting down.
func (l *peerLink) done() bool {
	l.node.mu.Lock()
	defer l.node.mu.Unlock()
	return l.node.closed
}

// sleep waits d or until shutdown; it reports whether to exit.
func (l *peerLink) sleep(d time.Duration) bool {
	select {
	case <-l.node.stopc:
		return true
	case <-time.After(d):
		return false
	}
}

func (l *peerLink) run() {
	defer l.node.wg.Done()
	pol := backoff.New(10*time.Millisecond, time.Second, linkSeed(l.node.self, l.peer, l.node.seed))
	attempt := 0
	dials := 0
	for {
		if l.done() {
			return
		}
		if dials > 0 {
			l.node.met.linkReconnects.Inc()
		}
		dials++
		conn, err := net.DialTimeout("tcp", l.addr, 2*time.Second)
		if err != nil {
			l.node.met.connErrors.Inc()
			if l.sleep(pol.Delay(attempt)) {
				return
			}
			attempt++
			continue
		}
		l.node.mu.Lock()
		if l.node.closed {
			l.node.mu.Unlock()
			conn.Close()
			return
		}
		l.conn = conn
		l.node.mu.Unlock()

		sc := server.NewFrameScanner(conn)
		if err := l.handshake(conn, sc); err != nil {
			l.node.met.connErrors.Inc()
			conn.Close()
			if l.sleep(pol.Delay(attempt)) {
				return
			}
			attempt++
			continue
		}
		attempt = 0
		l.node.met.resyncs.Inc()
		l.node.log("cluster: replication link to %s up", l.peer)

		ackDone := make(chan struct{})
		go func() {
			defer close(ackDone)
			l.readAcks(conn, sc)
		}()
		l.sendLoop(conn)
		conn.Close()
		<-ackDone
		l.node.met.connErrors.Inc()
	}
}

// handshake opens the replication dialog: repl-hello, then wait for the
// repl-welcome before writing anything else — the receiving server peeks
// only the first line before handing the connection over, so nothing may
// follow the hello until the replica has taken it.
func (l *peerLink) handshake(conn net.Conn, sc *server.FrameScanner) error {
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	defer conn.SetDeadline(time.Time{})
	if _, err := conn.Write(appendReplMsg(replMsg{Type: msgReplHello, From: l.node.self})); err != nil {
		return err
	}
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return err
		}
		return net.ErrClosed
	}
	m, err := decodeReplMsg(sc.Bytes())
	if err != nil {
		return err
	}
	if m.Type != msgReplWelcome {
		return net.ErrClosed
	}
	return nil
}

// sendLoop streams pending repl messages until the connection dies or
// the node shuts down. Batches are snapshotted under the node lock and
// written outside it; the sent cursors advance optimistically and reset
// to the racked watermark on the next connection.
func (l *peerLink) sendLoop(conn net.Conn) {
	n := l.node
	n.mu.Lock()
	l.connected = true
	for k := range l.opened {
		delete(l.opened, k)
	}
	// Reset every send cursor, not just the racked ones: a session whose
	// previous connection died before any ack arrived has sent > 0 with
	// no racked entry, and skipping it would strand its unacked frames —
	// holing the replica log and wedging the durable gate forever.
	for k := range l.sent {
		l.sent[k] = int(l.racked[k])
	}
	n.updateDegradedLocked()
	n.cond.Broadcast() // connectivity change: the ack gate now binds on this link
	for {
		if n.closed || l.conn != conn {
			break
		}
		batch := l.collectLocked()
		if len(batch) == 0 {
			n.cond.Wait()
			continue
		}
		n.mu.Unlock()
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		_, err := conn.Write(batch)
		n.mu.Lock()
		if err != nil {
			break
		}
	}
	l.connected = false
	if l.conn == conn {
		l.conn = nil
	}
	l.abortControlLocked()
	n.updateDegradedLocked()
	n.cond.Broadcast()
	n.mu.Unlock()
}

// abortControlLocked drops this link's queued control messages and fails
// the handoffs they carried: a handoff offer must ride the connection
// whose acks proved the replica holds the full log, so a dropped link
// invalidates it. Drain surfaces the error and the session stays hosted
// (the ordinary failover path covers it if the node dies anyway). Caller
// holds n.mu.
func (l *peerLink) abortControlLocked() {
	n := l.node
	l.control = nil
	for _, hs := range n.hosted {
		if hs.handoff != nil && hs.handoff.target == l.peer {
			ho := hs.handoff
			hs.handoff = nil
			ho.finish(fmt.Errorf("cluster: replication link to %s lost during handoff", l.peer))
		}
	}
}

// collectLocked gathers the next batch of repl messages for this peer:
// an open for every hosted session not yet announced on this connection,
// then its unsent frames in seq order, bounded per batch so one busy
// session cannot monopolize the wire buffer; finally any queued control
// messages whose session is open on this connection. Caller holds n.mu.
func (l *peerLink) collectLocked() []byte {
	const maxBatch = 256
	var batch []byte
	msgs := 0
	for key, hs := range l.node.hosted {
		if !hs.replicatesTo(l.peer) {
			continue
		}
		if !l.opened[key] {
			l.opened[key] = true
			hello := hs.hello
			batch = append(batch, appendReplMsg(replMsg{Type: msgReplOpen, Session: key, Epoch: hs.epoch, Hello: &hello})...)
			msgs++
		}
		for l.sent[key] < len(hs.frames) && msgs < maxBatch {
			f := hs.frames[l.sent[key]]
			l.sent[key]++
			batch = append(batch, appendReplMsg(replMsg{Type: msgReplFrame, Session: key, Epoch: hs.epoch, Frame: &f})...)
			l.node.met.framesSent.Inc()
			msgs++
		}
		if msgs >= maxBatch {
			break
		}
	}
	if msgs < maxBatch && len(l.control) > 0 {
		kept := l.control[:0]
		for _, m := range l.control {
			if !l.opened[m.Session] || msgs >= maxBatch {
				kept = append(kept, m)
				continue
			}
			batch = append(batch, appendReplMsg(m)...)
			msgs++
		}
		l.control = kept
		if len(l.control) == 0 {
			l.control = nil
		}
	}
	return batch
}

// replicatesTo reports whether peer holds a copy of this session.
func (hs *hostedSession) replicatesTo(peer string) bool {
	for _, p := range hs.replicas {
		if p == peer {
			return true
		}
	}
	return false
}

// readAcks drains the replica's replies: repl-acks advance the racked
// watermark (waking the drain handoff and re-offering client acks the
// gate withheld), repl-rejects carry fencing verdicts — a stale-epoch
// reject means this node has been superseded — and repl-handoff-acks
// complete a drain transfer. It exits when the connection dies, waking
// the send loop.
func (l *peerLink) readAcks(conn net.Conn, sc *server.FrameScanner) {
	n := l.node
loop:
	for sc.Scan() {
		m, err := decodeReplMsg(sc.Bytes())
		if err != nil || m.Session == "" {
			break
		}
		switch m.Type {
		case msgReplAck:
			n.met.acksRecv.Inc()
			n.mu.Lock()
			if hs := n.hosted[m.Session]; hs != nil && m.Epoch != 0 && m.Epoch != hs.epoch {
				// An ack for a different incarnation of the key (the replica
				// has not caught up with a reuse or handoff yet) must not
				// advance this incarnation's watermark.
				n.mu.Unlock()
				continue
			}
			if m.Seq > l.racked[m.Session] {
				l.racked[m.Session] = m.Seq
				n.cond.Broadcast() // the drain handoff waits on racked
			}
			n.mu.Unlock()
			n.noteAcks(m.Session)
		case msgReplReject:
			if m.Code == rejectStaleEpoch {
				n.superseded(m.Session, m.Epoch, l.peer, "stale-epoch reject from replica")
				continue
			}
			n.failHandoff(m.Session, l.peer, fmt.Errorf("cluster: %s rejected handoff of %s: %s", l.peer, m.Session, m.Code))
		case msgReplHandoffAck:
			n.completeHandoff(m.Session, l.peer, m.Epoch)
		default:
			break loop
		}
	}
	conn.Close()
	n.mu.Lock()
	if l.conn == conn {
		l.conn = nil
		l.connected = false
		l.abortControlLocked()
		n.updateDegradedLocked()
	}
	n.cond.Broadcast()
	n.mu.Unlock()
}

// serveRepl is the replica side of a replication link: it runs on the
// takeover connection's goroutine, appends in-order frames to the
// per-session replica logs, and acks every message with the log's
// contiguous high-water seq and epoch. Out-of-order or duplicate frames
// are acknowledged without being applied — the resync protocol relies on
// redelivery being idempotent.
//
// Epoch fencing happens here. An open carrying a newer epoch than the
// held log truncates it (the old incarnation's frames are garbage now)
// and adopts the connection as the log's feeder; an equal epoch re-open
// — the owner reconnecting — adopts the new connection last-writer-wins.
// Any session-scoped message carrying an older epoch is refused with a
// typed stale-epoch reject, which tells a zombie ex-owner it has been
// superseded. Frames from a connection that is not the current feeder
// are acknowledged at the current high-water without being applied, so
// a benign duplicate sender can never fork a log.
func (n *Node) serveRepl(from string, conn net.Conn) {
	n.log("cluster: replication link from %s", from)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.inbound[conn] = struct{}{}
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.inbound, conn)
		for _, rl := range n.replicated {
			if rl.feeder == conn {
				rl.feeder = nil
				rl.from = ""
			}
		}
		n.mu.Unlock()
	}()
	// Replication links idle legitimately; the ingest read deadline the
	// server armed before the takeover must not kill them.
	conn.SetReadDeadline(time.Time{})
	if _, err := conn.Write(appendReplMsg(replMsg{Type: msgReplWelcome})); err != nil {
		return
	}
	sc := server.NewFrameScanner(conn)
	for sc.Scan() {
		m, err := decodeReplMsg(sc.Bytes())
		if err != nil {
			return
		}
		var reply replMsg
		switch m.Type {
		case msgReplOpen:
			if m.Hello == nil || m.Session == "" {
				return
			}
			// A newer incarnation opening here is also the authoritative
			// word that any hosted copy of the key this node still runs
			// (an ex-owner that missed its own demotion) is stale.
			n.superseded(m.Session, m.Epoch, from, "newer incarnation replicated here")
			n.mu.Lock()
			rl := n.replicated[m.Session]
			if rl == nil {
				if held := n.epochs[m.Session]; held > m.Epoch {
					// No log, but this node has seen a newer incarnation of
					// the key (it may host it right now): a zombie ex-owner
					// re-opening at its old epoch must not plant a stale log
					// here. Reject instead of creating one.
					n.met.staleEpochs.Inc()
					reply = replMsg{Type: msgReplReject, Session: m.Session, Code: rejectStaleEpoch, Epoch: held}
					n.mu.Unlock()
					n.log("cluster: rejected stale open of %s from %s (epoch %d < held %d)", m.Session, from, m.Epoch, held)
					break
				}
				rl = &replicaLog{hello: *m.Hello, epoch: m.Epoch}
				n.replicated[m.Session] = rl
				n.met.sessionsReplicated.Set(int64(len(n.replicated)))
			}
			switch {
			case m.Epoch < rl.epoch:
				n.met.staleEpochs.Inc()
				reply = replMsg{Type: msgReplReject, Session: m.Session, Code: rejectStaleEpoch, Epoch: rl.epoch}
				n.mu.Unlock()
				n.log("cluster: rejected stale open of %s from %s (epoch %d < %d)", m.Session, from, m.Epoch, rl.epoch)
			default:
				if m.Epoch > rl.epoch {
					// Fence: the held log belongs to a dead incarnation.
					n.met.fences.Inc()
					n.log("cluster: fencing %s (epoch %d → %d, %d frames truncated)", m.Session, rl.epoch, m.Epoch, len(rl.frames))
					rl.frames = nil
					rl.hello = *m.Hello
					rl.epoch = m.Epoch
				}
				rl.feeder = conn
				rl.from = from
				n.observeEpochLocked(m.Session, m.Epoch)
				reply = replMsg{Type: msgReplAck, Session: m.Session, Seq: int64(len(rl.frames)), Epoch: rl.epoch}
				n.mu.Unlock()
			}
		case msgReplFrame:
			if m.Frame == nil || m.Session == "" {
				return
			}
			n.mu.Lock()
			rl := n.replicated[m.Session]
			if rl == nil {
				// No log: either this node promoted the key out of its
				// replica set (failover or handoff adoption deleted the log
				// while the old feeder was still streaming) — tell the
				// sender it is fenced — or a frame genuinely preceded its
				// open, which is a protocol error worth dropping the link.
				held := n.epochs[m.Session]
				n.mu.Unlock()
				if held > m.Epoch {
					n.met.staleEpochs.Inc()
					reply = replMsg{Type: msgReplReject, Session: m.Session, Code: rejectStaleEpoch, Epoch: held}
					break
				}
				return
			}
			switch {
			case m.Epoch < rl.epoch:
				n.met.staleEpochs.Inc()
				reply = replMsg{Type: msgReplReject, Session: m.Session, Code: rejectStaleEpoch, Epoch: rl.epoch}
			case rl.feeder != conn:
				// Not the current feeder: acknowledge without applying, so
				// a superseded connection drains harmlessly instead of
				// forking the log.
				reply = replMsg{Type: msgReplAck, Session: m.Session, Seq: int64(len(rl.frames)), Epoch: rl.epoch}
			default:
				if m.Frame.Seq == int64(len(rl.frames))+1 {
					rl.frames = append(rl.frames, *m.Frame)
					n.met.framesRecv.Inc()
				}
				reply = replMsg{Type: msgReplAck, Session: m.Session, Seq: int64(len(rl.frames)), Epoch: rl.epoch}
			}
			n.mu.Unlock()
		case msgReplHandoff:
			if m.Session == "" {
				return
			}
			reply = n.adoptHandoff(from, conn, m)
		default:
			return
		}
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if _, err := conn.Write(appendReplMsg(reply)); err != nil {
			return
		}
	}
}

// adoptHandoff is the replica side of a drain transfer: validate that
// the offer matches the held log exactly — fed by this connection, a
// strictly newer epoch, and every transferred frame already applied —
// then promote the log into a live session under the new epoch and
// become its owner. Any mismatch is refused without touching the log;
// the draining node keeps the session and reports the failed handoff.
func (n *Node) adoptHandoff(from string, conn net.Conn, m replMsg) replMsg {
	n.mu.Lock()
	rl := n.replicated[m.Session]
	held := int64(0)
	if rl != nil {
		held = rl.epoch
	}
	if rl == nil || rl.feeder != conn || m.Epoch <= rl.epoch ||
		int64(len(rl.frames)) != m.Seq || n.draining || n.closed {
		n.mu.Unlock()
		return replMsg{Type: msgReplReject, Session: m.Session, Code: rejectHandoffMismatch, Epoch: held}
	}
	if _, racing := n.promoting[m.Session]; racing {
		n.mu.Unlock()
		return replMsg{Type: msgReplReject, Session: m.Session, Code: rejectHandoffMismatch, Epoch: held}
	}
	done := make(chan struct{})
	n.promoting[m.Session] = done
	rl.epoch = m.Epoch
	rl.feeder = nil
	rl.from = ""
	n.observeEpochLocked(m.Session, m.Epoch)
	hello := rl.hello
	frames := append([]server.ClientFrame(nil), rl.frames...)
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.promoting, m.Session)
		n.mu.Unlock()
		close(done)
	}()

	mode, _ := ParseDurability(hello.Durability)
	n.log("cluster: adopting %s from draining %s (%d frames, epoch %d)", m.Session, from, len(frames), m.Epoch)
	if _, err := n.srv.OpenRecovered(hello, frames); err != nil {
		n.log("cluster: handoff adoption of %s failed: %v", m.Session, err)
		return replMsg{Type: msgReplReject, Session: m.Session, Code: rejectHandoffFailed, Epoch: m.Epoch}
	}
	n.registerHosted(m.Session, hello, frames, m.Epoch, mode)
	return replMsg{Type: msgReplHandoffAck, Session: m.Session, Epoch: m.Epoch}
}

package cluster_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/server"
)

// fuzzNode is the shared single-node cluster FuzzReplProtocol hammers;
// one per process keeps iterations cheap, and the per-iteration
// handshake doubles as the liveness probe — if a previous input wedged
// the replica handler, the next repl-welcome never arrives.
var (
	fuzzNodeOnce sync.Once
	fuzzNodeAddr string
	fuzzNode     *cluster.Node
)

func fuzzCluster(f *testing.F) string {
	fuzzNodeOnce.Do(func() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Fatal(err)
		}
		id := ln.Addr().String()
		reg := obs.NewRegistry()
		fuzzNode, err = cluster.New(
			server.Config{Registry: reg, ReadTimeout: time.Second, IdleTimeout: time.Second},
			cluster.NodeConfig{Self: id, Peers: []string{id}, Replicas: 2, Registry: reg},
		)
		if err != nil {
			f.Fatal(err)
		}
		go fuzzNode.Serve(ln) //nolint:errcheck // closed by Shutdown
		fuzzNodeAddr = id
	})
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		fuzzNode.Shutdown(ctx) //nolint:errcheck
	})
	return fuzzNodeAddr
}

// FuzzReplProtocol throws arbitrary bytes at the replica side of the
// replication protocol, after a well-formed repl-hello handshake — a
// hostile or buggy peer that authenticated as a cluster member. Seeds
// cover the epoch-fencing edges: negative and overflowing epochs,
// stale-epoch floods, handoff offers for unknown sessions and handoff
// replays, frames before their open, and malformed JSON. The property
// is the node never panics and never wedges: every iteration's
// handshake must succeed, whatever the previous one sent.
func FuzzReplProtocol(f *testing.F) {
	open := func(key string, epoch string) string {
		return `{"type":"repl-open","session":"` + key + `","epoch":` + epoch +
			`,"hello":{"type":"hello","processes":3,"resumable":true,"session":"` + key + `"}}` + "\n"
	}
	frame := func(key, epoch, seq string) string {
		return `{"type":"repl-frame","session":"` + key + `","epoch":` + epoch +
			`,"frame":{"type":"init","proc":1,"var":"x","value":1,"seq":` + seq + `}}` + "\n"
	}
	f.Add([]byte(open("k", "-1")))
	f.Add([]byte(open("k", "-9223372036854775808")))
	f.Add([]byte(open("k", "9223372036854775807") + frame("k", "9223372036854775807", "1")))
	f.Add([]byte(open("k", "5") + frame("k", "5", "1") + open("k", "7") + frame("k", "5", "2")))
	f.Add([]byte(open("k", "9") + open("k", "8") + open("k", "7") + open("k", "6") + open("k", "5"))) // stale flood
	f.Add([]byte(frame("k", "1", "1")))                                                               // frame before open
	f.Add([]byte(open("k", "2") + `{"type":"repl-handoff","session":"k","epoch":3,"seq":0}` + "\n" +
		`{"type":"repl-handoff","session":"k","epoch":3,"seq":0}` + "\n")) // handoff replay
	f.Add([]byte(`{"type":"repl-handoff","session":"ghost","epoch":1,"seq":5}` + "\n"))
	f.Add([]byte(`{"type":"repl-hello","from":"again"}` + "\n")) // hello mid-stream
	f.Add([]byte(`{"type":"repl-ack","session":"k","seq":1}` + "\n"))
	f.Add([]byte(`{"type":"repl-open","session":"","epoch":1}` + "\n"))
	f.Add([]byte(open("k", "1") + frame("k", "1", "-1") + frame("k", "1", "9223372036854775807")))
	f.Add([]byte("not json\n"))
	f.Add([]byte{0x00, 0xff, '\n'})
	addr := fuzzCluster(f)

	f.Fuzz(func(t *testing.T, data []byte) {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Skip("node saturated") // accept backlog under fuzz load
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(3 * time.Second))
		if _, err := conn.Write([]byte(`{"type":"repl-hello","from":"fuzz"}` + "\n")); err != nil {
			t.Skip("handshake write lost to a racing shutdown")
		}
		sc := server.NewFrameScanner(conn)
		if !sc.Scan() {
			t.Fatalf("no repl-welcome: the previous input wedged the replica handler (%v)", sc.Err())
		}
		conn.Write(data) //nolint:errcheck // the node may reject mid-write
		// Drain replies until the node closes the link or a short quiet
		// deadline; the scanner bounds every frame exactly as serveRepl's
		// peer would see it.
		conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		for sc.Scan() {
		}
	})
}

package cluster_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
)

// wireMsg mirrors the replication protocol line shape for raw-wire
// tests that speak the protocol by hand.
type wireMsg struct {
	Type    string          `json:"type"`
	From    string          `json:"from,omitempty"`
	Session string          `json:"session,omitempty"`
	Seq     int64           `json:"seq,omitempty"`
	Epoch   int64           `json:"epoch,omitempty"`
	Code    string          `json:"code,omitempty"`
	Hello   json.RawMessage `json:"hello,omitempty"`
	Frame   json.RawMessage `json:"frame,omitempty"`
}

// replDialog wraps a raw connection speaking the NDJSON replication
// protocol: send writes one line, recv decodes the next reply.
type replDialog struct {
	t    *testing.T
	conn net.Conn
	sc   *server.FrameScanner
}

func dialRepl(t *testing.T, addr, from string) *replDialog {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	d := &replDialog{t: t, conn: conn, sc: server.NewFrameScanner(conn)}
	d.send(fmt.Sprintf(`{"type":"repl-hello","from":%q}`, from))
	if m := d.recv(); m.Type != "repl-welcome" {
		t.Fatalf("handshake reply = %+v, want repl-welcome", m)
	}
	return d
}

func (d *replDialog) send(line string) {
	d.t.Helper()
	if _, err := d.conn.Write([]byte(line + "\n")); err != nil {
		d.t.Fatalf("write %s: %v", line, err)
	}
}

func (d *replDialog) recv() wireMsg {
	d.t.Helper()
	if !d.sc.Scan() {
		d.t.Fatalf("connection closed mid-dialog: %v", d.sc.Err())
	}
	var m wireMsg
	if err := json.Unmarshal(d.sc.Bytes(), &m); err != nil {
		d.t.Fatalf("bad reply %q: %v", d.sc.Bytes(), err)
	}
	return m
}

// TestReplEpochFencingWire drives the replica side of the epoch protocol
// over a handcrafted connection: a newer incarnation's open truncates
// the held log (fence), anything carrying an older epoch bounces with
// the typed stale-epoch reject naming the held epoch, and the fenced log
// restarts cleanly from seq zero under the new epoch.
func TestReplEpochFencingWire(t *testing.T) {
	h := startCluster(t, 1, false, 0)
	d := dialRepl(t, h.ids[0], "wire-test")
	const key = "wire-fence"
	open := func(epoch int64) {
		d.send(fmt.Sprintf(`{"type":"repl-open","session":%q,"epoch":%d,"hello":{"type":"hello","processes":3,"resumable":true,"session":%q}}`, key, epoch, key))
	}
	frame := func(epoch, seq int64) {
		d.send(fmt.Sprintf(`{"type":"repl-frame","session":%q,"epoch":%d,"frame":{"type":"init","proc":1,"var":"x","value":1,"seq":%d}}`, key, epoch, seq))
	}

	open(5)
	if m := d.recv(); m.Type != "repl-ack" || m.Seq != 0 || m.Epoch != 5 {
		t.Fatalf("open@5 reply = %+v, want ack seq 0 epoch 5", m)
	}
	frame(5, 1)
	if m := d.recv(); m.Type != "repl-ack" || m.Seq != 1 || m.Epoch != 5 {
		t.Fatalf("frame@5 reply = %+v, want ack seq 1 epoch 5", m)
	}

	// A newer incarnation fences: the epoch-5 frame is truncated and the
	// ack restarts from zero under epoch 7.
	open(7)
	if m := d.recv(); m.Type != "repl-ack" || m.Seq != 0 || m.Epoch != 7 {
		t.Fatalf("open@7 reply = %+v, want ack seq 0 epoch 7", m)
	}
	if v := h.regs[0].Counter("hb_cluster_fences_total", "").Value(); v != 1 {
		t.Errorf("fences_total = %d, want 1", v)
	}

	// Older epochs — an open and a frame from the superseded incarnation
	// — are refused with the typed reject carrying the held epoch.
	open(6)
	if m := d.recv(); m.Type != "repl-reject" || m.Code != server.CodeStaleEpoch || m.Epoch != 7 {
		t.Fatalf("open@6 reply = %+v, want stale-epoch reject at epoch 7", m)
	}
	frame(5, 2)
	if m := d.recv(); m.Type != "repl-reject" || m.Code != server.CodeStaleEpoch || m.Epoch != 7 {
		t.Fatalf("frame@5 reply = %+v, want stale-epoch reject at epoch 7", m)
	}
	if v := h.regs[0].Counter("hb_cluster_stale_epoch_rejects_total", "").Value(); v < 2 {
		t.Errorf("stale_epoch_rejects_total = %d, want >= 2", v)
	}

	// The fenced log accepts the new incarnation's stream from seq 1.
	frame(7, 1)
	if m := d.recv(); m.Type != "repl-ack" || m.Seq != 1 || m.Epoch != 7 {
		t.Fatalf("frame@7 reply = %+v, want ack seq 1 epoch 7", m)
	}
}

// TestClusterEpochKeyReuse is the incarnation chaos test of the fencing
// protocol: kill a session's owner mid-stream so the replica promotes
// the key (epoch bump), finish the session there, then restart the dead
// ex-owner — a zombie still holding hosted state for the key at the old
// epoch. The zombie must be retroactively demoted (superseded, its local
// session tombstoned with a redirect to the live owner), a raw resume
// against it must bounce with the typed stale-epoch redirect instead of
// resurrecting the stale log, and reusing the key afterwards must run a
// fresh incarnation to a clean goodbye with verdicts untainted by the
// first session's frames.
func TestClusterEpochKeyReuse(t *testing.T) {
	h := startCluster(t, 3, false, 0)
	const key = "epoch-reuse"
	succ := h.nodes[0].Ring().Successors(key, 2)
	ownerID, replicaID := succ[0], succ[1]
	owner, replica := h.index(ownerID), h.index(replicaID)

	// Session 1: starts on the owner, fails over to the replica when the
	// owner dies. The dial target is pinned so the reconnect lands on the
	// replica directly rather than sweeping the ring.
	var mu sync.Mutex
	target := ownerID
	cfg := clientConfig(key, nil, 11)
	cfg.Dial = func(string) (net.Conn, error) {
		mu.Lock()
		addr := target
		mu.Unlock()
		return net.DialTimeout("tcp", addr, 2*time.Second)
	}
	steps := script(1)
	sess, err := client.Dial(ownerID, cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamRange(sess, steps, 0, 4, true)
	deadline := time.Now().Add(5 * time.Second)
	for h.regs[replica].Counter("hb_cluster_repl_frames_recv_total", "").Value() < 7 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: %d frames",
				h.regs[replica].Counter("hb_cluster_repl_frames_recv_total", "").Value())
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	target = replicaID
	mu.Unlock()
	h.kls[owner].Kill()
	streamRange(sess, steps, 4, len(steps), false)
	gb, err := sess.Close()
	if err != nil {
		t.Fatalf("close after failover: %v", err)
	}
	if gb.Events != len(steps) || gb.Dropped != 0 {
		t.Fatalf("goodbye %d events (%d dropped), want %d (0)", gb.Events, gb.Dropped, len(steps))
	}
	if err := verifyVerdicts(t, steps, sess.Latched()); err != nil {
		t.Fatal(err)
	}
	if v := h.regs[replica].Counter("hb_cluster_failovers_total", "").Value(); v != 1 {
		t.Fatalf("replica failovers_total = %d, want 1", v)
	}

	// Restart the ex-owner. The new owner's replication link reconnects
	// and re-opens the key at the bumped epoch, which supersedes the
	// zombie's hosted state: it is still holding the epoch-1 log and must
	// drop it instead of acking frames the cluster has moved past.
	h.kls[owner].Restart()
	deadline = time.Now().Add(5 * time.Second)
	for h.regs[owner].Counter("hb_cluster_supersedes_total", "").Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("restarted ex-owner was never superseded")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A resume against the restarted ex-owner must not resurrect its
	// stale copy: the tombstone answers with the typed stale-epoch
	// redirect naming the live owner.
	conn, err := net.DialTimeout("tcp", ownerID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprintf(conn, `{"type":"resume","session":%q,"seq":0}`+"\n", key)
	sc := server.NewFrameScanner(conn)
	if !sc.Scan() {
		t.Fatalf("no reply to zombie resume: %v", sc.Err())
	}
	var reply server.ServerFrame
	if err := json.Unmarshal(sc.Bytes(), &reply); err != nil {
		t.Fatalf("bad reply %q: %v", sc.Bytes(), err)
	}
	if reply.Type != server.FrameError || reply.Code != server.CodeStaleEpoch {
		t.Fatalf("zombie resume reply = %+v, want %s error", reply, server.CodeStaleEpoch)
	}
	if reply.Owner != replicaID {
		t.Fatalf("stale-epoch redirect owner = %q, want %q", reply.Owner, replicaID)
	}

	// Session 2 reuses the key under a fresh incarnation. Its script has
	// no AG violation, so any resurrected frame from session 1 (which
	// violates the invariant at event 6) would corrupt the verdicts — and
	// any leaked frame would inflate the goodbye count.
	steps2 := script(0)
	sess2, err := client.Dial("", clientConfig(key, h.ids, 12))
	if err != nil {
		t.Fatalf("key reuse dial: %v", err)
	}
	streamRange(sess2, steps2, 0, len(steps2), true)
	gb2, err := sess2.Close()
	if err != nil {
		t.Fatalf("key reuse close: %v", err)
	}
	if gb2.Events != len(steps2) || gb2.Dropped != 0 {
		t.Fatalf("reuse goodbye %d events (%d dropped), want %d (0)", gb2.Events, gb2.Dropped, len(steps2))
	}
	if err := verifyVerdicts(t, steps2, sess2.Latched()); err != nil {
		t.Fatalf("reused key inherited state from the dead incarnation: %v", err)
	}
	if sess2.Err() != nil {
		t.Fatalf("reuse session sticky error: %v", sess2.Err())
	}
	var eno *client.ErrNotOwner
	if errors.As(sess2.Err(), &eno) {
		t.Fatalf("reuse session hit an ownership error: %v", sess2.Err())
	}
}

package cluster_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/server/client"
)

// TestClusterDrainHandoff is the planned-removal counterpart of the
// failover tests: draining a node mid-session transfers the hosted
// frame log to its replica under a bumped epoch, the kicked client
// follows the stale-epoch redirect to the new owner, and killing the
// drained node afterwards disturbs nothing — zero loss, zero resumes
// against the corpse, verdicts bit-identical to offline detection. The
// transfer is an adoption, not a crash promotion, so the failover
// counter must stay at zero.
func TestClusterDrainHandoff(t *testing.T) {
	h := startCluster(t, 3, false, 0)
	const key = "drain-handoff"
	succ := h.nodes[0].Ring().Successors(key, 2)
	owner, replica := h.index(succ[0]), h.index(succ[1])
	steps := script(1)

	sess, err := client.Dial("", clientConfig(key, h.ids, 31))
	if err != nil {
		t.Fatal(err)
	}
	streamRange(sess, steps, 0, 4, true)
	deadline := time.Now().Add(5 * time.Second)
	for h.regs[replica].Counter("hb_cluster_repl_frames_recv_total", "").Value() < 7 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.nodes[owner].Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if v := h.regs[owner].Counter("hb_cluster_handoffs_total", "").Value(); v != 1 {
		t.Errorf("handoffs_total = %d, want 1", v)
	}
	if err := h.nodes[owner].Drain(ctx); err != nil {
		t.Errorf("second drain not idempotent: %v", err)
	}

	// The drained node is now disposable: kill it and finish the session
	// on the adopting replica.
	h.kls[owner].Kill()
	streamRange(sess, steps, 4, len(steps), false)
	gb, err := sess.Close()
	if err != nil {
		t.Fatalf("close after handoff: %v", err)
	}
	if gb.Events != len(steps) || gb.Dropped != 0 {
		t.Fatalf("goodbye %d events (%d dropped), want %d (0)", gb.Events, gb.Dropped, len(steps))
	}
	if err := verifyVerdicts(t, steps, sess.Latched()); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.Reconnects == 0 {
		t.Errorf("client finished without reconnecting despite being kicked off the drained node")
	}
	if v := h.regs[replica].Counter("hb_cluster_failovers_total", "").Value(); v != 0 {
		t.Errorf("failovers_total = %d on the adopting replica, want 0 (handoff is not a crash promotion)", v)
	}
}

// TestClusterDrainNoLiveReplica: a drain with no live replica to adopt
// the session must fail loudly and leave the session hosted — the
// client keeps streaming undisturbed, and the ordinary failover path
// still covers the node if it dies anyway.
func TestClusterDrainNoLiveReplica(t *testing.T) {
	h := startCluster(t, 3, false, 0)
	const key = "drain-no-replica"
	succ := h.nodes[0].Ring().Successors(key, 2)
	owner, replica := h.index(succ[0]), h.index(succ[1])
	steps := script(0)

	sess, err := client.Dial("", clientConfig(key, h.ids, 32))
	if err != nil {
		t.Fatal(err)
	}
	streamRange(sess, steps, 0, 4, true)

	// Take the only replica down and wait until the owner's link notices.
	h.kls[replica].Kill()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := h.nodes[owner].DebugState().(cluster.DebugCluster)
		down := false
		for _, l := range st.Links {
			if l.Peer == h.ids[replica] && !l.Connected {
				down = true
			}
		}
		if down {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("owner link to the killed replica still reported connected")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err = h.nodes[owner].Drain(ctx)
	if err == nil {
		t.Fatal("drain with no live replica reported success")
	}
	if !strings.Contains(err.Error(), "no live replica") {
		t.Fatalf("drain error = %v, want a no-live-replica explanation", err)
	}
	if v := h.regs[owner].Counter("hb_cluster_handoffs_total", "").Value(); v != 0 {
		t.Errorf("handoffs_total = %d after a failed drain, want 0", v)
	}

	// The session stayed hosted and attached; it finishes normally.
	streamRange(sess, steps, 4, len(steps), false)
	gb, err := sess.Close()
	if err != nil {
		t.Fatalf("close after failed drain: %v", err)
	}
	if gb.Events != len(steps) || gb.Dropped != 0 {
		t.Fatalf("goodbye %d events (%d dropped), want %d (0)", gb.Events, gb.Dropped, len(steps))
	}
	if err := verifyVerdicts(t, steps, sess.Latched()); err != nil {
		t.Fatal(err)
	}
}

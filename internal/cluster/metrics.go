package cluster

import "repro/internal/obs"

// metrics is the node's hb_cluster_* instrument set, following the
// naming idiom of the hb_server_* family in internal/server.
type metrics struct {
	sessionsOwned      *obs.Gauge
	sessionsReplicated *obs.Gauge
	ringNodes          *obs.Gauge
	replLag            *obs.Gauge
	degradedSessions   *obs.Gauge
	framesSent         *obs.Counter
	framesRecv         *obs.Counter
	acksRecv           *obs.Counter
	resyncs            *obs.Counter
	connErrors         *obs.Counter
	linkReconnects     *obs.Counter
	failovers          *obs.Counter
	redirects          *obs.Counter
	fences             *obs.Counter
	staleEpochs        *obs.Counter
	supersedes         *obs.Counter
	handoffs           *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &metrics{
		sessionsOwned: reg.Gauge("hb_cluster_sessions_owned",
			"Keyed sessions this node currently hosts and replicates out."),
		sessionsReplicated: reg.Gauge("hb_cluster_sessions_replicated",
			"Foreign session logs this node holds as a replica."),
		ringNodes: reg.Gauge("hb_cluster_ring_nodes",
			"Nodes in the placement ring (static membership)."),
		replLag: reg.Gauge("hb_cluster_repl_lag_frames",
			"Accepted frames not yet acknowledged by every connected replica, summed over hosted sessions."),
		degradedSessions: reg.Gauge("hb_cluster_degraded_sessions",
			"Durable-mode hosted sessions whose client acks are stalled on a replica outage."),
		framesSent: reg.Counter("hb_cluster_repl_frames_sent_total",
			"Replication frames written to peer links (resends after reconnect included)."),
		framesRecv: reg.Counter("hb_cluster_repl_frames_recv_total",
			"Replication frames appended to replica logs (duplicates excluded)."),
		acksRecv: reg.Counter("hb_cluster_repl_acks_recv_total",
			"Replication acks received from replicas."),
		resyncs: reg.Counter("hb_cluster_repl_resyncs_total",
			"Peer-link (re)connects that restarted a session resync from the durability watermark."),
		connErrors: reg.Counter("hb_cluster_repl_conn_errors_total",
			"Peer-link dial failures and connection drops."),
		linkReconnects: reg.Counter("hb_cluster_link_reconnects_total",
			"Peer-link dial attempts after the link's first — reconnect storms show here."),
		failovers: reg.Counter("hb_cluster_failovers_total",
			"Sessions rebuilt from a replicated log after their home node was lost."),
		redirects: reg.Counter("hb_cluster_redirects_total",
			"Keyed handshakes rejected with a not-owner redirect."),
		fences: reg.Counter("hb_cluster_fences_total",
			"Replica logs truncated because a newer incarnation of their key opened."),
		staleEpochs: reg.Counter("hb_cluster_stale_epoch_rejects_total",
			"Replication messages rejected for carrying an older epoch than the one held."),
		supersedes: reg.Counter("hb_cluster_supersedes_total",
			"Hosted sessions dropped on evidence of a newer incarnation elsewhere."),
		handoffs: reg.Counter("hb_cluster_handoffs_total",
			"Sessions transferred to a replica by a graceful drain handoff."),
	}
}

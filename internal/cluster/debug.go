package cluster

import (
	"fmt"
	"time"
)

// DebugSession is the /debug/obs view of one hosted session.
type DebugSession struct {
	Key        string   `json:"key"`
	Epoch      int64    `json:"epoch"`
	Durability string   `json:"durability"`
	Frames     int      `json:"frames"`
	Durable    int64    `json:"durable"` // replication watermark: highest seq every gating replica acked
	Replicas   []string `json:"replicas"`
	Degraded   bool     `json:"degraded,omitempty"`
	// Diagnostic is the typed slow-ack explanation while degraded: which
	// condition is stalling client acks and for how long.
	Diagnostic string `json:"diagnostic,omitempty"`
	Handoff    string `json:"handoff,omitempty"` // drain target while a handoff is in flight
}

// DebugReplica is the /debug/obs view of one replica log held for a peer.
type DebugReplica struct {
	Key    string `json:"key"`
	Epoch  int64  `json:"epoch"`
	Frames int    `json:"frames"`
	Feeder string `json:"feeder,omitempty"` // live feeding owner, empty when idle
}

// DebugLink is the /debug/obs view of one outgoing replication link.
type DebugLink struct {
	Peer      string `json:"peer"`
	Connected bool   `json:"connected"`
}

// DebugCluster is the node's /debug/obs section: per-session incarnation
// epochs, durability modes, replication watermarks and degradation
// diagnostics — the state behind the hb_cluster_* metrics.
type DebugCluster struct {
	Self     string         `json:"self"`
	Draining bool           `json:"draining,omitempty"`
	Hosted   []DebugSession `json:"hosted,omitempty"`
	Replicas []DebugReplica `json:"replicas,omitempty"`
	Links    []DebugLink    `json:"links,omitempty"`
}

// DebugState snapshots the node for the /debug/obs sections map.
func (n *Node) DebugState() any {
	n.mu.Lock()
	defer n.mu.Unlock()
	d := DebugCluster{Self: n.self, Draining: n.draining}
	for key, hs := range n.hosted {
		ds := DebugSession{
			Key:        key,
			Epoch:      hs.epoch,
			Durability: hs.mode.String(),
			Frames:     len(hs.frames),
			Durable:    hs.durable,
			Replicas:   append([]string(nil), hs.replicas...),
			Degraded:   hs.degraded,
		}
		if hs.degraded {
			ds.Diagnostic = fmt.Sprintf("replica-outage: durable acks stalled at seq %d for %s",
				hs.durable, time.Since(hs.stalled).Round(time.Millisecond))
		}
		if hs.handoff != nil {
			ds.Handoff = hs.handoff.target
		}
		d.Hosted = append(d.Hosted, ds)
	}
	for key, rl := range n.replicated {
		d.Replicas = append(d.Replicas, DebugReplica{Key: key, Epoch: rl.epoch, Frames: len(rl.frames), Feeder: rl.from})
	}
	for peer, l := range n.links {
		d.Links = append(d.Links, DebugLink{Peer: peer, Connected: l.connected})
	}
	return d
}

package cluster

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/server"
)

// handoffState tracks one in-flight drain transfer of a hosted session.
// done receives the outcome exactly once (finish is idempotent), so the
// ack reader, a supersede, and a link loss can all race to settle it.
type handoffState struct {
	target string // replica adopting the session
	epoch  int64  // the bumped epoch the session transfers under
	once   sync.Once
	done   chan error
}

func newHandoffState(target string, epoch int64) *handoffState {
	return &handoffState{target: target, epoch: epoch, done: make(chan error, 1)}
}

// finish settles the handoff with err (nil = adopted). Idempotent.
func (ho *handoffState) finish(err error) {
	ho.once.Do(func() { ho.done <- err })
}

// Drain gracefully hands every hosted session to a live replica before
// the node is taken out of service: for each session it detaches the
// client, waits until the target replica has acknowledged the complete
// frame log, then transfers ownership under a bumped epoch. The drained
// client is redirected (stale-epoch, carrying the new owner) and resumes
// there with zero frame loss — the planned-removal counterpart of crash
// failover. Drain is idempotent; once it starts, the node stops
// accepting new placements and recovery promotions. Sessions that cannot
// be handed off (no live replica, ctx expired, target refused) stay
// hosted and are reported in the returned error; the ordinary failover
// path still covers them if the node dies anyway.
func (n *Node) Drain(ctx context.Context) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	already := n.draining
	n.draining = true
	keys := make([]string, 0, len(n.hosted))
	for key, hs := range n.hosted {
		if !hs.bye {
			keys = append(keys, key)
		}
	}
	n.mu.Unlock()
	if already {
		return nil
	}

	// A cancelled ctx must wake the racked-watermark waits below.
	unwatch := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			n.mu.Lock()
			n.cond.Broadcast()
			n.mu.Unlock()
		case <-unwatch:
		}
	}()
	defer close(unwatch)

	var firstErr error
	handed := 0
	for _, key := range keys {
		if err := n.handoffSession(ctx, key); err != nil {
			n.log("cluster: drain: handoff of %s failed: %v", key, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: drain: handoff of %s: %w", key, err)
			}
			continue
		}
		handed++
	}
	n.log("cluster: drain complete: %d/%d sessions handed off", handed, len(keys))
	return firstErr
}

// handoffSession transfers one hosted session to its first connected
// replica. The sequence is: mark the handoff (which vetoes resumes),
// kick the client's transport so no new frames land, wait under mu until
// the target's ack watermark covers the full log, then — in the same
// critical section, so no frame can slip in between — queue the typed
// handoff offer on the target's link. The replica validates the offer
// against its log, promotes, and answers; completeHandoff/failHandoff
// settle the outcome.
func (n *Node) handoffSession(ctx context.Context, key string) error {
	n.mu.Lock()
	hs := n.hosted[key]
	if hs == nil || hs.bye {
		n.mu.Unlock()
		return nil // finished (or finishing) on its own
	}
	var l *peerLink
	for _, peer := range hs.replicas {
		if cand := n.links[peer]; cand != nil && cand.connected {
			l = cand
			break
		}
	}
	if l == nil {
		n.mu.Unlock()
		return fmt.Errorf("no live replica among %v", hs.replicas)
	}
	epoch := n.mintEpochLocked(key, hs.epoch)
	ho := newHandoffState(l.peer, epoch)
	hs.handoff = ho
	n.mu.Unlock()

	// Detach the client: its in-flight frames either arrive before the
	// watermark wait below settles (and transfer with the log) or are
	// rejected at the old epoch after the transfer and replayed by the
	// client on the new owner — exactly-once either way.
	if sess := n.srv.Session(key); sess != nil {
		sess.Kick()
	}

	n.mu.Lock()
	for n.hosted[key] == hs && hs.handoff == ho && ctx.Err() == nil &&
		l.racked[key] < int64(len(hs.frames)) {
		n.cond.Wait()
	}
	if n.hosted[key] != hs || hs.handoff != ho {
		// Settled elsewhere: link loss aborted it, or a supersede/bye
		// removed the session.
		n.mu.Unlock()
		select {
		case err := <-ho.done:
			return err
		default:
			return fmt.Errorf("session left the node mid-handoff")
		}
	}
	if ctx.Err() != nil {
		hs.handoff = nil
		n.mu.Unlock()
		return ctx.Err()
	}
	l.control = append(l.control, replMsg{Type: msgReplHandoff, Session: key, Epoch: epoch, Seq: int64(len(hs.frames))})
	n.cond.Broadcast()
	n.mu.Unlock()

	select {
	case err := <-ho.done:
		return err
	case <-ctx.Done():
		n.mu.Lock()
		if n.hosted[key] == hs && hs.handoff == ho {
			hs.handoff = nil
		}
		n.mu.Unlock()
		return ctx.Err()
	}
}

// completeHandoff settles a drain transfer on the owner side after the
// replica's handoff-ack: the session's hosted state is dropped, the
// local (already kicked) session is tombstoned with a redirect to the
// new owner, and the drain loop is released.
func (n *Node) completeHandoff(key, peer string, epoch int64) {
	n.mu.Lock()
	hs := n.hosted[key]
	if hs == nil || hs.handoff == nil || hs.handoff.target != peer || hs.handoff.epoch != epoch {
		n.mu.Unlock()
		return
	}
	ho := hs.handoff
	hs.handoff = nil
	delete(n.hosted, key)
	n.met.sessionsOwned.Set(int64(len(n.hosted)))
	for _, l := range n.links {
		delete(l.racked, key)
		delete(l.sent, key)
		delete(l.opened, key)
	}
	n.met.handoffs.Inc()
	n.observeEpochLocked(key, epoch)
	n.updateLagLocked()
	n.cond.Broadcast()
	n.mu.Unlock()
	n.srv.Supersede(key, peer, fmt.Sprintf("drained to %s (epoch %d)", peer, epoch))
	ho.finish(nil)
	n.log("cluster: handed off %s to %s (epoch %d)", key, peer, epoch)
}

// failHandoff settles a drain transfer that the replica refused. The
// session stays hosted here.
func (n *Node) failHandoff(key, peer string, err error) {
	n.mu.Lock()
	hs := n.hosted[key]
	if hs == nil || hs.handoff == nil || hs.handoff.target != peer {
		n.mu.Unlock()
		return
	}
	ho := hs.handoff
	hs.handoff = nil
	n.mu.Unlock()
	ho.finish(err)
}

// vetoResume is the server's resume-veto hook: while a session's drain
// handoff is in flight its kicked client must not reattach here — the
// frame log is mid-transfer. The client sees the retryable busy code,
// backs off, and by the next attempt the tombstone redirect (or a
// completed abort) gives it a definitive answer.
func (n *Node) vetoResume(session string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	hs := n.hosted[session]
	if hs != nil && hs.handoff != nil {
		return &server.RejectError{
			Code: server.CodeBusy,
			Msg:  fmt.Sprintf("cluster: session %q is being handed off; retry", session),
		}
	}
	return nil
}

// Package explore is the explicit-state CTL model checker over the lattice
// of consistent cuts — the state-explosion baseline of the paper.
//
// It implements the Section 3 semantics exactly (path quantifiers range
// over maximal consistent cut sequences ending at the final cut) by one
// dynamic-programming pass per subformula over the lattice DAG in reverse
// topological order; the lattice is acyclic, so no fixpoint iteration is
// needed. Its cost is proportional to the lattice size, which is
// exponential in the number of processes — exactly the cost the paper's
// structural algorithms avoid. Every polynomial algorithm in package core
// is cross-validated against this checker.
package explore

import (
	"fmt"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/lattice"
	"repro/internal/obs"
)

var (
	metSubformulas = obs.Default().Counter("hb_explore_subformulas_total",
		"Distinct subformulas labeled by the explicit-state checker.")
	metNodesLabeled = obs.Default().Counter("hb_explore_nodes_labeled_total",
		"Lattice nodes labeled across all subformula passes.")
	metMemoHits = obs.Default().Counter("hb_explore_memo_hits_total",
		"Subformula labelings served from the evaluator memo.")
)

// Stats counts the work done by one Evaluator.
type Stats struct {
	Subformulas  int `json:"subformulas"`   // distinct subformulas labeled
	NodesLabeled int `json:"nodes_labeled"` // lattice nodes labeled in total
	MemoHits     int `json:"memo_hits"`     // labelings served from the memo
}

// Evaluator labels lattice nodes with subformula truth values, memoizing by
// formula string so shared subformulas (and repeated queries such as the
// Witness reconstruction or the EF/AF pair of CheckObserverIndependent) are
// labeled once per lattice. Not safe for concurrent use.
type Evaluator struct {
	l     *lattice.Lattice
	memo  map[string][]bool
	Stats Stats
}

// NewEvaluator returns an evaluator over l with an empty memo.
func NewEvaluator(l *lattice.Lattice) *Evaluator {
	return &Evaluator{l: l, memo: make(map[string][]bool)}
}

// Eval returns, for every lattice node, whether formula f holds at that
// cut. Arbitrary nesting of temporal operators is supported. The returned
// slice is shared with the memo and must not be modified.
func (ev *Evaluator) Eval(f ctl.Formula) []bool {
	key := f.String()
	if lab, ok := ev.memo[key]; ok {
		ev.Stats.MemoHits++
		metMemoHits.Inc()
		return lab
	}
	lab := ev.compute(f)
	ev.memo[key] = lab
	ev.Stats.Subformulas++
	ev.Stats.NodesLabeled += len(lab)
	metSubformulas.Inc()
	metNodesLabeled.Add(int64(len(lab)))
	return lab
}

// Holds reports whether f holds at the initial cut ∅.
func (ev *Evaluator) Holds(f ctl.Formula) bool {
	return ev.Eval(f)[ev.l.Initial()]
}

func (ev *Evaluator) compute(f ctl.Formula) []bool {
	l := ev.l
	n := l.Size()
	lab := make([]bool, n)
	switch g := f.(type) {
	case ctl.Atom:
		comp := l.Computation()
		for i := 0; i < n; i++ {
			lab[i] = g.P.Eval(comp, l.Cut(i))
		}
	case ctl.Not:
		sub := ev.Eval(g.F)
		for i := range lab {
			lab[i] = !sub[i]
		}
	case ctl.And:
		a, b := ev.Eval(g.L), ev.Eval(g.R)
		for i := range lab {
			lab[i] = a[i] && b[i]
		}
	case ctl.Or:
		a, b := ev.Eval(g.L), ev.Eval(g.R)
		for i := range lab {
			lab[i] = a[i] || b[i]
		}
	case ctl.EF:
		sub := ev.Eval(g.F)
		backward(l, lab, func(i int, anySucc, allSucc bool) bool {
			return sub[i] || anySucc
		})
	case ctl.AF:
		sub := ev.Eval(g.F)
		backward(l, lab, func(i int, anySucc, allSucc bool) bool {
			return sub[i] || (len(l.Succs(i)) > 0 && allSucc)
		})
	case ctl.EG:
		sub := ev.Eval(g.F)
		backward(l, lab, func(i int, anySucc, allSucc bool) bool {
			return sub[i] && (i == l.Final() || anySucc)
		})
	case ctl.AG:
		sub := ev.Eval(g.F)
		backward(l, lab, func(i int, anySucc, allSucc bool) bool {
			return sub[i] && allSucc
		})
	case ctl.EU:
		p, q := ev.Eval(g.P), ev.Eval(g.Q)
		backward(l, lab, func(i int, anySucc, allSucc bool) bool {
			return q[i] || (p[i] && anySucc)
		})
	case ctl.AU:
		p, q := ev.Eval(g.P), ev.Eval(g.Q)
		backward(l, lab, func(i int, anySucc, allSucc bool) bool {
			return q[i] || (p[i] && len(l.Succs(i)) > 0 && allSucc)
		})
	default:
		panic(fmt.Sprintf("explore: unknown formula %T", f))
	}
	return lab
}

// Eval labels every lattice node with the truth of f using a fresh
// evaluator. Callers issuing several queries against one lattice should hold
// their own Evaluator to share the subformula memo.
func Eval(l *lattice.Lattice, f ctl.Formula) []bool {
	return NewEvaluator(l).Eval(f)
}

// backward fills lab in reverse topological order. Node order from
// lattice.Build is a BFS from ∅, hence topological for the cover DAG, so
// iterating indexes high-to-low visits all successors before each node.
// step receives whether any / all successors are already labeled true
// (vacuously false / true when there are none).
func backward(l *lattice.Lattice, lab []bool, step func(i int, anySucc, allSucc bool) bool) {
	for i := l.Size() - 1; i >= 0; i-- {
		anySucc, allSucc := false, true
		for _, j := range l.Succs(i) {
			if lab[j] {
				anySucc = true
			} else {
				allSucc = false
			}
		}
		lab[i] = step(i, anySucc, allSucc)
	}
}

// Holds reports whether L ⊨ f, i.e. f holds at the initial cut ∅.
func Holds(l *lattice.Lattice, f ctl.Formula) bool {
	return NewEvaluator(l).Holds(f)
}

// HoldsComp builds the lattice of comp and evaluates f at ∅. It fails when
// the lattice exceeds lattice.MaxSize.
func HoldsComp(comp *computation.Computation, f ctl.Formula) (bool, error) {
	l, err := lattice.Build(comp)
	if err != nil {
		return false, err
	}
	return Holds(l, f), nil
}

// Witness returns a sequence of cuts explaining why f holds at ∅, for
// top-level EF, EG, EU, AF(¬·) counterexamples etc.:
//
//   - EF(p): a path ∅ … G with G ⊨ p,
//   - EU(p,q): a path ∅ … G with G ⊨ q and p before,
//   - EG(p): a full path ∅ … E with p everywhere,
//
// ok is false when f does not hold at ∅ or f's top operator has no
// path-shaped witness (atoms, AG, AF, AU).
func Witness(l *lattice.Lattice, f ctl.Formula) (path []computation.Cut, ok bool) {
	ev := NewEvaluator(l)
	if !ev.Holds(f) {
		return nil, false
	}
	switch g := f.(type) {
	case ctl.EF:
		sub := ev.Eval(g.F)
		lab := ev.Eval(f)
		return walk(l, lab, sub, false), true
	case ctl.EU:
		q := ev.Eval(g.Q)
		lab := ev.Eval(f)
		return walk(l, lab, q, false), true
	case ctl.EG:
		lab := ev.Eval(f)
		return walk(l, lab, nil, true), true
	default:
		return nil, false
	}
}

// walk follows lab-true successors from ∅ until a stop-node (stop[i] true)
// or, when toFinal is set, until the final cut.
func walk(l *lattice.Lattice, lab, stop []bool, toFinal bool) []computation.Cut {
	path := []computation.Cut{l.Cut(0)}
	cur := 0
	for {
		if toFinal {
			if cur == l.Final() {
				return path
			}
		} else if stop[cur] {
			return path
		}
		advanced := false
		for _, j := range l.Succs(cur) {
			if lab[j] {
				cur = j
				path = append(path, l.Cut(j))
				advanced = true
				break
			}
		}
		if !advanced {
			// Can only happen for EU when the current node itself is the
			// stop node, handled above; defensive exit.
			return path
		}
	}
}

// CheckObserverIndependent reports whether predicate atom p is
// observer-independent on this computation: p holds in some observation iff
// it holds in every observation, i.e. EF(p) ⟺ AF(p) at ∅.
func CheckObserverIndependent(l *lattice.Lattice, p ctl.Formula) bool {
	ev := NewEvaluator(l)
	return ev.Holds(ctl.EF{F: p}) == ev.Holds(ctl.AF{F: p})
}

// Package explore is the explicit-state CTL model checker over the lattice
// of consistent cuts — the state-explosion baseline of the paper.
//
// It implements the Section 3 semantics exactly (path quantifiers range
// over maximal consistent cut sequences ending at the final cut) by one
// dynamic-programming pass per subformula over the lattice DAG in reverse
// topological order; the lattice is acyclic, so no fixpoint iteration is
// needed. Its cost is proportional to the lattice size, which is
// exponential in the number of processes — exactly the cost the paper's
// structural algorithms avoid. Every polynomial algorithm in package core
// is cross-validated against this checker.
package explore

import (
	"fmt"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/lattice"
)

// Eval returns, for every lattice node, whether formula f holds at that
// cut. Arbitrary nesting of temporal operators is supported.
func Eval(l *lattice.Lattice, f ctl.Formula) []bool {
	n := l.Size()
	lab := make([]bool, n)
	switch g := f.(type) {
	case ctl.Atom:
		comp := l.Computation()
		for i := 0; i < n; i++ {
			lab[i] = g.P.Eval(comp, l.Cut(i))
		}
	case ctl.Not:
		sub := Eval(l, g.F)
		for i := range lab {
			lab[i] = !sub[i]
		}
	case ctl.And:
		a, b := Eval(l, g.L), Eval(l, g.R)
		for i := range lab {
			lab[i] = a[i] && b[i]
		}
	case ctl.Or:
		a, b := Eval(l, g.L), Eval(l, g.R)
		for i := range lab {
			lab[i] = a[i] || b[i]
		}
	case ctl.EF:
		sub := Eval(l, g.F)
		backward(l, lab, func(i int, anySucc, allSucc bool) bool {
			return sub[i] || anySucc
		})
	case ctl.AF:
		sub := Eval(l, g.F)
		backward(l, lab, func(i int, anySucc, allSucc bool) bool {
			return sub[i] || (len(l.Succs(i)) > 0 && allSucc)
		})
	case ctl.EG:
		sub := Eval(l, g.F)
		backward(l, lab, func(i int, anySucc, allSucc bool) bool {
			return sub[i] && (i == l.Final() || anySucc)
		})
	case ctl.AG:
		sub := Eval(l, g.F)
		backward(l, lab, func(i int, anySucc, allSucc bool) bool {
			return sub[i] && allSucc
		})
	case ctl.EU:
		p, q := Eval(l, g.P), Eval(l, g.Q)
		backward(l, lab, func(i int, anySucc, allSucc bool) bool {
			return q[i] || (p[i] && anySucc)
		})
	case ctl.AU:
		p, q := Eval(l, g.P), Eval(l, g.Q)
		backward(l, lab, func(i int, anySucc, allSucc bool) bool {
			return q[i] || (p[i] && len(l.Succs(i)) > 0 && allSucc)
		})
	default:
		panic(fmt.Sprintf("explore: unknown formula %T", f))
	}
	return lab
}

// backward fills lab in reverse topological order. Node order from
// lattice.Build is a BFS from ∅, hence topological for the cover DAG, so
// iterating indexes high-to-low visits all successors before each node.
// step receives whether any / all successors are already labeled true
// (vacuously false / true when there are none).
func backward(l *lattice.Lattice, lab []bool, step func(i int, anySucc, allSucc bool) bool) {
	for i := l.Size() - 1; i >= 0; i-- {
		anySucc, allSucc := false, true
		for _, j := range l.Succs(i) {
			if lab[j] {
				anySucc = true
			} else {
				allSucc = false
			}
		}
		lab[i] = step(i, anySucc, allSucc)
	}
}

// Holds reports whether L ⊨ f, i.e. f holds at the initial cut ∅.
func Holds(l *lattice.Lattice, f ctl.Formula) bool {
	return Eval(l, f)[l.Initial()]
}

// HoldsComp builds the lattice of comp and evaluates f at ∅. It fails when
// the lattice exceeds lattice.MaxSize.
func HoldsComp(comp *computation.Computation, f ctl.Formula) (bool, error) {
	l, err := lattice.Build(comp)
	if err != nil {
		return false, err
	}
	return Holds(l, f), nil
}

// Witness returns a sequence of cuts explaining why f holds at ∅, for
// top-level EF, EG, EU, AF(¬·) counterexamples etc.:
//
//   - EF(p): a path ∅ … G with G ⊨ p,
//   - EU(p,q): a path ∅ … G with G ⊨ q and p before,
//   - EG(p): a full path ∅ … E with p everywhere,
//
// ok is false when f does not hold at ∅ or f's top operator has no
// path-shaped witness (atoms, AG, AF, AU).
func Witness(l *lattice.Lattice, f ctl.Formula) (path []computation.Cut, ok bool) {
	if !Holds(l, f) {
		return nil, false
	}
	switch g := f.(type) {
	case ctl.EF:
		sub := Eval(l, g.F)
		lab := Eval(l, f)
		return walk(l, lab, sub, false), true
	case ctl.EU:
		q := Eval(l, g.Q)
		lab := Eval(l, f)
		return walk(l, lab, q, false), true
	case ctl.EG:
		lab := Eval(l, f)
		return walk(l, lab, nil, true), true
	default:
		return nil, false
	}
}

// walk follows lab-true successors from ∅ until a stop-node (stop[i] true)
// or, when toFinal is set, until the final cut.
func walk(l *lattice.Lattice, lab, stop []bool, toFinal bool) []computation.Cut {
	path := []computation.Cut{l.Cut(0)}
	cur := 0
	for {
		if toFinal {
			if cur == l.Final() {
				return path
			}
		} else if stop[cur] {
			return path
		}
		advanced := false
		for _, j := range l.Succs(cur) {
			if lab[j] {
				cur = j
				path = append(path, l.Cut(j))
				advanced = true
				break
			}
		}
		if !advanced {
			// Can only happen for EU when the current node itself is the
			// stop node, handled above; defensive exit.
			return path
		}
	}
}

// CheckObserverIndependent reports whether predicate atom p is
// observer-independent on this computation: p holds in some observation iff
// it holds in every observation, i.e. EF(p) ⟺ AF(p) at ∅.
func CheckObserverIndependent(l *lattice.Lattice, p ctl.Formula) bool {
	return Holds(l, ctl.EF{F: p}) == Holds(l, ctl.AF{F: p})
}

package explore

import (
	"fmt"

	"repro/internal/ctl"
	"repro/internal/lattice"
	"repro/internal/pir"
	"repro/internal/predicate"
)

// Classification reports which structural classes a predicate belongs to
// on one computation, determined by enumeration over the explicit lattice.
// Class membership is per-computation: a predicate linear on every
// computation of a program is linear in the paper's sense, and this check
// is the empirical projection of that.
type Classification struct {
	Linear              bool
	PostLinear          bool
	Regular             bool
	Stable              bool
	ObserverIndependent bool
}

// Classify determines the classification of p on the lattice.
func Classify(l *lattice.Lattice, p predicate.Predicate) Classification {
	lin, _, _ := l.CheckLinear(p)
	post, _, _ := l.CheckPostLinear(p)
	stable, _, _ := l.CheckStable(p)
	return Classification{
		Linear:              lin,
		PostLinear:          post,
		Regular:             lin && post,
		Stable:              stable,
		ObserverIndependent: CheckObserverIndependent(l, ctl.Atom{P: p}),
	}
}

// FromIR projects an IR class mask onto the empirically checkable
// classification bits, so tests can compare static inference against
// Classify directly.
func FromIR(c pir.Class) Classification {
	return Classification{
		Linear:              c.Has(pir.ClassLinear),
		PostLinear:          c.Has(pir.ClassPostLinear),
		Regular:             c.Has(pir.ClassLinear | pir.ClassPostLinear),
		Stable:              c.Has(pir.ClassStable),
		ObserverIndependent: c.Has(pir.ClassObserverIndependent),
	}
}

// CrossCheckIR verifies the IR's statically inferred class lattice
// against brute-force classification on the explicit lattice: every class
// the IR claims must hold empirically on this computation. The reverse —
// an empirical class static inference missed — is expected incompleteness
// (e.g. a Fn predicate that happens to be linear here) and is not an
// error. Race-enabled builds of core.Detect run this on every temporal
// dispatch over small computations, so dispatcher drift between the IR
// and the lattice classifier fails loudly.
func CrossCheckIR(l *lattice.Lattice, p *pir.Pred) error {
	if p.Class.Has(pir.ClassLinear) {
		if ok, a, b := l.CheckLinear(p.P); !ok {
			return fmt.Errorf("explore: IR classed %s as linear (%s) but its satisfying cuts are not meet-closed: meet of %v and %v fails", p.P, p.Class, a, b)
		}
	}
	if p.Class.Has(pir.ClassPostLinear) {
		if ok, a, b := l.CheckPostLinear(p.P); !ok {
			return fmt.Errorf("explore: IR classed %s as post-linear (%s) but its satisfying cuts are not join-closed: join of %v and %v fails", p.P, p.Class, a, b)
		}
	}
	if p.Class.Has(pir.ClassStable) {
		if ok, g, h := l.CheckStable(p.P); !ok {
			return fmt.Errorf("explore: IR classed %s as stable (%s) but it decays on the cover edge %v → %v", p.P, p.Class, g, h)
		}
	}
	if p.Class.Has(pir.ClassObserverIndependent) {
		if !CheckObserverIndependent(l, ctl.Atom{P: p.P}) {
			return fmt.Errorf("explore: IR classed %s as observer-independent (%s) but EF and AF disagree on this lattice", p.P, p.Class)
		}
	}
	return nil
}

// Classes lists the class names that hold, most specific first; an empty
// slice means the predicate is arbitrary on this computation.
func (c Classification) Classes() []string {
	var out []string
	if c.Regular {
		out = append(out, "regular")
	}
	if c.Linear && !c.Regular {
		out = append(out, "linear")
	}
	if c.PostLinear && !c.Regular {
		out = append(out, "post-linear")
	}
	if c.Stable {
		out = append(out, "stable")
	}
	if c.ObserverIndependent {
		out = append(out, "observer-independent")
	}
	return out
}

// PolynomialOperators lists the CTL operators for which the paper's Table 1
// gives a polynomial detection algorithm given this classification.
func (c Classification) PolynomialOperators() []string {
	var out []string
	if c.Stable {
		return []string{"EF", "AF", "EG", "AG"}
	}
	if c.Linear || c.PostLinear {
		out = append(out, "EF", "EG", "AG") // A1/A2 and their duals
		if c.ObserverIndependent {
			out = append(out, "AF")
		}
		return out
	}
	if c.ObserverIndependent {
		return []string{"EF", "AF"} // EG/AG are NP-/co-NP-complete (Thms 5/6)
	}
	return nil
}

package explore

import (
	"repro/internal/ctl"
	"repro/internal/lattice"
	"repro/internal/predicate"
)

// Classification reports which structural classes a predicate belongs to
// on one computation, determined by enumeration over the explicit lattice.
// Class membership is per-computation: a predicate linear on every
// computation of a program is linear in the paper's sense, and this check
// is the empirical projection of that.
type Classification struct {
	Linear              bool
	PostLinear          bool
	Regular             bool
	Stable              bool
	ObserverIndependent bool
}

// Classify determines the classification of p on the lattice.
func Classify(l *lattice.Lattice, p predicate.Predicate) Classification {
	lin, _, _ := l.CheckLinear(p)
	post, _, _ := l.CheckPostLinear(p)
	stable, _, _ := l.CheckStable(p)
	return Classification{
		Linear:              lin,
		PostLinear:          post,
		Regular:             lin && post,
		Stable:              stable,
		ObserverIndependent: CheckObserverIndependent(l, ctl.Atom{P: p}),
	}
}

// Classes lists the class names that hold, most specific first; an empty
// slice means the predicate is arbitrary on this computation.
func (c Classification) Classes() []string {
	var out []string
	if c.Regular {
		out = append(out, "regular")
	}
	if c.Linear && !c.Regular {
		out = append(out, "linear")
	}
	if c.PostLinear && !c.Regular {
		out = append(out, "post-linear")
	}
	if c.Stable {
		out = append(out, "stable")
	}
	if c.ObserverIndependent {
		out = append(out, "observer-independent")
	}
	return out
}

// PolynomialOperators lists the CTL operators for which the paper's Table 1
// gives a polynomial detection algorithm given this classification.
func (c Classification) PolynomialOperators() []string {
	var out []string
	if c.Stable {
		return []string{"EF", "AF", "EG", "AG"}
	}
	if c.Linear || c.PostLinear {
		out = append(out, "EF", "EG", "AG") // A1/A2 and their duals
		if c.ObserverIndependent {
			out = append(out, "AF")
		}
		return out
	}
	if c.ObserverIndependent {
		return []string{"EF", "AF"} // EG/AG are NP-/co-NP-complete (Thms 5/6)
	}
	return nil
}

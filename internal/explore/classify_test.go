package explore

import (
	"strings"
	"testing"

	"repro/internal/computation"
	"repro/internal/lattice"
	"repro/internal/predicate"
	"repro/internal/sim"
)

func TestClassifyKnownClasses(t *testing.T) {
	l := lattice.MustBuild(sim.Fig2())

	// received(1) is stable, regular, observer-independent.
	c := Classify(l, predicate.Received{ID: 1})
	if !c.Stable || !c.Regular || !c.ObserverIndependent || !c.Linear || !c.PostLinear {
		t.Errorf("received(1): %+v", c)
	}
	got := strings.Join(c.Classes(), ",")
	if !strings.Contains(got, "regular") || !strings.Contains(got, "stable") {
		t.Errorf("Classes = %q", got)
	}
	if len(c.PolynomialOperators()) != 4 {
		t.Errorf("stable predicates are polynomial everywhere, got %v", c.PolynomialOperators())
	}

	// channelsEmpty: regular but not stable on Fig 2.
	c = Classify(l, predicate.ChannelsEmpty{})
	if !c.Regular || c.Stable {
		t.Errorf("channelsEmpty: %+v", c)
	}

	// A genuinely arbitrary, non-OI predicate needs a wider lattice: on
	// the 2×2 grid, {(2,0), (0,1)} is neither meet- nor join-closed, and
	// the staircase path a b a b avoids both cuts while others hit them.
	grid := lattice.MustBuild(sim.Grid(2, 2))
	arb := predicate.Fn{Name: "twoCuts", F: func(_ *computation.Computation, cut computation.Cut) bool {
		return (cut[0] == 2 && cut[1] == 0) || (cut[0] == 0 && cut[1] == 1)
	}}
	c = Classify(grid, arb)
	if c.Linear || c.PostLinear || c.Stable || c.ObserverIndependent {
		t.Errorf("twoCuts: %+v", c)
	}
	if len(c.Classes()) != 0 || c.PolynomialOperators() != nil {
		t.Errorf("arbitrary predicate classified as %v / %v", c.Classes(), c.PolynomialOperators())
	}

	// A skew predicate that is linear but not post-linear: "not both of
	// e3, f3" — meets keep it, the join of (3,2) and (2,3) breaks it.
	// (It holds at ∅, so it is also observer-independent — any predicate
	// true initially is.)
	skew := predicate.Fn{Name: "notBoth", F: func(_ *computation.Computation, cut computation.Cut) bool {
		return !(cut[0] == 3 && cut[1] == 3)
	}}
	c = Classify(l, skew)
	if !c.Linear || c.PostLinear || c.Regular || !c.ObserverIndependent {
		t.Errorf("notBoth: %+v", c)
	}
	if got := c.Classes(); len(got) == 0 || got[0] != "linear" {
		t.Errorf("Classes = %v", got)
	}
	ops := strings.Join(c.PolynomialOperators(), ",")
	if !strings.Contains(ops, "EG") || !strings.Contains(ops, "AF") {
		t.Errorf("linear OI operators = %q", ops)
	}
}

func TestClassifyObserverIndependentOnly(t *testing.T) {
	// A predicate true at ∅ but otherwise erratic: observer-independent
	// (holds in every observation via ∅) yet in no structural class.
	l := lattice.MustBuild(sim.Fig2())
	p := predicate.Fn{Name: "initOrSkewed", F: func(c *computation.Computation, cut computation.Cut) bool {
		return cut.Size() == 0 ||
			(cut[0] == 3 && cut[1] == 2) ||
			(cut[0] == 2 && cut[1] == 3)
	}}
	c := Classify(l, p)
	if !c.ObserverIndependent {
		t.Fatalf("holds at ∅ but not observer-independent: %+v", c)
	}
	if c.Linear || c.Stable {
		t.Fatalf("unexpected classes: %+v", c)
	}
	ops := c.PolynomialOperators()
	if len(ops) != 2 || ops[0] != "EF" || ops[1] != "AF" {
		t.Errorf("OI-only operators = %v (EG/AG are NP-/co-NP-complete)", ops)
	}
}

package explore

import (
	"fmt"
	"testing"

	"repro/internal/ctl"
	"repro/internal/lattice"
	"repro/internal/predicate"
	"repro/internal/sim"
)

func BenchmarkEvalOperators(b *testing.B) {
	l := lattice.MustBuild(sim.Grid(4, 6))
	atom := ctl.Atom{P: predicate.ChannelsEmpty{}}
	ops := map[string]ctl.Formula{
		"EF": ctl.EF{F: atom},
		"AF": ctl.AF{F: atom},
		"EG": ctl.EG{F: atom},
		"AG": ctl.AG{F: atom},
		"EU": ctl.EU{P: atom, Q: ctl.Atom{P: predicate.Terminated{}}},
		"AU": ctl.AU{P: atom, Q: ctl.Atom{P: predicate.Terminated{}}},
	}
	for name, f := range ops {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Eval(l, f)
			}
		})
	}
}

func BenchmarkEvalScaling(b *testing.B) {
	for _, n := range []int{3, 4, 5} {
		comp := sim.Grid(n, 6)
		l := lattice.MustBuild(comp)
		var locals []predicate.LocalPredicate
		for p := 0; p < n; p++ {
			locals = append(locals, predicate.VarCmp{Proc: p, Var: "c", Op: predicate.LE, K: 6})
		}
		f := ctl.EG{F: ctl.Atom{P: predicate.Conjunctive{Locals: locals}}}
		b.Run(fmt.Sprintf("Grid%dx6", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Eval(l, f)
			}
		})
	}
}

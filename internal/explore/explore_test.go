package explore

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/lattice"
	"repro/internal/predicate"
	"repro/internal/sim"
)

func ce() ctl.Formula { return ctl.Atom{P: predicate.ChannelsEmpty{}} }

func TestBasicOperatorsFig2(t *testing.T) {
	l := lattice.MustBuild(sim.Fig2())
	cases := []struct {
		f    ctl.Formula
		want bool
	}{
		{ctl.EF{F: ce()}, true},
		{ctl.AG{F: ce()}, false},
		// Every full path passes a cut with f2 sent and e1 pending.
		{ctl.EG{F: ce()}, false},
		{ctl.AF{F: ctl.Not{F: ce()}}, true},
		{ctl.EF{F: ctl.Atom{P: predicate.Terminated{}}}, true},
		{ctl.AF{F: ctl.Atom{P: predicate.Terminated{}}}, true},
		{ctl.AG{F: ctl.Atom{P: predicate.True}}, true},
		{ctl.EG{F: ctl.Atom{P: predicate.True}}, true},
		{ctl.EF{F: ctl.Atom{P: predicate.False}}, false},
		// Reaching received(1) forces a cut with m1 in flight first, so
		// channelsEmpty cannot hold all the way.
		{ctl.EU{P: ce(), Q: ctl.Atom{P: predicate.Received{ID: 1}}}, false},
		{ctl.EU{P: ctl.Atom{P: predicate.True}, Q: ctl.Atom{P: predicate.Received{ID: 1}}}, true},
		{ctl.AU{P: ctl.Atom{P: predicate.True}, Q: ctl.Atom{P: predicate.Terminated{}}}, true},
		// q never holds: both untils fail.
		{ctl.EU{P: ctl.Atom{P: predicate.True}, Q: ctl.Atom{P: predicate.False}}, false},
		{ctl.AU{P: ctl.Atom{P: predicate.True}, Q: ctl.Atom{P: predicate.False}}, false},
		// Boolean connectives.
		{ctl.And{L: ctl.EF{F: ce()}, R: ctl.Not{F: ctl.AG{F: ce()}}}, true},
		{ctl.Or{L: ctl.Atom{P: predicate.False}, R: ctl.EF{F: ce()}}, true},
	}
	for _, c := range cases {
		if got := Holds(l, c.f); got != c.want {
			t.Errorf("%s = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestDualityLaws(t *testing.T) {
	// AG(p) = ¬EF(¬p) and AF(p) = ¬EG(¬p) at every node, over random
	// computations and predicates.
	for seed := int64(0); seed < 10; seed++ {
		comp := sim.Random(sim.DefaultRandomConfig(3, 8), seed)
		l := lattice.MustBuild(comp)
		preds := []ctl.Formula{
			ce(),
			ctl.Atom{P: predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.GE, K: 1}},
			ctl.Atom{P: predicate.Terminated{}},
		}
		for _, p := range preds {
			ag := Eval(l, ctl.AG{F: p})
			nefn := Eval(l, ctl.Not{F: ctl.EF{F: ctl.Not{F: p}}})
			af := Eval(l, ctl.AF{F: p})
			negn := Eval(l, ctl.Not{F: ctl.EG{F: ctl.Not{F: p}}})
			efDef := Eval(l, ctl.EU{P: ctl.Atom{P: predicate.True}, Q: p})
			ef := Eval(l, ctl.EF{F: p})
			afDef := Eval(l, ctl.AU{P: ctl.Atom{P: predicate.True}, Q: p})
			for i := range ag {
				if ag[i] != nefn[i] {
					t.Fatalf("seed %d %s node %d: AG ≠ ¬EF¬", seed, p, i)
				}
				if af[i] != negn[i] {
					t.Fatalf("seed %d %s node %d: AF ≠ ¬EG¬", seed, p, i)
				}
				if ef[i] != efDef[i] {
					t.Fatalf("seed %d %s node %d: EF ≠ E[true U p]", seed, p, i)
				}
				if af[i] != afDef[i] {
					t.Fatalf("seed %d %s node %d: AF ≠ A[true U p]", seed, p, i)
				}
			}
		}
	}
}

func TestNestedTemporal(t *testing.T) {
	// The explicit checker supports nesting: AG(EF(terminated)) holds on
	// any computation ("reset property").
	l := lattice.MustBuild(sim.Fig2())
	f := ctl.AG{F: ctl.EF{F: ctl.Atom{P: predicate.Terminated{}}}}
	if !Holds(l, f) {
		t.Error("AG(EF(terminated)) must hold")
	}
	g := ctl.EF{F: ctl.AG{F: ctl.Atom{P: predicate.ChannelsEmpty{}}}}
	// After e1 and f3 are past... channels must stay empty from some cut
	// onwards: from the final cut trivially, so EF(AG(empty)) is true iff
	// some cut's entire future has empty channels; the final cut
	// qualifies.
	if !Holds(l, g) {
		t.Error("EF(AG(channelsEmpty)) must hold via the final cut")
	}
}

func TestWitness(t *testing.T) {
	comp := sim.Fig2()
	l := lattice.MustBuild(comp)
	// EF witness ends at a cut satisfying the target.
	f := ctl.EF{F: ctl.Atom{P: predicate.Received{ID: 1}}}
	path, ok := Witness(l, f)
	if !ok {
		t.Fatal("no witness for EF(received)")
	}
	last := path[len(path)-1]
	if !(predicate.Received{ID: 1}).Eval(comp, last) {
		t.Errorf("witness ends at %v where target fails", last)
	}
	for i := 1; i < len(path); i++ {
		if path[i].Size() != path[i-1].Size()+1 {
			t.Errorf("witness step %v → %v", path[i-1], path[i])
		}
	}
	// EG witness spans ∅ → E.
	g := ctl.EG{F: ctl.Atom{P: predicate.True}}
	path, ok = Witness(l, g)
	if !ok || !path[len(path)-1].Equal(comp.FinalCut()) {
		t.Errorf("EG witness = %v, %v", path, ok)
	}
	// EU witness.
	u := ctl.EU{P: ctl.Atom{P: predicate.True}, Q: ctl.Atom{P: predicate.Received{ID: 1}}}
	if _, ok := Witness(l, u); !ok {
		t.Error("no witness for EU")
	}
	// No witness when the formula fails or has no path shape.
	if _, ok := Witness(l, ctl.EF{F: ctl.Atom{P: predicate.False}}); ok {
		t.Error("witness for failing formula")
	}
	if _, ok := Witness(l, ctl.AG{F: ctl.Atom{P: predicate.True}}); ok {
		t.Error("witness for AG (not path-shaped)")
	}
}

func TestHoldsComp(t *testing.T) {
	ok, err := HoldsComp(sim.Fig2(), ctl.EF{F: ce()})
	if err != nil || !ok {
		t.Errorf("HoldsComp = %v, %v", ok, err)
	}
}

func TestCheckObserverIndependent(t *testing.T) {
	l := lattice.MustBuild(sim.Fig2())
	// Stable predicates are observer-independent.
	if !CheckObserverIndependent(l, ctl.Atom{P: predicate.Received{ID: 1}}) {
		t.Error("received(1) should be observer-independent")
	}
	// channelsEmpty is generally not: it holds in some observations'
	// intermediate cuts only. On Fig 2 EF(empty) is true (initial cut) so
	// it is OI here; craft a predicate that differs: "exactly e3 done,
	// f3 not done".
	p := predicate.Fn{Name: "skew", F: func(c *computation.Computation, cut computation.Cut) bool {
		return cut[0] == 3 && cut[1] == 2
	}}
	if CheckObserverIndependent(l, ctl.Atom{P: p}) {
		t.Error("skew predicate should not be observer-independent")
	}
}

func TestUnknownFormulaPanics(t *testing.T) {
	l := lattice.MustBuild(sim.Fig2())
	defer func() {
		if recover() == nil {
			t.Error("unknown formula type did not panic")
		}
	}()
	Eval(l, nil)
}

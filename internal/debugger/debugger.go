// Package debugger implements an interactive debugging environment for
// the happened-before model — the environment the paper's conclusion
// plans "making use of the algorithms presented here".
//
// A Session holds a computation and a current consistent cut. The user
// steps the cut event by event (forward and backward through the lattice),
// inspects variables, channels and the frontier, evaluates predicates at
// the current cut, runs full CTL detection, jumps to the least cut
// satisfying a linear predicate (the advancement algorithm), and replays
// detection witnesses cut by cut.
package debugger

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/diagram"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// Session is one debugging session. Methods write human-readable output
// to Out.
type Session struct {
	comp *computation.Computation
	cut  computation.Cut
	path []computation.Cut // loaded witness path, if any
	pos  int               // position within path
	out  io.Writer
}

// NewSession starts a session at the initial cut.
func NewSession(comp *computation.Computation, out io.Writer) *Session {
	return &Session{comp: comp, cut: comp.InitialCut(), out: out}
}

// Cut returns the current cut.
func (s *Session) Cut() computation.Cut { return s.cut.Copy() }

// Execute runs one command line and returns io.EOF for quit. Unknown
// commands and argument errors are reported to Out without failing the
// session.
func (s *Session) Execute(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	cmd, args := fields[0], fields[1:]
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), cmd))
	switch cmd {
	case "help", "?":
		s.help()
	case "info":
		s.info()
	case "cut":
		s.showCut()
	case "vars":
		s.showVars()
	case "channels":
		s.showChannels()
	case "diagram":
		s.showDiagram(args)
	case "events":
		s.showEvents(args)
	case "step":
		s.step(args)
	case "back":
		s.back(args)
	case "goto":
		s.jump(args)
	case "reset":
		s.cut = s.comp.InitialCut()
		s.showCut()
	case "end":
		s.cut = s.comp.FinalCut()
		s.showCut()
	case "eval":
		s.eval(rest)
	case "detect":
		s.detect(rest)
	case "least":
		s.least(rest)
	case "play":
		s.play(rest)
	case "next":
		s.move(1)
	case "prev":
		s.move(-1)
	case "quit", "exit", "q":
		return io.EOF
	default:
		fmt.Fprintf(s.out, "unknown command %q; try help\n", cmd)
	}
	return nil
}

func (s *Session) help() {
	fmt.Fprint(s.out, `commands:
  info                computation summary
  cut                 show the current cut, frontier and enabled events
  vars                variable values at the current cut
  channels            messages in flight at the current cut
  diagram [vars]      ASCII space-time diagram with the current cut marked
  events [Pi]         list events (of process i)
  step [Pi]           execute the next event (of process i)
  back [Pi]           undo the last event (of process i)
  goto k1 k2 ...      jump to a consistent cut
  reset | end         jump to the initial | final cut
  eval PRED           evaluate a non-temporal predicate at the current cut
  detect FORMULA      run CTL detection on the whole computation
  least PRED          jump to the least cut satisfying a linear predicate
  play FORMULA        load a witness path for EG/EU/EF and walk it
  next | prev         move along the loaded witness path
  quit
`)
}

func (s *Session) info() {
	fmt.Fprintf(s.out, "%s\n", sim.Describe(s.comp))
	for i := 0; i < s.comp.N(); i++ {
		fmt.Fprintf(s.out, "  P%d: %d events, vars %v\n", i+1, s.comp.Len(i), s.comp.Vars(i))
	}
}

func (s *Session) showCut() {
	fmt.Fprintf(s.out, "cut %v (%d/%d events)\n", s.cut, s.cut.Size(), s.comp.TotalEvents())
	if fr := s.comp.Frontier(s.cut); len(fr) > 0 {
		names := make([]string, len(fr))
		for i, e := range fr {
			names[i] = e.String()
		}
		fmt.Fprintf(s.out, "  frontier: %s\n", strings.Join(names, ", "))
	}
	if en := s.comp.Enabled(s.cut); len(en) > 0 {
		names := make([]string, len(en))
		for i, p := range en {
			names[i] = s.comp.Event(p, s.cut[p]+1).String()
		}
		fmt.Fprintf(s.out, "  enabled:  %s\n", strings.Join(names, ", "))
	} else {
		fmt.Fprintln(s.out, "  enabled:  (none — final cut)")
	}
}

func (s *Session) showVars() {
	for i := 0; i < s.comp.N(); i++ {
		vars := s.comp.Vars(i)
		if len(vars) == 0 {
			continue
		}
		parts := make([]string, 0, len(vars))
		for _, name := range vars {
			v, _ := s.comp.Value(i, s.cut[i], name)
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
		fmt.Fprintf(s.out, "  P%d[%d]: %s\n", i+1, s.cut[i], strings.Join(parts, " "))
	}
}

func (s *Session) showChannels() {
	ids := s.comp.Messages()
	inFlight := 0
	for _, id := range ids {
		snd := s.comp.SendOf(id)
		if s.cut[snd.Proc] < snd.Index {
			continue
		}
		rcv := s.comp.RecvOf(id)
		if rcv != nil && s.cut[rcv.Proc] >= rcv.Index {
			continue
		}
		inFlight++
		dst := "(never received)"
		if rcv != nil {
			dst = fmt.Sprintf("P%d", rcv.Proc+1)
		}
		fmt.Fprintf(s.out, "  msg %d: P%d → %s in flight\n", id, snd.Proc+1, dst)
	}
	if inFlight == 0 {
		fmt.Fprintln(s.out, "  channels empty")
	}
}

func (s *Session) showDiagram(args []string) {
	opts := diagram.Options{Cut: s.cut}
	for _, a := range args {
		if a == "vars" {
			opts.ShowVars = true
			opts.Width = 14
		}
	}
	fmt.Fprint(s.out, diagram.Render(s.comp, opts))
}

func (s *Session) showEvents(args []string) {
	procs := make([]int, 0, s.comp.N())
	if len(args) > 0 {
		p, err := parseProc(args[0], s.comp.N())
		if err != nil {
			fmt.Fprintln(s.out, err)
			return
		}
		procs = append(procs, p)
	} else {
		for i := 0; i < s.comp.N(); i++ {
			procs = append(procs, i)
		}
	}
	for _, i := range procs {
		for _, e := range s.comp.Events(i) {
			mark := " "
			if s.cut[i] >= e.Index {
				mark = "*"
			}
			extra := ""
			if len(e.Sets) > 0 {
				keys := make([]string, 0, len(e.Sets))
				for k := range e.Sets {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				parts := make([]string, len(keys))
				for j, k := range keys {
					parts[j] = fmt.Sprintf("%s=%d", k, e.Sets[k])
				}
				extra = " {" + strings.Join(parts, " ") + "}"
			}
			fmt.Fprintf(s.out, " %s P%d:%d %s clock=%v%s\n", mark, i+1, e.Index, e.Kind, e.Clock, extra)
		}
	}
}

func (s *Session) step(args []string) {
	var proc = -1
	if len(args) > 0 {
		p, err := parseProc(args[0], s.comp.N())
		if err != nil {
			fmt.Fprintln(s.out, err)
			return
		}
		proc = p
	}
	if proc >= 0 {
		if !s.comp.EnabledEvent(s.cut, proc) {
			fmt.Fprintf(s.out, "P%d has no enabled event at %v\n", proc+1, s.cut)
			return
		}
		s.cut[proc]++
	} else {
		en := s.comp.Enabled(s.cut)
		if len(en) == 0 {
			fmt.Fprintln(s.out, "already at the final cut")
			return
		}
		s.cut[en[0]]++
	}
	s.showCut()
}

func (s *Session) back(args []string) {
	var proc = -1
	if len(args) > 0 {
		p, err := parseProc(args[0], s.comp.N())
		if err != nil {
			fmt.Fprintln(s.out, err)
			return
		}
		proc = p
	}
	if proc >= 0 {
		if !s.comp.MaximalEvent(s.cut, proc) {
			fmt.Fprintf(s.out, "P%d's last event is not removable at %v\n", proc+1, s.cut)
			return
		}
		s.cut[proc]--
	} else {
		preds := s.comp.Predecessors(s.cut)
		if len(preds) == 0 {
			fmt.Fprintln(s.out, "already at the initial cut")
			return
		}
		s.cut = preds[0]
	}
	s.showCut()
}

func (s *Session) jump(args []string) {
	if len(args) != s.comp.N() {
		fmt.Fprintf(s.out, "goto needs %d counters\n", s.comp.N())
		return
	}
	cut := computation.NewCut(s.comp.N())
	for i, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil {
			fmt.Fprintf(s.out, "bad counter %q\n", a)
			return
		}
		cut[i] = v
	}
	if !s.comp.Consistent(cut) {
		fmt.Fprintf(s.out, "cut %v is not consistent\n", cut)
		return
	}
	s.cut = cut
	s.showCut()
}

func (s *Session) compile(src string) (predicate.Predicate, bool) {
	f, err := ctl.Parse(src)
	if err != nil {
		fmt.Fprintln(s.out, err)
		return nil, false
	}
	if ctl.IsTemporal(f) {
		fmt.Fprintln(s.out, "eval/least take non-temporal predicates; use detect for temporal formulas")
		return nil, false
	}
	p, err := core.Compile(f)
	if err != nil {
		fmt.Fprintln(s.out, err)
		return nil, false
	}
	return p, true
}

func (s *Session) eval(src string) {
	p, ok := s.compile(src)
	if !ok {
		return
	}
	fmt.Fprintf(s.out, "%s at %v: %v\n", p, s.cut, p.Eval(s.comp, s.cut))
}

func (s *Session) detect(src string) {
	f, err := ctl.Parse(src)
	if err != nil {
		fmt.Fprintln(s.out, err)
		return
	}
	res, err := core.Detect(s.comp, f)
	if err != nil {
		fmt.Fprintln(s.out, err)
		return
	}
	fmt.Fprintf(s.out, "%s: %v (via %s)\n", f, res.Holds, res.Algorithm)
	if res.Counterexample != nil {
		fmt.Fprintf(s.out, "counterexample: %v — use 'goto' to inspect it\n", res.Counterexample)
	}
	if len(res.Witness) > 0 {
		fmt.Fprintf(s.out, "witness with %d cuts — use 'play %s' to walk it\n", len(res.Witness), f)
	}
}

func (s *Session) least(src string) {
	p, ok := s.compile(src)
	if !ok {
		return
	}
	lin, okL := p.(predicate.Linear)
	if !okL {
		if local, okLoc := p.(predicate.LocalPredicate); okLoc {
			lin = predicate.Conj(local)
		} else {
			fmt.Fprintf(s.out, "%s is not linear; least cut undefined\n", p)
			return
		}
	}
	cut, found := core.LeastCut(s.comp, lin)
	if !found {
		fmt.Fprintf(s.out, "no consistent cut satisfies %s\n", p)
		return
	}
	s.cut = cut
	fmt.Fprintf(s.out, "jumped to I_p = %v\n", cut)
	s.showCut()
}

func (s *Session) play(src string) {
	f, err := ctl.Parse(src)
	if err != nil {
		fmt.Fprintln(s.out, err)
		return
	}
	res, err := core.Detect(s.comp, f)
	if err != nil {
		fmt.Fprintln(s.out, err)
		return
	}
	if !res.Holds || len(res.Witness) == 0 {
		fmt.Fprintf(s.out, "no witness path: formula holds=%v\n", res.Holds)
		return
	}
	s.path = res.Witness
	s.pos = 0
	s.cut = s.path[0].Copy()
	fmt.Fprintf(s.out, "loaded witness with %d cuts; 'next'/'prev' to walk\n", len(s.path))
	s.showCut()
}

func (s *Session) move(delta int) {
	if len(s.path) == 0 {
		fmt.Fprintln(s.out, "no witness loaded; use play")
		return
	}
	next := s.pos + delta
	if next < 0 || next >= len(s.path) {
		fmt.Fprintln(s.out, "end of witness path")
		return
	}
	s.pos = next
	s.cut = s.path[s.pos].Copy()
	fmt.Fprintf(s.out, "witness cut %d/%d\n", s.pos+1, len(s.path))
	s.showCut()
}

func parseProc(arg string, n int) (int, error) {
	arg = strings.TrimPrefix(arg, "P")
	p, err := strconv.Atoi(arg)
	if err != nil || p < 1 || p > n {
		return 0, fmt.Errorf("bad process %q (want P1..P%d)", arg, n)
	}
	return p - 1, nil
}

package debugger

import (
	"io"
	"strings"
	"testing"

	"repro/internal/computation"
	"repro/internal/sim"
)

// run executes a script of commands and returns the combined output.
func run(t *testing.T, comp *computation.Computation, script ...string) (string, *Session) {
	t.Helper()
	var out strings.Builder
	s := NewSession(comp, &out)
	for _, line := range script {
		if err := s.Execute(line); err != nil && err != io.EOF {
			t.Fatalf("command %q: %v", line, err)
		}
	}
	return out.String(), s
}

func TestStepBackGoto(t *testing.T) {
	comp := sim.Fig2()
	out, s := run(t, comp,
		"step", // f1 (only enabled event)
		"step", // f2
		"step", // e1
	)
	if !s.Cut().Equal(computation.Cut{1, 2}) {
		t.Fatalf("cut after 3 steps = %v, want <1 2>\noutput:\n%s", s.Cut(), out)
	}
	_, s = run(t, comp, "step", "step", "back")
	if !s.Cut().Equal(computation.Cut{0, 1}) {
		t.Fatalf("cut after step step back = %v", s.Cut())
	}
	out, s = run(t, comp, "goto 2 2")
	if !s.Cut().Equal(computation.Cut{2, 2}) {
		t.Fatalf("goto failed: %v\n%s", s.Cut(), out)
	}
	out, _ = run(t, comp, "goto 1 0")
	if !strings.Contains(out, "not consistent") {
		t.Errorf("inconsistent goto not rejected:\n%s", out)
	}
	out, _ = run(t, comp, "goto 1")
	if !strings.Contains(out, "needs 2 counters") {
		t.Errorf("wrong arity not rejected:\n%s", out)
	}
}

func TestStepDirected(t *testing.T) {
	comp := sim.Fig2()
	out, _ := run(t, comp, "step P1") // e1 needs f2 first
	if !strings.Contains(out, "no enabled event") {
		t.Errorf("blocked step not reported:\n%s", out)
	}
	_, s := run(t, comp, "step P2", "step P2", "step P1")
	if !s.Cut().Equal(computation.Cut{1, 2}) {
		t.Fatalf("directed steps: %v", s.Cut())
	}
	out, _ = run(t, comp, "back")
	if !strings.Contains(out, "already at the initial cut") {
		t.Errorf("back at ∅ not reported:\n%s", out)
	}
	out, _ = run(t, comp, "end", "step")
	if !strings.Contains(out, "already at the final cut") {
		t.Errorf("step at E not reported:\n%s", out)
	}
	// back on a non-maximal event is rejected: at <1 2>, f2 → e1 keeps
	// P2's last event pinned.
	out, _ = run(t, comp, "goto 1 2", "back P2")
	if !strings.Contains(out, "not removable") {
		t.Errorf("non-maximal back not rejected:\n%s", out)
	}
}

func TestEvalAndVars(t *testing.T) {
	comp := sim.Fig4()
	out, _ := run(t, comp,
		"goto 1 2 1",
		"eval channelsEmpty && x@P1 > 1",
		"vars",
		"channels",
	)
	if !strings.Contains(out, "true") {
		t.Errorf("q should hold at I_q:\n%s", out)
	}
	if !strings.Contains(out, "x=2") {
		t.Errorf("vars missing x=2:\n%s", out)
	}
	if !strings.Contains(out, "channels empty") {
		t.Errorf("channels not empty at I_q:\n%s", out)
	}
	out, _ = run(t, comp, "goto 0 2 0", "channels")
	if !strings.Contains(out, "in flight") {
		t.Errorf("in-flight messages not shown:\n%s", out)
	}
}

func TestLeastJumpsToIq(t *testing.T) {
	comp := sim.Fig4()
	out, s := run(t, comp, "least channelsEmpty && x@P1 > 1")
	if !s.Cut().Equal(computation.Cut{1, 2, 1}) {
		t.Fatalf("least jumped to %v, want I_q:\n%s", s.Cut(), out)
	}
	out, _ = run(t, comp, "least x@P1 > 99")
	if !strings.Contains(out, "no consistent cut satisfies") {
		t.Errorf("unsatisfiable least not reported:\n%s", out)
	}
}

func TestDetectAndPlay(t *testing.T) {
	comp := sim.Fig4()
	formula := "E[conj(z@P3 < 6, x@P1 < 4) U channelsEmpty && x@P1 > 1]"
	out, _ := run(t, comp, "detect "+formula)
	if !strings.Contains(out, "true") || !strings.Contains(out, "Algorithm A3") {
		t.Errorf("detect output:\n%s", out)
	}
	out, s := run(t, comp,
		"play "+formula,
		"next", "next", "next", "next",
	)
	if !s.Cut().Equal(computation.Cut{1, 2, 1}) {
		t.Fatalf("witness replay ended at %v:\n%s", s.Cut(), out)
	}
	out, _ = run(t, comp, "play "+formula, "prev")
	if !strings.Contains(out, "end of witness path") {
		t.Errorf("prev at start not reported:\n%s", out)
	}
	out, _ = run(t, comp, "next")
	if !strings.Contains(out, "no witness loaded") {
		t.Errorf("next without play not reported:\n%s", out)
	}
	out, _ = run(t, comp, "play x@P1 > 99")
	if !strings.Contains(out, "no witness path") {
		t.Errorf("play on failing formula:\n%s", out)
	}
}

func TestInfoEventsHelp(t *testing.T) {
	comp := sim.Fig2()
	out, _ := run(t, comp, "info", "events", "events P2", "help", "cut")
	for _, want := range []string{"2 processes", "P1:", "P2:", "commands:", "frontier"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	out, _ = run(t, comp, "events P9")
	if !strings.Contains(out, "bad process") {
		t.Errorf("bad process not rejected:\n%s", out)
	}
}

func TestDiagramCommand(t *testing.T) {
	comp := sim.Fig4()
	out, _ := run(t, comp, "goto 1 2 1", "diagram")
	for _, want := range []string{"[e1]", "[f1]", "[f2]", "[g1]", "cut ", "msgs "} {
		if !strings.Contains(out, want) {
			t.Errorf("diagram missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "[e2]") {
		t.Errorf("e2 should be outside the cut:\n%s", out)
	}
	out, _ = run(t, comp, "diagram vars")
	if !strings.Contains(out, "x=2") {
		t.Errorf("diagram vars missing values:\n%s", out)
	}
}

func TestErrorsAndQuit(t *testing.T) {
	comp := sim.Fig2()
	out, _ := run(t, comp,
		"bogus",
		"eval EF(true)",
		"detect E[",
		"eval x@",
		"",
	)
	for _, want := range []string{"unknown command", "non-temporal"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	var sb strings.Builder
	s := NewSession(comp, &sb)
	if err := s.Execute("quit"); err != io.EOF {
		t.Errorf("quit returned %v, want io.EOF", err)
	}
}

func TestCounterexampleFlow(t *testing.T) {
	comp := sim.BuggyMutex(3, 1, 0)
	var sb strings.Builder
	s := NewSession(comp, &sb)
	if err := s.Execute("detect AG(disj(crit@P1 != 1, crit@P2 != 1))"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "false") || !strings.Contains(out, "counterexample") {
		t.Fatalf("counterexample not surfaced:\n%s", out)
	}
}

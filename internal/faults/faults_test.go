package faults

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"
)

// TestRollerDeterminism: the same seed and index must yield the same
// decision sequence; different indices must not.
func TestRollerDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Reset: 0.05, Partial: 0.05, Drop: 0.1, Dup: 0.1, Delay: 0.2}
	seq := func(idx int64) []action {
		r := newRoller(cfg, idx)
		out := make([]action, 200)
		for i := range out {
			out[i] = r.roll()
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("adjacent connection indices produced identical fault schedules")
	}
}

// TestRollerDistribution: with probabilities summing to 1, actPass never
// fires; with the zero config, nothing but actPass fires.
func TestRollerDistribution(t *testing.T) {
	r := newRoller(Config{Seed: 1, Reset: 0.2, Partial: 0.2, Drop: 0.2, Dup: 0.2, Delay: 0.2}, 0)
	for i := 0; i < 1000; i++ {
		if r.roll() == actPass {
			t.Fatal("probabilities summing to 1 still produced a pass")
		}
	}
	r = newRoller(Config{Seed: 1}, 0)
	for i := 0; i < 1000; i++ {
		if act := r.roll(); act != actPass {
			t.Fatalf("zero config produced fault %v", act)
		}
	}
}

// pipePair returns two ends of an in-process TCP connection.
func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	cli, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { cli.Close(); r.c.Close() })
	return cli, r.c
}

// TestConnDup: a duplicate fault delivers the payload twice.
func TestConnDup(t *testing.T) {
	cli, srv := pipePair(t)
	fc := NewConn(cli, Config{Seed: 1, Dup: 1}, 0)
	if _, err := fc.Write([]byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	var buf bytes.Buffer
	buf.ReadFrom(srv) //nolint:errcheck // reads until EOF
	if got, want := buf.String(), "hello\nhello\n"; got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

// TestConnDrop: a dropped write reports success but delivers nothing.
func TestConnDrop(t *testing.T) {
	cli, srv := pipePair(t)
	fc := NewConn(cli, Config{Seed: 1, Drop: 1}, 0)
	n, err := fc.Write([]byte("hello\n"))
	if err != nil || n != 6 {
		t.Fatalf("drop write returned (%d, %v), want (6, nil)", n, err)
	}
	cli.Close()
	var buf bytes.Buffer
	buf.ReadFrom(srv) //nolint:errcheck
	if buf.Len() != 0 {
		t.Fatalf("dropped write still delivered %q", buf.String())
	}
}

// TestConnPartial: a partial fault delivers a strict prefix and kills
// the connection with an error.
func TestConnPartial(t *testing.T) {
	cli, srv := pipePair(t)
	fc := NewConn(cli, Config{Seed: 1, Partial: 1}, 0)
	payload := []byte("0123456789\n")
	n, err := fc.Write(payload)
	if err == nil {
		t.Fatal("partial write reported success")
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("partial wrote %d bytes, want a strict prefix of %d", n, len(payload))
	}
	var buf bytes.Buffer
	buf.ReadFrom(srv) //nolint:errcheck
	if got := buf.String(); got != string(payload[:n]) {
		t.Fatalf("delivered %q, want prefix %q", got, payload[:n])
	}
}

// TestProxyPassthrough: with the zero config the proxy is a faithful
// line forwarder in both directions.
func TestProxyPassthrough(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { // line echo server
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					fmt.Fprintf(c, "echo %s\n", sc.Text())
				}
			}(c)
		}
	}()

	p, err := NewProxy(ln.Addr().String(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sc := bufio.NewScanner(c)
	for i := 0; i < 50; i++ {
		fmt.Fprintf(c, "line-%d\n", i)
		if !sc.Scan() {
			t.Fatalf("stream ended at line %d: %v", i, sc.Err())
		}
		if got, want := sc.Text(), fmt.Sprintf("echo line-%d", i); got != want {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
}

// TestProxyReset: a reset-always proxy severs the very first line and
// the client observes the close promptly.
func TestProxyReset(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { // swallow input until close
				buf := make([]byte, 1024)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(c)
		}
	}()
	p, err := NewProxy(ln.Addr().String(), Config{Seed: 1, Reset: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "doomed\n")
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection survived a reset-always proxy")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("proxy never severed the connection")
	}
}

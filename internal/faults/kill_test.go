package faults

import (
	"bufio"
	"io"
	"net"
	"testing"
	"time"
)

// echoServe runs a line-echo accept loop on l until the listener closes.
func echoServe(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go io.Copy(c, c)
	}
}

func dialEcho(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	return c
}

// roundTrip writes one line and expects it echoed back.
func roundTrip(t *testing.T, c net.Conn) error {
	t.Helper()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write([]byte("ping\n")); err != nil {
		return err
	}
	line, err := bufio.NewReader(c).ReadString('\n')
	if err != nil {
		return err
	}
	if line != "ping\n" {
		t.Fatalf("echo returned %q", line)
	}
	return nil
}

func TestKillableListener(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	kl := WrapKillable(base)
	go echoServe(kl)

	// Healthy: connections echo.
	c1 := dialEcho(t, base.Addr().String())
	defer c1.Close()
	if err := roundTrip(t, c1); err != nil {
		t.Fatalf("healthy round trip: %v", err)
	}

	// Kill: the live connection dies abruptly.
	kl.Kill()
	if !kl.Killed() {
		t.Fatal("Killed() = false after Kill")
	}
	c1.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := bufio.NewReader(c1).ReadString('\n'); err == nil {
		t.Fatal("read on a killed connection succeeded")
	}

	// While dead the address still resolves and the TCP handshake may
	// complete — like a crashed process on a live host — but the
	// connection is useless: no echo ever comes back.
	c2 := dialEcho(t, base.Addr().String())
	defer c2.Close()
	if err := roundTrip(t, c2); err == nil {
		t.Fatal("round trip succeeded on a killed listener")
	}

	// Kill is idempotent.
	kl.Kill()

	// Restart: service resumes for new connections.
	kl.Restart()
	if kl.Killed() {
		t.Fatal("Killed() = true after Restart")
	}
	c3 := dialEcho(t, base.Addr().String())
	defer c3.Close()
	if err := roundTrip(t, c3); err != nil {
		t.Fatalf("round trip after Restart: %v", err)
	}
}

// TestKillableListenerTracksCloses asserts the active set shrinks when
// connections close normally, so Kill only touches live ones.
func TestKillableListenerTracksCloses(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	kl := WrapKillable(base)
	accepted := make(chan net.Conn, 4)
	go func() {
		for {
			c, err := kl.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()

	c := dialEcho(t, base.Addr().String())
	srv := <-accepted
	srv.Close()
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		kl.mu.Lock()
		n := len(kl.active)
		kl.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("active set still has %d conns after close", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Package faults injects deterministic, seeded network faults for
// testing the fault-tolerant streaming protocol. It wraps net.Conn and
// net.Listener with write-granularity faults (drop, delay, duplicate,
// partial write, connection reset) and provides a flaky TCP proxy that
// applies the same faults at NDJSON line granularity in both directions.
//
// Everything is driven by math/rand seeded from Config.Seed, with each
// connection (and each proxy direction) deriving its own stream, so a
// test run with a fixed seed makes exactly the same fault decisions
// every time regardless of goroutine scheduling.
package faults

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets per-unit fault probabilities, where a unit is one Write
// call on a wrapped conn or one NDJSON line through the proxy. All
// probabilities are in [0,1] and are evaluated in the order reset,
// partial, drop, duplicate, delay — at most one fault fires per unit.
// The zero value injects nothing.
type Config struct {
	// Seed is the base seed; connection i derives seed Seed*i-mixed so
	// fault schedules are per-connection deterministic.
	Seed int64
	// Reset closes the connection (both legs, for the proxy) instead of
	// forwarding the unit.
	Reset float64
	// Partial forwards a strict prefix of the unit and then resets —
	// the receiver sees a truncated frame.
	Partial float64
	// Drop silently discards the unit; the connection lives on.
	Drop float64
	// Dup forwards the unit twice.
	Dup float64
	// Delay sleeps up to MaxDelay before forwarding the unit.
	Delay float64
	// MaxDelay bounds Delay sleeps (default 5ms when Delay > 0).
	MaxDelay time.Duration
}

// action is one fault decision.
type action int

const (
	actPass action = iota
	actReset
	actPartial
	actDrop
	actDup
	actDelay
)

// roller makes fault decisions from a private rand stream. Callers
// serialize access (one roller per conn direction).
type roller struct {
	cfg Config
	rng *rand.Rand
}

// deriveSeed mixes the base seed with a per-connection (and per-
// direction) index using splitmix64-style constants, so adjacent
// indices get uncorrelated streams.
func deriveSeed(base, idx int64) int64 {
	z := uint64(base) + uint64(idx)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

func newRoller(cfg Config, idx int64) *roller {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Millisecond
	}
	return &roller{cfg: cfg, rng: rand.New(rand.NewSource(deriveSeed(cfg.Seed, idx)))}
}

// roll decides the fate of the next unit. Exactly one rng draw per
// call keeps the schedule a pure function of the seed and unit index.
func (r *roller) roll() action {
	p := r.rng.Float64()
	for _, c := range []struct {
		prob float64
		act  action
	}{
		{r.cfg.Reset, actReset},
		{r.cfg.Partial, actPartial},
		{r.cfg.Drop, actDrop},
		{r.cfg.Dup, actDup},
		{r.cfg.Delay, actDelay},
	} {
		if p < c.prob {
			return c.act
		}
		p -= c.prob
	}
	return actPass
}

// delay returns the sleep for an actDelay decision.
func (r *roller) delay() time.Duration {
	return time.Duration(r.rng.Int63n(int64(r.cfg.MaxDelay)) + 1)
}

// cut returns the strict-prefix length for an actPartial decision on a
// unit of n bytes.
func (r *roller) cut(n int) int {
	if n <= 1 {
		return 0
	}
	return 1 + r.rng.Intn(n-1)
}

// Conn wraps a net.Conn, applying one fault decision per Write. Reads
// pass through untouched; to fault both directions of a dialog, use the
// Proxy instead.
type Conn struct {
	net.Conn
	mu sync.Mutex // serializes Write decisions so the schedule is stable
	r  *roller
}

// NewConn wraps c with write faults decided by cfg's stream for idx.
func NewConn(c net.Conn, cfg Config, idx int64) *Conn {
	return &Conn{Conn: c, r: newRoller(cfg, idx)}
}

func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	act := c.r.roll()
	var sleep time.Duration
	var cut int
	switch act {
	case actDelay:
		sleep = c.r.delay()
	case actPartial:
		cut = c.r.cut(len(p))
	}
	c.mu.Unlock()
	switch act {
	case actReset:
		c.Conn.Close()
		return 0, net.ErrClosed
	case actPartial:
		c.Conn.Write(p[:cut]) //nolint:errcheck // about to reset anyway
		c.Conn.Close()
		return cut, net.ErrClosed
	case actDrop:
		return len(p), nil // swallowed: caller believes it was sent
	case actDup:
		if n, err := c.Conn.Write(p); err != nil {
			return n, err
		}
		return c.Conn.Write(p)
	case actDelay:
		time.Sleep(sleep)
	}
	return c.Conn.Write(p)
}

// Listener wraps a net.Listener so every accepted conn gets write
// faults from its own derived stream (connection i uses index i).
type Listener struct {
	net.Listener
	cfg Config
	n   atomic.Int64
}

// WrapListener returns ln with per-connection fault injection.
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg}
}

func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return NewConn(c, l.cfg, l.n.Add(1)), nil
}

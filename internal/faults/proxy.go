package faults

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// Proxy is a flaky TCP proxy for the server's wire protocol: it
// forwards complete frames — NDJSON lines or length-prefixed binary
// frames, distinguished by the first byte — between client and server,
// making one seeded fault decision per frame per direction. Unlike Conn
// it can corrupt both directions of a dialog, which is what a chaos
// test needs — acks and verdict pushes are as faultable as event
// frames.
type Proxy struct {
	ln     net.Listener
	target string
	up     Config // client → server faults
	down   Config // server → client faults
	n      atomic.Int64

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}

	wg sync.WaitGroup
}

// NewProxy starts a proxy on a fresh loopback port forwarding to
// target, faulting both directions with cfg. Close stops it.
func NewProxy(target string, cfg Config) (*Proxy, error) {
	return NewProxyAsym(target, cfg, cfg)
}

// NewProxyAsym starts a proxy with separate fault configs per direction
// (up = client → server, down = server → client). Chaos tests use this
// to confine silent drops to the upstream leg, where sequence numbers
// detect them; a frame silently dropped downstream on an otherwise
// healthy connection is undetectable by design — only connection loss
// triggers the replay that redelivers recorded frames.
func NewProxyAsym(target string, up, down Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, up: up, down: down, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's dialable address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting, severs every proxied connection, and waits for
// the pump goroutines to exit.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}

// track registers a live conn for Close, unless the proxy is already
// closing (then the conn is closed immediately).
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cli, err := p.ln.Accept()
		if err != nil {
			return
		}
		srv, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			cli.Close()
			continue
		}
		if !p.track(cli) || !p.track(srv) {
			cli.Close()
			srv.Close()
			return
		}
		id := p.n.Add(1)
		// Each direction gets its own decision stream; severing either
		// leg kills both, like a real connection reset.
		p.wg.Add(2)
		go p.pump(cli, srv, newRoller(p.up, 2*id))
		go p.pump(srv, cli, newRoller(p.down, 2*id+1))
	}
}

// pump forwards frames src → dst, one fault decision per frame. A
// frame is an NDJSON line or — when the first byte is the binary frame
// magic — a whole length-prefixed binary frame, so drop/dup/partial
// faults act on protocol units in either encoding (a Partial cuts a
// binary frame at an arbitrary byte offset, truncating its payload
// mid-event). Any fault that severs the stream (reset, partial) closes
// both legs so the peerwise failure is symmetric; so do src EOF and a
// frame header the proxy cannot trust (declared length beyond the
// protocol bound).
func (p *Proxy) pump(src, dst net.Conn, r *roller) {
	defer p.wg.Done()
	defer func() {
		src.Close()
		dst.Close()
		p.untrack(src)
		p.untrack(dst)
	}()
	br := bufio.NewReader(src)
	for {
		frame, err := readWireFrame(br)
		if len(frame) > 0 {
			switch r.roll() {
			case actReset:
				return
			case actPartial:
				dst.Write(frame[:r.cut(len(frame))]) //nolint:errcheck // severing anyway
				return
			case actDrop:
				continue
			case actDup:
				if _, werr := dst.Write(frame); werr != nil {
					return
				}
				if _, werr := dst.Write(frame); werr != nil {
					return
				}
				// fall through to the err check below
			case actDelay:
				time.Sleep(r.delay())
				fallthrough
			default:
				if _, werr := dst.Write(frame); werr != nil {
					return
				}
			}
		}
		if err != nil {
			return
		}
	}
}

// errFrameHeader marks a binary frame header the proxy refuses to
// forward piecemeal: an overlong or oversized length prefix.
var errFrameHeader = errors.New("faults: unforwardable binary frame header")

// readWireFrame reads one protocol frame: a binary frame when the
// first byte is the frame magic, an NDJSON line otherwise. The bytes
// are returned exactly as read so forwarding is transparent. As with
// bufio's ReadBytes, a non-empty frame may accompany an error (an
// unterminated trailing line).
func readWireFrame(br *bufio.Reader) ([]byte, error) {
	first, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if first != server.FrameMagic {
		br.UnreadByte() //nolint:errcheck // always follows a successful ReadByte
		return br.ReadBytes('\n')
	}
	frame := []byte{first}
	typ, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	frame = append(frame, typ)
	var ln uint64
	for shift := uint(0); ; shift += 7 {
		b, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		frame = append(frame, b)
		ln |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
		if shift > 56 {
			return nil, errFrameHeader
		}
	}
	if ln > server.MaxFrameBytes {
		return nil, errFrameHeader
	}
	off := len(frame)
	frame = append(frame, make([]byte, ln)...)
	if _, err := io.ReadFull(br, frame[off:]); err != nil {
		return nil, err
	}
	return frame, nil
}

// String describes the proxy for logs.
func (p *Proxy) String() string {
	return fmt.Sprintf("faults.Proxy(%s -> %s, seed=%d)", p.Addr(), p.target, p.up.Seed)
}

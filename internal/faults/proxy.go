package faults

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a flaky TCP proxy for NDJSON protocols: it forwards complete
// lines between client and server, making one seeded fault decision per
// line per direction. Unlike Conn it can corrupt both directions of a
// dialog, which is what a chaos test needs — acks and verdict pushes
// are as faultable as event frames.
type Proxy struct {
	ln     net.Listener
	target string
	up     Config // client → server faults
	down   Config // server → client faults
	n      atomic.Int64

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}

	wg sync.WaitGroup
}

// NewProxy starts a proxy on a fresh loopback port forwarding to
// target, faulting both directions with cfg. Close stops it.
func NewProxy(target string, cfg Config) (*Proxy, error) {
	return NewProxyAsym(target, cfg, cfg)
}

// NewProxyAsym starts a proxy with separate fault configs per direction
// (up = client → server, down = server → client). Chaos tests use this
// to confine silent drops to the upstream leg, where sequence numbers
// detect them; a frame silently dropped downstream on an otherwise
// healthy connection is undetectable by design — only connection loss
// triggers the replay that redelivers recorded frames.
func NewProxyAsym(target string, up, down Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, up: up, down: down, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's dialable address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting, severs every proxied connection, and waits for
// the pump goroutines to exit.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}

// track registers a live conn for Close, unless the proxy is already
// closing (then the conn is closed immediately).
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cli, err := p.ln.Accept()
		if err != nil {
			return
		}
		srv, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			cli.Close()
			continue
		}
		if !p.track(cli) || !p.track(srv) {
			cli.Close()
			srv.Close()
			return
		}
		id := p.n.Add(1)
		// Each direction gets its own decision stream; severing either
		// leg kills both, like a real connection reset.
		p.wg.Add(2)
		go p.pump(cli, srv, newRoller(p.up, 2*id))
		go p.pump(srv, cli, newRoller(p.down, 2*id+1))
	}
}

// pump forwards NDJSON lines src → dst, one fault decision per line.
// Any fault that severs the stream (reset, partial) closes both legs so
// the peerwise failure is symmetric; so does src EOF.
func (p *Proxy) pump(src, dst net.Conn, r *roller) {
	defer p.wg.Done()
	defer func() {
		src.Close()
		dst.Close()
		p.untrack(src)
		p.untrack(dst)
	}()
	br := bufio.NewReader(src)
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			switch r.roll() {
			case actReset:
				return
			case actPartial:
				dst.Write(line[:r.cut(len(line))]) //nolint:errcheck // severing anyway
				return
			case actDrop:
				continue
			case actDup:
				if _, werr := dst.Write(line); werr != nil {
					return
				}
				if _, werr := dst.Write(line); werr != nil {
					return
				}
				// fall through to the err check below
			case actDelay:
				time.Sleep(r.delay())
				fallthrough
			default:
				if _, werr := dst.Write(line); werr != nil {
					return
				}
			}
		}
		if err != nil {
			return
		}
	}
}

// String describes the proxy for logs.
func (p *Proxy) String() string {
	return fmt.Sprintf("faults.Proxy(%s -> %s, seed=%d)", p.Addr(), p.target, p.up.Seed)
}

package faults

import (
	"net"
	"sync"
)

// KillableListener wraps a net.Listener so a test can crash the node
// behind it without tearing down the listener socket: Kill abruptly
// closes every connection accepted so far and makes the listener refuse
// new ones (accept-then-immediately-close, so dialers see a reset rather
// than a hang), and Restart puts it back in service. The underlying
// listener stays bound throughout, which is exactly what a crashed
// process that has not yet been restarted looks like to clients — the
// address resolves, the TCP handshake may complete, and then the
// connection dies.
type KillableListener struct {
	net.Listener

	mu     sync.Mutex
	dead   bool
	active map[net.Conn]struct{}
}

// WrapKillable returns ln with kill/restart control over its accepted
// connections.
func WrapKillable(ln net.Listener) *KillableListener {
	return &KillableListener{Listener: ln, active: make(map[net.Conn]struct{})}
}

// Accept tracks accepted connections so Kill can close them. While the
// listener is killed, connections are accepted and immediately closed.
func (l *KillableListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		if l.dead {
			l.mu.Unlock()
			conn.Close()
			continue
		}
		tracked := &killConn{Conn: conn, ln: l}
		l.active[tracked] = struct{}{}
		l.mu.Unlock()
		return tracked, nil
	}
}

// Kill abruptly closes all live accepted connections and refuses new
// ones until Restart. Idempotent.
func (l *KillableListener) Kill() {
	l.mu.Lock()
	l.dead = true
	conns := make([]net.Conn, 0, len(l.active))
	for c := range l.active {
		conns = append(conns, c)
	}
	l.active = make(map[net.Conn]struct{})
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// KillConns abruptly closes all live accepted connections but leaves
// the listener in service — a transient network blip rather than a
// node death. Reconnects land immediately, which is what a test needs
// to count redials without simulating a full outage.
func (l *KillableListener) KillConns() {
	l.mu.Lock()
	conns := make([]net.Conn, 0, len(l.active))
	for c := range l.active {
		conns = append(conns, c)
	}
	l.active = make(map[net.Conn]struct{})
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Restart puts the listener back in service; connections accepted after
// it are tracked again.
func (l *KillableListener) Restart() {
	l.mu.Lock()
	l.dead = false
	l.mu.Unlock()
}

// Killed reports whether the listener is currently refusing service.
func (l *KillableListener) Killed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dead
}

// forget drops a closed connection from the tracking set.
func (l *KillableListener) forget(c net.Conn) {
	l.mu.Lock()
	delete(l.active, c)
	l.mu.Unlock()
}

// killConn untracks itself on Close so the active set stays bounded by
// the number of live connections.
type killConn struct {
	net.Conn
	ln   *KillableListener
	once sync.Once
}

func (c *killConn) Close() error {
	c.once.Do(func() { c.ln.forget(c) })
	return c.Conn.Close()
}

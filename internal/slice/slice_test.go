package slice_test

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/predicate"
	"repro/internal/sim"
	"repro/internal/slice"
)

func regularBattery(comp *computation.Computation) []predicate.Linear {
	out := []predicate.Linear{predicate.ChannelsEmpty{}}
	var locals []predicate.LocalPredicate
	for i := 0; i < comp.N(); i++ {
		for _, name := range comp.Vars(i) {
			locals = append(locals, predicate.VarCmp{Proc: i, Var: name, Op: predicate.GE, K: 1})
		}
	}
	if len(locals) > 0 {
		out = append(out, predicate.Conjunctive{Locals: locals})
		out = append(out, predicate.Conj(locals[0]))
	}
	return out
}

func TestSliceFig4(t *testing.T) {
	comp := sim.Fig4()
	q := predicate.AndLinear{Ps: []predicate.Linear{
		predicate.ChannelsEmpty{},
		predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.GT, K: 1}),
	}}
	s := slice.New(comp, q)
	if !s.Satisfiable() {
		t.Fatal("q is satisfiable on Fig 4")
	}
	ip, _ := s.Least()
	if !ip.Equal(computation.Cut{1, 2, 1}) {
		t.Errorf("I_q = %v, want <1 2 1>", ip)
	}
	// J of e1 is I_q itself (the least q-cut containing e1).
	j, ok := s.J(0, 1)
	if !ok || !j.Equal(computation.Cut{1, 2, 1}) {
		t.Errorf("J(e1) = %v, %v", j, ok)
	}
}

func TestSliceSatMatchesDirectEval(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		comp := sim.Random(sim.DefaultRandomConfig(3, 9), seed)
		l, err := lattice.Build(comp)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range regularBattery(comp) {
			// The battery must be regular for Sat to be exact.
			if !l.CheckRegular(p) {
				t.Fatalf("seed %d: %s not regular", seed, p)
			}
			s := slice.New(comp, p)
			for _, cut := range l.Cuts() {
				want := p.Eval(comp, cut)
				if got := s.Sat(cut); got != want {
					t.Fatalf("seed %d pred %s cut %v: slice Sat = %v, direct = %v",
						seed, p, cut, got, want)
				}
			}
		}
	}
}

func TestSliceEGMatchesA1(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		comp := sim.Random(sim.DefaultRandomConfig(3, 10), seed)
		for _, p := range regularBattery(comp) {
			s := slice.New(comp, p)
			_, want := core.EGLinear(comp, p)
			if got := s.EG(); got != want {
				t.Fatalf("seed %d pred %s: slice EG = %v, A1 = %v", seed, p, got, want)
			}
		}
	}
}

func TestSliceAGMatchesA2(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		comp := sim.Random(sim.DefaultRandomConfig(3, 10), seed)
		for _, p := range regularBattery(comp) {
			s := slice.New(comp, p)
			_, want := core.AGLinear(comp, p)
			if got := s.AG(); got != want {
				t.Fatalf("seed %d pred %s: slice AG = %v, A2 = %v", seed, p, got, want)
			}
		}
	}
}

func TestSliceUnsatisfiable(t *testing.T) {
	comp := sim.Fig2()
	never := predicate.Conj(predicate.LocalFn{
		Proc: 0, Name: "never",
		Fn: func(*computation.Computation, int) bool { return false },
	})
	s := slice.New(comp, never)
	if s.Satisfiable() {
		t.Fatal("never-true predicate reported satisfiable")
	}
	if s.Sat(comp.FinalCut()) || s.EG() || s.AG() {
		t.Error("unsatisfiable slice answered a query positively")
	}
	if _, ok := s.Least(); ok {
		t.Error("Least returned ok for unsatisfiable predicate")
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestSliceJMissing(t *testing.T) {
	// channelsEmpty with a message that is never received: events at or
	// after the send have no satisfying J.
	b := computation.NewBuilder(2)
	b.Internal(0)
	b.Send(0) // never received
	b.Internal(1)
	comp := b.MustBuild()
	s := slice.New(comp, predicate.ChannelsEmpty{})
	if !s.Satisfiable() {
		t.Fatal("∅ satisfies channelsEmpty")
	}
	if _, ok := s.J(0, 1); !ok {
		t.Error("J of the pre-send internal event should exist")
	}
	if j, ok := s.J(0, 2); ok {
		t.Errorf("J of the unreceived send should not exist, got %v", j)
	}
}

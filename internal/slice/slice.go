// Package slice implements computation slicing (Mittal–Garg) for linear
// and regular predicates: a compact representation of exactly the
// consistent cuts that satisfy a predicate, built from the least satisfying
// cut J_p(e) containing each event e.
//
// For a regular predicate the satisfying cuts are precisely the unions of
// I_p and the J_p(e); the slice therefore answers membership, EF, EG and AG
// queries without enumerating the lattice. The paper's Algorithm A3 cites
// slicing for its Step 2; this package also powers the slicing ablation
// benches.
package slice

import (
	"fmt"
	"strings"

	"repro/internal/computation"
	"repro/internal/predicate"
)

// Slice is the computation slice of a predicate.
type Slice struct {
	comp *computation.Computation
	p    predicate.Linear
	// ip is the least satisfying cut I_p; nil when p is unsatisfiable.
	ip computation.Cut
	// j[i][k] is J_p(e) for event (i, k+1); nil when no satisfying cut
	// contains the event.
	j [][]computation.Cut
	// satisfiable is false when no consistent cut satisfies p.
	satisfiable bool
}

// New computes the slice of comp with respect to the linear predicate p:
// one advancement run for I_p plus one per event for the J_p(e), i.e.
// O(n|E|) predicate evaluations per run and O(n|E|²) in total.
//
// Deprecated: New recomputes leastFrom from scratch for every event. Use
// NewIncremental, which exploits the monotonicity of J along each process
// to build the identical slice in O(n|E|) cut updates per process. New is
// retained only as the reference implementation for the randomized
// equivalence regression test (TestIncrementalMatchesNaive).
func New(comp *computation.Computation, p predicate.Linear) *Slice {
	s := &Slice{comp: comp, p: p, j: make([][]computation.Cut, comp.N())}
	s.ip, s.satisfiable = leastFrom(comp, p, comp.InitialCut())
	for i := 0; i < comp.N(); i++ {
		s.j[i] = make([]computation.Cut, comp.Len(i))
		if !s.satisfiable {
			continue
		}
		for k := 1; k <= comp.Len(i); k++ {
			start := comp.DownSet(comp.Event(i, k))
			if cut, ok := leastFrom(comp, p, start); ok {
				s.j[i][k-1] = cut
			}
		}
	}
	return s
}

// leastFrom runs the Chase–Garg advancement from an arbitrary consistent
// starting cut, returning the least satisfying cut above it.
func leastFrom(comp *computation.Computation, p predicate.Linear, start computation.Cut) (computation.Cut, bool) {
	cut := start.Copy()
	for !p.Eval(comp, cut) {
		i, ok := p.Forbidden(comp, cut)
		if !ok {
			return nil, false
		}
		if cut[i] >= comp.Len(i) {
			return nil, false
		}
		cut = computation.Join(cut, comp.DownSet(comp.Event(i, cut[i]+1)))
	}
	return cut, true
}

// Satisfiable reports whether any consistent cut satisfies the predicate.
func (s *Slice) Satisfiable() bool { return s.satisfiable }

// Counts reports how many events survive in the slice (some satisfying
// cut contains them) and how many were eliminated (no satisfying cut
// does). Eliminated events can never appear in a satisfying cut, so any
// search restricted to the slice skips them entirely — the number the
// slicing ablation and core.Stats report as events eliminated.
func (s *Slice) Counts() (kept, eliminated int) {
	for i := range s.j {
		for _, jc := range s.j[i] {
			if jc != nil {
				kept++
			} else {
				eliminated++
			}
		}
	}
	return kept, eliminated
}

// Least returns I_p; ok is false when the predicate is unsatisfiable.
func (s *Slice) Least() (computation.Cut, bool) { return s.ip, s.satisfiable }

// J returns J_p(e) for event (i, k) with k 1-based; ok is false when no
// satisfying cut contains the event.
func (s *Slice) J(i, k int) (computation.Cut, bool) {
	cut := s.j[i][k-1]
	return cut, cut != nil
}

// Sat reports whether the consistent cut c satisfies the predicate, using
// only the slice: c must contain I_p and the J of each of its events. For
// regular predicates this is exact; tests verify it against direct
// evaluation.
func (s *Slice) Sat(c computation.Cut) bool {
	if !s.satisfiable || !s.ip.LessEq(c) {
		return false
	}
	for i, k := range c {
		for e := 1; e <= k; e++ {
			jc := s.j[i][e-1]
			if jc == nil || !jc.LessEq(c) {
				return false
			}
		}
	}
	return true
}

// EG reports whether EG(p) holds, i.e. whether the satisfying cuts contain
// a full one-event-at-a-time chain from ∅ to E: the slice admits such a
// chain iff ∅ and E satisfy p and events can be consumed greedily, always
// picking an event whose J is covered. Tests verify agreement with
// Algorithm A1.
func (s *Slice) EG() bool {
	if !s.satisfiable {
		return false
	}
	cur := s.comp.InitialCut()
	if !s.ip.LessEq(cur) { // ∅ must satisfy p
		return false
	}
	total := s.comp.TotalEvents()
	for step := 0; step < total; step++ {
		progressed := false
		for i := range cur {
			if cur[i] >= s.comp.Len(i) || !s.comp.EnabledEvent(cur, i) {
				continue
			}
			jc := s.j[i][cur[i]]
			if jc == nil {
				continue
			}
			cur[i]++
			if jc.LessEq(cur) && s.Sat(cur) {
				progressed = true
				break
			}
			cur[i]--
		}
		if !progressed {
			return false
		}
	}
	return true
}

// AG reports whether AG(p) holds by checking the slice against the
// meet-irreducible cuts, mirroring Algorithm A2 but answering from the
// slice's Sat.
func (s *Slice) AG() bool {
	if !s.Sat(s.comp.FinalCut()) {
		return false
	}
	for i := 0; i < s.comp.N(); i++ {
		for _, e := range s.comp.Events(i) {
			if !s.Sat(s.comp.UpSetComplement(e)) {
				return false
			}
		}
	}
	return true
}

// String summarizes the slice.
func (s *Slice) String() string {
	if !s.satisfiable {
		return fmt.Sprintf("slice(%s): unsatisfiable", s.p)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "slice(%s): I_p=%v", s.p, s.ip)
	for i := range s.j {
		for k, jc := range s.j[i] {
			if jc != nil {
				fmt.Fprintf(&b, " J(P%d:%d)=%v", i+1, k+1, jc)
			}
		}
	}
	return b.String()
}

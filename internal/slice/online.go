package slice

import (
	"repro/internal/computation"
	"repro/internal/vclock"
)

// Online is the incremental slice cursor for a conjunctive predicate over
// an unfolding computation — the online counterpart of the offline J
// tables. Instead of retaining the whole observed prefix, it retains, per
// constrained process, only the queue of candidate local states that may
// still head the predicate's least satisfying cut; pairwise vector-clock
// elimination (Garg–Waldecker) pops candidates that can never appear in
// one. The retained candidates are exactly the frontier of the slice, so
// a long-lived monitor holds O(slice) state instead of O(|E|).
//
// The cursor is fed by its owner: Offer pushes a local state in which the
// process's conjuncts hold, Step runs elimination to a fixed point. Once
// every constrained process has a pairwise-compatible head, the cursor
// fires with the least satisfying cut (the join of the head start
// clocks); the verdict latches.
type Online struct {
	n     int
	procs []int // constrained processes, registration order

	// queues[i] is process i's candidate local states, ascending; nil
	// for unconstrained processes. Candidates are popped exactly once —
	// deadness is monotone along a queue.
	queues [][]Candidate

	// Elimination worklist: processes whose queue head changed since the
	// last fixed point. Only heads on the worklist need re-comparing, so
	// elimination continues in place instead of restarting the full
	// pairwise scan after every push.
	dirty   []int
	inDirty []bool // indexed by process
	cmps    int    // head comparisons performed (cost instrumentation)

	fired bool
	cut   computation.Cut
}

// Candidate is one queued local state: a state index on its process and
// the vector clock of the event that began it (nil for state 0, which
// began at -∞).
type Candidate struct {
	State int
	Start vclock.VC
}

// NewOnline returns a cursor over n processes constrained on procs (in
// registration order, without duplicates). With no constrained processes
// the empty conjunction holds at ∅ and the cursor fires immediately.
func NewOnline(n int, procs []int) *Online {
	o := &Online{
		n:       n,
		procs:   procs,
		queues:  make([][]Candidate, n),
		inDirty: make([]bool, n),
	}
	if len(procs) == 0 {
		o.fired = true
		o.cut = computation.NewCut(n)
	}
	return o
}

// Fired reports whether a satisfying cut has been found; Cut returns it.
func (o *Online) Fired() bool { return o.fired }

// Cut returns the least satisfying cut once Fired; nil before.
func (o *Online) Cut() computation.Cut { return o.cut }

// Retained returns the number of candidate local states currently queued
// — the events' worth of state the cursor holds. This is the O(slice)
// bound: everything else about the observed prefix has been discarded.
func (o *Online) Retained() int {
	total := 0
	for _, q := range o.queues {
		total += len(q)
	}
	return total
}

// Comparisons returns the head comparisons performed so far.
func (o *Online) Comparisons() int { return o.cmps }

// Dirty reports whether elimination work is pending (a queue head changed
// since the last Step).
func (o *Online) Dirty() bool { return len(o.dirty) > 0 }

// Offer pushes a candidate local state on proc: the process's conjuncts
// hold in state, which began at the event with clock start (nil for state
// 0). States must be offered in ascending order per process. Only a new
// HEAD can enable an elimination or a firing — a candidate queued behind
// an existing head changes neither — so the push is O(1) and Step after a
// non-head push is a no-op.
func (o *Online) Offer(proc, state int, start vclock.VC) {
	if o.fired {
		return
	}
	o.queues[proc] = append(o.queues[proc], Candidate{State: state, Start: start})
	if len(o.queues[proc]) == 1 {
		o.markDirty(proc)
	}
}

// markDirty queues a process for head re-comparison.
func (o *Online) markDirty(proc int) {
	if !o.inDirty[proc] {
		o.inDirty[proc] = true
		o.dirty = append(o.dirty, proc)
	}
}

// Step continues head elimination from the processes whose heads changed
// since the last fixed point, then fires if every constrained process has
// a compatible head. Unlike a full pairwise rescan per pop, each pop
// costs O(n): only the popped process's new head (and heads it kills)
// re-enter the worklist, and a pair of unchanged heads is never
// re-compared — the amortized per-event cost is O(n · pops + 1).
//
// Head (i, k) is dead with respect to head (j, k') when state (i, k) ends
// before state (j, k') begins in every interleaving — i.e. event (i, k+1)
// happened-before event (j, k'), which the clocks express as
// start_j[i] ≥ k+1. Deadness is monotone along j's queue (later starts
// dominate), so popping is safe and each candidate is popped at most once.
func (o *Online) Step() {
	if o.fired {
		return
	}
	for len(o.dirty) > 0 {
		i := o.dirty[len(o.dirty)-1]
		o.dirty = o.dirty[:len(o.dirty)-1]
		o.inDirty[i] = false
		if len(o.queues[i]) == 0 {
			continue // no head to verify; a future candidate re-dirties i
		}
		hi := o.queues[i][0]
		dead := false
		for _, j := range o.procs {
			if j == i {
				continue
			}
			// Re-compare against j's head, following pops of j in place
			// (an empty queue j is skipped: the pair is verified from j's
			// side when j regains a head and is marked dirty).
			for len(o.queues[j]) > 0 {
				hj := o.queues[j][0]
				o.cmps++
				if hj.Start != nil && hj.Start[i] >= hi.State+1 {
					o.queues[i] = o.queues[i][1:]
					dead = true
					break
				}
				if hi.Start != nil && hi.Start[j] >= hj.State+1 {
					o.queues[j] = o.queues[j][1:]
					o.markDirty(j)
					continue // j's next head against the same hi
				}
				break // pair alive
			}
			if dead {
				break
			}
		}
		if dead {
			o.markDirty(i) // restart i with its new head
		}
	}
	// Fixed point: fire only if every constrained process has a head (all
	// verified pairwise alive above).
	for _, proc := range o.procs {
		if len(o.queues[proc]) == 0 {
			return
		}
	}
	// Pairwise compatible: the least cut exposing all heads is the join
	// of their start clocks; compatibility pins each constrained
	// coordinate to its head's state.
	cut := computation.NewCut(o.n)
	for _, proc := range o.procs {
		h := o.queues[proc][0]
		if h.Start == nil {
			continue
		}
		for j, x := range h.Start {
			if x > cut[j] {
				cut[j] = x
			}
		}
	}
	o.fired = true
	o.cut = cut
	// The verdict latches; the candidates have served their purpose, so a
	// fired cursor retains nothing.
	o.queues = nil
	o.dirty, o.inDirty = nil, nil
}

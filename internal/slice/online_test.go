package slice_test

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/slice"
	"repro/internal/vclock"
)

func TestOnlineEmptyConjunctionFiresImmediately(t *testing.T) {
	o := slice.NewOnline(3, nil)
	if !o.Fired() {
		t.Fatal("empty conjunction did not fire at ∅")
	}
	if !o.Cut().Equal(computation.Cut{0, 0, 0}) {
		t.Fatalf("cut = %v, want ∅", o.Cut())
	}
	if o.Retained() != 0 {
		t.Fatalf("retained %d, want 0", o.Retained())
	}
}

func TestOnlineFiresAtJoinOfHeads(t *testing.T) {
	// Two processes, no messages: state 1 on each is concurrent, so the
	// least satisfying cut is the join of the start clocks <1 0> and <0 1>.
	o := slice.NewOnline(2, []int{0, 1})
	o.Offer(0, 1, vclock.VC{1, 0})
	o.Step()
	if o.Fired() {
		t.Fatal("fired with only one constrained process queued")
	}
	o.Offer(1, 1, vclock.VC{0, 1})
	o.Step()
	if !o.Fired() {
		t.Fatal("did not fire with compatible heads")
	}
	if !o.Cut().Equal(computation.Cut{1, 1}) {
		t.Fatalf("cut = %v, want <1 1>", o.Cut())
	}
}

func TestOnlineEliminatesDeadHead(t *testing.T) {
	// P1's state 1 ends before P2's state 2 begins (P2's start clock shows
	// event (P1,2) happened-before it), so head (P1,1) is dead and the
	// cursor must wait for a later P1 candidate.
	o := slice.NewOnline(2, []int{0, 1})
	o.Offer(0, 1, vclock.VC{1, 0})
	o.Offer(1, 2, vclock.VC{2, 2}) // saw two P1 events: kills head (P1, 1)
	o.Step()
	if o.Fired() {
		t.Fatal("fired through a dead head")
	}
	if o.Retained() != 1 {
		t.Fatalf("retained %d after elimination, want 1", o.Retained())
	}
	if o.Comparisons() == 0 {
		t.Fatal("elimination performed no head comparisons")
	}
	o.Offer(0, 3, vclock.VC{3, 2})
	o.Step()
	if !o.Fired() {
		t.Fatal("did not fire after a live P1 candidate arrived")
	}
	if !o.Cut().Equal(computation.Cut{3, 2}) {
		t.Fatalf("cut = %v, want <3 2>", o.Cut())
	}
}

func TestOnlineLatchesAndIgnoresLateOffers(t *testing.T) {
	o := slice.NewOnline(1, []int{0})
	o.Offer(0, 0, nil) // initial state satisfies the conjunct
	o.Step()
	if !o.Fired() {
		t.Fatal("single-process cursor did not fire on its initial state")
	}
	if !o.Cut().Equal(computation.Cut{0}) {
		t.Fatalf("cut = %v, want <0>", o.Cut())
	}
	o.Offer(0, 1, vclock.VC{1})
	o.Step()
	if !o.Cut().Equal(computation.Cut{0}) {
		t.Fatal("verdict did not latch: cut moved after firing")
	}
	if o.Retained() != 0 {
		t.Fatalf("retained %d after latch, want 0 (late offers dropped)", o.Retained())
	}
}

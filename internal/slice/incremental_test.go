package slice_test

import (
	"fmt"
	"testing"

	"repro/internal/predicate"
	"repro/internal/sim"
	"repro/internal/slice"
)

func TestIncrementalMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		comp := sim.Random(sim.DefaultRandomConfig(4, 18), seed)
		preds := regularBattery(comp)
		preds = append(preds, predicate.AndLinear{Ps: []predicate.Linear{
			predicate.ChannelsEmpty{},
			predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.LE, K: 2}),
		}})
		for _, p := range preds {
			naive := slice.New(comp, p)
			inc := slice.NewIncremental(comp, p)
			if naive.Satisfiable() != inc.Satisfiable() {
				t.Fatalf("seed %d %s: satisfiable %v vs %v", seed, p, naive.Satisfiable(), inc.Satisfiable())
			}
			if !naive.Satisfiable() {
				continue
			}
			a, _ := naive.Least()
			b, _ := inc.Least()
			if !a.Equal(b) {
				t.Fatalf("seed %d %s: I_p %v vs %v", seed, p, a, b)
			}
			for i := 0; i < comp.N(); i++ {
				for k := 1; k <= comp.Len(i); k++ {
					ja, oka := naive.J(i, k)
					jb, okb := inc.J(i, k)
					if oka != okb || (oka && !ja.Equal(jb)) {
						t.Fatalf("seed %d %s: J(%d,%d) = %v/%v vs %v/%v",
							seed, p, i, k, ja, oka, jb, okb)
					}
				}
			}
		}
	}
}

// TestJMonotoneAlongProcess pins the property NewIncremental exploits:
// J_p(e(i,k)) ⊆ J_p(e(i,k+1)) for any linear predicate.
func TestJMonotoneAlongProcess(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		comp := sim.Random(sim.DefaultRandomConfig(3, 14), seed)
		for _, p := range regularBattery(comp) {
			s := slice.New(comp, p)
			for i := 0; i < comp.N(); i++ {
				var prev []int
				for k := 1; k <= comp.Len(i); k++ {
					j, ok := s.J(i, k)
					if !ok {
						// Once missing, later J must be missing too.
						for k2 := k + 1; k2 <= comp.Len(i); k2++ {
							if _, ok2 := s.J(i, k2); ok2 {
								t.Fatalf("seed %d %s: J(%d,%d) missing but J(%d,%d) exists",
									seed, p, i, k, i, k2)
							}
						}
						break
					}
					if prev != nil {
						for proc, v := range prev {
							if v > j[proc] {
								t.Fatalf("seed %d %s: J(%d,%d)=%v not above J(%d,%d)=%v",
									seed, p, i, k, j, i, k-1, prev)
							}
						}
					}
					prev = j
				}
			}
		}
	}
}

func TestIncrementalUnsatisfiable(t *testing.T) {
	comp := sim.Fig2()
	never := predicate.Conj(predicate.VarCmp{Proc: 0, Var: "nope", Op: predicate.GE, K: 1})
	s := slice.NewIncremental(comp, never)
	if s.Satisfiable() {
		t.Fatal("unsatisfiable predicate reported satisfiable")
	}
}

func BenchmarkSliceConstruction(b *testing.B) {
	for _, events := range []int{100, 400, 1600} {
		comp := sim.Random(sim.DefaultRandomConfig(4, events), 7)
		p := predicate.Conj(
			predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.LE, K: 2},
			predicate.VarCmp{Proc: 1, Var: "x0", Op: predicate.LE, K: 2},
		)
		b.Run(fmt.Sprintf("Naive/E%d", events), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				slice.New(comp, p)
			}
		})
		b.Run(fmt.Sprintf("Incremental/E%d", events), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				slice.NewIncremental(comp, p)
			}
		})
	}
}

package slice

import (
	"repro/internal/computation"
	"repro/internal/predicate"
)

// NewIncremental computes the same slice as New but amortizes the
// advancement across each process's events: for any linear predicate,
// J_p(e(i,1)) ⊆ J_p(e(i,2)) ⊆ … (a satisfying cut containing a later
// event contains the earlier ones too), so the per-process advancement
// cursor only moves forward. Total advancement steps per process are
// bounded by |E| instead of |E| per event — O(n|E|) cut updates per
// process versus New's O(n|E|²) worst case. This is the Garg–Mittal
// complexity the paper quotes for slice generation.
func NewIncremental(comp *computation.Computation, p predicate.Linear) *Slice {
	s := &Slice{comp: comp, p: p, j: make([][]computation.Cut, comp.N())}
	s.ip, s.satisfiable = leastFrom(comp, p, comp.InitialCut())
	for i := 0; i < comp.N(); i++ {
		s.j[i] = make([]computation.Cut, comp.Len(i))
		if !s.satisfiable {
			continue
		}
		cur := comp.InitialCut()
		alive := true
		for k := 1; k <= comp.Len(i); k++ {
			if !alive {
				break // no satisfying cut contains e(i,k-1), so none contains e(i,k)
			}
			cur = computation.Join(cur, comp.DownSet(comp.Event(i, k)))
			next, ok := leastFrom(comp, p, cur)
			if !ok {
				alive = false
				continue
			}
			cur = next
			s.j[i][k-1] = cur.Copy()
		}
	}
	return s
}

package pir_test

import (
	"math/rand"
	"testing"

	"repro/internal/computation"
	"repro/internal/lattice"
	"repro/internal/pir"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// randConj builds a random conjunctive predicate over the computation's
// processes, sometimes with several conjuncts on one process and
// sometimes with duplicate conjuncts (exercising the interner).
func randConj(rng *rand.Rand, n int) predicate.Conjunctive {
	k := 1 + rng.Intn(4)
	locals := make([]predicate.LocalPredicate, 0, k)
	for len(locals) < k {
		l := predicate.VarCmp{
			Proc: rng.Intn(n),
			Var:  []string{"x", "y"}[rng.Intn(2)],
			Op:   []predicate.Op{predicate.LE, predicate.GE, predicate.EQ}[rng.Intn(3)],
			K:    rng.Intn(3),
		}
		locals = append(locals, l)
		if rng.Intn(4) == 0 { // duplicate → interner hit
			locals = append(locals, l)
		}
	}
	return predicate.Conjunctive{Locals: locals}
}

// TestLoweredConjMatchesStructural checks bit-for-bit agreement between
// the bitset lowering and the structural predicate on every cut of the
// lattice: same Eval verdict, and — on failing cuts — the same forbidden
// and retreat process, so the advancement algorithms make identical
// choices and detection stays deterministic after the lowering.
func TestLoweredConjMatchesStructural(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		comp := sim.Random(sim.DefaultRandomConfig(2+rng.Intn(2), 6+rng.Intn(4)), seed)
		l, err := lattice.Build(comp)
		if err != nil {
			t.Fatal(err)
		}
		conj := randConj(rng, comp.N())
		p := pir.FromPredicate(conj).Bind(comp)
		low, ok := p.Linear()
		if !ok {
			t.Fatal("conjunctive predicate has no linear view")
		}
		if _, isLowered := low.(*pir.LoweredConj); !isLowered {
			t.Fatalf("bound linear view is %T, want *pir.LoweredConj", low)
		}
		post, _ := p.PostLinear()
		for _, cut := range l.Cuts() {
			want := conj.Eval(comp, cut)
			if got := low.Eval(comp, cut); got != want {
				t.Fatalf("seed %d: lowered Eval(%v) = %v, structural %v (%s)", seed, cut, got, want, conj)
			}
			if !want {
				wantProc, wantOK := conj.Forbidden(comp, cut)
				gotProc, gotOK := low.Forbidden(comp, cut)
				if gotProc != wantProc || gotOK != wantOK {
					t.Fatalf("seed %d: lowered Forbidden(%v) = (%d,%v), structural (%d,%v)", seed, cut, gotProc, gotOK, wantProc, wantOK)
				}
				wantProc, wantOK = conj.Retreat(comp, cut)
				gotProc, gotOK = post.(*pir.LoweredConj).Retreat(comp, cut)
				if gotProc != wantProc || gotOK != wantOK {
					t.Fatalf("seed %d: lowered Retreat(%v) = (%d,%v), structural (%d,%v)", seed, cut, gotProc, gotOK, wantProc, wantOK)
				}
			}
		}
	}
}

// TestLoweredDisjComplementMatches checks the lowered complement of a
// disjunctive predicate (the evaluator behind the AF/AG duals) against
// the structural Negate().
func TestLoweredDisjComplementMatches(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		comp := sim.Random(sim.DefaultRandomConfig(2+rng.Intn(2), 6+rng.Intn(4)), seed)
		l, err := lattice.Build(comp)
		if err != nil {
			t.Fatal(err)
		}
		disj := predicate.Disjunctive{Locals: randConj(rng, comp.N()).Locals}
		p := pir.FromPredicate(disj).Bind(comp)
		neg, ok := p.DisjunctiveComplement()
		if !ok {
			t.Fatal("disjunctive predicate has no complement view")
		}
		structural := disj.Negate()
		for _, cut := range l.Cuts() {
			want := structural.Eval(comp, cut)
			if got := neg.Eval(comp, cut); got != want {
				t.Fatalf("seed %d: lowered ¬Eval(%v) = %v, structural %v (%s)", seed, cut, got, want, disj)
			}
			if !want {
				wantProc, wantOK := structural.Forbidden(comp, cut)
				gotProc, gotOK := neg.Forbidden(comp, cut)
				if gotProc != wantProc || gotOK != wantOK {
					t.Fatalf("seed %d: lowered ¬Forbidden(%v) = (%d,%v), structural (%d,%v)", seed, cut, gotProc, gotOK, wantProc, wantOK)
				}
			}
		}
	}
}

// TestLoweringStats pins the interner and the stats the -explain output
// reports.
func TestLoweringStats(t *testing.T) {
	comp := sim.Random(sim.DefaultRandomConfig(3, 12), 1)
	x := predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.GE, K: 1}
	conj := predicate.Conjunctive{Locals: []predicate.LocalPredicate{
		x, x, // duplicate: second interned
		predicate.VarCmp{Proc: 1, Var: "y", Op: predicate.LE, K: 2},
	}}
	p := pir.FromPredicate(conj).Bind(comp)
	st := p.Lowering()
	if !st.Lowered {
		t.Fatal("conjunctive predicate not lowered")
	}
	if st.Conjuncts != 3 || st.Interned != 1 || st.Procs != 2 {
		t.Errorf("stats = %+v, want 3 conjuncts, 1 interned, 2 procs", st)
	}
	wantBits := comp.Len(0) + 1 + comp.Len(1) + 1 // one bitset per distinct conjunct
	if st.StateBits != wantBits {
		t.Errorf("StateBits = %d, want %d", st.StateBits, wantBits)
	}
	if st.Words < 2 {
		t.Errorf("Words = %d, want >= 2", st.Words)
	}
	// Unlowerable predicates report zero stats and Bind is idempotent.
	q := pir.FromPredicate(predicate.ChannelsEmpty{}).Bind(comp).Bind(comp)
	if q.Lowering().Lowered {
		t.Error("channelsEmpty predicate claims a lowering")
	}
}

// benchCuts returns a deterministic mix of cuts spread through a large
// computation, for the evaluation benchmarks.
func benchCuts(comp *computation.Computation, k int) []computation.Cut {
	rng := rand.New(rand.NewSource(7))
	cuts := make([]computation.Cut, 0, k)
	for i := 0; i < k; i++ {
		cut := computation.NewCut(comp.N())
		for p := 0; p < comp.N(); p++ {
			cut[p] = rng.Intn(comp.Len(p) + 1)
		}
		cuts = append(cuts, cut)
	}
	return cuts
}

// BenchmarkConjEvalAST measures the structural AST-walk evaluation of a
// conjunctive predicate; BenchmarkConjEvalBitset measures the same
// predicate through the interned-bitset lowering. The ratio is the
// speedup EXPERIMENTS.md records.
func BenchmarkConjEvalAST(b *testing.B) {
	comp := sim.Random(sim.DefaultRandomConfig(4, 4000), 3)
	conj := benchConj()
	cuts := benchCuts(comp, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conj.Eval(comp, cuts[i%len(cuts)])
	}
}

func BenchmarkConjEvalBitset(b *testing.B) {
	comp := sim.Random(sim.DefaultRandomConfig(4, 4000), 3)
	p := pir.FromPredicate(benchConj()).Bind(comp)
	low, _ := p.Linear()
	cuts := benchCuts(comp, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		low.Eval(comp, cuts[i%len(cuts)])
	}
}

func benchConj() predicate.Conjunctive {
	return predicate.Conjunctive{Locals: []predicate.LocalPredicate{
		predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.GE, K: 1},
		predicate.VarCmp{Proc: 1, Var: "x", Op: predicate.GE, K: 1},
		predicate.VarCmp{Proc: 2, Var: "y", Op: predicate.LE, K: 5},
		predicate.VarCmp{Proc: 3, Var: "y", Op: predicate.LE, K: 5},
	}}
}

package pir

// This file is the executable form of the paper's Table 1: given a CTL
// operator and a compiled predicate, Choose returns which detection
// algorithm applies, with the cell, complexity, and justification. The
// probe order per operator is part of the contract — e.g. a bare local
// predicate under EF routes to the disjunctive scan, not the advancement
// — and the golden Table 1 test pins every (class × operator) cell.

import "repro/internal/predicate"

// Op is a CTL temporal operator.
type Op string

// The temporal operators of the paper's fragment.
const (
	OpEF Op = "EF"
	OpAF Op = "AF"
	OpEG Op = "EG"
	OpAG Op = "AG"
	OpEU Op = "EU"
	OpAU Op = "AU"
)

// Kind identifies the detection strategy a Choice selects. The dispatcher
// switches on it; everything else in Choice is reporting.
type Kind int

// The detection strategies of Table 1 plus the structural splits.
const (
	// KindStableFinal evaluates a stable predicate at the final cut (EF/AF).
	KindStableFinal Kind = iota
	// KindStableInitial evaluates a stable predicate at the initial cut (EG/AG).
	KindStableInitial
	// KindSplitOr distributes EF over ∨.
	KindSplitOr
	// KindSplitAnd distributes AG over ∧.
	KindSplitAnd
	// KindDisjunctiveScan scans local states for EF of a disjunction.
	KindDisjunctiveScan
	// KindLinearLeast finds the least satisfying cut by advancement (EF).
	KindLinearLeast
	// KindPostLinearGreatest is the dual advancement (EF post-linear).
	KindPostLinearGreatest
	// KindObserverWalk evaluates along a single observation.
	KindObserverWalk
	// KindConjunctiveBoxes is Garg–Waldecker interval boxes (AF conjunctive).
	KindConjunctiveBoxes
	// KindDisjunctiveDualA1 detects AF of a disjunction as ¬EG(¬p) via A1.
	KindDisjunctiveDualA1
	// KindLinearA1 is Algorithm A1 (EG linear).
	KindLinearA1
	// KindDisjunctiveDualBoxes detects EG of a disjunction as ¬AF(¬p).
	KindDisjunctiveDualBoxes
	// KindPostLinearA1Dual is the dual Algorithm A1 (EG post-linear).
	KindPostLinearA1Dual
	// KindLinearA2 is Algorithm A2 over meet-irreducibles (AG linear).
	KindLinearA2
	// KindDisjunctiveDualLeast detects AG of a disjunction as ¬EF(¬p).
	KindDisjunctiveDualLeast
	// KindPostLinearA2Dual is Algorithm A2 over join-irreducibles.
	KindPostLinearA2Dual
	// KindUntilA3 is Algorithm A3 (EU, conjunctive/linear).
	KindUntilA3
	// KindUntilSplitOr distributes the EU target over ∨.
	KindUntilSplitOr
	// KindUntilSplitDisj splits a disjunctive EU target into its locals.
	KindUntilSplitDisj
	// KindUntilAUComposition is the AU composition of Section 7.
	KindUntilAUComposition
	// KindExponential is the memoized exponential lattice search.
	KindExponential
	// KindSliceFactor routes an otherwise-exponential EF/AG through the
	// computation slice of a conjunctive factor: EF(c ∧ r) enumerates
	// only the slice sublattice of the regular factor c, evaluating the
	// arbitrary remainder r per slice cut (AG dually, via ¬EF).
	KindSliceFactor
)

// SlicePlan is the slicing decision attached to every Choice: whether
// detection routes through the computation slice (Mittal–Garg), and the
// machine-readable justification either way. The -explain output prints
// it, and the dispatcher consults Sliced via Kind == KindSliceFactor.
type SlicePlan struct {
	// Sliced is whether detection runs over the slice sublattice instead
	// of the full cut lattice.
	Sliced bool
	// Factor renders the regular (conjunctive) factor whose slice
	// restricts the search; empty when not sliced.
	Factor string
	// Why justifies the decision: why the slice applies, or why the
	// chosen algorithm does not benefit from one.
	Why string
}

// String renders the plan for diagnostics and -explain.
func (sp SlicePlan) String() string {
	if sp.Sliced {
		return "sliced on " + sp.Factor + " — " + sp.Why
	}
	return "not sliced — " + sp.Why
}

// Slicing justifications for the non-sliced cells, one per family of
// Table 1 kinds. These are reporting strings (pinned by the explain
// goldens), not dispatch inputs.
const (
	sliceWhyStable   = "stable predicates are constant-work: one evaluation at a fixed cut beats building any slice"
	sliceWhySplit    = "the split children are dispatched separately, each with its own slicing decision"
	sliceWhyScan     = "the local-state scan is already O(|E|); slice construction alone costs more"
	sliceWhyAdvance  = "the advancement is already O(n|E|); building the slice costs the same n advancement runs with no asymptotic win (measured: benchharness -experiment ablation [4])"
	sliceWhyDual     = "the dual advancement on the conjunctive complement is already polynomial; the complement's slice would answer the same query at the same cost"
	sliceWhyObserver = "one linearization decides; no lattice is searched, so there is nothing to slice"
	sliceWhyBoxes    = "the interval-box scan works on local true-intervals, not cuts; no lattice is searched"
	sliceWhyNoFactor = "no conjunctive (regular) factor to slice on: the slice sublattice is only exact for regular predicates"
	sliceWhyUntil    = "the until path constraint is not preserved by slice joins: a p-path between slice cuts may leave the slice, so slice-jumping is unsound for EU/AU"
	sliceWhyPath     = "the search needs a one-event-at-a-time chain and already abandons a path at its first failing cut; slice joins skip cuts the chain must pass through"
)

// withSlice attaches the slicing decision for the non-sliced kinds; the
// KindSliceFactor constructors set their plan inline.
func (c Choice) withSlice() Choice {
	switch c.Kind {
	case KindStableFinal, KindStableInitial:
		c.Slice = SlicePlan{Why: sliceWhyStable}
	case KindSplitOr, KindSplitAnd, KindUntilSplitOr, KindUntilSplitDisj:
		c.Slice = SlicePlan{Why: sliceWhySplit}
	case KindDisjunctiveScan:
		c.Slice = SlicePlan{Why: sliceWhyScan}
	case KindLinearLeast, KindPostLinearGreatest, KindLinearA1, KindPostLinearA1Dual,
		KindLinearA2, KindPostLinearA2Dual:
		c.Slice = SlicePlan{Why: sliceWhyAdvance}
	case KindDisjunctiveDualA1, KindDisjunctiveDualBoxes, KindDisjunctiveDualLeast:
		c.Slice = SlicePlan{Why: sliceWhyDual}
	case KindObserverWalk:
		c.Slice = SlicePlan{Why: sliceWhyObserver}
	case KindConjunctiveBoxes:
		c.Slice = SlicePlan{Why: sliceWhyBoxes}
	case KindUntilA3, KindUntilAUComposition:
		c.Slice = SlicePlan{Why: sliceWhyUntil}
	case KindExponential:
		switch c.Op {
		case OpEU, OpAU:
			c.Slice = SlicePlan{Why: sliceWhyUntil}
		case OpEG, OpAF:
			c.Slice = SlicePlan{Why: sliceWhyPath}
		default:
			c.Slice = SlicePlan{Why: sliceWhyNoFactor}
		}
	}
	return c
}

// Choice is the outcome of Table 1 dispatch for one operator application.
type Choice struct {
	// Op is the operator dispatched on.
	Op Op
	// Kind selects the detection strategy; the dispatcher switches on it.
	Kind Kind
	// Algorithm is the human-readable algorithm name, verbatim the string
	// detection reports in Result.Algorithm.
	Algorithm string
	// Cell is the Table 1 cell, "row × column".
	Cell string
	// Complexity is the asymptotic cost in predicate evaluations (n
	// processes, |E| events, m true-intervals).
	Complexity string
	// Reason is the justification chain: which class was inferred and why
	// that class admits this algorithm.
	Reason string
	// Slice is the slicing decision: whether detection routes through the
	// computation slice, with justification either way.
	Slice SlicePlan
}

// Choose dispatches a unary temporal operator over a compiled predicate,
// returning the Table 1 cell that applies. The probe order transcribes
// the paper: stable first (constant-work), then the structural splits,
// then the most specific polynomial class, then the exponential fallback.
func Choose(op Op, p *Pred) Choice {
	switch op {
	case OpEF:
		return chooseEF(p).withSlice()
	case OpAF:
		return chooseAF(p).withSlice()
	case OpEG:
		return chooseEG(p).withSlice()
	case OpAG:
		return chooseAG(p).withSlice()
	default:
		panic("pir: Choose called with binary operator " + string(op))
	}
}

func chooseEF(p *Pred) Choice {
	if _, ok := p.Stable(); ok {
		return Choice{OpEF, KindStableFinal, "EF stable: evaluate at the final cut",
			"stable × EF", "O(1) cuts",
			"stable: satisfying cuts are upward-closed, so EF(p) ⟺ p at the final cut", SlicePlan{}}
	}
	if _, ok := p.P.(predicate.Or); ok {
		return Choice{OpEF, KindSplitOr, "EF over ∨: split per disjunct",
			"boolean ∨ × EF", "sum over disjuncts",
			"EF distributes over disjunction: EF(a ∨ b) = EF(a) ∨ EF(b)", SlicePlan{}}
	}
	if _, ok := p.Disjunctive(); ok {
		return Choice{OpEF, KindDisjunctiveScan, "EF disjunctive: local state scan",
			"disjunctive × EF", "O(|E|) local states",
			"disjunctive: some local disjunct holds at some cut iff it holds in some local state", SlicePlan{}}
	}
	if _, ok := p.Linear(); ok {
		return Choice{OpEF, KindLinearLeast, "EF linear: Chase–Garg advancement",
			"linear × EF", "O(n|E|) evaluations",
			"linear: satisfying cuts are meet-closed, so the advancement property finds the least one", SlicePlan{}}
	}
	if _, ok := p.PostLinear(); ok {
		return Choice{OpEF, KindPostLinearGreatest, "EF post-linear: dual advancement",
			"post-linear × EF", "O(n|E|) evaluations",
			"post-linear: satisfying cuts are join-closed, so the dual advancement finds the greatest one", SlicePlan{}}
	}
	if _, ok := p.ObserverBody(); ok {
		return Choice{OpEF, KindObserverWalk, "EF observer-independent: single observation",
			"observer-independent × EF", "O(|E|) cuts along one observation",
			"observer-independent: EF ⟺ AF, so one linearization decides", SlicePlan{}}
	}
	if factor, _, ok := sliceFactorOf(p.P); ok {
		return Choice{OpEF, KindSliceFactor, "EF factored: slice-restricted search over the regular factor",
			"arbitrary × EF (regular factor)", "O(|slice| · n) cuts",
			"the conjunctive factor is regular, so its satisfying cuts are exactly the slice sublattice (Mittal–Garg); the search enumerates slice cuts only, evaluating the remainder per cut",
			SlicePlan{Sliced: true, Factor: factor.String(),
				Why: "regular factor: EF(c ∧ r) holds iff some cut of c's slice satisfies r"}}
	}
	return Choice{OpEF, KindExponential, "EF arbitrary: exponential search (NP-complete)",
		"arbitrary × EF", "O(2^|E|) cuts, memoized",
		"no structure inferred: EF for arbitrary predicates is NP-complete", SlicePlan{}}
}

func chooseAF(p *Pred) Choice {
	if _, ok := p.Stable(); ok {
		return Choice{OpAF, KindStableFinal, "AF stable: evaluate at the final cut",
			"stable × AF", "O(1) cuts",
			"stable: every observation ends at the final cut, so AF(p) ⟺ p at the final cut", SlicePlan{}}
	}
	if _, ok := p.Conjunctive(); ok {
		return Choice{OpAF, KindConjunctiveBoxes, "AF conjunctive: Garg–Waldecker interval boxes",
			"conjunctive × AF", "O(n²m) interval comparisons",
			"conjunctive: AF(p) ⟺ some box of pairwise-overlapping true-intervals (Garg–Waldecker)", SlicePlan{}}
	}
	if _, ok := p.Disjunctive(); ok {
		return Choice{OpAF, KindDisjunctiveDualA1, "AF disjunctive: ¬EG(¬p) via A1",
			"disjunctive × AF", "O(n|E|) evaluations",
			"disjunctive: ¬p is conjunctive hence linear, and AF(p) = ¬EG(¬p) by duality", SlicePlan{}}
	}
	if _, ok := p.ObserverBody(); ok {
		return Choice{OpAF, KindObserverWalk, "AF observer-independent: single observation",
			"observer-independent × AF", "O(|E|) cuts along one observation",
			"observer-independent: AF ⟺ EF, so one linearization decides", SlicePlan{}}
	}
	return Choice{OpAF, KindExponential, "AF arbitrary: exponential search",
		"arbitrary × AF", "O(2^|E|) cuts, memoized",
		"no structure inferred: AF(p) = ¬EG(¬p) via the exponential solver", SlicePlan{}}
}

func chooseEG(p *Pred) Choice {
	if _, ok := p.Stable(); ok {
		return Choice{OpEG, KindStableInitial, "EG stable: evaluate at the initial cut",
			"stable × EG", "O(1) cuts",
			"stable: once true p stays true, so EG(p) ⟺ p at the initial cut", SlicePlan{}}
	}
	if _, ok := p.Linear(); ok {
		return Choice{OpEG, KindLinearA1, "EG linear: Algorithm A1",
			"linear × EG", "O(n|E|) evaluations",
			"linear: greedy path construction via the forbidden process (Algorithm A1)", SlicePlan{}}
	}
	if _, ok := p.Disjunctive(); ok {
		return Choice{OpEG, KindDisjunctiveDualBoxes, "EG disjunctive: ¬AF(¬p) via interval boxes",
			"disjunctive × EG", "O(n²m) interval comparisons",
			"disjunctive: ¬p is conjunctive, and EG(p) = ¬AF(¬p) by duality", SlicePlan{}}
	}
	if _, ok := p.PostLinear(); ok {
		return Choice{OpEG, KindPostLinearA1Dual, "EG post-linear: dual Algorithm A1",
			"post-linear × EG", "O(n|E|) evaluations",
			"post-linear: the dual greedy path construction applies", SlicePlan{}}
	}
	return Choice{OpEG, KindExponential, "EG arbitrary: exponential search (NP-complete, Theorem 5)",
		"arbitrary × EG", "O(2^|E|) cuts, memoized",
		"Theorem 5: EG is NP-complete already for observer-independent predicates", SlicePlan{}}
}

func chooseAG(p *Pred) Choice {
	if _, ok := p.Stable(); ok {
		return Choice{OpAG, KindStableInitial, "AG stable: evaluate at the initial cut",
			"stable × AG", "O(1) cuts",
			"stable: if p holds initially it holds everywhere above, so AG(p) ⟺ p at the initial cut", SlicePlan{}}
	}
	if _, ok := p.P.(predicate.And); ok {
		return Choice{OpAG, KindSplitAnd, "AG over ∧: split per conjunct",
			"boolean ∧ × AG", "sum over conjuncts",
			"AG distributes over conjunction: AG(a ∧ b) = AG(a) ∧ AG(b)", SlicePlan{}}
	}
	if _, ok := p.Linear(); ok {
		return Choice{OpAG, KindLinearA2, "AG linear: Algorithm A2 (meet-irreducibles)",
			"linear × AG", "O(n|E|) evaluations over ≤|E| meet-irreducibles",
			"linear: by Birkhoff duality it suffices to check the meet-irreducible cuts (Algorithm A2)", SlicePlan{}}
	}
	if _, ok := p.Disjunctive(); ok {
		return Choice{OpAG, KindDisjunctiveDualLeast, "AG disjunctive: ¬EF(¬p) via advancement",
			"disjunctive × AG", "O(n|E|) evaluations",
			"disjunctive: ¬p is conjunctive hence linear, and AG(p) = ¬EF(¬p) by duality", SlicePlan{}}
	}
	if _, ok := p.PostLinear(); ok {
		return Choice{OpAG, KindPostLinearA2Dual, "AG post-linear: dual Algorithm A2 (join-irreducibles)",
			"post-linear × AG", "O(n|E|) evaluations over ≤|E| join-irreducibles",
			"post-linear: the dual Birkhoff argument over join-irreducibles applies", SlicePlan{}}
	}
	if n, ok := p.P.(predicate.Not); ok {
		if factor, _, ok := sliceFactorOf(n.P); ok {
			return Choice{OpAG, KindSliceFactor, "AG factored: ¬EF over the regular factor's slice",
				"arbitrary × AG (regular factor)", "O(|slice| · n) cuts",
				"AG(¬q) = ¬EF(q), and q's conjunctive factor is regular, so EF(q) searches only the factor's slice sublattice (Mittal–Garg)",
				SlicePlan{Sliced: true, Factor: factor.String(),
					Why: "regular factor under ¬: AG(¬(c ∧ r)) = ¬EF(c ∧ r), searched over c's slice"}}
		}
	}
	return Choice{OpAG, KindExponential, "AG arbitrary: exponential search (co-NP-complete, Theorem 6)",
		"arbitrary × AG", "O(2^|E|) cuts, memoized",
		"Theorem 6: AG is co-NP-complete already for observer-independent predicates", SlicePlan{}}
}

// ChooseUntil dispatches a binary temporal operator (EU or AU) over two
// compiled predicates.
func ChooseUntil(op Op, p, q *Pred) Choice {
	switch op {
	case OpEU:
		return chooseEU(p, q)
	case OpAU:
		return chooseAU(p, q)
	default:
		panic("pir: ChooseUntil called with unary operator " + string(op))
	}
}

func chooseEU(p, q *Pred) Choice {
	if _, okP := p.Conjunctive(); okP {
		if _, okQ := q.Linear(); okQ {
			return Choice{OpEU, KindUntilA3, "EU conjunctive/linear: Algorithm A3",
				"conjunctive U linear × EU", "O(n²|E|) evaluations",
				"Theorem 7: a path to the least cut satisfying q with p below it, via advancement + A1", SlicePlan{}}
		}
		if _, ok := q.P.(predicate.Or); ok {
			return Choice{OpEU, KindUntilSplitOr, "EU target over ∨: split per disjunct",
				"conjunctive U ∨ × EU", "sum over disjuncts",
				"E[p U (a ∨ b)] = E[p U a] ∨ E[p U b]", SlicePlan{}}
		}
		if _, ok := q.P.(predicate.Disjunctive); ok {
			return Choice{OpEU, KindUntilSplitDisj, "EU target over disj: split per local",
				"conjunctive U disjunctive × EU", "sum over locals",
				"a disjunctive target splits into its local disjuncts, each conjunctive hence linear", SlicePlan{}}
		}
	}
	return Choice{OpEU, KindExponential, "EU arbitrary: exponential search",
		"arbitrary × EU", "O(2^|E|) cuts, memoized",
		"no structure inferred for the p/q pair", SlicePlan{}}
}

func chooseAU(p, q *Pred) Choice {
	_, okP := p.Disjunctive()
	_, okQ := q.Disjunctive()
	if okP && okQ {
		return Choice{OpAU, KindUntilAUComposition, "AU disjunctive: ¬(EG(¬q) ∨ E[¬q U ¬p∧¬q])",
			"disjunctive U disjunctive × AU", "O(n²|E|) evaluations",
			"Section 7 composition: the complements are conjunctive, detected by A1 and A3", SlicePlan{}}
	}
	return Choice{OpAU, KindExponential, "AU arbitrary: exponential search",
		"arbitrary × AU", "O(2^|E|) cuts, memoized",
		"no structure inferred for the p/q pair", SlicePlan{}}
}

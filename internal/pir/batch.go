// Batch is the lowered wire representation of a run of ingest events:
// instead of one AST-shaped ClientFrame per event, a batch carries the
// events of many frames in parallel columns (struct-of-arrays), the
// same shape the bitset lowering wants, so the server's hot path
// decodes bytes straight into the form the monitor consumes and skips
// per-event JSON decoding entirely. Batches travel either as a "batch"
// NDJSON frame (JSON column encoding, used by cluster replication and
// recovery replay) or as the binary payload of a length-prefixed batch
// frame (see the server package for framing and negotiation).
//
// The binary payload interns variable names in a per-connection
// VarTable: a name is declared once with an explicit index and
// referenced by index afterwards, so steady-state event encoding
// carries no strings at all. Declarations carry their index explicitly
// so re-decoding a duplicated frame (at-least-once redelivery through
// a flaky link) is idempotent on the table.
package pir

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Event kinds inside a Batch. The first three mirror computation.Kind;
// EvInit is a batched init frame (initial variable value, before any
// event of that process).
const (
	EvInternal byte = 0
	EvSend     byte = 1
	EvReceive  byte = 2
	EvInit     byte = 3
)

// Decode bounds. Counts arrive from untrusted peers; both caps bound
// allocation before it happens.
const (
	// MaxBatchEvents bounds the events one batch may carry.
	MaxBatchEvents = 1 << 16
	// MaxBatchVars bounds the per-connection interned-name table.
	MaxBatchVars = 1 << 16
)

// VarSet is one variable assignment riding on an event. The short JSON
// keys keep the NDJSON batch encoding (cluster replication) compact.
type VarSet struct {
	Name string `json:"n"`
	Val  int    `json:"v"`
}

// Batch is a column-oriented run of ingest events. All columns are
// parallel: event i is (Procs[i], Kinds[i], Msgs[i]) with variable
// assignments Sets[SetOff[i]:SetOff[i+1]]. Procs are 1-based wire
// process ids, exactly as on single event frames. Msgs may be nil when
// no event carries a message id.
type Batch struct {
	Procs  []int32  `json:"procs"`
	Kinds  []byte   `json:"kinds"`
	Msgs   []int32  `json:"msgs,omitempty"`
	SetOff []uint32 `json:"setoff"`
	Sets   []VarSet `json:"sets,omitempty"`

	// pooled marks batches handed out by GetBatch; only those return to
	// the pool on Recycle, so JSON-decoded and Cloned batches (which the
	// cluster retains in frame logs) can never be recycled under a
	// reader.
	pooled bool
}

var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// GetBatch returns an empty pooled batch. Callers must Recycle it when
// the apply path is done with it.
func GetBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.pooled = true
	return b
}

// Recycle resets b and returns it to the pool. It is a no-op on
// batches that did not come from GetBatch (JSON-decoded, Cloned, or
// zero-value), so calling it unconditionally after apply is safe.
func (b *Batch) Recycle() {
	if b == nil || !b.pooled {
		return
	}
	b.Reset()
	b.pooled = false
	batchPool.Put(b)
}

// Reset empties the columns, keeping capacity.
func (b *Batch) Reset() {
	b.Procs = b.Procs[:0]
	b.Kinds = b.Kinds[:0]
	b.Msgs = b.Msgs[:0]
	b.SetOff = b.SetOff[:0]
	b.Sets = b.Sets[:0]
}

// Clone returns an unpooled deep copy, safe to retain after the
// original is recycled. Interned name strings are shared (strings are
// immutable).
func (b *Batch) Clone() *Batch {
	c := &Batch{
		Procs:  append([]int32(nil), b.Procs...),
		Kinds:  append([]byte(nil), b.Kinds...),
		SetOff: append([]uint32(nil), b.SetOff...),
		Sets:   append([]VarSet(nil), b.Sets...),
	}
	if b.Msgs != nil {
		c.Msgs = append([]int32(nil), b.Msgs...)
	}
	return c
}

// Len returns the number of events in the batch.
func (b *Batch) Len() int { return len(b.Procs) }

// Msg returns the message id of event i (0 when the Msgs column is
// absent).
func (b *Batch) Msg(i int) int {
	if b.Msgs == nil {
		return 0
	}
	return int(b.Msgs[i])
}

// AddInit appends a batched init frame: initial value of one variable
// on proc (1-based wire id).
func (b *Batch) AddInit(proc int, name string, val int) {
	b.begin(proc, EvInit, 0)
	b.Sets = append(b.Sets, VarSet{Name: name, Val: val})
	b.SetOff[len(b.SetOff)-1] = uint32(len(b.Sets))
}

// AddEvent appends one event. The sets map is copied now, so the
// caller may reuse or mutate it afterwards.
func (b *Batch) AddEvent(proc int, kind byte, msg int, sets map[string]int) {
	b.begin(proc, kind, msg)
	for name, v := range sets {
		b.Sets = append(b.Sets, VarSet{Name: name, Val: v})
	}
	b.SetOff[len(b.SetOff)-1] = uint32(len(b.Sets))
}

func (b *Batch) begin(proc int, kind byte, msg int) {
	if len(b.SetOff) == 0 {
		b.SetOff = append(b.SetOff, 0)
	}
	b.Procs = append(b.Procs, int32(proc))
	b.Kinds = append(b.Kinds, kind)
	b.Msgs = append(b.Msgs, int32(msg))
	b.SetOff = append(b.SetOff, uint32(len(b.Sets)))
}

// Validate checks the structural invariants of a batch. Binary decode
// only constructs valid batches; JSON-decoded batches (the "batch"
// NDJSON frame, cluster replication, recovery replay) arrive from
// untrusted bytes and must pass here before apply.
func (b *Batch) Validate() error {
	n := len(b.Procs)
	if n > MaxBatchEvents {
		return fmt.Errorf("pir: batch of %d events exceeds %d", n, MaxBatchEvents)
	}
	if len(b.Kinds) != n {
		return fmt.Errorf("pir: kinds column has %d entries for %d events", len(b.Kinds), n)
	}
	if b.Msgs != nil && len(b.Msgs) != n {
		return fmt.Errorf("pir: msgs column has %d entries for %d events", len(b.Msgs), n)
	}
	if n == 0 {
		if len(b.SetOff) > 1 || len(b.Sets) != 0 {
			return fmt.Errorf("pir: empty batch with set columns")
		}
		return nil
	}
	if len(b.SetOff) != n+1 {
		return fmt.Errorf("pir: setoff column has %d entries for %d events", len(b.SetOff), n)
	}
	if b.SetOff[0] != 0 || b.SetOff[n] != uint32(len(b.Sets)) {
		return fmt.Errorf("pir: setoff endpoints [%d,%d] do not span %d sets", b.SetOff[0], b.SetOff[n], len(b.Sets))
	}
	for i := 0; i < n; i++ {
		if b.SetOff[i] > b.SetOff[i+1] {
			return fmt.Errorf("pir: setoff not monotone at event %d", i)
		}
		if b.Kinds[i] > EvInit {
			return fmt.Errorf("pir: unknown event kind %d at event %d", b.Kinds[i], i)
		}
		if b.Kinds[i] == EvInit && b.SetOff[i+1] != b.SetOff[i]+1 {
			return fmt.Errorf("pir: init event %d carries %d assignments (want 1)", i, b.SetOff[i+1]-b.SetOff[i])
		}
	}
	return nil
}

// VarTable interns variable names across the batches of one
// connection. The encoder and decoder each keep one and must reset it
// whenever the transport reconnects: declarations are per-connection,
// so a resumed stream re-declares names and the two tables stay in
// step without any handshake.
type VarTable struct {
	names []string
	idx   map[string]int
}

// Reset empties the table. Call on every (re)connect, both sides.
func (t *VarTable) Reset() {
	t.names = t.names[:0]
	clear(t.idx)
}

// internEncode returns the index of name, adding it if new. The second
// result is true when the name was already known (encode a reference)
// and false when this call declared it (encode the declaration).
func (t *VarTable) internEncode(name string) (int, bool) {
	if t.idx == nil {
		t.idx = make(map[string]int)
	}
	if i, ok := t.idx[name]; ok {
		return i, true
	}
	i := len(t.names)
	t.names = append(t.names, name)
	t.idx[name] = i
	return i, false
}

// Binary payload layout (all integers varint; values zigzag-varint):
//
//	uvarint seq            client-assigned batch sequence (0 = unsequenced)
//	uvarint count          events in the batch
//	per event:
//	  uvarint proc<<2|kind 1-based proc, kind in the low two bits
//	  send/receive: zigzag msg
//	  init:         key, zigzag value          (exactly one assignment)
//	  otherwise:    uvarint nsets, then (key, zigzag value)*
//
// A key is uvarint k: low bit set means a declaration — the name index
// is k>>1, followed by uvarint length and the name bytes, and the
// decoder appends (or verifies, on redelivery) table entry k>>1; low
// bit clear is a reference to existing entry k>>1.
//
// The seq leads the payload so the transport can run dup/gap triage
// before touching the event body.

// AppendBatch appends the binary payload for b with sequence seq,
// interning names through t, and returns the extended slice.
func AppendBatch(dst []byte, seq int64, b *Batch, t *VarTable) []byte {
	dst = binary.AppendUvarint(dst, uint64(seq))
	n := b.Len()
	dst = binary.AppendUvarint(dst, uint64(n))
	for i := 0; i < n; i++ {
		kind := b.Kinds[i]
		dst = binary.AppendUvarint(dst, uint64(b.Procs[i])<<2|uint64(kind))
		if kind == EvSend || kind == EvReceive {
			dst = appendZigzag(dst, int64(b.Msg(i)))
		}
		lo, hi := b.SetOff[i], b.SetOff[i+1]
		if kind != EvInit {
			dst = binary.AppendUvarint(dst, uint64(hi-lo))
		}
		for _, vs := range b.Sets[lo:hi] {
			dst = appendKey(dst, vs.Name, t)
			dst = appendZigzag(dst, int64(vs.Val))
		}
	}
	return dst
}

func appendKey(dst []byte, name string, t *VarTable) []byte {
	i, known := t.internEncode(name)
	if known {
		return binary.AppendUvarint(dst, uint64(i)<<1)
	}
	dst = binary.AppendUvarint(dst, uint64(i)<<1|1)
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	return append(dst, name...)
}

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

// BatchSeq peels the leading sequence number off a binary batch
// payload, returning the event body. The transport triages seq
// (dup/gap) on this alone, before any decode touches the var table.
func BatchSeq(payload []byte) (seq int64, body []byte, err error) {
	u, n := binary.Uvarint(payload)
	if n <= 0 || u > uint64(1)<<62 {
		return 0, nil, fmt.Errorf("pir: bad batch seq")
	}
	return int64(u), payload[n:], nil
}

// DecodeBody decodes a binary batch body (from BatchSeq) into b,
// resolving names through t. Decoding a duplicated payload is
// idempotent on t (declarations carry explicit indexes); a truncated
// or hostile payload returns an error with b in an undefined (but
// bounded and recyclable) state.
func (b *Batch) DecodeBody(body []byte, t *VarTable) error {
	b.Reset()
	count, n := binary.Uvarint(body)
	if n <= 0 || count > MaxBatchEvents {
		return fmt.Errorf("pir: bad batch count")
	}
	body = body[n:]
	b.SetOff = append(b.SetOff, 0)
	for i := uint64(0); i < count; i++ {
		head, n := binary.Uvarint(body)
		if n <= 0 || head>>2 > uint64(1)<<31 {
			return fmt.Errorf("pir: bad event head")
		}
		body = body[n:]
		kind := byte(head & 3)
		b.Procs = append(b.Procs, int32(head>>2))
		b.Kinds = append(b.Kinds, kind)
		var msg int64
		if kind == EvSend || kind == EvReceive {
			var err error
			if msg, body, err = decodeZigzag(body); err != nil {
				return err
			}
		}
		b.Msgs = append(b.Msgs, int32(msg))
		nsets := uint64(1)
		if kind != EvInit {
			nsets, n = binary.Uvarint(body)
			if n <= 0 || nsets > uint64(len(body)) {
				return fmt.Errorf("pir: bad set count")
			}
			body = body[n:]
		}
		for j := uint64(0); j < nsets; j++ {
			name, rest, err := decodeKey(body, t)
			if err != nil {
				return err
			}
			v, rest, err := decodeZigzag(rest)
			if err != nil {
				return err
			}
			body = rest
			b.Sets = append(b.Sets, VarSet{Name: name, Val: int(v)})
		}
		b.SetOff = append(b.SetOff, uint32(len(b.Sets)))
	}
	if len(body) != 0 {
		return fmt.Errorf("pir: %d trailing bytes after batch", len(body))
	}
	return nil
}

func decodeKey(body []byte, t *VarTable) (string, []byte, error) {
	k, n := binary.Uvarint(body)
	if n <= 0 {
		return "", nil, fmt.Errorf("pir: bad var key")
	}
	body = body[n:]
	i := int(k >> 1)
	if k&1 == 0 {
		if i >= len(t.names) {
			return "", nil, fmt.Errorf("pir: var reference %d beyond table of %d", i, len(t.names))
		}
		return t.names[i], body, nil
	}
	ln, n := binary.Uvarint(body)
	if n <= 0 || ln > uint64(len(body)-n) {
		return "", nil, fmt.Errorf("pir: bad var declaration")
	}
	name := string(body[n : n+int(ln)])
	body = body[n+int(ln):]
	switch {
	case i == len(t.names):
		if len(t.names) >= MaxBatchVars {
			return "", nil, fmt.Errorf("pir: var table exceeds %d names", MaxBatchVars)
		}
		if t.idx == nil {
			t.idx = make(map[string]int)
		}
		t.names = append(t.names, name)
		t.idx[name] = i
	case i < len(t.names):
		// Redelivered declaration (duplicated frame): must agree.
		if t.names[i] != name {
			return "", nil, fmt.Errorf("pir: var declaration %d=%q conflicts with %q", i, name, t.names[i])
		}
	default:
		return "", nil, fmt.Errorf("pir: var declaration %d skips table of %d", i, len(t.names))
	}
	return name, body, nil
}

func decodeZigzag(body []byte) (int64, []byte, error) {
	u, n := binary.Uvarint(body)
	if n <= 0 {
		return 0, nil, fmt.Errorf("pir: bad varint value")
	}
	return int64(u>>1) ^ -int64(u&1), body[n:], nil
}

// Package pir is the predicate intermediate representation: the single
// classifier and compiler behind the paper's Table 1. A non-temporal
// formula is compiled once into a Pred carrying (a) the inferred class
// lattice of Section 2 (local / conjunctive / disjunctive / linear /
// post-linear / stable / observer-independent, or arbitrary when no
// structure is recognized), (b) a fast evaluator — conjunctions and
// disjunctions of local predicates are lowered to interned per-event
// bitsets so cut evaluation is word tests instead of AST walks — and
// (c) the detection algorithm Table 1 prescribes per CTL operator,
// with a machine-readable justification (see Choose).
//
// Every consumer classifies through this package: the offline detector
// (core.Detect), the explicit-lattice validator (explore.CrossCheckIR),
// the online monitors and the server (online.ParseConj), and the
// -explain output of hbdetect. There is deliberately no second
// classification code path in the repository.
package pir

import (
	"fmt"
	"strings"

	"repro/internal/ctl"
	"repro/internal/predicate"
)

// Class is a bitmask over the predicate classes of the paper's Section 2.
// Classes are not exclusive — every conjunctive predicate is also linear
// and post-linear, every disjunctive or stable predicate is
// observer-independent — and the mask records the whole chain so
// consumers can ask for the view they need.
type Class uint16

// The individual class bits. The zero mask is ClassArbitrary: nothing
// structural is known and detection falls back to the exponential solver.
const (
	ClassLocal Class = 1 << iota
	ClassConjunctive
	ClassDisjunctive
	ClassLinear
	ClassPostLinear
	ClassStable
	ClassObserverIndependent
)

// ClassArbitrary is the empty mask: no structure inferred.
const ClassArbitrary Class = 0

// Has reports whether every bit of x is set in c.
func (c Class) Has(x Class) bool { return c&x == x }

// classNames orders the bits for display: containment-coarser classes
// later, so "conjunctive, linear, post-linear" reads as a chain.
var classNames = []struct {
	bit  Class
	name string
}{
	{ClassLocal, "local"},
	{ClassConjunctive, "conjunctive"},
	{ClassDisjunctive, "disjunctive"},
	{ClassStable, "stable"},
	{ClassLinear, "linear"},
	{ClassPostLinear, "post-linear"},
	{ClassObserverIndependent, "observer-independent"},
}

// String renders the mask as a comma-separated chain, or "arbitrary".
func (c Class) String() string {
	if c == ClassArbitrary {
		return "arbitrary"
	}
	parts := make([]string, 0, len(classNames))
	for _, n := range classNames {
		if c&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	return strings.Join(parts, ", ")
}

// Primary returns the most specific single class in the mask — the Table 1
// row detection dispatches on first.
func (c Class) Primary() string {
	if c == ClassArbitrary {
		return "arbitrary"
	}
	for _, n := range classNames {
		if c&n.bit != 0 {
			return n.name
		}
	}
	return "arbitrary"
}

// Pred is a compiled predicate: the IR node every consumer shares.
type Pred struct {
	// Source is the formula the predicate was compiled from; nil when the
	// Pred was built directly from a predicate value.
	Source ctl.Formula
	// P is the compiled predicate, normalized to preserve class structure
	// (negations of conjunctive predicates become disjunctive and vice
	// versa, conjunctions of conjunctive predicates merge, …).
	P predicate.Predicate
	// Class is the statically inferred class lattice of P. Inference is
	// sound with respect to the views below (each bit is backed by a
	// structural witness), and cross-checked against brute-force lattice
	// classification in race-enabled test builds (explore.CrossCheckIR).
	Class Class

	low *lowering // bitset lowering, non-nil after Bind
}

// Compile lowers a non-temporal CTL formula to a classified predicate,
// preserving as much class structure as possible so the dispatcher can
// pick polynomial algorithms: negations of conjunctive predicates become
// disjunctive (and vice versa), conjunctions of conjunctive predicates
// merge, disjunctions of disjunctive predicates merge.
func Compile(f ctl.Formula) (*Pred, error) {
	p, err := compile(f)
	if err != nil {
		return nil, err
	}
	pr := FromPredicate(p)
	pr.Source = f
	return pr, nil
}

// CompileSource parses src in the ctl syntax and compiles it; temporal
// operators are rejected. It is the entry point for the online monitors
// and the server, which accept predicates as text.
func CompileSource(src string) (*Pred, error) {
	f, err := ctl.Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(f)
}

// FromPredicate wraps an already-built predicate in the IR, inferring its
// class from its structure.
func FromPredicate(p predicate.Predicate) *Pred {
	return &Pred{P: p, Class: Infer(p)}
}

// compile is the recursive normalizer (formerly core.Compile).
func compile(f ctl.Formula) (predicate.Predicate, error) {
	switch g := f.(type) {
	case ctl.Atom:
		return g.P, nil
	case ctl.Not:
		inner, err := compile(g.F)
		if err != nil {
			return nil, err
		}
		switch p := inner.(type) {
		case predicate.Conjunctive:
			return p.Negate(), nil
		case predicate.Disjunctive:
			return p.Negate(), nil
		case predicate.LocalPredicate:
			return predicate.NotLocal{P: p}, nil
		case predicate.Not:
			return p.P, nil
		case predicate.Const:
			return !p, nil
		default:
			return predicate.Not{P: inner}, nil
		}
	case ctl.And:
		a, err := compile(g.L)
		if err != nil {
			return nil, err
		}
		b, err := compile(g.R)
		if err != nil {
			return nil, err
		}
		ca, okA := conjunctiveView(a)
		cb, okB := conjunctiveView(b)
		if okA && okB {
			return predicate.MergeConj(ca, cb), nil
		}
		la, okA := linearView(a)
		lb, okB := linearView(b)
		if okA && okB {
			return predicate.AndLinear{Ps: []predicate.Linear{la, lb}}, nil
		}
		return predicate.And{Ps: []predicate.Predicate{a, b}}, nil
	case ctl.Or:
		a, err := compile(g.L)
		if err != nil {
			return nil, err
		}
		b, err := compile(g.R)
		if err != nil {
			return nil, err
		}
		da, okA := disjunctiveView(a)
		db, okB := disjunctiveView(b)
		if okA && okB {
			return predicate.Disjunctive{Locals: append(append([]predicate.LocalPredicate{}, da.Locals...), db.Locals...)}, nil
		}
		return predicate.Or{Ps: []predicate.Predicate{a, b}}, nil
	default:
		return nil, fmt.Errorf("pir: nested temporal operator %s is outside the paper's fragment", f)
	}
}

// Infer computes the class lattice of a predicate from its structure.
// Each bit is justified by a closure argument from Section 2:
//
//   - conjunctive ⟹ linear and post-linear (satisfying cuts are closed
//     under both meet and join — the predicate is regular);
//   - disjunctive ⟹ observer-independent (Proposition: a disjunction of
//     local predicates holds on some cut of one observation iff it holds
//     on some cut of every observation);
//   - stable ⟹ observer-independent (once true, stays true, so every
//     observer passes through a satisfying cut or none does);
//   - a single local predicate is both a one-conjunct conjunction and a
//     one-disjunct disjunction, hence everything above.
//
// Linear/post-linear bits otherwise come from the predicate's own
// interface implementations (the type carries the advancement property).
func Infer(p predicate.Predicate) Class {
	var c Class
	if _, ok := p.(predicate.LocalPredicate); ok {
		c |= ClassLocal
	}
	if _, ok := conjunctiveView(p); ok {
		c |= ClassConjunctive | ClassLinear | ClassPostLinear
	}
	if _, ok := disjunctiveView(p); ok {
		c |= ClassDisjunctive | ClassObserverIndependent
	}
	if _, ok := p.(predicate.Linear); ok {
		c |= ClassLinear
	}
	if _, ok := p.(predicate.PostLinear); ok {
		c |= ClassPostLinear
	}
	if _, ok := stableView(p); ok {
		c |= ClassStable | ClassObserverIndependent
	}
	if _, ok := p.(predicate.ObserverIndependent); ok {
		c |= ClassObserverIndependent
	}
	return c
}

// ---------------------------------------------------------------------------
// Typed views. These are the only class probes in the repository; the
// dispatcher, the compiler and Infer all go through them.

// conjunctiveView views p as a conjunctive predicate when possible;
// single local predicates are one-conjunct conjunctions.
func conjunctiveView(p predicate.Predicate) (predicate.Conjunctive, bool) {
	switch q := p.(type) {
	case predicate.Conjunctive:
		return q, true
	case predicate.LocalPredicate:
		return predicate.Conj(q), true
	default:
		return predicate.Conjunctive{}, false
	}
}

// disjunctiveView views p as a disjunctive predicate when possible.
func disjunctiveView(p predicate.Predicate) (predicate.Disjunctive, bool) {
	switch q := p.(type) {
	case predicate.Disjunctive:
		return q, true
	case predicate.LocalPredicate:
		return predicate.Disj(q), true
	default:
		return predicate.Disjunctive{}, false
	}
}

// linearView views p as a linear predicate when its type carries the
// advancement property.
func linearView(p predicate.Predicate) (predicate.Linear, bool) {
	switch q := p.(type) {
	case predicate.Linear:
		return q, true
	case predicate.LocalPredicate:
		return predicate.Conj(q), true
	default:
		return nil, false
	}
}

// postLinearView views p as a post-linear predicate.
func postLinearView(p predicate.Predicate) (predicate.PostLinear, bool) {
	switch q := p.(type) {
	case predicate.PostLinear:
		return q, true
	case predicate.LocalPredicate:
		return predicate.Conj(q), true
	default:
		return nil, false
	}
}

// stableView recognizes predicates known stable by construction.
func stableView(p predicate.Predicate) (predicate.Stable, bool) {
	switch q := p.(type) {
	case predicate.Stable:
		return q, true
	case predicate.Received, predicate.Terminated:
		return predicate.Stable{P: p}, true
	default:
		return predicate.Stable{}, false
	}
}

// observerView recognizes predicates known observer-independent by
// construction — explicitly asserted ones, stable ones, and disjunctive
// ones — and returns the predicate to hand to the single-observation
// walk.
func observerView(p predicate.Predicate) (predicate.Predicate, bool) {
	switch q := p.(type) {
	case predicate.ObserverIndependent:
		return q.P, true
	case predicate.Disjunctive:
		return q, true
	default:
		if s, ok := stableView(p); ok {
			return s, true
		}
		return nil, false
	}
}

// Conjunctive returns the conjunctive view of the predicate, when it has
// one. The view is structural (it exposes Locals); algorithms that only
// evaluate should prefer Linear, which is bitset-lowered after Bind.
func (pr *Pred) Conjunctive() (predicate.Conjunctive, bool) {
	return conjunctiveView(pr.P)
}

// Disjunctive returns the structural disjunctive view, when present.
func (pr *Pred) Disjunctive() (predicate.Disjunctive, bool) {
	return disjunctiveView(pr.P)
}

// ConjunctLocals returns the local conjuncts of a conjunctive predicate —
// the shape the online watches consume.
func (pr *Pred) ConjunctLocals() ([]predicate.LocalPredicate, bool) {
	c, ok := conjunctiveView(pr.P)
	if !ok {
		return nil, false
	}
	return c.Locals, true
}

// Linear returns the linear view — the bitset-lowered evaluator when the
// predicate is bound and lowerable, the structural predicate otherwise.
func (pr *Pred) Linear() (predicate.Linear, bool) {
	if pr.low != nil && pr.low.conj != nil {
		return pr.low.conj, true
	}
	return linearView(pr.P)
}

// PostLinear returns the post-linear view, lowered when available.
func (pr *Pred) PostLinear() (predicate.PostLinear, bool) {
	if pr.low != nil && pr.low.conj != nil {
		return pr.low.conj, true
	}
	return postLinearView(pr.P)
}

// Stable returns the stable view, when the predicate is stable by
// construction.
func (pr *Pred) Stable() (predicate.Stable, bool) {
	return stableView(pr.P)
}

// ObserverBody returns the predicate to evaluate along a single
// observation when the predicate is observer-independent by construction.
func (pr *Pred) ObserverBody() (predicate.Predicate, bool) {
	return observerView(pr.P)
}

// sliceFactorOf splits a predicate into a conjunctive (hence regular)
// factor and an arbitrary remainder: p ⟺ factor ∧ rest. It recognizes
// predicate.And with at least one conjunctive-viewable part (the shape
// the compiler produces for "conjunctive ∧ arbitrary") and, defensively,
// a bare conjunctive predicate (rest = true). The factor merges every
// conjunctive part; parts that are linear but not conjunctive (e.g.
// channelsEmpty) stay in the remainder — linearity alone is meet-closure,
// and the slice sublattice is only exact under meet- AND join-closure.
func sliceFactorOf(p predicate.Predicate) (predicate.Conjunctive, predicate.Predicate, bool) {
	if c, ok := conjunctiveView(p); ok {
		return c, predicate.True, true
	}
	and, ok := p.(predicate.And)
	if !ok {
		return predicate.Conjunctive{}, nil, false
	}
	var factor predicate.Conjunctive
	var rest []predicate.Predicate
	found := false
	for _, part := range and.Ps {
		if c, ok := conjunctiveView(part); ok {
			if !found {
				factor, found = c, true
			} else {
				factor = predicate.MergeConj(factor, c)
			}
			continue
		}
		rest = append(rest, part)
	}
	if !found {
		return predicate.Conjunctive{}, nil, false
	}
	switch len(rest) {
	case 0:
		return factor, predicate.True, true
	case 1:
		return factor, rest[0], true
	default:
		return factor, predicate.And{Ps: rest}, true
	}
}

// SliceFactor returns the predicate's regular factor as a linear
// evaluator (bitset-lowered after Bind) plus the arbitrary remainder,
// when the structure admits one: p ⟺ factor ∧ rest. This is the shape
// the slice-first EF dispatch consumes — detection builds the factor's
// slice and searches only its sublattice.
func (pr *Pred) SliceFactor() (predicate.Linear, predicate.Predicate, bool) {
	factor, rest, ok := sliceFactorOf(pr.P)
	if !ok {
		return nil, nil, false
	}
	if pr.low != nil {
		if pr.low.factor != nil {
			return pr.low.factor, rest, true
		}
		if pr.low.conj != nil {
			// Whole predicate is conjunctive (rest = true): reuse its lowering.
			return pr.low.conj, rest, true
		}
	}
	return factor, rest, true
}

// NegatedSliceFactor is the AG-side view: for p = ¬q where q has a slice
// factor, it returns q's factor and remainder, so AG(p) = ¬EF(q) can run
// the sliced search on q. Lowered after Bind, like SliceFactor.
func (pr *Pred) NegatedSliceFactor() (predicate.Linear, predicate.Predicate, bool) {
	n, ok := pr.P.(predicate.Not)
	if !ok {
		return nil, nil, false
	}
	factor, rest, ok := sliceFactorOf(n.P)
	if !ok {
		return nil, nil, false
	}
	if pr.low != nil && pr.low.factor != nil {
		return pr.low.factor, rest, true
	}
	return factor, rest, true
}

// DisjunctiveComplement returns ¬p as a linear (conjunctive) predicate
// for a disjunctive p — the shape the dual algorithms (AF via A1, AG via
// advancement) consume. Bitset-lowered after Bind: the complement is the
// word-wise complement of the disjunct bitsets.
func (pr *Pred) DisjunctiveComplement() (predicate.Linear, bool) {
	if pr.low != nil && pr.low.negConj != nil {
		return pr.low.negConj, true
	}
	d, ok := disjunctiveView(pr.P)
	if !ok {
		return nil, false
	}
	return d.Negate(), true
}

package pir_test

import (
	"strings"
	"testing"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/pir"
	"repro/internal/predicate"
	"repro/internal/sim"
)

func vc(proc int, name string) predicate.VarCmp {
	return predicate.VarCmp{Proc: proc, Var: name, Op: predicate.GE, K: 1}
}

// postOnly is post-linear but deliberately not Linear, not conjunctive
// and not stable, to reach the post-linear rows of Table 1.
type postOnly struct {
	inner predicate.ChannelsEmpty
}

func (p postOnly) Eval(c *computation.Computation, cut computation.Cut) bool {
	return p.inner.Eval(c, cut)
}

func (p postOnly) Retreat(c *computation.Computation, cut computation.Cut) (int, bool) {
	return p.inner.Retreat(c, cut)
}

func (p postOnly) String() string { return "postOnly(channelsEmpty)" }

func arbitrary() predicate.Predicate {
	return predicate.Fn{Name: "evenCut", F: func(c *computation.Computation, cut computation.Cut) bool {
		return cut.Size()%2 == 0
	}}
}

// TestGoldenTable1 pins every (class × operator) cell of the paper's
// Table 1: for each class fixture the IR must select exactly the
// algorithm the paper prescribes, including the NP-hard cells routing to
// the exponential solver.
func TestGoldenTable1(t *testing.T) {
	classes := []struct {
		name string
		p    predicate.Predicate
		want map[pir.Op]string
	}{
		{"local", vc(0, "x"), map[pir.Op]string{
			pir.OpEF: "EF disjunctive: local state scan",
			pir.OpAF: "AF conjunctive: Garg–Waldecker interval boxes",
			pir.OpEG: "EG linear: Algorithm A1",
			pir.OpAG: "AG linear: Algorithm A2 (meet-irreducibles)",
		}},
		{"conjunctive", predicate.Conj(vc(0, "x"), vc(1, "y")), map[pir.Op]string{
			pir.OpEF: "EF linear: Chase–Garg advancement",
			pir.OpAF: "AF conjunctive: Garg–Waldecker interval boxes",
			pir.OpEG: "EG linear: Algorithm A1",
			pir.OpAG: "AG linear: Algorithm A2 (meet-irreducibles)",
		}},
		{"disjunctive", predicate.Disj(vc(0, "x"), vc(1, "y")), map[pir.Op]string{
			pir.OpEF: "EF disjunctive: local state scan",
			pir.OpAF: "AF disjunctive: ¬EG(¬p) via A1",
			pir.OpEG: "EG disjunctive: ¬AF(¬p) via interval boxes",
			pir.OpAG: "AG disjunctive: ¬EF(¬p) via advancement",
		}},
		{"linear", predicate.MonotoneGE{ProcY: 0, VarY: "y", ProcX: 1, VarX: "x"}, map[pir.Op]string{
			pir.OpEF: "EF linear: Chase–Garg advancement",
			pir.OpAF: "AF arbitrary: exponential search",
			pir.OpEG: "EG linear: Algorithm A1",
			pir.OpAG: "AG linear: Algorithm A2 (meet-irreducibles)",
		}},
		{"post-linear", postOnly{}, map[pir.Op]string{
			pir.OpEF: "EF post-linear: dual advancement",
			pir.OpAF: "AF arbitrary: exponential search",
			pir.OpEG: "EG post-linear: dual Algorithm A1",
			pir.OpAG: "AG post-linear: dual Algorithm A2 (join-irreducibles)",
		}},
		{"regular", predicate.ChannelsEmpty{}, map[pir.Op]string{
			pir.OpEF: "EF linear: Chase–Garg advancement",
			pir.OpAF: "AF arbitrary: exponential search",
			pir.OpEG: "EG linear: Algorithm A1",
			pir.OpAG: "AG linear: Algorithm A2 (meet-irreducibles)",
		}},
		{"stable", predicate.Stable{P: arbitrary()}, map[pir.Op]string{
			pir.OpEF: "EF stable: evaluate at the final cut",
			pir.OpAF: "AF stable: evaluate at the final cut",
			pir.OpEG: "EG stable: evaluate at the initial cut",
			pir.OpAG: "AG stable: evaluate at the initial cut",
		}},
		// Theorems 5 and 6: EG/AG are NP-/co-NP-complete already for
		// observer-independent predicates — those cells must route to the
		// exponential solver even though EF/AF stay linear-time.
		{"observer-independent", predicate.ObserverIndependent{P: arbitrary()}, map[pir.Op]string{
			pir.OpEF: "EF observer-independent: single observation",
			pir.OpAF: "AF observer-independent: single observation",
			pir.OpEG: "EG arbitrary: exponential search (NP-complete, Theorem 5)",
			pir.OpAG: "AG arbitrary: exponential search (co-NP-complete, Theorem 6)",
		}},
		{"arbitrary", arbitrary(), map[pir.Op]string{
			pir.OpEF: "EF arbitrary: exponential search (NP-complete)",
			pir.OpAF: "AF arbitrary: exponential search",
			pir.OpEG: "EG arbitrary: exponential search (NP-complete, Theorem 5)",
			pir.OpAG: "AG arbitrary: exponential search (co-NP-complete, Theorem 6)",
		}},
	}
	for _, cl := range classes {
		p := pir.FromPredicate(cl.p)
		for _, op := range []pir.Op{pir.OpEF, pir.OpAF, pir.OpEG, pir.OpAG} {
			c := pir.Choose(op, p)
			if c.Algorithm != cl.want[op] {
				t.Errorf("%s × %s: got %q, want %q", cl.name, op, c.Algorithm, cl.want[op])
			}
			if c.Op != op || c.Cell == "" || c.Complexity == "" || c.Reason == "" {
				t.Errorf("%s × %s: incomplete choice %+v", cl.name, op, c)
			}
		}
	}
}

// TestGoldenTable1Until pins the binary-operator cells.
func TestGoldenTable1Until(t *testing.T) {
	conj := pir.FromPredicate(predicate.Conj(vc(0, "x")))
	disj := pir.FromPredicate(predicate.Disj(vc(0, "x"), vc(1, "y")))
	linear := pir.FromPredicate(predicate.ChannelsEmpty{})
	orOf := pir.FromPredicate(predicate.Or{Ps: []predicate.Predicate{arbitrary(), arbitrary()}})
	arb := pir.FromPredicate(arbitrary())

	cases := []struct {
		name string
		op   pir.Op
		p, q *pir.Pred
		want string
	}{
		{"conj U linear", pir.OpEU, conj, linear, "EU conjunctive/linear: Algorithm A3"},
		{"conj U or", pir.OpEU, conj, orOf, "EU target over ∨: split per disjunct"},
		{"conj U disj", pir.OpEU, conj, disj, "EU target over disj: split per local"},
		{"arb U arb", pir.OpEU, arb, arb, "EU arbitrary: exponential search"},
		{"disj AU disj", pir.OpAU, disj, disj, "AU disjunctive: ¬(EG(¬q) ∨ E[¬q U ¬p∧¬q])"},
		{"arb AU disj", pir.OpAU, arb, disj, "AU arbitrary: exponential search"},
	}
	for _, c := range cases {
		got := pir.ChooseUntil(c.op, c.p, c.q)
		if got.Algorithm != c.want {
			t.Errorf("%s: got %q, want %q", c.name, got.Algorithm, c.want)
		}
	}
	// EU's polynomial cell needs a conjunctive left operand: a disjunctive
	// p with a linear q is still exponential.
	if got := pir.ChooseUntil(pir.OpEU, pir.FromPredicate(postOnly{}), linear); got.Kind != pir.KindExponential {
		t.Errorf("postOnly U linear routed to %q", got.Algorithm)
	}
}

// TestInferClassChains pins the containment chains of Section 2 that
// Infer encodes.
func TestInferClassChains(t *testing.T) {
	cases := []struct {
		p    predicate.Predicate
		want string
	}{
		{vc(0, "x"), "local, conjunctive, disjunctive, linear, post-linear, observer-independent"},
		{predicate.Conj(vc(0, "x"), vc(1, "y")), "conjunctive, linear, post-linear"},
		{predicate.Disj(vc(0, "x"), vc(1, "y")), "disjunctive, observer-independent"},
		{predicate.Received{ID: 0}, "stable, linear, post-linear, observer-independent"},
		{predicate.Terminated{}, "stable, linear, post-linear, observer-independent"},
		{predicate.Stable{P: arbitrary()}, "stable, observer-independent"},
		{predicate.ObserverIndependent{P: arbitrary()}, "observer-independent"},
		{predicate.ChannelsEmpty{}, "linear, post-linear"},
		{predicate.MonotoneGE{ProcY: 0, VarY: "y", ProcX: 1, VarX: "x"}, "linear"},
		{postOnly{}, "post-linear"},
		{arbitrary(), "arbitrary"},
		{predicate.Const(true), "linear, post-linear"},
	}
	for _, c := range cases {
		if got := pir.Infer(c.p).String(); got != c.want {
			t.Errorf("Infer(%s) = %q, want %q", c.p, got, c.want)
		}
	}
	if pir.Infer(arbitrary()) != pir.ClassArbitrary {
		t.Error("arbitrary predicate has a non-empty class mask")
	}
	if c := pir.Infer(vc(0, "x")); !c.Has(pir.ClassLocal|pir.ClassLinear) || c.Primary() != "local" {
		t.Errorf("local class mask %v, primary %q", c, c.Primary())
	}
}

// TestCompileNormalization pins the class-preserving rewrites (moved here
// from core.Compile; core.Compile remains a veneer over pir.Compile).
func TestCompileNormalization(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"!conj(x@P1 == 1, y@P2 == 2)", "disj(!(x@P1 == 1), !(y@P2 == 2))"},
		{"!disj(x@P1 == 1, y@P2 == 2)", "conj(!(x@P1 == 1), !(y@P2 == 2))"},
		{"!(x@P1 == 1)", "!(x@P1 == 1)"},
		{"!!(x@P1 == 1)", "!(!(x@P1 == 1))"}, // stays local, so the class is preserved
		{"!true", "false"},
		{"conj(x@P1 == 1) && conj(y@P2 == 2)", "conj(x@P1 == 1, y@P2 == 2)"},
		{"x@P1 == 1 && y@P2 == 2", "conj(x@P1 == 1, y@P2 == 2)"},
		{"x@P1 == 1 || y@P2 == 2", "disj(x@P1 == 1, y@P2 == 2)"},
		{"channelsEmpty && x@P1 == 1", "and(channelsEmpty, conj(x@P1 == 1))"},
	}
	for _, c := range cases {
		p, err := pir.CompileSource(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got := p.P.String(); got != c.want {
			t.Errorf("compile(%s) = %q, want %q", c.src, got, c.want)
		}
		if p.Source == nil {
			t.Errorf("compile(%s): no source formula recorded", c.src)
		}
	}
	if _, err := pir.CompileSource("EF(x@P1 == 1)"); err == nil || !strings.Contains(err.Error(), "outside the paper's fragment") {
		t.Errorf("temporal subformula compiled, err = %v", err)
	}
	if _, err := pir.CompileSource("conj("); err == nil {
		t.Error("syntax error compiled")
	}
}

// TestExplainGolden pins the -explain rendering end to end, including the
// lowering line that appears once the predicate is bound to a
// computation.
func TestExplainGolden(t *testing.T) {
	comp := sim.Fig2()
	f := ctl.MustParse("EF(conj(x1@P1 >= 2, x2@P2 <= 1))")
	got, err := pir.Explain(comp, f)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"EF(conj(x1@P1 >= 2, x2@P2 <= 1))",
		"  class:      conjunctive, linear, post-linear",
		"  cell:       Table 1 [linear × EF]",
		"  algorithm:  EF linear: Chase–Garg advancement",
		"  complexity: O(n|E|) evaluations",
		"  because:    linear: satisfying cuts are meet-closed, so the advancement property finds the least one",
	}, "\n") + "\n"
	if !strings.HasPrefix(got, want) {
		t.Errorf("Explain = %q, want prefix %q", got, want)
	}
	if !strings.Contains(got, "lowering:   2 conjuncts over 2 processes") {
		t.Errorf("Explain missing lowering stats:\n%s", got)
	}

	// Boolean structure recurses, and without a computation there is no
	// lowering line.
	got, err = pir.Explain(nil, ctl.MustParse("EG(channelsEmpty) || AG(x1@P1 >= 0)"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"(…) || (…): boolean disjunction, short-circuiting",
		"EG linear: Algorithm A1",
		"AG linear: Algorithm A2 (meet-irreducibles)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Explain missing %q:\n%s", want, got)
		}
	}
}

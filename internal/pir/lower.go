package pir

import (
	"fmt"

	"repro/internal/computation"
	"repro/internal/predicate"
)

// lowering is the per-computation compiled evaluator attached by Bind.
type lowering struct {
	conj    *LoweredConj // conjunctive view, when lowerable
	negConj *LoweredConj // complement of the disjunctive view
	factor  *LoweredConj // regular slice factor of a mixed And / Not(And)
	stats   LowerStats
}

// LowerStats reports what Bind compiled, for -explain and the compile
// experiment.
type LowerStats struct {
	// Lowered is whether any bitset evaluator was built.
	Lowered bool
	// Conjuncts is how many local predicates were lowered (the complement
	// of a disjunctive view counts its disjuncts).
	Conjuncts int
	// Procs is the number of distinct processes the bitsets cover.
	Procs int
	// StateBits is the total number of local states materialized as bits.
	StateBits int
	// Words is the number of 64-bit words allocated.
	Words int
	// Interned is how many conjuncts reused a previously built bitset.
	Interned int
}

// Bind compiles the predicate's bitset evaluators for comp and returns
// the same Pred. Each local conjunct/disjunct is evaluated once per local
// state into a bitset (bit k = holds in state k), so subsequent cut
// evaluation is one word test per process instead of an AST walk per
// conjunct. Identical conjuncts (same process, same rendering, comparable
// type) share an interned bitset.
//
// The bitsets index local states of comp; they remain valid on prefixes
// of comp (which share its value columns) but must not be used on any
// other computation. Bind is idempotent and must be called before the
// Pred is shared across goroutines; the lowered evaluators themselves are
// read-only and safe for concurrent use.
func (pr *Pred) Bind(comp *computation.Computation) *Pred {
	if pr.low != nil {
		return pr
	}
	low := &lowering{}
	if c, ok := conjunctiveView(pr.P); ok && len(c.Locals) > 0 {
		low.conj = lowerConj(comp, c, &low.stats)
	}
	if d, ok := disjunctiveView(pr.P); ok && len(d.Locals) > 0 {
		low.negConj = lowerConj(comp, d.Negate(), &low.stats)
	}
	// Lower the regular slice factor of a mixed formula (conjunctive ∧
	// arbitrary, possibly under one Not) so the slice-first EF/AG dispatch
	// gets word-test evaluation for slice construction and restriction. A
	// predicate is at most one of {And, Not}, so one slot suffices; when
	// the whole predicate is conjunctive, low.conj already covers it.
	if low.conj == nil {
		inner := pr.P
		if n, ok := inner.(predicate.Not); ok {
			inner = n.P
		}
		if _, viewable := conjunctiveView(inner); !viewable {
			if factor, _, ok := sliceFactorOf(inner); ok && len(factor.Locals) > 0 {
				low.factor = lowerConj(comp, factor, &low.stats)
			}
		}
	}
	pr.low = low
	return pr
}

// Lowering reports the bitset-compilation stats (zero value before Bind).
func (pr *Pred) Lowering() LowerStats {
	if pr.low == nil {
		return LowerStats{}
	}
	return pr.low.stats
}

// LoweredConj is the bitset lowering of a conjunctive predicate: one
// bitset per conjunct over the local states of its process, plus one
// AND-combined bitset per distinct process for evaluation. Eval is a word
// test per process; Forbidden/Retreat scan the conjuncts in declaration
// order so the advancement algorithms make exactly the same process
// choices as the structural predicate.Conjunctive they replace.
type LoweredConj struct {
	src    predicate.Conjunctive
	locals []loweredLocal // in Locals order, for order-exact Forbidden/Retreat
	procs  []procWords    // distinct processes, first-appearance order
}

type loweredLocal struct {
	proc int
	bits []uint64
}

type procWords struct {
	proc int
	bits []uint64
}

var (
	_ predicate.Linear     = (*LoweredConj)(nil)
	_ predicate.PostLinear = (*LoweredConj)(nil)
)

// Eval implements Predicate with one word test per distinct process.
func (p *LoweredConj) Eval(c *computation.Computation, cut computation.Cut) bool {
	for i := range p.procs {
		k := cut[p.procs[i].proc]
		if p.procs[i].bits[k>>6]&(1<<(uint(k)&63)) == 0 {
			return false
		}
	}
	return true
}

// Forbidden implements Linear: the first failing conjunct in declaration
// order, matching predicate.Conjunctive.Forbidden bit for bit.
func (p *LoweredConj) Forbidden(c *computation.Computation, cut computation.Cut) (int, bool) {
	for i := range p.locals {
		k := cut[p.locals[i].proc]
		if p.locals[i].bits[k>>6]&(1<<(uint(k)&63)) == 0 {
			return p.locals[i].proc, true
		}
	}
	panic("pir: Forbidden called on satisfied conjunctive predicate")
}

// Retreat implements PostLinear with the same declaration-order scan.
func (p *LoweredConj) Retreat(c *computation.Computation, cut computation.Cut) (int, bool) {
	for i := range p.locals {
		k := cut[p.locals[i].proc]
		if p.locals[i].bits[k>>6]&(1<<(uint(k)&63)) == 0 {
			return p.locals[i].proc, true
		}
	}
	panic("pir: Retreat called on satisfied conjunctive predicate")
}

// String implements Predicate by rendering the source predicate, so
// algorithm output and diagnostics are unchanged by the lowering.
func (p *LoweredConj) String() string { return p.src.String() }

// internKey returns a stable identity for a local predicate when one
// exists. Only value types whose String fully determines their semantics
// are internable; LocalFn holds a closure (uncomparable, and its name
// need not identify the function), so it is always rebuilt.
func internKey(l predicate.LocalPredicate) (string, bool) {
	switch q := l.(type) {
	case predicate.VarCmp:
		return fmt.Sprintf("%d|%s", q.Process(), q.String()), true
	case predicate.NotLocal:
		if _, ok := q.P.(predicate.VarCmp); ok {
			return fmt.Sprintf("%d|%s", q.Process(), q.String()), true
		}
	}
	return "", false
}

// lowerConj materializes the bitsets for one conjunctive predicate.
func lowerConj(comp *computation.Computation, c predicate.Conjunctive, st *LowerStats) *LoweredConj {
	lc := &LoweredConj{src: c}
	intern := map[string][]uint64{}
	combined := map[int][]uint64{}
	merged := map[int]bool{} // proc's combined slice is a private copy
	var order []int
	for _, l := range c.Locals {
		proc := l.Process()
		n := comp.Len(proc) + 1 // local states 0..Len (state k = after k events)
		words := (n + 63) / 64
		var bits []uint64
		key, internable := internKey(l)
		if internable {
			if b, ok := intern[key]; ok {
				bits = b
				st.Interned++
			}
		}
		if bits == nil {
			bits = make([]uint64, words)
			for k := 0; k < n; k++ {
				if l.HoldsAt(comp, k) {
					bits[k>>6] |= 1 << (uint(k) & 63)
				}
			}
			if internable {
				intern[key] = bits
			}
			st.StateBits += n
			st.Words += words
		}
		lc.locals = append(lc.locals, loweredLocal{proc: proc, bits: bits})
		st.Conjuncts++
		prev, seen := combined[proc]
		switch {
		case !seen:
			combined[proc] = bits
			order = append(order, proc)
		case !merged[proc]:
			// Second conjunct on this process: AND into a private copy so
			// interned and per-local slices stay pristine.
			dst := make([]uint64, len(prev))
			for i := range prev {
				dst[i] = prev[i] & bits[i]
			}
			combined[proc] = dst
			merged[proc] = true
		default:
			for i := range prev {
				prev[i] &= bits[i]
			}
		}
	}
	for _, proc := range order {
		lc.procs = append(lc.procs, procWords{proc: proc, bits: combined[proc]})
	}
	st.Lowered = true
	if len(order) > st.Procs {
		st.Procs = len(order)
	}
	return lc
}

// Restrict returns a copy of the evaluator whose per-process bitsets are
// additionally ANDed with masks (masks[i] over local states of process i;
// nil = no restriction). This is the slice-restricted evaluation mode: the
// caller sets bit k of masks[i] exactly when local state k survives in the
// predicate's slice, so the restricted evaluator rejects any cut that
// strays outside the slice sublattice in one word test per process —
// without touching the slice's cut tables on the hot path. The conjunct
// list (and hence Forbidden/Retreat order) is unchanged; only Eval's
// combined per-process words narrow.
func (p *LoweredConj) Restrict(masks [][]uint64) *LoweredConj {
	out := &LoweredConj{src: p.src, locals: p.locals}
	out.procs = make([]procWords, len(p.procs))
	for i, pw := range p.procs {
		m := masks[pw.proc]
		if m == nil {
			out.procs[i] = pw
			continue
		}
		bits := make([]uint64, len(pw.bits))
		for w := range pw.bits {
			bits[w] = pw.bits[w]
			if w < len(m) {
				bits[w] &= m[w]
			}
		}
		out.procs[i] = procWords{proc: pw.proc, bits: bits}
	}
	return out
}

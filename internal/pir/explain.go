package pir

import (
	"fmt"
	"strings"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/predicate"
	"repro/internal/slice"
)

// Explain renders the IR's decisions for a formula: per temporal operator
// the inferred class of the operand, the Table 1 cell and algorithm
// chosen, the justification, and — when comp is non-nil — the bitset
// lowering stats. Boolean structure is walked recursively; atoms report
// their class and the initial-cut evaluation. This is the -explain output
// of hbdetect.
func Explain(comp *computation.Computation, f ctl.Formula) (string, error) {
	var b strings.Builder
	if err := explain(&b, comp, f, ""); err != nil {
		return "", err
	}
	return b.String(), nil
}

func explain(b *strings.Builder, comp *computation.Computation, f ctl.Formula, indent string) error {
	unary := func(op Op, sub ctl.Formula) error {
		p, err := Compile(sub)
		if err != nil {
			return err
		}
		if comp != nil {
			p.Bind(comp)
		}
		writeChoice(b, indent, comp, f, Choose(op, p), p)
		return nil
	}
	binary := func(op Op, subP, subQ ctl.Formula) error {
		p, err := Compile(subP)
		if err != nil {
			return err
		}
		q, err := Compile(subQ)
		if err != nil {
			return err
		}
		if comp != nil {
			p.Bind(comp)
			q.Bind(comp)
		}
		c := ChooseUntil(op, p, q)
		writeChoice(b, indent, comp, f, c, p)
		fmt.Fprintf(b, "%s  target:     %s — class: %s\n", indent, q.P, q.Class)
		return nil
	}
	switch g := f.(type) {
	case ctl.Not:
		fmt.Fprintf(b, "%s¬(…): negation, verdict and evidence dualize\n", indent)
		return explain(b, comp, g.F, indent+"  ")
	case ctl.And:
		fmt.Fprintf(b, "%s(…) && (…): boolean conjunction, short-circuiting\n", indent)
		if err := explain(b, comp, g.L, indent+"  "); err != nil {
			return err
		}
		return explain(b, comp, g.R, indent+"  ")
	case ctl.Or:
		fmt.Fprintf(b, "%s(…) || (…): boolean disjunction, short-circuiting\n", indent)
		if err := explain(b, comp, g.L, indent+"  "); err != nil {
			return err
		}
		return explain(b, comp, g.R, indent+"  ")
	case ctl.Atom:
		p := FromPredicate(g.P)
		fmt.Fprintf(b, "%s%s\n", indent, f)
		fmt.Fprintf(b, "%s  class:      %s\n", indent, p.Class)
		fmt.Fprintf(b, "%s  algorithm:  evaluation at the initial cut\n", indent)
		return nil
	case ctl.EF:
		return unary(OpEF, g.F)
	case ctl.AF:
		return unary(OpAF, g.F)
	case ctl.EG:
		return unary(OpEG, g.F)
	case ctl.AG:
		return unary(OpAG, g.F)
	case ctl.EU:
		return binary(OpEU, g.P, g.Q)
	case ctl.AU:
		return binary(OpAU, g.P, g.Q)
	default:
		return fmt.Errorf("pir: unsupported formula %T", f)
	}
}

func writeChoice(b *strings.Builder, indent string, comp *computation.Computation, f ctl.Formula, c Choice, p *Pred) {
	fmt.Fprintf(b, "%s%s\n", indent, f)
	fmt.Fprintf(b, "%s  class:      %s\n", indent, p.Class)
	fmt.Fprintf(b, "%s  cell:       Table 1 [%s]\n", indent, c.Cell)
	fmt.Fprintf(b, "%s  algorithm:  %s\n", indent, c.Algorithm)
	fmt.Fprintf(b, "%s  complexity: %s\n", indent, c.Complexity)
	fmt.Fprintf(b, "%s  because:    %s\n", indent, c.Reason)
	fmt.Fprintf(b, "%s  slicing:    %s\n", indent, c.Slice)
	if comp != nil && c.Kind == KindSliceFactor {
		writeSliceCounts(b, indent, comp, c, p)
	}
	if ls := p.Lowering(); ls.Lowered {
		fmt.Fprintf(b, "%s  lowering:   %d conjuncts over %d processes → %d words / %d state bits (%d interned)\n",
			indent, ls.Conjuncts, ls.Procs, ls.Words, ls.StateBits, ls.Interned)
	}
}

// writeSliceCounts builds the factor's slice on the bound computation and
// reports how many events it keeps versus eliminates — the concrete payoff
// of the slicing decision for this trace.
func writeSliceCounts(b *strings.Builder, indent string, comp *computation.Computation, c Choice, p *Pred) {
	var factor predicate.Linear
	var ok bool
	if c.Op == OpAG {
		factor, _, ok = p.NegatedSliceFactor()
	} else {
		factor, _, ok = p.SliceFactor()
	}
	if !ok {
		return
	}
	sl := slice.NewIncremental(comp, factor)
	if !sl.Satisfiable() {
		fmt.Fprintf(b, "%s  slice:      factor unsatisfiable — every event eliminated (%d of %d)\n",
			indent, comp.TotalEvents(), comp.TotalEvents())
		return
	}
	kept, eliminated := sl.Counts()
	fmt.Fprintf(b, "%s  slice:      %d of %d events eliminated (%d kept in the sublattice)\n",
		indent, eliminated, kept+eliminated, kept)
}

package pir

import (
	"encoding/json"
	"reflect"
	"testing"
)

func sampleBatch() *Batch {
	b := &Batch{}
	b.AddInit(1, "x", 3)
	b.AddEvent(1, EvSend, 7, map[string]int{"x": -2, "longer_name": 1 << 30})
	b.AddEvent(2, EvReceive, 7, nil)
	b.AddEvent(3, EvInternal, 0, map[string]int{"x": 0})
	return b
}

// TestBatchRoundTrip: encode → BatchSeq → DecodeBody must reproduce
// the batch exactly, with encoder and decoder tables built
// independently.
func TestBatchRoundTrip(t *testing.T) {
	b := sampleBatch()
	if err := b.Validate(); err != nil {
		t.Fatalf("sample batch invalid: %v", err)
	}
	var enc VarTable
	payload := AppendBatch(nil, 42, b, &enc)

	seq, body, err := BatchSeq(payload)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("seq = %d, want 42", seq)
	}
	var dec VarTable
	got := &Batch{}
	if err := got.DecodeBody(body, &dec); err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("decoded batch invalid: %v", err)
	}
	if !reflect.DeepEqual(got.Procs, b.Procs) || !reflect.DeepEqual(got.Kinds, b.Kinds) ||
		!reflect.DeepEqual(got.SetOff, b.SetOff) || !reflect.DeepEqual(got.Sets, b.Sets) {
		t.Fatalf("decoded batch differs:\n got %+v\nwant %+v", got, b)
	}
	for i := 0; i < b.Len(); i++ {
		if got.Msg(i) != b.Msg(i) {
			t.Fatalf("event %d msg = %d, want %d", i, got.Msg(i), b.Msg(i))
		}
	}
}

// TestBatchInterningAcrossBatches: the second batch on a connection
// references interned names instead of re-declaring them, and still
// decodes — steady-state events carry no strings.
func TestBatchInterningAcrossBatches(t *testing.T) {
	var enc, dec VarTable
	first := &Batch{}
	first.AddEvent(1, EvInternal, 0, map[string]int{"x": 1})
	p1 := AppendBatch(nil, 1, first, &enc)

	second := &Batch{}
	second.AddEvent(2, EvInternal, 0, map[string]int{"x": 2})
	p2 := AppendBatch(nil, 2, second, &enc)
	if len(p2) >= len(p1) {
		t.Fatalf("reference encoding (%dB) not smaller than declaration (%dB)", len(p2), len(p1))
	}

	for _, p := range [][]byte{p1, p2} {
		_, body, err := BatchSeq(p)
		if err != nil {
			t.Fatal(err)
		}
		got := &Batch{}
		if err := got.DecodeBody(body, &dec); err != nil {
			t.Fatal(err)
		}
		if got.Sets[0].Name != "x" {
			t.Fatalf("decoded name %q, want x", got.Sets[0].Name)
		}
	}

	// A reference without the declaration (fresh decoder table, as after
	// a silently dropped first batch) must fail, not mis-resolve.
	var fresh VarTable
	_, body, _ := BatchSeq(p2)
	if err := (&Batch{}).DecodeBody(body, &fresh); err == nil {
		t.Fatal("dangling var reference decoded successfully")
	}
}

// TestBatchDecodeIdempotentOnRedelivery: decoding the same payload
// twice against one table (a duplicated frame on a flaky link) leaves
// the table consistent and yields the same batch.
func TestBatchDecodeIdempotentOnRedelivery(t *testing.T) {
	b := sampleBatch()
	var enc, dec VarTable
	payload := AppendBatch(nil, 1, b, &enc)
	_, body, err := BatchSeq(payload)
	if err != nil {
		t.Fatal(err)
	}
	first, second := &Batch{}, &Batch{}
	if err := first.DecodeBody(body, &dec); err != nil {
		t.Fatal(err)
	}
	if err := second.DecodeBody(body, &dec); err != nil {
		t.Fatalf("redelivered payload failed decode: %v", err)
	}
	if !reflect.DeepEqual(first.Sets, second.Sets) {
		t.Fatalf("redelivery decoded differently: %+v vs %+v", first.Sets, second.Sets)
	}

	// A conflicting redeclaration of an occupied slot must be rejected —
	// that is table desynchronization, not redelivery.
	var enc2 VarTable
	conflict := &Batch{}
	conflict.AddEvent(1, EvInternal, 0, map[string]int{"y": 1})
	p2 := AppendBatch(nil, 2, conflict, &enc2) // fresh table: "y" declared at index 0
	_, body2, _ := BatchSeq(p2)
	if err := (&Batch{}).DecodeBody(body2, &dec); err == nil {
		t.Fatal("conflicting declaration for an occupied index decoded successfully")
	}
}

// TestBatchRecycleAndClone: Recycle is a no-op on unpooled batches
// (JSON-decoded, cloned, zero-value), and a Clone survives its
// original's recycling.
func TestBatchRecycleAndClone(t *testing.T) {
	b := GetBatch()
	b.AddEvent(1, EvSend, 9, map[string]int{"x": 5})
	c := b.Clone()
	b.Recycle()
	if c.Len() != 1 || c.Sets[0] != (VarSet{Name: "x", Val: 5}) || c.Msg(0) != 9 {
		t.Fatalf("clone damaged by recycle: %+v", c)
	}
	c.Recycle() // must not enter the pool
	if c.Len() != 1 {
		t.Fatal("Recycle reset an unpooled batch")
	}
	var nilBatch *Batch
	nilBatch.Recycle() // nil-safe
}

// TestBatchJSONRoundTrip: the NDJSON column encoding (cluster
// replication, recovery replay) survives a JSON round trip and
// validates.
func TestBatchJSONRoundTrip(t *testing.T) {
	b := sampleBatch()
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	got := &Batch{}
	if err := json.Unmarshal(raw, got); err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("JSON round trip invalid: %v", err)
	}
	if !reflect.DeepEqual(got.Sets, b.Sets) {
		t.Fatalf("JSON round trip differs: %+v vs %+v", got.Sets, b.Sets)
	}
}

// TestBatchSeqBounds: hostile sequence headers are rejected before any
// body bytes are touched.
func TestBatchSeqBounds(t *testing.T) {
	if _, _, err := BatchSeq(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	// 2^63 overflows the int64 seq.
	huge := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	if _, _, err := BatchSeq(huge); err == nil {
		t.Fatal("overflowing seq accepted")
	}
}

// TestVarTableReset: a reset table re-declares from scratch, matching
// the per-connection lifecycle both endpoints follow.
func TestVarTableReset(t *testing.T) {
	var enc VarTable
	b := &Batch{}
	b.AddEvent(1, EvInternal, 0, map[string]int{"x": 1})
	p1 := AppendBatch(nil, 1, b, &enc)
	enc.Reset()
	p2 := AppendBatch(nil, 1, b, &enc)
	if string(p1) != string(p2) {
		t.Fatal("reset table did not re-declare names")
	}
}

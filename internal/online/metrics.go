package online

import (
	"repro/internal/obs"
)

// monMetrics holds the metric handles of an instrumented monitor. A nil
// *monMetrics (the default) costs the hot path exactly one pointer
// comparison per event; instrumentation is strictly opt-in so benchmark and
// library users pay nothing.
type monMetrics struct {
	events     *obs.Counter   // events ingested
	ingestDur  *obs.Histogram // per-event ingest latency, seconds
	inFlight   *obs.Gauge     // messages sent but not yet received
	queueDepth *obs.Gauge     // candidate states queued across EF watches
	watches    *obs.Gauge     // registered watches still awaiting a verdict
	efFired    *obs.Counter   // EF watches that latched a satisfying cut
	agViolated *obs.Counter   // AG watches that latched a violation
	stable     *obs.Counter   // stable watches that latched detection
}

// Instrument attaches the monitor to a metrics registry (obs.Default() when
// reg is nil). After the call every ingested event records its latency and
// updates the queue-depth and in-flight gauges, and every verdict latch
// increments its counter. Must be called before events are observed;
// uninstrumented monitors pay only a nil check per event.
func (m *Monitor) Instrument(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default()
	}
	m.met = &monMetrics{
		events: reg.Counter("hb_monitor_events_total",
			"Events ingested by online monitors."),
		ingestDur: reg.Histogram("hb_monitor_ingest_seconds",
			"Per-event ingest latency (step plus watch notification).", nil),
		inFlight: reg.Gauge("hb_monitor_messages_in_flight",
			"Messages sent but not yet received."),
		queueDepth: reg.Gauge("hb_monitor_watch_queue_depth",
			"Candidate local states queued across EF watches."),
		watches: reg.Gauge("hb_monitor_watches_pending",
			"Registered watches still awaiting a verdict."),
		efFired: reg.Counter(`hb_monitor_verdicts_total{kind="ef_fired"}`,
			"Online verdict latches by kind."),
		agViolated: reg.Counter(`hb_monitor_verdicts_total{kind="ag_violated"}`,
			"Online verdict latches by kind."),
		stable: reg.Counter(`hb_monitor_verdicts_total{kind="stable_fired"}`,
			"Online verdict latches by kind."),
	}
	m.refreshGauges()
}

// refreshGauges recomputes the derived gauges. Called once per ingested
// event when instrumented; cost is linear in the number of watches.
func (m *Monitor) refreshGauges() {
	if m.met == nil {
		return
	}
	depth, pending := 0, 0
	for _, w := range m.efWatches {
		if !w.cur.Fired() {
			pending++
		}
		depth += w.cur.Retained()
	}
	for _, w := range m.agWatches {
		if !w.violated {
			pending++
		}
	}
	for _, w := range m.stableWatches {
		if !w.fired {
			pending++
		}
	}
	m.met.inFlight.Set(int64(m.inFlight))
	m.met.queueDepth.Set(int64(depth))
	m.met.watches.Set(int64(pending))
}

package online

import (
	"fmt"
	"testing"

	"repro/internal/computation"
	"repro/internal/sim"
)

// BenchmarkMonitorThroughput measures event-ingestion cost with an active
// EF watch — the online algorithm's per-event overhead.
func BenchmarkMonitorThroughput(b *testing.B) {
	for _, events := range []int{500, 2000} {
		comp := sim.Random(sim.DefaultRandomConfig(4, events), 3)
		b.Run(fmt.Sprintf("E%d", events), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := NewMonitor(comp.N())
				m.WatchEF(
					Cmp(0, "x0", ">=", 3), // never fires: values stay < 3... may fire; cost is what matters
					Cmp(1, "x0", ">=", 3),
				)
				feed(b, comp, m)
			}
		})
	}
}

// BenchmarkEFWatchWide measures head-elimination cost on the wide
// ping-pong computation (many bystander heads, two churning processes) —
// the scenario where a full pairwise rescan per pop is quadratic in the
// process count while the in-place worklist stays linear.
func BenchmarkEFWatchWide(b *testing.B) {
	for _, procs := range []int{8, 40} {
		b.Run(fmt.Sprintf("P%d", procs), func(b *testing.B) {
			const rounds = 200
			for i := 0; i < b.N; i++ {
				m := NewMonitor(procs)
				w := wideWatch(m, procs)
				wideEliminationRounds(m, rounds)
				if w.Fired() {
					b.Fatal("watch fired mid-churn")
				}
			}
			b.ReportMetric(float64(6*rounds), "events/op")
		})
	}
}

// BenchmarkSnapshot measures the cost of the offline bridge.
func BenchmarkSnapshot(b *testing.B) {
	comp := sim.Random(sim.DefaultRandomConfig(4, 2000), 3)
	m := NewMonitor(comp.N())
	feed(b, comp, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Snapshot()
	}
}

func feed(tb testing.TB, comp *computation.Computation, m *Monitor) {
	tb.Helper()
	ids := make(map[int]int)
	seq := comp.SomeLinearization()
	for s := 1; s < len(seq); s++ {
		prev, cur := seq[s-1], seq[s]
		for p := range cur {
			if cur[p] <= prev[p] {
				continue
			}
			e := comp.Event(p, cur[p])
			switch e.Kind {
			case computation.Internal:
				m.Internal(p, e.Sets)
			case computation.Send:
				ids[e.Msg] = m.Send(p, e.Sets)
			case computation.Receive:
				if err := m.Receive(p, ids[e.Msg], e.Sets); err != nil {
					tb.Fatal(err)
				}
			}
			break
		}
	}
}

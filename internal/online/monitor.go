// Package online implements on-line (incremental) predicate detection —
// the paper's stated future work ("another area of future work will be to
// develop efficient on-line versions of our algorithms").
//
// A Monitor consumes the events of an unfolding computation as they are
// observed (in a causally consistent order: receives after their sends)
// and drives incremental detectors:
//
//   - EFConjunctive — the queue-based weak conjunctive predicate detection
//     of Garg and Waldecker: one queue of candidate local states per
//     constrained process, pairwise head elimination by vector clock,
//     verdict the moment a satisfying consistent cut exists. O(n²m) total
//     work for m events, no recomputation per event.
//   - AGConjunctive — invariant violation detection for conjunctive
//     predicates: a violation exists as soon as some conjunct is false in
//     some local state, because every local state is exposed by a
//     consistent cut.
//   - Stable — evaluates a frontier predicate after every event; for
//     stable predicates the frontier observation is equivalent to global
//     detection (Chandy–Lamport).
//
// Verdicts latch: once fired they remain fired in every extension of the
// observed prefix (EF and violation verdicts are monotone under prefix
// extension). For the non-monotone operators (EG, AG as a final verdict,
// until), Snapshot materializes the current prefix as a Computation for
// the offline algorithms in package core.
package online

import (
	"fmt"
	"time"

	"repro/internal/computation"
	"repro/internal/vclock"
)

// Monitor ingests events of an unfolding computation.
type Monitor struct {
	n        int
	clocks   []vclock.VC // running clock per process
	lens     []int       // events observed per process
	vals     []map[string]int
	initVals []map[string]int
	// stateClocks[i][k] is the clock of the event that started local
	// state k of process i (nil for k = 0: started at -∞).
	stateClocks [][]vclock.VC

	nextMsg  int
	sends    map[int]sendInfo
	received map[int]bool
	inFlight int

	// Trace replay for Snapshot. Never populated in bounded mode.
	rec []recEvent

	// bounded, when set, drops the per-event history (rec and the
	// stateClocks columns): the monitor keeps only the frontier (current
	// clocks, valuations, in-flight sends) plus each watch's slice cursor,
	// so a long-lived session holds O(n + slice) state instead of O(|E|).
	// Snapshot — and with it Detect — is unavailable.
	bounded bool

	efWatches     []*EFWatch
	agWatches     []*AGWatch
	stableWatches []*StableWatch

	met *monMetrics // nil unless Instrument was called
}

type sendInfo struct {
	proc  int
	clock vclock.VC
}

type recEvent struct {
	proc int
	kind computation.Kind
	msg  int
	sets map[string]int
}

// NewMonitor returns a monitor for n processes.
func NewMonitor(n int) *Monitor {
	if n <= 0 {
		panic("online: need at least one process")
	}
	m := &Monitor{
		n:           n,
		clocks:      make([]vclock.VC, n),
		lens:        make([]int, n),
		vals:        make([]map[string]int, n),
		initVals:    make([]map[string]int, n),
		stateClocks: make([][]vclock.VC, n),
		sends:       make(map[int]sendInfo),
		received:    make(map[int]bool),
	}
	for i := 0; i < n; i++ {
		m.clocks[i] = vclock.New(n)
		m.vals[i] = make(map[string]int)
		m.initVals[i] = make(map[string]int)
		m.stateClocks[i] = []vclock.VC{nil}
	}
	return m
}

// NewBoundedMonitor returns a monitor that retains bounded state: the
// frontier plus the watches' slice cursors, never the observed prefix.
// Watch verdicts (and their cuts) are bit-identical to an unbounded
// monitor fed the same stream — the incremental detectors only ever read
// the current state's clock, which the frontier provides — but Snapshot
// and Detect panic, since the prefix they would materialize is gone.
func NewBoundedMonitor(n int) *Monitor {
	m := NewMonitor(n)
	m.bounded = true
	return m
}

// N returns the number of processes.
func (m *Monitor) N() int { return m.n }

// Bounded reports whether the monitor runs in bounded-state mode.
func (m *Monitor) Bounded() bool { return m.bounded }

// Retained returns the events' worth of state the monitor currently
// holds: the recorded prefix when unbounded, or the candidates queued in
// the watches' slice cursors when bounded — the measured per-session
// retained-state bound.
func (m *Monitor) Retained() int {
	if !m.bounded {
		return m.Events()
	}
	total := 0
	for _, w := range m.efWatches {
		total += w.cur.Retained()
	}
	return total
}

// startClock returns the vector clock of the event that began proc's
// current local state (nil for state 0, which began at -∞). Unbounded
// monitors read it from the stateClocks history; bounded monitors return
// a copy of the running clock, which is identical because the watches
// only ever ask about the state the event just appended.
func (m *Monitor) startClock(proc int) vclock.VC {
	k := m.lens[proc]
	if k == 0 {
		return nil
	}
	if m.bounded {
		return m.clocks[proc].Copy()
	}
	return m.stateClocks[proc][k]
}

// checkProc panics when proc is not a valid process index. Passing an
// out-of-range process to any observation method is a programming error
// (callers ingesting untrusted input, like hbserver, validate first);
// observation-order violations, which depend on the remote peer, are
// returned as errors by Receive instead.
func (m *Monitor) checkProc(proc int) {
	if proc < 0 || proc >= m.n {
		panic(fmt.Sprintf("online: process %d out of range [0,%d)", proc, m.n))
	}
}

// Events returns the number of events observed so far.
func (m *Monitor) Events() int {
	total := 0
	for _, l := range m.lens {
		total += l
	}
	return total
}

// EventsOn returns the number of events observed on one process. It
// panics when proc is out of range.
func (m *Monitor) EventsOn(proc int) int {
	m.checkProc(proc)
	return m.lens[proc]
}

// Value returns the current value of a variable on a process. It panics
// when proc is out of range.
func (m *Monitor) Value(proc int, name string) int {
	m.checkProc(proc)
	return m.vals[proc][name]
}

// InFlight returns the number of messages currently in flight.
func (m *Monitor) InFlight() int { return m.inFlight }

// SetInitial sets an initial variable value. It panics when proc is out
// of range or after the first event of the process has been observed.
func (m *Monitor) SetInitial(proc int, name string, value int) {
	m.checkProc(proc)
	if m.lens[proc] > 0 {
		panic("online: SetInitial after events were observed")
	}
	m.vals[proc][name] = value
	m.initVals[proc][name] = value
}

// Internal observes an internal event on proc with the given variable
// assignments (may be nil). It panics when proc is out of range.
func (m *Monitor) Internal(proc int, sets map[string]int) {
	m.checkProc(proc)
	m.step(proc, computation.Internal, 0, sets)
}

// Send observes a send event and returns the message id to pass to the
// matching Receive. It panics when proc is out of range.
func (m *Monitor) Send(proc int, sets map[string]int) int {
	m.checkProc(proc)
	m.nextMsg++
	id := m.nextMsg
	m.step(proc, computation.Send, id, sets)
	m.sends[id] = sendInfo{proc: proc, clock: m.clocks[proc].Copy()}
	m.inFlight++
	return id
}

// Receive observes the receipt of message id on proc. It returns an error
// if the message is unknown, already received, or a self-receive —
// observation-order violations, which leave the monitor state untouched
// so ingest can report the bad frame and continue. It panics when proc is
// out of range.
func (m *Monitor) Receive(proc int, id int, sets map[string]int) error {
	m.checkProc(proc)
	s, ok := m.sends[id]
	if !ok {
		return fmt.Errorf("online: receive of unknown message %d", id)
	}
	if m.received[id] {
		return fmt.Errorf("online: message %d received twice", id)
	}
	if s.proc == proc {
		return fmt.Errorf("online: message %d received by its sender", id)
	}
	m.clocks[proc].MergeInto(s.clock)
	m.received[id] = true
	m.inFlight--
	m.step(proc, computation.Receive, id, sets)
	return nil
}

func (m *Monitor) step(proc int, kind computation.Kind, msg int, sets map[string]int) {
	var start time.Time
	if m.met != nil {
		start = time.Now()
	}
	m.clocks[proc].Tick(proc)
	m.lens[proc]++
	for name, v := range sets {
		m.vals[proc][name] = v
	}
	if !m.bounded {
		m.stateClocks[proc] = append(m.stateClocks[proc], m.clocks[proc].Copy())
		copied := make(map[string]int, len(sets))
		for k, v := range sets {
			copied[k] = v
		}
		m.rec = append(m.rec, recEvent{proc: proc, kind: kind, msg: msg, sets: copied})
	}

	// Notify watches of the new local state.
	for _, w := range m.efWatches {
		w.observe(m, proc)
	}
	for _, w := range m.agWatches {
		w.observe(m, proc)
	}
	for _, w := range m.stableWatches {
		w.observe(m)
	}

	if m.met != nil {
		m.met.events.Inc()
		m.refreshGauges()
		m.met.ingestDur.Observe(time.Since(start).Seconds())
	}
}

// Snapshot materializes the observed prefix as an immutable Computation
// for the offline algorithms. Cost is proportional to the prefix length.
// It panics on a bounded monitor, whose whole point is not retaining that
// prefix; callers offering snapshots (hbserver) must reject the request
// instead.
func (m *Monitor) Snapshot() *computation.Computation {
	if m.bounded {
		panic("online: Snapshot unavailable on a bounded monitor (prefix not retained)")
	}
	b := computation.NewBuilder(m.n)
	for i := 0; i < m.n; i++ {
		for name, v := range m.initVals[i] {
			b.SetInitial(i, name, v)
		}
	}
	handles := make(map[int]computation.Msg)
	for _, r := range m.rec {
		var e *computation.Event
		switch r.kind {
		case computation.Internal:
			e = b.Internal(r.proc)
		case computation.Send:
			var h computation.Msg
			e, h = b.Send(r.proc)
			handles[r.msg] = h
		case computation.Receive:
			e = b.Receive(r.proc, handles[r.msg])
		}
		for name, v := range r.sets {
			computation.Set(e, name, v)
		}
	}
	return b.MustBuild()
}

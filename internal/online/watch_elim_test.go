package online

import "testing"

// wideEliminationRounds drives the EFWatch head-elimination worst case: a
// wide computation (procs many bystander processes with permanently-alive
// initial-state heads) where processes 0 and 1 ping-pong so that every
// round kills one head on each of them.
//
// Round r (events in observation order):
//
//	p0 internal flag=1   → candidate A_r   (kills C_{r-1} from round r-1)
//	p0 send     flag=0
//	p1 receive
//	p1 internal flag=1   → candidate C_r   (kills A_r: its start clock has
//	                        seen p0's send, the event ending state A_r)
//	p1 send     flag=0
//	p0 receive
//
// At every fixed point either queue 0 or queue 1 is empty, so the watch
// never fires during the rounds. A full pairwise rescan per pop pays
// Θ(procs²) comparisons to re-verify the bystander heads on every one of
// the ~2·rounds pops; in-place elimination re-compares only the changed
// heads, Θ(procs) per pop.
func wideEliminationRounds(m *Monitor, rounds int) {
	for r := 0; r < rounds; r++ {
		m.Internal(0, map[string]int{"flag": 1})
		id := m.Send(0, map[string]int{"flag": 0})
		if err := m.Receive(1, id, nil); err != nil {
			panic(err)
		}
		m.Internal(1, map[string]int{"flag": 1})
		id = m.Send(1, map[string]int{"flag": 0})
		if err := m.Receive(0, id, nil); err != nil {
			panic(err)
		}
	}
}

func wideWatch(m *Monitor, procs int) *EFWatch {
	// Bystanders registered FIRST: their permanently-alive heads sit at the
	// front of the scan order, which is exactly what made the full-rescan
	// algorithm quadratic per pop.
	locals := make([]LocalSpec, 0, procs)
	for p := 2; p < procs; p++ {
		locals = append(locals, Cmp(p, "zero", "==", 0))
	}
	locals = append(locals, Cmp(0, "flag", "==", 1), Cmp(1, "flag", "==", 1))
	return m.WatchEF(locals...)
}

func TestEFWatchWideEliminationCost(t *testing.T) {
	const procs, rounds = 40, 200
	m := NewMonitor(procs)
	w := wideWatch(m, procs)
	wideEliminationRounds(m, rounds)
	if w.Fired() {
		t.Fatalf("watch fired during elimination rounds; queues 0/1 should alternate empty")
	}
	// Per-event cost bound: seeding verifies the procs-2 bystander heads
	// pairwise once (≈ procs² comparisons), then each round's two
	// head-creating events re-compare only the new head, ≈ procs
	// comparisons each. A rescan-per-pop implementation pays
	// ≈ 2·rounds·procs² ≈ 640000 comparisons on this scenario.
	limit := procs*procs + 4*rounds*procs // 33600, ~19× below the rescan cost
	if w.cur.Comparisons() > limit {
		t.Fatalf("head elimination performed %d comparisons, want <= %d (per-pop cost must stay O(procs))", w.cur.Comparisons(), limit)
	}
	t.Logf("elimination comparisons: %d (limit %d)", w.cur.Comparisons(), limit)

	// Correctness at the end of the churn: let both ping-pong processes
	// hold concurrently and the watch must still fire with the least cut.
	m.Internal(0, map[string]int{"flag": 1}) // A_final kills C_{rounds-1}
	if w.Fired() {
		t.Fatalf("watch fired before process 1 satisfied its conjunct")
	}
	m.Internal(1, map[string]int{"flag": 1})
	if !w.Fired() {
		t.Fatalf("watch did not fire once all conjuncts held compatibly")
	}
	cut := w.Cut()
	want := 3*rounds + 1 // 3 events per round plus the final internal
	if cut[0] != want || cut[1] != want {
		t.Fatalf("fired cut = %v, want %d events on processes 0 and 1", cut, want)
	}
	for p := 2; p < procs; p++ {
		if cut[p] != 0 {
			t.Fatalf("fired cut = %v, want 0 events on bystander %d", cut, p)
		}
	}
}

// TestEFWatchEliminationOrderInsensitive re-runs the ping-pong with the
// constrained processes registered before the bystanders — the worklist
// must reach the same verdict and cut regardless of scan order.
func TestEFWatchEliminationOrderInsensitive(t *testing.T) {
	const procs, rounds = 8, 25
	m := NewMonitor(procs)
	locals := []LocalSpec{Cmp(0, "flag", "==", 1), Cmp(1, "flag", "==", 1)}
	for p := 2; p < procs; p++ {
		locals = append(locals, Cmp(p, "zero", "==", 0))
	}
	w := m.WatchEF(locals...)
	wideEliminationRounds(m, rounds)
	if w.Fired() {
		t.Fatalf("watch fired during elimination rounds")
	}
	m.Internal(0, map[string]int{"flag": 1})
	m.Internal(1, map[string]int{"flag": 1})
	if !w.Fired() {
		t.Fatalf("watch did not fire")
	}
	want := 3*rounds + 1
	if cut := w.Cut(); cut[0] != want || cut[1] != want {
		t.Fatalf("fired cut = %v, want %d on processes 0 and 1", cut, want)
	}
}

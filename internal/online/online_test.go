package online

import (
	"fmt"
	"testing"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// replay feeds a computation into a monitor event by event along one
// linearization, calling step after every event.
func replay(t *testing.T, comp *computation.Computation, m *Monitor, step func(eventsSeen int)) {
	t.Helper()
	for i := 0; i < comp.N(); i++ {
		for _, name := range comp.Vars(i) {
			if v, _ := comp.Value(i, 0, name); v != 0 {
				m.SetInitial(i, name, v)
			}
		}
	}
	msgIDs := make(map[int]int) // computation msg id → monitor msg id
	seq := comp.SomeLinearization()
	seen := 0
	for s := 1; s < len(seq); s++ {
		prev, cur := seq[s-1], seq[s]
		for p := range cur {
			if cur[p] <= prev[p] {
				continue
			}
			e := comp.Event(p, cur[p])
			switch e.Kind {
			case computation.Internal:
				m.Internal(p, e.Sets)
			case computation.Send:
				// Monitor assigns its own ids in send order; since we
				// replay in a single linearization, ids match arrival
				// order, which the test tracks via a map.
				id := m.Send(p, e.Sets)
				msgIDs[e.Msg] = id
			case computation.Receive:
				if err := m.Receive(p, msgIDs[e.Msg], e.Sets); err != nil {
					t.Fatalf("receive: %v", err)
				}
			}
			seen++
			if step != nil {
				step(seen)
			}
			break
		}
	}
}

func TestEFWatchMatchesOfflinePrefixes(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		comp := sim.Random(sim.DefaultRandomConfig(3, 15), seed)
		p := predicate.Conj(
			predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.GE, K: 2},
			predicate.VarCmp{Proc: 1, Var: "x0", Op: predicate.GE, K: 2},
			predicate.VarCmp{Proc: 2, Var: "x0", Op: predicate.GE, K: 1},
		)
		m := NewMonitor(comp.N())
		w := m.WatchEF(
			Cmp(0, "x0", ">=", 2),
			Cmp(1, "x0", ">=", 2),
			Cmp(2, "x0", ">=", 1),
		)
		fireCount := -1
		replay(t, comp, m, func(seen int) {
			if w.Fired() && fireCount < 0 {
				fireCount = seen
				// The produced cut must satisfy p on the snapshot.
				snap := m.Snapshot()
				if !snap.Consistent(w.Cut()) {
					t.Fatalf("seed %d: fired cut %v inconsistent", seed, w.Cut())
				}
				if !p.Eval(snap, w.Cut()) {
					t.Fatalf("seed %d: fired cut %v does not satisfy p", seed, w.Cut())
				}
			}
			// Online verdict must match offline EF on the prefix.
			want := core.EFLinear(m.Snapshot(), p)
			if w.Fired() != want {
				t.Fatalf("seed %d after %d events: online EF = %v, offline = %v",
					seed, seen, w.Fired(), want)
			}
		})
	}
}

func TestEFWatchFiresAtEarliestPrefix(t *testing.T) {
	// A deterministic scenario: the watch must fire exactly when the
	// second conjunct becomes true.
	m := NewMonitor(2)
	w := m.WatchEF(Cmp(0, "a", "==", 1), Cmp(1, "b", "==", 1))
	if w.Fired() {
		t.Fatal("fired before any conjunct holds")
	}
	m.Internal(0, map[string]int{"a": 1})
	if w.Fired() {
		t.Fatal("fired with only one conjunct true")
	}
	m.Internal(1, map[string]int{"b": 1})
	if !w.Fired() {
		t.Fatal("did not fire when both conjuncts hold")
	}
	if !w.Cut().Equal(computation.Cut{1, 1}) {
		t.Errorf("cut = %v, want <1 1>", w.Cut())
	}
}

func TestEFWatchRespectsCausality(t *testing.T) {
	// a=1 only while the message is unsent; b=1 only after receipt: the
	// two states can never coexist, so the watch must never fire.
	m := NewMonitor(2)
	w := m.WatchEF(Cmp(0, "a", "==", 1), Cmp(1, "b", "==", 1))
	m.Internal(0, map[string]int{"a": 1})
	id := m.Send(0, map[string]int{"a": 0})
	if err := m.Receive(1, id, map[string]int{"b": 1}); err != nil {
		t.Fatal(err)
	}
	if w.Fired() {
		t.Fatalf("fired at %v although the states are causally ordered", w.Cut())
	}
	// Offline agrees.
	p := predicate.Conj(
		predicate.VarCmp{Proc: 0, Var: "a", Op: predicate.EQ, K: 1},
		predicate.VarCmp{Proc: 1, Var: "b", Op: predicate.EQ, K: 1},
	)
	if core.EFLinear(m.Snapshot(), p) {
		t.Fatal("offline disagrees: EF should be false")
	}
}

func TestEFWatchInitialStates(t *testing.T) {
	m := NewMonitor(2)
	m.SetInitial(0, "a", 1)
	m.SetInitial(1, "b", 1)
	w := m.WatchEF(Cmp(0, "a", "==", 1), Cmp(1, "b", "==", 1))
	if !w.Fired() || !w.Cut().Equal(computation.Cut{0, 0}) {
		t.Fatalf("watch on initially-true conjuncts: fired=%v cut=%v", w.Fired(), w.Cut())
	}
	// Empty conjunction fires immediately at ∅.
	m2 := NewMonitor(1)
	if w2 := m2.WatchEF(); !w2.Fired() {
		t.Error("empty conjunction did not fire")
	}
}

func TestAGWatch(t *testing.T) {
	m := NewMonitor(2)
	w := m.WatchAG(Cmp(0, "x", "<=", 5), Cmp(1, "y", "<=", 5))
	m.Internal(0, map[string]int{"x": 3})
	m.Internal(1, map[string]int{"y": 5})
	if w.Violated() {
		t.Fatal("violated while invariant holds")
	}
	m.Internal(1, map[string]int{"y": 6})
	if !w.Violated() {
		t.Fatal("violation missed")
	}
	cut, local := w.Counterexample()
	if local != "y@P2 <= 5" {
		t.Errorf("failing conjunct = %q", local)
	}
	snap := m.Snapshot()
	if !snap.Consistent(cut) {
		t.Errorf("counterexample %v inconsistent", cut)
	}
	if v, _ := snap.Value(1, cut[1], "y"); v != 6 {
		t.Errorf("counterexample does not expose the bad state: y = %d", v)
	}
	// Offline A2 agrees on the snapshot.
	p := predicate.Conj(
		predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.LE, K: 5},
		predicate.VarCmp{Proc: 1, Var: "y", Op: predicate.LE, K: 5},
	)
	if _, ok := core.AGLinear(snap, p); ok {
		t.Error("offline AG disagrees")
	}
}

func TestAGWatchMatchesOfflinePrefixes(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		comp := sim.Random(sim.DefaultRandomConfig(3, 12), seed)
		p := predicate.Conj(
			predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.LE, K: 2},
			predicate.VarCmp{Proc: 1, Var: "x1", Op: predicate.LE, K: 2},
		)
		m := NewMonitor(comp.N())
		w := m.WatchAG(Cmp(0, "x0", "<=", 2), Cmp(1, "x1", "<=", 2))
		replay(t, comp, m, func(seen int) {
			_, ok := core.AGLinear(m.Snapshot(), p)
			if w.Violated() != !ok {
				t.Fatalf("seed %d after %d events: online violated=%v, offline AG=%v",
					seed, seen, w.Violated(), ok)
			}
		})
	}
}

func TestStableWatch(t *testing.T) {
	m := NewMonitor(2)
	w := m.WatchStable("quiescent-done", func(m *Monitor) bool {
		return m.InFlight() == 0 && m.Value(1, "done") == 1
	})
	id := m.Send(0, nil)
	m.Internal(1, map[string]int{"done": 1})
	if w.Fired() {
		t.Fatal("fired with a message in flight")
	}
	if err := m.Receive(1, id, nil); err != nil {
		t.Fatal(err)
	}
	if !w.Fired() {
		t.Fatal("did not fire at quiescence")
	}
	if w.FiredAt() != 3 {
		t.Errorf("FiredAt = %d, want 3", w.FiredAt())
	}
}

func TestMonitorErrors(t *testing.T) {
	m := NewMonitor(2)
	if err := m.Receive(0, 99, nil); err == nil {
		t.Error("unknown message accepted")
	}
	id := m.Send(0, nil)
	if err := m.Receive(0, id, nil); err == nil {
		t.Error("self-receive accepted")
	}
	if err := m.Receive(1, id, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Receive(1, id, nil); err == nil {
		t.Error("duplicate receive accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("late WatchEF did not panic")
			}
		}()
		m.WatchEF(Cmp(0, "x", "==", 1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("late SetInitial did not panic")
			}
		}()
		m.SetInitial(0, "x", 1)
	}()
}

func TestMonitorDetectBridge(t *testing.T) {
	m := NewMonitor(2)
	id := m.Send(0, map[string]int{"x": 1})
	if err := m.Receive(1, id, map[string]int{"y": 1}); err != nil {
		t.Fatal(err)
	}
	res, err := m.Detect(ctl.MustParse("EF(x@P1 == 1 && y@P2 == 1)"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Error("bridge detection failed")
	}
}

func TestSnapshotMatchesDirectBuild(t *testing.T) {
	comp := sim.Fig4()
	m := NewMonitor(comp.N())
	replay(t, comp, m, nil)
	snap := m.Snapshot()
	if snap.TotalEvents() != comp.TotalEvents() || snap.N() != comp.N() {
		t.Fatal("snapshot dimensions differ")
	}
	for i := 0; i < comp.N(); i++ {
		for k := 0; k <= comp.Len(i); k++ {
			for _, name := range comp.Vars(i) {
				a, _ := comp.Value(i, k, name)
				b, _ := snap.Value(i, k, name)
				if a != b {
					t.Errorf("value %s@P%d state %d: %d vs %d", name, i+1, k, a, b)
				}
			}
		}
		for k := 1; k <= comp.Len(i); k++ {
			if !comp.Event(i, k).Clock.Equal(snap.Event(i, k).Clock) {
				t.Errorf("clock mismatch at (%d,%d)", i, k)
			}
		}
	}
}

func ExampleMonitor() {
	m := NewMonitor(2)
	w := m.WatchEF(Cmp(0, "ready", "==", 1), Cmp(1, "ready", "==", 1))
	m.Internal(0, map[string]int{"ready": 1})
	fmt.Println(w.Fired())
	m.Internal(1, map[string]int{"ready": 1})
	fmt.Println(w.Fired(), w.Cut())
	// Output:
	// false
	// true <1 1>
}

package online

import (
	"strings"
	"testing"
)

// mustPanic asserts fn panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic (want one mentioning %q)", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want one mentioning %q", r, want)
		}
	}()
	fn()
}

// TestOutOfRangeProcessPanics pins the error-handling policy: a process
// index outside [0,n) is a programming error in the caller (the indices
// are the caller's own loop variables, not observed data) and panics,
// unlike observation-order violations, which return errors from Receive.
func TestOutOfRangeProcessPanics(t *testing.T) {
	const want = "out of range"
	m := NewMonitor(2)
	mustPanic(t, want, func() { m.SetInitial(2, "x", 1) })
	mustPanic(t, want, func() { m.SetInitial(-1, "x", 1) })
	mustPanic(t, want, func() { m.Internal(2, nil) })
	mustPanic(t, want, func() { m.Send(2, nil) })
	mustPanic(t, want, func() { _ = m.Receive(2, 1, nil) })
	mustPanic(t, want, func() { m.Value(2, "x") })
	mustPanic(t, want, func() { m.EventsOn(-1) })
	// The monitor must still be usable after a recovered panic.
	m.Internal(0, map[string]int{"x": 1})
	if got := m.Value(0, "x"); got != 1 {
		t.Fatalf("Value = %d after recovered panics, want 1", got)
	}
}

func TestEventsOn(t *testing.T) {
	m := NewMonitor(2)
	if m.EventsOn(0) != 0 || m.EventsOn(1) != 0 {
		t.Fatal("fresh monitor has events")
	}
	m.Internal(0, nil)
	id := m.Send(0, nil)
	if err := m.Receive(1, id, nil); err != nil {
		t.Fatal(err)
	}
	if got := m.EventsOn(0); got != 2 {
		t.Errorf("EventsOn(0) = %d, want 2", got)
	}
	if got := m.EventsOn(1); got != 1 {
		t.Errorf("EventsOn(1) = %d, want 1", got)
	}
}

func TestParseConj(t *testing.T) {
	locals, err := ParseConj("conj(x@P1 == 1, y@P2 >= 2)")
	if err != nil {
		t.Fatal(err)
	}
	if len(locals) != 2 {
		t.Fatalf("got %d locals, want 2", len(locals))
	}
	if locals[0].Proc != 0 || locals[0].Name == "" {
		t.Errorf("first local = %+v", locals[0])
	}
	if locals[1].Proc != 1 {
		t.Errorf("second local on process %d, want 1", locals[1].Proc)
	}

	// A bare comparison is a one-conjunct watch.
	locals, err = ParseConj("x@P1 == 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(locals) != 1 {
		t.Fatalf("got %d locals, want 1", len(locals))
	}

	// Verify the compiled Holds closures actually compare.
	if !locals[0].Holds(map[string]int{"x": 1}) {
		t.Error("x == 1 does not hold on x=1")
	}
	if locals[0].Holds(map[string]int{"x": 2}) {
		t.Error("x == 1 holds on x=2")
	}

	for _, src := range []string{
		"",                        // empty
		"conj(",                   // syntax error
		"EF(x@P1 == 1)",           // temporal
		"x@P1 == 1 || y@P2 == 2",  // not conjunctive
		"channelsEmpty",           // not a variable comparison
		"conj(x@P1 == 1) && true", // not an atom
	} {
		if _, err := ParseConj(src); err == nil {
			t.Errorf("ParseConj(%q) accepted", src)
		}
	}
}

package online

import (
	"fmt"

	"repro/internal/ctl"
	"repro/internal/predicate"
)

// ParseConj parses a non-temporal conjunctive predicate in the ctl syntax
// — conj(x@P1 == 1, y@P2 >= 2) or a single comparison — and adapts its
// local conjuncts to LocalSpecs for WatchEF / WatchAG. Only variable
// comparisons are supported online; temporal operators and other
// predicate forms are errors. Shared by hbmon and hbserver, which both
// accept watch predicates as text.
func ParseConj(src string) ([]LocalSpec, error) {
	f, err := ctl.Parse(src)
	if err != nil {
		return nil, err
	}
	atom, ok := f.(ctl.Atom)
	if !ok {
		return nil, fmt.Errorf("watch %q must be a non-temporal conjunctive predicate", src)
	}
	var locals []predicate.LocalPredicate
	switch p := atom.P.(type) {
	case predicate.Conjunctive:
		locals = p.Locals
	case predicate.LocalPredicate:
		locals = []predicate.LocalPredicate{p}
	default:
		return nil, fmt.Errorf("watch %q must be conjunctive, got %s", src, atom.P)
	}
	out := make([]LocalSpec, 0, len(locals))
	for _, l := range locals {
		vc, ok := l.(predicate.VarCmp)
		if !ok {
			return nil, fmt.Errorf("watch %q: only variable comparisons are supported online", src)
		}
		out = append(out, Cmp(vc.Proc, vc.Var, string(vc.Op), vc.K))
	}
	return out, nil
}

package online

import (
	"fmt"

	"repro/internal/pir"
	"repro/internal/predicate"
)

// ParseConj parses a non-temporal conjunctive predicate in the ctl syntax
// — conj(x@P1 == 1, y@P2 >= 2) or a single comparison — and adapts its
// local conjuncts to LocalSpecs for WatchEF / WatchAG. The predicate is
// compiled and classified by the pir package — the same IR the offline
// detector dispatches on — so the monitors and the server can never
// disagree with core.Detect about what counts as conjunctive. Only
// variable comparisons are supported online; temporal operators and other
// predicate forms are errors. Shared by hbmon and hbserver, which both
// accept watch predicates as text.
func ParseConj(src string) ([]LocalSpec, error) {
	p, err := pir.CompileSource(src)
	if err != nil {
		return nil, fmt.Errorf("watch %q must be a non-temporal conjunctive predicate: %v", src, err)
	}
	locals, ok := p.ConjunctLocals()
	if !ok {
		return nil, fmt.Errorf("watch %q must be conjunctive, got %s (class %s)", src, p.P, p.Class)
	}
	out := make([]LocalSpec, 0, len(locals))
	for _, l := range locals {
		vc, ok := l.(predicate.VarCmp)
		if !ok {
			return nil, fmt.Errorf("watch %q: only variable comparisons are supported online", src)
		}
		out = append(out, Cmp(vc.Proc, vc.Var, string(vc.Op), vc.K))
	}
	return out, nil
}

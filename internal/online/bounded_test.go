package online

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/sim"
)

// verdictTrace is the observable behavior of a monitor's watches along one
// replay: per event, whether each watch has latched, plus the latched
// evidence.
type verdictTrace struct {
	efFired  []bool
	agViol   []bool
	efCut    computation.Cut
	agCut    computation.Cut
	agLocal  string
	retained []int
}

func boundedBattery(m *Monitor) (*EFWatch, *AGWatch) {
	ef := m.WatchEF(
		Cmp(0, "x0", ">=", 2),
		Cmp(1, "x0", ">=", 1),
		Cmp(2, "x0", ">=", 1),
	)
	ag := m.WatchAG(Cmp(1, "x0", "<=", 2))
	return ef, ag
}

func traceReplay(t *testing.T, comp *computation.Computation, m *Monitor) verdictTrace {
	t.Helper()
	ef, ag := boundedBattery(m)
	var tr verdictTrace
	replay(t, comp, m, func(int) {
		tr.efFired = append(tr.efFired, ef.Fired())
		tr.agViol = append(tr.agViol, ag.Violated())
		tr.retained = append(tr.retained, m.Retained())
	})
	tr.efCut = ef.Cut()
	tr.agCut, tr.agLocal = ag.Counterexample()
	return tr
}

// TestBoundedMonitorMatchesUnbounded feeds the same streams to a bounded
// and an unbounded monitor and requires bit-identical verdicts, evidence
// cuts, and determining prefixes — while the bounded monitor's retained
// state stays at the slice-cursor bound instead of growing with the
// prefix.
func TestBoundedMonitorMatchesUnbounded(t *testing.T) {
	shrankSomewhere := false
	for seed := int64(0); seed < 30; seed++ {
		comp := sim.Random(sim.DefaultRandomConfig(3, 20), seed)
		full := traceReplay(t, comp, NewMonitor(comp.N()))
		bnd := traceReplay(t, comp, NewBoundedMonitor(comp.N()))

		for i := range full.efFired {
			if full.efFired[i] != bnd.efFired[i] || full.agViol[i] != bnd.agViol[i] {
				t.Fatalf("seed %d event %d: verdicts diverge (EF %v/%v, AG %v/%v) — determining prefixes differ",
					seed, i+1, full.efFired[i], bnd.efFired[i], full.agViol[i], bnd.agViol[i])
			}
		}
		if (full.efCut == nil) != (bnd.efCut == nil) || (full.efCut != nil && !full.efCut.Equal(bnd.efCut)) {
			t.Fatalf("seed %d: EF cuts diverge: %v vs %v", seed, full.efCut, bnd.efCut)
		}
		if (full.agCut == nil) != (bnd.agCut == nil) || (full.agCut != nil && !full.agCut.Equal(bnd.agCut)) {
			t.Fatalf("seed %d: AG counterexample cuts diverge: %v vs %v", seed, full.agCut, bnd.agCut)
		}
		if full.agLocal != bnd.agLocal {
			t.Fatalf("seed %d: AG failing conjunct %q vs %q", seed, full.agLocal, bnd.agLocal)
		}

		// The unbounded monitor's retained state is the prefix; the bounded
		// monitor's is the cursor queues, which can never exceed it.
		last := len(full.retained) - 1
		if bnd.retained[last] > full.retained[last] {
			t.Fatalf("seed %d: bounded retained %d > unbounded %d",
				seed, bnd.retained[last], full.retained[last])
		}
		if bnd.retained[last] < full.retained[last] {
			shrankSomewhere = true
		}
	}
	if !shrankSomewhere {
		t.Fatal("bounded mode never reduced retained state on any seed")
	}
}

func TestBoundedMonitorSnapshotPanics(t *testing.T) {
	m := NewBoundedMonitor(2)
	if !m.Bounded() {
		t.Fatal("NewBoundedMonitor is not Bounded")
	}
	m.Internal(0, map[string]int{"a": 1})
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot on a bounded monitor did not panic")
		}
	}()
	m.Snapshot()
}

func TestBoundedMonitorRetainedIsCursorState(t *testing.T) {
	m := NewBoundedMonitor(2)
	w := m.WatchEF(Cmp(0, "a", "==", 1), Cmp(1, "b", "==", 1))
	if got := m.Retained(); got != 0 {
		t.Fatalf("retained %d before any event, want 0", got)
	}
	m.Internal(0, map[string]int{"a": 1}) // queues candidate on P1
	if got := m.Retained(); got != w.Retained() || got != 1 {
		t.Fatalf("retained %d after one candidate, want 1 (watch says %d)", got, w.Retained())
	}
	m.Internal(0, nil) // a=1 still holds in the new state: second candidate
	if got := m.Retained(); got != 2 {
		t.Fatalf("retained %d, want 2", got)
	}
	m.Internal(1, map[string]int{"b": 1})
	if !w.Fired() {
		t.Fatal("watch did not fire")
	}
}

package online

import (
	"fmt"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/vclock"
)

// LocalSpec is a local predicate for online detection, evaluated on a
// process's variable valuation at each new local state.
type LocalSpec struct {
	Proc  int
	Name  string
	Holds func(vals map[string]int) bool
}

// Cmp builds the online counterpart of predicate.VarCmp.
func Cmp(proc int, name, op string, k int) LocalSpec {
	return LocalSpec{
		Proc: proc,
		Name: fmt.Sprintf("%s@P%d %s %d", name, proc+1, op, k),
		Holds: func(vals map[string]int) bool {
			v := vals[name]
			switch op {
			case "<":
				return v < k
			case "<=":
				return v <= k
			case "==":
				return v == k
			case "!=":
				return v != k
			case ">=":
				return v >= k
			case ">":
				return v > k
			default:
				panic("online: unknown operator " + op)
			}
		},
	}
}

// HoldsNow reports whether the spec holds in its process's current local
// state — the frontier evaluation used by stable watches built from
// parsed conjuncts (hbserver's STABLE op).
func (l LocalSpec) HoldsNow(m *Monitor) bool {
	m.checkProc(l.Proc)
	return l.Holds(m.vals[l.Proc])
}

// candidate is a local state in an EFWatch queue.
type candidate struct {
	state int       // local state index k on its process
	start vclock.VC // clock of the event beginning the state; nil for k = 0
}

// EFWatch incrementally detects EF(p) for a conjunctive predicate p — the
// Garg–Waldecker weak conjunctive predicate algorithm. The verdict latches:
// once a satisfying consistent cut exists in the observed prefix it exists
// in every extension.
type EFWatch struct {
	specs  map[int][]LocalSpec // conjuncts grouped by process
	queues map[int][]candidate
	procs  []int // constrained processes in registration order
	fired  bool
	cut    computation.Cut

	// Elimination worklist: processes whose queue head changed since the
	// last fixed point. Only heads on the worklist need re-comparing, so
	// elimination continues in place instead of restarting the full
	// pairwise scan after every pop.
	dirty   []int
	inDirty []bool // indexed by process
	cmps    int    // head comparisons performed (cost instrumentation)
}

// WatchEF registers a conjunctive predicate given by its local conjuncts.
// The returned watch fires as soon as some consistent cut of the observed
// prefix satisfies every conjunct. An empty conjunct list fires
// immediately (the empty conjunction holds at ∅).
func (m *Monitor) WatchEF(locals ...LocalSpec) *EFWatch {
	if m.Events() > 0 {
		panic("online: WatchEF must be registered before events are observed")
	}
	w := &EFWatch{
		specs:   make(map[int][]LocalSpec),
		queues:  make(map[int][]candidate),
		inDirty: make([]bool, m.n),
	}
	for _, l := range locals {
		if l.Proc < 0 || l.Proc >= m.n {
			panic(fmt.Sprintf("online: local predicate on unknown process %d", l.Proc))
		}
		if _, seen := w.specs[l.Proc]; !seen {
			w.procs = append(w.procs, l.Proc)
		}
		w.specs[l.Proc] = append(w.specs[l.Proc], l)
	}
	m.efWatches = append(m.efWatches, w)
	if len(w.procs) == 0 {
		w.fired = true
		w.cut = computation.NewCut(m.n)
		return w
	}
	// Seed with the initial states (before any event) of the constrained
	// processes whose conjuncts already hold.
	for _, proc := range w.procs {
		if m.lens[proc] == 0 && w.holdsAt(m, proc) {
			w.queues[proc] = append(w.queues[proc], candidate{state: 0})
			w.markDirty(proc)
		}
	}
	w.advance(m)
	return w
}

// Fired reports whether a satisfying cut has been found; Cut returns it.
func (w *EFWatch) Fired() bool { return w.fired }

// Cut returns the satisfying cut once Fired; nil before.
func (w *EFWatch) Cut() computation.Cut { return w.cut }

func (w *EFWatch) holdsAt(m *Monitor, proc int) bool {
	for _, l := range w.specs[proc] {
		if !l.Holds(m.vals[proc]) {
			return false
		}
	}
	return true
}

// observe is called by the monitor after each event.
func (w *EFWatch) observe(m *Monitor, proc int) {
	if w.fired {
		return
	}
	if _, constrained := w.specs[proc]; constrained && w.holdsAt(m, proc) {
		k := m.lens[proc]
		w.queues[proc] = append(w.queues[proc], candidate{
			state: k,
			start: m.stateClocks[proc][k],
		})
		// Only a new HEAD can enable an elimination or a firing: a
		// candidate queued behind an existing head changes neither, so
		// the event costs O(1).
		if len(w.queues[proc]) == 1 {
			w.markDirty(proc)
		}
	}
	if len(w.dirty) > 0 {
		w.advance(m)
	}
}

// markDirty queues a process for head re-comparison.
func (w *EFWatch) markDirty(proc int) {
	if !w.inDirty[proc] {
		w.inDirty[proc] = true
		w.dirty = append(w.dirty, proc)
	}
}

// advance continues head elimination from the processes whose heads
// changed since the last fixed point, then fires if every constrained
// process has a compatible head. Unlike a full pairwise rescan per pop,
// each pop costs O(n): only the popped process's new head (and heads it
// kills) re-enter the worklist, and a pair of unchanged heads is never
// re-compared — the amortized per-event cost is O(n · pops + 1).
//
// Head (i, k) is dead with respect to head (j, k') when state (i, k) ends
// before state (j, k') begins in every interleaving — i.e. event (i, k+1)
// happened-before event (j, k'), which the clocks express as
// start_j[i] ≥ k+1. Deadness is monotone along j's queue (later starts
// dominate), so popping is safe and each candidate is popped at most once.
func (w *EFWatch) advance(m *Monitor) {
	for len(w.dirty) > 0 {
		i := w.dirty[len(w.dirty)-1]
		w.dirty = w.dirty[:len(w.dirty)-1]
		w.inDirty[i] = false
		if len(w.queues[i]) == 0 {
			continue // no head to verify; a future candidate re-dirties i
		}
		hi := w.queues[i][0]
		dead := false
		for _, j := range w.procs {
			if j == i {
				continue
			}
			// Re-compare against j's head, following pops of j in place
			// (an empty queue j is skipped: the pair is verified from j's
			// side when j regains a head and is marked dirty).
			for len(w.queues[j]) > 0 {
				hj := w.queues[j][0]
				w.cmps++
				if hj.start != nil && hj.start[i] >= hi.state+1 {
					w.queues[i] = w.queues[i][1:]
					dead = true
					break
				}
				if hi.start != nil && hi.start[j] >= hj.state+1 {
					w.queues[j] = w.queues[j][1:]
					w.markDirty(j)
					continue // j's next head against the same hi
				}
				break // pair alive
			}
			if dead {
				break
			}
		}
		if dead {
			w.markDirty(i) // restart i with its new head
		}
	}
	// Fixed point: fire only if every constrained process has a head (all
	// verified pairwise alive above).
	for _, proc := range w.procs {
		if len(w.queues[proc]) == 0 {
			return
		}
	}
	// Pairwise compatible: the least cut exposing all heads is the
	// join of their start clocks; compatibility pins each constrained
	// coordinate to its head's state.
	cut := computation.NewCut(m.n)
	for _, proc := range w.procs {
		h := w.queues[proc][0]
		if h.start == nil {
			continue
		}
		for j, x := range h.start {
			if x > cut[j] {
				cut[j] = x
			}
		}
	}
	w.fired = true
	w.cut = cut
	if m.met != nil {
		m.met.efFired.Inc()
	}
}

// AGWatch incrementally detects violations of AG(p) for a conjunctive
// predicate p: the invariant is violated as soon as any conjunct is false
// in any local state, because every local state is exposed by a consistent
// cut (the down-set of its starting event). The violation verdict latches.
type AGWatch struct {
	specs    map[int][]LocalSpec
	violated bool
	badCut   computation.Cut
	badLocal string
}

// WatchAG registers an invariant given by its local conjuncts. The watch
// reports a violation the moment one exists in the observed prefix.
func (m *Monitor) WatchAG(locals ...LocalSpec) *AGWatch {
	if m.Events() > 0 {
		panic("online: WatchAG must be registered before events are observed")
	}
	w := &AGWatch{specs: make(map[int][]LocalSpec)}
	for _, l := range locals {
		if l.Proc < 0 || l.Proc >= m.n {
			panic(fmt.Sprintf("online: local predicate on unknown process %d", l.Proc))
		}
		w.specs[l.Proc] = append(w.specs[l.Proc], l)
	}
	m.agWatches = append(m.agWatches, w)
	// Check the initial states.
	for proc := range w.specs {
		if m.lens[proc] == 0 {
			w.check(m, proc)
		}
	}
	return w
}

// Violated reports whether the invariant failed; Counterexample returns a
// consistent cut exposing the failure and the name of the failing
// conjunct.
func (w *AGWatch) Violated() bool { return w.violated }

// Counterexample returns the violating cut and the failing conjunct name.
func (w *AGWatch) Counterexample() (computation.Cut, string) { return w.badCut, w.badLocal }

func (w *AGWatch) observe(m *Monitor, proc int) {
	if w.violated {
		return
	}
	w.check(m, proc)
}

func (w *AGWatch) check(m *Monitor, proc int) {
	for _, l := range w.specs[proc] {
		if l.Holds(m.vals[proc]) {
			continue
		}
		w.violated = true
		if m.met != nil {
			m.met.agViolated.Inc()
		}
		w.badLocal = l.Name
		k := m.lens[proc]
		cut := computation.NewCut(m.n)
		if start := m.stateClocks[proc][k]; start != nil {
			copy(cut, start)
		}
		w.badCut = cut
		return
	}
}

// StableWatch evaluates a frontier predicate after every event; for a
// stable predicate, observing it at the frontier of any prefix is
// equivalent to global detection (the frontier is a consistent cut, and
// stability carries the verdict forward).
type StableWatch struct {
	Name  string
	holds func(m *Monitor) bool
	fired bool
	at    int // events observed when fired
}

// WatchStable registers a stable frontier predicate, e.g.
// func(m *Monitor) bool { return m.InFlight() == 0 && m.Value(0, "done") == 1 }.
func (m *Monitor) WatchStable(name string, holds func(m *Monitor) bool) *StableWatch {
	w := &StableWatch{Name: name, holds: holds}
	m.stableWatches = append(m.stableWatches, w)
	w.observe(m)
	return w
}

// Fired reports detection; FiredAt returns the prefix length at detection.
func (w *StableWatch) Fired() bool { return w.fired }

// FiredAt returns the number of observed events when the watch fired.
func (w *StableWatch) FiredAt() int { return w.at }

func (w *StableWatch) observe(m *Monitor) {
	if w.fired {
		return
	}
	if w.holds(m) {
		w.fired = true
		w.at = m.Events()
		if m.met != nil {
			m.met.stable.Inc()
		}
	}
}

// Detect runs the offline dispatcher on a snapshot of the observed prefix
// — the bridge from online monitoring to the full operator set (EG, AG
// final verdicts, until).
func (m *Monitor) Detect(f ctl.Formula) (core.Result, error) {
	return core.Detect(m.Snapshot(), f)
}

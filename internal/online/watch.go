package online

import (
	"fmt"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/slice"
)

// LocalSpec is a local predicate for online detection, evaluated on a
// process's variable valuation at each new local state.
type LocalSpec struct {
	Proc  int
	Name  string
	Holds func(vals map[string]int) bool
}

// Cmp builds the online counterpart of predicate.VarCmp.
func Cmp(proc int, name, op string, k int) LocalSpec {
	return LocalSpec{
		Proc: proc,
		Name: fmt.Sprintf("%s@P%d %s %d", name, proc+1, op, k),
		Holds: func(vals map[string]int) bool {
			v := vals[name]
			switch op {
			case "<":
				return v < k
			case "<=":
				return v <= k
			case "==":
				return v == k
			case "!=":
				return v != k
			case ">=":
				return v >= k
			case ">":
				return v > k
			default:
				panic("online: unknown operator " + op)
			}
		},
	}
}

// HoldsNow reports whether the spec holds in its process's current local
// state — the frontier evaluation used by stable watches built from
// parsed conjuncts (hbserver's STABLE op).
func (l LocalSpec) HoldsNow(m *Monitor) bool {
	m.checkProc(l.Proc)
	return l.Holds(m.vals[l.Proc])
}

// EFWatch incrementally detects EF(p) for a conjunctive predicate p — the
// Garg–Waldecker weak conjunctive predicate algorithm, with the queue and
// elimination machinery living in the slice.Online cursor so the watch
// retains O(slice) state (the queued candidates), never the raw prefix.
// The verdict latches: once a satisfying consistent cut exists in the
// observed prefix it exists in every extension.
type EFWatch struct {
	specs map[int][]LocalSpec // conjuncts grouped by process
	cur   *slice.Online
}

// WatchEF registers a conjunctive predicate given by its local conjuncts.
// The returned watch fires as soon as some consistent cut of the observed
// prefix satisfies every conjunct. An empty conjunct list fires
// immediately (the empty conjunction holds at ∅).
func (m *Monitor) WatchEF(locals ...LocalSpec) *EFWatch {
	if m.Events() > 0 {
		panic("online: WatchEF must be registered before events are observed")
	}
	w := &EFWatch{specs: make(map[int][]LocalSpec)}
	var procs []int
	for _, l := range locals {
		if l.Proc < 0 || l.Proc >= m.n {
			panic(fmt.Sprintf("online: local predicate on unknown process %d", l.Proc))
		}
		if _, seen := w.specs[l.Proc]; !seen {
			procs = append(procs, l.Proc)
		}
		w.specs[l.Proc] = append(w.specs[l.Proc], l)
	}
	w.cur = slice.NewOnline(m.n, procs)
	m.efWatches = append(m.efWatches, w)
	// Seed with the initial states (before any event) of the constrained
	// processes whose conjuncts already hold.
	for _, proc := range procs {
		if m.lens[proc] == 0 && w.holdsAt(m, proc) {
			w.cur.Offer(proc, 0, nil)
		}
	}
	w.advance(m)
	return w
}

// Fired reports whether a satisfying cut has been found; Cut returns it.
func (w *EFWatch) Fired() bool { return w.cur.Fired() }

// Cut returns the satisfying cut once Fired; nil before.
func (w *EFWatch) Cut() computation.Cut { return w.cur.Cut() }

// Retained returns the candidate local states the watch currently holds —
// its entire per-prefix memory (the slice frontier of the predicate).
func (w *EFWatch) Retained() int { return w.cur.Retained() }

func (w *EFWatch) holdsAt(m *Monitor, proc int) bool {
	for _, l := range w.specs[proc] {
		if !l.Holds(m.vals[proc]) {
			return false
		}
	}
	return true
}

// observe is called by the monitor after each event.
func (w *EFWatch) observe(m *Monitor, proc int) {
	if w.cur.Fired() {
		return
	}
	if _, constrained := w.specs[proc]; constrained && w.holdsAt(m, proc) {
		w.cur.Offer(proc, m.lens[proc], m.startClock(proc))
	}
	if w.cur.Dirty() {
		w.advance(m)
	}
}

// advance runs cursor elimination to its fixed point and records a
// newly-latched verdict in the metrics.
func (w *EFWatch) advance(m *Monitor) {
	wasFired := w.cur.Fired()
	w.cur.Step()
	if !wasFired && w.cur.Fired() && m.met != nil {
		m.met.efFired.Inc()
	}
}

// AGWatch incrementally detects violations of AG(p) for a conjunctive
// predicate p: the invariant is violated as soon as any conjunct is false
// in any local state, because every local state is exposed by a consistent
// cut (the down-set of its starting event). The violation verdict latches.
type AGWatch struct {
	specs    map[int][]LocalSpec
	violated bool
	badCut   computation.Cut
	badLocal string
}

// WatchAG registers an invariant given by its local conjuncts. The watch
// reports a violation the moment one exists in the observed prefix.
func (m *Monitor) WatchAG(locals ...LocalSpec) *AGWatch {
	if m.Events() > 0 {
		panic("online: WatchAG must be registered before events are observed")
	}
	w := &AGWatch{specs: make(map[int][]LocalSpec)}
	for _, l := range locals {
		if l.Proc < 0 || l.Proc >= m.n {
			panic(fmt.Sprintf("online: local predicate on unknown process %d", l.Proc))
		}
		w.specs[l.Proc] = append(w.specs[l.Proc], l)
	}
	m.agWatches = append(m.agWatches, w)
	// Check the initial states.
	for proc := range w.specs {
		if m.lens[proc] == 0 {
			w.check(m, proc)
		}
	}
	return w
}

// Violated reports whether the invariant failed; Counterexample returns a
// consistent cut exposing the failure and the name of the failing
// conjunct.
func (w *AGWatch) Violated() bool { return w.violated }

// Counterexample returns the violating cut and the failing conjunct name.
func (w *AGWatch) Counterexample() (computation.Cut, string) { return w.badCut, w.badLocal }

func (w *AGWatch) observe(m *Monitor, proc int) {
	if w.violated {
		return
	}
	w.check(m, proc)
}

func (w *AGWatch) check(m *Monitor, proc int) {
	for _, l := range w.specs[proc] {
		if l.Holds(m.vals[proc]) {
			continue
		}
		w.violated = true
		if m.met != nil {
			m.met.agViolated.Inc()
		}
		w.badLocal = l.Name
		cut := computation.NewCut(m.n)
		if start := m.startClock(proc); start != nil {
			copy(cut, start)
		}
		w.badCut = cut
		return
	}
}

// StableWatch evaluates a frontier predicate after every event; for a
// stable predicate, observing it at the frontier of any prefix is
// equivalent to global detection (the frontier is a consistent cut, and
// stability carries the verdict forward).
type StableWatch struct {
	Name  string
	holds func(m *Monitor) bool
	fired bool
	at    int // events observed when fired
}

// WatchStable registers a stable frontier predicate, e.g.
// func(m *Monitor) bool { return m.InFlight() == 0 && m.Value(0, "done") == 1 }.
func (m *Monitor) WatchStable(name string, holds func(m *Monitor) bool) *StableWatch {
	w := &StableWatch{Name: name, holds: holds}
	m.stableWatches = append(m.stableWatches, w)
	w.observe(m)
	return w
}

// Fired reports detection; FiredAt returns the prefix length at detection.
func (w *StableWatch) Fired() bool { return w.fired }

// FiredAt returns the number of observed events when the watch fired.
func (w *StableWatch) FiredAt() int { return w.at }

func (w *StableWatch) observe(m *Monitor) {
	if w.fired {
		return
	}
	if w.holds(m) {
		w.fired = true
		w.at = m.Events()
		if m.met != nil {
			m.met.stable.Inc()
		}
	}
}

// Detect runs the offline dispatcher on a snapshot of the observed prefix
// — the bridge from online monitoring to the full operator set (EG, AG
// final verdicts, until).
func (m *Monitor) Detect(f ctl.Formula) (core.Result, error) {
	return core.Detect(m.Snapshot(), f)
}

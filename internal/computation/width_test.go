package computation

import (
	"math/bits"
	"testing"
)

// bruteWidth finds the maximum antichain size by subset enumeration
// (small computations only).
func bruteWidth(c *Computation) int {
	var events []*Event
	for i := 0; i < c.N(); i++ {
		events = append(events, c.Events(i)...)
	}
	m := len(events)
	best := 0
	for mask := 1; mask < 1<<uint(m); mask++ {
		if bits.OnesCount(uint(mask)) <= best {
			continue
		}
		ok := true
		for a := 0; a < m && ok; a++ {
			if mask&(1<<uint(a)) == 0 {
				continue
			}
			for b := a + 1; b < m && ok; b++ {
				if mask&(1<<uint(b)) == 0 {
					continue
				}
				if c.HappenedBefore(events[a], events[b]) || c.HappenedBefore(events[b], events[a]) {
					ok = false
				}
			}
		}
		if ok {
			best = bits.OnesCount(uint(mask))
		}
	}
	return best
}

func TestWidthExtremes(t *testing.T) {
	// Fully concurrent grid: width = n·1 per column... all events of
	// different processes are concurrent, same process ordered: width = n
	// only if each process contributes one event per antichain — the
	// antichain picks at most one event per process, and any such pick is
	// pairwise concurrent, so width = n (for k ≥ 1).
	grid := func(n, k int) *Computation {
		b := NewBuilder(n)
		for p := 0; p < n; p++ {
			for i := 0; i < k; i++ {
				b.Internal(p)
			}
		}
		return b.MustBuild()
	}
	if w := grid(4, 3).Width(); w != 4 {
		t.Errorf("grid width = %d, want 4", w)
	}
	// A chain of messages is totally ordered: width 1.
	b := NewBuilder(2)
	cur := 0
	for i := 0; i < 4; i++ {
		_, m := b.Send(cur)
		cur = 1 - cur
		b.Receive(cur, m)
	}
	if w := b.MustBuild().Width(); w != 1 {
		t.Errorf("chain width = %d, want 1", w)
	}
	// Empty computation.
	if w := NewBuilder(2).MustBuild().Width(); w != 0 {
		t.Errorf("empty width = %d", w)
	}
}

func TestWidthMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		c := randomComp(seed, 3, 9)
		want := bruteWidth(c)
		if got := c.Width(); got != want {
			t.Fatalf("seed %d: Width = %d, brute force = %d", seed, got, want)
		}
	}
}

func TestMaxAntichain(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		c := randomComp(seed, 3, 9)
		anti := c.MaxAntichain()
		if len(anti) != c.Width() {
			t.Fatalf("seed %d: antichain size %d, width %d", seed, len(anti), c.Width())
		}
		for a := 0; a < len(anti); a++ {
			for b := a + 1; b < len(anti); b++ {
				if !c.Concurrent(anti[a], anti[b]) {
					t.Fatalf("seed %d: antichain members %v, %v are ordered", seed, anti[a], anti[b])
				}
			}
		}
	}
	if got := NewBuilder(1).MustBuild().MaxAntichain(); got != nil {
		t.Errorf("empty antichain = %v", got)
	}
}

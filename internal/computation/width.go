package computation

// Width returns the width of the happened-before poset (E, →): the size
// of a largest antichain, i.e. the maximum number of pairwise-concurrent
// events. Width measures the genuine concurrency of the computation and
// bounds the lattice's breadth (a width-w computation on n processes has
// at most O(|E|^w) consistent cuts; a chain has width 1 and a linear
// lattice).
//
// By Dilworth's theorem the width equals |E| minus a maximum matching of
// the DAG's transitive-closure bipartite graph (minimum path cover). The
// matching is found with augmenting paths in O(|E|·edges); the closure is
// read directly off the vector clocks.
func (c *Computation) Width() int {
	// Index events 0..m-1.
	var events []*Event
	for i := 0; i < c.N(); i++ {
		events = append(events, c.events[i]...)
	}
	m := len(events)
	if m == 0 {
		return 0
	}
	// adj[u] lists v with events[u] → events[v].
	adj := make([][]int, m)
	for u, e := range events {
		for v, f := range events {
			if u != v && c.HappenedBefore(e, f) {
				adj[u] = append(adj[u], v)
			}
		}
	}
	// Maximum bipartite matching (left copy u → right copy v).
	matchL := make([]int, m) // left u → right v or -1
	matchR := make([]int, m) // right v → left u or -1
	for i := range matchL {
		matchL[i], matchR[i] = -1, -1
	}
	var visited []bool
	var try func(u int) bool
	try = func(u int) bool {
		for _, v := range adj[u] {
			if visited[v] {
				continue
			}
			visited[v] = true
			if matchR[v] == -1 || try(matchR[v]) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		return false
	}
	matched := 0
	for u := 0; u < m; u++ {
		visited = make([]bool, m)
		if try(u) {
			matched++
		}
	}
	return m - matched
}

// MaxAntichain returns one largest antichain of pairwise-concurrent
// events. It recomputes the minimum path cover (see Width) and extracts
// an antichain via the König-style alternating reachability construction:
// an event is in the antichain when its path-cover position is "free on
// the left and unreachable on the right". For reporting and tests.
func (c *Computation) MaxAntichain() []*Event {
	var events []*Event
	for i := 0; i < c.N(); i++ {
		events = append(events, c.events[i]...)
	}
	m := len(events)
	if m == 0 {
		return nil
	}
	adj := make([][]int, m)
	for u, e := range events {
		for v, f := range events {
			if u != v && c.HappenedBefore(e, f) {
				adj[u] = append(adj[u], v)
			}
		}
	}
	matchL := make([]int, m)
	matchR := make([]int, m)
	for i := range matchL {
		matchL[i], matchR[i] = -1, -1
	}
	var visited []bool
	var try func(u int) bool
	try = func(u int) bool {
		for _, v := range adj[u] {
			if visited[v] {
				continue
			}
			visited[v] = true
			if matchR[v] == -1 || try(matchR[v]) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		return false
	}
	for u := 0; u < m; u++ {
		visited = make([]bool, m)
		try(u)
	}
	// König: minimum vertex cover = matched left vertices NOT reachable by
	// alternating paths from unmatched left vertices, plus matched right
	// vertices that ARE reachable. The complement over the poset elements
	// (an element is "covered" if its left or right copy is in the vertex
	// cover) is a maximum antichain.
	reachL := make([]bool, m)
	reachR := make([]bool, m)
	var queue []int
	for u := 0; u < m; u++ {
		if matchL[u] == -1 {
			reachL[u] = true
			queue = append(queue, u)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if reachR[v] {
				continue
			}
			reachR[v] = true
			if w := matchR[v]; w != -1 && !reachL[w] {
				reachL[w] = true
				queue = append(queue, w)
			}
		}
	}
	var out []*Event
	for idx, e := range events {
		inCover := (!reachL[idx] && matchL[idx] != -1) || reachR[idx]
		if !inCover {
			out = append(out, e)
		}
	}
	return out
}

// Package computation implements the happened-before model of a distributed
// computation: a finite set of events per process, partially ordered by
// Lamport's happened-before relation, together with the algebra of
// consistent cuts (global states) that all predicate-detection algorithms
// operate on.
//
// A computation is immutable once built. Use Builder to construct one, or
// the trace package to load one from disk.
package computation

import (
	"fmt"

	"repro/internal/vclock"
)

// Kind classifies an event.
type Kind int

const (
	// Internal events neither send nor receive a message.
	Internal Kind = iota
	// Send events emit exactly one message.
	Send
	// Receive events consume exactly one message.
	Receive
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Internal:
		return "internal"
	case Send:
		return "send"
	case Receive:
		return "receive"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is a single event of a computation. Events are identified by
// (Proc, Index) where Index is 1-based within the process; the pair is
// stable across sub-computation restriction.
type Event struct {
	// Proc is the 0-based index of the process executing the event.
	Proc int
	// Index is the 1-based position of the event on its process.
	Index int
	// Kind says whether the event is internal, a send, or a receive.
	Kind Kind
	// Msg is the message id for Send and Receive events (sends and their
	// matching receives share the id); 0 for internal events.
	Msg int
	// Clock is the vector clock of the event: Clock[j] is the number of
	// events of process j that happened-before or equal this event.
	Clock vclock.VC
	// Label is an optional human-readable name such as "e1" used when
	// reproducing the paper's figures.
	Label string
	// Sets holds the variable assignments performed by this event; the
	// resulting local state is the previous state overridden by Sets.
	Sets map[string]int
}

// String renders the event compactly, preferring its label when present.
func (e *Event) String() string {
	if e.Label != "" {
		return e.Label
	}
	return fmt.Sprintf("P%d:%d(%s)", e.Proc+1, e.Index, e.Kind)
}

package computation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomComp builds a deterministic random computation directly with the
// builder (the sim package depends on this one, so tests here roll their
// own generator).
func randomComp(seed int64, procs, events int) *Computation {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(procs)
	type pend struct {
		m  Msg
		to int
	}
	var inflight []pend
	for e := 0; e < events; e++ {
		p := rng.Intn(procs)
		switch {
		case len(inflight) > 0 && inflight[0].to == p && rng.Intn(2) == 0:
			b.Receive(p, inflight[0].m)
			inflight = inflight[1:]
		case procs > 1 && rng.Intn(3) == 0:
			_, m := b.Send(p)
			to := rng.Intn(procs - 1)
			if to >= p {
				to++
			}
			inflight = append(inflight, pend{m, to})
		default:
			Set(b.Internal(p), "v", rng.Intn(3))
		}
	}
	return b.MustBuild()
}

// randomConsistentCut draws a consistent cut by walking random ▷ steps.
func randomConsistentCut(rng *rand.Rand, c *Computation) Cut {
	cut := c.InitialCut()
	steps := rng.Intn(c.TotalEvents() + 1)
	for s := 0; s < steps; s++ {
		en := c.Enabled(cut)
		if len(en) == 0 {
			break
		}
		cut[en[rng.Intn(len(en))]]++
	}
	return cut
}

func TestQuickJoinMeetStayConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComp(seed, 3, 12)
		a := randomConsistentCut(rng, c)
		b := randomConsistentCut(rng, c)
		j, m := Join(a, b), Meet(a, b)
		return c.Consistent(j) && c.Consistent(m) &&
			a.LessEq(j) && b.LessEq(j) && m.LessEq(a) && m.LessEq(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickSuccessorsPredecessorsInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComp(seed, 3, 10)
		cut := randomConsistentCut(rng, c)
		for _, s := range c.Successors(cut) {
			found := false
			for _, back := range c.Predecessors(s) {
				if back.Equal(cut) {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		for _, p := range c.Predecessors(cut) {
			found := false
			for _, fwd := range c.Successors(p) {
				if fwd.Equal(cut) {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDownSetIsLeastCutContainingEvent(t *testing.T) {
	f := func(seed int64) bool {
		c := randomComp(seed, 3, 10)
		for i := 0; i < c.N(); i++ {
			for _, e := range c.Events(i) {
				d := c.DownSet(e)
				if !c.Consistent(d) || d[i] != e.Index {
					return false
				}
				// Removing any event from the down-set either breaks
				// consistency or drops e: check the predecessor cuts do
				// not all contain e.
				for _, p := range c.Predecessors(d) {
					if p[i] >= e.Index && c.Consistent(p) {
						return false // a smaller consistent cut contains e
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickUpSetComplementIsGreatestWithoutEvent(t *testing.T) {
	f := func(seed int64) bool {
		c := randomComp(seed, 3, 10)
		for i := 0; i < c.N(); i++ {
			for _, e := range c.Events(i) {
				m := c.UpSetComplement(e)
				if !c.Consistent(m) || m[i] >= e.Index {
					return false
				}
				// No successor of m may exclude e: every strictly larger
				// cut contains e.
				for _, s := range c.Successors(m) {
					if s[i] < e.Index {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickHappenedBeforeAgreesWithClocks(t *testing.T) {
	f := func(seed int64) bool {
		c := randomComp(seed, 3, 12)
		var all []*Event
		for i := 0; i < c.N(); i++ {
			all = append(all, c.Events(i)...)
		}
		for _, e := range all {
			for _, g := range all {
				if e == g {
					continue
				}
				// Vector clock characterization: e → g iff Clock(e) < Clock(g).
				want := e.Clock.Less(g.Clock)
				if c.HappenedBefore(e, g) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickFrontierEventsAreMaximal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComp(seed, 4, 14)
		cut := randomConsistentCut(rng, c)
		frontier := c.Frontier(cut)
		inFrontier := make(map[*Event]bool, len(frontier))
		for _, e := range frontier {
			inFrontier[e] = true
		}
		for i := 0; i < c.N(); i++ {
			for k := 1; k <= cut[i]; k++ {
				e := c.Event(i, k)
				// e is maximal iff no other included event follows it.
				maximal := true
				for j := 0; j < c.N(); j++ {
					for l := 1; l <= cut[j]; l++ {
						if g := c.Event(j, l); g != e && c.HappenedBefore(e, g) {
							maximal = false
						}
					}
				}
				if maximal != inFrontier[e] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickInFlightNeverNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComp(seed, 3, 15)
		cut := randomConsistentCut(rng, c)
		n := c.InFlight(cut)
		return n >= 0 && n <= len(c.Messages())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickPrefixPreservesStructure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComp(seed, 3, 12)
		cut := randomConsistentCut(rng, c)
		sub := c.Prefix(cut)
		if sub.TotalEvents() != cut.Size() {
			return false
		}
		// Clocks and values are shared unchanged.
		for i := 0; i < c.N(); i++ {
			for k := 1; k <= cut[i]; k++ {
				if !sub.Event(i, k).Clock.Equal(c.Event(i, k).Clock) {
					return false
				}
			}
			for k := 0; k <= cut[i]; k++ {
				for _, name := range c.Vars(i) {
					a, _ := c.Value(i, k, name)
					b, _ := sub.Value(i, k, name)
					if a != b {
						return false
					}
				}
			}
		}
		// The final cut of the prefix is the cut itself.
		return sub.FinalCut().Equal(cut)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

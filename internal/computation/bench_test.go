package computation

import (
	"fmt"
	"testing"
)

func benchComp(events int) *Computation {
	return randomComp(42, 4, events)
}

func BenchmarkConsistent(b *testing.B) {
	c := benchComp(2000)
	cut := c.FinalCut()
	for i := range cut {
		cut[i] /= 2
	}
	// Make it consistent by closing downwards.
	for !c.Consistent(cut) {
		for i := range cut {
			if cut[i] > 0 {
				cut[i]--
				break
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Consistent(cut) {
			b.Fatal("inconsistent")
		}
	}
}

func BenchmarkSuccessorsPredecessors(b *testing.B) {
	c := benchComp(2000)
	mid := c.FinalCut()
	for i := range mid {
		mid[i] /= 2
	}
	for !c.Consistent(mid) {
		for i := range mid {
			if mid[i] > 0 {
				mid[i]--
				break
			}
		}
	}
	b.Run("Successors", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Successors(mid)
		}
	})
	b.Run("Predecessors", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Predecessors(mid)
		}
	})
	b.Run("Frontier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Frontier(mid)
		}
	})
}

func BenchmarkUpSetComplement(b *testing.B) {
	for _, events := range []int{500, 2000, 8000} {
		c := benchComp(events)
		e := c.Event(0, c.Len(0)/2)
		b.Run(fmt.Sprintf("E%d", events), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.UpSetComplement(e)
			}
		})
	}
}

func BenchmarkBuilder(b *testing.B) {
	for _, events := range []int{500, 2000} {
		b.Run(fmt.Sprintf("E%d", events), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				randomComp(int64(i), 4, events)
			}
		})
	}
}

func BenchmarkInFlight(b *testing.B) {
	c := benchComp(2000)
	cut := c.FinalCut()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.InFlight(cut)
	}
}

func BenchmarkSomeLinearization(b *testing.B) {
	c := benchComp(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SomeLinearization()
	}
}

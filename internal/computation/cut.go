package computation

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Cut is a global state of a computation, represented as the number of
// events each process has executed: Cut[i] = k means the first k events of
// process i are in the cut. A cut in this representation is automatically
// down-closed per process; Computation.Consistent checks closure across
// processes (the happened-before condition).
type Cut []int

// NewCut returns the initial cut (no events executed) for n processes.
func NewCut(n int) Cut { return make(Cut, n) }

// Copy returns an independent copy of c.
func (c Cut) Copy() Cut {
	d := make(Cut, len(c))
	copy(d, c)
	return d
}

// Equal reports componentwise equality.
func (c Cut) Equal(d Cut) bool {
	if len(c) != len(d) {
		return false
	}
	for i, x := range c {
		if x != d[i] {
			return false
		}
	}
	return true
}

// LessEq reports whether c ⊆ d, i.e. every event of c is in d.
func (c Cut) LessEq(d Cut) bool {
	if len(c) != len(d) {
		panic(fmt.Sprintf("computation: compare of mismatched cuts (%d vs %d)", len(c), len(d)))
	}
	for i, x := range c {
		if x > d[i] {
			return false
		}
	}
	return true
}

// Size returns the number of events in the cut.
func (c Cut) Size() int {
	total := 0
	for _, x := range c {
		total += x
	}
	return total
}

// Join returns the least upper bound c ⊔ d (set union of the cuts),
// computed componentwise. The join of two consistent cuts is consistent.
func Join(c, d Cut) Cut {
	if len(c) != len(d) {
		panic("computation: join of mismatched cuts")
	}
	j := make(Cut, len(c))
	for i := range c {
		if c[i] >= d[i] {
			j[i] = c[i]
		} else {
			j[i] = d[i]
		}
	}
	return j
}

// Meet returns the greatest lower bound c ⊓ d (set intersection of the
// cuts), computed componentwise. The meet of two consistent cuts is
// consistent.
func Meet(c, d Cut) Cut {
	if len(c) != len(d) {
		panic("computation: meet of mismatched cuts")
	}
	m := make(Cut, len(c))
	for i := range c {
		if c[i] <= d[i] {
			m[i] = c[i]
		} else {
			m[i] = d[i]
		}
	}
	return m
}

// Key returns a compact string usable as a map key identifying the cut.
func (c Cut) Key() string {
	buf := make([]byte, 0, len(c)*3)
	var tmp [binary.MaxVarintLen64]byte
	for _, x := range c {
		n := binary.PutUvarint(tmp[:], uint64(x))
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

// String renders the cut as "<a b c>".
func (c Cut) String() string {
	parts := make([]string, len(c))
	for i, x := range c {
		parts[i] = fmt.Sprint(x)
	}
	return "<" + strings.Join(parts, " ") + ">"
}

package computation

import (
	"testing"
)

// fig2 builds the reconstruction of the paper's Figure 2 computation:
// two processes P1 (events e1 e2 e3) and P2 (f1 f2 f3), a message from f2
// received at e1 and a message from e2 received at f3. Its lattice has 8
// consistent cuts and satisfies the paper's factorizations
// X = ⊓{E1,E2,E3,F3} and Y = ⊓{E3,F3}.
func fig2(t testing.TB) *Computation {
	t.Helper()
	b := NewBuilder(2)
	WithLabel(b.Internal(1), "f1")
	f2, m1 := b.Send(1)
	WithLabel(f2, "f2")
	WithLabel(b.Receive(0, m1), "e1")
	e2, m2 := b.Send(0)
	WithLabel(e2, "e2")
	WithLabel(b.Internal(0), "e3")
	WithLabel(b.Receive(1, m2), "f3")
	return b.MustBuild()
}

func TestBuilderClocks(t *testing.T) {
	c := fig2(t)
	cases := []struct {
		proc, idx int
		want      []int
	}{
		{1, 1, []int{0, 1}}, // f1
		{1, 2, []int{0, 2}}, // f2
		{0, 1, []int{1, 2}}, // e1 = receive of f2's message
		{0, 2, []int{2, 2}}, // e2
		{0, 3, []int{3, 2}}, // e3
		{1, 3, []int{2, 3}}, // f3 = receive of e2's message
	}
	for _, tc := range cases {
		e := c.Event(tc.proc, tc.idx)
		for j, w := range tc.want {
			if e.Clock[j] != w {
				t.Errorf("%s clock = %v, want %v", e, e.Clock, tc.want)
				break
			}
		}
	}
}

func TestHappenedBefore(t *testing.T) {
	c := fig2(t)
	e1, e2, e3 := c.Event(0, 1), c.Event(0, 2), c.Event(0, 3)
	f1, f2, f3 := c.Event(1, 1), c.Event(1, 2), c.Event(1, 3)

	hb := []struct {
		a, b *Event
		want bool
	}{
		{e1, e2, true}, {e2, e3, true}, {e1, e3, true},
		{f1, f2, true}, {f2, f3, true},
		{f2, e1, true}, {f1, e1, true}, {f1, e3, true},
		{e2, f3, true}, {e1, f3, true},
		{e1, f1, false}, {e1, f2, false},
		{e3, f3, false}, {f3, e3, false},
		{e1, e1, false},
	}
	for _, tc := range hb {
		if got := c.HappenedBefore(tc.a, tc.b); got != tc.want {
			t.Errorf("HappenedBefore(%s, %s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	if !c.Concurrent(e3, f3) {
		t.Error("e3 and f3 should be concurrent")
	}
	if c.Concurrent(e1, e2) {
		t.Error("e1 and e2 are ordered, not concurrent")
	}
}

func TestConsistent(t *testing.T) {
	c := fig2(t)
	consistent := []Cut{
		{0, 0}, {0, 1}, {0, 2}, {1, 2}, {2, 2}, {3, 2}, {2, 3}, {3, 3},
	}
	inconsistent := []Cut{
		{1, 0}, {1, 1}, {2, 0}, {3, 0}, {2, 1}, {3, 1}, // e1 needs f2
		{0, 3}, {1, 3}, // f3 needs e2
	}
	for _, cut := range consistent {
		if !c.Consistent(cut) {
			t.Errorf("cut %v should be consistent", cut)
		}
	}
	for _, cut := range inconsistent {
		if c.Consistent(cut) {
			t.Errorf("cut %v should be inconsistent", cut)
		}
	}
	// Out-of-range cuts are never consistent.
	for _, cut := range []Cut{{4, 0}, {-1, 0}, {0, 0, 0}, {0}} {
		if c.Consistent(cut) {
			t.Errorf("out-of-range cut %v reported consistent", cut)
		}
	}
}

func TestEnabledAndSuccessors(t *testing.T) {
	c := fig2(t)
	cases := []struct {
		cut  Cut
		want []int
	}{
		{Cut{0, 0}, []int{1}},    // only f1 enabled
		{Cut{0, 1}, []int{1}},    // only f2
		{Cut{0, 2}, []int{0, 1}}, // e1 and f3? f3 needs e2 → only e1... see below
		{Cut{2, 2}, []int{0, 1}}, // e3 and f3
		{Cut{3, 3}, nil},         // final
	}
	// Fix expectation for {0,2}: f3 requires e2, so only process 0 enabled.
	cases[2].want = []int{0}
	for _, tc := range cases {
		got := c.Enabled(tc.cut)
		if len(got) != len(tc.want) {
			t.Errorf("Enabled(%v) = %v, want %v", tc.cut, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Enabled(%v) = %v, want %v", tc.cut, got, tc.want)
				break
			}
		}
	}
	succ := c.Successors(Cut{2, 2})
	if len(succ) != 2 || !succ[0].Equal(Cut{3, 2}) || !succ[1].Equal(Cut{2, 3}) {
		t.Errorf("Successors(<2 2>) = %v", succ)
	}
}

func TestPredecessorsAndFrontier(t *testing.T) {
	c := fig2(t)
	pred := c.Predecessors(Cut{3, 3})
	if len(pred) != 2 || !pred[0].Equal(Cut{2, 3}) || !pred[1].Equal(Cut{3, 2}) {
		t.Errorf("Predecessors(E) = %v", pred)
	}
	// At <1 2>, e1 is maximal; f2 is not (f2 → e1).
	pred = c.Predecessors(Cut{1, 2})
	if len(pred) != 1 || !pred[0].Equal(Cut{0, 2}) {
		t.Errorf("Predecessors(<1 2>) = %v", pred)
	}
	fr := c.Frontier(Cut{1, 2})
	if len(fr) != 1 || fr[0].Label != "e1" {
		t.Errorf("Frontier(<1 2>) = %v", fr)
	}
	fr = c.Frontier(Cut{3, 3})
	if len(fr) != 2 || fr[0].Label != "e3" || fr[1].Label != "f3" {
		t.Errorf("Frontier(E) = %v", fr)
	}
	if got := c.Frontier(Cut{0, 0}); len(got) != 0 {
		t.Errorf("Frontier(∅) = %v, want empty", got)
	}
}

func TestDownSetAndUpSetComplement(t *testing.T) {
	c := fig2(t)
	e1 := c.Event(0, 1)
	if got := c.DownSet(e1); !got.Equal(Cut{1, 2}) {
		t.Errorf("DownSet(e1) = %v, want <1 2>", got)
	}
	// Meet-irreducibles by the Birkhoff formula.
	wantMI := map[string]Cut{
		"e1": {0, 2}, "e2": {1, 2}, "e3": {2, 3},
		"f1": {0, 0}, "f2": {0, 1}, "f3": {3, 2},
	}
	for i := 0; i < c.N(); i++ {
		for _, e := range c.Events(i) {
			got := c.UpSetComplement(e)
			want := wantMI[e.Label]
			if !got.Equal(want) {
				t.Errorf("UpSetComplement(%s) = %v, want %v", e.Label, got, want)
			}
			if !c.Consistent(got) {
				t.Errorf("UpSetComplement(%s) = %v is inconsistent", e.Label, got)
			}
		}
	}
}

// TestFig2Factorizations verifies the paper's Corollary 4 examples:
// X = ⊓{E1, E2, E3, F3} and Y = ⊓{E3, F3} where Ei = M(ei), Fi = M(fi).
func TestFig2Factorizations(t *testing.T) {
	c := fig2(t)
	mi := func(label string) Cut {
		for i := 0; i < c.N(); i++ {
			for _, e := range c.Events(i) {
				if e.Label == label {
					return c.UpSetComplement(e)
				}
			}
		}
		t.Fatalf("no event %q", label)
		return nil
	}
	x := Meet(Meet(mi("e1"), mi("e2")), Meet(mi("e3"), mi("f3")))
	if !x.Equal(Cut{0, 2}) {
		t.Errorf("X = %v, want <0 2>", x)
	}
	y := Meet(mi("e3"), mi("f3"))
	if !y.Equal(Cut{2, 2}) {
		t.Errorf("Y = %v, want <2 2>", y)
	}
}

func TestJoinMeetConsistency(t *testing.T) {
	c := fig2(t)
	cuts := []Cut{{0, 0}, {0, 1}, {0, 2}, {1, 2}, {2, 2}, {3, 2}, {2, 3}, {3, 3}}
	for _, a := range cuts {
		for _, b := range cuts {
			j, m := Join(a, b), Meet(a, b)
			if !c.Consistent(j) {
				t.Errorf("Join(%v, %v) = %v inconsistent", a, b, j)
			}
			if !c.Consistent(m) {
				t.Errorf("Meet(%v, %v) = %v inconsistent", a, b, m)
			}
			if !a.LessEq(j) || !b.LessEq(j) || !m.LessEq(a) || !m.LessEq(b) {
				t.Errorf("lattice bounds violated for %v, %v", a, b)
			}
		}
	}
}

func TestValues(t *testing.T) {
	b := NewBuilder(2)
	b.SetInitial(0, "x", 1)
	Set(b.Internal(0), "x", 3)
	Set(b.Internal(0), "y", 7)
	Set(b.Internal(1), "z", 5)
	c := b.MustBuild()

	cases := []struct {
		proc, state int
		name        string
		want        int
		ok          bool
	}{
		{0, 0, "x", 1, true},
		{0, 1, "x", 3, true},
		{0, 2, "x", 3, true}, // inherited across the y-assignment
		{0, 0, "y", 0, true},
		{0, 2, "y", 7, true},
		{1, 0, "z", 0, true},
		{1, 1, "z", 5, true},
		{0, 0, "z", 0, false}, // z undefined on P1
	}
	for _, tc := range cases {
		got, ok := c.Value(tc.proc, tc.state, tc.name)
		if got != tc.want || ok != tc.ok {
			t.Errorf("Value(%d, %d, %q) = (%d, %v), want (%d, %v)",
				tc.proc, tc.state, tc.name, got, ok, tc.want, tc.ok)
		}
	}
	if vars := c.Vars(0); len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars(0) = %v", vars)
	}
}

func TestChannels(t *testing.T) {
	c := fig2(t)
	cases := []struct {
		cut      Cut
		inFlight int
	}{
		{Cut{0, 0}, 0},
		{Cut{0, 1}, 0},
		{Cut{0, 2}, 1}, // f2's message sent, not received
		{Cut{1, 2}, 0},
		{Cut{2, 2}, 1}, // e2's message in flight
		{Cut{3, 2}, 1},
		{Cut{2, 3}, 0},
		{Cut{3, 3}, 0},
	}
	for _, tc := range cases {
		if got := c.InFlight(tc.cut); got != tc.inFlight {
			t.Errorf("InFlight(%v) = %d, want %d", tc.cut, got, tc.inFlight)
		}
		if got := c.ChannelsEmpty(tc.cut); got != (tc.inFlight == 0) {
			t.Errorf("ChannelsEmpty(%v) = %v", tc.cut, got)
		}
	}
}

func TestCompatibleStates(t *testing.T) {
	c := fig2(t)
	cases := []struct {
		i, k, j, kp int
		want        bool
	}{
		{0, 0, 1, 0, true},
		{0, 1, 1, 2, true},  // e1 done, f2 done
		{0, 1, 1, 1, false}, // e1 needs f2
		{0, 1, 1, 0, false},
		{0, 3, 1, 2, true},
		{0, 1, 1, 3, false}, // f3 needs e2
		{0, 2, 1, 3, true},
		{0, 0, 0, 0, true},  // same process, same state
		{0, 0, 0, 1, false}, // same process, different states
	}
	for _, tc := range cases {
		if got := c.CompatibleStates(tc.i, tc.k, tc.j, tc.kp); got != tc.want {
			t.Errorf("CompatibleStates(%d,%d,%d,%d) = %v, want %v",
				tc.i, tc.k, tc.j, tc.kp, got, tc.want)
		}
		// Symmetry.
		if got := c.CompatibleStates(tc.j, tc.kp, tc.i, tc.k); got != tc.want {
			t.Errorf("CompatibleStates(%d,%d,%d,%d) asymmetric", tc.j, tc.kp, tc.i, tc.k)
		}
	}
	// Compatibility must coincide with the existence of a consistent cut
	// exposing both states; check exhaustively on fig2.
	for k := 0; k <= 3; k++ {
		for kp := 0; kp <= 3; kp++ {
			exists := c.Consistent(Cut{k, kp})
			// The least cut with exactly (k, kp) exists iff {k,kp} is
			// consistent in the 2-process case.
			if got := c.CompatibleStates(0, k, 1, kp); got != exists {
				t.Errorf("CompatibleStates(0,%d,1,%d) = %v but consistent(%v) = %v",
					k, kp, got, Cut{k, kp}, exists)
			}
		}
	}
}

func TestPrefix(t *testing.T) {
	c := fig2(t)
	sub := c.Prefix(Cut{1, 2})
	if sub.N() != 2 || sub.Len(0) != 1 || sub.Len(1) != 2 {
		t.Fatalf("Prefix dims wrong: %d procs, lens %d/%d", sub.N(), sub.Len(0), sub.Len(1))
	}
	if sub.TotalEvents() != 3 {
		t.Errorf("TotalEvents = %d, want 3", sub.TotalEvents())
	}
	if !sub.Consistent(Cut{1, 2}) || sub.Consistent(Cut{1, 1}) {
		t.Error("sub-computation consistency diverges from original")
	}
	if !sub.ChannelsEmpty(Cut{1, 2}) {
		t.Error("channels should be empty at the full sub-computation")
	}
	if sub.ChannelsEmpty(Cut{0, 2}) {
		t.Error("f2's message should be in flight in the sub-computation")
	}
	// Prefix of an inconsistent cut panics.
	defer func() {
		if recover() == nil {
			t.Error("Prefix of inconsistent cut did not panic")
		}
	}()
	c.Prefix(Cut{1, 0})
}

func TestSomeLinearization(t *testing.T) {
	c := fig2(t)
	seq := c.SomeLinearization()
	if len(seq) != c.TotalEvents()+1 {
		t.Fatalf("linearization length = %d, want %d", len(seq), c.TotalEvents()+1)
	}
	if !seq[0].Equal(c.InitialCut()) || !seq[len(seq)-1].Equal(c.FinalCut()) {
		t.Error("linearization does not run from ∅ to E")
	}
	for i := 0; i+1 < len(seq); i++ {
		if !c.Consistent(seq[i]) {
			t.Errorf("cut %v in linearization is inconsistent", seq[i])
		}
		if seq[i].Size()+1 != seq[i+1].Size() || !seq[i].LessEq(seq[i+1]) {
			t.Errorf("step %v → %v is not a ▷ step", seq[i], seq[i+1])
		}
	}
}

func TestCutOps(t *testing.T) {
	a := Cut{1, 2, 3}
	if !a.Copy().Equal(a) {
		t.Error("Copy not equal")
	}
	cp := a.Copy()
	cp[0] = 9
	if a[0] != 1 {
		t.Error("Copy aliases")
	}
	if a.Size() != 6 {
		t.Errorf("Size = %d", a.Size())
	}
	if a.Equal(Cut{1, 2}) {
		t.Error("Equal across lengths")
	}
	if !Cut(nil).Equal(Cut{}) {
		t.Error("nil and empty cuts should be equal")
	}
	if a.Key() == (Cut{1, 2, 4}).Key() || a.Key() != (Cut{1, 2, 3}).Key() {
		t.Error("Key not injective/stable")
	}
	if a.String() != "<1 2 3>" {
		t.Errorf("String = %q", a.String())
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(2)
	_, m := b.Send(0)
	b.Receive(1, m)
	b.Receive(1, m) // duplicate receive
	if _, err := b.Build(); err == nil {
		t.Error("duplicate receive not rejected")
	}

	b = NewBuilder(2)
	b.Receive(0, Msg{99})
	if _, err := b.Build(); err == nil {
		t.Error("unknown message not rejected")
	}

	b = NewBuilder(2)
	_, m = b.Send(0)
	b.Receive(0, m)
	if _, err := b.Build(); err == nil {
		t.Error("self-receive not rejected")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild on broken builder did not panic")
		}
	}()
	b := NewBuilder(2)
	b.Receive(0, Msg{42})
	b.MustBuild()
}

func TestMessagesAccessors(t *testing.T) {
	c := fig2(t)
	ids := c.Messages()
	if len(ids) != 2 {
		t.Fatalf("Messages = %v", ids)
	}
	for _, id := range ids {
		s, r := c.SendOf(id), c.RecvOf(id)
		if s == nil || r == nil {
			t.Fatalf("message %d missing endpoints", id)
		}
		if !c.HappenedBefore(s, r) {
			t.Errorf("send %s not before receive %s", s, r)
		}
	}
}

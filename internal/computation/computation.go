package computation

import (
	"fmt"
	"sort"
)

// Computation is an immutable happened-before model (E, →) of a single
// execution of a distributed program, together with the per-event local
// variable valuations the paper's predicates are evaluated over.
//
// Local states: process i is in local state k (0 ≤ k ≤ Len(i)) after
// executing its first k events; state 0 is the initial state. A Cut c puts
// process i in local state c[i].
type Computation struct {
	events     [][]*Event         // events[i][k] is event (i, k+1)
	initial    []map[string]int   // initial valuation per process
	vals       []map[string][]int // vals[i][name][k] = value of name in state k of process i
	varsByProc [][]string         // sorted variable names known to each process
	sends      map[int]*Event     // message id → send event
	recvs      map[int]*Event     // message id → receive event
}

// N returns the number of processes.
func (c *Computation) N() int { return len(c.events) }

// Len returns the number of events of process i.
func (c *Computation) Len(i int) int { return len(c.events[i]) }

// TotalEvents returns |E|.
func (c *Computation) TotalEvents() int {
	total := 0
	for _, evs := range c.events {
		total += len(evs)
	}
	return total
}

// Event returns event (i, k), k being 1-based. It panics on out-of-range
// arguments.
func (c *Computation) Event(i, k int) *Event {
	return c.events[i][k-1]
}

// Events returns the event sequence of process i. The returned slice must
// not be modified.
func (c *Computation) Events(i int) []*Event { return c.events[i] }

// Messages returns the ids of all messages in the computation in
// ascending order.
func (c *Computation) Messages() []int {
	ids := make([]int, 0, len(c.sends))
	for id := range c.sends {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// SendOf returns the send event of message id, or nil.
func (c *Computation) SendOf(id int) *Event { return c.sends[id] }

// RecvOf returns the receive event of message id, or nil if the message is
// never received.
func (c *Computation) RecvOf(id int) *Event { return c.recvs[id] }

// HappenedBefore reports e → f (strict).
func (c *Computation) HappenedBefore(e, f *Event) bool {
	if e == f {
		return false
	}
	return e.Clock[e.Proc] <= f.Clock[e.Proc] && !(e.Proc == f.Proc && e.Index >= f.Index)
}

// Concurrent reports that neither e → f nor f → e.
func (c *Computation) Concurrent(e, f *Event) bool {
	return e != f && !c.HappenedBefore(e, f) && !c.HappenedBefore(f, e)
}

// Value returns the value of variable name in local state k of process i,
// and whether the variable is defined for that process.
func (c *Computation) Value(i, k int, name string) (int, bool) {
	col, ok := c.vals[i][name]
	if !ok {
		return 0, false
	}
	return col[k], true
}

// Vars returns the sorted variable names defined on process i.
func (c *Computation) Vars(i int) []string { return c.varsByProc[i] }

// InitialCut returns ∅, the empty cut.
func (c *Computation) InitialCut() Cut { return NewCut(c.N()) }

// FinalCut returns E, the cut containing every event.
func (c *Computation) FinalCut() Cut {
	f := NewCut(c.N())
	for i := range c.events {
		f[i] = len(c.events[i])
	}
	return f
}

// InRange reports that c is a syntactically valid cut for this computation
// (correct length, counters within bounds). It says nothing about
// consistency.
func (comp *Computation) InRange(c Cut) bool {
	if len(c) != comp.N() {
		return false
	}
	for i, x := range c {
		if x < 0 || x > comp.Len(i) {
			return false
		}
	}
	return true
}

// Consistent reports whether c is a consistent cut: for every included
// event, all events that happened-before it are included too.
func (comp *Computation) Consistent(c Cut) bool {
	if !comp.InRange(c) {
		return false
	}
	for i, k := range c {
		if k == 0 {
			continue
		}
		clock := comp.events[i][k-1].Clock
		for j, need := range clock {
			if need > c[j] {
				return false
			}
		}
	}
	return true
}

// EnabledEvent reports whether the next event of process i (event
// (i, c[i]+1)) can be added to c while keeping it consistent.
func (comp *Computation) EnabledEvent(c Cut, i int) bool {
	k := c[i]
	if k >= comp.Len(i) {
		return false
	}
	clock := comp.events[i][k].Clock
	for j, need := range clock {
		if j != i && need > c[j] {
			return false
		}
	}
	return true
}

// Enabled returns the processes whose next event is enabled at c, in
// ascending order. These determine the successors of c in the lattice.
func (comp *Computation) Enabled(c Cut) []int {
	var out []int
	for i := range c {
		if comp.EnabledEvent(c, i) {
			out = append(out, i)
		}
	}
	return out
}

// Successors returns the cuts H with c ▷ H.
func (comp *Computation) Successors(c Cut) []Cut {
	var out []Cut
	for _, i := range comp.Enabled(c) {
		h := c.Copy()
		h[i]++
		out = append(out, h)
	}
	return out
}

// MaximalEvent reports whether the last included event of process i (event
// (i, c[i])) is maximal in the cut, i.e. removable while keeping the cut
// consistent.
func (comp *Computation) MaximalEvent(c Cut, i int) bool {
	k := c[i]
	if k == 0 {
		return false
	}
	// Event (i,k) is maximal iff no other included event causally follows
	// it; it suffices to check the last included event of each process.
	for j, m := range c {
		if j == i || m == 0 {
			continue
		}
		if comp.events[j][m-1].Clock[i] >= k {
			return false
		}
	}
	return true
}

// Frontier returns the maximal events of cut c with respect to
// happened-before, in process order.
func (comp *Computation) Frontier(c Cut) []*Event {
	var out []*Event
	for i, k := range c {
		if k > 0 && comp.MaximalEvent(c, i) {
			out = append(out, comp.events[i][k-1])
		}
	}
	return out
}

// Predecessors returns the cuts G with G ▷ c.
func (comp *Computation) Predecessors(c Cut) []Cut {
	var out []Cut
	for i := range c {
		if comp.MaximalEvent(c, i) {
			g := c.Copy()
			g[i]--
			out = append(out, g)
		}
	}
	return out
}

// DownSet returns ↓e, the least consistent cut containing event e. By the
// vector-clock characterization this is exactly e's clock read as a cut;
// these cuts are the join-irreducible elements of the lattice.
func (comp *Computation) DownSet(e *Event) Cut {
	return Cut(e.Clock.Copy())
}

// UpSetComplement returns E − ↑e, the greatest consistent cut not
// containing event e; these cuts are the meet-irreducible elements of the
// lattice (Birkhoff). Component j counts the events of process j that e
// does not happen-before (and that are not e itself).
func (comp *Computation) UpSetComplement(e *Event) Cut {
	m := NewCut(comp.N())
	for j := range m {
		if j == e.Proc {
			m[j] = e.Index - 1
			continue
		}
		// Events of process j that causally know e form a suffix; find the
		// first one with Clock[e.Proc] ≥ e.Index by binary search.
		evs := comp.events[j]
		lo, hi := 0, len(evs)
		for lo < hi {
			mid := (lo + hi) / 2
			if evs[mid].Clock[e.Proc] >= e.Index {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		m[j] = lo
	}
	return m
}

// CompatibleStates reports whether local states (i, k) and (j, k') can
// belong to a common consistent cut.
func (comp *Computation) CompatibleStates(i, k, j, kp int) bool {
	if i == j {
		return k == kp
	}
	// The least cut containing exactly k events of i and k' of j exists iff
	// neither state causally requires more of the other process.
	if kp > 0 && comp.events[j][kp-1].Clock[i] > k {
		return false
	}
	if k > 0 && comp.events[i][k-1].Clock[j] > kp {
		return false
	}
	return true
}

// InFlight returns the number of messages sent but not yet received at cut
// c (messages never received count while their send is included).
func (comp *Computation) InFlight(c Cut) int {
	n := 0
	for id, s := range comp.sends {
		if c[s.Proc] < s.Index {
			continue
		}
		r := comp.recvs[id]
		if r == nil || c[r.Proc] < r.Index {
			n++
		}
	}
	return n
}

// ChannelsEmpty reports that no message is in flight at cut c.
func (comp *Computation) ChannelsEmpty(c Cut) bool { return comp.InFlight(c) == 0 }

// Prefix returns the sub-computation containing exactly the events of the
// consistent cut c. The result shares storage with the original. It panics
// if c is not consistent: a non-consistent prefix would contain receives
// without their sends.
func (comp *Computation) Prefix(c Cut) *Computation {
	if !comp.Consistent(c) {
		panic(fmt.Sprintf("computation: Prefix of inconsistent cut %v", c))
	}
	sub := &Computation{
		events:     make([][]*Event, comp.N()),
		initial:    comp.initial,
		vals:       make([]map[string][]int, comp.N()),
		varsByProc: comp.varsByProc,
		sends:      make(map[int]*Event),
		recvs:      make(map[int]*Event),
	}
	for i, k := range c {
		sub.events[i] = comp.events[i][:k]
		cols := make(map[string][]int, len(comp.vals[i]))
		for name, col := range comp.vals[i] {
			cols[name] = col[:k+1]
		}
		sub.vals[i] = cols
		for _, e := range sub.events[i] {
			switch e.Kind {
			case Send:
				sub.sends[e.Msg] = e
			case Receive:
				sub.recvs[e.Msg] = e
			}
		}
	}
	return sub
}

// SomeLinearization returns one maximal consistent cut sequence
// ∅ = G0 ▷ G1 ▷ … ▷ Gl = E, choosing at each step the enabled event of the
// lowest-numbered process. Observer-independent predicates can be detected
// by examining any single such observation.
func (comp *Computation) SomeLinearization() []Cut {
	cur := comp.InitialCut()
	seq := []Cut{cur.Copy()}
	total := comp.TotalEvents()
	for s := 0; s < total; s++ {
		advanced := false
		for i := range cur {
			if comp.EnabledEvent(cur, i) {
				cur[i]++
				seq = append(seq, cur.Copy())
				advanced = true
				break
			}
		}
		if !advanced {
			// Cannot happen in a valid computation: some minimal event of
			// the remainder is always enabled.
			panic("computation: no enabled event before reaching the final cut")
		}
	}
	return seq
}

package computation

import (
	"fmt"
	"sort"

	"repro/internal/vclock"
)

// Builder constructs a Computation event by event, computing vector clocks
// as it goes. Methods that add events return the *Event so callers can
// attach labels and variable assignments fluently; Build validates and
// freezes the result.
//
// A Builder is not safe for concurrent use; callers recording from
// multiple goroutines must serialize access (package dist does exactly
// that).
type Builder struct {
	n       int
	events  [][]*Event
	clocks  []vclock.VC // running clock per process
	initial []map[string]int
	nextMsg int
	sends   map[int]*Event
	recvs   map[int]*Event
	err     error
}

// Msg is an opaque handle for a message created by Send and consumed by
// Receive.
type Msg struct{ id int }

// NewBuilder returns a builder for a computation with n processes
// (numbered 0..n-1).
func NewBuilder(n int) *Builder {
	if n <= 0 {
		panic("computation: builder needs at least one process")
	}
	b := &Builder{
		n:       n,
		events:  make([][]*Event, n),
		clocks:  make([]vclock.VC, n),
		initial: make([]map[string]int, n),
		sends:   make(map[int]*Event),
		recvs:   make(map[int]*Event),
	}
	for i := 0; i < n; i++ {
		b.clocks[i] = vclock.New(n)
		b.initial[i] = make(map[string]int)
	}
	return b
}

// SetInitial assigns the initial value of a variable on process i (local
// state 0). Variables not set initially default to 0 once first assigned.
func (b *Builder) SetInitial(i int, name string, value int) *Builder {
	b.checkProc(i)
	b.initial[i][name] = value
	return b
}

func (b *Builder) checkProc(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("computation: process %d out of range [0,%d)", i, b.n))
	}
}

func (b *Builder) addEvent(i int, kind Kind, msg int) *Event {
	b.checkProc(i)
	b.clocks[i].Tick(i)
	e := &Event{
		Proc:  i,
		Index: len(b.events[i]) + 1,
		Kind:  kind,
		Msg:   msg,
		Clock: b.clocks[i].Copy(),
	}
	b.events[i] = append(b.events[i], e)
	return e
}

// Internal appends an internal event on process i.
func (b *Builder) Internal(i int) *Event {
	return b.addEvent(i, Internal, 0)
}

// Send appends a send event on process i and returns the event and a
// message handle to pass to Receive.
func (b *Builder) Send(i int) (*Event, Msg) {
	b.nextMsg++
	e := b.addEvent(i, Send, b.nextMsg)
	b.sends[b.nextMsg] = e
	return e, Msg{b.nextMsg}
}

// Receive appends a receive event on process i consuming message m. The
// receiver's clock absorbs the sender's clock at the send event. Receiving
// a message twice, an unknown message, or a message on the sending process
// records an error reported by Build.
func (b *Builder) Receive(i int, m Msg) *Event {
	b.checkProc(i)
	s, ok := b.sends[m.id]
	if !ok {
		b.fail(fmt.Errorf("receive of unknown message %d on process %d", m.id, i))
		return b.addEvent(i, Receive, m.id)
	}
	if _, dup := b.recvs[m.id]; dup {
		b.fail(fmt.Errorf("message %d received twice", m.id))
	}
	if s.Proc == i {
		b.fail(fmt.Errorf("message %d received by its sender P%d", m.id, i+1))
	}
	b.clocks[i].MergeInto(s.Clock)
	e := b.addEvent(i, Receive, m.id)
	b.recvs[m.id] = e
	return e
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// WithLabel sets the label of e and returns e.
func WithLabel(e *Event, label string) *Event {
	e.Label = label
	return e
}

// Set records a variable assignment performed by event e and returns e.
func Set(e *Event, name string, value int) *Event {
	if e.Sets == nil {
		e.Sets = make(map[string]int)
	}
	e.Sets[name] = value
	return e
}

// Build validates the accumulated events and returns the immutable
// computation.
func (b *Builder) Build() (*Computation, error) {
	if b.err != nil {
		return nil, fmt.Errorf("computation: %w", b.err)
	}
	comp := &Computation{
		events:     b.events,
		initial:    b.initial,
		sends:      b.sends,
		recvs:      b.recvs,
		vals:       make([]map[string][]int, b.n),
		varsByProc: make([][]string, b.n),
	}
	// Materialize per-state valuations so Value is O(1).
	for i := 0; i < b.n; i++ {
		names := make(map[string]bool)
		for name := range b.initial[i] {
			names[name] = true
		}
		for _, e := range b.events[i] {
			for name := range e.Sets {
				names[name] = true
			}
		}
		cols := make(map[string][]int, len(names))
		sorted := make([]string, 0, len(names))
		for name := range names {
			sorted = append(sorted, name)
			col := make([]int, len(b.events[i])+1)
			col[0] = b.initial[i][name]
			for k, e := range b.events[i] {
				if v, ok := e.Sets[name]; ok {
					col[k+1] = v
				} else {
					col[k+1] = col[k]
				}
			}
			cols[name] = col
		}
		sort.Strings(sorted)
		comp.vals[i] = cols
		comp.varsByProc[i] = sorted
	}
	return comp, nil
}

// MustBuild is Build that panics on error, for tests and fixed fixtures.
func (b *Builder) MustBuild() *Computation {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

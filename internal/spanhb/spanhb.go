// Package spanhb lowers OTel-style distributed trace spans onto the
// happened-before model, so the Table 1 detection algorithms run over the
// trace shapes real systems actually emit.
//
// The lowering maps each service to a process, each span's start and end
// to events on that process, and each cross-service causal relation —
// parent/child nesting and explicit span links — to a message, so the
// vector clocks computed by internal/computation capture exactly the
// causality the trace asserts. Spans of the detector's own pipeline
// tracer (internal/obs) convert via FromObs, closing the dogfood loop:
// the server's detection of a computation is itself a computation the
// server can detect predicates on.
package spanhb

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"encoding/json"

	"repro/internal/obs"
)

// Link is an explicit causal edge from another span to the span holding
// the link — OTel span links, the escape hatch for causality that
// parent/child nesting cannot express (batch consumers, scatter/gather).
type Link struct {
	TraceID string `json:"traceID,omitempty"`
	SpanID  string `json:"spanID"`
}

// Span is one OTel-style span: the unit of ingest. Only the fields the
// happened-before lowering needs are modeled; unknown JSON fields are
// ignored so real exporter output can be fed in unmodified.
//
// Attrs carry integer-valued span attributes; they become the process
// variables predicates range over.
type Span struct {
	TraceID  string         `json:"traceID,omitempty"`
	SpanID   string         `json:"spanID"`
	ParentID string         `json:"parentID,omitempty"`
	Service  string         `json:"service"`
	Name     string         `json:"name,omitempty"`
	StartNS  int64          `json:"startTimeUnixNano"`
	EndNS    int64          `json:"endTimeUnixNano"`
	Links    []Link         `json:"links,omitempty"`
	Attrs    map[string]int `json:"attrs,omitempty"`
}

// MaxLineBytes bounds one JSONL span line; a longer line is a malformed
// input, not a reason to allocate without limit.
const MaxLineBytes = 1 << 20

// Decode reads spans from OTel-style JSONL: one span object per line,
// blank lines ignored. Lines in the pipeline tracer's own record format
// (internal/obs, as written by `hbserver -span-jsonl`) are accepted too
// and converted as FromObs would, so a span file the server wrote about
// itself feeds straight back in. It validates what the lowering relies
// on — every span has an id and a service, ends at or after it starts,
// and ids are unique — and reports the offending line number otherwise.
func Decode(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLineBytes)
	var spans []Span
	seen := make(map[string]int)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(b, &s); err != nil {
			var ok bool
			if s, ok = decodeObsLine(b); !ok {
				return nil, fmt.Errorf("spanhb: line %d: %w", line, err)
			}
		}
		if s.SpanID == "" {
			var ok bool
			if s, ok = decodeObsLine(b); !ok {
				return nil, fmt.Errorf("spanhb: line %d: span has no spanID", line)
			}
		}
		if s.Service == "" {
			return nil, fmt.Errorf("spanhb: line %d: span %q has no service", line, s.SpanID)
		}
		if s.EndNS < s.StartNS {
			return nil, fmt.Errorf("spanhb: line %d: span %q ends before it starts", line, s.SpanID)
		}
		if prev, dup := seen[s.SpanID]; dup {
			return nil, fmt.Errorf("spanhb: line %d: duplicate spanID %q (first on line %d)", line, s.SpanID, prev)
		}
		seen[s.SpanID] = line
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("spanhb: %w", err)
	}
	return spans, nil
}

// FromObs converts completed spans of the pipeline tracer (internal/obs)
// into ingestible spans — the dogfood path. The service comes from the
// "service" attribute the server sets on every pipeline span; records
// without one (or without an id) are skipped. Integer-valued attributes
// survive; everything else is dropped, since process variables are ints.
func FromObs(recs []obs.SpanRecord) []Span {
	spans := make([]Span, 0, len(recs))
	for _, r := range recs {
		if s, ok := fromRecord(r); ok {
			spans = append(spans, s)
		}
	}
	return spans
}

// decodeObsLine attempts one JSONL line as a pipeline tracer record —
// the Decode fallback that lets `hbserver -span-jsonl` output feed
// straight back into `-spans`.
func decodeObsLine(b []byte) (Span, bool) {
	var r obs.SpanRecord
	if err := json.Unmarshal(b, &r); err != nil {
		return Span{}, false
	}
	return fromRecord(r)
}

// fromRecord converts one tracer record; ok is false when the record
// lacks what the lowering needs (id, service attribute, parseable ts).
func fromRecord(r obs.SpanRecord) (Span, bool) {
	if r.ID == "" {
		return Span{}, false
	}
	svc, ok := r.Attrs["service"].(string)
	if !ok || svc == "" {
		return Span{}, false
	}
	start, err := time.Parse(time.RFC3339Nano, r.TS)
	if err != nil {
		return Span{}, false
	}
	s := Span{
		TraceID:  r.Trace,
		SpanID:   r.ID,
		ParentID: r.Parent,
		Service:  svc,
		Name:     r.Span,
		StartNS:  start.UnixNano(),
		EndNS:    start.UnixNano() + r.DurUS*int64(time.Microsecond),
	}
	for k, v := range r.Attrs {
		if k == "service" {
			continue
		}
		n, ok := intAttr(v)
		if !ok {
			continue
		}
		if s.Attrs == nil {
			s.Attrs = make(map[string]int)
		}
		s.Attrs[k] = n
	}
	return s, true
}

// intAttr coerces the attribute representations that survive a JSON
// round-trip (float64) and the in-memory ones (int variants, bool).
func intAttr(v any) (int, bool) {
	switch x := v.(type) {
	case int:
		return x, true
	case int64:
		return int(x), true
	case float64:
		return int(x), true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

package spanhb

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/computation"
)

// Builtin variables maintained on every process by the lowering, beside
// the span attributes. Attribute keys that collide with a builtin are
// dropped (the builtin wins) so the invariants below always hold.
const (
	// VarInflight gauges the spans currently open on the process.
	VarInflight = "inflight"
	// VarStarted counts spans started on the process (monotone).
	VarStarted = "started"
	// VarDone counts spans completed on the process (monotone).
	VarDone = "done"
)

// Options tunes the lowering.
type Options struct {
	// PersistAttrs keeps a span's attribute values on its process after
	// the span ends. The default (false) treats attributes as gauges and
	// resets them to zero at span end — the right reading for external
	// traces, where an attribute describes the span, not the service.
	// The dogfood path persists them, so latched facts ("this session
	// saw an init") stay visible to AG predicates.
	PersistAttrs bool
}

// Result is a lowered trace: the computation plus the accounting a
// caller needs to judge coverage.
type Result struct {
	Comp     *computation.Computation
	Services []string // sorted; Services[i] is process i's service name
	Spans    int      // spans lowered
	Events   int      // events in the computation (incl. sends/receives)
	Edges    int      // cross-service causal edges lowered as messages
	// SkewDropped counts causal edges contradicted by the timestamps
	// (e.g. a child starting before its parent): clock skew between
	// services. Dropping them keeps the computation consistent; the
	// count tells the caller how much causality was lost.
	SkewDropped int
}

// node identifies one lowered event: a span's start or end.
type node struct {
	span int  // index into spans
	end  bool // false = start event, true = end event
}

func (n node) key(spans []Span) nodeKey {
	s := spans[n.span]
	ts := s.StartNS
	if n.end {
		ts = s.EndNS
	}
	return nodeKey{ts: ts, service: s.Service, spanID: s.SpanID, end: n.end}
}

// nodeKey is the deterministic ordering of lowered events: timestamp,
// then service, then span id, then start-before-end. Every tie in the
// input resolves the same way on every run, so lowering is reproducible.
type nodeKey struct {
	ts      int64
	service string
	spanID  string
	end     bool
}

func (a nodeKey) less(b nodeKey) bool {
	if a.ts != b.ts {
		return a.ts < b.ts
	}
	if a.service != b.service {
		return a.service < b.service
	}
	if a.spanID != b.spanID {
		return a.spanID < b.spanID
	}
	return !a.end && b.end
}

// Lower maps spans onto the happened-before model. Services become
// processes (sorted by name); each span start and end becomes an
// internal event on its service's process, in timestamp order; each
// cross-service causal relation — parent start before child start,
// child end before parent end, link source end before link target start
// — becomes a message, so vector clocks carry exactly the causality the
// trace asserts. Relations whose timestamps contradict the causal
// direction are dropped and counted as skew. A causal cycle (possible
// only with skewed cross-trace links) is an error.
func Lower(spans []Span, opt Options) (*Result, error) {
	if len(spans) == 0 {
		return nil, fmt.Errorf("spanhb: no spans to lower")
	}

	// Services → processes, sorted for determinism.
	svcSet := make(map[string]int)
	for _, s := range spans {
		svcSet[s.Service] = 0
	}
	services := make([]string, 0, len(svcSet))
	for svc := range svcSet {
		services = append(services, svc)
	}
	sort.Strings(services)
	for i, svc := range services {
		svcSet[svc] = i
	}

	byID := make(map[string]int, len(spans))
	for i, s := range spans {
		if _, dup := byID[s.SpanID]; dup {
			return nil, fmt.Errorf("spanhb: duplicate spanID %q", s.SpanID)
		}
		byID[s.SpanID] = i
	}

	// Nodes: 2 per span (start = 2i, end = 2i+1).
	id := func(n node) int {
		if n.end {
			return 2*n.span + 1
		}
		return 2 * n.span
	}
	nodes := make([]node, 2*len(spans))
	for i := range spans {
		nodes[2*i] = node{span: i}
		nodes[2*i+1] = node{span: i, end: true}
	}

	adj := make([][]int, len(nodes))
	indeg := make([]int, len(nodes))
	addEdge := func(from, to node) {
		f, t := id(from), id(to)
		adj[f] = append(adj[f], t)
		indeg[t]++
	}

	// Program order: each process's events in deterministic timestamp
	// order, chained. This also sequences same-service parent/child
	// relations without needing a message.
	perProc := make([][]node, len(services))
	for i, s := range spans {
		p := svcSet[s.Service]
		perProc[p] = append(perProc[p], node{span: i}, node{span: i, end: true})
	}
	for _, ns := range perProc {
		sort.Slice(ns, func(a, b int) bool { return ns[a].key(spans).less(ns[b].key(spans)) })
		for k := 1; k < len(ns); k++ {
			addEdge(ns[k-1], ns[k])
		}
	}

	// Cross-service causal relations become message edges. msgEdge pairs
	// lower as: send right after the source event, receive right before
	// the target event.
	type msgEdge struct{ from, to node }
	var msgs []msgEdge
	skew := 0
	causal := func(from, to node) {
		fk, tk := from.key(spans), to.key(spans)
		if tk.ts < fk.ts {
			skew++ // the trace asserts causality the clocks contradict
			return
		}
		msgs = append(msgs, msgEdge{from, to})
		addEdge(from, to)
	}
	for i, s := range spans {
		if pi, ok := byID[s.ParentID]; ok && s.ParentID != "" && spans[pi].Service != s.Service {
			// The parent caused the child: parent.start → child.start.
			// The child's completion flows back: child.end → parent.end.
			causal(node{span: pi}, node{span: i})
			causal(node{span: i, end: true}, node{span: pi, end: true})
		}
		for _, l := range s.Links {
			if li, ok := byID[l.SpanID]; ok && spans[li].Service != s.Service {
				// A link names a span whose completion this span follows.
				causal(node{span: li, end: true}, node{span: i})
			}
		}
	}

	// Kahn's algorithm with a deterministic ready heap: the emission
	// order is a linearization of the happened-before order that breaks
	// ties by nodeKey, so identical inputs lower identically.
	h := &nodeHeap{spans: spans}
	for _, n := range nodes {
		if indeg[id(n)] == 0 {
			heap.Push(h, n)
		}
	}
	b := computation.NewBuilder(len(services))
	for p := range services {
		b.SetInitial(p, VarInflight, 0)
		b.SetInitial(p, VarStarted, 0)
		b.SetInitial(p, VarDone, 0)
	}
	// Per-process running values of the builtins, and incoming message
	// handles keyed by target node.
	inflight := make([]int, len(services))
	started := make([]int, len(services))
	done := make([]int, len(services))
	pending := make(map[int][]computation.Msg) // target node id → msgs to receive
	outgoing := make(map[int][]int)            // source node id → target node ids, emission order
	for _, m := range msgs {
		outgoing[id(m.from)] = append(outgoing[id(m.from)], id(m.to))
	}
	emitted := 0
	for h.Len() > 0 {
		n := heap.Pop(h).(node)
		ni := id(n)
		s := spans[n.span]
		p := svcSet[s.Service]

		// Receives first: the causal inputs land immediately before the
		// event they enable.
		for _, m := range pending[ni] {
			b.Receive(p, m)
		}
		delete(pending, ni)

		e := b.Internal(p)
		label := s.Name
		if label == "" {
			label = s.SpanID
		}
		if n.end {
			computation.WithLabel(e, label+":end")
			inflight[p]--
			done[p]++
			computation.Set(e, VarInflight, inflight[p])
			computation.Set(e, VarDone, done[p])
			if !opt.PersistAttrs {
				for _, k := range sortedKeys(s.Attrs) {
					if !builtin(k) {
						computation.Set(e, k, 0)
					}
				}
			}
		} else {
			computation.WithLabel(e, label+":start")
			inflight[p]++
			started[p]++
			computation.Set(e, VarInflight, inflight[p])
			computation.Set(e, VarStarted, started[p])
			for _, k := range sortedKeys(s.Attrs) {
				if !builtin(k) {
					computation.Set(e, k, s.Attrs[k])
				}
			}
		}

		// Sends after: the causal outputs leave immediately after the
		// event that produced them.
		for _, ti := range outgoing[ni] {
			_, m := b.Send(p)
			pending[ti] = append(pending[ti], m)
		}

		for _, ti := range adj[ni] {
			indeg[ti]--
			if indeg[ti] == 0 {
				heap.Push(h, nodes[ti])
			}
		}
		emitted++
	}
	if emitted != len(nodes) {
		return nil, fmt.Errorf("spanhb: causal cycle among spans (%d of %d events orderable)", emitted, len(nodes))
	}

	comp, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("spanhb: %w", err)
	}
	return &Result{
		Comp:        comp,
		Services:    services,
		Spans:       len(spans),
		Events:      comp.TotalEvents(),
		Edges:       len(msgs),
		SkewDropped: skew,
	}, nil
}

func builtin(k string) bool {
	return k == VarInflight || k == VarStarted || k == VarDone
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// nodeHeap is the deterministic ready queue of Kahn's algorithm.
type nodeHeap struct {
	spans []Span
	ns    []node
}

func (h *nodeHeap) Len() int { return len(h.ns) }
func (h *nodeHeap) Less(a, b int) bool {
	return h.ns[a].key(h.spans).less(h.ns[b].key(h.spans))
}
func (h *nodeHeap) Swap(a, b int)  { h.ns[a], h.ns[b] = h.ns[b], h.ns[a] }
func (h *nodeHeap) Push(x any)     { h.ns = append(h.ns, x.(node)) }
func (h *nodeHeap) Pop() (x any)   { x, h.ns = h.ns[len(h.ns)-1], h.ns[:len(h.ns)-1]; return }
func (h *nodeHeap) String() string { return fmt.Sprintf("%d ready", len(h.ns)) }

var _ heap.Interface = (*nodeHeap)(nil)

package spanhb

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// rpc returns a two-service client/server trace: the client opens a
// request span, the server handles it in a child span that finishes
// before the client span does.
func rpc() []Span {
	return []Span{
		{TraceID: "t1", SpanID: "c1", Service: "client", Name: "GET /x", StartNS: 100, EndNS: 500},
		{TraceID: "t1", SpanID: "s1", ParentID: "c1", Service: "server", Name: "handle", StartNS: 200, EndNS: 400,
			Attrs: map[string]int{"status": 200}},
	}
}

func TestDecodeValidatesInput(t *testing.T) {
	good := `{"spanID":"a","service":"x","startTimeUnixNano":1,"endTimeUnixNano":2}

{"spanID":"b","service":"y","startTimeUnixNano":1,"endTimeUnixNano":2,"links":[{"spanID":"a"}]}
`
	spans, err := Decode(strings.NewReader(good))
	if err != nil || len(spans) != 2 {
		t.Fatalf("Decode = %d spans, err %v", len(spans), err)
	}
	if spans[1].Links[0].SpanID != "a" {
		t.Errorf("link lost: %+v", spans[1])
	}
	for name, bad := range map[string]string{
		"no id":        `{"service":"x","startTimeUnixNano":1,"endTimeUnixNano":2}`,
		"no service":   `{"spanID":"a","startTimeUnixNano":1,"endTimeUnixNano":2}`,
		"ends early":   `{"spanID":"a","service":"x","startTimeUnixNano":5,"endTimeUnixNano":2}`,
		"bad json":     `{"spanID":`,
		"duplicate id": "{\"spanID\":\"a\",\"service\":\"x\",\"startTimeUnixNano\":1,\"endTimeUnixNano\":2}\n{\"spanID\":\"a\",\"service\":\"y\",\"startTimeUnixNano\":1,\"endTimeUnixNano\":2}",
	} {
		if _, err := Decode(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: Decode accepted %q", name, bad)
		}
	}
}

func TestLowerSimpleRPC(t *testing.T) {
	r, err := Lower(rpc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Services) != 2 || r.Services[0] != "client" || r.Services[1] != "server" {
		t.Fatalf("services = %v", r.Services)
	}
	if r.Spans != 2 || r.Edges != 2 || r.SkewDropped != 0 {
		t.Fatalf("spans=%d edges=%d skew=%d, want 2/2/0", r.Spans, r.Edges, r.SkewDropped)
	}
	comp := r.Comp

	// The trace's causality must be exactly the computation's: the
	// client's request start happens before the server's handling, and
	// the handling happens before the request completes.
	find := func(label string) *computation.Event {
		for i := 0; i < comp.N(); i++ {
			for _, e := range comp.Events(i) {
				if e.Label == label {
					return e
				}
			}
		}
		t.Fatalf("no event labeled %q", label)
		return nil
	}
	cStart, cEnd := find("GET /x:start"), find("GET /x:end")
	sStart, sEnd := find("handle:start"), find("handle:end")
	if !comp.HappenedBefore(cStart, sStart) {
		t.Error("client start does not happen before server handle start")
	}
	if !comp.HappenedBefore(sEnd, cEnd) {
		t.Error("server handle end does not happen before client end")
	}
	if !comp.HappenedBefore(sStart, cEnd) {
		// Via handle end → client end, transitively.
		t.Error("expected server start ordered before client end")
	}

	// Validate every per-process vector-clock timeline against the
	// vclock consistency oracle, and every message against the
	// sent-before-received order.
	for i := 0; i < comp.N(); i++ {
		clocks := make([]vclock.VC, 0, comp.Len(i))
		for _, e := range comp.Events(i) {
			clocks = append(clocks, e.Clock)
		}
		if err := vclock.CheckTimeline(i, clocks); err != nil {
			t.Errorf("process %d (%s): %v", i, r.Services[i], err)
		}
	}
	for _, m := range comp.Messages() {
		s, rcv := comp.SendOf(m), comp.RecvOf(m)
		if rcv == nil {
			t.Fatalf("message %d never received", m)
		}
		if !s.Clock.Less(rcv.Clock) {
			t.Errorf("message %d: send clock %v not < recv clock %v", m, s.Clock, rcv.Clock)
		}
	}
}

func TestLowerBuiltinsAndAttrGauge(t *testing.T) {
	r, err := Lower(rpc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	comp := r.Comp
	srv := 1 // services sorted: client=0, server=1
	last := comp.Len(srv)
	if v, _ := comp.Value(srv, last, VarDone); v != 1 {
		t.Errorf("final done@server = %d, want 1", v)
	}
	if v, _ := comp.Value(srv, last, VarInflight); v != 0 {
		t.Errorf("final inflight@server = %d, want 0", v)
	}
	if v, _ := comp.Value(srv, last, "status"); v != 0 {
		t.Errorf("gauge attrs: final status@server = %d, want 0", v)
	}

	p, err := Lower(rpc(), Options{PersistAttrs: true})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Comp.Value(srv, p.Comp.Len(srv), "status"); v != 200 {
		t.Errorf("persisted attrs: final status@server = %d, want 200", v)
	}
}

func TestLowerSkewDropsContradictedEdges(t *testing.T) {
	spans := []Span{
		{SpanID: "p", Service: "a", StartNS: 300, EndNS: 350},
		// Child "starts" before its parent: cross-service clock skew.
		{SpanID: "c", ParentID: "p", Service: "b", StartNS: 100, EndNS: 200},
	}
	r, err := Lower(spans, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// parent.start→child.start is contradicted (300 > 100); the
	// completion edge child.end→parent.end (200 ≤ 350) survives.
	if r.SkewDropped != 1 || r.Edges != 1 {
		t.Errorf("skew=%d edges=%d, want 1/1", r.SkewDropped, r.Edges)
	}
}

func TestLowerLinkEdge(t *testing.T) {
	spans := []Span{
		{SpanID: "prod", Service: "producer", StartNS: 100, EndNS: 200},
		{SpanID: "cons", Service: "consumer", StartNS: 300, EndNS: 400,
			Links: []Link{{SpanID: "prod"}}},
	}
	r, err := Lower(spans, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Edges != 1 {
		t.Fatalf("edges = %d, want 1 (link)", r.Edges)
	}
	comp := r.Comp
	// producer end (consumer sorted after producer? services sorted:
	// consumer=0, producer=1). Link: prod.end happens before cons.start.
	prodEnd := comp.Events(1)[len(comp.Events(1))-1]
	consStart := comp.Events(0)[0]
	for _, e := range comp.Events(0) {
		if e.Label == "cons:start" {
			consStart = e
		}
	}
	if !comp.HappenedBefore(prodEnd, consStart) {
		t.Error("link edge not causal: producer end must happen before consumer start")
	}
}

func TestLowerDeterministic(t *testing.T) {
	// Identical inputs (with timestamp ties across services) must lower
	// to byte-identical serialized computations.
	spans := []Span{
		{SpanID: "a", Service: "s1", StartNS: 100, EndNS: 300},
		{SpanID: "b", Service: "s2", StartNS: 100, EndNS: 300},
		{SpanID: "c", ParentID: "a", Service: "s2", StartNS: 150, EndNS: 250},
		{SpanID: "d", ParentID: "b", Service: "s1", StartNS: 150, EndNS: 250},
	}
	var out [2]bytes.Buffer
	for i := range out {
		r, err := Lower(spans, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Encode(&out[i], r.Comp); err != nil {
			t.Fatal(err)
		}
	}
	if out[0].String() != out[1].String() {
		t.Error("lowering is not deterministic")
	}
}

func TestLowerCycleIsAnError(t *testing.T) {
	// Two spans at identical instants, each linking the other: no valid
	// happened-before order exists.
	spans := []Span{
		{SpanID: "x", Service: "a", StartNS: 100, EndNS: 100, Links: []Link{{SpanID: "y"}}},
		{SpanID: "y", Service: "b", StartNS: 100, EndNS: 100, Links: []Link{{SpanID: "x"}}},
	}
	if _, err := Lower(spans, Options{}); err == nil {
		t.Fatal("cycle lowered without error")
	}
}

func TestDetectOverLoweredTrace(t *testing.T) {
	// The point of the adapter: Table 1 predicates run over real trace
	// shapes. Two overlapping requests on the server push inflight to 2
	// in some (EF) but not every (AG) observation order.
	spans := []Span{
		{SpanID: "c1", Service: "client", Name: "req1", StartNS: 100, EndNS: 900},
		{SpanID: "c2", Service: "client", Name: "req2", StartNS: 150, EndNS: 950},
		{SpanID: "s1", ParentID: "c1", Service: "server", Name: "h1", StartNS: 200, EndNS: 600},
		{SpanID: "s2", ParentID: "c2", Service: "server", Name: "h2", StartNS: 300, EndNS: 700},
	}
	r, err := Lower(spans, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Process order: client=1, server=2 (1-based in formulas).
	res, err := core.Detect(r.Comp, ctl.MustParse("EF(inflight@P2 >= 2)"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Error("EF(inflight@P2 >= 2) should hold: the handler spans overlap")
	}
	res, err = core.Detect(r.Comp, ctl.MustParse("AG(inflight@P2 <= 2)"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Error("AG(inflight@P2 <= 2) should hold: only two handler spans exist")
	}
}

func TestFromObsRoundTrip(t *testing.T) {
	ring := obs.NewSpanRing(16)
	tr := obs.NewTracer(nil).Mirror(ring)
	root := tr.Start("session")
	root.Set("service", "session").Set("processes", 2)
	child := root.StartChild("frame")
	child.Set("service", "transport").Set("seq", 7)
	time.Sleep(time.Millisecond)
	child.End()
	root.End()
	// A record without a service attribute must be skipped.
	tr.Start("unattributed").End()

	recs, _ := ring.Snapshot()
	spans := FromObs(recs)
	if len(spans) != 2 {
		t.Fatalf("FromObs kept %d spans, want 2", len(spans))
	}
	byID := map[string]Span{}
	for _, s := range spans {
		byID[s.SpanID] = s
	}
	rootS := byID[rootCtxID(t, spans, "session")]
	childS := byID[rootCtxID(t, spans, "frame")]
	if childS.ParentID != rootS.SpanID || childS.TraceID != rootS.TraceID {
		t.Errorf("parent/trace lost: %+v vs %+v", childS, rootS)
	}
	if childS.Attrs["seq"] != 7 || rootS.Attrs["processes"] != 2 {
		t.Errorf("int attrs lost: %+v %+v", childS.Attrs, rootS.Attrs)
	}
	if childS.EndNS < childS.StartNS {
		t.Errorf("span duration negative: %+v", childS)
	}
	if _, err := Lower(spans, Options{PersistAttrs: true}); err != nil {
		t.Fatalf("lowering the tracer's own spans: %v", err)
	}
}

func rootCtxID(t *testing.T, spans []Span, name string) string {
	t.Helper()
	for _, s := range spans {
		if s.Name == name {
			return s.SpanID
		}
	}
	t.Fatalf("no span named %q", name)
	return ""
}

func TestFromObsJSONRoundTrip(t *testing.T) {
	// Spans serialized by the tracer and re-read as JSONL (float64
	// attrs) convert the same as in-memory ones.
	var b strings.Builder
	tr := obs.NewTracer(&b)
	sp := tr.Start("detect")
	sp.Set("service", "engine").Set("cuts", 42)
	sp.End()
	var rec obs.SpanRecord
	if err := json.Unmarshal([]byte(strings.TrimSpace(b.String())), &rec); err != nil {
		t.Fatal(err)
	}
	spans := FromObs([]obs.SpanRecord{rec})
	if len(spans) != 1 || spans[0].Attrs["cuts"] != 42 || spans[0].Service != "engine" {
		t.Fatalf("FromObs over JSON round-trip = %+v", spans)
	}
}

func TestDecodeObsRecordLines(t *testing.T) {
	// A span file written by the tracer itself (`hbserver -span-jsonl`)
	// decodes directly — the on-disk dogfood path — and mixes freely
	// with OTel-shaped lines.
	var b strings.Builder
	tr := obs.NewTracer(&b)
	root := tr.Start("session")
	root.Set("service", "session")
	child := root.StartChild("frame")
	child.Set("service", "transport").Set("seq", 7)
	child.End()
	root.End()
	b.WriteString(`{"traceID":"t9","spanID":"x1","service":"client","startTimeUnixNano":1,"endTimeUnixNano":2}` + "\n")
	spans, err := Decode(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("decoded %d spans, want 3: %+v", len(spans), spans)
	}
	frame := spans[0] // the tracer emits completed spans: child first
	if frame.Name != "frame" || frame.Service != "transport" || frame.Attrs["seq"] != 7 {
		t.Errorf("frame span = %+v", frame)
	}
	if frame.ParentID != spans[1].SpanID {
		t.Errorf("frame parent %q, want session id %q", frame.ParentID, spans[1].SpanID)
	}
	if spans[2].SpanID != "x1" || spans[2].Service != "client" {
		t.Errorf("OTel line = %+v", spans[2])
	}
	// A tracer record without a service attribute is still an error, not
	// a silent skip.
	bad := `{"ts":"2026-01-01T00:00:00Z","span":"detect","dur_us":1,"trace":"t","id":"s-1"}` + "\n"
	if _, err := Decode(strings.NewReader(bad)); err == nil {
		t.Error("record without service attr decoded without error")
	}
}

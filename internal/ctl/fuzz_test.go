package ctl

import (
	"testing"
)

// FuzzParse asserts the parser never panics and that successfully parsed
// formulas render to a string that reparses to the same rendering (a
// fixed point after one round trip).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"EF(conj(x@P1 >= 2, y@P2 == 0))",
		"AG(!(crit@P1 == 1 && crit@P2 == 1))",
		"E[conj(z@P3 < 6, x@P1 < 4) U channelsEmpty && x@P1 > 1]",
		"A[disj(try@P1 == 1) U disj(crit@P1 == 1)]",
		"EF(received(3)) || terminated",
		"!(true) && false",
		"E[[", "conj(", "x@@P1 < 3", "EF(AG(EF(true)))",
		"x@P1 < -999999999999999999999",
		"))((", "U U U", "\x00\xff", "EF (  true )",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Parse(input)
		if err != nil {
			return
		}
		rendered := g.String()
		g2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering %q of %q does not reparse: %v", rendered, input, err)
		}
		if g2.String() != rendered {
			t.Fatalf("round trip unstable: %q → %q → %q", input, rendered, g2.String())
		}
	})
}

package ctl

import (
	"testing"

	"repro/internal/predicate"
)

func TestParseRoundTrip(t *testing.T) {
	// Parse, render, parse again: the second parse must equal the first
	// structurally (String is a fixed point after one round).
	inputs := []string{
		"EF(conj(x@P1 >= 2, y@P2 == 0))",
		"AG(!(crit@P1 == 1 && crit@P2 == 1))",
		"E[conj(z@P3 < 6, x@P1 < 4) U channelsEmpty && x@P1 > 1]",
		"A[disj(try@P1 == 1) U disj(crit@P1 == 1)]",
		"EG(channelsEmpty)",
		"AF(terminated)",
		"EF(received(3))",
		"true || false",
		"!(x@P1 != 0)",
		"EF(x@P1 <= -2)",
		"AG(channelEmpty(P1, P2))",
		"EF(atLeast(2, done@P1 == 1, done@P2 == 1, done@P3 == 1))",
		"AG(monotone(acks@P2 >= reqs@P1))",
	}
	for _, src := range inputs {
		f1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		f2, err := Parse(f1.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", f1.String(), src, err)
		}
		if f1.String() != f2.String() {
			t.Errorf("round trip unstable: %q → %q → %q", src, f1.String(), f2.String())
		}
	}
}

func TestParseStructure(t *testing.T) {
	f := MustParse("E[conj(z@P3 < 6) U channelsEmpty]")
	eu, ok := f.(EU)
	if !ok {
		t.Fatalf("got %T", f)
	}
	atom, ok := eu.P.(Atom)
	if !ok {
		t.Fatalf("P is %T", eu.P)
	}
	conj, ok := atom.P.(predicate.Conjunctive)
	if !ok || len(conj.Locals) != 1 {
		t.Fatalf("atom is %T (%v)", atom.P, atom.P)
	}
	vc := conj.Locals[0].(predicate.VarCmp)
	if vc.Proc != 2 || vc.Var != "z" || vc.Op != predicate.LT || vc.K != 6 {
		t.Errorf("VarCmp = %+v", vc)
	}
	if _, ok := eu.Q.(Atom).P.(predicate.ChannelsEmpty); !ok {
		t.Errorf("Q is %T", eu.Q.(Atom).P)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := MustParse("true && false || true")
	// && binds tighter than ||: (true && false) || true.
	or, ok := f.(Or)
	if !ok {
		t.Fatalf("top is %T, want Or", f)
	}
	if _, ok := or.L.(And); !ok {
		t.Errorf("left of || is %T, want And", or.L)
	}
	f2 := MustParse("!true && false")
	and, ok := f2.(And)
	if !ok {
		t.Fatalf("top is %T, want And", f2)
	}
	if _, ok := and.L.(Not); !ok {
		t.Errorf("left of && is %T, want Not", and.L)
	}
	// Parentheses override.
	f3 := MustParse("true && (false || true)")
	if _, ok := f3.(And); !ok {
		t.Fatalf("top is %T, want And", f3)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"EF(",
		"EF()",
		"EF(x@P1 < )",
		"E[true U ]",
		"E[true false]",
		"conj()",
		"x@Q1 < 3",
		"x@P0 < 3",
		"x@P1 ~ 3",
		"x@P1 < 3 extra",
		"received(x)",
		"EF(x@P1 < 3))",
		"AG(x < 3)",
		"123",
	}
	for _, src := range bad {
		if f, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded: %v", src, f)
		}
	}
}

func TestParseNewAtoms(t *testing.T) {
	f := MustParse("channelEmpty(P2, P3)")
	ce, ok := f.(Atom).P.(predicate.ChannelEmpty)
	if !ok || ce.From != 1 || ce.To != 2 {
		t.Errorf("channelEmpty parsed as %#v", f)
	}
	g := MustParse("monotone(acks@P2 >= reqs@P1)")
	mg, ok := g.(Atom).P.(predicate.MonotoneGE)
	if !ok || mg.ProcY != 1 || mg.VarY != "acks" || mg.ProcX != 0 || mg.VarX != "reqs" {
		t.Errorf("monotone parsed as %#v", g)
	}
	h := MustParse("atLeast(2, a@P1 == 1, b@P2 == 1)")
	al, ok := h.(Atom).P.(predicate.AtLeastK)
	if !ok || al.K != 2 || len(al.Locals) != 2 {
		t.Errorf("atLeast parsed as %#v", h)
	}
	// atLeast with no locals is legal (vacuous for k ≤ 0).
	h0 := MustParse("atLeast(0)")
	if al0 := h0.(Atom).P.(predicate.AtLeastK); al0.K != 0 || len(al0.Locals) != 0 {
		t.Errorf("atLeast(0) parsed as %#v", h0)
	}
	for _, bad := range []string{
		"channelEmpty(P1)",
		"channelEmpty(P1, Q2)",
		"channelEmpty(P0, P1)",
		"monotone(a@P1 <= b@P2)",
		"monotone(a@P1 >= 3)",
		"atLeast(x, a@P1 == 1)",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad input did not panic")
		}
	}()
	MustParse("EF(")
}

func TestIsTemporal(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"x@P1 < 3", false},
		{"!(x@P1 < 3) && true", false},
		{"EF(x@P1 < 3)", true},
		{"true || AG(false)", true},
		{"E[true U false]", true},
	}
	for _, c := range cases {
		if got := IsTemporal(MustParse(c.src)); got != c.want {
			t.Errorf("IsTemporal(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestNegativeNumbers(t *testing.T) {
	f := MustParse("EF(x@P1 >= -5)")
	vc := f.(EF).F.(Atom).P.(predicate.VarCmp)
	if vc.K != -5 {
		t.Errorf("K = %d, want -5", vc.K)
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		f    Formula
		want string
	}{
		{EF{Atom{predicate.True}}, "EF(true)"},
		{AF{Atom{predicate.True}}, "AF(true)"},
		{EG{Atom{predicate.True}}, "EG(true)"},
		{AG{Atom{predicate.True}}, "AG(true)"},
		{EU{Atom{predicate.True}, Atom{predicate.False}}, "E[true U false]"},
		{AU{Atom{predicate.True}, Atom{predicate.False}}, "A[true U false]"},
		{Not{Atom{predicate.True}}, "!(true)"},
		{And{Atom{predicate.True}, Atom{predicate.False}}, "(true && false)"},
		{Or{Atom{predicate.True}, Atom{predicate.False}}, "(true || false)"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

// Package ctl defines the fragment of the branching-time temporal logic CTL
// used by the paper, interpreted over the lattice of consistent cuts of a
// distributed computation, plus a concrete syntax for the command-line
// tools.
//
// Path quantifiers range over maximal consistent cut sequences — sequences
// ∅ = G0 ▷ G1 ▷ … ▷ Gl = E stepping one event at a time and ending at the
// final cut. The derived operators follow the paper's Section 3:
//
//	EF(p) — possibly p        AF(p) — definitely p
//	EG(p) — controllable p    AG(p) — invariant p
//	E[p U q], A[p U q] — until
//
// One reading note: the paper's Section 3 definition of until requires p at
// the strictly interior cuts of the prefix ("0 < i < k"), while its own
// Theorem 7 and the intuition in Section 1 require p from the very first
// cut ("0 ≤ i < k", "p holds at all other global states along the prefix").
// This module adopts the latter, standard-CTL reading everywhere; the
// semantics are implemented once, in package explore, and every algorithm
// is validated against it.
package ctl

import (
	"fmt"

	"repro/internal/predicate"
)

// Formula is a CTL formula. The atoms are predicates over consistent cuts.
type Formula interface {
	fmt.Stringer
	isFormula()
}

// Atom lifts a non-temporal predicate into CTL.
type Atom struct {
	P predicate.Predicate
}

// Not is logical negation.
type Not struct {
	F Formula
}

// And is logical conjunction.
type And struct {
	L, R Formula
}

// Or is logical disjunction.
type Or struct {
	L, R Formula
}

// EF is "possibly": p holds somewhere on some maximal sequence.
type EF struct {
	F Formula
}

// AF is "definitely": every maximal sequence passes through a cut
// satisfying p.
type AF struct {
	F Formula
}

// EG is "controllable": some maximal sequence satisfies p at every cut.
type EG struct {
	F Formula
}

// AG is "invariant": p holds at every consistent cut.
type AG struct {
	F Formula
}

// EU is E[P U Q].
type EU struct {
	P, Q Formula
}

// AU is A[P U Q].
type AU struct {
	P, Q Formula
}

func (Atom) isFormula() {}
func (Not) isFormula()  {}
func (And) isFormula()  {}
func (Or) isFormula()   {}
func (EF) isFormula()   {}
func (AF) isFormula()   {}
func (EG) isFormula()   {}
func (AG) isFormula()   {}
func (EU) isFormula()   {}
func (AU) isFormula()   {}

// String implements fmt.Stringer.
func (f Atom) String() string { return f.P.String() }

// String implements fmt.Stringer.
func (f Not) String() string { return "!(" + f.F.String() + ")" }

// String implements fmt.Stringer.
func (f And) String() string { return "(" + f.L.String() + " && " + f.R.String() + ")" }

// String implements fmt.Stringer.
func (f Or) String() string { return "(" + f.L.String() + " || " + f.R.String() + ")" }

// String implements fmt.Stringer.
func (f EF) String() string { return "EF(" + f.F.String() + ")" }

// String implements fmt.Stringer.
func (f AF) String() string { return "AF(" + f.F.String() + ")" }

// String implements fmt.Stringer.
func (f EG) String() string { return "EG(" + f.F.String() + ")" }

// String implements fmt.Stringer.
func (f AG) String() string { return "AG(" + f.F.String() + ")" }

// String implements fmt.Stringer.
func (f EU) String() string { return "E[" + f.P.String() + " U " + f.Q.String() + "]" }

// String implements fmt.Stringer.
func (f AU) String() string { return "A[" + f.P.String() + " U " + f.Q.String() + "]" }

// IsTemporal reports whether f contains a temporal operator. The paper's
// fragment forbids nesting temporal operators; package core rejects such
// formulas.
func IsTemporal(f Formula) bool {
	switch g := f.(type) {
	case Atom:
		return false
	case Not:
		return IsTemporal(g.F)
	case And:
		return IsTemporal(g.L) || IsTemporal(g.R)
	case Or:
		return IsTemporal(g.L) || IsTemporal(g.R)
	default:
		return true
	}
}

package ctl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/predicate"
)

// Parse parses the concrete CTL syntax used by the command-line tools:
//
//	EF(conj(x@P1 >= 2, y@P2 == 0))
//	AG(!(crit@P1 == 1 && crit@P2 == 1))
//	E[conj(z@P3 < 6, x@P1 < 4) U channelsEmpty && x@P1 > 1]
//	A[disj(try@P1 == 1) U disj(crit@P1 == 1)]
//
// Grammar (whitespace-insensitive):
//
//	formula := and ('||' and)*
//	and     := unary ('&&' unary)*
//	unary   := '!' unary | primary
//	primary := ('EF'|'AF'|'EG'|'AG') '(' formula ')'
//	         | ('E'|'A') '[' formula 'U' formula ']'
//	         | '(' formula ')' | atom
//	atom    := ('conj'|'disj') '(' local (',' local)* ')'
//	         | 'channelsEmpty' | 'channelEmpty' '(' proc ',' proc ')'
//	         | 'terminated' | 'received' '(' int ')'
//	         | 'atLeast' '(' int (',' local)* ')'
//	         | 'monotone' '(' ident '@' proc '>=' ident '@' proc ')'
//	         | 'true' | 'false' | local
//	local   := ident '@' 'P' int op int        op ∈ {<, <=, ==, !=, >=, >}
//
// Process numbers in the syntax are 1-based, matching the paper.
func Parse(input string) (Formula, error) {
	p := &parser{toks: lex(input)}
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("ctl: trailing input at %q", p.peek().text)
	}
	return f, nil
}

// MustParse is Parse that panics on error, for fixtures.
func MustParse(input string) Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

type token struct {
	text string
	pos  int
}

func lex(input string) []token {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{input[i:j], i})
			i = j
		case unicode.IsDigit(c) || c == '-':
			j := i + 1
			for j < len(input) && unicode.IsDigit(rune(input[j])) {
				j++
			}
			toks = append(toks, token{input[i:j], i})
			i = j
		default:
			// Multi-character operators first.
			for _, op := range []string{"&&", "||", "<=", ">=", "==", "!="} {
				if strings.HasPrefix(input[i:], op) {
					toks = append(toks, token{op, i})
					i += 2
					goto next
				}
			}
			toks = append(toks, token{string(c), i})
			i++
		next:
		}
	}
	return toks
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.eof() {
		return token{"", -1}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) accept(text string) bool {
	if !p.eof() && p.toks[p.pos].text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if p.accept(text) {
		return nil
	}
	return fmt.Errorf("ctl: expected %q, got %q", text, p.peek().text)
}

func (p *parser) formula() (Formula, error) {
	f, err := p.and()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		g, err := p.and()
		if err != nil {
			return nil, err
		}
		f = Or{f, g}
	}
	return f, nil
}

func (p *parser) and() (Formula, error) {
	f, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		g, err := p.unary()
		if err != nil {
			return nil, err
		}
		f = And{f, g}
	}
	return f, nil
}

func (p *parser) unary() (Formula, error) {
	if p.accept("!") {
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not{f}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Formula, error) {
	t := p.peek()
	switch t.text {
	case "EF", "AF", "EG", "AG":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		switch t.text {
		case "EF":
			return EF{f}, nil
		case "AF":
			return AF{f}, nil
		case "EG":
			return EG{f}, nil
		default:
			return AG{f}, nil
		}
	case "E", "A":
		p.next()
		if err := p.expect("["); err != nil {
			return nil, err
		}
		l, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expect("U"); err != nil {
			return nil, err
		}
		r, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		if t.text == "E" {
			return EU{l, r}, nil
		}
		return AU{l, r}, nil
	case "(":
		p.next()
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	return p.atom()
}

func (p *parser) atom() (Formula, error) {
	t := p.peek()
	switch t.text {
	case "true":
		p.next()
		return Atom{predicate.True}, nil
	case "false":
		p.next()
		return Atom{predicate.False}, nil
	case "channelsEmpty":
		p.next()
		return Atom{predicate.ChannelsEmpty{}}, nil
	case "terminated":
		p.next()
		return Atom{predicate.Terminated{}}, nil
	case "received":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		id, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return Atom{predicate.Received{ID: id}}, nil
	case "channelEmpty":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		from, err := p.process()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		to, err := p.process()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return Atom{predicate.ChannelEmpty{From: from, To: to}}, nil
	case "monotone":
		// monotone(y@Pj >= x@Pi): the relational linear predicate for
		// nondecreasing variables.
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		yVar := p.next()
		if !isIdent(yVar.text) {
			return nil, fmt.Errorf("ctl: expected variable name, got %q", yVar.text)
		}
		if err := p.expect("@"); err != nil {
			return nil, err
		}
		procY, err := p.process()
		if err != nil {
			return nil, err
		}
		if err := p.expect(">="); err != nil {
			return nil, err
		}
		xVar := p.next()
		if !isIdent(xVar.text) {
			return nil, fmt.Errorf("ctl: expected variable name, got %q", xVar.text)
		}
		if err := p.expect("@"); err != nil {
			return nil, err
		}
		procX, err := p.process()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return Atom{predicate.MonotoneGE{ProcY: procY, VarY: yVar.text, ProcX: procX, VarX: xVar.text}}, nil
	case "atLeast":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		k, err := p.number()
		if err != nil {
			return nil, err
		}
		var locals []predicate.LocalPredicate
		for p.accept(",") {
			l, err := p.local()
			if err != nil {
				return nil, err
			}
			locals = append(locals, l)
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return Atom{predicate.AtLeastK{K: k, Locals: locals}}, nil
	case "conj", "disj":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var locals []predicate.LocalPredicate
		for {
			l, err := p.local()
			if err != nil {
				return nil, err
			}
			locals = append(locals, l)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if t.text == "conj" {
			return Atom{predicate.Conjunctive{Locals: locals}}, nil
		}
		return Atom{predicate.Disjunctive{Locals: locals}}, nil
	}
	l, err := p.local()
	if err != nil {
		return nil, err
	}
	return Atom{l}, nil
}

// process parses a 1-based process token "P<k>" and returns the 0-based
// index.
func (p *parser) process() (int, error) {
	proc := p.next()
	if len(proc.text) < 2 || proc.text[0] != 'P' {
		return 0, fmt.Errorf("ctl: expected process (e.g. P1), got %q", proc.text)
	}
	n, err := strconv.Atoi(proc.text[1:])
	if err != nil || n < 1 {
		return 0, fmt.Errorf("ctl: bad process %q", proc.text)
	}
	return n - 1, nil
}

func (p *parser) local() (predicate.LocalPredicate, error) {
	name := p.next()
	if name.pos < 0 || !isIdent(name.text) {
		return nil, fmt.Errorf("ctl: expected variable name, got %q", name.text)
	}
	if err := p.expect("@"); err != nil {
		return nil, err
	}
	proc, err := p.process()
	if err != nil {
		return nil, err
	}
	opTok := p.next()
	op := predicate.Op(opTok.text)
	switch op {
	case predicate.LT, predicate.LE, predicate.EQ, predicate.NE, predicate.GE, predicate.GT:
	default:
		return nil, fmt.Errorf("ctl: bad comparison operator %q", opTok.text)
	}
	k, err := p.number()
	if err != nil {
		return nil, err
	}
	return predicate.VarCmp{Proc: proc, Var: name.text, Op: op, K: k}, nil
}

func (p *parser) number() (int, error) {
	t := p.next()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("ctl: expected number, got %q", t.text)
	}
	return n, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		if !(unicode.IsLetter(c) || c == '_' || (i > 0 && unicode.IsDigit(c))) {
			return false
		}
	}
	return true
}

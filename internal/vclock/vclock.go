// Package vclock implements vector clocks for tracking the happened-before
// relation of Lamport in asynchronous message-passing systems.
//
// A vector clock V of size n assigns one logical-clock component per process.
// For events e and f with clocks V(e) and V(f), e happened-before f exactly
// when V(e) < V(f) in the componentwise order. Vector clocks therefore
// characterize the partial order (E, →) completely, which is what every
// detection algorithm in this module relies on.
package vclock

import (
	"fmt"
	"strings"
)

// VC is a vector clock. Index i holds the number of events of process i
// known to (causally preceding or equal to) the event stamped with this
// clock. The zero-length VC is valid and compares as all-zeros.
type VC []int

// New returns a zero vector clock for n processes.
func New(n int) VC { return make(VC, n) }

// Copy returns an independent copy of v.
func (v VC) Copy() VC {
	w := make(VC, len(v))
	copy(w, v)
	return w
}

// Tick increments the component of process i and returns v for chaining.
// It panics if i is out of range, as that is always a programming error.
func (v VC) Tick(i int) VC {
	v[i]++
	return v
}

// MergeInto sets v to the componentwise maximum of v and w. The two clocks
// must have the same length.
func (v VC) MergeInto(w VC) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vclock: merge of mismatched clocks (%d vs %d)", len(v), len(w)))
	}
	for i, x := range w {
		if x > v[i] {
			v[i] = x
		}
	}
}

// Merge returns a fresh clock holding the componentwise maximum of v and w.
func Merge(v, w VC) VC {
	u := v.Copy()
	u.MergeInto(w)
	return u
}

// LessEq reports whether v ≤ w componentwise.
func (v VC) LessEq(w VC) bool {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vclock: compare of mismatched clocks (%d vs %d)", len(v), len(w)))
	}
	for i, x := range v {
		if x > w[i] {
			return false
		}
	}
	return true
}

// Less reports whether v < w, i.e. v ≤ w and v ≠ w. This is exactly the
// happened-before relation between the events carrying these clocks.
func (v VC) Less(w VC) bool {
	return v.LessEq(w) && !w.LessEq(v)
}

// Equal reports componentwise equality.
func (v VC) Equal(w VC) bool {
	return v.LessEq(w) && w.LessEq(v)
}

// Concurrent reports whether neither v ≤ w nor w ≤ v holds, i.e. the events
// carrying these clocks are causally unrelated.
func (v VC) Concurrent(w VC) bool {
	return !v.LessEq(w) && !w.LessEq(v)
}

// String renders the clock as "[a b c]".
func (v VC) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprint(x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// CheckTimeline verifies that clocks is a valid vector-clock history for
// process i: the own component ticks by exactly one per event, no
// component ever regresses, and every clock has the same width. This is
// the consistency oracle adapters use to validate clocks they construct
// (e.g. lowering external trace spans onto the happened-before model).
func CheckTimeline(i int, clocks []VC) error {
	if len(clocks) == 0 {
		return nil
	}
	n := len(clocks[0])
	if i < 0 || i >= n {
		return fmt.Errorf("vclock: process %d out of range for width %d", i, n)
	}
	if clocks[0][i] != 1 {
		return fmt.Errorf("vclock: first clock of P%d has own component %d, want 1", i+1, clocks[0][i])
	}
	for k := 1; k < len(clocks); k++ {
		prev, cur := clocks[k-1], clocks[k]
		if len(cur) != n {
			return fmt.Errorf("vclock: clock %d of P%d has width %d, want %d", k, i+1, len(cur), n)
		}
		if cur[i] != prev[i]+1 {
			return fmt.Errorf("vclock: P%d event %d: own component %d, want %d", i+1, k+1, cur[i], prev[i]+1)
		}
		for j := range cur {
			if cur[j] < prev[j] {
				return fmt.Errorf("vclock: P%d event %d: component %d regresses %d → %d", i+1, k+1, j+1, prev[j], cur[j])
			}
		}
	}
	return nil
}

package vclock

import (
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	v := New(4)
	if len(v) != 4 {
		t.Fatalf("len = %d, want 4", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("component %d = %d, want 0", i, x)
		}
	}
}

func TestTick(t *testing.T) {
	v := New(3)
	v.Tick(1)
	v.Tick(1)
	v.Tick(2)
	want := VC{0, 2, 1}
	if !v.Equal(want) {
		t.Errorf("v = %v, want %v", v, want)
	}
}

func TestCopyIsIndependent(t *testing.T) {
	v := VC{1, 2, 3}
	w := v.Copy()
	w.Tick(0)
	if v[0] != 1 {
		t.Errorf("copy aliases original: v = %v", v)
	}
	if w[0] != 2 {
		t.Errorf("tick on copy failed: w = %v", w)
	}
}

func TestMerge(t *testing.T) {
	v := VC{1, 5, 0}
	w := VC{3, 2, 0}
	m := Merge(v, w)
	want := VC{3, 5, 0}
	if !m.Equal(want) {
		t.Errorf("Merge = %v, want %v", m, want)
	}
	// Inputs untouched.
	if !v.Equal(VC{1, 5, 0}) || !w.Equal(VC{3, 2, 0}) {
		t.Errorf("Merge mutated inputs: v=%v w=%v", v, w)
	}
}

func TestMergeInto(t *testing.T) {
	v := VC{1, 5, 0}
	v.MergeInto(VC{3, 2, 7})
	if !v.Equal(VC{3, 5, 7}) {
		t.Errorf("MergeInto = %v, want [3 5 7]", v)
	}
}

func TestOrdering(t *testing.T) {
	cases := []struct {
		v, w               VC
		lessEq, less, conc bool
		eq                 bool
		name               string
	}{
		{VC{0, 0}, VC{0, 0}, true, false, false, true, "equal zero"},
		{VC{1, 2}, VC{1, 2}, true, false, false, true, "equal nonzero"},
		{VC{1, 2}, VC{2, 2}, true, true, false, false, "strictly less"},
		{VC{2, 2}, VC{1, 2}, false, false, false, false, "strictly greater"},
		{VC{1, 3}, VC{3, 1}, false, false, true, false, "concurrent"},
		{VC{0, 1}, VC{1, 0}, false, false, true, false, "concurrent unit"},
	}
	for _, c := range cases {
		if got := c.v.LessEq(c.w); got != c.lessEq {
			t.Errorf("%s: LessEq = %v, want %v", c.name, got, c.lessEq)
		}
		if got := c.v.Less(c.w); got != c.less {
			t.Errorf("%s: Less = %v, want %v", c.name, got, c.less)
		}
		if got := c.v.Concurrent(c.w); got != c.conc {
			t.Errorf("%s: Concurrent = %v, want %v", c.name, got, c.conc)
		}
		if got := c.v.Equal(c.w); got != c.eq {
			t.Errorf("%s: Equal = %v, want %v", c.name, got, c.eq)
		}
	}
}

func TestMismatchedComparePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LessEq on mismatched lengths did not panic")
		}
	}()
	VC{1}.LessEq(VC{1, 2})
}

func TestMismatchedMergePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MergeInto on mismatched lengths did not panic")
		}
	}()
	VC{1}.MergeInto(VC{1, 2})
}

func TestString(t *testing.T) {
	if got := (VC{1, 0, 7}).String(); got != "[1 0 7]" {
		t.Errorf("String = %q", got)
	}
	if got := (VC{}).String(); got != "[]" {
		t.Errorf("empty String = %q", got)
	}
}

// clamp maps arbitrary quick-generated ints into small non-negative clock
// components so the property tests explore comparable clocks.
func clamp(xs []int, n int) VC {
	v := New(n)
	for i := 0; i < n; i++ {
		if i < len(xs) {
			x := xs[i]
			if x < 0 {
				x = -x
			}
			v[i] = x % 5
		}
	}
	return v
}

func TestQuickMergeIsUpperBound(t *testing.T) {
	f := func(a, b []int) bool {
		v, w := clamp(a, 4), clamp(b, 4)
		m := Merge(v, w)
		return v.LessEq(m) && w.LessEq(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeIsLeastUpperBound(t *testing.T) {
	f := func(a, b, c []int) bool {
		v, w, u := clamp(a, 3), clamp(b, 3), clamp(c, 3)
		if v.LessEq(u) && w.LessEq(u) {
			return Merge(v, w).LessEq(u)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOrderIsPartial(t *testing.T) {
	f := func(a, b, c []int) bool {
		v, w, u := clamp(a, 3), clamp(b, 3), clamp(c, 3)
		// Reflexivity, antisymmetry, transitivity.
		if !v.LessEq(v) {
			return false
		}
		if v.LessEq(w) && w.LessEq(v) && !v.Equal(w) {
			return false
		}
		if v.LessEq(w) && w.LessEq(u) && !v.LessEq(u) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickConcurrentSymmetric(t *testing.T) {
	f := func(a, b []int) bool {
		v, w := clamp(a, 3), clamp(b, 3)
		return v.Concurrent(w) == w.Concurrent(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickExactlyOneRelation(t *testing.T) {
	f := func(a, b []int) bool {
		v, w := clamp(a, 3), clamp(b, 3)
		rels := 0
		if v.Equal(w) {
			rels++
		}
		if v.Less(w) {
			rels++
		}
		if w.Less(v) {
			rels++
		}
		if v.Concurrent(w) {
			rels++
		}
		return rels == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

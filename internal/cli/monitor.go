package cli

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/computation"
	"repro/internal/obs"
	"repro/internal/online"
)

// RunMonitor is the hbmon command: it replays a trace event by event
// through the online monitor and reports, as the stream progresses, the
// exact events at which EF watches fire and AG watches are violated.
// Watches take conjunctive predicates in the conj(...) syntax.
func RunMonitor(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hbmon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		traceFile = fs.String("trace", "", "JSON trace file to replay")
		spansFile = fs.String("spans", "", "OTel-style span JSONL file to lower onto the HB model and replay")
		workload  = fs.String("workload", "", "generate a workload instead of reading a trace")
		listen    = fs.String("listen", "", "serve live telemetry on this address (/metrics, /debug/vars, /healthz, /debug/obs)")
		pprof     = fs.Bool("pprof", false, "also serve /debug/pprof on the -listen address")
		delay     = fs.Duration("delay", 0, "sleep between replayed events (useful with -listen to watch metrics move)")
		version   = fs.Bool("version", false, "print version and exit")
		efSrcs    = multiFlag{}
		agSrcs    = multiFlag{}
	)
	fs.Var(&efSrcs, "ef", "conjunctive predicate for an EF watch (repeatable)")
	fs.Var(&agSrcs, "ag", "conjunctive predicate for an AG watch (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		buildinfo.Print(stdout, "hbmon")
		return 0
	}
	comp, err := load(*traceFile, *spansFile, *workload, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "hbmon:", err)
		return 2
	}
	if len(efSrcs) == 0 && len(agSrcs) == 0 {
		fmt.Fprintln(stderr, "hbmon: at least one -ef or -ag watch is required")
		return 2
	}

	m := online.NewMonitor(comp.N())
	if *listen != "" {
		m.Instrument(obs.Default())
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(stderr, "hbmon:", err)
			return 2
		}
		defer ln.Close()
		mux := obs.NewMux(obs.Default())
		(&obs.Debug{Registry: obs.Default()}).Register(mux)
		if *pprof {
			obs.RegisterPprof(mux)
		}
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln) //nolint:errcheck // closed on exit
		defer srv.Close()
		fmt.Fprintf(stderr, "hbmon: telemetry on http://%s/metrics\n", ln.Addr())
	}
	for i := 0; i < comp.N(); i++ {
		for _, name := range comp.Vars(i) {
			if v, _ := comp.Value(i, 0, name); v != 0 {
				m.SetInitial(i, name, v)
			}
		}
	}
	type efEntry struct {
		src   string
		watch *online.EFWatch
		done  bool
		at    int // events ingested when the verdict latched
	}
	type agEntry struct {
		src   string
		watch *online.AGWatch
		done  bool
		at    int
	}
	var efs []*efEntry
	var ags []*agEntry
	for _, src := range efSrcs {
		locals, err := online.ParseConj(src)
		if err != nil {
			fmt.Fprintln(stderr, "hbmon:", err)
			return 2
		}
		efs = append(efs, &efEntry{src: src, watch: m.WatchEF(locals...)})
	}
	for _, src := range agSrcs {
		locals, err := online.ParseConj(src)
		if err != nil {
			fmt.Fprintln(stderr, "hbmon:", err)
			return 2
		}
		ags = append(ags, &agEntry{src: src, watch: m.WatchAG(locals...)})
	}

	// Replay along a linearization, reporting watch transitions.
	ids := make(map[int]int)
	seq := comp.SomeLinearization()
	seen := 0
	violations := 0
	report := func() {
		for _, e := range efs {
			if !e.done && e.watch.Fired() {
				e.done = true
				e.at = seen
				fmt.Fprintf(stdout, "event %4d: EF %s FIRED at cut %v\n", seen, e.src, e.watch.Cut())
			}
		}
		for _, a := range ags {
			if !a.done && a.watch.Violated() {
				a.done = true
				a.at = seen
				violations++
				cut, local := a.watch.Counterexample()
				fmt.Fprintf(stdout, "event %4d: AG %s VIOLATED (conjunct %s) at cut %v\n", seen, a.src, local, cut)
			}
		}
	}
	report()
	// Graceful shutdown: SIGINT/SIGTERM stops the replay after the event
	// in flight, so latched verdicts and the summary table still flush
	// (and, with -listen, the telemetry server closes via its defers). A
	// second signal kills the process through the default disposition.
	sig, stopSignals := shutdownSignal()
	defer stopSignals()
	interrupted := false
replay:
	for s := 1; s < len(seq); s++ {
		select {
		case sg := <-sig:
			fmt.Fprintf(stderr, "hbmon: %v, stopping after %d events\n", sg, seen)
			stopSignals()
			interrupted = true
			break replay
		default:
		}
		prev, cur := seq[s-1], seq[s]
		for p := range cur {
			if cur[p] <= prev[p] {
				continue
			}
			e := comp.Event(p, cur[p])
			switch e.Kind {
			case computation.Internal:
				m.Internal(p, e.Sets)
			case computation.Send:
				ids[e.Msg] = m.Send(p, e.Sets)
			case computation.Receive:
				if err := m.Receive(p, ids[e.Msg], e.Sets); err != nil {
					fmt.Fprintln(stderr, "hbmon:", err)
					return 2
				}
			}
			seen++
			report()
			if *delay > 0 {
				time.Sleep(*delay)
			}
			break
		}
	}
	endMsg := "end of trace"
	if interrupted {
		endMsg = "interrupted"
	}
	for _, e := range efs {
		if !e.done {
			fmt.Fprintf(stdout, "%s: EF %s never fired\n", endMsg, e.src)
		}
	}
	for _, a := range ags {
		if !a.done {
			fmt.Fprintf(stdout, "%s: AG %s held throughout\n", endMsg, a.src)
		}
	}

	// Per-watch summary: verdict, the event index at which it latched, and
	// how many events were ingested before the verdict was known.
	fmt.Fprintf(stdout, "\nsummary (%d events replayed):\n", seen)
	fmt.Fprintf(stdout, "  %-4s  %-44s  %-12s  %7s  %9s\n", "OP", "WATCH", "VERDICT", "EVENT", "INGESTED")
	row := func(op, src, verdict string, done bool, at int) {
		ev := "-"
		ingested := seen
		if done {
			ev = fmt.Sprint(at)
			ingested = at
		}
		fmt.Fprintf(stdout, "  %-4s  %-44s  %-12s  %7s  %9d\n", op, src, verdict, ev, ingested)
	}
	for _, e := range efs {
		v := "pending"
		if e.done {
			v = "fired"
		}
		row("EF", e.src, v, e.done, e.at)
	}
	for _, a := range ags {
		v := "held"
		if a.done {
			v = "violated"
		}
		row("AG", a.src, v, a.done, a.at)
	}
	if violations > 0 {
		return 1
	}
	return 0
}

// multiFlag collects repeatable string flags.
type multiFlag []string

// String implements flag.Value.
func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }

// Set implements flag.Value.
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

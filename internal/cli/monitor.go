package cli

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/online"
	"repro/internal/predicate"
)

// RunMonitor is the hbmon command: it replays a trace event by event
// through the online monitor and reports, as the stream progresses, the
// exact events at which EF watches fire and AG watches are violated.
// Watches take conjunctive predicates in the conj(...) syntax.
func RunMonitor(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hbmon", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		traceFile = fs.String("trace", "", "JSON trace file to replay")
		workload  = fs.String("workload", "", "generate a workload instead of reading a trace")
		efSrcs    = multiFlag{}
		agSrcs    = multiFlag{}
	)
	fs.Var(&efSrcs, "ef", "conjunctive predicate for an EF watch (repeatable)")
	fs.Var(&agSrcs, "ag", "conjunctive predicate for an AG watch (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	comp, err := load(*traceFile, *workload)
	if err != nil {
		fmt.Fprintln(stderr, "hbmon:", err)
		return 2
	}
	if len(efSrcs) == 0 && len(agSrcs) == 0 {
		fmt.Fprintln(stderr, "hbmon: at least one -ef or -ag watch is required")
		return 2
	}

	m := online.NewMonitor(comp.N())
	for i := 0; i < comp.N(); i++ {
		for _, name := range comp.Vars(i) {
			if v, _ := comp.Value(i, 0, name); v != 0 {
				m.SetInitial(i, name, v)
			}
		}
	}
	type efEntry struct {
		src   string
		watch *online.EFWatch
		done  bool
	}
	type agEntry struct {
		src   string
		watch *online.AGWatch
		done  bool
	}
	var efs []*efEntry
	var ags []*agEntry
	for _, src := range efSrcs {
		locals, err := parseConjLocals(src)
		if err != nil {
			fmt.Fprintln(stderr, "hbmon:", err)
			return 2
		}
		efs = append(efs, &efEntry{src: src, watch: m.WatchEF(locals...)})
	}
	for _, src := range agSrcs {
		locals, err := parseConjLocals(src)
		if err != nil {
			fmt.Fprintln(stderr, "hbmon:", err)
			return 2
		}
		ags = append(ags, &agEntry{src: src, watch: m.WatchAG(locals...)})
	}

	// Replay along a linearization, reporting watch transitions.
	ids := make(map[int]int)
	seq := comp.SomeLinearization()
	seen := 0
	violations := 0
	report := func() {
		for _, e := range efs {
			if !e.done && e.watch.Fired() {
				e.done = true
				fmt.Fprintf(stdout, "event %4d: EF %s FIRED at cut %v\n", seen, e.src, e.watch.Cut())
			}
		}
		for _, a := range ags {
			if !a.done && a.watch.Violated() {
				a.done = true
				violations++
				cut, local := a.watch.Counterexample()
				fmt.Fprintf(stdout, "event %4d: AG %s VIOLATED (conjunct %s) at cut %v\n", seen, a.src, local, cut)
			}
		}
	}
	report()
	for s := 1; s < len(seq); s++ {
		prev, cur := seq[s-1], seq[s]
		for p := range cur {
			if cur[p] <= prev[p] {
				continue
			}
			e := comp.Event(p, cur[p])
			switch e.Kind {
			case computation.Internal:
				m.Internal(p, e.Sets)
			case computation.Send:
				ids[e.Msg] = m.Send(p, e.Sets)
			case computation.Receive:
				if err := m.Receive(p, ids[e.Msg], e.Sets); err != nil {
					fmt.Fprintln(stderr, "hbmon:", err)
					return 2
				}
			}
			seen++
			report()
			break
		}
	}
	for _, e := range efs {
		if !e.done {
			fmt.Fprintf(stdout, "end of trace: EF %s never fired\n", e.src)
		}
	}
	for _, a := range ags {
		if !a.done {
			fmt.Fprintf(stdout, "end of trace: AG %s held throughout\n", a.src)
		}
	}
	if violations > 0 {
		return 1
	}
	return 0
}

// parseConjLocals parses a conjunctive predicate and adapts its locals to
// online.LocalSpec.
func parseConjLocals(src string) ([]online.LocalSpec, error) {
	f, err := ctl.Parse(src)
	if err != nil {
		return nil, err
	}
	atom, ok := f.(ctl.Atom)
	if !ok {
		return nil, fmt.Errorf("watch %q must be a non-temporal conjunctive predicate", src)
	}
	var locals []predicate.LocalPredicate
	switch p := atom.P.(type) {
	case predicate.Conjunctive:
		locals = p.Locals
	case predicate.LocalPredicate:
		locals = []predicate.LocalPredicate{p}
	default:
		return nil, fmt.Errorf("watch %q must be conjunctive, got %s", src, atom.P)
	}
	out := make([]online.LocalSpec, 0, len(locals))
	for _, l := range locals {
		vc, ok := l.(predicate.VarCmp)
		if !ok {
			return nil, fmt.Errorf("watch %q: only variable comparisons are supported online", src)
		}
		out = append(out, online.Cmp(vc.Proc, vc.Var, string(vc.Op), vc.K))
	}
	return out, nil
}

// multiFlag collects repeatable string flags.
type multiFlag []string

// String implements flag.Value.
func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }

// Set implements flag.Value.
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"time"

	"os"

	"strings"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
)

// RunServer is the hbserver command: a long-running detection service
// accepting event streams over TCP (NDJSON frames) and optionally HTTP,
// multiplexing them into per-session online monitors, and pushing
// verdicts as they latch. It runs until SIGINT/SIGTERM, then drains:
// listeners close, every session's queued events are applied, goodbye
// frames flush, and a summary is printed.
func RunServer(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hbserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen      = fs.String("listen", "127.0.0.1:7457", "TCP ingest address")
		httpAddr    = fs.String("http", "", "HTTP address for the session API and telemetry (/metrics, /healthz, /api/...); empty disables")
		queue       = fs.Int("queue", 256, "per-session ingest queue depth")
		overflow    = fs.String("overflow", "block", "queue overflow policy: block (backpressure) or drop (shed + count)")
		maxSessions = fs.Int("max-sessions", 1024, "maximum concurrently open sessions")
		idle        = fs.Duration("idle-timeout", 2*time.Minute, "close sessions idle this long (0 disables)")
		readTimeout = fs.Duration("read-timeout", 5*time.Minute, "per-frame TCP read deadline; a half-open peer is cut loose after this (negative disables)")
		retention   = fs.Int("retention", 4096, "journal depth for resumable sessions; a resume further behind than this is rejected as stale")
		ackEvery    = fs.Int("ack-every", 32, "ack resumable sessions every N applied frames (clients size in-flight buffers from this)")
		ingestDelay = fs.Duration("ingest-delay", 0, "artificial per-event processing delay (testing/demos)")
		workers     = fs.Int("workers", 1, "parallel workers for snapshot detection queries (0 = GOMAXPROCS)")
		pprof       = fs.Bool("pprof", false, "also serve /debug/pprof on the -http address")
		spanJSONL   = fs.String("span-jsonl", "", "append pipeline spans (session, frame, stages) as JSON lines to this file")
		slow        = fs.Duration("slow", 0, "log detection runs slower than this to /debug/obs (0 disables)")
		peers       = fs.String("cluster-peers", "", "comma-separated static cluster membership (ring identities, this node included); enables cluster mode")
		self        = fs.String("cluster-self", "", "this node's ring identity within -cluster-peers (default: the -listen address)")
		replicas    = fs.Int("cluster-replicas", 2, "copies of each keyed session's frame log, the owner included")
		ringSeed    = fs.Uint64("cluster-seed", 0, "placement ring seed; every node and ring-aware client must agree (0 = built-in default)")
		durability  = fs.String("cluster-durability", "available", "default ack durability for keyed sessions: available (ack on live replicas) or durable (acks wait out replica outages); hellos may override per session")
		version     = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		buildinfo.Print(stdout, "hbserver")
		return 0
	}
	policy, err := server.ParseOverflowPolicy(*overflow)
	if err != nil {
		fmt.Fprintln(stderr, "hbserver:", err)
		return 2
	}
	if *workers <= 0 {
		// The zero-value server Config means sequential, so resolve the
		// "use the hardware" request here.
		*workers = runtime.GOMAXPROCS(0)
	}

	// Pipeline observability: recent spans and slow detections are kept
	// in memory for /debug/obs; -span-jsonl additionally persists every
	// span. The tracer stays nil unless something consumes spans, so the
	// default hot path never allocates a span.
	ring := obs.NewSpanRing(256)
	slowLog := obs.NewSlowLog(128, *slow, nil)
	if *slow > 0 {
		core.SetSlowLog(slowLog)
		defer core.SetSlowLog(nil)
	}
	var tracer *obs.Tracer
	if *spanJSONL != "" {
		f, err := os.OpenFile(*spanJSONL, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(stderr, "hbserver:", err)
			return 2
		}
		defer f.Close()
		tracer = obs.NewTracer(f).Mirror(ring)
	} else if *httpAddr != "" {
		tracer = obs.NewTracer(nil).Mirror(ring)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(stderr, "hbserver: "+format+"\n", args...)
	}
	srvCfg := server.Config{
		QueueDepth:      *queue,
		Overflow:        policy,
		MaxSessions:     *maxSessions,
		IdleTimeout:     *idle,
		ReadTimeout:     *readTimeout,
		RetentionWindow: *retention,
		AckEvery:        *ackEvery,
		IngestDelay:     *ingestDelay,
		Workers:         *workers,
		Registry:        obs.Default(),
		Tracer:          tracer,
		Logf:            logf,
	}
	// Cluster mode: the node installs the placement/replication hooks and
	// owns the server; standalone mode builds the server directly.
	var srv *server.Server
	var node *cluster.Node
	if *peers != "" {
		mode, err := cluster.ParseDurability(*durability)
		if err != nil {
			fmt.Fprintln(stderr, "hbserver:", err)
			return 2
		}
		id := *self
		if id == "" {
			id = *listen
		}
		node, err = cluster.New(srvCfg, cluster.NodeConfig{
			Self:       id,
			Peers:      splitPeers(*peers),
			Replicas:   *replicas,
			Seed:       *ringSeed,
			Durability: mode,
			Registry:   obs.Default(),
			Logf:       logf,
		})
		if err != nil {
			fmt.Fprintln(stderr, "hbserver:", err)
			return 2
		}
		srv = node.Server()
		fmt.Fprintf(stderr, "hbserver: cluster mode: %d nodes, %d copies per session, self=%s, durability=%s\n",
			len(node.Ring().Nodes()), *replicas, id, mode)
	} else {
		srv = server.New(srvCfg)
	}

	// Register before the address is printed, so a supervisor (or test)
	// that signals as soon as it sees the address cannot kill the process.
	sig, stopSignals := shutdownSignal()
	defer stopSignals()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "hbserver:", err)
		return 2
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(stderr, "hbserver: ingest on %s (overflow=%s, queue=%d)\n", ln.Addr(), policy, *queue)

	var hsrv *http.Server
	if *httpAddr != "" {
		mux := obs.NewMux(obs.Default())
		server.RegisterHTTP(mux, srv)
		dbg := &obs.Debug{Registry: obs.Default(), Spans: ring, Slow: slowLog}
		if node != nil {
			dbg.Sections = map[string]func() any{"cluster": node.DebugState}
		}
		dbg.Register(mux)
		if *pprof {
			obs.RegisterPprof(mux)
		}
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(stderr, "hbserver:", err)
			ln.Close()
			return 2
		}
		hsrv = &http.Server{Handler: mux}
		go hsrv.Serve(hln) //nolint:errcheck // closed on shutdown
		fmt.Fprintf(stderr, "hbserver: http api + telemetry on http://%s\n", hln.Addr())
	}

	select {
	case s := <-sig:
		fmt.Fprintf(stderr, "hbserver: %v, draining (signal again to kill)\n", s)
		stopSignals() // second signal falls through to the default disposition
	case err := <-serveErr:
		stopSignals()
		if err != nil {
			fmt.Fprintln(stderr, "hbserver:", err)
			return 2
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if hsrv != nil {
		hsrv.Shutdown(ctx) //nolint:errcheck // best-effort
	}
	if node != nil {
		// Planned removal: hand every hosted session's frame log to a live
		// replica before tearing the node down, so keyed clients resume on
		// the new owner with zero frame loss. Failures are logged and fall
		// through — crash failover covers whatever a drain could not move.
		if derr := node.Drain(ctx); derr != nil {
			fmt.Fprintln(stderr, "hbserver: drain:", derr)
		}
		err = node.Shutdown(ctx)
	} else {
		err = srv.Shutdown(ctx)
	}
	if err != nil {
		fmt.Fprintln(stderr, "hbserver: shutdown:", err)
		return 1
	}
	sessions, events, dropped := srv.Stats()
	fmt.Fprintf(stdout, "hbserver: served %d sessions, %d events (%d dropped)\n", sessions, events, dropped)
	return 0
}

// splitPeers parses the -cluster-peers list, trimming whitespace and
// dropping empty entries so a trailing comma is not a phantom node.
func splitPeers(spec string) []string {
	var peers []string
	for _, p := range strings.Split(spec, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

package cli

import (
	"strings"
	"testing"
)

// TestDetectExplainGolden pins the -explain output end to end: inferred
// class, Table 1 cell, algorithm, justification and lowering stats, all
// on a deterministic workload.
func TestDetectExplainGolden(t *testing.T) {
	code, out, errb := runDetect(
		"-workload", "mutex:n=2,rounds=1",
		"-formula", "AG(disj(crit@P1 != 1, crit@P2 != 1))",
		"-explain",
	)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb)
	}
	for _, want := range []string{
		"explain:",
		"  AG(disj(crit@P1 != 1, crit@P2 != 1))",
		"    class:      disjunctive, observer-independent",
		"    cell:       Table 1 [disjunctive × AG]",
		"    algorithm:  AG disjunctive: ¬EF(¬p) via advancement",
		"    because:    disjunctive: ¬p is conjunctive hence linear, and AG(p) = ¬EF(¬p) by duality",
		"    slicing:    not sliced — the dual advancement on the conjunctive complement is already polynomial",
		"    lowering:   2 conjuncts over 2 processes",
		"algorithm:   AG disjunctive: ¬EF(¬p) via advancement",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The explanation precedes the verdict.
	if strings.Index(out, "explain:") > strings.Index(out, "holds:") {
		t.Errorf("explain block does not precede the verdict:\n%s", out)
	}
}

// TestDetectExplainSliced pins the -explain output for a formula that
// routes through computation slicing: the cell, the slicing decision with
// its factor, and the per-trace events-eliminated count.
func TestDetectExplainSliced(t *testing.T) {
	code, out, errb := runDetect(
		"-workload", "mutex:n=2,rounds=1",
		"-formula", "EF(conj(crit@P1 >= 1) && !(conj(crit@P1 == 1, crit@P2 == 1)))",
		"-explain",
	)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb)
	}
	for _, want := range []string{
		"cell:       Table 1 [arbitrary × EF (regular factor)]",
		"algorithm:  EF factored: slice-restricted search over the regular factor",
		"slicing:    sliced on conj(crit@P1 >= 1) — regular factor: EF(c ∧ r) holds iff some cut of c's slice satisfies r",
		"slice:      8 of 11 events eliminated (3 kept in the sublattice)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestDetectExplainBoolean covers the boolean recursion and the stable
// fast path.
func TestDetectExplainBoolean(t *testing.T) {
	code, out, _ := runDetect(
		"-workload", "mutex:n=2,rounds=1",
		"-formula", "EF(terminated) && AG(conj(crit@P1 <= 1, crit@P2 <= 1))",
		"-explain",
	)
	if code != 0 {
		t.Fatalf("exit = %d:\n%s", code, out)
	}
	for _, want := range []string{
		"(…) && (…): boolean conjunction, short-circuiting",
		"EF stable: evaluate at the final cut",
		"cell:       Table 1 [stable × EF]",
		"AG linear: Algorithm A2 (meet-irreducibles)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

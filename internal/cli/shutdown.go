package cli

import (
	"os"
	"os/signal"
	"syscall"
)

// shutdownSignal returns a channel that receives SIGINT/SIGTERM, plus a
// cleanup func restoring default signal handling. Shared by the
// long-running commands (hbserver, hbmon -listen) so both drain the same
// way: a first signal requests a graceful stop, a second one kills the
// process via the restored default disposition.
func shutdownSignal() (<-chan os.Signal, func()) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch, func() { signal.Stop(ch) }
}

// Package cli implements the non-interactive command-line tools
// (hbdetect, tracegen, latticeviz) as testable functions; the cmd mains
// are thin wrappers. Each Run* function parses its own flags and returns a
// process exit code: 0 success (for hbdetect: property holds), 1 property
// does not hold, 2 usage or input error.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/explore"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/pir"
	"repro/internal/predicate"
	"repro/internal/sim"
	"repro/internal/spanhb"
	"repro/internal/trace"
)

// load reads a computation from a trace file, an OTel-style span JSONL
// file (lowered onto the HB model), or a workload spec; exactly one of
// the three must be non-empty. When lowering spans, the service →
// process mapping is printed to info (formulas name processes, so the
// user needs it), along with how much causality survived.
func load(traceFile, spansFile, workload string, info io.Writer) (*computation.Computation, error) {
	set := 0
	for _, s := range []string{traceFile, spansFile, workload} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("need exactly one of -trace, -spans, or -workload")
	}
	switch {
	case traceFile != "":
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Decode(f)
	case spansFile != "":
		f, err := os.Open(spansFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		spans, err := spanhb.Decode(f)
		if err != nil {
			return nil, err
		}
		r, err := spanhb.Lower(spans, spanhb.Options{})
		if err != nil {
			return nil, err
		}
		if info != nil {
			fmt.Fprintf(info, "spanhb: %d spans, %d causal edges (%d dropped as skew) → %d processes:",
				r.Spans, r.Edges, r.SkewDropped, len(r.Services))
			for i, svc := range r.Services {
				fmt.Fprintf(info, " P%d=%s", i+1, svc)
			}
			fmt.Fprintln(info)
		}
		return r.Comp, nil
	default:
		return sim.FromSpec(workload)
	}
}

// RunDetect is the hbdetect command.
func RunDetect(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hbdetect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		traceFile = fs.String("trace", "", "JSON trace file to analyze")
		spansFile = fs.String("spans", "", "OTel-style span JSONL file to lower onto the HB model (services become processes; see internal/spanhb)")
		workload  = fs.String("workload", "", "generate a workload instead of reading a trace (see internal/sim.FromSpec)")
		formula   = fs.String("formula", "", "CTL formula to detect")
		formulas  = fs.String("formulas", "", "file with one formula per line ('#' comments); overrides -formula")
		witness   = fs.Bool("witness", false, "print the witness path / counterexample cut")
		check     = fs.Bool("check", false, "cross-check against the explicit-lattice model checker")
		nested    = fs.Bool("nested", false, "allow nested temporal operators (explicit-lattice evaluation, exponential)")
		quiet     = fs.Bool("q", false, "print only true/false")
		stats     = fs.Bool("stats", false, "print per-run detection statistics (cuts visited, predicate evaluations, ...)")
		explain   = fs.Bool("explain", false, "print the inferred predicate class, Table 1 cell, chosen algorithm and bitset-lowering stats")
		workers   = fs.Int("workers", 1, "parallel workers for the sweep-shaped algorithms (0 = GOMAXPROCS)")
		traceOut  = fs.String("trace-jsonl", "", "append one JSON line per Detect run (a detection span) to this file")
		slow      = fs.Duration("slow", 0, "log Detect runs slower than this as structured JSONL (0 disables)")
		slowOut   = fs.String("slow-jsonl", "", "slow-detection log destination (default stderr)")
		version   = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		buildinfo.Print(stdout, "hbdetect")
		return 0
	}
	if *slow > 0 {
		w := io.Writer(stderr)
		if *slowOut != "" {
			f, err := os.OpenFile(*slowOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintln(stderr, "hbdetect:", err)
				return 2
			}
			defer f.Close()
			w = f
		}
		core.SetSlowLog(obs.NewSlowLog(64, *slow, w))
		defer core.SetSlowLog(nil)
	}
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(stderr, "hbdetect:", err)
			return 2
		}
		defer f.Close()
		core.SetTracer(obs.NewTracer(f))
		defer core.SetTracer(nil)
	}
	if *formula == "" && *formulas == "" {
		fmt.Fprintln(stderr, "hbdetect: -formula or -formulas is required")
		return 2
	}
	comp, err := load(*traceFile, *spansFile, *workload, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "hbdetect:", err)
		return 2
	}
	if *formulas != "" {
		return runDetectBatch(comp, *formulas, *nested, *stats, *workers, stdout, stderr)
	}
	f, err := ctl.Parse(*formula)
	if err != nil {
		fmt.Fprintln(stderr, "hbdetect:", err)
		return 2
	}
	if *explain && !*nested {
		text, err := pir.Explain(comp, f)
		if err != nil {
			fmt.Fprintln(stderr, "hbdetect:", err)
			return 2
		}
		fmt.Fprint(stdout, "explain:\n"+indentLines(text, "  "))
	}
	var res core.Result
	if *nested {
		res, err = core.DetectNested(comp, f, 0)
	} else {
		res, err = core.DetectParallel(comp, f, *workers)
	}
	if err != nil {
		fmt.Fprintln(stderr, "hbdetect:", err)
		return 2
	}

	if *quiet {
		fmt.Fprintln(stdout, res.Holds)
	} else {
		fmt.Fprintf(stdout, "computation: %s\n", sim.Describe(comp))
		fmt.Fprintf(stdout, "formula:     %s\n", f)
		fmt.Fprintf(stdout, "algorithm:   %s\n", res.Algorithm)
		fmt.Fprintf(stdout, "holds:       %v\n", res.Holds)
		if *stats && res.Stats != nil {
			fmt.Fprintf(stdout, "stats:       %s\n", formatStats(res.Stats))
		}
		if *witness {
			if len(res.Witness) > 0 {
				fmt.Fprintln(stdout, "witness path:")
				for _, cut := range res.Witness {
					fmt.Fprintf(stdout, "  %v\n", cut)
				}
			}
			if res.Counterexample != nil {
				fmt.Fprintf(stdout, "counterexample cut: %v\n", res.Counterexample)
			}
		}
	}

	if *check {
		l, err := lattice.Build(comp)
		if err != nil {
			fmt.Fprintln(stderr, "hbdetect: lattice check skipped:", err)
		} else {
			want := checkTop(l, f)
			if want != res.Holds {
				fmt.Fprintf(stderr, "hbdetect: MISMATCH: structural=%v lattice=%v\n", res.Holds, want)
				return 2
			}
			if !*quiet {
				fmt.Fprintf(stdout, "lattice:     %d cuts, verdict confirmed\n", l.Size())
			}
		}
	}
	if res.Holds {
		return 0
	}
	return 1
}

// formatStats renders a Stats line for human output.
// indentLines prefixes every non-empty line of s with prefix.
func indentLines(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = prefix + l
		}
	}
	return strings.Join(lines, "\n") + "\n"
}

func formatStats(s *core.Stats) string {
	return fmt.Sprintf("cuts=%d evals=%d forbidden=%d advance=%d memo=%d short=%d witness=%d time=%s",
		s.CutsVisited, s.PredicateEvals, s.ForbiddenCalls, s.AdvancementSteps,
		s.MemoHits, s.ShortCircuits, s.WitnessLength, s.Duration)
}

// runDetectBatch runs every formula from a file and prints a result
// table. Exit 0 when all hold, 1 when any fails, 2 on errors.
func runDetectBatch(comp *computation.Computation, path string, nested, stats bool, workers int, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "hbdetect:", err)
		return 2
	}
	allHold := true
	ran := 0
	for lineNo, line := range strings.Split(string(data), "\n") {
		src := strings.TrimSpace(line)
		if src == "" || strings.HasPrefix(src, "#") {
			continue
		}
		f, err := ctl.Parse(src)
		if err != nil {
			fmt.Fprintf(stderr, "hbdetect: line %d: %v\n", lineNo+1, err)
			return 2
		}
		var res core.Result
		if nested {
			res, err = core.DetectNested(comp, f, 0)
		} else {
			res, err = core.DetectParallel(comp, f, workers)
		}
		if err != nil {
			fmt.Fprintf(stderr, "hbdetect: line %d: %v\n", lineNo+1, err)
			return 2
		}
		ran++
		allHold = allHold && res.Holds
		if stats && res.Stats != nil {
			fmt.Fprintf(stdout, "%-5v  %-50s  %-24s  %s\n", res.Holds, src, res.Algorithm, formatStats(res.Stats))
		} else {
			fmt.Fprintf(stdout, "%-5v  %-50s  %s\n", res.Holds, src, res.Algorithm)
		}
	}
	if ran == 0 {
		fmt.Fprintln(stderr, "hbdetect: no formulas in", path)
		return 2
	}
	if allHold {
		return 0
	}
	return 1
}

// checkTop mirrors core.Detect's top-level boolean handling over the
// lattice checker.
func checkTop(l *lattice.Lattice, f ctl.Formula) bool {
	switch g := f.(type) {
	case ctl.Not:
		return !checkTop(l, g.F)
	case ctl.And:
		return checkTop(l, g.L) && checkTop(l, g.R)
	case ctl.Or:
		return checkTop(l, g.L) || checkTop(l, g.R)
	default:
		return explore.Holds(l, f)
	}
}

// RunTraceGen is the tracegen command.
func RunTraceGen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload  = fs.String("workload", "", "workload spec (see internal/sim.FromSpec)")
		spansFile = fs.String("spans", "", "convert an OTel-style span JSONL file into a trace instead of generating a workload")
		out       = fs.String("o", "", "output file (default stdout)")
		version   = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		buildinfo.Print(stdout, "tracegen")
		return 0
	}
	if *workload == "" && *spansFile == "" {
		fmt.Fprintln(stderr, "tracegen: -workload or -spans is required")
		return 2
	}
	comp, err := load("", *spansFile, *workload, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 2
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	if err := trace.Encode(w, comp); err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 2
	}
	if *out != "" {
		fmt.Fprintf(stderr, "tracegen: wrote %s (%s)\n", *out, sim.Describe(comp))
	}
	return 0
}

// RunLatticeViz is the latticeviz command.
func RunLatticeViz(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("latticeviz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		traceFile = fs.String("trace", "", "JSON trace file")
		spansFile = fs.String("spans", "", "OTel-style span JSONL file to lower onto the HB model")
		workload  = fs.String("workload", "", "workload spec (see internal/sim.FromSpec)")
		mark      = fs.String("mark", "", "non-temporal predicate; satisfying cuts are filled in the DOT output")
		dotFile   = fs.String("dot", "", "write Graphviz DOT to this file ('-' for stdout)")
		stats     = fs.Bool("stats", false, "print lattice statistics")
		classify  = fs.String("classify", "", "non-temporal predicate to classify empirically (classes + applicable Table 1 algorithms)")
		version   = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		buildinfo.Print(stdout, "latticeviz")
		return 0
	}
	comp, err := load(*traceFile, *spansFile, *workload, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "latticeviz:", err)
		return 2
	}
	l, err := lattice.Build(comp)
	if err != nil {
		fmt.Fprintln(stderr, "latticeviz:", err)
		return 2
	}
	if *stats || (*dotFile == "" && *classify == "") {
		fmt.Fprintf(stdout, "computation: %s, width %d\n", sim.Describe(comp), comp.Width())
		fmt.Fprintf(stdout, "lattice:     %s\n", l.ComputeStats())
	}
	if *classify != "" {
		f, err := ctl.Parse(*classify)
		if err != nil {
			fmt.Fprintln(stderr, "latticeviz:", err)
			return 2
		}
		if ctl.IsTemporal(f) {
			fmt.Fprintln(stderr, "latticeviz: -classify must be non-temporal")
			return 2
		}
		p, err := core.Compile(f)
		if err != nil {
			fmt.Fprintln(stderr, "latticeviz:", err)
			return 2
		}
		cls := explore.Classify(l, p)
		classes := cls.Classes()
		if len(classes) == 0 {
			classes = []string{"arbitrary"}
		}
		fmt.Fprintf(stdout, "predicate:   %s\n", p)
		fmt.Fprintf(stdout, "classes:     %s (on this computation)\n", strings.Join(classes, ", "))
		poly := cls.PolynomialOperators()
		if len(poly) == 0 {
			fmt.Fprintln(stdout, "polynomial:  none — exponential detection for every operator")
		} else {
			fmt.Fprintf(stdout, "polynomial:  %s\n", strings.Join(poly, ", "))
		}
	}
	if *dotFile != "" {
		var p predicate.Predicate
		if *mark != "" {
			f, err := ctl.Parse(*mark)
			if err != nil {
				fmt.Fprintln(stderr, "latticeviz:", err)
				return 2
			}
			if ctl.IsTemporal(f) {
				fmt.Fprintln(stderr, "latticeviz: -mark must be non-temporal")
				return 2
			}
			if p, err = core.Compile(f); err != nil {
				fmt.Fprintln(stderr, "latticeviz:", err)
				return 2
			}
		}
		dot := l.DOT(p)
		if *dotFile == "-" {
			fmt.Fprint(stdout, dot)
		} else if err := os.WriteFile(*dotFile, []byte(dot), 0o644); err != nil {
			fmt.Fprintln(stderr, "latticeviz:", err)
			return 2
		}
	}
	return 0
}

package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type runFn func(args []string, stdout, stderr *strings.Builder) int

func runDetect(args ...string) (int, string, string) {
	var out, errb strings.Builder
	code := RunDetect(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestDetectHoldsExitZero(t *testing.T) {
	code, out, _ := runDetect(
		"-workload", "mutex:n=3,rounds=1",
		"-formula", "AG(disj(crit@P1 != 1, crit@P2 != 1))",
	)
	if code != 0 {
		t.Fatalf("exit = %d, output:\n%s", code, out)
	}
	for _, want := range []string{"holds:       true", "AG disjunctive", "3 processes"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDetectFailsExitOne(t *testing.T) {
	code, out, _ := runDetect(
		"-workload", "buggymutex:n=3,rounds=1,faulty=1",
		"-formula", "AG(disj(crit@P1 != 1, crit@P2 != 1))",
		"-witness",
	)
	if code != 1 {
		t.Fatalf("exit = %d:\n%s", code, out)
	}
	if !strings.Contains(out, "counterexample cut") {
		t.Errorf("witness flag did not print counterexample:\n%s", out)
	}
}

func TestDetectNegationSurfacesEvidence(t *testing.T) {
	// The counterexample to AG(x@P1 < 4) — the cut where x reaches 4 — is
	// the witness for the negation and must reach the output.
	code, out, errb := runDetect(
		"-workload", "fig4",
		"-formula", "!(AG(x@P1 < 4))",
		"-witness", "-check",
	)
	if code != 0 {
		t.Fatalf("exit = %d stderr=%s\n%s", code, errb, out)
	}
	for _, want := range []string{"holds:       true", "negation of", "witness path:", "verdict confirmed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Dually, a failing negated EF (the conjunctive operand routes to the
	// advancement algorithm, which produces a least satisfying cut) must
	// print that cut as its counterexample.
	code, out, _ = runDetect(
		"-workload", "fig4",
		"-formula", "!(EF(conj(x@P1 > 1, z@P3 < 6)))",
		"-witness",
	)
	if code != 1 {
		t.Fatalf("exit = %d:\n%s", code, out)
	}
	if !strings.Contains(out, "counterexample cut:") {
		t.Errorf("negated EF did not print its counterexample:\n%s", out)
	}
}

func TestDetectWitnessAndCheck(t *testing.T) {
	code, out, errb := runDetect(
		"-workload", "fig4",
		"-formula", "E[conj(z@P3 < 6, x@P1 < 4) U channelsEmpty && x@P1 > 1]",
		"-witness", "-check",
	)
	if code != 0 {
		t.Fatalf("exit = %d stderr=%s", code, errb)
	}
	for _, want := range []string{"witness path:", "<1 2 1>", "verdict confirmed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDetectQuiet(t *testing.T) {
	code, out, _ := runDetect("-workload", "fig2", "-formula", "EF(channelsEmpty)", "-q")
	if code != 0 || strings.TrimSpace(out) != "true" {
		t.Errorf("quiet output = %q (exit %d)", out, code)
	}
}

func TestDetectUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-formula", "EF(true)"}, // no input
		{"-workload", "fig2"},    // no formula
		{"-workload", "fig2", "-trace", "x.json", "-formula", "true"}, // both inputs
		{"-workload", "nosuch", "-formula", "EF(true)"},               // bad workload
		{"-workload", "fig2", "-formula", "EF("},                      // bad formula
		{"-workload", "fig2", "-formula", "EF(AG(true))"},             // nested temporal
		{"-trace", "/nonexistent.json", "-formula", "EF(true)"},       // missing file
		{"-bogusflag"},
	}
	for _, args := range cases {
		if code, _, _ := runDetect(args...); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}

func TestTraceGenAndDetectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	var out, errb strings.Builder
	code := RunTraceGen([]string{"-workload", "2pc:participants=2,abort=1", "-o", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("tracegen exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "wrote") {
		t.Errorf("tracegen stderr = %q", errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil || !strings.Contains(string(data), `"version": 1`) {
		t.Fatalf("trace file: %v, %.80s", err, data)
	}
	code, detOut, _ := runDetect("-trace", path, "-formula", "AF(disj(decided@P1 != 0))")
	if code != 0 {
		t.Fatalf("detect on trace exit = %d:\n%s", code, detOut)
	}
}

func TestTraceGenStdoutAndErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := RunTraceGen([]string{"-workload", "fig2"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), `"events"`) {
		t.Errorf("stdout does not look like a trace: %.80s", out.String())
	}
	for _, args := range [][]string{
		{},
		{"-workload", "nosuch"},
		{"-workload", "fig2", "-o", "/nonexistent-dir/x.json"},
		{"-workload", "mutex:n=bad"},
	} {
		var o, e strings.Builder
		if code := RunTraceGen(args, &o, &e); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}

func TestLatticeVizStatsAndDot(t *testing.T) {
	var out, errb strings.Builder
	code := RunLatticeViz([]string{"-workload", "fig2", "-stats"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "cuts=8") {
		t.Errorf("stats output:\n%s", out.String())
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "out.dot")
	out.Reset()
	code = RunLatticeViz([]string{
		"-workload", "fig4",
		"-mark", "channelsEmpty && x@P1 > 1",
		"-dot", path,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("dot exit = %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph lattice") || !strings.Contains(string(data), "style=filled") {
		t.Errorf("dot file content:\n%.200s", data)
	}

	// DOT to stdout.
	out.Reset()
	code = RunLatticeViz([]string{"-workload", "fig2", "-dot", "-"}, &out, &errb)
	if code != 0 || !strings.Contains(out.String(), "digraph lattice") {
		t.Errorf("stdout dot: exit %d:\n%.120s", code, out.String())
	}
}

func TestDetectBatchFormulas(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "props.ctl")
	content := `# two-phase commit properties
AF(disj(decided@P1 != 0))

EF(channelsEmpty && decided@P2 != 0)
AG(disj(decided@P1 != 1, decided@P2 != 2))
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errb := runDetect("-workload", "2pc:participants=2,abort=0", "-formulas", path)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if strings.Count(out, "true") != 3 {
		t.Errorf("expected 3 results:\n%s", out)
	}
	// One failing property flips the exit code to 1.
	bad := path + ".bad"
	if err := os.WriteFile(bad, []byte("EF(decided@P1 == 99)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runDetect("-workload", "2pc:participants=2,abort=0", "-formulas", bad); code != 1 {
		t.Errorf("failing batch exit = %d, want 1", code)
	}
	// Error cases.
	empty := path + ".empty"
	os.WriteFile(empty, []byte("# only comments\n"), 0o644)
	for _, args := range [][]string{
		{"-workload", "fig2", "-formulas", "/nonexistent.props"},
		{"-workload", "fig2", "-formulas", empty},
	} {
		if code, _, _ := runDetect(args...); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
	broken := path + ".broken"
	os.WriteFile(broken, []byte("EF(\n"), 0o644)
	if code, _, _ := runDetect("-workload", "fig2", "-formulas", broken); code != 2 {
		t.Error("parse error in batch not fatal")
	}
}

func TestDetectNestedFlag(t *testing.T) {
	code, out, _ := runDetect(
		"-workload", "fig2",
		"-formula", "AG(EF(terminated))",
		"-nested",
	)
	if code != 0 {
		t.Fatalf("exit = %d:\n%s", code, out)
	}
	if !strings.Contains(out, "nested CTL") {
		t.Errorf("output missing nested route:\n%s", out)
	}
	// Without -nested the same formula is rejected.
	if code, _, _ := runDetect("-workload", "fig2", "-formula", "AG(EF(terminated))"); code != 2 {
		t.Errorf("nested formula accepted without -nested (exit %d)", code)
	}
}

func runMonitor(args ...string) (int, string, string) {
	var out, errb strings.Builder
	code := RunMonitor(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestMonitorEFAndAG(t *testing.T) {
	code, out, _ := runMonitor(
		"-workload", "buggymutex:n=3,rounds=1,faulty=1",
		"-ef", "conj(crit@P1 == 1)",
		"-ag", "conj(try@P1 <= 1)",
	)
	if code != 0 {
		t.Fatalf("exit = %d:\n%s", code, out)
	}
	if !strings.Contains(out, "FIRED") {
		t.Errorf("EF watch never fired:\n%s", out)
	}
	if !strings.Contains(out, "held throughout") {
		t.Errorf("AG summary missing:\n%s", out)
	}
}

func TestMonitorViolationExitCode(t *testing.T) {
	code, out, _ := runMonitor(
		"-workload", "mutex:n=3,rounds=1",
		"-ag", "conj(crit@P2 != 1)", // P2 does go critical: violation
	)
	if code != 1 {
		t.Fatalf("exit = %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "VIOLATED") {
		t.Errorf("violation not reported:\n%s", out)
	}
}

func TestMonitorNeverFires(t *testing.T) {
	code, out, _ := runMonitor(
		"-workload", "fig2",
		"-ef", "conj(nonexistent@P1 == 7)",
	)
	if code != 0 || !strings.Contains(out, "never fired") {
		t.Errorf("exit %d:\n%s", code, out)
	}
}

func TestMonitorErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-workload", "fig2"},                    // no watches
		{"-workload", "fig2", "-ef", "EF(true)"}, // temporal watch
		{"-workload", "fig2", "-ef", "channelsEmpty"},             // not conjunctive
		{"-workload", "fig2", "-ef", "x@"},                        // parse error
		{"-workload", "nosuch", "-ef", "conj(x@P1 == 1)"},         // bad workload
		{"-trace", "/nonexistent.json", "-ef", "conj(x@P1 == 1)"}, // bad trace
	} {
		if code, _, _ := runMonitor(args...); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}

func TestLatticeVizErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-workload", "nosuch"},
		{"-workload", "fig2", "-dot", "-", "-mark", "EF(true)"}, // temporal mark
		{"-workload", "fig2", "-dot", "-", "-mark", "x@"},       // bad mark
		{"-workload", "fig2", "-dot", "/nonexistent-dir/x.dot"},
	} {
		var o, e strings.Builder
		if code := RunLatticeViz(args, &o, &e); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}

package cli

import (
	"bytes"
	"net"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
)

func TestServerUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{"-overflow", "sideways"},
		{"-listen", "not an address"},
		{"-cluster-peers", "10.0.0.1:1,10.0.0.2:1", "-cluster-self", "10.0.0.9:1"}, // self outside the ring
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := RunServer(args, &out, &errb); code != 2 {
			t.Errorf("RunServer(%v) = %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}

func TestServerVersion(t *testing.T) {
	var out, errb bytes.Buffer
	if code := RunServer([]string{"-version"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "hbserver") {
		t.Errorf("version output %q", out.String())
	}
}

// syncBuffer is a bytes.Buffer safe for a writer goroutine (RunServer)
// racing a reader (the test).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServerServesAndDrainsOnSignal runs the full command: start on an
// ephemeral port, drive one session through a real client, send SIGTERM
// to the process, and assert the drain summary accounts for the session.
func TestServerServesAndDrainsOnSignal(t *testing.T) {
	var stdout syncBuffer
	var stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- RunServer([]string{"-listen", "127.0.0.1:0"}, &stdout, &stderr)
	}()

	// The address is printed once the listener (and the signal handler,
	// registered before it) is up.
	addrRe := regexp.MustCompile(`ingest on (127\.0\.0\.1:\d+)`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if m := addrRe.FindStringSubmatch(stderr.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never announced its address: %s", stderr.String())
	}

	sess, err := client.Dial(addr, client.Config{
		Processes: 2,
		Watches:   []server.Watch{{Op: "EF", Pred: "conj(x@P1 == 1)"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sess.Internal(0, map[string]int{"x": 1})
	gb, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if gb.Events != 1 {
		t.Fatalf("goodbye events = %d, want 1", gb.Events)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not drain on SIGTERM\nstderr: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "served 1 sessions, 1 events") {
		t.Errorf("summary = %q", stdout.String())
	}
}

// TestServerClusterMode starts hbserver with the cluster flags (a
// single-node ring) and drives a keyed ring-aware session through it.
func TestServerClusterMode(t *testing.T) {
	// The ring identity must be known before the server starts, so
	// reserve a loopback port and hand it to -listen.
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := rl.Addr().String()
	rl.Close()

	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- RunServer([]string{"-listen", addr, "-cluster-peers", addr}, &stdout, &stderr)
	}()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if s := stderr.String(); strings.Contains(s, "cluster mode") && strings.Contains(s, "ingest on") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced cluster mode: %s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	sess, err := client.Dial("", client.Config{
		Processes: 2,
		Watches:   []server.Watch{{Op: "EF", Pred: "conj(x@P1 == 1)"}},
		Key:       "cli-smoke",
		Peers:     []string{addr},
		Reconnect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.ID() != "cli-smoke" {
		t.Fatalf("session id = %q, want the client key", sess.ID())
	}
	sess.Internal(0, map[string]int{"x": 1})
	gb, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if gb.Events != 1 {
		t.Fatalf("goodbye events = %d, want 1", gb.Events)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not drain on SIGTERM\nstderr: %s", stderr.String())
	}
}

package core

import (
	"strings"
	"testing"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// The boolean dispatcher must propagate evidence through ¬/∧/∨ and must
// not evaluate an operand the other operand already decided. These tests
// pin both halves of the fix: negation dualizing witnesses and
// counterexamples, and short-circuiting recorded in Stats and the
// algorithm string.

func TestNotPropagatesCounterexampleAsWitness(t *testing.T) {
	for ci, comp := range testComps(t) {
		for pi, p := range conjBattery(comp) {
			res, err := Detect(comp, ctl.Not{F: ctl.AG{F: ctl.Atom{P: p}}})
			if err != nil {
				t.Fatal(err)
			}
			cex, agHolds := AGLinear(comp, p)
			if res.Holds == agHolds {
				t.Fatalf("comp %d pred %d: ¬AG = %v but AG = %v", ci, pi, res.Holds, agHolds)
			}
			if !res.Holds {
				if res.Witness != nil {
					t.Fatalf("comp %d pred %d: failed ¬AG carries a witness", ci, pi)
				}
				continue
			}
			// The cut violating the invariant is the witness for its negation.
			if len(res.Witness) != 1 {
				t.Fatalf("comp %d pred %d: ¬AG holds but witness = %v", ci, pi, res.Witness)
			}
			if !res.Witness[0].Equal(cex) {
				t.Fatalf("comp %d pred %d: ¬AG witness %v, AG counterexample %v", ci, pi, res.Witness[0], cex)
			}
			if p.Eval(comp, res.Witness[0]) {
				t.Fatalf("comp %d pred %d: ¬AG witness %v satisfies p", ci, pi, res.Witness[0])
			}
		}
	}
}

func TestNotPropagatesWitnessAsCounterexample(t *testing.T) {
	for ci, comp := range testComps(t) {
		for pi, p := range conjBattery(comp) {
			res, err := Detect(comp, ctl.Not{F: ctl.EF{F: ctl.Atom{P: p}}})
			if err != nil {
				t.Fatal(err)
			}
			least, found := LeastCut(comp, p)
			if res.Holds == found {
				t.Fatalf("comp %d pred %d: ¬EF = %v but EF = %v", ci, pi, res.Holds, found)
			}
			if res.Holds {
				if res.Counterexample != nil {
					t.Fatalf("comp %d pred %d: holding ¬EF carries a counterexample", ci, pi)
				}
				continue
			}
			// The satisfying cut for EF(p) refutes ¬EF(p).
			if res.Counterexample == nil {
				t.Fatalf("comp %d pred %d: failed ¬EF has no counterexample", ci, pi)
			}
			if !res.Counterexample.Equal(least) {
				t.Fatalf("comp %d pred %d: ¬EF counterexample %v, least cut %v", ci, pi, res.Counterexample, least)
			}
			if !p.Eval(comp, res.Counterexample) {
				t.Fatalf("comp %d pred %d: ¬EF counterexample %v does not satisfy p", ci, pi, res.Counterexample)
			}
		}
	}
}

// boom panics when evaluated — placed behind an operand the dispatcher
// must skip, it proves the exponential branch is never entered.
var boom = predicate.Fn{
	Name: "boom",
	F: func(*computation.Computation, computation.Cut) bool {
		panic("core: short-circuited operand was evaluated")
	},
}

func TestAndShortCircuitSkipsExponentialRight(t *testing.T) {
	comp := sim.Fig2()
	never := ctl.EF{F: ctl.Atom{P: predicate.Conj(varCmp(0, "x", predicate.GT, 99))}}
	// EG(boom) routes to the exponential solver and panics on first Eval;
	// the left operand is false, so it must never run.
	f := ctl.And{L: never, R: ctl.EG{F: ctl.Atom{P: boom}}}
	res, err := Detect(comp, f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("false && _ must be false")
	}
	if !strings.Contains(res.Algorithm, "(skipped)") {
		t.Fatalf("algorithm %q does not record the skip", res.Algorithm)
	}
	if res.Stats.ShortCircuits != 1 {
		t.Fatalf("ShortCircuits = %d, want 1", res.Stats.ShortCircuits)
	}
}

func TestOrShortCircuitSkipsExponentialRight(t *testing.T) {
	comp := sim.Fig2()
	always := ctl.EF{F: ctl.Atom{P: predicate.Conj(varCmp(0, "x", predicate.GE, 0))}}
	f := ctl.Or{L: always, R: ctl.AG{F: ctl.Atom{P: boom}}}
	res, err := Detect(comp, f)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatal("true || _ must be true")
	}
	if !strings.Contains(res.Algorithm, "(skipped)") {
		t.Fatalf("algorithm %q does not record the skip", res.Algorithm)
	}
	if res.Stats.ShortCircuits != 1 {
		t.Fatalf("ShortCircuits = %d, want 1", res.Stats.ShortCircuits)
	}
}

func TestBinaryNoShortCircuitRunsBothAndCarriesEvidence(t *testing.T) {
	comp := sim.Fig4()
	left := ctl.AG{F: ctl.Atom{P: predicate.Conj(varCmp(0, "x", predicate.GE, 0))}} // holds
	right := ctl.EF{F: ctl.Atom{P: predicate.Conj(varCmp(0, "x", predicate.GE, 2))}}
	res, err := Detect(comp, ctl.And{L: left, R: right})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatal("conjunction of holding formulas must hold")
	}
	if strings.Contains(res.Algorithm, "skipped") {
		t.Fatalf("no short-circuit applies, yet algorithm = %q", res.Algorithm)
	}
	if !strings.Contains(res.Algorithm, "&&") {
		t.Fatalf("algorithm %q does not compose both operands", res.Algorithm)
	}
	if res.Stats.ShortCircuits != 0 {
		t.Fatalf("ShortCircuits = %d, want 0", res.Stats.ShortCircuits)
	}
	// The right operand's witness (EF's least cut) is the node's evidence.
	if len(res.Witness) != 1 {
		t.Fatalf("witness = %v, want the EF least cut", res.Witness)
	}
	want, found := LeastCut(comp, predicate.Conj(varCmp(0, "x", predicate.GE, 2)))
	if !found || !res.Witness[0].Equal(want) {
		t.Fatalf("witness %v, want %v", res.Witness[0], want)
	}
	// An Or whose operands both fail carries the right operand's
	// counterexample.
	badL := ctl.AG{F: ctl.Atom{P: predicate.Conj(varCmp(0, "x", predicate.LT, 2))}}
	badR := ctl.AG{F: ctl.Atom{P: predicate.Conj(varCmp(0, "x", predicate.LT, 3))}}
	res, err = Detect(comp, ctl.Or{L: badL, R: badR})
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("disjunction of failing formulas must fail")
	}
	if res.Counterexample == nil {
		t.Fatal("failing Or dropped its counterexample")
	}
	cex, ok := AGLinear(comp, predicate.Conj(varCmp(0, "x", predicate.LT, 3)))
	if ok || !res.Counterexample.Equal(cex) {
		t.Fatalf("counterexample %v, want right operand's %v", res.Counterexample, cex)
	}
}

// TestNotEvidenceCrossChecked: the ¬AG witness printed by hbdetect must be
// a consistent cut of the computation (checkable in-process here).
func TestNotEvidenceCutsAreConsistent(t *testing.T) {
	for _, comp := range testComps(t) {
		for _, p := range conjBattery(comp) {
			res, err := Detect(comp, ctl.Not{F: ctl.AG{F: ctl.Atom{P: p}}})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range res.Witness {
				if !comp.Consistent(c) {
					t.Fatalf("¬AG witness %v is not a consistent cut", c)
				}
			}
		}
	}
}

//go:build !race

package core

import (
	"repro/internal/computation"
	"repro/internal/pir"
	"repro/internal/predicate"
)

// crossCheckClass validates the IR's class inference against the explicit
// lattice in race-enabled test builds; in regular builds classification
// is trusted and detection pays nothing. See crosscheck_race.go.
func crossCheckClass(*computation.Computation, *pir.Pred) error { return nil }

// crossCheckSliceVerdict compares sliced vs. unsliced EF verdicts in
// race-enabled builds; free otherwise. See crosscheck_race.go.
func crossCheckSliceVerdict(*computation.Computation, predicate.Predicate, bool) {}

package core

import (
	"fmt"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/explore"
	"repro/internal/lattice"
)

// DetectNested extends Detect beyond the paper's fragment: formulas with
// nested temporal operators (e.g. AG(EF(reset)) — "always recoverable")
// are evaluated on the explicit lattice of consistent cuts, bounded by
// maxCuts to keep the exponential blow-up explicit. Non-nested formulas
// are routed through the polynomial dispatcher unchanged, so this is a
// strict superset of Detect.
//
// The paper leaves nested operators out of scope; this is the natural
// completion for small traces, at model-checking cost. Pass
// lattice.MaxSize (or 0) for the default bound.
func DetectNested(comp *computation.Computation, f ctl.Formula, maxCuts int) (Result, error) {
	if res, err := Detect(comp, f); err == nil {
		return res, nil
	}
	if maxCuts <= 0 {
		maxCuts = lattice.MaxSize
	}
	l, err := lattice.BuildLimited(comp, maxCuts)
	if err != nil {
		return Result{}, fmt.Errorf("core: nested formula needs the explicit lattice: %w", err)
	}
	return Result{
		Holds:     explore.Holds(l, f),
		Algorithm: fmt.Sprintf("nested CTL: explicit lattice (%d cuts, outside the paper's fragment)", l.Size()),
	}, nil
}

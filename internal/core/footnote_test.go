package core

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/explore"
	"repro/internal/lattice"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// leastCutOnly is a predicate that satisfies Theorem 7's footnote
// condition — a least satisfying cut exists — without being linear (its
// satisfying set is not closed under meet). Forbidden is computed by brute
// force over the (small) cut space, which is sound though not structural.
type leastCutOnly struct {
	sat []computation.Cut
}

func (p leastCutOnly) Eval(c *computation.Computation, cut computation.Cut) bool {
	for _, s := range p.sat {
		if s.Equal(cut) {
			return true
		}
	}
	return false
}

func (p leastCutOnly) Forbidden(c *computation.Computation, cut computation.Cut) (int, bool) {
	// Any process that must advance in EVERY satisfying cut above the
	// current one; abort when no satisfying cut is above.
	var above []computation.Cut
	for _, s := range p.sat {
		if cut.LessEq(s) && !s.Equal(cut) {
			above = append(above, s)
		}
	}
	if len(above) == 0 {
		return 0, false
	}
	for i := range cut {
		all := true
		for _, s := range above {
			if s[i] <= cut[i] {
				all = false
				break
			}
		}
		if all {
			return i, true
		}
	}
	// Cannot happen when a least satisfying cut above exists.
	panic("leastCutOnly: no forbidden process")
}

func (p leastCutOnly) String() string { return "leastCutOnly" }

// TestA3FootnoteLeastCutProperty exercises the footnote to Theorem 7: A3
// remains correct when q merely has a least satisfying cut, even though
// its satisfying set is not an inf-semilattice.
func TestA3FootnoteLeastCutProperty(t *testing.T) {
	comp := sim.Grid(2, 2) // cuts (a,b), a,b ∈ 0..2
	l := lattice.MustBuild(comp)

	// Satisfying set {(1,0), (2,1), (1,2)}: least element (1,0) exists,
	// but meet((2,1),(1,2)) = (1,1) is not satisfying — not linear.
	q := leastCutOnly{sat: []computation.Cut{{1, 0}, {2, 1}, {1, 2}}}
	if ok, _, _ := l.CheckLinear(q); ok {
		t.Fatal("fixture predicate unexpectedly linear; the test would prove nothing")
	}
	iq, ok := LeastCut(comp, q)
	if !ok || !iq.Equal(computation.Cut{1, 0}) {
		t.Fatalf("I_q = %v, %v; want <1 0>", iq, ok)
	}

	// p: the grid counter on P2 stays below 2 — conjunctive.
	p := predicate.Conj(predicate.VarCmp{Proc: 1, Var: "c", Op: predicate.LT, K: 2})
	path, got := EUConjLinear(comp, p, q)
	want := explore.Holds(l, ctl.EU{P: ctl.Atom{P: p}, Q: ctl.Atom{P: q}})
	if got != want {
		t.Fatalf("A3 = %v, lattice EU = %v", got, want)
	}
	if got {
		verifyEUPath(t, comp, p, q, path)
	}

	// And with p that blocks the path to I_q: the only ▷-path to <1 0> is
	// via <0 0>; forbid P1 ≥ 1 never... choose p failing at ∅'s successor.
	p2 := predicate.Conj(predicate.VarCmp{Proc: 0, Var: "c", Op: predicate.GE, K: 9})
	_, got2 := EUConjLinear(comp, p2, q)
	want2 := explore.Holds(l, ctl.EU{P: ctl.Atom{P: p2}, Q: ctl.Atom{P: q}})
	if got2 != want2 {
		t.Fatalf("A3 (blocking p) = %v, lattice EU = %v", got2, want2)
	}
}

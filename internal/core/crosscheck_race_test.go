//go:build race

package core

import (
	"strings"
	"testing"

	"repro/internal/ctl"
)

// TestDetectErrorsOnClassDriftUnderRace pins the drift contract: in
// race-enabled builds, Detect on a formula whose inferred class the
// explicit lattice refutes returns an error instead of silently running
// an algorithm the predicate's actual structure does not admit. (In
// regular builds classification is trusted; this test only compiles
// under -race, like the cross-check itself.)
func TestDetectErrorsOnClassDriftUnderRace(t *testing.T) {
	comp := decayComp()
	f := ctl.EF{F: ctl.Atom{P: unsoundStable()}}
	_, err := Detect(comp, f)
	if err == nil {
		t.Fatal("Detect accepted a Stable claim the lattice refutes")
	}
	if !strings.Contains(err.Error(), "stable") {
		t.Fatalf("drift error does not name the refuted class: %v", err)
	}

	// A sound claim on the same computation still detects normally.
	if _, err := Detect(comp, ctl.MustParse("EF(x@P1 == 1)")); err != nil {
		t.Fatalf("sound formula rejected: %v", err)
	}
}

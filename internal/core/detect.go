package core

import (
	"fmt"
	"time"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/pir"
	"repro/internal/predicate"
)

// Result reports the outcome of predicate detection.
type Result struct {
	// Holds is whether the computation satisfies the formula (at ∅).
	Holds bool
	// Algorithm names the algorithm that produced the answer, mirroring
	// the cells of the paper's Table 1.
	Algorithm string
	// Witness, when non-nil, is a sequence of consistent cuts evidencing a
	// positive answer (a p-path for EG, an until-prefix for EU, the least
	// satisfying cut for EF over linear predicates).
	Witness []computation.Cut
	// Counterexample, when non-nil, is a single cut evidencing a negative
	// answer (a cut violating an AG invariant).
	Counterexample computation.Cut
	// Stats records the work this run performed (cuts visited, predicate
	// evaluations, duration, …), aggregated over the boolean recursion.
	// Always non-nil on a successful Detect. Collection never influences
	// the verdict.
	Stats *Stats
}

// Detect decides whether the computation satisfies the CTL formula,
// routing each temporal operator to the most specific polynomial algorithm
// the predicate class admits and falling back to the exponential solver
// otherwise. Classification and algorithm selection live in the pir
// package (the executable Table 1); this file only executes the choice.
// Temporal operators must not be nested (the paper's fragment); boolean
// combinations of temporal formulas are evaluated recursively.
func Detect(comp *computation.Computation, f ctl.Formula) (Result, error) {
	return runDetect(comp, f, 1)
}

// runDetect is the shared body of Detect and DetectParallel; workers is
// already normalized (>= 1).
func runDetect(comp *computation.Computation, f ctl.Formula, workers int) (Result, error) {
	st := &Stats{}
	start := time.Now()
	r, err := detect(comp, f, st, workers)
	if err != nil {
		return r, err
	}
	st.Duration = time.Since(start)
	st.Algorithm = r.Algorithm
	st.WitnessLength = len(r.Witness)
	r.Stats = st
	st.publish()
	emitSpan(f.String(), r, st)
	emitSlow(f.String(), r, st)
	return r, nil
}

// detect is the recursive dispatcher; st aggregates work across the
// boolean structure of the formula, and workers is the parallel budget
// handed down to the sweep-shaped algorithms.
func detect(comp *computation.Computation, f ctl.Formula, st *Stats, workers int) (Result, error) {
	switch g := f.(type) {
	case ctl.Not:
		r, err := detect(comp, g.F, st, workers)
		if err != nil {
			return Result{}, err
		}
		out := Result{Holds: !r.Holds, Algorithm: "negation of " + r.Algorithm}
		// Evidence dualizes through negation: a counterexample cut to the
		// operand (say, a cut violating AG(p)) is precisely a witness for
		// the negation, and a single-cut witness to the operand (a
		// satisfying cut for EF(p)) refutes the negation. Path-shaped
		// witnesses have no single-cut dual and are dropped.
		if out.Holds {
			if r.Counterexample != nil {
				out.Witness = []computation.Cut{r.Counterexample}
			}
		} else if len(r.Witness) == 1 {
			out.Counterexample = r.Witness[0]
		}
		return out, nil
	case ctl.And:
		return detectBinary(comp, g.L, g.R, "&&", st, workers)
	case ctl.Or:
		return detectBinary(comp, g.L, g.R, "||", st, workers)
	case ctl.Atom:
		st.cuts(1)
		st.evals(1)
		return Result{
			Holds:     g.P.Eval(comp, comp.InitialCut()),
			Algorithm: "evaluation at the initial cut",
		}, nil
	case ctl.EF:
		p, err := compilePred(comp, g.F)
		if err != nil {
			return Result{}, err
		}
		return detectEF(comp, p, st), nil
	case ctl.AF:
		p, err := compilePred(comp, g.F)
		if err != nil {
			return Result{}, err
		}
		return detectAF(comp, p, st), nil
	case ctl.EG:
		p, err := compilePred(comp, g.F)
		if err != nil {
			return Result{}, err
		}
		return detectEG(comp, p, st), nil
	case ctl.AG:
		p, err := compilePred(comp, g.F)
		if err != nil {
			return Result{}, err
		}
		return detectAG(comp, p, st, workers), nil
	case ctl.EU:
		p, err := compilePred(comp, g.P)
		if err != nil {
			return Result{}, err
		}
		q, err := compilePred(comp, g.Q)
		if err != nil {
			return Result{}, err
		}
		return detectEU(comp, p, q, st, workers), nil
	case ctl.AU:
		p, err := compilePred(comp, g.P)
		if err != nil {
			return Result{}, err
		}
		q, err := compilePred(comp, g.Q)
		if err != nil {
			return Result{}, err
		}
		return detectAU(comp, p, q, st, workers), nil
	default:
		return Result{}, fmt.Errorf("core: unsupported formula %T", f)
	}
}

func detectBinary(comp *computation.Computation, l, r ctl.Formula, op string, st *Stats, workers int) (Result, error) {
	a, err := detect(comp, l, st, workers)
	if err != nil {
		return Result{}, err
	}
	// Short-circuit: when the left operand already decides the combination
	// the right operand is never compiled or run — it may route to the
	// exponential solver. The skip is recorded in the algorithm string and
	// in Stats.ShortCircuits, and the left result's evidence carries.
	if (op == "&&" && !a.Holds) || (op == "||" && a.Holds) {
		st.short(1)
		a.Algorithm = "(" + a.Algorithm + ") " + op + " (skipped)"
		return a, nil
	}
	// The left operand did not decide, so the combination's verdict is the
	// right operand's — and so is its evidence (a witness for an And both
	// conjuncts satisfy, a counterexample for an Or both disjuncts fail;
	// the right operand's evidence is the one attributable to this node).
	b, err := detect(comp, r, st, workers)
	if err != nil {
		return Result{}, err
	}
	b.Algorithm = "(" + a.Algorithm + ") " + op + " (" + b.Algorithm + ")"
	return b, nil
}

// Compile lowers a non-temporal CTL formula to a predicate. It is a thin
// veneer over pir.Compile, kept for the public API; all normalization and
// classification live in the pir package.
func Compile(f ctl.Formula) (predicate.Predicate, error) {
	p, err := pir.Compile(f)
	if err != nil {
		return nil, err
	}
	return p.P, nil
}

// compilePred compiles the operand of a temporal operator into the IR and,
// in race-enabled test builds, cross-checks the inferred class against
// brute-force lattice classification (crossCheckClass is a no-op
// otherwise).
func compilePred(comp *computation.Computation, f ctl.Formula) (*pir.Pred, error) {
	p, err := pir.Compile(f)
	if err != nil {
		return nil, err
	}
	if err := crossCheckClass(comp, p); err != nil {
		return nil, err
	}
	return p, nil
}

func detectEF(comp *computation.Computation, p *pir.Pred, st *Stats) Result {
	c := pir.Choose(pir.OpEF, p)
	st.choice(c)
	switch c.Kind {
	case pir.KindStableFinal:
		s, _ := p.Stable()
		return Result{Holds: efStable(comp, s, st), Algorithm: c.Algorithm}
	case pir.KindSplitOr:
		// EF distributes over disjunction: EF(a ∨ b) = EF(a) ∨ EF(b), so a
		// disjunction of structurally-detectable predicates stays polynomial.
		holds := false
		for _, part := range p.P.(predicate.Or).Ps {
			if sub := detectEF(comp, pir.FromPredicate(part), st); sub.Holds {
				holds = true
				break
			}
		}
		return Result{Holds: holds, Algorithm: c.Algorithm}
	case pir.KindDisjunctiveScan:
		d, _ := p.Disjunctive()
		return Result{Holds: efDisjunctive(comp, d, st), Algorithm: c.Algorithm}
	case pir.KindLinearLeast:
		l, _ := p.Bind(comp).Linear()
		cut, holds := leastCut(comp, l, st)
		r := Result{Holds: holds, Algorithm: c.Algorithm}
		if holds {
			r.Witness = []computation.Cut{cut}
		}
		return r
	case pir.KindPostLinearGreatest:
		pl, _ := p.Bind(comp).PostLinear()
		cut, holds := greatestCut(comp, pl, st)
		r := Result{Holds: holds, Algorithm: c.Algorithm}
		if holds {
			r.Witness = []computation.Cut{cut}
		}
		return r
	case pir.KindObserverWalk:
		oi, _ := p.ObserverBody()
		return Result{Holds: detectObserverIndependent(comp, oi, st), Algorithm: c.Algorithm}
	case pir.KindSliceFactor:
		factor, rest, _ := p.Bind(comp).SliceFactor()
		return Result{Holds: efSliceFactor(comp, factor, rest, p.P, st), Algorithm: c.Algorithm}
	default:
		return Result{Holds: efArbitrary(comp, p.P, st), Algorithm: c.Algorithm}
	}
}

func detectAF(comp *computation.Computation, p *pir.Pred, st *Stats) Result {
	c := pir.Choose(pir.OpAF, p)
	st.choice(c)
	switch c.Kind {
	case pir.KindStableFinal:
		s, _ := p.Stable()
		return Result{Holds: efStable(comp, s, st), Algorithm: c.Algorithm}
	case pir.KindConjunctiveBoxes:
		cq, _ := p.Conjunctive()
		_, holds := afConjunctive(comp, cq, st)
		return Result{Holds: holds, Algorithm: c.Algorithm}
	case pir.KindDisjunctiveDualA1:
		nl, _ := p.Bind(comp).DisjunctiveComplement()
		_, eg := egLinear(comp, nl, st)
		return Result{Holds: !eg, Algorithm: c.Algorithm}
	case pir.KindObserverWalk:
		oi, _ := p.ObserverBody()
		return Result{Holds: detectObserverIndependent(comp, oi, st), Algorithm: c.Algorithm}
	default:
		// AF for general linear predicates is an open problem in the paper.
		return Result{Holds: !egArbitrary(comp, predicate.Not{P: p.P}, st), Algorithm: c.Algorithm}
	}
}

func detectEG(comp *computation.Computation, p *pir.Pred, st *Stats) Result {
	c := pir.Choose(pir.OpEG, p)
	st.choice(c)
	switch c.Kind {
	case pir.KindStableInitial:
		s, _ := p.Stable()
		return Result{Holds: egStable(comp, s, st), Algorithm: c.Algorithm}
	case pir.KindLinearA1:
		l, _ := p.Bind(comp).Linear()
		path, holds := egLinear(comp, l, st)
		return Result{Holds: holds, Algorithm: c.Algorithm, Witness: path}
	case pir.KindDisjunctiveDualBoxes:
		d, _ := p.Disjunctive()
		_, af := afConjunctive(comp, d.Negate(), st)
		return Result{Holds: !af, Algorithm: c.Algorithm}
	case pir.KindPostLinearA1Dual:
		pl, _ := p.Bind(comp).PostLinear()
		path, holds := egPostLinear(comp, pl, st)
		return Result{Holds: holds, Algorithm: c.Algorithm, Witness: path}
	default:
		// Theorem 5: NP-complete already for observer-independent predicates.
		return Result{Holds: egArbitrary(comp, p.P, st), Algorithm: c.Algorithm}
	}
}

func detectAG(comp *computation.Computation, p *pir.Pred, st *Stats, workers int) Result {
	c := pir.Choose(pir.OpAG, p)
	st.choice(c)
	switch c.Kind {
	case pir.KindStableInitial:
		s, _ := p.Stable()
		return Result{Holds: egStable(comp, s, st), Algorithm: c.Algorithm}
	case pir.KindSplitAnd:
		// AG distributes over conjunction: AG(a ∧ b) = AG(a) ∧ AG(b).
		for _, part := range p.P.(predicate.And).Ps {
			if sub := detectAG(comp, pir.FromPredicate(part), st, workers); !sub.Holds {
				sub.Algorithm = "AG over ∧: split per conjunct (" + sub.Algorithm + ")"
				return sub // carries the counterexample when present
			}
		}
		return Result{Holds: true, Algorithm: c.Algorithm}
	case pir.KindLinearA2:
		l, _ := p.Bind(comp).Linear()
		cex, holds := agLinearParallel(comp, l, st, workers)
		return Result{Holds: holds, Algorithm: c.Algorithm, Counterexample: cex}
	case pir.KindDisjunctiveDualLeast:
		r := Result{Algorithm: c.Algorithm}
		// The least cut satisfying the conjunctive complement is a
		// counterexample to the invariant.
		nl, _ := p.Bind(comp).DisjunctiveComplement()
		if cex, found := leastCut(comp, nl, st); found {
			r.Counterexample = cex
		} else {
			r.Holds = true
		}
		return r
	case pir.KindPostLinearA2Dual:
		pl, _ := p.Bind(comp).PostLinear()
		cex, holds := agPostLinearParallel(comp, pl, st, workers)
		return Result{Holds: holds, Algorithm: c.Algorithm, Counterexample: cex}
	case pir.KindSliceFactor:
		// AG(¬q) = ¬EF(q): run the sliced search on q = factor ∧ rest.
		factor, rest, _ := p.Bind(comp).NegatedSliceFactor()
		inner := p.P.(predicate.Not).P
		return Result{Holds: !efSliceFactor(comp, factor, rest, inner, st), Algorithm: c.Algorithm}
	default:
		// Theorem 6: co-NP-complete already for observer-independent predicates.
		return Result{Holds: !efArbitrary(comp, predicate.Not{P: p.P}, st), Algorithm: c.Algorithm}
	}
}

func detectEU(comp *computation.Computation, p, q *pir.Pred, st *Stats, workers int) Result {
	c := pir.ChooseUntil(pir.OpEU, p, q)
	st.choice(c)
	switch c.Kind {
	case pir.KindUntilA3:
		cp, _ := p.Conjunctive()
		lq, _ := q.Bind(comp).Linear()
		path, holds := euConjLinearParallel(comp, cp, lq, st, workers)
		return Result{Holds: holds, Algorithm: c.Algorithm, Witness: path}
	case pir.KindUntilSplitOr:
		// The target distributes over disjunction for existential until:
		// E[p U (a ∨ b)] = E[p U a] ∨ E[p U b].
		for _, part := range q.P.(predicate.Or).Ps {
			if sub := detectEU(comp, p, pir.FromPredicate(part), st, workers); sub.Holds {
				sub.Algorithm = "EU target over ∨: split (" + sub.Algorithm + ")"
				return sub
			}
		}
		return Result{Holds: false, Algorithm: c.Algorithm}
	case pir.KindUntilSplitDisj:
		// A disjunctive target splits into its locals the same way.
		for _, l := range q.P.(predicate.Disjunctive).Locals {
			if sub := detectEU(comp, p, pir.FromPredicate(predicate.Conj(l)), st, workers); sub.Holds {
				sub.Algorithm = "EU target over disj: split (" + sub.Algorithm + ")"
				return sub
			}
		}
		return Result{Holds: false, Algorithm: c.Algorithm}
	default:
		return Result{Holds: euArbitrary(comp, p.P, q.P, st), Algorithm: c.Algorithm}
	}
}

func detectAU(comp *computation.Computation, p, q *pir.Pred, st *Stats, workers int) Result {
	c := pir.ChooseUntil(pir.OpAU, p, q)
	st.choice(c)
	if c.Kind == pir.KindUntilAUComposition {
		dp, _ := p.Disjunctive()
		dq, _ := q.Disjunctive()
		return Result{Holds: auDisjunctive(comp, dp, dq, st, workers), Algorithm: c.Algorithm}
	}
	return Result{Holds: auArbitrary(comp, p.P, q.P, st), Algorithm: c.Algorithm}
}

package core

import (
	"fmt"
	"time"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/predicate"
)

// Result reports the outcome of predicate detection.
type Result struct {
	// Holds is whether the computation satisfies the formula (at ∅).
	Holds bool
	// Algorithm names the algorithm that produced the answer, mirroring
	// the cells of the paper's Table 1.
	Algorithm string
	// Witness, when non-nil, is a sequence of consistent cuts evidencing a
	// positive answer (a p-path for EG, an until-prefix for EU, the least
	// satisfying cut for EF over linear predicates).
	Witness []computation.Cut
	// Counterexample, when non-nil, is a single cut evidencing a negative
	// answer (a cut violating an AG invariant).
	Counterexample computation.Cut
	// Stats records the work this run performed (cuts visited, predicate
	// evaluations, duration, …), aggregated over the boolean recursion.
	// Always non-nil on a successful Detect. Collection never influences
	// the verdict.
	Stats *Stats
}

// Detect decides whether the computation satisfies the CTL formula,
// routing each temporal operator to the most specific polynomial algorithm
// the predicate class admits and falling back to the exponential solver
// otherwise. Temporal operators must not be nested (the paper's fragment);
// boolean combinations of temporal formulas are evaluated recursively.
func Detect(comp *computation.Computation, f ctl.Formula) (Result, error) {
	return runDetect(comp, f, 1)
}

// runDetect is the shared body of Detect and DetectParallel; workers is
// already normalized (>= 1).
func runDetect(comp *computation.Computation, f ctl.Formula, workers int) (Result, error) {
	st := &Stats{}
	start := time.Now()
	r, err := detect(comp, f, st, workers)
	if err != nil {
		return r, err
	}
	st.Duration = time.Since(start)
	st.Algorithm = r.Algorithm
	st.WitnessLength = len(r.Witness)
	r.Stats = st
	st.publish()
	emitSpan(f.String(), r, st)
	return r, nil
}

// detect is the recursive dispatcher; st aggregates work across the
// boolean structure of the formula, and workers is the parallel budget
// handed down to the sweep-shaped algorithms.
func detect(comp *computation.Computation, f ctl.Formula, st *Stats, workers int) (Result, error) {
	switch g := f.(type) {
	case ctl.Not:
		r, err := detect(comp, g.F, st, workers)
		if err != nil {
			return Result{}, err
		}
		out := Result{Holds: !r.Holds, Algorithm: "negation of " + r.Algorithm}
		// Evidence dualizes through negation: a counterexample cut to the
		// operand (say, a cut violating AG(p)) is precisely a witness for
		// the negation, and a single-cut witness to the operand (a
		// satisfying cut for EF(p)) refutes the negation. Path-shaped
		// witnesses have no single-cut dual and are dropped.
		if out.Holds {
			if r.Counterexample != nil {
				out.Witness = []computation.Cut{r.Counterexample}
			}
		} else if len(r.Witness) == 1 {
			out.Counterexample = r.Witness[0]
		}
		return out, nil
	case ctl.And:
		return detectBinary(comp, g.L, g.R, "&&", st, workers)
	case ctl.Or:
		return detectBinary(comp, g.L, g.R, "||", st, workers)
	case ctl.Atom:
		st.cuts(1)
		st.evals(1)
		return Result{
			Holds:     g.P.Eval(comp, comp.InitialCut()),
			Algorithm: "evaluation at the initial cut",
		}, nil
	case ctl.EF:
		p, err := Compile(g.F)
		if err != nil {
			return Result{}, err
		}
		return detectEF(comp, p, st), nil
	case ctl.AF:
		p, err := Compile(g.F)
		if err != nil {
			return Result{}, err
		}
		return detectAF(comp, p, st), nil
	case ctl.EG:
		p, err := Compile(g.F)
		if err != nil {
			return Result{}, err
		}
		return detectEG(comp, p, st), nil
	case ctl.AG:
		p, err := Compile(g.F)
		if err != nil {
			return Result{}, err
		}
		return detectAG(comp, p, st, workers), nil
	case ctl.EU:
		p, err := Compile(g.P)
		if err != nil {
			return Result{}, err
		}
		q, err := Compile(g.Q)
		if err != nil {
			return Result{}, err
		}
		return detectEU(comp, p, q, st, workers), nil
	case ctl.AU:
		p, err := Compile(g.P)
		if err != nil {
			return Result{}, err
		}
		q, err := Compile(g.Q)
		if err != nil {
			return Result{}, err
		}
		return detectAU(comp, p, q, st, workers), nil
	default:
		return Result{}, fmt.Errorf("core: unsupported formula %T", f)
	}
}

func detectBinary(comp *computation.Computation, l, r ctl.Formula, op string, st *Stats, workers int) (Result, error) {
	a, err := detect(comp, l, st, workers)
	if err != nil {
		return Result{}, err
	}
	// Short-circuit: when the left operand already decides the combination
	// the right operand is never compiled or run — it may route to the
	// exponential solver. The skip is recorded in the algorithm string and
	// in Stats.ShortCircuits, and the left result's evidence carries.
	if (op == "&&" && !a.Holds) || (op == "||" && a.Holds) {
		st.short(1)
		a.Algorithm = "(" + a.Algorithm + ") " + op + " (skipped)"
		return a, nil
	}
	// The left operand did not decide, so the combination's verdict is the
	// right operand's — and so is its evidence (a witness for an And both
	// conjuncts satisfy, a counterexample for an Or both disjuncts fail;
	// the right operand's evidence is the one attributable to this node).
	b, err := detect(comp, r, st, workers)
	if err != nil {
		return Result{}, err
	}
	b.Algorithm = "(" + a.Algorithm + ") " + op + " (" + b.Algorithm + ")"
	return b, nil
}

// Compile lowers a non-temporal CTL formula to a predicate, preserving as
// much class structure as possible so the dispatcher can pick polynomial
// algorithms: negations of conjunctive predicates become disjunctive (and
// vice versa), conjunctions of conjunctive predicates merge, disjunctions
// of disjunctive predicates merge.
func Compile(f ctl.Formula) (predicate.Predicate, error) {
	switch g := f.(type) {
	case ctl.Atom:
		return g.P, nil
	case ctl.Not:
		inner, err := Compile(g.F)
		if err != nil {
			return nil, err
		}
		switch p := inner.(type) {
		case predicate.Conjunctive:
			return p.Negate(), nil
		case predicate.Disjunctive:
			return p.Negate(), nil
		case predicate.LocalPredicate:
			return predicate.NotLocal{P: p}, nil
		case predicate.Not:
			return p.P, nil
		case predicate.Const:
			return !p, nil
		default:
			return predicate.Not{P: inner}, nil
		}
	case ctl.And:
		a, err := Compile(g.L)
		if err != nil {
			return nil, err
		}
		b, err := Compile(g.R)
		if err != nil {
			return nil, err
		}
		ca, okA := asConjunctive(a)
		cb, okB := asConjunctive(b)
		if okA && okB {
			return predicate.MergeConj(ca, cb), nil
		}
		la, okA := asLinear(a)
		lb, okB := asLinear(b)
		if okA && okB {
			return predicate.AndLinear{Ps: []predicate.Linear{la, lb}}, nil
		}
		return predicate.And{Ps: []predicate.Predicate{a, b}}, nil
	case ctl.Or:
		a, err := Compile(g.L)
		if err != nil {
			return nil, err
		}
		b, err := Compile(g.R)
		if err != nil {
			return nil, err
		}
		da, okA := asDisjunctive(a)
		db, okB := asDisjunctive(b)
		if okA && okB {
			return predicate.Disjunctive{Locals: append(append([]predicate.LocalPredicate{}, da.Locals...), db.Locals...)}, nil
		}
		return predicate.Or{Ps: []predicate.Predicate{a, b}}, nil
	default:
		return nil, fmt.Errorf("core: nested temporal operator %s is outside the paper's fragment", f)
	}
}

// asConjunctive views p as a conjunctive predicate when possible; single
// local predicates are one-conjunct conjunctions.
func asConjunctive(p predicate.Predicate) (predicate.Conjunctive, bool) {
	switch q := p.(type) {
	case predicate.Conjunctive:
		return q, true
	case predicate.LocalPredicate:
		return predicate.Conj(q), true
	default:
		return predicate.Conjunctive{}, false
	}
}

// asDisjunctive views p as a disjunctive predicate when possible.
func asDisjunctive(p predicate.Predicate) (predicate.Disjunctive, bool) {
	switch q := p.(type) {
	case predicate.Disjunctive:
		return q, true
	case predicate.LocalPredicate:
		return predicate.Disj(q), true
	default:
		return predicate.Disjunctive{}, false
	}
}

// asLinear views p as a linear predicate when its type carries the
// advancement property.
func asLinear(p predicate.Predicate) (predicate.Linear, bool) {
	switch q := p.(type) {
	case predicate.Linear:
		return q, true
	case predicate.LocalPredicate:
		return predicate.Conj(q), true
	default:
		return nil, false
	}
}

// asPostLinear views p as a post-linear predicate.
func asPostLinear(p predicate.Predicate) (predicate.PostLinear, bool) {
	switch q := p.(type) {
	case predicate.PostLinear:
		return q, true
	case predicate.LocalPredicate:
		return predicate.Conj(q), true
	default:
		return nil, false
	}
}

// asStable recognizes predicates known stable by construction.
func asStable(p predicate.Predicate) (predicate.Stable, bool) {
	switch q := p.(type) {
	case predicate.Stable:
		return q, true
	case predicate.Received, predicate.Terminated:
		return predicate.Stable{P: p}, true
	default:
		return predicate.Stable{}, false
	}
}

// isObserverIndependent recognizes predicates known observer-independent
// by construction: explicitly asserted ones, stable ones, and disjunctive
// ones.
func isObserverIndependent(p predicate.Predicate) (predicate.Predicate, bool) {
	switch q := p.(type) {
	case predicate.ObserverIndependent:
		return q.P, true
	case predicate.Disjunctive:
		return q, true
	default:
		if s, ok := asStable(p); ok {
			return s, true
		}
		return nil, false
	}
}

func detectEF(comp *computation.Computation, p predicate.Predicate, st *Stats) Result {
	if s, ok := asStable(p); ok {
		return Result{Holds: efStable(comp, s, st), Algorithm: "EF stable: evaluate at the final cut"}
	}
	// EF distributes over disjunction: EF(a ∨ b) = EF(a) ∨ EF(b), so a
	// disjunction of structurally-detectable predicates stays polynomial.
	if or, ok := p.(predicate.Or); ok {
		holds := false
		for _, part := range or.Ps {
			if sub := detectEF(comp, part, st); sub.Holds {
				holds = true
				break
			}
		}
		return Result{Holds: holds, Algorithm: "EF over ∨: split per disjunct"}
	}
	if d, ok := asDisjunctive(p); ok {
		return Result{Holds: efDisjunctive(comp, d, st), Algorithm: "EF disjunctive: local state scan"}
	}
	if l, ok := asLinear(p); ok {
		cut, holds := leastCut(comp, l, st)
		r := Result{Holds: holds, Algorithm: "EF linear: Chase–Garg advancement"}
		if holds {
			r.Witness = []computation.Cut{cut}
		}
		return r
	}
	if pl, ok := asPostLinear(p); ok {
		cut, holds := greatestCut(comp, pl, st)
		r := Result{Holds: holds, Algorithm: "EF post-linear: dual advancement"}
		if holds {
			r.Witness = []computation.Cut{cut}
		}
		return r
	}
	if oi, ok := isObserverIndependent(p); ok {
		return Result{Holds: detectObserverIndependent(comp, oi, st), Algorithm: "EF observer-independent: single observation"}
	}
	return Result{Holds: efArbitrary(comp, p, st), Algorithm: "EF arbitrary: exponential search (NP-complete)"}
}

func detectAF(comp *computation.Computation, p predicate.Predicate, st *Stats) Result {
	if s, ok := asStable(p); ok {
		return Result{Holds: efStable(comp, s, st), Algorithm: "AF stable: evaluate at the final cut"}
	}
	if c, ok := asConjunctive(p); ok {
		_, holds := afConjunctive(comp, c, st)
		return Result{Holds: holds, Algorithm: "AF conjunctive: Garg–Waldecker interval boxes"}
	}
	if d, ok := asDisjunctive(p); ok {
		_, eg := egLinear(comp, d.Negate(), st)
		return Result{Holds: !eg, Algorithm: "AF disjunctive: ¬EG(¬p) via A1"}
	}
	if oi, ok := isObserverIndependent(p); ok {
		return Result{Holds: detectObserverIndependent(comp, oi, st), Algorithm: "AF observer-independent: single observation"}
	}
	// AF for general linear predicates is an open problem in the paper.
	return Result{Holds: !egArbitrary(comp, predicate.Not{P: p}, st), Algorithm: "AF arbitrary: exponential search"}
}

func detectEG(comp *computation.Computation, p predicate.Predicate, st *Stats) Result {
	if s, ok := asStable(p); ok {
		return Result{Holds: egStable(comp, s, st), Algorithm: "EG stable: evaluate at the initial cut"}
	}
	if l, ok := asLinear(p); ok {
		path, holds := egLinear(comp, l, st)
		return Result{Holds: holds, Algorithm: "EG linear: Algorithm A1", Witness: path}
	}
	if d, ok := asDisjunctive(p); ok {
		_, af := afConjunctive(comp, d.Negate(), st)
		return Result{Holds: !af, Algorithm: "EG disjunctive: ¬AF(¬p) via interval boxes"}
	}
	if pl, ok := asPostLinear(p); ok {
		path, holds := egPostLinear(comp, pl, st)
		return Result{Holds: holds, Algorithm: "EG post-linear: dual Algorithm A1", Witness: path}
	}
	// Theorem 5: NP-complete already for observer-independent predicates.
	return Result{Holds: egArbitrary(comp, p, st), Algorithm: "EG arbitrary: exponential search (NP-complete, Theorem 5)"}
}

func detectAG(comp *computation.Computation, p predicate.Predicate, st *Stats, workers int) Result {
	if s, ok := asStable(p); ok {
		return Result{Holds: egStable(comp, s, st), Algorithm: "AG stable: evaluate at the initial cut"}
	}
	// AG distributes over conjunction: AG(a ∧ b) = AG(a) ∧ AG(b).
	if and, ok := p.(predicate.And); ok {
		for _, part := range and.Ps {
			if sub := detectAG(comp, part, st, workers); !sub.Holds {
				sub.Algorithm = "AG over ∧: split per conjunct (" + sub.Algorithm + ")"
				return sub // carries the counterexample when present
			}
		}
		return Result{Holds: true, Algorithm: "AG over ∧: split per conjunct"}
	}
	if _, ok := asLinear(p); ok {
		cex, holds := agLinearParallel(comp, p, st, workers)
		return Result{Holds: holds, Algorithm: "AG linear: Algorithm A2 (meet-irreducibles)", Counterexample: cex}
	}
	if d, ok := asDisjunctive(p); ok {
		r := Result{Algorithm: "AG disjunctive: ¬EF(¬p) via advancement"}
		// The least cut satisfying the conjunctive complement is a
		// counterexample to the invariant.
		if cex, found := leastCut(comp, d.Negate(), st); found {
			r.Counterexample = cex
		} else {
			r.Holds = true
		}
		return r
	}
	if _, ok := asPostLinear(p); ok {
		cex, holds := agPostLinearParallel(comp, p, st, workers)
		return Result{Holds: holds, Algorithm: "AG post-linear: dual Algorithm A2 (join-irreducibles)", Counterexample: cex}
	}
	// Theorem 6: co-NP-complete already for observer-independent predicates.
	return Result{Holds: !efArbitrary(comp, predicate.Not{P: p}, st), Algorithm: "AG arbitrary: exponential search (co-NP-complete, Theorem 6)"}
}

func detectEU(comp *computation.Computation, p, q predicate.Predicate, st *Stats, workers int) Result {
	if cp, okP := asConjunctive(p); okP {
		if lq, okQ := asLinear(q); okQ {
			path, holds := euConjLinearParallel(comp, cp, lq, st, workers)
			return Result{Holds: holds, Algorithm: "EU conjunctive/linear: Algorithm A3", Witness: path}
		}
		// The target distributes over disjunction for existential until:
		// E[p U (a ∨ b)] = E[p U a] ∨ E[p U b].
		if or, ok := q.(predicate.Or); ok {
			for _, part := range or.Ps {
				if sub := detectEU(comp, p, part, st, workers); sub.Holds {
					sub.Algorithm = "EU target over ∨: split (" + sub.Algorithm + ")"
					return sub
				}
			}
			return Result{Holds: false, Algorithm: "EU target over ∨: split per disjunct"}
		}
		// A disjunctive target splits into its locals the same way.
		if d, ok := q.(predicate.Disjunctive); ok {
			for _, l := range d.Locals {
				if sub := detectEU(comp, p, predicate.Conj(l), st, workers); sub.Holds {
					sub.Algorithm = "EU target over disj: split (" + sub.Algorithm + ")"
					return sub
				}
			}
			return Result{Holds: false, Algorithm: "EU target over disj: split per local"}
		}
	}
	return Result{Holds: euArbitrary(comp, p, q, st), Algorithm: "EU arbitrary: exponential search"}
}

func detectAU(comp *computation.Computation, p, q predicate.Predicate, st *Stats, workers int) Result {
	dp, okP := asDisjunctive(p)
	dq, okQ := asDisjunctive(q)
	if okP && okQ {
		return Result{Holds: auDisjunctive(comp, dp, dq, st, workers), Algorithm: "AU disjunctive: ¬(EG(¬q) ∨ E[¬q U ¬p∧¬q])"}
	}
	return Result{Holds: auArbitrary(comp, p, q, st), Algorithm: "AU arbitrary: exponential search"}
}

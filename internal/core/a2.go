package core

import (
	"repro/internal/computation"
	"repro/internal/predicate"
)

// AGLinear is Algorithm A2 of the paper: it detects AG(p) — invariant p —
// for a linear predicate p by evaluating p only at the meet-irreducible
// elements of the lattice and at the final cut.
//
// By Birkhoff's representation theorem every non-top element of a finite
// distributive lattice is the meet of the meet-irreducible elements above
// it (Corollary 4), and a linear predicate is closed under meets; so p
// holds everywhere iff it holds at M(L) ∪ {E}. The meet-irreducible
// elements are computed directly from the computation as E − ↑e for each
// event e — |E| cuts in O(n|E|) total — without constructing the lattice.
//
// When the invariant fails, the returned cut is a consistent counterexample
// cut violating p.
func AGLinear(comp *computation.Computation, p predicate.Predicate) (counterexample computation.Cut, ok bool) {
	return agLinear(comp, p, nil)
}

func agLinear(comp *computation.Computation, p predicate.Predicate, st *Stats) (counterexample computation.Cut, ok bool) {
	final := comp.FinalCut()
	st.cuts(1)
	st.evals(1)
	if !p.Eval(comp, final) {
		return final, false
	}
	for i := 0; i < comp.N(); i++ {
		for _, e := range comp.Events(i) {
			m := comp.UpSetComplement(e)
			st.cuts(1)
			st.evals(1)
			if !p.Eval(comp, m) {
				return m, false
			}
		}
	}
	return nil, true
}

// AGPostLinear is the dual of Algorithm A2: a post-linear predicate is
// closed under joins, and every non-bottom element is the join of the
// join-irreducible elements below it (the down-sets ↓e), so AG(p) holds iff
// p holds at every ↓e and at the initial cut.
func AGPostLinear(comp *computation.Computation, p predicate.Predicate) (counterexample computation.Cut, ok bool) {
	return agPostLinear(comp, p, nil)
}

func agPostLinear(comp *computation.Computation, p predicate.Predicate, st *Stats) (counterexample computation.Cut, ok bool) {
	initial := comp.InitialCut()
	st.cuts(1)
	st.evals(1)
	if !p.Eval(comp, initial) {
		return initial, false
	}
	for i := 0; i < comp.N(); i++ {
		for _, e := range comp.Events(i) {
			j := comp.DownSet(e)
			st.cuts(1)
			st.evals(1)
			if !p.Eval(comp, j) {
				return j, false
			}
		}
	}
	return nil, true
}

// MeetIrreducibles returns the meet-irreducible cuts of the lattice of comp
// by the Birkhoff formula M(e) = E − ↑e, one per event, without building
// the lattice. The ablation bench compares this against degree-counting on
// the explicit lattice.
func MeetIrreducibles(comp *computation.Computation) []computation.Cut {
	var out []computation.Cut
	for i := 0; i < comp.N(); i++ {
		for _, e := range comp.Events(i) {
			out = append(out, comp.UpSetComplement(e))
		}
	}
	return out
}

// JoinIrreducibles returns the join-irreducible cuts ↓e, one per event.
func JoinIrreducibles(comp *computation.Computation) []computation.Cut {
	var out []computation.Cut
	for i := 0; i < comp.N(); i++ {
		for _, e := range comp.Events(i) {
			out = append(out, comp.DownSet(e))
		}
	}
	return out
}

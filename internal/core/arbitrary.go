package core

import (
	"repro/internal/computation"
	"repro/internal/predicate"
)

// This file holds the exponential fallback solvers for arbitrary
// predicates. They explore the cut space by memoized depth-first search
// without materializing the lattice; worst-case time and memory remain
// proportional to the lattice size, which is exponential in the number of
// processes. Table 1's intractable cells (arbitrary predicates everywhere,
// observer-independent predicates under EG and AG — Theorems 5 and 6) are
// served by these.

// EFArbitrary detects EF(p) for an arbitrary predicate by memoized search
// from ∅.
func EFArbitrary(comp *computation.Computation, p predicate.Predicate) bool {
	return efArbitrary(comp, p, nil)
}

func efArbitrary(comp *computation.Computation, p predicate.Predicate, st *Stats) bool {
	seen := make(map[string]bool)
	cut := comp.InitialCut()
	var dfs func() bool
	dfs = func() bool {
		st.cuts(1)
		st.evals(1)
		if p.Eval(comp, cut) {
			return true
		}
		key := cut.Key()
		if seen[key] {
			st.memo(1)
			return false
		}
		seen[key] = true
		for i := range cut {
			if comp.EnabledEvent(cut, i) {
				cut[i]++
				hit := dfs()
				cut[i]--
				if hit {
					return true
				}
			}
		}
		return false
	}
	return dfs()
}

// EGArbitrary detects EG(p) for an arbitrary predicate: is there a maximal
// cut sequence from ∅ to E with p at every cut?
func EGArbitrary(comp *computation.Computation, p predicate.Predicate) bool {
	return egArbitrary(comp, p, nil)
}

func egArbitrary(comp *computation.Computation, p predicate.Predicate, st *Stats) bool {
	final := comp.FinalCut()
	failed := make(map[string]bool)
	cut := comp.InitialCut()
	var dfs func() bool
	dfs = func() bool {
		st.cuts(1)
		st.evals(1)
		if !p.Eval(comp, cut) {
			return false
		}
		if cut.Equal(final) {
			return true
		}
		key := cut.Key()
		if failed[key] {
			st.memo(1)
			return false
		}
		for i := range cut {
			if comp.EnabledEvent(cut, i) {
				cut[i]++
				hit := dfs()
				cut[i]--
				if hit {
					return true
				}
			}
		}
		failed[key] = true
		return false
	}
	return dfs()
}

// AFArbitrary detects AF(p) by the duality AF(p) = ¬EG(¬p).
func AFArbitrary(comp *computation.Computation, p predicate.Predicate) bool {
	return !EGArbitrary(comp, predicate.Not{P: p})
}

// AGArbitrary detects AG(p) by the duality AG(p) = ¬EF(¬p).
func AGArbitrary(comp *computation.Computation, p predicate.Predicate) bool {
	return !EFArbitrary(comp, predicate.Not{P: p})
}

// EUArbitrary detects E[p U q] for arbitrary predicates by memoized search:
// a path on which p holds from ∅ until a cut satisfying q.
func EUArbitrary(comp *computation.Computation, p, q predicate.Predicate) bool {
	return euArbitrary(comp, p, q, nil)
}

func euArbitrary(comp *computation.Computation, p, q predicate.Predicate, st *Stats) bool {
	failed := make(map[string]bool)
	cut := comp.InitialCut()
	var dfs func() bool
	dfs = func() bool {
		st.cuts(1)
		st.evals(1)
		if q.Eval(comp, cut) {
			return true
		}
		st.evals(1)
		if !p.Eval(comp, cut) {
			return false
		}
		key := cut.Key()
		if failed[key] {
			st.memo(1)
			return false
		}
		for i := range cut {
			if comp.EnabledEvent(cut, i) {
				cut[i]++
				hit := dfs()
				cut[i]--
				if hit {
					return true
				}
			}
		}
		failed[key] = true
		return false
	}
	return dfs()
}

// AUArbitrary detects A[p U q] via the standard expansion
// A[p U q] = ¬(EG(¬q) ∨ E[¬q U (¬p ∧ ¬q)]).
func AUArbitrary(comp *computation.Computation, p, q predicate.Predicate) bool {
	return auArbitrary(comp, p, q, nil)
}

func auArbitrary(comp *computation.Computation, p, q predicate.Predicate, st *Stats) bool {
	notP, notQ := predicate.Not{P: p}, predicate.Not{P: q}
	if egArbitrary(comp, notQ, st) {
		return false
	}
	return !euArbitrary(comp, notQ, predicate.And{Ps: []predicate.Predicate{notP, notQ}}, st)
}

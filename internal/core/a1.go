package core

import (
	"repro/internal/computation"
	"repro/internal/predicate"
)

// EGLinear is Algorithm A1 of the paper: it detects EG(p) — controllable p
// — for a linear predicate p in O(n|E|) predicate evaluations.
//
// Starting from the final cut, the algorithm repeatedly moves to any
// predecessor cut that satisfies p. Theorem 2 shows that for linear
// predicates the arbitrary choice is safe: if any p-satisfying path from ∅
// to E exists, every run of this loop finds one, because the meet of the
// chosen cut with a cut on the real path is again a satisfying cut one
// step closer to ∅ (Lemma 1).
//
// The returned path, when ok, is a full maximal cut sequence
// ∅ = G0 ▷ … ▷ Gl = E with p true at every cut.
func EGLinear(comp *computation.Computation, p predicate.Predicate) (path []computation.Cut, ok bool) {
	return egLinear(comp, p, nil)
}

func egLinear(comp *computation.Computation, p predicate.Predicate, st *Stats) (path []computation.Cut, ok bool) {
	w := comp.FinalCut()
	// Step 1: the final cut itself must satisfy p.
	st.cuts(1)
	st.evals(1)
	if !p.Eval(comp, w) {
		return nil, false
	}
	initial := comp.InitialCut()
	rev := []computation.Cut{w.Copy()}
	// Step 2–6: walk down one event at a time.
	for !w.Equal(initial) {
		found := false
		for i := range w {
			if !comp.MaximalEvent(w, i) {
				continue
			}
			w[i]--
			st.cuts(1)
			st.evals(1)
			if p.Eval(comp, w) {
				rev = append(rev, w.Copy())
				found = true
				break
			}
			w[i]++
		}
		if !found {
			return nil, false
		}
		st.advance(1)
	}
	// Step 7 is implicit: the loop only reaches ∅ through satisfying cuts.
	// Reverse into ∅ → E order.
	path = make([]computation.Cut, len(rev))
	for i, c := range rev {
		path[len(rev)-1-i] = c
	}
	return path, true
}

// EGPostLinear is the dual of Algorithm A1 for post-linear predicates: it
// walks from the initial cut towards the final cut, moving at each step to
// any successor cut satisfying p. The paper notes the same arbitrary-choice
// argument applies by lattice duality.
func EGPostLinear(comp *computation.Computation, p predicate.Predicate) (path []computation.Cut, ok bool) {
	return egPostLinear(comp, p, nil)
}

func egPostLinear(comp *computation.Computation, p predicate.Predicate, st *Stats) (path []computation.Cut, ok bool) {
	w := comp.InitialCut()
	st.cuts(1)
	st.evals(1)
	if !p.Eval(comp, w) {
		return nil, false
	}
	final := comp.FinalCut()
	path = []computation.Cut{w.Copy()}
	for !w.Equal(final) {
		found := false
		for i := range w {
			if !comp.EnabledEvent(w, i) {
				continue
			}
			w[i]++
			st.cuts(1)
			st.evals(1)
			if p.Eval(comp, w) {
				path = append(path, w.Copy())
				found = true
				break
			}
			w[i]--
		}
		if !found {
			return nil, false
		}
		st.advance(1)
	}
	return path, true
}

// EGLinearBacktracking is the ablation counterpart of A1: instead of
// trusting Theorem 2's arbitrary-choice argument it backtracks over every
// predecessor choice, memoizing failures. It returns identical answers on
// every input (tests verify this) at worst-case exponential cost — the
// point of the ablation bench.
func EGLinearBacktracking(comp *computation.Computation, p predicate.Predicate) bool {
	w := comp.FinalCut()
	if !p.Eval(comp, w) {
		return false
	}
	initial := comp.InitialCut()
	failed := make(map[string]bool)
	var down func(w computation.Cut) bool
	down = func(w computation.Cut) bool {
		if w.Equal(initial) {
			return true
		}
		key := w.Key()
		if failed[key] {
			return false
		}
		for i := range w {
			if !comp.MaximalEvent(w, i) {
				continue
			}
			w[i]--
			if p.Eval(comp, w) && down(w) {
				w[i]++
				return true
			}
			w[i]++
		}
		failed[key] = true
		return false
	}
	return down(w)
}

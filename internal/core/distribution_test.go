package core

import (
	"strings"
	"testing"

	"repro/internal/computation"

	"repro/internal/ctl"
	"repro/internal/explore"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// TestDistributionRouting pins the sound rewrite laws EF(a∨b) = EF(a)∨EF(b),
// AG(a∧b) = AG(a)∧AG(b) and E[p U (a∨b)] = E[p U a] ∨ E[p U b]: mixed
// predicates that would otherwise hit the exponential fallback stay on
// polynomial routes.
func TestDistributionRouting(t *testing.T) {
	comp := sim.Fig4()
	xGT := predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.GT, K: 1})

	// EF over a generic ∨ of a channel predicate and a conjunction.
	efOr := ctl.EF{F: ctl.Or{
		L: ctl.Atom{P: predicate.ChannelsEmpty{}},
		R: ctl.Atom{P: xGT},
	}}
	res, err := Detect(comp, efOr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Algorithm, "EF over ∨") && !strings.Contains(res.Algorithm, "disjunctive") {
		t.Errorf("EF(∨) routed to %q", res.Algorithm)
	}
	if strings.Contains(res.Algorithm, "exponential") {
		t.Errorf("EF(∨) fell back to the exponential solver: %q", res.Algorithm)
	}

	// AG over a generic ∧.
	agAnd := ctl.AG{F: ctl.And{
		L: ctl.Atom{P: predicate.Fn{Name: "sizeOK", F: sizeOK}},
		R: ctl.Atom{P: xGT},
	}}
	res, err = Detect(comp, agAnd)
	if err != nil {
		t.Fatal(err)
	}
	// The Fn part is arbitrary so ONE conjunct may use the exponential
	// solver, but the split must be visible.
	if !strings.Contains(res.Algorithm, "AG over ∧") {
		t.Errorf("AG(∧) routed to %q", res.Algorithm)
	}

	// EU with a disjunctive target.
	eu := ctl.EU{
		P: ctl.Atom{P: predicate.Conj(predicate.VarCmp{Proc: 2, Var: "z", Op: predicate.LT, K: 6})},
		Q: ctl.Atom{P: predicate.Disj(
			predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.GT, K: 1},
			predicate.VarCmp{Proc: 1, Var: "y", Op: predicate.GT, K: 99},
		)},
	}
	res, err = Detect(comp, eu)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Algorithm, "split") || strings.Contains(res.Algorithm, "exponential") {
		t.Errorf("EU(disj target) routed to %q", res.Algorithm)
	}
}

func sizeOK(c *computation.Computation, cut computation.Cut) bool {
	return cut.Size() <= c.TotalEvents()
}

// TestDistributionLawsAgainstLattice validates the rewrites semantically
// on random computations and mixed predicates.
func TestDistributionLawsAgainstLattice(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		comp := sim.Random(sim.DefaultRandomConfig(3, 9), seed)
		l := latticeOf(t, comp)
		a := predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.GE, K: 1})
		b := predicate.ChannelsEmpty{}
		orF := ctl.EF{F: ctl.Or{L: ctl.Atom{P: b}, R: ctl.Atom{P: a}}}
		res, err := Detect(comp, orF)
		if err != nil {
			t.Fatal(err)
		}
		if want := explore.Holds(l, orF); res.Holds != want {
			t.Fatalf("seed %d: EF(∨) = %v, lattice %v", seed, res.Holds, want)
		}
		andF := ctl.AG{F: ctl.And{L: ctl.Atom{P: b}, R: ctl.Atom{P: a}}}
		// Compile turns And of linears into AndLinear (still linear), so
		// force the generic path with an Fn conjunct.
		fn := predicate.Fn{Name: "always", F: func(*computation.Computation, computation.Cut) bool { return true }}
		andF = ctl.AG{F: ctl.And{L: ctl.Atom{P: fn}, R: ctl.Atom{P: a}}}
		res, err = Detect(comp, andF)
		if err != nil {
			t.Fatal(err)
		}
		if want := explore.Holds(l, andF); res.Holds != want {
			t.Fatalf("seed %d: AG(∧) = %v, lattice %v", seed, res.Holds, want)
		}
		euF := ctl.EU{P: ctl.Atom{P: a}, Q: ctl.Atom{P: predicate.Disj(
			predicate.VarCmp{Proc: 1, Var: "x0", Op: predicate.GE, K: 2},
			predicate.VarCmp{Proc: 2, Var: "x0", Op: predicate.GE, K: 2},
		)}}
		res, err = Detect(comp, euF)
		if err != nil {
			t.Fatal(err)
		}
		if want := explore.Holds(l, euF); res.Holds != want {
			t.Fatalf("seed %d: EU(disj target) = %v, lattice %v", seed, res.Holds, want)
		}
	}
}

package core

import (
	"strings"
	"testing"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/explore"
	"repro/internal/lattice"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// postOnly is post-linear but deliberately not Linear, not conjunctive and
// not stable, to force the dispatcher onto the post-linear routes.
type postOnly struct {
	inner predicate.ChannelsEmpty
}

func (p postOnly) Eval(c *computation.Computation, cut computation.Cut) bool {
	return p.inner.Eval(c, cut)
}

func (p postOnly) Retreat(c *computation.Computation, cut computation.Cut) (int, bool) {
	return p.inner.Retreat(c, cut)
}

func (p postOnly) String() string { return "postOnly(channelsEmpty)" }

// oiOnly is an arbitrary predicate wrapped as observer-independent (it
// holds at the initial cut, which suffices for the class).
func oiOnly() predicate.Predicate {
	return predicate.ObserverIndependent{P: predicate.Fn{
		Name: "evenCut",
		F: func(c *computation.Computation, cut computation.Cut) bool {
			return cut.Size()%2 == 0
		},
	}}
}

func TestDispatcherPostLinearRoutes(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		comp := sim.Random(sim.DefaultRandomConfig(3, 9), seed)
		l := latticeOf(t, comp)
		p := postOnly{}
		atom := ctl.Atom{P: p}

		res, err := Detect(comp, ctl.EF{F: atom})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(res.Algorithm, "post-linear") {
			t.Fatalf("EF routed to %q", res.Algorithm)
		}
		if want := explore.Holds(l, ctl.EF{F: atom}); res.Holds != want {
			t.Errorf("seed %d: EF post-linear = %v, lattice %v", seed, res.Holds, want)
		}

		res, _ = Detect(comp, ctl.EG{F: atom})
		if !strings.Contains(res.Algorithm, "post-linear") {
			t.Fatalf("EG routed to %q", res.Algorithm)
		}
		if want := explore.Holds(l, ctl.EG{F: atom}); res.Holds != want {
			t.Errorf("seed %d: EG post-linear = %v, lattice %v", seed, res.Holds, want)
		}

		res, _ = Detect(comp, ctl.AG{F: atom})
		if !strings.Contains(res.Algorithm, "post-linear") {
			t.Fatalf("AG routed to %q", res.Algorithm)
		}
		if want := explore.Holds(l, ctl.AG{F: atom}); res.Holds != want {
			t.Errorf("seed %d: AG post-linear = %v, lattice %v", seed, res.Holds, want)
		}
	}
}

func TestDispatcherObserverIndependentRoutes(t *testing.T) {
	comp := sim.Fig2()
	l := latticeOf(t, comp)
	atom := ctl.Atom{P: oiOnly()}
	if !explore.CheckObserverIndependent(l, atom) {
		t.Skip("fixture predicate not observer-independent on this computation")
	}
	res, err := Detect(comp, ctl.EF{F: atom})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Algorithm, "observer-independent") {
		t.Fatalf("EF routed to %q", res.Algorithm)
	}
	if want := explore.Holds(l, ctl.EF{F: atom}); res.Holds != want {
		t.Errorf("EF OI = %v, lattice %v", res.Holds, want)
	}
	res, _ = Detect(comp, ctl.AF{F: atom})
	if !strings.Contains(res.Algorithm, "observer-independent") {
		t.Fatalf("AF routed to %q", res.Algorithm)
	}
	// Under EG/AG, observer-independent predicates hit the exponential
	// solver (Theorems 5/6).
	res, _ = Detect(comp, ctl.EG{F: atom})
	if !strings.Contains(res.Algorithm, "NP-complete") {
		t.Fatalf("EG routed to %q", res.Algorithm)
	}
	if want := explore.Holds(l, ctl.EG{F: atom}); res.Holds != want {
		t.Errorf("EG OI = %v, lattice %v", res.Holds, want)
	}
	res, _ = Detect(comp, ctl.AG{F: atom})
	if !strings.Contains(res.Algorithm, "co-NP-complete") {
		t.Fatalf("AG routed to %q", res.Algorithm)
	}
}

func TestCompileShapes(t *testing.T) {
	a := predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.GE, K: 1}
	b := predicate.VarCmp{Proc: 1, Var: "y", Op: predicate.GE, K: 1}
	cases := []struct {
		f    ctl.Formula
		want string // type description via String or type check
	}{
		{ctl.Not{F: ctl.Atom{P: predicate.Conj(a, b)}}, "disj"},
		{ctl.Not{F: ctl.Atom{P: predicate.Disj(a, b)}}, "conj"},
		{ctl.Not{F: ctl.Atom{P: a}}, "!("},
		{ctl.Not{F: ctl.Not{F: ctl.Atom{P: a}}}, "x@P1"},
		{ctl.Not{F: ctl.Atom{P: predicate.True}}, "false"},
		{ctl.And{L: ctl.Atom{P: predicate.Conj(a)}, R: ctl.Atom{P: predicate.Conj(b)}}, "conj("},
		{ctl.And{L: ctl.Atom{P: a}, R: ctl.Atom{P: b}}, "conj("},
		{ctl.And{L: ctl.Atom{P: predicate.ChannelsEmpty{}}, R: ctl.Atom{P: a}}, "and("},
		{ctl.Or{L: ctl.Atom{P: a}, R: ctl.Atom{P: b}}, "disj("},
		{ctl.Or{L: ctl.Atom{P: predicate.ChannelsEmpty{}}, R: ctl.Atom{P: a}}, "or("},
		{ctl.And{L: ctl.Atom{P: predicate.Fn{Name: "z", F: nil}}, R: ctl.Atom{P: a}}, "and("},
	}
	for _, c := range cases {
		p, err := Compile(c.f)
		if err != nil {
			t.Fatalf("%s: %v", c.f, err)
		}
		if !strings.Contains(p.String(), c.want) {
			t.Errorf("Compile(%s) = %s, want to contain %q", c.f, p, c.want)
		}
	}
	// Nested temporal inside a boolean context is rejected.
	if _, err := Compile(ctl.And{L: ctl.EF{F: ctl.Atom{P: a}}, R: ctl.Atom{P: b}}); err == nil {
		t.Error("temporal subformula accepted by Compile")
	}
	if _, err := Compile(ctl.Not{F: ctl.AG{F: ctl.Atom{P: a}}}); err == nil {
		t.Error("negated temporal subformula accepted by Compile")
	}
}

func TestDetectTopLevelBooleans(t *testing.T) {
	comp := sim.Fig2()
	tru := ctl.AG{F: ctl.Atom{P: predicate.True}}
	fls := ctl.EF{F: ctl.Atom{P: predicate.False}}
	cases := []struct {
		f    ctl.Formula
		want bool
	}{
		{ctl.And{L: tru, R: tru}, true},
		{ctl.And{L: tru, R: fls}, false},
		{ctl.Or{L: fls, R: tru}, true},
		{ctl.Or{L: fls, R: fls}, false},
		{ctl.Not{F: fls}, true},
	}
	for _, c := range cases {
		res, err := Detect(comp, c.f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Holds != c.want {
			t.Errorf("%s = %v, want %v", c.f, res.Holds, c.want)
		}
	}
	// Errors inside boolean combinations propagate.
	bad := ctl.EF{F: ctl.AG{F: ctl.Atom{P: predicate.True}}}
	for _, f := range []ctl.Formula{
		ctl.And{L: bad, R: tru}, ctl.And{L: tru, R: bad},
		ctl.Or{L: bad, R: tru}, ctl.Not{F: bad},
		ctl.EU{P: bad, Q: tru}, ctl.EU{P: ctl.Atom{P: predicate.True}, Q: bad},
		ctl.AU{P: bad, Q: tru}, ctl.AU{P: ctl.Atom{P: predicate.True}, Q: bad},
		ctl.EF{F: bad}, ctl.AF{F: bad}, ctl.EG{F: bad}, ctl.AG{F: bad},
	} {
		if _, err := Detect(comp, f); err == nil {
			t.Errorf("%s accepted despite nested temporal operator", f)
		}
	}
}

func TestMeetJoinIrreducibleHelpers(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		comp := sim.Random(sim.DefaultRandomConfig(3, 9), seed)
		l := latticeOf(t, comp)
		mi := MeetIrreducibles(comp)
		ji := JoinIrreducibles(comp)
		wantMI := map[string]bool{}
		for _, idx := range l.MeetIrreducibles() {
			wantMI[l.Cut(idx).Key()] = true
		}
		gotMI := map[string]bool{}
		for _, c := range mi {
			gotMI[c.Key()] = true
		}
		if len(gotMI) != len(wantMI) {
			t.Fatalf("seed %d: formula MI count %d, lattice %d", seed, len(gotMI), len(wantMI))
		}
		for k := range wantMI {
			if !gotMI[k] {
				t.Fatalf("seed %d: MI sets differ", seed)
			}
		}
		wantJI := map[string]bool{}
		for _, idx := range l.JoinIrreducibles() {
			wantJI[l.Cut(idx).Key()] = true
		}
		gotJI := map[string]bool{}
		for _, c := range ji {
			gotJI[c.Key()] = true
		}
		if len(gotJI) != len(wantJI) {
			t.Fatalf("seed %d: formula JI count %d, lattice %d", seed, len(gotJI), len(wantJI))
		}
		for k := range wantJI {
			if !gotJI[k] {
				t.Fatalf("seed %d: JI sets differ", seed)
			}
		}
	}
}

func TestAUArbitraryEGBranch(t *testing.T) {
	// q never holds, so EG(¬q) is trivially witnessed and AU fails on the
	// EG branch.
	comp := sim.Fig2()
	p := predicate.Fn{Name: "p", F: func(*computation.Computation, computation.Cut) bool { return true }}
	q := predicate.Fn{Name: "q", F: func(*computation.Computation, computation.Cut) bool { return false }}
	if AUArbitrary(comp, p, q) {
		t.Error("A[p U q] with unsatisfiable q must fail")
	}
	// And with q holding only at E, p everywhere: AU holds.
	qE := predicate.Terminated{}
	if !AUArbitrary(comp, p, qE) {
		t.Error("A[true U terminated] must hold")
	}
	l := latticeOf(t, comp)
	want := explore.Holds(l, ctl.AU{P: ctl.Atom{P: p}, Q: ctl.Atom{P: qE}})
	if !want {
		t.Error("lattice disagrees with AU")
	}
}

func TestDetectUnknownFormula(t *testing.T) {
	if _, err := Detect(sim.Fig2(), nil); err == nil {
		t.Error("nil formula accepted")
	}
}

// Keep the lattice import used even if tests above change.
var _ = lattice.MaxSize
